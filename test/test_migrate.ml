(* Live migration: serving starts against an empty target replica that
   fills online by fault-in, backfill and dual-applied writes.  The
   lazy run must be observationally identical to the eager one — same
   transitions, same served output, bit-identical final target
   replicas — at any domain count and in both serving modes; the
   backfill schedule must be monotone; and a backfill fault must roll
   the controller back to source-only serving instead of erroring the
   run. *)

open Ccv_common
open Ccv_transform
open Ccv_convert
open Ccv_migrate
open Ccv_serve
module W = Ccv_workload
module G = Ccv_workload.Generator

let check = Alcotest.(check bool)

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

let interpose_op =
  Schema_change.Interpose
    { through = W.Company.div_emp;
      new_entity = W.Company.dept;
      group_by = [ "DEPT-NAME" ];
      left_assoc = W.Company.div_dept;
      right_assoc = W.Company.dept_emp;
    }

let net_req ops =
  { Supervisor.source_schema = W.Company.schema;
    source_model = Mapping.Net;
    ops;
    target_model = Mapping.Net;
  }

(* The convergence gate must be open before the eager run's first
   promotion, or the gate itself would shift the transition log: with
   72 slots over 8 shards (9 each) and batch 3 / lag 1, every shard's
   schedule covers its keyspace by logical row 3, while 56 clean
   observations cannot accumulate before row 3 at 16 requests per
   row. *)
let cutover_cfg =
  { Cutover.canary_fraction = 0.25;
    window = 16;
    min_observations = 6;
    max_divergence_rate = 0.2;
    promote_after = 56;
    initial = Cutover.Shadow;
  }

let requests ~n =
  Request.stream ~seed:707 W.Company.schema ~sample:(W.Company.instance ())
    ~n ()

let run_service ?(domains = 1) ?(epoch_serving = true) ?(live = false)
    ?fail_backfill ?(n = 128) () =
  let config =
    { Pool.default_config with
      domains;
      shards = 8;
      batch = 8;
      epoch_serving;
      epoch_batch = 2;
      canary_seed = 707;
      live_migration = live;
      backfill_batch = 3;
      backfill_lag = 1;
      fail_backfill;
      fingerprint_replicas = true;
    }
  in
  match
    Pool.run ~config ~cutover:cutover_cfg (net_req [ interpose_op ])
      (W.Company.instance ())
      (requests ~n)
  with
  | Ok r -> r
  | Error e -> Alcotest.failf "service failed to start: %s" e

let terminal_output (r : Pool.report) =
  List.map
    (fun (o : Shadow.outcome) ->
      ( o.Shadow.request.Request.id,
        Io_trace.terminal_lines o.Shadow.served_trace ))
    r.Pool.outcomes

(* Output of the requests the {e source} engine served.  Target-served
   output may legitimately reorder records between eager and lazy runs
   — record-at-a-time merge gives the target replica a different
   physical insertion order, the [Modulo_order] level of §5.2 — so
   eager-vs-lazy equality is asserted on source-served output plus the
   canonical replica fingerprint, while full output must be identical
   across domain counts of the {e same} run. *)
let source_output (r : Pool.report) =
  List.filter_map
    (fun (o : Shadow.outcome) ->
      if o.Shadow.decision = Shadow.Serve_source then
        Some
          ( o.Shadow.request.Request.id,
            Io_trace.terminal_lines o.Shadow.served_trace )
      else None)
    r.Pool.outcomes

(* ------------------------------------------------------------------ *)
(* (a) lazy serving converges to the eager run: same transitions, same
   served output, bit-identical target replicas — across 1/2/8
   domains and in both serving modes                                   *)

let lazy_converges_to_eager () =
  List.iter
    (fun (mode_name, epoch_serving) ->
      let eager = run_service ~epoch_serving () in
      check (mode_name ^ ": eager baseline reaches cutover") true
        (Cutover.equal_phase eager.Pool.final_phase Cutover.Cutover);
      check (mode_name ^ ": eager baseline is clean") true
        (eager.Pool.divergences = []);
      let reference = ref None in
      List.iter
        (fun domains ->
          let label = Printf.sprintf "%s, %d domain(s)" mode_name domains in
          let live = run_service ~epoch_serving ~live:true ~domains () in
          check (label ^ ": lazy run reaches cutover") true
            (Cutover.equal_phase live.Pool.final_phase Cutover.Cutover);
          check (label ^ ": no divergences") true
            (live.Pool.divergences = []);
          check (label ^ ": same transitions as eager") true
            (live.Pool.transitions = eager.Pool.transitions);
          check (label ^ ": same source-served output as eager") true
            (source_output live = source_output eager);
          check (label ^ ": target replicas bit-identical to eager") true
            (live.Pool.replica_fingerprint <> None
            && live.Pool.replica_fingerprint = eager.Pool.replica_fingerprint);
          (match !reference with
          | None -> reference := Some (terminal_output live)
          | Some out ->
              check (label ^ ": full output identical across domain counts")
                true
                (terminal_output live = out));
          match live.Pool.migration with
          | None -> Alcotest.failf "%s: no migration summary" label
          | Some m ->
              check (label ^ ": migration completed") true
                (m.Migrate.mig_failed = None);
              check (label ^ ": fault-in and backfill both ran") true
                (m.Migrate.faulted > 0 && m.Migrate.backfilled > 0);
              check (label ^ ": every slot drained") true
                (m.Migrate.faulted + m.Migrate.backfilled
                = m.Migrate.total_slots))
        [ 1; 2; 8 ])
    [ ("epoch", true); ("barrier", false) ]

(* The two serving modes must agree on the final replica contents even
   though their logical clocks (ticks vs epoch rows) pace backfill
   differently. *)
let modes_agree_on_replicas () =
  let e = run_service ~epoch_serving:true ~live:true () in
  let b = run_service ~epoch_serving:false ~live:true () in
  check "epoch and barrier modes leave identical replicas" true
    (e.Pool.replica_fingerprint = b.Pool.replica_fingerprint
    && e.Pool.replica_fingerprint <> None)

(* ------------------------------------------------------------------ *)
(* (b) the backfill schedule is monotone, bounded and total            *)

let watermark_props =
  QCheck.Test.make ~count:500 ~name:"watermark schedule monotone and total"
    QCheck.(
      quad (int_range 0 500) (int_range 1 64) (int_range 0 8)
        (int_range 1 64))
    (fun (total, batch, lag, rows) ->
      let wm e = Backfill.watermark_target ~total ~batch ~lag ~rows e in
      let ok = ref true in
      for e = 0 to rows - 1 do
        let w = wm e in
        if w < 0 || w > total then ok := false;
        if e > 0 && w < wm (e - 1) then ok := false;
        if
          Backfill.converged ~total ~batch ~lag ~rows e <> (w >= total)
        then ok := false
      done;
      (* a run always ends fully migrated *)
      if wm (rows - 1) <> total then ok := false;
      !ok)

(* ------------------------------------------------------------------ *)
(* (c) a backfill fault rolls the pool back to source-only serving     *)

let backfill_fault_rolls_back () =
  List.iter
    (fun (mode_name, epoch_serving) ->
      let go domains =
        run_service ~epoch_serving ~live:true ~domains
          ~fail_backfill:(2, 5) ()
      in
      let r = go 1 in
      let label = mode_name in
      check (label ^ ": run completes despite the fault") true
        (r.Pool.status = Cutover.Serving);
      check (label ^ ": never leaves shadow") true
        (Cutover.equal_phase r.Pool.final_phase Cutover.Shadow);
      check (label ^ ": everything served") true
        (r.Pool.served = 128 && r.Pool.unserved = 0);
      (match r.Pool.migration with
      | None -> Alcotest.failf "%s: no migration summary" label
      | Some m ->
          check (label ^ ": failure recorded") true
            (match m.Migrate.mig_failed with
            | Some msg -> contains ~affix:"injected backfill fault" msg
            | None -> false));
      check (label ^ ": rollback transition recorded") true
        (List.exists
           (fun (t : Cutover.transition) ->
             contains ~affix:"live migration failed" t.Cutover.reason
             && Cutover.equal_phase t.Cutover.to_ Cutover.Shadow)
           r.Pool.transitions);
      (* after the rollback the stream is served from the source
         replicas alone, unshadowed *)
      let tail =
        match
          List.filteri
            (fun i _ -> i >= r.Pool.served - 16)
            r.Pool.outcomes
        with
        | [] -> Alcotest.failf "%s: empty tail" label
        | os -> os
      in
      check (label ^ ": tail serves source-only, unshadowed") true
        (List.for_all
           (fun (o : Shadow.outcome) ->
             o.Shadow.decision = Shadow.Serve_source
             && not o.Shadow.shadowed)
           tail);
      (* the failure path is as deterministic as the happy one *)
      let r2 = go 2 in
      check (label ^ ": fault handling identical across domain counts")
        true
        (r.Pool.transitions = r2.Pool.transitions
        && terminal_output r = terminal_output r2))
    [ ("epoch", true); ("barrier", false) ]

(* ------------------------------------------------------------------ *)
(* (d) Zipf-skewed workload generation                                 *)

let show_batch b =
  String.concat "\n---\n" (List.map (fun (_, p) -> Ccv_abstract.Aprog.show p) b)

let zipf_skew () =
  let sample = W.Company.instance () in
  let mk ?skew () =
    G.batch ~seed:11 W.Company.schema ~sample ~n:40 ?skew ()
  in
  check "skew 0 is the uniform generator, draw for draw" true
    (show_batch (mk ()) = show_batch (mk ~skew:0. ()));
  check "skewed generation is deterministic" true
    (show_batch (mk ~skew:1.2 ()) = show_batch (mk ~skew:1.2 ()));
  check "skew changes the workload" true
    (show_batch (mk ~skew:1.2 ()) <> show_batch (mk ()));
  (* rank-weighted popularity: under heavy skew the most popular
     constant should cover a clearly larger share of the references
     than under the uniform draw *)
  let top_share progs =
    let tbl = Hashtbl.create 64 in
    List.iter
      (fun (_, p) ->
        let s = Ccv_abstract.Aprog.show p in
        (* count value literals crudely: every quoted token *)
        String.split_on_char '"' s
        |> List.iteri (fun i tok ->
               if i land 1 = 1 then
                 Hashtbl.replace tbl tok
                   (1 + Option.value (Hashtbl.find_opt tbl tok) ~default:0)))
      progs;
    let total = Hashtbl.fold (fun _ c a -> c + a) tbl 0 in
    let best = Hashtbl.fold (fun _ c a -> max c a) tbl 0 in
    if total = 0 then 0. else float best /. float total
  in
  check "heavy skew concentrates key popularity" true
    (top_share (mk ~skew:2.5 ()) > top_share (mk ()))

(* ------------------------------------------------------------------ *)
(* (e) guard: live migration cannot start above shadow                 *)

let live_requires_shadow () =
  let config = { Pool.default_config with live_migration = true } in
  let cutover = { cutover_cfg with Cutover.initial = Cutover.Canary 0.25 } in
  match
    Pool.run ~config ~cutover (net_req [ interpose_op ])
      (W.Company.instance ())
      (requests ~n:8)
  with
  | Ok _ -> Alcotest.fail "expected an error"
  | Error e -> check "guard names the shadow phase" true
      (contains ~affix:"shadow" e)

(* ------------------------------------------------------------------ *)
(* (f) admission: navigation past the demand-closure cap is refused
   before the dual-run — the migration survives, the warning names
   the access path                                                     *)

let deep_program =
  let module Ab = Ccv_abstract in
  let av source =
    Ab.Apattern.Assoc_via
      { assoc = W.Company.div_emp; source; qual = Cond.True }
  in
  let va target =
    Ab.Apattern.Via_assoc
      { target; assoc = W.Company.div_emp; qual = Cond.True }
  in
  { Ab.Aprog.name = "DEEP-NAV";
    body =
      [ Ab.Aprog.For_each
          { query =
              [ Ab.Apattern.Self { target = W.Company.div; qual = Cond.True };
                av W.Company.div; va W.Company.emp;
                av W.Company.emp; va W.Company.div;
                av W.Company.div; va W.Company.emp;
              ];
            body = [ Ab.Aprog.Display [ Ab.Host.v "EMP.EMP-NAME" ] ];
          };
      ];
  }

let deep_navigation_refused_at_admission () =
  let reqs =
    List.map
      (fun (r : Request.t) ->
        if r.Request.id = 3 then { r with Request.aprog = deep_program }
        else r)
      (requests ~n:16)
  in
  let config =
    { Pool.default_config with
      shards = 8;
      batch = 8;
      canary_seed = 707;
      epoch_batch = 2;
      live_migration = true;
      backfill_batch = 3;
      backfill_lag = 1;
    }
  in
  match
    Pool.run ~config ~cutover:cutover_cfg (net_req [ interpose_op ])
      (W.Company.instance ())
      reqs
  with
  | Error e -> Alcotest.failf "service failed to start: %s" e
  | Ok r -> (
      let deep =
        List.find
          (fun (o : Shadow.outcome) -> o.Shadow.request.Request.id = 3)
          r.Pool.outcomes
      in
      check "deep request is refused" true deep.Shadow.refused;
      check "deep request is served by the source engine" true
        (deep.Shadow.decision = Shadow.Serve_source);
      match r.Pool.migration with
      | None -> Alcotest.fail "expected a migration summary"
      | Some m ->
          check "migration did not fail" true (m.Migrate.mig_failed = None);
          check "refusal warning carries the depth code" true
            (List.exists
               (contains ~affix:"admission refused [AD001]")
               m.Migrate.mig_warnings);
          check "refusal warning names the access path" true
            (List.exists (contains ~affix:"DIV-EMP") m.Migrate.mig_warnings))

let () =
  Alcotest.run "migrate"
    [ ( "live migration",
        [ Alcotest.test_case "lazy converges to eager" `Slow
            lazy_converges_to_eager;
          Alcotest.test_case "modes agree on replicas" `Quick
            modes_agree_on_replicas;
          QCheck_alcotest.to_alcotest watermark_props;
          Alcotest.test_case "backfill fault rolls back" `Slow
            backfill_fault_rolls_back;
          Alcotest.test_case "zipf skew" `Quick zipf_skew;
          Alcotest.test_case "live requires shadow" `Quick
            live_requires_shadow;
          Alcotest.test_case "deep navigation refused at admission" `Quick
            deep_navigation_refused_at_admission;
        ] );
    ]
