(* Index/cursor layer: indexed and scan access paths must be
   observationally identical — same keys, same rows, same order — for
   the company and school workloads and across arbitrary update
   sequences; and FIND NEXT iteration must cost O(N) total accesses,
   not the O(N^2) of the legacy rescan. *)

open Ccv_common
open Ccv_network
module W = Ccv_workload
module Sdb = Ccv_model.Sdb
module Apattern = Ccv_abstract.Apattern

let check = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* The hand-built DIV/EMP/PROJ schema from test_network, with an
   OPTIONAL MANUAL set so sequences can exercise connect/disconnect. *)

let schema_with ~proj_order =
  Nschema.make
    [ Nschema.record_decl ~calc_key:[ "DIV-NAME" ] "DIV"
        [ Field.make "DIV-NAME" Value.Tstr ];
      Nschema.record_decl ~calc_key:[ "EMP-NAME" ]
        ~virtuals:
          [ { Nschema.vname = "DIV-NAME";
              vty = Value.Tstr;
              via_set = "DIV-EMP";
              source_field = "DIV-NAME";
            };
          ]
        "EMP"
        [ Field.make "EMP-NAME" Value.Tstr; Field.make "AGE" Value.Tint ];
      Nschema.record_decl ~calc_key:[ "P#" ] "PROJ"
        [ Field.make "P#" Value.Tstr ];
    ]
    [ Nschema.set_decl ~insertion:Nschema.Automatic ~retention:Nschema.Optional
        ~selection:(Nschema.By_value [ ("DIV-NAME", "DIV-NAME") ])
        ~name:"DIV-EMP" ~owner:(Nschema.Owner_record "DIV") ~member:"EMP" ();
      Nschema.set_decl ~insertion:Nschema.Manual ~retention:Nschema.Optional
        ~order:proj_order ~name:"EMP-PROJ"
        ~owner:(Nschema.Owner_record "EMP") ~member:"PROJ" ();
    ]

let schema = schema_with ~proj_order:Nschema.Chronological
let sorted_schema = schema_with ~proj_order:(Nschema.Sorted [ "P#" ])

type op =
  | Store_div of int
  | Store_emp of int * int
  | Store_proj of int
  | Erase_nth of int
  | Modify_age of int * int
  | Connect_proj of int
  | Disconnect_proj of int

let op_gen =
  QCheck.Gen.(
    frequency
      [ (2, map (fun i -> Store_div i) (int_bound 5));
        (4, map2 (fun i a -> Store_emp (i, a)) (int_bound 20) (int_range 20 60));
        (3, map (fun i -> Store_proj i) (int_bound 10));
        (2, map (fun i -> Erase_nth i) (int_bound 30));
        (2, map2 (fun i a -> Modify_age (i, a)) (int_bound 30) (int_range 20 60));
        (2, map (fun i -> Connect_proj i) (int_bound 30));
        (1, map (fun i -> Disconnect_proj i) (int_bound 30));
      ])

let pp_op = Fmt.(const string "<op>")
let arb_ops = QCheck.make ~print:(Fmt.str "%a" (Fmt.Dump.list pp_op)) QCheck.Gen.(list_size (int_bound 40) op_gen)

let nth_key l i =
  match l with [] -> None | _ -> List.nth_opt l (i mod List.length l)

let all_keys_all db =
  List.concat_map (Ndb.all_keys_silent db) [ "DIV"; "EMP"; "PROJ" ]

let apply_op db op =
  let keep r = match r with Ok db -> db | Error _ -> db in
  match op with
  | Store_div i ->
      let row = Row.of_list [ ("DIV-NAME", Value.Str (Fmt.str "D%d" i)) ] in
      (match Ndb.store db "DIV" row with Ok (db, _) -> db | Error _ -> db)
  | Store_emp (i, a) ->
      let row =
        Row.of_list
          [ ("EMP-NAME", Value.Str (Fmt.str "E%d" i));
            ("AGE", Value.Int a);
            ("DIV-NAME", Value.Str (Fmt.str "D%d" (i mod 3)));
          ]
      in
      (match Ndb.store db "EMP" row with Ok (db, _) -> db | Error _ -> db)
  | Store_proj i ->
      let row = Row.of_list [ ("P#", Value.Str (Fmt.str "P%d" i)) ] in
      (match Ndb.store db "PROJ" row with Ok (db, _) -> db | Error _ -> db)
  | Erase_nth i -> (
      match nth_key (all_keys_all db) i with
      | Some k -> keep (Ndb.erase db Ndb.Erase_all k)
      | None -> db)
  | Modify_age (i, a) -> (
      match nth_key (Ndb.all_keys_silent db "EMP") i with
      | Some k -> keep (Ndb.modify db k [ ("AGE", Value.Int a) ])
      | None -> db)
  | Connect_proj i -> (
      match
        (nth_key (Ndb.all_keys_silent db "PROJ") i,
         nth_key (Ndb.all_keys_silent db "EMP") i)
      with
      | Some p, Some e -> keep (Ndb.connect db ~set:"EMP-PROJ" ~member:p ~owner:e)
      | _ -> db)
  | Disconnect_proj i -> (
      match nth_key (Ndb.all_keys_silent db "PROJ") i with
      | Some p -> keep (Ndb.disconnect db ~set:"EMP-PROJ" ~member:p)
      | None -> db)

let run_ops ?(schema = schema) ops =
  (* AGE indexed on demand on top of the automatic CALC-key indexes,
     so modify sequences exercise non-key index maintenance too. *)
  let db = Ndb.ensure_index (Ndb.create schema) ~rtype:"EMP" ~field:"AGE" in
  List.fold_left apply_op db ops

(* Scan-model answer for an equality lookup: ascending keys of the
   type whose stored field carries the value. *)
let scan_eq db rtype field v =
  List.filter
    (fun k ->
      match Ndb.view_silent db k with
      | Some row ->
          Value.equal (Option.value (Row.get row field) ~default:Value.Null) v
      | None -> false)
    (Ndb.all_keys_silent db rtype)

(* Every (rtype, field, value) actually present in the db agrees
   between index probe and scan. *)
let indexes_agree db =
  List.for_all
    (fun rtype ->
      List.for_all
        (fun field ->
          List.for_all
            (fun k ->
              match Ndb.view_silent db k with
              | None -> true
              | Some row ->
                  let v = Option.value (Row.get row field) ~default:Value.Null in
                  (match Ndb.lookup_eq_silent db ~rtype ~field v with
                  | Some keys -> keys = scan_eq db rtype field v
                  | None -> false))
            (Ndb.all_keys_silent db rtype))
        (Ndb.indexed_fields db rtype))
    [ "DIV"; "EMP"; "PROJ" ]

let prop_sequences =
  QCheck.Test.make ~count:150 ~name:"indexes survive arbitrary op sequences"
    arb_ops
    (fun ops ->
      let db = run_ops ops in
      (match Ndb.verify_indexes db with
      | [] -> ()
      | problems -> QCheck.Test.fail_reportf "%s" (String.concat "; " problems));
      indexes_agree db)

(* Same churn, but EMP-PROJ is ORDER IS SORTED on P# — connect must
   splice into sort position and disconnect must not disturb it, and
   the indexes must survive the extra reshuffling. *)
let prop_sorted_sequences =
  QCheck.Test.make ~count:150
    ~name:"indexes survive connect/disconnect churn on sorted sets" arb_ops
    (fun ops ->
      let db = run_ops ~schema:sorted_schema ops in
      (match Ndb.verify_indexes db with
      | [] -> ()
      | problems -> QCheck.Test.fail_reportf "%s" (String.concat "; " problems));
      indexes_agree db)

(* ------------------------------------------------------------------ *)
(* Workload equivalence: company and school network realizations.      *)

let network_of sdb sschema =
  let open Ccv_transform in
  let m, ns = Mapping.derive_network sschema in
  Mapping.load_network m ns sdb

let workload_case name sdb sschema fields =
  Alcotest.test_case name `Quick (fun () ->
      let db = network_of sdb sschema in
      let db =
        List.fold_left
          (fun db (rtype, field) -> Ndb.ensure_index db ~rtype ~field)
          db fields
      in
      check "indexes verify clean" true (Ndb.verify_indexes db = []);
      List.iter
        (fun (rtype, field) ->
          check (Fmt.str "%s.%s indexed" rtype field) true
            (Ndb.has_index db ~rtype ~field);
          List.iter
            (fun k ->
              match Ndb.view_silent db k with
              | None -> ()
              | Some row ->
                  let v =
                    Option.value (Row.get row field) ~default:Value.Null
                  in
                  check
                    (Fmt.str "%s.%s = %s" rtype field (Value.show v))
                    true
                    (Ndb.lookup_eq_silent db ~rtype ~field v
                    = Some (scan_eq db rtype field v)))
            (Ndb.all_keys_silent db rtype))
        fields)

(* ------------------------------------------------------------------ *)
(* Semantic model: rows_eq vs extent scan, find_entity unchanged.      *)

let sdb_eq_case name sdb fields =
  Alcotest.test_case name `Quick (fun () ->
      let db =
        List.fold_left
          (fun db (ename, field) -> Sdb.ensure_index db ename field)
          sdb fields
      in
      List.iter
        (fun (ename, field) ->
          check (Fmt.str "%s.%s indexed" ename field) true
            (Sdb.has_index db ename field);
          List.iter
            (fun row ->
              let v = Option.value (Row.get row field) ~default:Value.Null in
              let scan =
                List.filter
                  (fun r ->
                    Value.equal
                      (Option.value (Row.get r field) ~default:Value.Null)
                      v)
                  (Sdb.rows_silent db ename)
              in
              check
                (Fmt.str "%s.%s = %s" ename field (Value.show v))
                true
                (Sdb.rows_eq_silent db ename field v = Some scan))
            (Sdb.rows_silent db ename))
        fields)

let abstract_index_transparent () =
  (* The same access-pattern query, with and without indexes: the
     evaluator must deliver identical contexts. *)
  let sdb = W.Company.instance () in
  let query =
    [ Apattern.Self
        { target = "EMP";
          qual =
            Cond.Cmp
              (Cond.Eq, Cond.Field "DEPT-NAME", Cond.Const (Value.Str "SALES"));
        };
    ]
  in
  let env _ = None in
  let plain = Apattern.eval sdb ~env query in
  let indexed = Apattern.eval (Sdb.ensure_index sdb "EMP" "DEPT-NAME") ~env query in
  check "same context count" true (List.length plain = List.length indexed);
  check "same contexts" true
    (List.for_all2
       (fun a b -> Row.to_list a = Row.to_list b)
       plain indexed)

(* ------------------------------------------------------------------ *)
(* FIND NEXT asymptotics: a full sweep of N records must stay O(N).    *)

let find_next_linear () =
  let n = 200 in
  let sdb = W.Company.scaled ~seed:11 ~n in
  let db = network_of sdb W.Company.schema in
  let counters = Ndb.counters db in
  let env _ = None in
  let before = Counters.total counters in
  let rec sweep db cur count =
    let o =
      Interp.exec db cur ~env (Dml.Find (Dml.Duplicate ("EMP", Cond.True)))
    in
    if o.Interp.status = Status.Ok then sweep o.Interp.db o.Interp.cur (count + 1)
    else count
  in
  let o =
    Interp.exec db Interp.initial_currency ~env
      (Dml.Find (Dml.Any ("EMP", Cond.True)))
  in
  check "first found" true (o.Interp.status = Status.Ok);
  let swept = sweep o.Interp.db o.Interp.cur 1 in
  let accesses = Counters.total counters - before in
  check "visited every record" true (swept = n);
  (* O(N): a constant number of accesses per step.  The legacy rescan
     cost ~N^2 (here 40000+); leave generous linear headroom. *)
  check
    (Fmt.str "linear accesses (%d for n=%d)" accesses n)
    true
    (accesses <= 10 * n);
  check "beats quadratic" true (accesses * 4 < n * n)

let () =
  let company = W.Company.instance () in
  let school = W.School.instance () in
  Alcotest.run "index"
    [ ( "ndb",
        [ QCheck_alcotest.to_alcotest prop_sequences;
          QCheck_alcotest.to_alcotest prop_sorted_sequences;
          workload_case "company workload: index = scan" company
            W.Company.schema
            [ ("EMP", "EMP-NAME"); ("EMP", "DEPT-NAME"); ("DIV", "DIV-NAME") ];
          workload_case "school workload: index = scan" school W.School.schema
            [ ("COURSE", "CNO"); ("SEMESTER", "S") ];
        ] );
      ( "sdb",
        [ sdb_eq_case "company extents: rows_eq = filter" company
            [ ("EMP", "EMP-NAME"); ("EMP", "DEPT-NAME") ];
          sdb_eq_case "school extents: rows_eq = filter" school
            [ ("COURSE", "CNO") ];
          Alcotest.test_case "abstract eval ignores index presence" `Quick
            abstract_index_transparent;
        ] );
      ( "asymptotics",
        [ Alcotest.test_case "FIND NEXT sweep is O(N)" `Quick find_next_linear ]
      );
    ]
