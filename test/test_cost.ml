(* Cost-based plan selection: the statistics snapshot may change which
   access path a plan takes, never what it answers.  The suite pins

   - (qcheck) cost-chosen plans are Io_trace-identical to heuristic
     plans for every generator family over both example schemas, at
     uniform and skewed key popularity;
   - the cost model is monotone in bucket size, and a skewed instance
     flips the probe to the selective conjunct (with fewer record
     reads, same answers);
   - [Stats.drift] measures the largest relative count change;
   - [Plan_cache.note_drift] flushes the generation and counts a
     drift invalidation, distinct from fingerprint invalidations;
   - the optimizer's common-prefix sharing rewrite preserves the
     interpreted trace. *)

open Ccv_common
open Ccv_model
open Ccv_abstract
open Ccv_plan
open Ccv_convert
module W = Ccv_workload
module G = Ccv_workload.Generator

let check = Alcotest.(check bool)

let schemas =
  [ ("company", W.Company.schema, fun () -> W.Company.instance ());
    ("school", W.School.schema, fun () -> W.School.instance ());
  ]

(* ------------------------------------------------------------------ *)
(* (a) qcheck differential: cost-based = heuristic, every family x
   both schemas x uniform and skewed workloads                         *)

let same_run db_h db_c h c =
  Io_trace.equal h.Ainterp.trace c.Ainterp.trace
  && Sdb.equal_contents db_h db_c
  && h.Ainterp.steps = c.Ainterp.steps
  && h.Ainterp.hit_limit = c.Ainterp.hit_limit

let cost_parity_prop =
  QCheck.Test.make
    ~name:"cost-based plans = heuristic plans (families x schemas x skews)"
    ~count:6
    QCheck.(int_range 1 100_000)
    (fun seed ->
      List.for_all
        (fun (_sname, schema, instance) ->
          List.for_all
            (fun skew ->
              let sample = instance () in
              let stats = Stats.of_sdb sample in
              List.for_all
                (fun family ->
                  let batch =
                    G.batch ~seed schema ~sample ~n:2 ~mix:[ (1, family) ]
                      ~skew ()
                  in
                  List.for_all
                    (fun (_, aprog) ->
                      let h =
                        Compile.run (instance ()) (Compile.compile schema aprog)
                      in
                      let c =
                        Compile.run (instance ())
                          (Compile.compile ~stats schema aprog)
                      in
                      same_run h.Ainterp.db c.Ainterp.db h c)
                    batch)
                G.all_families)
            [ 0.; 1.2 ])
        schemas)

(* ------------------------------------------------------------------ *)
(* (b) cost model: monotone in bucket size; the probe choice follows   *)

let emp_stats ~dept_bucket ~age_bucket =
  Stats.make
    ~entities:
      [ ( "EMP",
          { Stats.count = 120;
            field_stats =
              [ ( "DEPT-NAME",
                  { Stats.distinct = 3;
                    max_bucket = dept_bucket;
                    hot = [ (Value.Str "SALES", dept_bucket) ];
                  } );
                ( "AGE",
                  { Stats.distinct = 40;
                    max_bucket = age_bucket;
                    hot = [ (Value.Int 30, age_bucket) ];
                  } );
              ];
          } );
      ]
    ~links:[]

let sales_query =
  [ Apattern.Self
      { target = "EMP";
        qual =
          Cond.And
            ( Cond.eq_field_const "DEPT-NAME" (Value.Str "SALES"),
              Cond.eq_field_const "AGE" (Value.Int 30) );
      };
  ]

let monotonicity_case () =
  let schema = W.Company.schema in
  (* eq_rows grows with the bucket *)
  let rows_at n =
    Cost.eq_rows
      (emp_stats ~dept_bucket:n ~age_bucket:2)
      "EMP" "DEPT-NAME"
      (Some (Value.Str "SALES"))
  in
  check "eq_rows monotone in bucket size" true
    (rows_at 2 < rows_at 20 && rows_at 20 < rows_at 80);
  (* and so does the cost of a pinned plan (the heuristic one probes
     DEPT-NAME, the growing bucket) — of_query itself would dodge the
     growth by flipping the probe to AGE *)
  let pinned = Plan.of_query schema sales_query in
  let cost_at n =
    Plan.total_cost ~stats:(emp_stats ~dept_bucket:n ~age_bucket:2) schema
      pinned
  in
  check "total_cost monotone in bucket size" true
    (cost_at 2 < cost_at 20 && cost_at 20 < cost_at 80);
  (* probe choice follows the smaller bucket *)
  let probe_field stats =
    match (List.hd (Plan.of_query ~stats schema sales_query).Plan.steps)
            .Plan.access
    with
    | Plan.Indexed_probe { field; _ } -> Symbol.name field
    | a -> Alcotest.failf "expected a probe, got %a" Plan.pp_access a
  in
  check "probe follows the selective conjunct (AGE)" true
    (probe_field (emp_stats ~dept_bucket:40 ~age_bucket:2) = "AGE");
  check "probe follows the selective conjunct (DEPT-NAME)" true
    (probe_field (emp_stats ~dept_bucket:2 ~age_bucket:40) = "DEPT-NAME");
  (* no statistics: the heuristic first-conjunct choice survives *)
  match
    (List.hd (Plan.of_query schema sales_query).Plan.steps).Plan.access
  with
  | Plan.Indexed_probe { field; _ } ->
      check "heuristic picks the first conjunct" true
        (Symbol.name field = "DEPT-NAME")
  | a -> Alcotest.failf "expected a probe, got %a" Plan.pp_access a

(* On a real skewed instance the cost-chosen probe touches fewer
   records for the same answers. *)
let skewed_probe_case () =
  let schema = W.Company.schema in
  let sample = W.Company.scaled ~seed:17 ~n:240 in
  let sales_emp =
    match
      List.find_opt
        (fun r -> Row.get r "DEPT-NAME" = Some (Value.Str "SALES"))
        (Sdb.rows_silent sample "EMP")
    with
    | Some r -> (
        match Row.get r "EMP-NAME" with
        | Some (Value.Str n) -> n
        | _ -> Alcotest.fail "EMP-NAME missing")
    | None -> Alcotest.fail "no SALES employee in the scaled instance"
  in
  let aprog =
    { Aprog.name = "SKEWED-LOOKUP";
      body =
        [ Aprog.For_each
            { query =
                [ Apattern.Self
                    { target = "EMP";
                      qual =
                        Cond.And
                          ( Cond.eq_field_const "DEPT-NAME" (Value.Str "SALES"),
                            Cond.eq_field_const "EMP-NAME"
                              (Value.Str sales_emp) );
                    };
                ];
              body = [ Aprog.Display [ Host.v "EMP.AGE" ] ];
            };
        ];
    }
  in
  let stats = Stats.of_sdb sample in
  let run compiled =
    let db = W.Company.scaled ~seed:17 ~n:240 in
    Counters.reset (Sdb.counters db);
    let r = Compile.run db compiled in
    (r, Counters.reads (Sdb.counters r.Ainterp.db))
  in
  let h, h_reads = run (Compile.compile schema aprog) in
  let c, c_reads = run (Compile.compile ~stats schema aprog) in
  check "skewed probe: same trace" true
    (Io_trace.equal h.Ainterp.trace c.Ainterp.trace);
  check
    (Fmt.str "skewed probe reads fewer records (%d < %d)" c_reads h_reads)
    true (c_reads < h_reads)

(* ------------------------------------------------------------------ *)
(* (c) Stats.drift                                                     *)

let drift_case () =
  let counts es = Stats.of_counts ~entities:es ~links:[] in
  let b = counts [ ("EMP", 10); ("DIV", 4) ] in
  check "identical snapshots do not drift" true
    (Stats.drift ~baseline:b ~observed:b = 0.);
  check "40% growth drifts 0.4" true
    (abs_float
       (Stats.drift ~baseline:b ~observed:(counts [ ("EMP", 14); ("DIV", 4) ])
       -. 0.4)
    < 1e-9);
  check "doubling drifts 1.0" true
    (Stats.drift ~baseline:b ~observed:(counts [ ("EMP", 20); ("DIV", 4) ])
    = 1.);
  check "a vanished extent drifts to zero (1.0)" true
    (Stats.drift ~baseline:b ~observed:(counts [ ("DIV", 4) ]) = 1.);
  check "link drift counts too" true
    (Stats.drift
       ~baseline:(Stats.of_counts ~entities:[] ~links:[ ("DIV-EMP", 8) ])
       ~observed:(Stats.of_counts ~entities:[] ~links:[ ("DIV-EMP", 12) ])
    = 0.5);
  (* real snapshots of the same instance agree *)
  let s = Stats.of_sdb (W.Company.instance ()) in
  check "of_sdb is stable" true
    (Stats.drift ~baseline:s ~observed:(Stats.of_sdb (W.Company.instance ()))
    = 0.)

(* ------------------------------------------------------------------ *)
(* (d) Plan_cache.note_drift                                           *)

let drift_invalidation_case () =
  let schema = W.Company.schema in
  let sdb = W.Company.instance () in
  let cache : (Aprog.t, Compile.t) Plan_cache.t = Plan_cache.create () in
  let fp = Plan_cache.schema_fingerprint schema in
  let progs = List.map snd (G.batch ~seed:9 schema ~sample:sdb ~n:3 ()) in
  let fill () =
    List.iter
      (fun p ->
        ignore
          (Plan_cache.find_or_compile cache ~fingerprint:fp p
             ~compile:(Compile.compile schema)))
      progs
  in
  fill ();
  let s0 = Plan_cache.stats cache in
  check "cache warmed" true (s0.Plan_cache.size = List.length progs);
  Plan_cache.note_drift cache;
  let s1 = Plan_cache.stats cache in
  check "drift flushes the generation" true (s1.Plan_cache.size = 0);
  check "drift invalidation counted" true
    (s1.Plan_cache.drift_invalidations = 1);
  check "not a fingerprint invalidation" true
    (s1.Plan_cache.invalidations = s0.Plan_cache.invalidations);
  (* same fingerprint recompiles after the flush, then hits again *)
  fill ();
  fill ();
  let s2 = Plan_cache.stats cache in
  check "recompiled under the same fingerprint" true
    (s2.Plan_cache.misses = 2 * List.length progs);
  check "steady state restored" true
    (s2.Plan_cache.hits = s0.Plan_cache.hits + List.length progs)

(* ------------------------------------------------------------------ *)
(* (e) sharing rewrite: the optimizer merges a singleton common
   prefix and the interpreted trace is unchanged                       *)

let sharing_case () =
  let schema = W.Company.schema in
  let prefix =
    [ Apattern.Self
        { target = "EMP";
          qual = Cond.eq_field_const "EMP-NAME" (Value.Str "ADAMS");
        };
      Apattern.Self
        { target = "DIV";
          qual = Cond.eq_field_const "DIV-NAME" (Value.Str "MACHINERY");
        };
    ]
  in
  let p =
    { Aprog.name = "SHARED-PREFIX";
      body =
        [ Aprog.For_each
            { query = prefix; body = [ Aprog.Display [ Host.v "EMP.AGE" ] ] };
          Aprog.For_each
            { query = prefix;
              body = [ Aprog.Display [ Host.v "DIV.DIV-LOC" ] ];
            };
        ];
    }
  in
  let contains s sub =
    let n = String.length sub in
    let rec go i =
      i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
    in
    go 0
  in
  let optimized, log = Optimizer.optimize schema p in
  check "rewrite fired" true (List.exists (fun l -> contains l "shared") log);
  check "one loop remains" true
    (List.length (Aprog.queries optimized) < List.length (Aprog.queries p));
  let r = Ainterp.run (W.Company.instance ()) p in
  let o = Ainterp.run (W.Company.instance ()) optimized in
  check "shared prefix: same trace" true
    (Io_trace.equal r.Ainterp.trace o.Ainterp.trace);
  check "shared prefix: same contents" true
    (Sdb.equal_contents r.Ainterp.db o.Ainterp.db)

let () =
  Alcotest.run "cost"
    [ ("differential", [ QCheck_alcotest.to_alcotest cost_parity_prop ]);
      ( "model",
        [ Alcotest.test_case "cost monotone in bucket size" `Quick
            monotonicity_case;
          Alcotest.test_case "skewed instance flips the probe" `Quick
            skewed_probe_case;
        ] );
      ( "drift",
        [ Alcotest.test_case "Stats.drift" `Quick drift_case;
          Alcotest.test_case "note_drift flushes the cache" `Quick
            drift_invalidation_case;
        ] );
      ("sharing", [ Alcotest.test_case "common prefix shared" `Quick sharing_case ]);
    ]
