(* Differential property suite for the plan compiler: compiled
   execution must be observationally identical to the reference
   interpreter — same Io_trace, same final database contents, same
   step count — for every generator workload over both example
   schemas, and must stay identical after a Schema_change
   restructuring flushes the plan cache. *)

open Ccv_common
open Ccv_model
open Ccv_abstract
open Ccv_plan
open Ccv_transform
open Ccv_convert
module W = Ccv_workload
module G = Ccv_workload.Generator

let check = Alcotest.(check bool)

let schemas =
  [ ("company", W.Company.schema, fun () -> W.Company.instance ());
    ("school", W.School.schema, fun () -> W.School.instance ());
  ]

let family_name f = Fmt.str "%a" G.pp_family f

let assert_same_run label db aprog =
  let reference = Ainterp.run db aprog in
  let compiled = Compile.run db (Compile.compile (Sdb.schema db) aprog) in
  if not (Io_trace.equal reference.Ainterp.trace compiled.Ainterp.trace) then begin
    (match
       Io_trace.first_divergence reference.Ainterp.trace compiled.Ainterp.trace
     with
    | Some (i, r, c) ->
        Fmt.epr "%s: traces diverge at %d: %a vs %a@." label i
          Fmt.(option Io_trace.pp_event) r
          Fmt.(option Io_trace.pp_event) c
    | None -> ());
    Alcotest.failf "%s: compiled trace differs from interpreted" label
  end;
  check (label ^ ": same final contents") true
    (Sdb.equal_contents reference.Ainterp.db compiled.Ainterp.db);
  check (label ^ ": same step count") true
    (reference.Ainterp.steps = compiled.Ainterp.steps);
  check (label ^ ": same limit behaviour") true
    (reference.Ainterp.hit_limit = compiled.Ainterp.hit_limit)

(* every family, both schemas, several seeds *)
let differential_cases =
  List.concat_map
    (fun (sname, schema, instance) ->
      List.map
        (fun family ->
          Alcotest.test_case
            (Fmt.str "%s/%s compiled = interpreted" sname (family_name family))
            `Quick
            (fun () ->
              List.iter
                (fun seed ->
                  let sample = instance () in
                  let batch =
                    G.batch ~seed schema ~sample ~n:8 ~mix:[ (1, family) ] ()
                  in
                  List.iteri
                    (fun i (_, aprog) ->
                      assert_same_run
                        (Fmt.str "%s/%s seed=%d #%d" sname
                           (family_name family) seed i)
                        (instance ()) aprog)
                    batch)
                [ 11; 42; 271 ]))
        G.all_families)
    schemas

(* mixed batches, to exercise cross-family interleavings of state *)
let mixed_case =
  Alcotest.test_case "mixed batch compiled = interpreted" `Quick (fun () ->
      List.iter
        (fun (sname, schema, instance) ->
          let batch =
            G.batch ~seed:2026 schema ~sample:(instance ()) ~n:25 ()
          in
          List.iteri
            (fun i (family, aprog) ->
              assert_same_run
                (Fmt.str "%s mixed #%d (%s)" sname i (family_name family))
                (instance ()) aprog)
            batch)
        schemas)

(* ------------------------------------------------------------------ *)
(* Host-program compilation: the concrete engines driven through
   compiled host closures must reproduce Host.Run exactly.             *)

let host_compiled_case =
  Alcotest.test_case "host programs compiled = interpreted" `Quick (fun () ->
      List.iter
        (fun (mname, model) ->
          let schema = W.Company.schema in
          let sdb = W.Company.instance () in
          let mapping = Supervisor.mapping_for model schema in
          let _, db = Supervisor.realize model sdb in
          let batch =
            G.batch ~seed:7 schema ~sample:sdb ~n:12 ()
          in
          List.iteri
            (fun i (family, aprog) ->
              match Generator.generate mapping aprog with
              | Error _ -> () (* a generation refusal has nothing to compare *)
              | Ok { Generator.program; _ } ->
                  let label =
                    Fmt.str "%s #%d (%s)" mname i (family_name family)
                  in
                  let r = Engines.run db program in
                  let c = Engines.run_compiled db (Engines.compile program) in
                  check (label ^ ": same trace") true
                    (Io_trace.equal r.Engines.trace c.Engines.trace);
                  check (label ^ ": same steps") true
                    (r.Engines.steps = c.Engines.steps);
                  check (label ^ ": same accesses") true
                    (r.Engines.accesses = c.Engines.accesses))
            batch)
        [ ("net", Mapping.Net); ("rel", Mapping.Rel); ("hier", Mapping.Hier) ])

(* ------------------------------------------------------------------ *)
(* Plan cache: steady-state hits, and a Schema_change restructuring
   changes the fingerprint, flushes the cache, and the recompiled
   plans are still trace-identical to the interpreter.                 *)

let interpose_op =
  Schema_change.Interpose
    { through = W.Company.div_emp;
      new_entity = W.Company.dept;
      group_by = [ "DEPT-NAME" ];
      left_assoc = W.Company.div_dept;
      right_assoc = W.Company.dept_emp;
    }

let cache_invalidation_case =
  Alcotest.test_case "schema change invalidates the plan cache" `Quick
    (fun () ->
      let schema = W.Company.schema in
      let sdb = W.Company.instance () in
      let cache : (Aprog.t, Compile.t) Plan_cache.t = Plan_cache.create () in
      let fp1 = Plan_cache.schema_fingerprint schema in
      let progs =
        List.map snd (G.batch ~seed:5 schema ~sample:sdb ~n:4 ())
      in
      let compile_with schema aprog = Compile.compile schema aprog in
      (* first generation: all misses, then all hits *)
      List.iter
        (fun p ->
          ignore
            (Plan_cache.find_or_compile cache ~fingerprint:fp1 p
               ~compile:(compile_with schema)))
        progs;
      List.iter
        (fun p ->
          ignore
            (Plan_cache.find_or_compile cache ~fingerprint:fp1 p
               ~compile:(compile_with schema)))
        progs;
      let s1 = Plan_cache.stats cache in
      check "steady state hits" true (s1.Plan_cache.hits = List.length progs);
      check "one miss per program" true
        (s1.Plan_cache.misses = List.length progs);
      check "no invalidation yet" true (s1.Plan_cache.invalidations = 0);
      (* restructure: new fingerprint, flushed generation *)
      let schema' = Schema_change.apply_exn schema interpose_op in
      let fp2 = Plan_cache.schema_fingerprint schema' in
      check "restructuring changes the fingerprint" true (fp1 <> fp2);
      let sdb' =
        match Data_translate.translate_all sdb [ interpose_op ] with
        | Ok (sdb', _warnings) -> sdb'
        | Error e -> Alcotest.failf "data translation failed: %s" e
      in
      let progs' =
        List.map snd (G.batch ~seed:6 schema' ~sample:sdb' ~n:4 ())
      in
      List.iter
        (fun p ->
          let c =
            Plan_cache.find_or_compile cache ~fingerprint:fp2 p
              ~compile:(compile_with schema')
          in
          (* recompiled against the restructured schema: still the
             reference semantics *)
          let reference = Ainterp.run sdb' p in
          let compiled = Compile.run sdb' c in
          check "post-restructuring trace parity" true
            (Io_trace.equal reference.Ainterp.trace compiled.Ainterp.trace))
        progs';
      let s2 = Plan_cache.stats cache in
      check "restructuring invalidated the cache" true
        (s2.Plan_cache.invalidations = 1);
      check "stale plans were flushed" true
        (s2.Plan_cache.size = List.length progs'))

(* a stale plan must refuse to run rather than silently misread *)
let stale_plan_case =
  Alcotest.test_case "stale plan refuses a restructured instance" `Quick
    (fun () ->
      let schema = W.Company.schema in
      let sdb = W.Company.instance () in
      let aprog = snd (List.hd (G.batch ~seed:5 schema ~sample:sdb ~n:1 ())) in
      let c = Compile.compile schema aprog in
      let sdb' =
        match Data_translate.translate_all sdb [ interpose_op ] with
        | Ok (sdb', _) -> sdb'
        | Error e -> Alcotest.failf "data translation failed: %s" e
      in
      match Compile.run sdb' c with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "expected Invalid_argument on schema mismatch")

(* ------------------------------------------------------------------ *)
(* Plan IR: an equality-qualified SELF step resolves to an indexed
   probe and requests exactly the interpreter's indexes.               *)

let plan_ir_case =
  Alcotest.test_case "plans resolve access paths" `Quick (fun () ->
      let schema = W.Company.schema in
      let q =
        [ Apattern.Self
            { target = W.Company.emp;
              qual =
                Cond.Cmp
                  (Cond.Eq, Cond.Field "EMP-NAME", Cond.Const (Value.Str "SMITH"));
            }
        ]
      in
      let plan = Plan.of_query schema q in
      (match (List.hd plan.Plan.steps).Plan.access with
      | Plan.Indexed_probe _ -> ()
      | a -> Alcotest.failf "expected an indexed probe, got %a" Plan.pp_access a);
      check "probe field is required as an index" true
        (List.exists
           (fun (e, f) ->
             Field.name_equal e W.Company.emp && Field.name_equal f "EMP-NAME")
           (Plan.required_indexes plan));
      let unqualified = [ Apattern.Self { target = W.Company.emp; qual = Cond.True } ] in
      match (List.hd (Plan.of_query schema unqualified).Plan.steps).Plan.access with
      | Plan.Extent_scan -> ()
      | a -> Alcotest.failf "expected a scan, got %a" Plan.pp_access a)

let io_trace_case =
  Alcotest.test_case "Io_trace length and fused equal" `Quick (fun () ->
      let t =
        [ Io_trace.Terminal_out "a";
          Io_trace.File_write ("f", "x");
          Io_trace.Terminal_in "b";
        ]
      in
      check "length" true (Io_trace.length t = 3);
      check "equal" true (Io_trace.equal t t);
      check "prefix not equal" true
        (not (Io_trace.equal t [ Io_trace.Terminal_out "a" ]));
      check "suffix not equal" true
        (not (Io_trace.equal [ Io_trace.Terminal_out "a" ] t)))

let () =
  Alcotest.run "plan"
    [ ("differential", differential_cases @ [ mixed_case ]);
      ("host", [ host_compiled_case ]);
      ("cache", [ cache_invalidation_case; stale_plan_case ]);
      ("ir", [ plan_ir_case; io_trace_case ]);
    ]
