(* The traversal kit: identity/fusion laws for the Map engine, size and
   query agreement for the Fold engine, and environment threading —
   checked over generated corpora on both built-in schemas, so the kit
   provably subsumes the hand-rolled recursions it replaced. *)

open Ccv_common
open Ccv_abstract
module W = Ccv_workload

let corpus schema sample = Ccv_workload.Generator.batch ~seed:7 schema ~sample ~n:80 ()

let corpora () =
  List.map (fun (_fam, p) -> p)
    (corpus W.Company.schema (W.Company.instance ())
    @ corpus W.School.schema (W.School.instance ()))

module M = Traverse.Map (Traverse.Unit_env)

let identity_case =
  Alcotest.test_case "default Map is the identity" `Quick (fun () ->
      List.iter
        (fun p ->
          Alcotest.(check bool)
            (Fmt.str "identity on %s" p.Aprog.name)
            true
            (Aprog.equal p (M.program M.default () p)))
        (corpora ()))

let fold_size_case =
  Alcotest.test_case "fold_stmts counts like Aprog.size" `Quick (fun () ->
      List.iter
        (fun p ->
          Alcotest.(check int)
            (Fmt.str "size of %s" p.Aprog.name)
            (Aprog.size p)
            (Traverse.fold_stmts (fun n _ -> n + 1) 0 p))
        (corpora ()))

let fold_queries_case =
  Alcotest.test_case "fold_queries agrees with Aprog.queries" `Quick (fun () ->
      List.iter
        (fun p ->
          let collected =
            List.rev (Traverse.fold_queries (fun acc q -> q :: acc) [] p)
          in
          let expected = Aprog.queries p in
          Alcotest.(check int)
            (Fmt.str "query count of %s" p.Aprog.name)
            (List.length expected) (List.length collected);
          List.iter2
            (fun a b ->
              Alcotest.(check bool)
                (Fmt.str "query of %s" p.Aprog.name)
                true (Apattern.equal a b))
            expected collected)
        (corpora ()))

let fusion_case =
  Alcotest.test_case "rename maps fuse" `Quick (fun () ->
      let f v = v ^ "_F" and g v = v ^ "_G" in
      List.iter
        (fun p ->
          let sequential = Ccv_convert.Rules.rename_vars f
              (Ccv_convert.Rules.rename_vars g p)
          in
          let fused = Ccv_convert.Rules.rename_vars (fun v -> f (g v)) p in
          Alcotest.(check bool)
            (Fmt.str "fusion on %s" p.Aprog.name)
            true
            (Aprog.equal sequential fused))
        (corpora ()))

(* Environment threading mirrors Aprog.check: FOR EACH binds its
   query's names over the body; FIRST binds them over the present
   branch only. *)
module FN = Traverse.Fold (Traverse.Names)

let env_case =
  Alcotest.test_case "Names env binds like Aprog.check" `Quick (fun () ->
      let q target = [ Apattern.Self { target; qual = Cond.True } ] in
      let display tag = Aprog.Display [ Ccv_abstract.Host.v tag ] in
      let p =
        { Aprog.name = "ENV";
          body =
            [ Aprog.For_each
                { query = q "EMP";
                  body =
                    [ Aprog.First
                        { query = q "DIV";
                          present = [ display "P" ];
                          absent = [ display "A" ];
                        };
                    ];
                };
            ];
        }
      in
      let folder =
        { FN.default with
          FN.stmt =
            (fun self env acc s ->
              match s with
              | Aprog.Display _ -> Some ((s, env) :: acc)
              | _ -> ignore self; None);
        }
      in
      let seen = List.rev (FN.program folder [] [] p) in
      match seen with
      | [ (Aprog.Display [ pe ], env_p); (Aprog.Display [ ae ], env_a) ] ->
          ignore pe;
          ignore ae;
          Alcotest.(check (list string))
            "present branch sees FIRST and FOR EACH names"
            [ "DIV"; "EMP" ] env_p;
          Alcotest.(check (list string))
            "absent branch sees only FOR EACH names" [ "EMP" ] env_a
      | _ -> Alcotest.fail "unexpected fold order")

let () =
  Alcotest.run "traverse"
    [ ("laws",
       [ identity_case; fold_size_case; fold_queries_case; fusion_case ]);
      ("env", [ env_case ]);
    ]
