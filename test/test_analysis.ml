(* The conversion-safety analyzer.

   The load-bearing property is differential: the preflight verdict
   must agree with the rewrite engine on every (program, schema-change)
   pair — no false accepts (preflight convertible, engine refuses) and
   no false refusals (preflight refuses, engine converts) — measured
   over >= 10k generated pairs across both built-in schemas.  Around
   it: unit suites for the depth pass, each lint, the inference pass,
   and diagnostic rendering. *)

open Ccv_common
open Ccv_abstract
open Ccv_transform
open Ccv_convert
module W = Ccv_workload
module A = Ccv_analysis

let check = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Restructuring chains per schema — every operator class, including
   the multi-op widen and interpose-then-collapse chains              *)

let interpose_op =
  Schema_change.Interpose
    { through = W.Company.div_emp;
      new_entity = W.Company.dept;
      group_by = [ "DEPT-NAME" ];
      left_assoc = W.Company.div_dept;
      right_assoc = W.Company.dept_emp;
    }

let collapse_op =
  Schema_change.Collapse
    { left_assoc = W.Company.div_dept;
      right_assoc = W.Company.dept_emp;
      removed_entity = W.Company.dept;
      restored_assoc = W.Company.div_emp;
    }

let company_chains =
  [ [ Schema_change.Rename_entity { from_ = "EMP"; to_ = "EMPLOYEE" } ];
    [ Schema_change.Rename_field
        { entity = "EMP"; from_ = "AGE"; to_ = "EMP-AGE" };
    ];
    [ Schema_change.Add_field
        { entity = "EMP";
          field = Field.make "SALARY" Value.Tint;
          default = Value.Int 0;
        };
    ];
    [ Schema_change.Drop_field { entity = "EMP"; field = "AGE" } ];
    [ Schema_change.Drop_field { entity = "EMP"; field = "DEPT-NAME" } ];
    [ Schema_change.Add_constraint
        (Ccv_model.Semantic.Field_not_null
           { entity = "EMP"; field = "DEPT-NAME" });
    ];
    [ Schema_change.Drop_constraint
        (Ccv_model.Semantic.Total_right W.Company.div_emp);
      Schema_change.Widen_cardinality { assoc = W.Company.div_emp };
    ];
    [ interpose_op ];
    [ interpose_op; collapse_op ];
    [ Schema_change.Restrict_extension
        { entity = "EMP"; qual = Cond.eq_field_const "AGE" (Value.Int 30) };
    ];
  ]

let school_chains =
  [ [ Schema_change.Rename_entity { from_ = W.School.course; to_ = "KURS" } ];
    [ Schema_change.Rename_assoc
        { from_ = W.School.offering; to_ = "TEACHING" };
    ];
    [ Schema_change.Drop_field { entity = W.School.course; field = "CNAME" } ];
    [ Schema_change.Add_field
        { entity = W.School.semester;
          field = Field.make "TERM" Value.Tstr;
          default = Value.Str "";
        };
    ];
    [ Schema_change.Restrict_extension
        { entity = W.School.semester;
          qual = Cond.eq_field_const "YEAR" (Value.Int 1970);
        };
    ];
  ]

(* Run a corpus through every chain, comparing the static verdict with
   the engine on each (program, op) pair. *)
let differential ~seed ~n schema sample chains =
  let pairs = ref 0 and false_accepts = ref 0 and false_refusals = ref 0 in
  List.iter
    (fun (_fam, p) ->
      List.iter
        (fun chain ->
          let rec go schema p = function
            | [] -> ()
            | op :: rest -> (
                incr pairs;
                let predicted = Rules.preflight_op schema op p in
                let actual = Rules.convert_d schema op p in
                (match (predicted, actual) with
                | None, Ok _ | Some _, Error _ -> ()
                | None, Error d ->
                    incr false_accepts;
                    Printf.eprintf "false accept on %s / %s: %s\n"
                      p.Aprog.name (Schema_change.show_op op)
                      (Diagnostic.to_string d)
                | Some d, Ok _ ->
                    incr false_refusals;
                    Printf.eprintf "false refusal on %s / %s: %s\n"
                      p.Aprog.name (Schema_change.show_op op)
                      (Diagnostic.to_string d));
                match actual with
                | Error _ -> ()
                | Ok (p', _) -> (
                    match Schema_change.apply schema op with
                    | Error _ -> ()
                    | Ok schema' -> go schema' p' rest))
          in
          go schema p chain)
        chains)
    (W.Generator.batch ~seed schema ~sample ~n ());
  (!pairs, !false_accepts, !false_refusals)

let differential_10k () =
  let pc, fac, frc =
    differential ~seed:2024 ~n:600 W.Company.schema (W.Company.instance ())
      company_chains
  in
  let ps, fas, frs =
    differential ~seed:2024 ~n:600 W.School.schema (W.School.instance ())
      school_chains
  in
  check
    (Printf.sprintf "corpus is large enough (%d pairs)" (pc + ps))
    true
    (pc + ps >= 10_000);
  Alcotest.(check int) "no false accepts" 0 (fac + fas);
  Alcotest.(check int) "no false refusals" 0 (frc + frs)

(* The same agreement as a seeded property: fresh corpora per seed. *)
let differential_prop =
  QCheck.Test.make ~name:"preflight verdict = engine outcome" ~count:25
    QCheck.(int_range 1 100_000)
    (fun seed ->
      let _, fac, frc =
        differential ~seed ~n:12 W.Company.schema (W.Company.instance ())
          company_chains
      in
      let _, fas, frs =
        differential ~seed ~n:12 W.School.schema (W.School.instance ())
          school_chains
      in
      fac + fas + frc + frs = 0)

(* classify threads multi-op chains through the engine *)
let classify_cases () =
  let benign =
    { Aprog.name = "BENIGN";
      body =
        [ Aprog.For_each
            { query =
                [ Apattern.Self { target = "EMP"; qual = Cond.True } ];
              body = [ Aprog.Display [ Host.v "EMP.EMP-NAME" ] ];
            };
        ];
    }
  in
  (match A.Preflight.classify W.Company.schema [ interpose_op; collapse_op ]
           benign
   with
  | A.Preflight.Convertible -> ()
  | A.Preflight.Refused { diagnostic; _ } ->
      Alcotest.failf "unexpected refusal: %s" (Diagnostic.to_string diagnostic));
  let reads_age =
    { Aprog.name = "READS-AGE";
      body =
        [ Aprog.For_each
            { query =
                [ Apattern.Self
                    { target = "EMP";
                      qual =
                        Cond.eq_field_const "AGE" (Value.Int 30);
                    };
                ];
              body = [ Aprog.Display [ Host.v "EMP.EMP-NAME" ] ];
            };
        ];
    }
  in
  match
    A.Preflight.classify W.Company.schema
      [ Schema_change.Drop_field { entity = "EMP"; field = "AGE" } ]
      reads_age
  with
  | A.Preflight.Convertible -> Alcotest.fail "expected a refusal"
  | A.Preflight.Refused { at; diagnostic; _ } ->
      Alcotest.(check int) "refused at the first op" 0 at;
      Alcotest.(check string) "stable code" "CV015" diagnostic.Diagnostic.code

(* ------------------------------------------------------------------ *)
(* Depth pass                                                          *)

let av source =
  Apattern.Assoc_via { assoc = W.Company.div_emp; source; qual = Cond.True }

let va target =
  Apattern.Via_assoc { target; assoc = W.Company.div_emp; qual = Cond.True }

let ping_pong hops =
  let rec build from n =
    if n = 0 then []
    else
      let to_ = if from = W.Company.div then W.Company.emp else W.Company.div in
      av from :: va to_ :: build to_ (n - 1)
  in
  { Aprog.name = Printf.sprintf "HOPS-%d" hops;
    body =
      [ Aprog.For_each
          { query =
              Apattern.Self { target = W.Company.div; qual = Cond.True }
              :: build W.Company.div hops;
            body = [ Aprog.Display [ Host.v "X" ] ];
          };
      ];
  }

let depth_cases () =
  Alcotest.(check int) "two paired hops" 2 (A.Depth.max_hops (ping_pong 2));
  Alcotest.(check int) "three paired hops" 3 (A.Depth.max_hops (ping_pong 3));
  check "2 hops admitted" true (A.Depth.check (ping_pong 2) = Ok ());
  (match A.Depth.check (ping_pong 3) with
  | Ok () -> Alcotest.fail "3 hops must be refused at the default cap"
  | Error d ->
      Alcotest.(check string) "depth code" "AD001" d.Diagnostic.code;
      check "severity is error" true (d.Diagnostic.severity = Diagnostic.Error);
      check "diagnostic names the path" true (d.Diagnostic.path <> None));
  check "cap is overridable" true
    (A.Depth.check ~cap:3 (ping_pong 3) = Ok ());
  (* unpaired association steps count too *)
  let loose =
    { Aprog.name = "LOOSE";
      body =
        [ Aprog.For_each
            { query =
                [ Apattern.Self { target = W.Company.div; qual = Cond.True };
                  av W.Company.div;
                ];
              body = [];
            };
        ];
    }
  in
  Alcotest.(check int) "unpaired assoc step is one hop" 1
    (A.Depth.max_hops loose)

(* ------------------------------------------------------------------ *)
(* Lints                                                               *)

let lint_codes ds = List.map (fun (d : Diagnostic.t) -> d.Diagnostic.code) ds

let dead_step_case () =
  (* trailing partner hop binding values the body never reads *)
  let p =
    { Aprog.name = "DEAD";
      body =
        [ Aprog.For_each
            { query =
                [ Apattern.Self { target = W.Company.emp; qual = Cond.True };
                  av W.Company.emp; va W.Company.div;
                ];
              body = [ Aprog.Display [ Host.v "EMP.EMP-NAME" ] ];
            };
        ];
    }
  in
  check "LN001 flags the dead hop" true
    (List.mem "LN001" (lint_codes (A.Lint.dead_steps W.Company.schema p)));
  (* reading the partner keeps the hop alive *)
  let alive =
    { p with
      Aprog.body =
        [ Aprog.For_each
            { query =
                [ Apattern.Self { target = W.Company.emp; qual = Cond.True };
                  av W.Company.emp; va W.Company.div;
                ];
              body = [ Aprog.Display [ Host.v "DIV.DIV-NAME" ] ];
            };
        ];
    }
  in
  Alcotest.(check (list string)) "no lint when the hop is read" []
    (lint_codes (A.Lint.dead_steps W.Company.schema alive))

let common_subpattern_case () =
  let q tail =
    [ Apattern.Self { target = W.Company.div; qual = Cond.True };
      av W.Company.div; va W.Company.emp;
    ]
    @ tail
  in
  let loop query body = Aprog.For_each { query; body } in
  let p =
    { Aprog.name = "SHARED";
      body =
        [ loop (q []) [ Aprog.Display [ Host.v "A" ] ];
          loop (q []) [ Aprog.Display [ Host.v "B" ] ];
        ];
    }
  in
  check "LN002 flags the shared prefix" true
    (List.mem "LN002" (lint_codes (A.Lint.common_subpatterns p)));
  let single =
    { Aprog.name = "SINGLE"; body = [ loop (q []) [] ] }
  in
  Alcotest.(check (list string)) "one evaluation is fine" []
    (lint_codes (A.Lint.common_subpatterns single))

let unindexed_eq_case () =
  (* equality on a field EMP does not store: the plan stays a scan *)
  let p qual =
    { Aprog.name = "EQ";
      body =
        [ Aprog.For_each
            { query = [ Apattern.Self { target = W.Company.emp; qual } ];
              body = [];
            };
        ];
    }
  in
  check "LN003 flags an unindexable equality" true
    (List.mem "LN003"
       (lint_codes
          (A.Lint.unindexed_eq W.Company.schema
             (p (Cond.eq_field_const "DIV-NAME" (Value.Str "MACHINERY"))))));
  Alcotest.(check (list string)) "stored-field equality probes an index" []
    (lint_codes
       (A.Lint.unindexed_eq W.Company.schema
          (p (Cond.eq_field_const "EMP-NAME" (Value.Str "ADAMS")))))

(* ------------------------------------------------------------------ *)
(* Constraint inference                                                *)

let facts_case () =
  let guarded =
    { Aprog.name = "GUARDED";
      body =
        [ Aprog.First
            { query =
                [ Apattern.Self
                    { target = W.Company.emp;
                      qual = Cond.eq_field_const "EMP-NAME" (Value.Str "X");
                    };
                ];
              present = [];
              absent =
                [ Aprog.Insert
                    { entity = W.Company.emp;
                      values = [ ("EMP-NAME", Cond.Const (Value.Str "X")) ];
                      connects =
                        [ ( W.Company.div_emp,
                            [ Cond.Const (Value.Str "MACHINERY") ] );
                        ];
                    };
                ];
            };
        ];
    }
  in
  let codes = lint_codes (A.Facts.infer W.Company.schema guarded) in
  check "FA001 key uniqueness" true (List.mem "FA001" codes);
  check "FA002 guarded creation" true (List.mem "FA002" codes);
  check "FA004 required connection" true (List.mem "FA004" codes);
  let nav =
    { Aprog.name = "NAV";
      body =
        [ Aprog.For_each
            { query =
                [ Apattern.Self { target = W.Company.div; qual = Cond.True };
                  av W.Company.div; va W.Company.emp;
                ];
              body = [];
            };
        ];
    }
  in
  check "FA003 connectivity" true
    (List.mem "FA003" (lint_codes (A.Facts.infer W.Company.schema nav)));
  (* inference output is deduplicated *)
  let doubled =
    { nav with Aprog.body = nav.Aprog.body @ nav.Aprog.body }
  in
  Alcotest.(check int) "deduplicated facts" 1
    (List.length (A.Facts.infer W.Company.schema doubled))

(* ------------------------------------------------------------------ *)
(* Diagnostic plumbing                                                 *)

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

let diagnostic_case () =
  let d =
    Diagnostic.errf ~code:"CV999" ~entity:"EMP" ~field:"AGE" "boom %d" 7
  in
  Alcotest.(check string) "to_string is the bare message" "boom 7"
    (Diagnostic.to_string d);
  let j = Diagnostic.to_json d in
  check "json carries the code" true (contains ~affix:"\"code\":\"CV999\"" j);
  check "json carries the entity" true
    (contains ~affix:"\"entity\":\"EMP\"" j);
  Alcotest.(check (list (pair string int)))
    "count_codes dedupes in first-seen order"
    [ ("CV014", 2); ("CV001", 1) ]
    (Diagnostic.count_codes
       [ Diagnostic.errf ~code:"CV014" "a";
         Diagnostic.errf ~code:"CV001" "b";
         Diagnostic.errf ~code:"CV014" "c";
       ])

let () =
  Alcotest.run "analysis"
    [ ( "differential",
        [ Alcotest.test_case "10k pairs, zero mismatches" `Quick
            differential_10k;
          QCheck_alcotest.to_alcotest differential_prop;
          Alcotest.test_case "classify chains" `Quick classify_cases;
        ] );
      ( "depth",
        [ Alcotest.test_case "hop metric and admission" `Quick depth_cases ]
      );
      ( "lints",
        [ Alcotest.test_case "LN001 dead step" `Quick dead_step_case;
          Alcotest.test_case "LN002 common subpattern" `Quick
            common_subpattern_case;
          Alcotest.test_case "LN003 unindexed equality" `Quick
            unindexed_eq_case;
        ] );
      ("facts", [ Alcotest.test_case "inference" `Quick facts_case ]);
      ( "diagnostics",
        [ Alcotest.test_case "rendering and counting" `Quick diagnostic_case ]
      );
    ]
