(* The phased-coexistence service: a clean conversion must walk
   Shadow -> Canary -> Cutover with zero divergences and
   domain-count-independent output; an injected extension restriction
   (the §5.2 example) must trip the divergence detector and roll the
   canary back; and everything must be reproducible from the seed. *)

open Ccv_common
open Ccv_transform
open Ccv_convert
open Ccv_serve
module W = Ccv_workload

let check = Alcotest.(check bool)

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

let interpose_op =
  Schema_change.Interpose
    { through = W.Company.div_emp;
      new_entity = W.Company.dept;
      group_by = [ "DEPT-NAME" ];
      left_assoc = W.Company.div_dept;
      right_assoc = W.Company.dept_emp;
    }

let restrict_op =
  (* §5.2: instances dropped during conversion — CLARK (45) and
     EVANS (52) disappear from the target, so programs that touch them
     diverge while the conversion itself succeeds with a warning. *)
  Schema_change.Restrict_extension
    { entity = W.Company.emp;
      qual = Cond.Cmp (Cond.Ge, Cond.Field "AGE", Cond.Const (Value.Int 45));
    }

let net_req ops =
  { Supervisor.source_schema = W.Company.schema;
    source_model = Mapping.Net;
    ops;
    target_model = Mapping.Net;
  }

let requests ~seed ~n =
  Request.stream ~seed W.Company.schema ~sample:(W.Company.instance ()) ~n ()

let run_service ?(domains = 1) ?(shards = 4) ?(batch = 8)
    ?(use_plan_cache = true) ?(epoch_serving = true) ?(epoch_batch = 8)
    ?(steal = true) ?(split_threshold = 0) ~cutover ops reqs =
  let config =
    { Pool.default_config with
      domains; shards; batch; canary_seed = 7; use_plan_cache;
      epoch_serving; epoch_batch; steal; split_threshold;
    }
  in
  match Pool.run ~config ~cutover (net_req ops) (W.Company.instance ()) reqs with
  | Ok r -> r
  | Error e -> Alcotest.failf "service failed to start: %s" e

let terminal_output (r : Pool.report) =
  List.map
    (fun (o : Shadow.outcome) ->
      (o.Shadow.request.Request.id, Io_trace.terminal_lines o.Shadow.served_trace))
    r.Pool.outcomes

let promoting_cutover =
  { Cutover.canary_fraction = 0.3;
    window = 16;
    min_observations = 6;
    max_divergence_rate = 0.2;
    promote_after = 10;
    initial = Cutover.Shadow;
  }

(* ------------------------------------------------------------------ *)
(* (a) clean conversion reaches Cutover, identically under 1 and 4
   domains                                                             *)

let clean_cutover () =
  let reqs = requests ~seed:101 ~n:48 in
  let r1 = run_service ~domains:1 ~cutover:promoting_cutover [ interpose_op ] reqs in
  let r4 = run_service ~domains:4 ~cutover:promoting_cutover [ interpose_op ] reqs in
  List.iter
    (fun (label, (r : Pool.report)) ->
      check (label ^ ": reached cutover") true
        (Cutover.equal_phase r.Pool.final_phase Cutover.Cutover);
      check (label ^ ": still serving") true (r.Pool.status = Cutover.Serving);
      check (label ^ ": zero divergences") true
        (Metrics.total_divergent r.Pool.metrics = 0
        && r.Pool.divergences = []);
      check (label ^ ": everything served") true
        (r.Pool.served = 48 && r.Pool.unserved = 0))
    [ ("1 domain", r1); ("4 domains", r4) ];
  check "identical terminal output under 1 and 4 domains" true
    (terminal_output r1 = terminal_output r4);
  check "identical transitions under 1 and 4 domains" true
    (r1.Pool.transitions = r4.Pool.transitions);
  (* walked the whole ladder: Shadow -> Canary -> Cutover *)
  check "two promotions" true
    (List.length r1.Pool.transitions = 2
    && List.for_all
         (fun (t : Cutover.transition) ->
           contains ~affix:"promoted" t.Cutover.reason)
         r1.Pool.transitions)

(* The shared per-phase live counters (charged concurrently by the
   shard workers) must agree with the per-outcome sums — the
   domain-safety check for the Atomic counters. *)
let live_counters_consistent () =
  let reqs = requests ~seed:202 ~n:32 in
  let r = run_service ~domains:4 ~cutover:promoting_cutover [ interpose_op ] reqs in
  let by_phase =
    List.fold_left
      (fun acc (o : Shadow.outcome) ->
        let key = o.Shadow.phase in
        let reads, writes =
          Option.value (List.assoc_opt key acc) ~default:(0, 0)
        in
        (key,
         (reads + o.Shadow.source_accesses + o.Shadow.target_accesses,
          writes + 1))
        :: List.remove_assoc key acc)
      [] r.Pool.outcomes
  in
  List.iter
    (fun (phase, (reads, writes)) ->
      let live = Metrics.live r.Pool.metrics ~phase in
      check (phase ^ ": live reads = summed accesses") true
        (Counters.reads live = reads);
      check (phase ^ ": live writes = served requests") true
        (Counters.writes live = writes))
    by_phase

(* ------------------------------------------------------------------ *)
(* (b) injected divergence rolls the canary back                       *)

let rollback_cutover =
  { Cutover.canary_fraction = 0.3;
    window = 8;
    min_observations = 4;
    max_divergence_rate = 0.25;
    promote_after = 1000;
    initial = Cutover.Canary 0.3;
  }

let injected_divergence_rolls_back () =
  let reqs = requests ~seed:303 ~n:64 in
  let r = run_service ~domains:2 ~cutover:rollback_cutover [ restrict_op ] reqs in
  check "divergences detected" true (r.Pool.divergences <> []);
  let rollback =
    List.find_opt
      (fun (t : Cutover.transition) ->
        (match t.Cutover.from_ with Cutover.Canary _ -> true | _ -> false)
        && Cutover.equal_phase t.Cutover.to_ Cutover.Shadow)
      r.Pool.transitions
  in
  check "rolled back from canary to shadow" true (rollback <> None);
  (match rollback with
  | Some t ->
      check "rollback reason names the rate" true
        (contains ~affix:"rollback" t.Cutover.reason)
  | None -> ());
  (* the log names the first differing event of the §5.2 restriction *)
  let d = List.hd r.Pool.divergences in
  check "divergence names the first differing event" true
    (contains ~affix:"expected" d.Pool.detail
    && contains ~affix:"event" d.Pool.detail)

(* ------------------------------------------------------------------ *)
(* (c) seeded determinism across repeats and domain counts             *)

let deterministic_across_repeats () =
  let go domains =
    let reqs = requests ~seed:404 ~n:56 in
    run_service ~domains ~shards:5 ~cutover:rollback_cutover [ restrict_op ]
      reqs
  in
  let a = go 1 and b = go 4 and c = go 4 in
  let fingerprint (r : Pool.report) =
    ( r.Pool.transitions,
      List.length r.Pool.divergences,
      r.Pool.served,
      Cutover.phase_name r.Pool.final_phase,
      terminal_output r )
  in
  check "repeat with same seed is identical" true (fingerprint b = fingerprint c);
  check "domain count does not change behaviour" true
    (fingerprint a = fingerprint b)

(* The persistent pool's invariant, checked on the full report: the
   same stream under 1, 2 and 8 domains produces identical outcomes,
   transitions and divergence logs, field for field. *)
let deterministic_across_domain_counts () =
  let go domains =
    let reqs = requests ~seed:707 ~n:64 in
    run_service ~domains ~shards:8 ~cutover:rollback_cutover [ restrict_op ]
      reqs
  in
  let a = go 1 and b = go 2 and c = go 8 in
  let outcome_fp (o : Shadow.outcome) =
    ( o.Shadow.request.Request.id,
      o.Shadow.phase,
      o.Shadow.shard,
      o.Shadow.shadowed,
      o.Shadow.divergent,
      Io_trace.terminal_lines o.Shadow.served_trace )
  in
  let fp (r : Pool.report) =
    ( List.map outcome_fp r.Pool.outcomes,
      r.Pool.transitions,
      r.Pool.divergences )
  in
  check "1 domain = 2 domains" true (fp a = fp b);
  check "1 domain = 8 domains" true (fp a = fp c);
  check "report records the domain count used" true
    (a.Pool.domains = 1 && b.Pool.domains = 2 && c.Pool.domains = 8);
  check "per-worker idle is reported per slot" true
    (List.for_all
       (fun (r : Pool.report) ->
         List.length r.Pool.worker_idle_s = r.Pool.domains
         && Float.abs
              (List.fold_left ( +. ) 0. r.Pool.worker_idle_s
              -. r.Pool.pool_idle_s)
            < 1e-9)
       [ a; b; c ])

(* The same invariant must keep holding for the tick-barrier loop the
   epoch mode replaced — it stays around as the bench baseline. *)
let deterministic_across_domain_counts_barrier () =
  let go domains =
    let reqs = requests ~seed:707 ~n:64 in
    run_service ~domains ~shards:8 ~epoch_serving:false
      ~cutover:rollback_cutover [ restrict_op ] reqs
  in
  let a = go 1 and b = go 8 in
  check "barrier mode: 1 domain = 8 domains" true
    ( terminal_output a = terminal_output b
    && a.Pool.transitions = b.Pool.transitions
    && a.Pool.divergences = b.Pool.divergences );
  check "barrier mode flagged in the report" true
    ((not a.Pool.epoch_serving) && not b.Pool.epoch_serving)

(* Epoch mode's determinism mechanism is the canonical consumption
   order: outcomes and the divergence log must come out sorted by
   (epoch, shard, seq), whatever the physical arrival interleaving
   was. *)
let epoch_log_in_canonical_order () =
  let reqs = requests ~seed:303 ~n:64 in
  let r =
    run_service ~domains:4 ~shards:8 ~epoch_batch:4
      ~cutover:rollback_cutover [ restrict_op ] reqs
  in
  check "epoch mode flagged in the report" true r.Pool.epoch_serving;
  let okey (o : Shadow.outcome) = (o.Shadow.epoch, o.Shadow.shard, o.Shadow.seq) in
  let keys = List.map okey r.Pool.outcomes in
  check "outcomes in (epoch, shard, seq) order" true
    (keys = List.sort compare keys);
  check "divergences detected" true (r.Pool.divergences <> []);
  let dkeys =
    List.map
      (fun (d : Pool.divergence) ->
        (d.Pool.div_epoch, d.Pool.div_shard, d.Pool.div_seq))
      r.Pool.divergences
  in
  check "divergence log in (epoch, shard, seq) order" true
    (dkeys = List.sort compare dkeys);
  (* the log's keys agree with the outcomes they were cut from *)
  check "divergence keys exist among divergent outcomes" true
    (List.for_all
       (fun k ->
         List.exists
           (fun (o : Shadow.outcome) -> o.Shadow.divergent && okey o = k)
           r.Pool.outcomes)
       dkeys)

(* With the phase pinned, the two modes must serve request-for-request
   identical traffic: each shard executes its slice in the same order
   under the same phase, so only the report's consumption order may
   differ. *)
let pinned_phase_modes_agree () =
  let pinned =
    { Cutover.default_config with
      promote_after = max_int;
      initial = Cutover.Shadow;
      max_divergence_rate = 2.0;
    }
  in
  let reqs = requests ~seed:909 ~n:72 in
  let go epoch_serving =
    run_service ~domains:4 ~shards:8 ~epoch_serving ~cutover:pinned
      [ restrict_op ] reqs
  in
  let by_id r =
    List.sort (fun (a, _) (b, _) -> Int.compare a b) (terminal_output r)
  in
  let epoch = go true and barrier = go false in
  check "pinned phase: same served traffic in both modes" true
    (by_id epoch = by_id barrier);
  check "pinned phase: no transitions either way" true
    (epoch.Pool.transitions = [] && barrier.Pool.transitions = []);
  check "same divergent request ids" true
    (List.sort compare
       (List.map (fun (d : Pool.divergence) -> d.Pool.div_request)
          epoch.Pool.divergences)
    = List.sort compare
        (List.map (fun (d : Pool.divergence) -> d.Pool.div_request)
           barrier.Pool.divergences))

(* ------------------------------------------------------------------ *)
(* (d') the work-stealing scheduler: schedule-neutral by construction  *)

(* Concentrate ~half the stream on shard 0 by remapping ids: index [i]
   becomes [i * shards] (shard 0) when even, [i * shards + (i mod
   shards)] when odd — unique, strictly increasing, shard-skewed.
   Routing is a pure function of the id, so this is how a hot shard
   looks to the pool. *)
let skew_to_shard0 ~shards reqs =
  List.mapi
    (fun i (r : Request.t) ->
      let id = if i mod 2 = 0 then i * shards else (i * shards) + (i mod shards) in
      { r with Request.id })
    reqs

let steal_report_shape () =
  let reqs = requests ~seed:808 ~n:48 in
  let stealing =
    run_service ~domains:2 ~shards:6 ~epoch_batch:4 ~split_threshold:3
      ~cutover:promoting_cutover [ interpose_op ] reqs
  in
  let pinned =
    run_service ~domains:2 ~shards:6 ~epoch_batch:4 ~steal:false
      ~cutover:promoting_cutover [ interpose_op ] reqs
  in
  check "steal mode reports per-slot stats" true
    (match stealing.Pool.steal_stats with
    | Some slots ->
        List.length slots = stealing.Pool.domains
        && List.fold_left (fun acc s -> acc + s.Pool.sub_rows_run) 0 slots > 0
    | None -> false);
  check "pinned mode reports no steal stats" true
    (pinned.Pool.steal_stats = None);
  check "steal-wait reported per slot" true
    (List.length stealing.Pool.steal_wait_s = stealing.Pool.domains);
  check "splitting ran" true
    (match stealing.Pool.steal_stats with
    | Some slots ->
        List.fold_left (fun acc s -> acc + s.Pool.split_frags) 0 slots > 0
    | None -> false);
  check "scheduling is invisible in the served output" true
    (terminal_output stealing = terminal_output pinned
    && stealing.Pool.transitions = pinned.Pool.transitions)

let steal_worker_fault_propagates () =
  let reqs = requests ~seed:606 ~n:40 in
  let config =
    { Pool.default_config with
      domains = 2; shards = 4; canary_seed = 7; fail_request = Some 17;
      split_threshold = 3; epoch_batch = 8;
    }
  in
  match
    Pool.run ~config ~cutover:promoting_cutover (net_req [ interpose_op ])
      (W.Company.instance ()) reqs
  with
  | Ok _ -> Alcotest.fail "steal+split: injected fault did not surface"
  | Error e ->
      check "steal+split: error names the worker failure" true
        (contains ~affix:"worker failure" e);
      check "steal+split: error names the failing request" true
        (contains ~affix:"request 17" e)

(* Serving-time index advice (the §5.3 feedback loop): a program
   qualifying EMP by a field another entity stores degenerates to an
   extent scan (the same shape the LN003 lint flags), and once the
   extent clears the advisor's hot-scan floor the report must name the
   concrete [Sdb.ensure_index] call with the observed cardinality;
   without statistics the list stays empty. *)
let serving_index_advice () =
  let sample = W.Company.scaled ~seed:42 ~n:120 in
  let hot_scan =
    { Ccv_abstract.Aprog.name = "HOT-SCAN";
      body =
        [ Ccv_abstract.Aprog.For_each
            { query =
                [ Ccv_abstract.Apattern.Self
                    { target = W.Company.emp;
                      qual =
                        Cond.Cmp
                          ( Cond.Eq, Cond.Field "DIV-NAME",
                            Cond.Const (Value.Str "DIV001") );
                    };
                ];
              body = [ Ccv_abstract.Aprog.Display [ Cond.Var "EMP.EMP-NAME" ] ];
            };
        ];
    }
  in
  let reqs =
    List.mapi
      (fun i (r : Request.t) -> { r with Request.id = i })
      ({ Request.id = 0; family = W.Generator.Retrieval; aprog = hot_scan }
      :: Request.stream ~seed:303 W.Company.schema ~sample ~n:39 ())
  in
  let go cost_based_plans =
    let config =
      { Pool.default_config with
        domains = 1; shards = 2; canary_seed = 7; cost_based_plans;
      }
    in
    match
      Pool.run ~config ~cutover:promoting_cutover (net_req [ interpose_op ])
        sample reqs
    with
    | Ok r -> r
    | Error e -> Alcotest.failf "advice service failed: %s" e
  in
  let costed = go true and heuristic = go false in
  check "no statistics, no advice" true (heuristic.Pool.index_advice = []);
  check "hot scanned equalities are advised" true
    (costed.Pool.index_advice <> []);
  check "advice names the concrete declaration" true
    (List.for_all
       (fun m -> contains ~affix:"Sdb.ensure_index" m)
       costed.Pool.index_advice);
  check "advice carries the observed extent size" true
    (List.for_all
       (fun m -> contains ~affix:"stored instance" m)
       costed.Pool.index_advice);
  check "advice names the scanned equality" true
    (List.exists
       (fun m -> contains ~affix:"EMP.DIV-NAME" m)
       costed.Pool.index_advice);
  check "the crafted scan serves like any other request" true
    (List.length costed.Pool.outcomes = List.length reqs
    && terminal_output costed = terminal_output heuristic)

(* The tentpole invariant: stealing, stealing-with-splitting and the
   pinned schedule are the same service.  Whatever stream the
   generator deals — uniform or concentrated on one hot shard — every
   (scheduler, domain-count) combination yields the same outcomes,
   transitions and divergence log, field for field. *)
let steal_pinned_fingerprint_prop =
  QCheck.Test.make
    ~name:"stealing = pinned = single-domain, uniform and shard-skewed"
    ~count:6
    QCheck.(pair (int_range 1 10_000) bool)
    (fun (seed, skewed) ->
      let shards = 5 in
      let reqs =
        let r = requests ~seed ~n:32 in
        if skewed then skew_to_shard0 ~shards r else r
      in
      let go ~domains ~steal ?(split_threshold = 0) () =
        let r =
          run_service ~domains ~shards ~epoch_batch:4 ~steal ~split_threshold
            ~cutover:rollback_cutover [ restrict_op ] reqs
        in
        ( List.map
            (fun (o : Shadow.outcome) ->
              ( o.Shadow.request.Request.id,
                o.Shadow.phase,
                o.Shadow.shard,
                o.Shadow.epoch,
                o.Shadow.seq,
                o.Shadow.shadowed,
                o.Shadow.divergent,
                Io_trace.terminal_lines o.Shadow.served_trace ))
            r.Pool.outcomes,
          r.Pool.transitions,
          r.Pool.divergences,
          r.Pool.served,
          Cutover.phase_name r.Pool.final_phase )
      in
      let reference = go ~domains:1 ~steal:false () in
      List.for_all
        (fun fp -> fp = reference)
        [ go ~domains:1 ~steal:true ();
          go ~domains:2 ~steal:true ();
          go ~domains:8 ~steal:true ();
          go ~domains:2 ~steal:true ~split_threshold:3 ();
          go ~domains:8 ~steal:true ~split_threshold:1 ();
          go ~domains:2 ~steal:false ();
          go ~domains:8 ~steal:false ();
        ])

(* qcheck over the workload seed: whatever stream the generator deals,
   epoch serving is domain-count independent. *)
let epoch_determinism_prop =
  QCheck.Test.make ~name:"epoch serving deterministic across domain counts"
    ~count:8
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let go domains =
        let reqs = requests ~seed ~n:32 in
        run_service ~domains ~shards:5 ~epoch_batch:4
          ~cutover:rollback_cutover [ restrict_op ] reqs
      in
      let fp (r : Pool.report) =
        ( terminal_output r,
          r.Pool.transitions,
          r.Pool.divergences,
          r.Pool.served,
          Cutover.phase_name r.Pool.final_phase )
      in
      let a = fp (go 1) and b = fp (go 2) and c = fp (go 8) in
      a = b && a = c)

(* ------------------------------------------------------------------ *)
(* (e) worker crashes surface as Error, not a hang or a corrupt report *)

let worker_fault_propagates () =
  let reqs = requests ~seed:606 ~n:40 in
  List.iter
    (fun (epoch_serving, domains) ->
      let config =
        { Pool.default_config with
          domains; shards = 4; batch = 8; canary_seed = 7;
          fail_request = Some 17; epoch_serving;
        }
      in
      match
        Pool.run ~config ~cutover:promoting_cutover (net_req [ interpose_op ])
          (W.Company.instance ()) reqs
      with
      | Ok _ ->
          Alcotest.failf "%s, %d domains: injected fault did not surface"
            (if epoch_serving then "epoch" else "barrier")
            domains
      | Error e ->
          let label =
            Printf.sprintf "%s, %d domains"
              (if epoch_serving then "epoch" else "barrier")
              domains
          in
          check (label ^ ": error names the worker failure") true
            (contains ~affix:"worker failure" e);
          check (label ^ ": error names the failing request") true
            (contains ~affix:"request 17" e))
    [ (true, 1); (true, 2); (true, 4); (false, 1); (false, 2); (false, 4) ]

(* ------------------------------------------------------------------ *)
(* (d) the per-shard plan cache: same served behaviour with and
   without it, and a steady-state stream (few distinct programs) is
   served almost entirely from cache                                   *)

let plan_cache_transparent () =
  let sample = W.Company.instance () in
  let reqs =
    Request.stream ~seed:505 W.Company.schema ~sample ~n:96 ~distinct:12 ()
  in
  let cached =
    run_service ~domains:2 ~shards:4 ~cutover:promoting_cutover
      [ interpose_op ] reqs
  in
  let uncached =
    run_service ~domains:2 ~shards:4 ~use_plan_cache:false
      ~cutover:promoting_cutover [ interpose_op ] reqs
  in
  check "same served output with and without the cache" true
    (terminal_output cached = terminal_output uncached);
  check "same transitions with and without the cache" true
    (cached.Pool.transitions = uncached.Pool.transitions);
  let s = cached.Pool.plan_stats in
  let module PC = Ccv_plan.Plan_cache in
  (* 12 distinct programs x 4 shards: at most 48 compilations for 96
     shadowed requests, everything else served from cache *)
  check "every lookup beyond first-seen hits" true
    (s.PC.hits + s.PC.misses = 96 && s.PC.misses <= 48);
  check "steady state hit rate above one half" true (PC.hit_rate s > 0.5);
  let z = uncached.Pool.plan_stats in
  check "disabled cache reports zero stats" true
    (z.PC.hits = 0 && z.PC.misses = 0)

let () =
  Alcotest.run "serve"
    [ ( "phases",
        [ Alcotest.test_case "clean conversion reaches cutover" `Quick
            clean_cutover;
          Alcotest.test_case "live counters are domain-safe" `Quick
            live_counters_consistent;
          Alcotest.test_case "injected divergence rolls back the canary" `Quick
            injected_divergence_rolls_back;
          Alcotest.test_case "deterministic given the seed" `Quick
            deterministic_across_repeats;
          Alcotest.test_case "identical reports under 1, 2 and 8 domains"
            `Quick deterministic_across_domain_counts;
          Alcotest.test_case "barrier mode stays domain-count independent"
            `Quick deterministic_across_domain_counts_barrier;
          Alcotest.test_case "epoch log in canonical order" `Quick
            epoch_log_in_canonical_order;
          Alcotest.test_case "pinned phase: modes serve identical traffic"
            `Quick pinned_phase_modes_agree;
          Alcotest.test_case "worker fault propagates as Error" `Quick
            worker_fault_propagates;
          Alcotest.test_case "plan cache is behaviourally transparent" `Quick
            plan_cache_transparent;
          Alcotest.test_case "steal scheduler reports per-slot activity" `Quick
            steal_report_shape;
          Alcotest.test_case "worker fault propagates under steal + split"
            `Quick steal_worker_fault_propagates;
          Alcotest.test_case "serving-time index advice under live stats"
            `Quick serving_index_advice;
        ] );
      ( "epoch-props",
        [ QCheck_alcotest.to_alcotest epoch_determinism_prop;
          QCheck_alcotest.to_alcotest steal_pinned_fingerprint_prop;
        ] );
    ]
