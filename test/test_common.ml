(* Unit and property tests for the common substrate: values, rows,
   conditions, traces, the deterministic PRNG and counters. *)

open Ccv_common

let check = Alcotest.(check bool)

(* ---------------- Value ---------------- *)

let value_tests =
  [ Alcotest.test_case "null sorts first" `Quick (fun () ->
        check "null < int" true (Value.compare Value.Null (Value.Int 0) < 0);
        check "null < str" true (Value.compare Value.Null (Value.Str "") < 0);
        check "null = null" true (Value.compare Value.Null Value.Null = 0));
    Alcotest.test_case "cross-numeric comparison" `Quick (fun () ->
        check "2 = 2.0" true (Value.compare (Value.Int 2) (Value.Float 2.0) = 0);
        check "2 < 2.5" true (Value.compare (Value.Int 2) (Value.Float 2.5) < 0);
        check "3.5 > 3" true (Value.compare (Value.Float 3.5) (Value.Int 3) > 0));
    Alcotest.test_case "arithmetic" `Quick (fun () ->
        check "int add" true (Value.add (Value.Int 2) (Value.Int 3) = Value.Int 5);
        check "mixed add" true
          (Value.add (Value.Int 2) (Value.Float 0.5) = Value.Float 2.5);
        check "concat" true
          (Value.concat (Value.Str "A") (Value.Str "B") = Value.Str "AB");
        (try
           ignore (Value.add (Value.Str "X") (Value.Int 1));
           Alcotest.fail "expected Invalid_argument"
         with Invalid_argument _ -> ()));
    Alcotest.test_case "of_literal" `Quick (fun () ->
        check "string" true (Value.of_literal "'HELLO'" = Some (Value.Str "HELLO"));
        check "int" true (Value.of_literal "42" = Some (Value.Int 42));
        check "float" true (Value.of_literal "4.5" = Some (Value.Float 4.5));
        check "null" true (Value.of_literal "NULL" = Some Value.Null);
        check "bool" true (Value.of_literal "true" = Some (Value.Bool true));
        check "garbage" true (Value.of_literal "12x" = None));
    Alcotest.test_case "conforms and defaults" `Quick (fun () ->
        check "null conforms to any" true (Value.conforms Value.Null Value.Tint);
        check "int conforms" true (Value.conforms (Value.Int 1) Value.Tint);
        check "str does not conform to int" false
          (Value.conforms (Value.Str "x") Value.Tint);
        check "default int" true (Value.default Value.Tint = Value.Int 0));
  ]

let value_gen =
  QCheck.Gen.(
    oneof
      [ return Value.Null;
        map (fun i -> Value.Int i) (int_range (-50) 50);
        map (fun f -> Value.Float (float_of_int f /. 4.)) (int_range (-40) 40);
        map (fun s -> Value.Str s) (string_size ~gen:(char_range 'A' 'E') (int_bound 4));
        map (fun b -> Value.Bool b) bool;
      ])

let value_arb = QCheck.make ~print:Value.show value_gen

let value_props =
  [ QCheck.Test.make ~name:"Value.compare is antisymmetric" ~count:300
      (QCheck.pair value_arb value_arb) (fun (a, b) ->
        let c1 = Value.compare a b and c2 = Value.compare b a in
        (c1 = 0 && c2 = 0) || (c1 > 0 && c2 < 0) || (c1 < 0 && c2 > 0));
    QCheck.Test.make ~name:"Value.compare is transitive" ~count:300
      (QCheck.triple value_arb value_arb value_arb) (fun (a, b, c) ->
        let ( <= ) x y = Value.compare x y <= 0 in
        if a <= b && b <= c then a <= c else true);
    QCheck.Test.make ~name:"Value.equal agrees with compare = 0 (same type)"
      ~count:300 (QCheck.pair value_arb value_arb) (fun (a, b) ->
        match Value.ty_of a, Value.ty_of b with
        | Some ta, Some tb when Value.equal_ty ta tb ->
            Value.equal a b = (Value.compare a b = 0)
        | _ -> true);
    QCheck.Test.make ~name:"hash respects equal" ~count:300
      (QCheck.pair value_arb value_arb) (fun (a, b) ->
        if Value.equal a b then Value.hash a = Value.hash b else true);
  ]

(* ---------------- Row ---------------- *)

let row_tests =
  [ Alcotest.test_case "of_list canonicalises and dedups" `Quick (fun () ->
        let r = Row.of_list [ ("a", Value.Int 1); ("A", Value.Int 2) ] in
        check "one field" true (List.length (Row.to_list r) = 1);
        check "first wins" true (Row.get r "A" = Some (Value.Int 1)));
    Alcotest.test_case "set appends or replaces" `Quick (fun () ->
        let r = Row.of_list [ ("A", Value.Int 1) ] in
        let r = Row.set r "B" (Value.Int 2) in
        let r = Row.set r "a" (Value.Int 9) in
        check "order" true (Row.fields r = [ "A"; "B" ]);
        check "replaced" true (Row.get r "A" = Some (Value.Int 9)));
    Alcotest.test_case "project pads with null, keeps requested order" `Quick
      (fun () ->
        let r = Row.of_list [ ("A", Value.Int 1); ("B", Value.Int 2) ] in
        let p = Row.project r [ "B"; "C" ] in
        check "order" true (Row.fields p = [ "B"; "C" ]);
        check "pad" true (Row.get p "C" = Some Value.Null));
    Alcotest.test_case "union is left-biased" `Quick (fun () ->
        let a = Row.of_list [ ("X", Value.Int 1) ] in
        let b = Row.of_list [ ("X", Value.Int 2); ("Y", Value.Int 3) ] in
        let u = Row.union a b in
        check "left wins" true (Row.get u "X" = Some (Value.Int 1));
        check "right added" true (Row.get u "Y" = Some (Value.Int 3)));
    Alcotest.test_case "coerce reorders to declaration" `Quick (fun () ->
        let decls = [ Field.make "A" Value.Tint; Field.make "B" Value.Tstr ] in
        let r =
          Row.of_list
            [ ("B", Value.Str "x"); ("A", Value.Int 1); ("Z", Value.Int 9) ]
        in
        let c = Row.coerce r decls in
        check "fields" true (Row.fields c = [ "A"; "B" ]);
        check "conforms" true (Row.conforms c decls));
    Alcotest.test_case "equal_unordered" `Quick (fun () ->
        let a = Row.of_list [ ("A", Value.Int 1); ("B", Value.Int 2) ] in
        let b = Row.of_list [ ("B", Value.Int 2); ("A", Value.Int 1) ] in
        check "unordered equal" true (Row.equal_unordered a b);
        check "ordered not equal" false (Row.equal a b));
  ]

(* ---------------- Cond ---------------- *)

let cond_tests =
  let row = Row.of_list [ ("AGE", Value.Int 30); ("NAME", Value.Str "X") ] in
  let env v = if v = "LIMIT" then Some (Value.Int 25) else None in
  [ Alcotest.test_case "eval with fields and vars" `Quick (fun () ->
        let c = Cond.Cmp (Cond.Gt, Cond.Field "AGE", Cond.Var "LIMIT") in
        check "30 > :25" true (Cond.eval ~env row c));
    Alcotest.test_case "null comparisons are false except eq-null" `Quick
      (fun () ->
        let r = Row.of_list [ ("A", Value.Null) ] in
        check "null < 1 is false" false
          (Cond.eval ~env:Cond.no_env r
             (Cond.Cmp (Cond.Lt, Cond.Field "A", Cond.Const (Value.Int 1))));
        check "null = null" true
          (Cond.eval ~env:Cond.no_env r
             (Cond.Cmp (Cond.Eq, Cond.Field "A", Cond.Const Value.Null)));
        check "is_null" true
          (Cond.eval ~env:Cond.no_env r (Cond.Is_null (Cond.Field "A"))));
    Alcotest.test_case "split/conj round-trip" `Quick (fun () ->
        let a = Cond.eq_field_const "A" (Value.Int 1) in
        let b = Cond.eq_field_const "B" (Value.Int 2) in
        let c = Cond.And (a, Cond.And (b, Cond.True)) in
        check "two conjuncts" true (List.length (Cond.split_conjuncts c) = 2);
        check "true yields none" true (Cond.split_conjuncts Cond.True = []);
        check "conj [] = True" true (Cond.conj [] = Cond.True));
    Alcotest.test_case "cand drops True" `Quick (fun () ->
        let a = Cond.eq_field_const "A" (Value.Int 1) in
        check "left" true (Cond.cand Cond.True a = a);
        check "right" true (Cond.cand a Cond.True = a));
    Alcotest.test_case "fields_to_vars" `Quick (fun () ->
        let c = Cond.Cmp (Cond.Eq, Cond.Field "AGE", Cond.Const (Value.Int 1)) in
        let c' = Cond.fields_to_vars (fun f -> "EMP." ^ f) c in
        check "no fields left" true (Cond.fields c' = []);
        check "var introduced" true (Cond.vars c' = [ "EMP.AGE" ]));
    Alcotest.test_case "subst_vars folds constants" `Quick (fun () ->
        let c = Cond.Cmp (Cond.Gt, Cond.Field "AGE", Cond.Var "LIMIT") in
        let c' = Cond.subst_vars env c in
        check "no vars left" true (Cond.vars c' = []));
    Alcotest.test_case "unbound raises" `Quick (fun () ->
        try
          ignore
            (Cond.eval ~env:Cond.no_env row
               (Cond.Cmp (Cond.Eq, Cond.Var "NOPE", Cond.Const Value.Null)));
          Alcotest.fail "expected Unbound"
        with Cond.Unbound _ -> ());
  ]

(* ---------------- Io_trace ---------------- *)

let trace_tests =
  [ Alcotest.test_case "divergence position" `Quick (fun () ->
        let a = [ Io_trace.Terminal_out "X"; Io_trace.Terminal_out "Y" ] in
        let b = [ Io_trace.Terminal_out "X"; Io_trace.Terminal_out "Z" ] in
        match Io_trace.first_divergence a b with
        | Some (1, Some _, Some _) -> ()
        | _ -> Alcotest.fail "expected divergence at 1");
    Alcotest.test_case "builder preserves order" `Quick (fun () ->
        let b = Io_trace.Builder.create () in
        Io_trace.Builder.emit b (Io_trace.Terminal_out "1");
        Io_trace.Builder.emit b (Io_trace.File_write ("f", "2"));
        check "order" true
          (Io_trace.Builder.contents b
          = [ Io_trace.Terminal_out "1"; Io_trace.File_write ("f", "2") ]));
    Alcotest.test_case "terminal_lines filters" `Quick (fun () ->
        let t =
          [ Io_trace.Terminal_out "A"; Io_trace.Terminal_in "B";
            Io_trace.File_write ("f", "C"); Io_trace.Terminal_out "D";
          ]
        in
        check "lines" true (Io_trace.terminal_lines t = [ "A"; "D" ]));
  ]

(* ---------------- Prng ---------------- *)

let prng_tests =
  [ Alcotest.test_case "deterministic given a seed" `Quick (fun () ->
        let a = Prng.create ~seed:7 and b = Prng.create ~seed:7 in
        check "same stream" true
          (List.init 20 (fun _ -> Prng.int a 1000)
          = List.init 20 (fun _ -> Prng.int b 1000)));
    Alcotest.test_case "shuffle permutes" `Quick (fun () ->
        let rng = Prng.create ~seed:3 in
        let l = [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
        let s = Prng.shuffle rng l in
        check "same multiset" true (List.sort compare s = List.sort compare l));
    Alcotest.test_case "pick_weighted single bucket" `Quick (fun () ->
        let rng = Prng.create ~seed:1 in
        let all_b =
          List.init 50 (fun _ -> Prng.pick_weighted rng [ (1, "b") ])
        in
        check "only b" true (List.for_all (String.equal "b") all_b));
  ]

let prng_props =
  [ QCheck.Test.make ~name:"Prng.int within bounds" ~count:500
      QCheck.(pair (int_range 1 10_000) (int_range 1 1000))
      (fun (seed, bound) ->
        let rng = Prng.create ~seed in
        let v = Prng.int rng bound in
        v >= 0 && v < bound);
    QCheck.Test.make ~name:"Prng.int_in within range" ~count:500
      QCheck.(
        triple (int_range 1 10_000) (int_range (-50) 50) (int_range 0 100))
      (fun (seed, lo, span) ->
        let rng = Prng.create ~seed in
        let v = Prng.int_in rng lo (lo + span) in
        v >= lo && v <= lo + span);
  ]

(* ---------------- Counters / Tablefmt / Status ---------------- *)

let misc_tests =
  [ Alcotest.test_case "counters accumulate and reset" `Quick (fun () ->
        let c = Counters.create () in
        Counters.record_read c;
        Counters.record_reads c 4;
        Counters.record_write c;
        check "reads" true (Counters.reads c = 5);
        check "writes" true (Counters.writes c = 1);
        check "total" true (Counters.total c = 6);
        Counters.reset c;
        check "reset" true (Counters.total c = 0));
    Alcotest.test_case "table renders all cells" `Quick (fun () ->
        let t = Tablefmt.render [ "a"; "b" ] [ [ "1"; "2" ]; [ "333"; "4" ] ] in
        check "has 333" true
          (List.exists
             (fun line -> String.length line > 0 && String.contains line '3')
             (String.split_on_char '\n' t)));
    Alcotest.test_case "status codes are stable and distinct" `Quick (fun () ->
        let codes =
          List.map Status.code
            [ Status.Ok; Status.Not_found; Status.End_of_set;
              Status.No_currency; Status.Duplicate_key "x";
              Status.Constraint_violation "y"; Status.Invalid_request "z";
            ]
        in
        check "distinct" true
          (List.length (List.sort_uniq compare codes) = List.length codes));
  ]

(* ---------------- Workpool ---------------- *)

let workpool_tests =
  [ Alcotest.test_case "step runs one task per slot" `Quick (fun () ->
        Workpool.with_pool 4 (fun p ->
            check "size" true (Workpool.size p = 4);
            let r = Workpool.step p (fun w -> w * 10) in
            check "results land by slot" true
              (Array.to_list r = [ 0; 10; 20; 30 ])));
    Alcotest.test_case "workers persist across many steps" `Quick (fun () ->
        Workpool.with_pool 3 (fun p ->
            for i = 1 to 50 do
              let r = Workpool.step p (fun w -> w + i) in
              check "tick results" true (Array.to_list r = [ i; i + 1; i + 2 ])
            done));
    Alcotest.test_case "nested step falls back inline (no deadlock)" `Quick
      (fun () ->
        Workpool.with_pool 2 (fun p ->
            let r =
              Workpool.step p (fun w ->
                  Array.to_list (Workpool.step p (fun v -> (w, v))))
            in
            check "outer width" true (Array.length r = 2);
            Array.iteri
              (fun w inner ->
                check "inner ran inline" true (inner = [ (w, 0); (w, 1) ]))
              r));
    Alcotest.test_case "worker exception surfaces as Worker_error" `Quick
      (fun () ->
        Workpool.with_pool 4 (fun p ->
            (try
               ignore
                 (Workpool.step p (fun w ->
                      if w = 2 then failwith "boom" else w));
               Alcotest.fail "expected Worker_error"
             with Workpool.Worker_error { worker = 2; _ } -> ());
            (* the failed step must not poison the pool *)
            let r = Workpool.step p (fun w -> w) in
            check "pool still serves" true (Array.to_list r = [ 0; 1; 2; 3 ])));
    Alcotest.test_case "map_list preserves input order" `Quick (fun () ->
        Workpool.with_pool 3 (fun p ->
            let xs = List.init 23 Fun.id in
            check "order" true
              (Workpool.map_list p (fun x -> x * x) xs
              = List.map (fun x -> x * x) xs)));
    Alcotest.test_case "map_list respects max_workers" `Quick (fun () ->
        Workpool.with_pool 4 (fun p ->
            let xs = List.init 37 Fun.id in
            let expect = List.map (fun x -> x + 1) xs in
            (* capped below, at, and above the pool size — all the
               same list, same order *)
            List.iter
              (fun cap ->
                check
                  (Printf.sprintf "cap %d" cap)
                  true
                  (Workpool.map_list ~max_workers:cap p (fun x -> x + 1) xs
                  = expect))
              [ 1; 2; 4; 16 ]));
    Alcotest.test_case "submit/drain joins async jobs" `Quick (fun () ->
        Workpool.with_pool 4 (fun p ->
            let out = Array.make 4 0 in
            check "quiescent before submit" true (Workpool.quiescent p);
            Workpool.submit p (fun w -> out.(w) <- w * 11);
            Workpool.drain p;
            check "quiescent after drain" true (Workpool.quiescent p);
            (* slot 0 stays with the caller *)
            check "jobs ran on workers" true
              (Array.to_list out = [ 0; 11; 22; 33 ]);
            (* the pool still barrier-steps afterwards *)
            let r = Workpool.step p (fun w -> w) in
            check "pool still serves" true (Array.to_list r = [ 0; 1; 2; 3 ])));
    Alcotest.test_case "submit failure surfaces at drain" `Quick (fun () ->
        Workpool.with_pool 3 (fun p ->
            Workpool.submit p (fun w -> if w = 2 then failwith "boom");
            (try
               Workpool.drain p;
               Alcotest.fail "expected Worker_error"
             with Workpool.Worker_error { worker = 2; _ } -> ());
            (* the failure is consumed; the pool is reusable *)
            Workpool.submit p (fun _ -> ());
            Workpool.drain p));
    Alcotest.test_case "idle_times is per slot, slot 0 zero" `Quick (fun () ->
        Workpool.with_pool 3 (fun p ->
            ignore (Workpool.step p (fun w -> w));
            let per = Workpool.idle_times p in
            check "one entry per slot" true (Array.length per = 3);
            check "coordinator never parks" true (per.(0) = 0.);
            check "sum matches idle_time" true
              (Float.abs (Array.fold_left ( +. ) 0. per -. Workpool.idle_time p)
              < 1e-9)));
    Alcotest.test_case "shutdown is idempotent" `Quick (fun () ->
        let p = Workpool.create 3 in
        ignore (Workpool.step p (fun w -> w));
        Workpool.shutdown p;
        Workpool.shutdown p);
  ]

(* ---------------- Snapshot cells and mailboxes ---------------- *)

let snapshot_tests =
  [ Alcotest.test_case "cell publish/read" `Quick (fun () ->
        let c = Snapshot.cell 0 in
        check "initial" true (Snapshot.read c = 0);
        Snapshot.publish c 42;
        check "published" true (Snapshot.read c = 42));
    Alcotest.test_case "mailbox preserves post order" `Quick (fun () ->
        let mb = Snapshot.mailbox () in
        check "empty" true (Snapshot.take_all mb = []);
        List.iter (Snapshot.post mb) [ 1; 2; 3 ];
        check "fifo" true (Snapshot.take_all mb = [ 1; 2; 3 ]);
        check "drained" true (Snapshot.take_all mb = []);
        Snapshot.post mb 4;
        check "reusable" true (Snapshot.take_all mb = [ 4 ]));
    Alcotest.test_case "mailbox survives cross-domain posting" `Quick
      (fun () ->
        (* one producer domain, one consumer: everything posted is
           taken exactly once, in order *)
        let mb = Snapshot.mailbox () in
        let n = 1000 in
        let producer =
          Domain.spawn (fun () ->
              for i = 0 to n - 1 do
                Snapshot.post mb i
              done)
        in
        let got = ref [] in
        while List.length !got < n do
          got := !got @ Snapshot.take_all mb
        done;
        Domain.join producer;
        check "all posts, in order" true (!got = List.init n Fun.id));
  ]

(* ---------------- Epoch reorder buffer ---------------- *)

let epoch_tests =
  [ Alcotest.test_case "key order is (epoch, shard, seq)" `Quick (fun () ->
        let k e s q = { Epoch.epoch = e; shard = s; seq = q } in
        check "epoch first" true (Epoch.compare_key (k 0 9 9) (k 1 0 0) < 0);
        check "then shard" true (Epoch.compare_key (k 1 0 9) (k 1 1 0) < 0);
        check "then seq" true (Epoch.compare_key (k 1 1 0) (k 1 1 1) < 0);
        check "equal" true (Epoch.compare_key (k 2 3 4) (k 2 3 4) = 0));
    Alcotest.test_case "rows release only when complete" `Quick (fun () ->
        let b = Epoch.create ~rows:[| 2; 1; 2 |] () in
        check "two rows total" true (Epoch.total_rows b = 2);
        Epoch.publish b ~shard:0 ~epoch:0 "a0";
        Epoch.publish b ~shard:2 ~epoch:0 "c0";
        check "row 0 incomplete" true (Epoch.pop_row b = None);
        Epoch.publish b ~shard:1 ~epoch:0 "b0";
        check "row 0 pops in shard order" true
          (Epoch.pop_row b = Some (0, [ (0, "a0"); (1, "b0"); (2, "c0") ]));
        (* shard 1 has no row 1: the row completes without it *)
        Epoch.publish b ~shard:2 ~epoch:1 "c1";
        Epoch.publish b ~shard:0 ~epoch:1 "a1";
        check "row 1 skips the short shard" true
          (Epoch.pop_row b = Some (1, [ (0, "a1"); (2, "c1") ]));
        check "exhausted" true
          (Epoch.pop_row b = None && Epoch.frontier b = 2));
    Alcotest.test_case "publish rejects double and out-of-range" `Quick
      (fun () ->
        let b = Epoch.create ~rows:[| 1 |] () in
        Epoch.publish b ~shard:0 ~epoch:0 "x";
        (try
           Epoch.publish b ~shard:0 ~epoch:0 "y";
           Alcotest.fail "double publish accepted"
         with Invalid_argument _ -> ());
        try
          Epoch.publish b ~shard:0 ~epoch:1 "z";
          Alcotest.fail "out-of-range publish accepted"
        with Invalid_argument _ -> ());
  ]

let epoch_props =
  [ QCheck.Test.make
      ~name:"any publish interleaving drains in canonical order" ~count:200
      QCheck.(
        pair (int_range 1 1000)
          (list_of_size Gen.(int_range 1 6) (int_range 0 4)))
      (fun (seed, rows_l) ->
        (* rows_l.(s) epoch rows for shard s; publish them in a
           seed-shuffled physical order and check the drain is the
           canonical epoch-major, shard-minor sequence regardless *)
        let rows = Array.of_list rows_l in
        let all =
          Array.to_list rows
          |> List.mapi (fun s n -> List.init n (fun e -> (s, e)))
          |> List.concat
        in
        let rng = Prng.create ~seed in
        let shuffled = Prng.shuffle rng all in
        let b = Epoch.create ~rows () in
        let drained = ref [] in
        let drain () =
          let continue_ = ref true in
          while !continue_ do
            match Epoch.pop_row b with
            | None -> continue_ := false
            | Some (e, cells) ->
                drained :=
                  List.rev_append
                    (List.map (fun (s, ()) -> (e, s)) cells)
                    !drained
          done
        in
        (* interleave draining with publishing, as the coordinator
           does, instead of draining only at the end *)
        List.iter
          (fun (s, e) ->
            Epoch.publish b ~shard:s ~epoch:e ();
            drain ())
          shuffled;
        drain ();
        let canonical =
          List.concat
            (List.init (Epoch.total_rows b) (fun e ->
                 List.filter_map
                   (fun s -> if rows.(s) > e then Some (e, s) else None)
                   (List.init (Array.length rows) Fun.id)))
        in
        List.rev !drained = canonical);
  ]

(* ---------------- Epoch sub-row merging ---------------- *)

let epoch_sub_tests =
  [ Alcotest.test_case "fragments merge left-to-right by subseq" `Quick
      (fun () ->
        let b = Epoch.create ~merge:( ^ ) ~rows:[| 1 |] () in
        (* out-of-order arrival; the fold must still be ascending *)
        Epoch.publish_sub b ~shard:0 ~epoch:0 ~subseq:2 ~nsub:3 "c";
        Epoch.publish_sub b ~shard:0 ~epoch:0 ~subseq:0 ~nsub:3 "a";
        check "incomplete row stays held" true (Epoch.pop_row b = None);
        Epoch.publish_sub b ~shard:0 ~epoch:0 ~subseq:1 ~nsub:3 "b";
        check "merged in subseq order" true
          (Epoch.pop_row b = Some (0, [ (0, "abc") ])));
    Alcotest.test_case "nsub = 1 is plain publish" `Quick (fun () ->
        (* no ~merge needed for unsplit rows *)
        let b = Epoch.create ~rows:[| 1 |] () in
        Epoch.publish_sub b ~shard:0 ~epoch:0 ~subseq:0 ~nsub:1 "x";
        check "published" true (Epoch.pop_row b = Some (0, [ (0, "x") ])));
    Alcotest.test_case "publish_sub guards" `Quick (fun () ->
        let reject name f =
          try
            f ();
            Alcotest.fail (name ^ " accepted")
          with Invalid_argument _ -> ()
        in
        let b = Epoch.create ~rows:[| 1 |] () in
        reject "nsub > 1 without merge" (fun () ->
            Epoch.publish_sub b ~shard:0 ~epoch:0 ~subseq:0 ~nsub:2 "x");
        let b = Epoch.create ~merge:( ^ ) ~rows:[| 1 |] () in
        Epoch.publish_sub b ~shard:0 ~epoch:0 ~subseq:0 ~nsub:2 "x";
        reject "double sub publish" (fun () ->
            Epoch.publish_sub b ~shard:0 ~epoch:0 ~subseq:0 ~nsub:2 "y");
        reject "inconsistent nsub" (fun () ->
            Epoch.publish_sub b ~shard:0 ~epoch:0 ~subseq:1 ~nsub:3 "y");
        reject "subseq out of range" (fun () ->
            Epoch.publish_sub b ~shard:0 ~epoch:0 ~subseq:2 ~nsub:2 "y");
        reject "nonpositive nsub" (fun () ->
            Epoch.publish_sub b ~shard:0 ~epoch:0 ~subseq:0 ~nsub:0 "y"));
  ]

let epoch_sub_props =
  [ QCheck.Test.make
      ~name:"sub-row merge law: any fragment interleaving = unsplit publish"
      ~count:200
      QCheck.(
        pair (int_range 1 1000)
          (list_of_size Gen.(int_range 1 5)
             (pair (int_range 0 3) (int_range 1 4))))
      (fun (seed, shape) ->
        (* shape.(s) = (rows, nsub): every row of shard s splits into
           nsub fragments carrying singleton int lists; fragments of
           all rows are published in a seed-shuffled order, and the
           drain must equal the unsplit buffer's — same canonical row
           order, each cell the concatenation of its fragments in
           ascending subseq *)
        let rows = Array.of_list (List.map fst shape) in
        let nsubs = Array.of_list (List.map snd shape) in
        let frags =
          Array.to_list rows
          |> List.mapi (fun s n ->
                 List.concat
                   (List.init n (fun e ->
                        List.init nsubs.(s) (fun k -> (s, e, k)))))
          |> List.concat
        in
        let rng = Prng.create ~seed in
        let shuffled = Prng.shuffle rng frags in
        let split = Epoch.create ~merge:( @ ) ~rows () in
        let drained = ref [] in
        let drain b acc =
          let continue_ = ref true in
          while !continue_ do
            match Epoch.pop_row b with
            | None -> continue_ := false
            | Some (e, cells) -> acc := (e, cells) :: !acc
          done
        in
        List.iter
          (fun (s, e, k) ->
            Epoch.publish_sub split ~shard:s ~epoch:e ~subseq:k
              ~nsub:nsubs.(s)
              [ (s, e, k) ];
            drain split drained)
          shuffled;
        drain split drained;
        let unsplit = Epoch.create ~rows () in
        let expect = ref [] in
        Array.iteri
          (fun s n ->
            for e = 0 to n - 1 do
              Epoch.publish unsplit ~shard:s ~epoch:e
                (List.init nsubs.(s) (fun k -> (s, e, k)))
            done)
          rows;
        drain unsplit expect;
        List.rev !drained = List.rev !expect);
  ]

(* ---------------- Work-stealing deques ---------------- *)

let stealqueue_tests =
  [ Alcotest.test_case "owner pops LIFO" `Quick (fun () ->
        let q = Stealqueue.create ~slots:2 in
        Stealqueue.push q ~slot:0 1;
        Stealqueue.push q ~slot:0 2;
        check "last in first out" true (Stealqueue.pop q ~slot:0 = Some 2);
        check "then older" true (Stealqueue.pop q ~slot:0 = Some 1);
        check "empty" true (Stealqueue.pop q ~slot:0 = None));
    Alcotest.test_case "push_back parks at the tail" `Quick (fun () ->
        let q = Stealqueue.create ~slots:2 in
        Stealqueue.push q ~slot:0 1;
        Stealqueue.push_back q ~slot:0 99;
        Stealqueue.push q ~slot:0 2;
        check "head is newest push" true (Stealqueue.pop q ~slot:0 = Some 2);
        check "parked entry comes last" true
          (Stealqueue.pop q ~slot:0 = Some 1
          && Stealqueue.pop q ~slot:0 = Some 99));
    Alcotest.test_case "steal takes the victim's oldest" `Quick (fun () ->
        let q = Stealqueue.create ~slots:2 in
        Stealqueue.push q ~slot:0 1;
        Stealqueue.push q ~slot:0 2;
        check "fifo from the thief's side" true
          (Stealqueue.steal q ~thief:1 = Some 1);
        check "owner keeps the hot end" true
          (Stealqueue.pop q ~slot:0 = Some 2));
    Alcotest.test_case "claim prefers its own deque" `Quick (fun () ->
        let q = Stealqueue.create ~slots:2 in
        Stealqueue.push q ~slot:0 10;
        Stealqueue.push q ~slot:1 20;
        check "own first" true (Stealqueue.claim q ~slot:0 = Stealqueue.Own 10);
        check "then steal" true
          (Stealqueue.claim q ~slot:0 = Stealqueue.Stolen 20);
        check "then empty" true (Stealqueue.claim q ~slot:0 = Stealqueue.Empty));
    Alcotest.test_case "cross-domain stealing loses nothing" `Quick (fun () ->
        (* one owner pushing and popping, one thief stealing: every
           token is taken exactly once across the two domains *)
        let n = 2000 in
        let q = Stealqueue.create ~slots:2 in
        let stolen = ref [] in
        let thief =
          Domain.spawn (fun () ->
              let taken = ref 0 in
              (* bounded scan: stop once the owner signals exhaustion
                 by pushing the sentinel *)
              let stop = ref false in
              while not !stop do
                match Stealqueue.steal q ~thief:1 with
                | Some x when x = -1 -> stop := true
                | Some x ->
                    stolen := x :: !stolen;
                    incr taken
                | None -> Domain.cpu_relax ()
              done;
              !taken)
        in
        let popped = ref [] in
        for i = 0 to n - 1 do
          Stealqueue.push q ~slot:0 i;
          if i mod 2 = 0 then
            match Stealqueue.pop q ~slot:0 with
            | Some x -> popped := x :: !popped
            | None -> ()
        done;
        let rec drain () =
          match Stealqueue.pop q ~slot:0 with
          | Some x ->
              popped := x :: !popped;
              drain ()
          | None -> ()
        in
        drain ();
        Stealqueue.push q ~slot:0 (-1);
        let _ = Domain.join thief in
        (* the thief may leave the sentinel unstolen if the owner's
           drain raced it away — repush until joined handles it; here
           the sentinel was pushed after the owner's final drain, so
           only the thief can have taken it *)
        let all = List.sort Int.compare (!popped @ !stolen) in
        check "every token exactly once" true (all = List.init n Fun.id));
  ]

let stealqueue_props =
  [ QCheck.Test.make
      ~name:"random claim/steal/push interleavings lose and duplicate nothing"
      ~count:300
      QCheck.(
        triple (int_range 1 4) (int_range 0 40) (small_list (int_range 0 5)))
      (fun (slots, tokens, ops) ->
        (* seed [tokens] tokens round-robin, then replay [ops] as a
           mix of claims and re-pushes from rotating slots; finish by
           draining every deque.  Multiset in = multiset out. *)
        let q = Stealqueue.create ~slots in
        for i = 0 to tokens - 1 do
          Stealqueue.push q ~slot:(i mod slots) i
        done;
        let held = ref [] and out = ref [] in
        List.iteri
          (fun i op ->
            let slot = i mod slots in
            match op with
            | 0 | 1 -> (
                match Stealqueue.claim q ~slot with
                | Stealqueue.Own x | Stealqueue.Stolen x ->
                    held := x :: !held
                | Stealqueue.Empty -> ())
            | 2 -> (
                (* re-enqueue something we hold, at the head *)
                match !held with
                | x :: rest ->
                    held := rest;
                    Stealqueue.push q ~slot x
                | [] -> ())
            | 3 -> (
                (* park something we hold at the tail *)
                match !held with
                | x :: rest ->
                    held := rest;
                    Stealqueue.push_back q ~slot x
                | [] -> ())
            | _ -> (
                match Stealqueue.steal q ~thief:slot with
                | Some x -> out := x :: !out
                | None -> ()))
          ops;
        for slot = 0 to slots - 1 do
          let rec drain () =
            match Stealqueue.pop q ~slot with
            | Some x ->
                out := x :: !out;
                drain ()
            | None -> ()
          in
          drain ()
        done;
        check "queue empty after drain" true (Stealqueue.length q = 0);
        List.sort Int.compare (!out @ !held) = List.init tokens Fun.id);
  ]

(* ---------------- Counters.local staging ---------------- *)

let local_counter_tests =
  [ Alcotest.test_case "flush_local drains the buffer" `Quick (fun () ->
        let t = Counters.create () in
        let l = Counters.local_create () in
        Counters.local_record_reads l 3;
        Counters.local_record_write l;
        check "snapshot" true (Counters.local_snapshot l = (3, 1));
        Counters.flush_local t l;
        Counters.flush_local t l;
        (* second flush adds nothing *)
        check "reads" true (Counters.reads t = 3);
        check "writes" true (Counters.writes t = 1);
        check "drained" true (Counters.local_snapshot l = (0, 0)));
  ]

let local_counter_props =
  [ QCheck.Test.make
      ~name:"partitioned local flushes equal direct atomic totals" ~count:200
      QCheck.(pair (int_range 1 8) (small_list (pair (int_range 0 20) bool)))
      (fun (k, events) ->
        (* the same event stream charged directly into the shared
           counter vs staged across k per-worker buffers and flushed at
           a barrier — the serving pool's metrics path *)
        let direct = Counters.create () in
        List.iter
          (fun (n, is_write) ->
            if is_write then Counters.record_write direct
            else Counters.record_reads direct n)
          events;
        let staged = Counters.create () in
        let locals = Array.init k (fun _ -> Counters.local_create ()) in
        List.iteri
          (fun i (n, is_write) ->
            let l = locals.(i mod k) in
            if is_write then Counters.local_record_write l
            else Counters.local_record_reads l n)
          events;
        Array.iter (Counters.flush_local staged) locals;
        Counters.reads staged = Counters.reads direct
        && Counters.writes staged = Counters.writes direct);
  ]

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "common"
    [ ("value", value_tests);
      qsuite "value-props" value_props;
      ("row", row_tests);
      ("cond", cond_tests);
      ("trace", trace_tests);
      ("prng", prng_tests);
      qsuite "prng-props" prng_props;
      ("misc", misc_tests);
      ("workpool", workpool_tests);
      ("snapshot", snapshot_tests);
      ("epoch", epoch_tests);
      qsuite "epoch-props" epoch_props;
      ("epoch-sub", epoch_sub_tests);
      qsuite "epoch-sub-props" epoch_sub_props;
      ("stealqueue", stealqueue_tests);
      qsuite "stealqueue-props" stealqueue_props;
      ("counters-local", local_counter_tests);
      qsuite "counters-local-props" local_counter_props;
    ]
