(* Convert layer units: transformation rules, optimizer rewrites, the
   equivalence judge, and a conversion-preservation property over
   random generated programs (a property-test distillation of E2). *)

open Ccv_common
open Ccv_abstract
open Ccv_transform
open Ccv_convert
module W = Ccv_workload

let check = Alcotest.(check bool)

let interpose_op =
  Schema_change.Interpose
    { through = W.Company.div_emp;
      new_entity = W.Company.dept;
      group_by = [ "DEPT-NAME" ];
      left_assoc = W.Company.div_dept;
      right_assoc = W.Company.dept_emp;
    }

let convert op p = Rules.convert W.Company.schema op p

let rules_tests =
  [ Alcotest.test_case "rename rewrites steps, vars and inserts" `Quick
      (fun () ->
        let p =
          W.Programs.company_hire ~name:"N" ~dept:"SALES" ~age:30
            ~division:"MACHINERY"
        in
        match
          convert (Schema_change.Rename_entity { from_ = "EMP"; to_ = "STAFF" }) p
        with
        | Ok (p', _) ->
            let names = List.concat_map Apattern.names_of (Aprog.queries p') in
            check "no EMP step left" false
              (List.exists (Field.name_equal "EMP") names);
            check "no EMP vars left" true
              (List.for_all
                 (fun v -> not (String.length v > 4 && String.sub v 0 4 = "EMP."))
                 (Rules.qualified_vars p'))
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "drop of a displayed field refused" `Quick (fun () ->
        match
          convert
            (Schema_change.Drop_field { entity = "EMP"; field = "EMP-NAME" })
            W.Programs.maryland_age_query
        with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected refusal");
    Alcotest.test_case "interpose refuses grouped-field updates (§4.3)"
      `Quick (fun () ->
        let p =
          { Aprog.name = "U";
            body =
              [ Aprog.Update
                  { query = [ Apattern.Self { target = "EMP"; qual = Cond.True } ];
                    assigns = [ ("DEPT-NAME", Host.str "X") ];
                  };
              ];
          }
        in
        match convert interpose_op p with
        | Error reason ->
            check "mentions ambiguity" true
              (List.mem "ambiguous"
                 (String.split_on_char ' ' reason))
        | Ok _ -> Alcotest.fail "expected refusal");
    Alcotest.test_case "interpose turns inserts into guarded creations"
      `Quick (fun () ->
        let p =
          W.Programs.company_hire ~name:"N" ~dept:"LABS" ~division:"CHEMICALS"
            ~age:25
        in
        match convert interpose_op p with
        | Ok (p', issues) ->
            check "issue notes the guarded insert" true (issues <> []);
            (* the rewritten program must create DEPT on demand *)
            let inserts = ref [] in
            let rec walk = function
              | Aprog.Insert { entity; _ } -> inserts := entity :: !inserts
              | Aprog.First { present; absent; _ } ->
                  List.iter walk present;
                  List.iter walk absent
              | Aprog.For_each { body; _ } | Aprog.While (_, body) ->
                  List.iter walk body
              | Aprog.If (_, a, b) ->
                  List.iter walk a;
                  List.iter walk b
              | _ -> ()
            in
            List.iter walk p'.Aprog.body;
            check "inserts DEPT and EMP" true
              (List.mem "DEPT" !inserts && List.mem "EMP" !inserts)
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "widen rewrites connects into explicit links" `Quick
      (fun () ->
        let p =
          W.Programs.company_hire ~name:"N" ~dept:"LABS" ~division:"CHEMICALS"
            ~age:25
        in
        match convert (Schema_change.Widen_cardinality { assoc = W.Company.div_emp }) p with
        | Ok (p', _) ->
            let has_link = ref false in
            let rec walk = function
              | Aprog.Link { assoc; _ }
                when Field.name_equal assoc W.Company.div_emp ->
                  has_link := true
              | Aprog.First { present; absent; _ } ->
                  List.iter walk present;
                  List.iter walk absent
              | Aprog.For_each { body; _ } | Aprog.While (_, body) ->
                  List.iter walk body
              | Aprog.If (_, a, b) ->
                  List.iter walk a;
                  List.iter walk b
              | _ -> ()
            in
            List.iter walk p'.Aprog.body;
            check "explicit LINK" true !has_link
        | Error e -> Alcotest.fail e);
  ]

let optimizer_tests =
  [ Alcotest.test_case "dead moves eliminated" `Quick (fun () ->
        let p =
          { Aprog.name = "T";
            body =
              [ Aprog.Move (Host.int 1, "X"); Aprog.Move (Host.int 2, "X");
                Aprog.Display [ Host.v "X" ];
              ];
          }
        in
        let p', log = Optimizer.optimize W.Company.schema p in
        check "one move left" true (Aprog.size p' = 2);
        check "logged" true (log <> []));
    Alcotest.test_case "redundant partner hop removed" `Quick (fun () ->
        (* the hop a Collapse conversion leaves behind: EMP -> DIV with
           nothing reading DIV *)
        let p =
          { Aprog.name = "T";
            body =
              [ Aprog.For_each
                  { query =
                      [ Apattern.Self { target = "EMP"; qual = Cond.True };
                        Apattern.Assoc_via
                          { assoc = W.Company.div_emp; source = "EMP";
                            qual = Cond.True };
                        Apattern.Via_assoc
                          { target = "DIV"; assoc = W.Company.div_emp;
                            qual = Cond.True };
                      ];
                    body = [ Aprog.Display [ Host.v "EMP.EMP-NAME" ] ];
                  };
              ];
          }
        in
        let p', _ = Optimizer.optimize W.Company.schema p in
        check "one step left" true (Aprog.path_length p' = 1);
        (* behaviour unchanged *)
        let sdb = W.Company.instance () in
        let r1 = Ainterp.run sdb p and r2 = Ainterp.run sdb p' in
        check "same trace" true (Io_trace.equal r1.Ainterp.trace r2.Ainterp.trace));
    Alcotest.test_case "hop kept when its bindings are read" `Quick (fun () ->
        let p =
          { Aprog.name = "T";
            body =
              [ Aprog.For_each
                  { query =
                      [ Apattern.Self { target = "EMP"; qual = Cond.True };
                        Apattern.Assoc_via
                          { assoc = W.Company.div_emp; source = "EMP";
                            qual = Cond.True };
                        Apattern.Via_assoc
                          { target = "DIV"; assoc = W.Company.div_emp;
                            qual = Cond.True };
                      ];
                    body = [ Aprog.Display [ Host.v "DIV.DIV-LOC" ] ];
                  };
              ];
          }
        in
        let p', _ = Optimizer.optimize W.Company.schema p in
        check "three steps kept" true (Aprog.path_length p' = 3));
    Alcotest.test_case "guard folding preserves behaviour" `Quick (fun () ->
        let p =
          { Aprog.name = "T";
            body =
              [ Aprog.For_each
                  { query = [ Apattern.Self { target = "EMP"; qual = Cond.True } ];
                    body =
                      [ Aprog.If
                          ( Cond.Cmp
                              ( Cond.Gt,
                                Cond.Var "EMP.AGE",
                                Cond.Const (Value.Int 35) ),
                            [ Aprog.Display [ Host.v "EMP.EMP-NAME" ] ],
                            [] );
                      ];
                  };
              ];
          }
        in
        let p', log = Optimizer.optimize W.Company.schema p in
        check "folded" true (log <> []);
        let sdb = W.Company.instance () in
        let r1 = Ainterp.run sdb p and r2 = Ainterp.run sdb p' in
        check "same trace" true (Io_trace.equal r1.Ainterp.trace r2.Ainterp.trace));
  ]

let equivalence_tests =
  [ Alcotest.test_case "verdict levels" `Quick (fun () ->
        let a = [ Io_trace.Terminal_out "X"; Io_trace.Terminal_out "Y" ] in
        let b = [ Io_trace.Terminal_out "Y"; Io_trace.Terminal_out "X" ] in
        let c = [ Io_trace.Terminal_out "X" ] in
        check "strict" true (Equivalence.compare_traces a a = Equivalence.Strict);
        check "modulo order" true
          (Equivalence.compare_traces a b = Equivalence.Modulo_order);
        (match Equivalence.compare_traces a c with
        | Equivalence.Divergent _ -> ()
        | _ -> Alcotest.fail "expected divergent"));
    Alcotest.test_case "verdict_at_least ordering" `Quick (fun () ->
        check "strict >= strict" true
          (Equivalence.verdict_at_least Equivalence.Strict Equivalence.Strict);
        check "strict !>= modulo" false
          (Equivalence.verdict_at_least Equivalence.Strict
             Equivalence.Modulo_order);
        check "modulo >= strict" true
          (Equivalence.verdict_at_least Equivalence.Modulo_order
             Equivalence.Strict));
    (* Regression for the sort-based multiset comparison: long
       reordered traces must judge as Modulo_order (and fast — the
       shadow service judges every request online). *)
    Alcotest.test_case "long traces compare modulo order" `Quick (fun () ->
        let n = 30_000 in
        let a =
          List.init n (fun i ->
              if i mod 7 = 0 then Io_trace.File_write ("F", string_of_int i)
              else Io_trace.Terminal_out (string_of_int i))
        in
        let b = List.rev a in
        check "reversal is modulo order" true
          (Equivalence.compare_traces a b = Equivalence.Modulo_order);
        let c = Io_trace.Terminal_out "EXTRA" :: List.tl b in
        (match Equivalence.compare_traces a c with
        | Equivalence.Divergent _ -> ()
        | _ -> Alcotest.fail "expected divergent");
        check "identical long traces are strict" true
          (Equivalence.compare_traces a a = Equivalence.Strict));
  ]

(* Property: any generated program that the network model hosts
   converts under a rename with a strict verdict (mini-E2). *)
let rename_preservation_prop =
  QCheck.Test.make ~name:"rename conversion preserves behaviour" ~count:30
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let sample = W.Company.instance () in
      let progs = W.Generator.batch ~seed W.Company.schema ~sample ~n:3 () in
      let mapping, _ = Mapping.derive_network W.Company.schema in
      let req =
        { Supervisor.source_schema = W.Company.schema;
          source_model = Mapping.Net;
          ops =
            [ Schema_change.Rename_entity { from_ = "EMP"; to_ = "WORKER" };
              Schema_change.Rename_assoc
                { from_ = W.Company.div_emp; to_ = "DIV-WORKER" };
            ];
          target_model = Mapping.Net;
        }
      in
      List.for_all
        (fun (_fam, prog) ->
          match Generator.to_network mapping prog with
          | Error _ -> true (* not hostable: out of population *)
          | Ok (source, _) -> (
              match
                Supervisor.convert_and_verify req (Engines.Net_program source)
                  (W.Company.instance ())
              with
              | Error _ -> true (* refusal routed to the analyst is legal *)
              | Ok o -> o.Supervisor.verdict = Equivalence.Strict))
        progs)

let advisor_tests =
  let review p = Advisor.review W.Empdept.schema p in
  [ Alcotest.test_case "THROUGH over an existing association advised" `Quick
      (fun () ->
        let p =
          { Aprog.name = "T";
            body =
              [ Aprog.For_each
                  { query =
                      [ Apattern.Self { target = "EMP"; qual = Cond.True };
                        Apattern.Through
                          { target = "DEPT";
                            source = "EMP";
                            link = ("D#", "E#");
                            qual = Cond.True;
                          };
                      ];
                    body = [ Aprog.Display [ Host.v "DEPT.DNAME" ] ];
                  };
              ];
          }
        in
        check "advice given" true
          (List.exists
             (fun s -> s.Advisor.severity = `Advice)
             (review p)));
    Alcotest.test_case "FIRST over a non-key qualification suspected" `Quick
      (fun () ->
        let p =
          { Aprog.name = "T";
            body =
              [ Aprog.First
                  { query =
                      [ Apattern.Self
                          { target = "EMP";
                            qual =
                              Cond.Cmp
                                ( Cond.Gt,
                                  Cond.Field "AGE",
                                  Cond.Const (Value.Int 30) );
                          };
                      ];
                    present = [];
                    absent = [];
                  };
              ];
          }
        in
        check "suspicion raised" true
          (List.exists (fun s -> s.Advisor.severity = `Suspicion) (review p)));
    Alcotest.test_case "key lookup raises nothing" `Quick (fun () ->
        let p =
          { Aprog.name = "T";
            body =
              [ Aprog.First
                  { query =
                      [ Apattern.Self
                          { target = "EMP";
                            qual = Cond.eq_field_const "E#" (Value.Str "E1");
                          };
                      ];
                    present = [ Aprog.Display [ Host.v "EMP.ENAME" ] ];
                    absent = [];
                  };
              ];
          }
        in
        check "clean" true (review p = []));
    Alcotest.test_case "unused trailing navigation advised" `Quick (fun () ->
        let p =
          { Aprog.name = "T";
            body =
              [ Aprog.For_each
                  { query =
                      [ Apattern.Self { target = "DEPT"; qual = Cond.True };
                        Apattern.Assoc_via
                          { assoc = "EMP-DEPT"; source = "DEPT"; qual = Cond.True };
                        Apattern.Via_assoc
                          { target = "EMP"; assoc = "EMP-DEPT"; qual = Cond.True };
                      ];
                    body = [ Aprog.Display [ Host.v "DEPT.DNAME" ] ];
                  };
              ];
          }
        in
        check "overshoot advice" true
          (List.exists
             (fun s ->
               s.Advisor.severity = `Advice
               && String.length s.Advisor.message > 0)
             (review p)));
  ]

let () =
  Alcotest.run "convert"
    [ ("rules", rules_tests);
      ("optimizer", optimizer_tests);
      ("equivalence", equivalence_tests);
      ("advisor", advisor_tests);
      ("props", [ QCheck_alcotest.to_alcotest rename_preservation_prop ]);
    ]
