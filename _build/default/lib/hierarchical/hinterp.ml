open Ccv_common

type position = { current : int option; parentage : int option }

let initial_position = { current = None; parentage = None }
let current_key pos = pos.current

type outcome = {
  db : Hdb.t;
  pos : position;
  updates : (string * Value.t) list;
  status : Status.t;
}

(* Does [key]'s root-to-self path satisfy every SSA?  Each SSA names a
   segment type that must occur on the path with its qualification
   true; the last SSA must be the node's own type. *)
let ssa_match db ~env ssas key =
  let rec path acc k =
    match Hdb.parent_of db k with None -> k :: acc | Some p -> path (k :: acc) p
  in
  match List.rev ssas with
  | [] -> true
  | last :: _ -> (
      match Hdb.stype_of db key with
      | Some sty when Field.name_equal sty last.Hdml.seg ->
          let ancestry = path [] key in
          List.for_all
            (fun (s : Hdml.ssa) ->
              List.exists
                (fun k ->
                  match Hdb.get db k with
                  | Some (sty, row) ->
                      Field.name_equal sty s.seg && Cond.eval ~env row s.qual
                  | None -> false)
                ancestry)
            ssas
      | Some _ | None -> false)

let retrieve db key =
  match Hdb.get db key with
  | Some (stype, row) ->
      List.map
        (fun (f, v) -> (Hdml.uwa ~stype ~field:f, v))
        (Row.to_list row)
  | None -> []

let found db key =
  { db;
    pos = { current = Some key; parentage = Some key };
    updates = retrieve db key;
    status = Status.Ok;
  }

let not_found db pos status = { db; pos; updates = []; status }

let rec drop_through key = function
  | [] -> []
  | k :: rest -> if k = key then rest else drop_through key rest

let exec db pos ~env call =
  match call with
  | Hdml.Gu ssas -> (
      let seq = Hdb.hierarchic_sequence db in
      match List.find_opt (ssa_match db ~env ssas) seq with
      | Some key -> found db key
      | None -> not_found db pos Status.Not_found)
  | Hdml.Gn ssas -> (
      let seq = Hdb.hierarchic_sequence db in
      let rest =
        match pos.current with
        | None -> seq
        | Some key -> drop_through key seq
      in
      let candidate =
        match ssas with
        | [] -> (match rest with [] -> None | k :: _ -> Some k)
        | _ -> List.find_opt (ssa_match db ~env ssas) rest
      in
      match candidate with
      | Some key -> found db key
      | None -> not_found db pos Status.End_of_set)
  | Hdml.Gnp ssas -> (
      match pos.parentage with
      | None -> not_found db pos Status.No_currency
      | Some parent -> (
          (* Preorder of the parent's proper descendants. *)
          let rec descend acc k =
            List.fold_left
              (fun acc c -> descend (acc @ [ c ]) c)
              acc (Hdb.children_of db k)
          in
          let subtree = descend [] parent in
          let rest =
            match pos.current with
            | Some key when key <> parent && List.mem key subtree ->
                drop_through key subtree
            | Some _ | None -> subtree
          in
          let candidate =
            match ssas with
            | [] -> (match rest with [] -> None | k :: _ -> Some k)
            | _ -> List.find_opt (ssa_match db ~env ssas) rest
          in
          match candidate with
          | Some key ->
              (* GNP moves position but keeps parentage. *)
              { db;
                pos = { pos with current = Some key };
                updates = retrieve db key;
                status = Status.Ok;
              }
          | None -> not_found db pos Status.End_of_set))
  | Hdml.Isrt (stype, ssas) -> (
      let decl = Hschema.find_exn (Hdb.schema db) stype in
      let row =
        Row.of_list
          (List.map
             (fun (f : Field.t) ->
               ( f.name,
                 Option.value
                   (env (Hdml.uwa ~stype:decl.sname ~field:f.name))
                   ~default:Value.Null ))
             decl.fields)
      in
      let parent =
        match ssas with
        | [] -> Ok None
        | _ -> (
            let seq = Hdb.hierarchic_sequence db in
            match List.find_opt (ssa_match db ~env ssas) seq with
            | Some key -> Ok (Some key)
            | None -> Error Status.Not_found)
      in
      match parent with
      | Error status -> not_found db pos status
      | Ok parent -> (
          match Hdb.insert db ~parent decl.sname row with
          | Ok (db, key) ->
              { db;
                pos = { current = Some key; parentage = Some key };
                updates = [];
                status = Status.Ok;
              }
          | Error status -> not_found db pos status))
  | Hdml.Dlet -> (
      match pos.current with
      | None -> not_found db pos Status.No_currency
      | Some key -> (
          match Hdb.delete db key with
          | Ok db ->
              { db;
                pos = { current = None; parentage = None };
                updates = [];
                status = Status.Ok;
              }
          | Error status -> not_found db pos status))
  | Hdml.Repl fields -> (
      match pos.current with
      | None -> not_found db pos Status.No_currency
      | Some key -> (
          match Hdb.stype_of db key with
          | None -> not_found db pos Status.Not_found
          | Some stype -> (
              let assigns =
                List.filter_map
                  (fun f ->
                    Option.map
                      (fun v -> (Field.canon f, v))
                      (env (Hdml.uwa ~stype ~field:f)))
                  fields
              in
              match Hdb.replace db key assigns with
              | Ok db -> { db; pos; updates = []; status = Status.Ok }
              | Error status -> not_found db pos status)))
