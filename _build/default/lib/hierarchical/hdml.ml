open Ccv_common

type ssa = { seg : string; qual : Cond.t }

type t =
  | Gu of ssa list
  | Gn of ssa list
  | Gnp of ssa list
  | Isrt of string * ssa list
  | Dlet
  | Repl of string list

let ssa ?(qual = Cond.True) seg = { seg = Field.canon seg; qual }
let uwa ~stype ~field = Field.canon stype ^ "." ^ Field.canon field

let segment_types = function
  | Gu ssas | Gn ssas | Gnp ssas -> List.map (fun s -> s.seg) ssas
  | Isrt (seg, ssas) -> List.map (fun s -> s.seg) ssas @ [ Field.canon seg ]
  | Dlet | Repl _ -> []

let vars_read = function
  | Gu ssas | Gn ssas | Gnp ssas | Isrt (_, ssas) ->
      List.concat_map (fun s -> Cond.vars s.qual) ssas
  | Dlet | Repl _ -> []

let equal_ssa a b = Field.name_equal a.seg b.seg && Cond.equal a.qual b.qual

let equal x y =
  match x, y with
  | Gu a, Gu b | Gn a, Gn b | Gnp a, Gnp b ->
      List.length a = List.length b && List.for_all2 equal_ssa a b
  | Isrt (s1, a), Isrt (s2, b) ->
      Field.name_equal s1 s2
      && List.length a = List.length b
      && List.for_all2 equal_ssa a b
  | Dlet, Dlet -> true
  | Repl f1, Repl f2 -> List.map Field.canon f1 = List.map Field.canon f2
  | (Gu _ | Gn _ | Gnp _ | Isrt _ | Dlet | Repl _), _ -> false

let pp_ssa ppf s =
  match s.qual with
  | Cond.True -> Fmt.string ppf s.seg
  | q -> Fmt.pf ppf "%s(%a)" s.seg Cond.pp q

let pp_ssas = Fmt.list ~sep:(Fmt.any " ") pp_ssa

let pp ppf = function
  | Gu ssas -> Fmt.pf ppf "GU %a" pp_ssas ssas
  | Gn ssas -> Fmt.pf ppf "GN %a" pp_ssas ssas
  | Gnp ssas -> Fmt.pf ppf "GNP %a" pp_ssas ssas
  | Isrt (seg, ssas) -> Fmt.pf ppf "ISRT %s UNDER %a" seg pp_ssas ssas
  | Dlet -> Fmt.string ppf "DLET"
  | Repl fields ->
      Fmt.pf ppf "REPL (%a)" Fmt.(list ~sep:(any ", ") string) fields

let show t = Fmt.str "%a" pp t
