(** DL/I call execution with IMS-style position and parentage. *)

open Ccv_common

type position

val initial_position : position
val current_key : position -> int option

type outcome = {
  db : Hdb.t;
  pos : position;
  updates : (string * Value.t) list;
      (** on successful retrievals, the segment's fields as UWA vars *)
  status : Status.t;
}

val exec : Hdb.t -> position -> env:Cond.env -> Hdml.t -> outcome
