(** Hierarchical (IMS-like) schemas: segment types arranged in a tree.
    The paper needs this model for the Mehl & Wang style conversions
    (section 2.2) and for cross-model restructurings (section 5.1). *)

open Ccv_common

type seg_decl = {
  sname : string;
  fields : Field.t list;
  parent : string option;  (** [None] for the root segment *)
  seq_field : string option;  (** twin order within one parent *)
}

type t = { segments : seg_decl list }
(** Children of a segment appear in declaration order — that order
    defines the hierarchic sequence. *)

val seg_decl :
  ?parent:string -> ?seq_field:string -> string -> Field.t list -> seg_decl

(** Validates parent references and acyclicity; raises
    [Invalid_argument]. *)
val make : seg_decl list -> t

val find : t -> string -> seg_decl option
val find_exn : t -> string -> seg_decl
val seg_names : t -> string list
val roots : t -> seg_decl list
val children : t -> string -> seg_decl list

(** Path of segment types from the root down to the given type,
    inclusive. *)
val path_to : t -> string -> seg_decl list

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val show : t -> string
