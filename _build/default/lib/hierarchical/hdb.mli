(** Hierarchical database instances: forests of segment occurrences in
    hierarchic sequence (preorder; children grouped by the schema's
    segment declaration order, twins ordered by sequence field). *)

open Ccv_common

type t

val create : Hschema.t -> t
val schema : t -> Hschema.t
val counters : t -> Counters.t

val get : t -> int -> (string * Row.t) option
val get_silent : t -> int -> (string * Row.t) option
val stype_of : t -> int -> string option
val parent_of : t -> int -> int option
val children_of : t -> int -> int list

(** Root occurrences in twin order. *)
val root_keys : t -> int list

(** Full hierarchic sequence (preorder over all roots); charges one
    read per element materialised. *)
val hierarchic_sequence : t -> int list

val hierarchic_sequence_silent : t -> int list

(** [insert db ~parent stype row]: [parent = None] inserts a root.
    Twin position follows the segment's sequence field. *)
val insert : t -> parent:int option -> string -> Row.t -> (t * int, Status.t) result

val insert_exn : t -> parent:int option -> string -> Row.t -> t * int

(** Deletes a segment and its whole subtree (DL/I DLET semantics). *)
val delete : t -> int -> (t, Status.t) result

val replace : t -> int -> (string * Value.t) list -> (t, Status.t) result

(** Canonical dump for key-independent comparison: every occurrence as
    (path of rows from root), sorted. *)
val dump : t -> Row.t list list

val equal_contents : t -> t -> bool
val total_segments : t -> int
val pp : Format.formatter -> t -> unit
