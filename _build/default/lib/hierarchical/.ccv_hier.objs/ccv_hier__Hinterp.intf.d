lib/hierarchical/hinterp.mli: Ccv_common Cond Hdb Hdml Status Value
