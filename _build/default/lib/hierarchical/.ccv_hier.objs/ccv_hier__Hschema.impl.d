lib/hierarchical/hschema.ml: Ccv_common Field Fmt List Option String
