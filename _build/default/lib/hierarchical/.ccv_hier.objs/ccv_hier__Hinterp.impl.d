lib/hierarchical/hinterp.ml: Ccv_common Cond Field Hdb Hdml Hschema List Option Row Status Value
