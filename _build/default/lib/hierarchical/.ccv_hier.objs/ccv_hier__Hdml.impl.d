lib/hierarchical/hdml.ml: Ccv_common Cond Field Fmt List
