lib/hierarchical/hdb.mli: Ccv_common Counters Format Hschema Row Status Value
