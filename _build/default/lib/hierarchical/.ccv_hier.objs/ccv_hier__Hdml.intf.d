lib/hierarchical/hdml.mli: Ccv_common Cond Format
