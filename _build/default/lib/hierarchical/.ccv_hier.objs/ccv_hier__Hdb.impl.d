lib/hierarchical/hdb.ml: Ccv_common Counters Field Fmt Hschema Int List Map Option Row Status String Value
