lib/hierarchical/hschema.mli: Ccv_common Field Format
