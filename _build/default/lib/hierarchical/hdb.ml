open Ccv_common
module Imap = Map.Make (Int)

type node = {
  stype : string;
  row : Row.t;
  parent : int option;
  children : int list;  (** ordered: decl order of types, then twin order *)
}

type t = {
  schema : Hschema.t;
  nodes : node Imap.t;
  roots : int list;
  next_key : int;
  counters : Counters.t;
}

let create schema =
  { schema;
    nodes = Imap.empty;
    roots = [];
    next_key = 1;
    counters = Counters.create ();
  }

let schema t = t.schema
let counters t = t.counters

let get t key =
  match Imap.find_opt key t.nodes with
  | Some n ->
      Counters.record_read t.counters;
      Some (n.stype, n.row)
  | None -> None

let get_silent t key =
  Option.map (fun n -> (n.stype, n.row)) (Imap.find_opt key t.nodes)

let stype_of t key = Option.map (fun n -> n.stype) (Imap.find_opt key t.nodes)

let parent_of t key =
  Option.bind (Imap.find_opt key t.nodes) (fun n -> n.parent)

let children_of t key =
  match Imap.find_opt key t.nodes with Some n -> n.children | None -> []

let root_keys t = t.roots

let hierarchic_sequence_silent t =
  let rec walk acc key =
    let acc = key :: acc in
    match Imap.find_opt key t.nodes with
    | Some n -> List.fold_left walk acc n.children
    | None -> acc
  in
  List.rev (List.fold_left walk [] t.roots)

let hierarchic_sequence t =
  let seq = hierarchic_sequence_silent t in
  Counters.record_reads t.counters (List.length seq);
  seq

(* Position of a new twin inside an ordered sibling list: after every
   sibling of a type declared earlier, then in sequence-field order
   among its own twins (ties/no-seq-field: last). *)
let sibling_position t (decl : Hschema.seg_decl) row siblings =
  let type_rank name =
    let rec go i = function
      | [] -> i
      | (s : Hschema.seg_decl) :: rest ->
          if Field.name_equal s.sname name then i else go (i + 1) rest
    in
    go 0 t.schema.Hschema.segments
  in
  let my_rank = type_rank decl.sname in
  let seq_value r =
    match decl.seq_field with
    | None -> Value.Null
    | Some f -> Option.value (Row.get r f) ~default:Value.Null
  in
  let my_seq = seq_value row in
  let rec ins = function
    | [] -> fun key -> [ key ]
    | s :: rest -> (
        fun key ->
          let n = Imap.find s t.nodes in
          let rank = type_rank n.stype in
          let goes_before =
            rank > my_rank
            || (rank = my_rank
               && decl.seq_field <> None
               && Value.compare (seq_value n.row) my_seq > 0)
          in
          if goes_before then key :: s :: rest else s :: ins rest key)
  in
  fun key -> ins siblings key

let insert t ~parent stype row =
  let decl = Hschema.find_exn t.schema stype in
  let row = Row.coerce row decl.fields in
  if not (Row.conforms row decl.fields) then
    Error (Status.Invalid_request (Fmt.str "bad segment for %s" decl.sname))
  else
    match parent, decl.parent with
    | None, Some _ ->
        Error (Status.Invalid_request (Fmt.str "%s is not a root segment" decl.sname))
    | Some _, None ->
        Error (Status.Invalid_request (Fmt.str "%s is a root segment" decl.sname))
    | None, None ->
        let key = t.next_key in
        Counters.record_write t.counters;
        let roots = sibling_position t decl row t.roots key in
        Ok
          ( { t with
              nodes =
                Imap.add key
                  { stype = decl.sname; row; parent = None; children = [] }
                  t.nodes;
              roots;
              next_key = key + 1;
            },
            key )
    | Some pkey, Some ptype -> (
        match Imap.find_opt pkey t.nodes with
        | None -> Error Status.Not_found
        | Some pnode when not (Field.name_equal pnode.stype ptype) ->
            Error
              (Status.Invalid_request
                 (Fmt.str "%s cannot parent %s" pnode.stype decl.sname))
        | Some pnode ->
            let key = t.next_key in
            Counters.record_write t.counters;
            let children = sibling_position t decl row pnode.children key in
            Ok
              ( { t with
                  nodes =
                    t.nodes
                    |> Imap.add key
                         { stype = decl.sname;
                           row;
                           parent = Some pkey;
                           children = [];
                         }
                    |> Imap.add pkey { pnode with children };
                  next_key = key + 1;
                },
                key ))

let insert_exn t ~parent stype row =
  match insert t ~parent stype row with
  | Ok res -> res
  | Error s ->
      invalid_arg (Fmt.str "Hdb.insert_exn %s: %a" stype Status.pp s)

let delete t key =
  match Imap.find_opt key t.nodes with
  | None -> Error Status.Not_found
  | Some node ->
      let rec collect acc key =
        let acc = key :: acc in
        match Imap.find_opt key t.nodes with
        | Some n -> List.fold_left collect acc n.children
        | None -> acc
      in
      let doomed = collect [] key in
      Counters.record_write t.counters;
      let nodes = List.fold_left (fun m k -> Imap.remove k m) t.nodes doomed in
      let t = { t with nodes } in
      (match node.parent with
      | None -> Ok { t with roots = List.filter (fun k -> k <> key) t.roots }
      | Some pkey -> (
          match Imap.find_opt pkey t.nodes with
          | None -> Ok t
          | Some pnode ->
              Ok
                { t with
                  nodes =
                    Imap.add pkey
                      { pnode with
                        children = List.filter (fun k -> k <> key) pnode.children;
                      }
                      t.nodes;
                }))

let replace t key assigns =
  match Imap.find_opt key t.nodes with
  | None -> Error Status.Not_found
  | Some node ->
      let decl = Hschema.find_exn t.schema node.stype in
      let bad =
        List.find_opt (fun (f, _) -> not (Field.mem decl.fields f)) assigns
      in
      (match bad with
      | Some (f, _) ->
          Error
            (Status.Invalid_request (Fmt.str "unknown field %s of %s" f node.stype))
      | None ->
          Counters.record_write t.counters;
          let row =
            List.fold_left (fun row (f, v) -> Row.set row f v) node.row assigns
          in
          Ok { t with nodes = Imap.add key { node with row } t.nodes })

let dump t =
  let rec path_of key =
    match Imap.find_opt key t.nodes with
    | None -> []
    | Some n -> (
        match n.parent with
        | None -> [ n.row ]
        | Some p -> path_of p @ [ n.row ])
  in
  hierarchic_sequence_silent t
  |> List.map path_of
  |> List.sort (List.compare Row.compare)

let equal_contents a b =
  let da = dump a and db = dump b in
  List.length da = List.length db
  && List.for_all2
       (fun p1 p2 -> List.length p1 = List.length p2 && List.for_all2 Row.equal p1 p2)
       da db

let total_segments t = Imap.cardinal t.nodes

let pp ppf t =
  let rec pp_node indent key =
    match Imap.find_opt key t.nodes with
    | None -> ()
    | Some n ->
        Fmt.pf ppf "%s%s %a@." (String.make indent ' ') n.stype Row.pp n.row;
        List.iter (pp_node (indent + 2)) n.children
  in
  List.iter (pp_node 0) t.roots
