open Ccv_common

type seg_decl = {
  sname : string;
  fields : Field.t list;
  parent : string option;
  seq_field : string option;
}

type t = { segments : seg_decl list }

let seg_decl ?parent ?seq_field name fields =
  let sname = Field.canon name in
  Field.check_distinct ~what:("segment " ^ sname) fields;
  (match seq_field with
  | Some f when not (Field.mem fields f) ->
      invalid_arg (Fmt.str "segment %s: sequence field %s not declared" sname f)
  | Some _ | None -> ());
  { sname;
    fields;
    parent = Option.map Field.canon parent;
    seq_field = Option.map Field.canon seq_field;
  }

let find t name =
  List.find_opt (fun s -> Field.name_equal s.sname name) t.segments

let find_exn t name =
  match find t name with
  | Some s -> s
  | None -> invalid_arg (Fmt.str "Hschema: unknown segment %s" name)

let make segments =
  let t = { segments } in
  let rec check_dups = function
    | [] -> ()
    | s :: rest ->
        if List.exists (fun s' -> Field.name_equal s'.sname s.sname) rest then
          invalid_arg (Fmt.str "Hschema: duplicate segment %s" s.sname)
        else check_dups rest
  in
  check_dups segments;
  List.iter
    (fun s ->
      match s.parent with
      | None -> ()
      | Some p ->
          if find t p = None then
            invalid_arg (Fmt.str "segment %s: unknown parent %s" s.sname p))
    segments;
  (* Acyclicity: walking parents must terminate. *)
  List.iter
    (fun s ->
      let rec walk seen name =
        if List.mem name seen then
          invalid_arg (Fmt.str "Hschema: cycle through %s" name)
        else
          match (find_exn t name).parent with
          | None -> ()
          | Some p -> walk (name :: seen) p
      in
      walk [] s.sname)
    segments;
  t

let seg_names t = List.map (fun s -> s.sname) t.segments
let roots t = List.filter (fun s -> s.parent = None) t.segments

let children t name =
  let name = Field.canon name in
  List.filter
    (fun s -> match s.parent with Some p -> String.equal p name | None -> false)
    t.segments

let path_to t name =
  let rec go acc name =
    let s = find_exn t name in
    match s.parent with None -> s :: acc | Some p -> go (s :: acc) p
  in
  go [] name

let equal_seg a b =
  Field.name_equal a.sname b.sname
  && List.length a.fields = List.length b.fields
  && List.for_all2 Field.equal a.fields b.fields
  && Option.equal Field.name_equal a.parent b.parent
  && Option.equal Field.name_equal a.seq_field b.seq_field

let equal a b =
  List.length a.segments = List.length b.segments
  && List.for_all2 equal_seg a.segments b.segments

let pp_seg ppf s =
  Fmt.pf ppf "@[<h>SEGM %s(%a)%a%a@]" s.sname
    Fmt.(list ~sep:(any ", ") Field.pp)
    s.fields
    (fun ppf -> function
      | None -> Fmt.string ppf " ROOT"
      | Some p -> Fmt.pf ppf " PARENT=%s" p)
    s.parent
    (fun ppf -> function
      | None -> ()
      | Some f -> Fmt.pf ppf " SEQ=%s" f)
    s.seq_field

let pp ppf t = Fmt.pf ppf "@[<v>%a@]" (Fmt.list pp_seg) t.segments
let show t = Fmt.str "%a" pp t
