(** DL/I-style calls with segment search arguments (SSAs). *)

open Ccv_common

type ssa = { seg : string; qual : Cond.t }
(** A qualified SSA constrains one level of the hierarchic path; the
    last SSA names the target segment type. *)

type t =
  | Gu of ssa list  (** GET UNIQUE: first match in hierarchic sequence *)
  | Gn of ssa list  (** GET NEXT: next match after current position *)
  | Gnp of ssa list  (** GET NEXT WITHIN PARENT *)
  | Isrt of string * ssa list
      (** [(segment, parent path)]: segment row from UWA vars; the SSAs
          locate the parent (empty for a root) *)
  | Dlet  (** delete current segment and subtree *)
  | Repl of string list  (** replace listed fields of current from UWA *)

val ssa : ?qual:Cond.t -> string -> ssa
val uwa : stype:string -> field:string -> string
val segment_types : t -> string list
val vars_read : t -> string list
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val show : t -> string
