open Ccv_common
open Ccv_abstract

exception Parse_error of string

let perr fmt = Fmt.kstr (fun s -> raise (Parse_error s)) fmt

type find = { target : string; query : Apattern.t; sort_on : string list }

type cursor = { mutable toks : Lexer.token list }

let peek c = match c.toks with [] -> None | t :: _ -> Some t

let next c =
  match c.toks with
  | [] -> perr "unexpected end of input"
  | t :: rest ->
      c.toks <- rest;
      t

let expect c tok =
  let t = next c in
  if t <> tok then perr "expected %a, got %a" Lexer.pp_token tok Lexer.pp_token t

let expect_ident c =
  match next c with
  | Lexer.Ident s -> s
  | t -> perr "expected a name, got %a" Lexer.pp_token t

let at c tok = peek c = Some tok
let at_kw c kw = match peek c with Some (Lexer.Ident s) -> String.equal s kw | _ -> false
let eat c tok = if at c tok then (ignore (next c); true) else false
let eat_kw c kw = if at_kw c kw then (ignore (next c); true) else false

let is_record ddl name =
  List.exists (fun (r : Ddl.record_decl) -> Field.name_equal r.rname name)
    ddl.Ddl.records

let set_of ddl name =
  List.find_opt (fun (s : Ddl.set_decl) -> Field.name_equal s.sname name)
    ddl.Ddl.sets

(* cond := <field> <cmp> <literal> { AND <field> <cmp> <literal> } *)
let parse_cond c =
  let rec conj acc =
    let f = expect_ident c in
    let op =
      match next c with
      | Lexer.Eq -> Cond.Eq
      | Lexer.Ne -> Cond.Ne
      | Lexer.Lt -> Cond.Lt
      | Lexer.Le -> Cond.Le
      | Lexer.Gt -> Cond.Gt
      | Lexer.Ge -> Cond.Ge
      | t -> perr "expected a comparison, got %a" Lexer.pp_token t
    in
    let v =
      match next c with
      | Lexer.Str_lit s -> Value.Str s
      | Lexer.Int_lit i -> Value.Int i
      | t -> perr "expected a literal, got %a" Lexer.pp_token t
    in
    let acc = Cond.Cmp (op, Cond.Field f, Cond.Const v) :: acc in
    if eat_kw c "AND" then conj acc else Cond.conj (List.rev acc)
  in
  conj []

(* record-with-optional-qual: REC | REC ( cond ) *)
let parse_qualified c =
  let name = expect_ident c in
  if eat c Lexer.Lparen then begin
    let cond = parse_cond c in
    expect c Lexer.Rparen;
    (name, cond)
  end
  else (name, Cond.True)

let rec parse_path ddl c prev acc =
  if at c Lexer.Rparen then List.rev acc
  else begin
    expect c Lexer.Comma;
    let set_name = expect_ident c in
    match set_of ddl set_name with
    | None -> perr "unknown set %s in access path" set_name
    | Some set -> (
        expect c Lexer.Comma;
        let rec_name, qual = parse_qualified c in
        if not (Field.name_equal rec_name set.Ddl.member) then
          perr "%s is not the member of %s" rec_name set_name;
        match set.Ddl.owner with
        | None ->
            (* SYSTEM set: this names the entry record — a Self step. *)
            parse_path ddl c (Some rec_name)
              (Apattern.Self { target = rec_name; qual } :: acc)
        | Some owner ->
            (match prev with
            | Some p when Field.name_equal p owner -> ()
            | Some p -> perr "path reaches %s from %s, not its owner %s"
                          set_name p owner
            | None -> perr "set %s appears before its owner" set_name);
            parse_path ddl c (Some rec_name)
              (Apattern.Via_assoc
                 { target = rec_name; assoc = set_name; qual }
               :: Apattern.Assoc_via
                    { assoc = set_name; source = owner; qual = Cond.True }
               :: acc))
  end

let parse_find_cursor ddl c =
  let sort_on = ref [] in
  let sorted = eat_kw c "SORT" in
  if sorted then expect c Lexer.Lparen;
  if not (eat_kw c "FIND") then perr "expected FIND";
  expect c Lexer.Lparen;
  let target = expect_ident c in
  if not (is_record ddl target) then perr "unknown record %s" target;
  expect c Lexer.Colon;
  if not (eat_kw c "SYSTEM") then perr "access path must start at SYSTEM";
  let query = parse_path ddl c None [] in
  expect c Lexer.Rparen;
  if sorted then begin
    expect c Lexer.Rparen;
    if eat_kw c "ON" then begin
      expect c Lexer.Lparen;
      let rec go acc =
        let f = expect_ident c in
        if eat c Lexer.Comma then go (f :: acc) else List.rev (f :: acc)
      in
      sort_on := go [];
      expect c Lexer.Rparen
    end
  end;
  (match query with
  | [] -> perr "empty access path"
  | _ -> ());
  let result = Apattern.result_of query in
  if not (Field.name_equal result target) then
    perr "path delivers %s, not the target %s" result target;
  { target; query; sort_on = !sort_on }

let parse_find ddl src =
  let c = { toks = Lexer.tokenize src } in
  parse_find_cursor ddl c

let parse_operand c =
  match next c with
  | Lexer.Str_lit s -> Cond.Const (Value.Str s)
  | Lexer.Int_lit i -> Cond.Const (Value.Int i)
  | Lexer.Ident r -> (
      match next c with
      | Lexer.Period -> (
          match next c with
          | Lexer.Ident f -> Cond.Var (Field.canon r ^ "." ^ Field.canon f)
          | t -> perr "expected a field after %s., got %a" r Lexer.pp_token t)
      | t -> perr "expected '.', got %a" Lexer.pp_token t)
  | t -> perr "unexpected operand %a" Lexer.pp_token t

let parse_operands c =
  let rec go acc =
    let e = parse_operand c in
    if eat c Lexer.Comma then go (e :: acc) else List.rev (e :: acc)
  in
  go []

let parse_program ddl src =
  let c = { toks = Lexer.tokenize src } in
  let notes = ref [] in
  if not (eat_kw c "PROGRAM") then perr "expected PROGRAM";
  let name = expect_ident c in
  ignore (eat c Lexer.Period);
  let rec stmts acc =
    match peek c with
    | None -> List.rev acc
    | Some (Lexer.Ident "FOR") ->
        ignore (next c);
        if not (eat_kw c "EACH") then perr "expected EACH";
        let find = parse_find_cursor ddl c in
        if find.sort_on <> [] then
          notes :=
            Fmt.str
              "SORT ON (%s) dropped: enumeration follows storage order"
              (String.concat ", " find.sort_on)
            :: !notes;
        if not (eat_kw c "DISPLAY") then perr "expected DISPLAY";
        let es = parse_operands c in
        ignore (eat c Lexer.Period);
        if not (eat_kw c "END") then perr "expected END";
        ignore (eat c Lexer.Period);
        stmts
          (Aprog.For_each { query = find.query; body = [ Aprog.Display es ] }
           :: acc)
    | Some (Lexer.Ident "DISPLAY") ->
        ignore (next c);
        let es = parse_operands c in
        ignore (eat c Lexer.Period);
        stmts (Aprog.Display es :: acc)
    | Some t -> perr "unexpected %a" Lexer.pp_token t
  in
  let body = stmts [] in
  ({ Aprog.name; body }, List.rev !notes)

let find_of_query ~target query =
  let buf = Buffer.create 128 in
  Buffer.add_string buf (Fmt.str "FIND(%s: SYSTEM" (Field.canon target));
  let qual_str q =
    match q with Cond.True -> "" | q -> Fmt.str "(%a)" Cond.pp q
  in
  List.iter
    (fun step ->
      match step with
      | Apattern.Self { target = t; qual } ->
          Buffer.add_string buf
            (Fmt.str ", ALL-%s, %s%s" (Field.canon t) (Field.canon t)
               (qual_str qual))
      | Apattern.Assoc_via { assoc; qual; _ } ->
          Buffer.add_string buf (Fmt.str ", %s%s" (Field.canon assoc) (qual_str qual))
      | Apattern.Via_assoc { target = t; qual; _ } ->
          Buffer.add_string buf (Fmt.str ", %s%s" (Field.canon t) (qual_str qual))
      | Apattern.Through { target = t; source; link = tf, sf; qual } ->
          Buffer.add_string buf
            (Fmt.str ", THROUGH(%s.%s=%s.%s), %s%s" (Field.canon t) tf
               (Field.canon source) sf (Field.canon t) (qual_str qual)))
    query;
  Buffer.add_char buf ')';
  Buffer.contents buf

let pp_find ppf f =
  if f.sort_on <> [] then
    Fmt.pf ppf "SORT(%s) ON (%s)"
      (find_of_query ~target:f.target f.query)
      (String.concat ", " f.sort_on)
  else Fmt.string ppf (find_of_query ~target:f.target f.query)
