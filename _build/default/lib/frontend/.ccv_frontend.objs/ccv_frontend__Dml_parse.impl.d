lib/frontend/dml_parse.ml: Apattern Aprog Buffer Ccv_abstract Ccv_common Cond Ddl Field Fmt Lexer List String Value
