lib/frontend/ddl.mli: Ccv_common Ccv_model Ccv_network Format Value
