lib/frontend/lexer.ml: Fmt List Printf String
