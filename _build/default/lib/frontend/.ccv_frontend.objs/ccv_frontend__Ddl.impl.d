lib/frontend/ddl.ml: Ccv_common Ccv_model Ccv_network Field Fmt Lexer List Option String Value
