lib/frontend/dml_parse.mli: Apattern Aprog Ccv_abstract Ddl Format
