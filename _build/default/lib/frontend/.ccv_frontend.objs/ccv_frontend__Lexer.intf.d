lib/frontend/lexer.mli: Format
