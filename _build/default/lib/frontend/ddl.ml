open Ccv_common

type field_decl =
  | Pic of string * Value.ty * int
  | Virtual of { vname : string; via : string; using : string }

type record_decl = { rname : string; fields : field_decl list }

type set_decl = {
  sname : string;
  owner : string option;
  member : string;
  keys : string list;
}

type t = { schema_name : string; records : record_decl list; sets : set_decl list }

exception Parse_error of string

let perr fmt = Fmt.kstr (fun s -> raise (Parse_error s)) fmt

(* A tiny token cursor.  Periods and semicolons are statement
   separators and skipped on demand. *)
type cursor = { mutable toks : Lexer.token list }

let skip_seps c =
  let rec go = function
    | (Lexer.Period | Lexer.Semicolon) :: rest -> go rest
    | toks -> toks
  in
  c.toks <- go c.toks

let peek c =
  skip_seps c;
  match c.toks with [] -> None | t :: _ -> Some t

let next c =
  skip_seps c;
  match c.toks with
  | [] -> perr "unexpected end of input"
  | t :: rest ->
      c.toks <- rest;
      t

let expect_ident c =
  match next c with
  | Lexer.Ident s -> s
  | t -> perr "expected a name, got %a" Lexer.pp_token t

let expect_kw c kw =
  match next c with
  | Lexer.Ident s when String.equal s kw -> ()
  | t -> perr "expected %s, got %a" kw Lexer.pp_token t

let expect c tok =
  let t = next c in
  if t <> tok then perr "expected %a, got %a" Lexer.pp_token tok Lexer.pp_token t

let at_kw c kw =
  match peek c with Some (Lexer.Ident s) -> String.equal s kw | _ -> false

let eat_kw c kw = if at_kw c kw then (ignore (next c); true) else false

(* FIELDS ARE. <decl>* until END RECORD *)
let parse_field c =
  let name = expect_ident c in
  if eat_kw c "PIC" then begin
    let ty =
      match next c with
      | Lexer.Ident "X" -> Value.Tstr
      | Lexer.Int_lit 9 -> Value.Tint
      | Lexer.Ident "9" -> Value.Tint
      | t -> perr "expected picture X or 9, got %a" Lexer.pp_token t
    in
    expect c Lexer.Lparen;
    let width =
      match next c with
      | Lexer.Int_lit n -> n
      | t -> perr "expected picture width, got %a" Lexer.pp_token t
    in
    expect c Lexer.Rparen;
    Pic (name, ty, width)
  end
  else if eat_kw c "VIRTUAL" then begin
    expect_kw c "VIA";
    let via = expect_ident c in
    expect_kw c "USING";
    let using = expect_ident c in
    Virtual { vname = name; via; using }
  end
  else perr "field %s: expected PIC or VIRTUAL" name

let parse_record c =
  expect_kw c "NAME";
  expect_kw c "IS";
  let rname = expect_ident c in
  expect_kw c "FIELDS";
  expect_kw c "ARE";
  let rec fields acc =
    if at_kw c "END" then begin
      ignore (next c);
      expect_kw c "RECORD";
      List.rev acc
    end
    else fields (parse_field c :: acc)
  in
  { rname; fields = fields [] }

let parse_set c =
  expect_kw c "NAME";
  expect_kw c "IS";
  let sname = expect_ident c in
  expect_kw c "OWNER";
  expect_kw c "IS";
  let owner =
    match expect_ident c with "SYSTEM" -> None | r -> Some r
  in
  expect_kw c "MEMBER";
  expect_kw c "IS";
  let member = expect_ident c in
  let keys =
    if at_kw c "SET" then begin
      ignore (next c);
      expect_kw c "KEYS";
      expect_kw c "ARE";
      expect c Lexer.Lparen;
      let rec go acc =
        let k = expect_ident c in
        match next c with
        | Lexer.Comma -> go (k :: acc)
        | Lexer.Rparen -> List.rev (k :: acc)
        | t -> perr "in SET KEYS: got %a" Lexer.pp_token t
      in
      go []
    end
    else []
  in
  expect_kw c "END";
  expect_kw c "SET";
  { sname; owner; member; keys }

let parse src =
  let c = { toks = Lexer.tokenize src } in
  expect_kw c "SCHEMA";
  expect_kw c "NAME";
  expect_kw c "IS";
  let schema_name = expect_ident c in
  expect_kw c "RECORD";
  expect_kw c "SECTION";
  let rec records acc =
    if at_kw c "RECORD" then begin
      ignore (next c);
      records (parse_record c :: acc)
    end
    else List.rev acc
  in
  let records = records [] in
  expect_kw c "END";
  expect_kw c "RECORD";
  expect_kw c "SECTION";
  expect_kw c "SET";
  expect_kw c "SECTION";
  let rec sets acc =
    if at_kw c "SET" then begin
      ignore (next c);
      sets (parse_set c :: acc)
    end
    else List.rev acc
  in
  let sets = sets [] in
  expect_kw c "END";
  expect_kw c "SET";
  expect_kw c "SECTION";
  expect_kw c "END";
  expect_kw c "SCHEMA";
  { schema_name; records; sets }

let pp ppf t =
  Fmt.pf ppf "SCHEMA NAME IS %s@.RECORD SECTION;@." t.schema_name;
  List.iter
    (fun r ->
      Fmt.pf ppf "@.  RECORD NAME IS %s.@.  FIELDS ARE.@." r.rname;
      List.iter
        (fun f ->
          match f with
          | Pic (name, Value.Tstr, w) -> Fmt.pf ppf "    %s PIC X(%d).@." name w
          | Pic (name, _, w) -> Fmt.pf ppf "    %s PIC 9(%d).@." name w
          | Virtual { vname; via; using } ->
              Fmt.pf ppf "    %s VIRTUAL@.      VIA %s@.      USING %s.@."
                vname via using)
        r.fields;
      Fmt.pf ppf "  END RECORD.@.")
    t.records;
  Fmt.pf ppf "END RECORD SECTION.@.SET SECTION.@.";
  List.iter
    (fun s ->
      Fmt.pf ppf "@.  SET NAME IS %s.@.  OWNER IS %s.@.  MEMBER IS %s.@."
        s.sname
        (Option.value s.owner ~default:"SYSTEM")
        s.member;
      (match s.keys with
      | [] -> ()
      | keys ->
          Fmt.pf ppf "  SET KEYS ARE (%s).@." (String.concat ", " keys));
      Fmt.pf ppf "  END SET.@.")
    t.sets;
  Fmt.pf ppf "END SET SECTION.@.@.END SCHEMA.@."

let to_string t = Fmt.str "%a" pp t

let stored_fields r =
  List.filter_map
    (function
      | Pic (name, ty, _) -> Some (Field.make name ty)
      | Virtual _ -> None)
    r.fields

(* The keys of the SYSTEM-owned singular set of a record, if any —
   they serve as the record's identifying (CALC) key. *)
let system_keys t rname =
  List.fold_left
    (fun acc (s : set_decl) ->
      if s.owner = None && Field.name_equal s.member rname && s.keys <> [] then
        Some s.keys
      else acc)
    None t.sets

let to_network t =
  let module N = Ccv_network.Nschema in
  let find_record rname =
    match List.find_opt (fun r -> Field.name_equal r.rname rname) t.records with
    | Some r -> r
    | None -> perr "unknown record %s" rname
  in
  let records =
    List.map
      (fun r ->
        let virtuals =
          List.filter_map
            (function
              | Virtual { vname; via; using } ->
                  let set =
                    match
                      List.find_opt (fun s -> Field.name_equal s.sname via) t.sets
                    with
                    | Some s -> s
                    | None -> perr "virtual %s: unknown set %s" vname via
                  in
                  let owner =
                    match set.owner with
                    | Some o -> find_record o
                    | None -> perr "virtual %s VIA a SYSTEM set" vname
                  in
                  let vty =
                    match
                      List.find_opt
                        (function
                          | Pic (n, _, _) -> Field.name_equal n using
                          | Virtual _ -> false)
                        owner.fields
                    with
                    | Some (Pic (_, ty, _)) -> ty
                    | Some (Virtual _) | None ->
                        perr "virtual %s: owner %s lacks field %s" vname
                          owner.rname using
                  in
                  Some { N.vname; vty; via_set = via; source_field = using }
              | Pic _ -> None)
            r.fields
        in
        let calc_key = Option.value (system_keys t r.rname) ~default:[] in
        N.record_decl ~virtuals ~calc_key r.rname (stored_fields r))
      t.records
  in
  let sets =
    List.map
      (fun s ->
        let owner =
          match s.owner with None -> N.System | Some o -> N.Owner_record o
        in
        let selection =
          match s.owner with
          | None -> N.By_current
          | Some o ->
              let member = find_record s.member in
              let pairs =
                List.filter_map
                  (function
                    | Virtual { vname; via; using }
                      when Field.name_equal via s.sname -> Some (using, vname)
                    | Virtual _ | Pic _ -> None)
                  member.fields
              in
              if pairs = [] then
                (* fall back: matching field names on both sides *)
                let okeys = Option.value (system_keys t o) ~default:[] in
                let m = find_record s.member in
                let shared =
                  List.filter
                    (fun k ->
                      List.exists
                        (function
                          | Pic (n, _, _) -> Field.name_equal n k
                          | Virtual _ -> false)
                        m.fields)
                    okeys
                in
                if shared = [] then N.By_current
                else N.By_value (List.map (fun k -> (k, k)) shared)
              else N.By_value pairs
        in
        N.set_decl ~order:(match s.keys with [] -> N.Chronological | ks -> N.Sorted ks)
          ~dups_allowed:false ~selection ~name:s.sname ~owner ~member:s.member
          ())
      t.sets
  in
  N.make records sets

let to_semantic t =
  let module S = Ccv_model.Semantic in
  let entities =
    List.map
      (fun r ->
        let fields = stored_fields r in
        let key =
          match system_keys t r.rname with
          | Some ks -> ks
          | None -> (
              match fields with
              | f :: _ -> [ f.Field.name ]
              | [] -> perr "record %s has no fields" r.rname)
        in
        S.entity r.rname fields ~key)
      t.records
  in
  let assocs, constraints =
    List.fold_left
      (fun (assocs, cs) s ->
        match s.owner with
        | None -> (assocs, cs)
        | Some o ->
            ( assocs @ [ S.assoc s.sname ~left:o ~right:s.member () ],
              cs @ [ S.Total_right s.sname ] ))
      ([], []) t.sets
  in
  S.make ~constraints entities assocs
