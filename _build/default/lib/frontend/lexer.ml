type token =
  | Ident of string
  | Str_lit of string
  | Int_lit of int
  | Lparen
  | Rparen
  | Comma
  | Period
  | Colon
  | Semicolon
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge

exception Error of string * int

let is_ident_start c =
  (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z')

let is_ident_char c =
  is_ident_start c || (c >= '0' && c <= '9') || c = '-' || c = '#'

let tokenize src =
  let n = String.length src in
  let rec go i acc =
    if i >= n then List.rev acc
    else
      let c = src.[i] in
      if c = ' ' || c = '\t' || c = '\n' || c = '\r' then go (i + 1) acc
      else if c = '(' then go (i + 1) (Lparen :: acc)
      else if c = ')' then go (i + 1) (Rparen :: acc)
      else if c = ',' then go (i + 1) (Comma :: acc)
      else if c = ';' then go (i + 1) (Semicolon :: acc)
      else if c = ':' then go (i + 1) (Colon :: acc)
      else if c = '=' then go (i + 1) (Eq :: acc)
      else if c = '<' then
        if i + 1 < n && src.[i + 1] = '=' then go (i + 2) (Le :: acc)
        else if i + 1 < n && src.[i + 1] = '>' then go (i + 2) (Ne :: acc)
        else go (i + 1) (Lt :: acc)
      else if c = '>' then
        if i + 1 < n && src.[i + 1] = '=' then go (i + 2) (Ge :: acc)
        else go (i + 1) (Gt :: acc)
      else if c = '\'' || c = '"' then begin
        let quote = c in
        let rec scan j =
          if j >= n then raise (Error ("unterminated string", i))
          else if src.[j] = quote then j
          else scan (j + 1)
        in
        let j = scan (i + 1) in
        go (j + 1) (Str_lit (String.sub src (i + 1) (j - i - 1)) :: acc)
      end
      else if c >= '0' && c <= '9' then begin
        let rec scan j = if j < n && src.[j] >= '0' && src.[j] <= '9' then scan (j + 1) else j in
        let j = scan i in
        go j (Int_lit (int_of_string (String.sub src i (j - i))) :: acc)
      end
      else if is_ident_start c then begin
        let rec scan j = if j < n && is_ident_char src.[j] then scan (j + 1) else j in
        let j = scan i in
        (* A period terminates statements; idents never end with '.' *)
        go j (Ident (String.uppercase_ascii (String.sub src i (j - i))) :: acc)
      end
      else if c = '.' then go (i + 1) (Period :: acc)
      else raise (Error (Printf.sprintf "unexpected character %c" c, i))
  in
  go 0 []

let pp_token ppf = function
  | Ident s -> Fmt.string ppf s
  | Str_lit s -> Fmt.pf ppf "%S" s
  | Int_lit i -> Fmt.int ppf i
  | Lparen -> Fmt.string ppf "("
  | Rparen -> Fmt.string ppf ")"
  | Comma -> Fmt.string ppf ","
  | Period -> Fmt.string ppf "."
  | Colon -> Fmt.string ppf ":"
  | Semicolon -> Fmt.string ppf ";"
  | Eq -> Fmt.string ppf "="
  | Ne -> Fmt.string ppf "<>"
  | Lt -> Fmt.string ppf "<"
  | Le -> Fmt.string ppf "<="
  | Gt -> Fmt.string ppf ">"
  | Ge -> Fmt.string ppf ">="
