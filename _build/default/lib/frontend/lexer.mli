(** Tokenizer for the Maryland DDL/DML surface syntax (Figures 4.3 and
    the FIND statements of §4.2).  Identifiers may contain hyphens
    (DIV-NAME); keywords are recognized case-insensitively by the
    parsers, not here. *)

type token =
  | Ident of string  (** canonical upper-case *)
  | Str_lit of string
  | Int_lit of int
  | Lparen
  | Rparen
  | Comma
  | Period
  | Colon
  | Semicolon
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge

exception Error of string * int
(** message, character offset *)

val tokenize : string -> token list
val pp_token : Format.formatter -> token -> unit
