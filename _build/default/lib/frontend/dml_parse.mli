(** Parser for the Maryland FIND statement of §4.2 —

    {v FIND(EMP: SYSTEM, ALL-DIV, DIV(DIV-NAME = 'MACHINERY'),
            DIV-EMP, EMP(DEPT-NAME = 'SALES')) v}

    — and a small program syntax around it:

    {v PROGRAM <name>.
       FOR EACH FIND(...) DISPLAY <operand> {, <operand>}. END.
       DISPLAY <operand> {, <operand>}. v}

    where an operand is ["REC.FIELD"], a quoted string, or an integer.
    [SORT( FIND(...) ) ON (F,...)] is accepted; the sort wrapper is
    returned as a note (our abstract programs enumerate in storage
    order, as the Figure 4.4 discussion anticipates). *)

open Ccv_abstract

exception Parse_error of string

type find = {
  target : string;
  query : Apattern.t;
  sort_on : string list;  (** [] unless wrapped in SORT(...) ON (...) *)
}

(** [parse_find ddl src] — the DDL supplies the set/record vocabulary
    (sets name the associations of {!Ddl.to_semantic}). *)
val parse_find : Ddl.t -> string -> find

val parse_program : Ddl.t -> string -> Aprog.t * string list
(** program plus notes (e.g. dropped SORT wrappers). *)

val pp_find : Format.formatter -> find -> unit

(** Pretty-print an access sequence back in FIND syntax (used by the
    CLI to show converted programs in the paper's own notation). *)
val find_of_query : target:string -> Apattern.t -> string
