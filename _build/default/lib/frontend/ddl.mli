(** Parser and printer for the Maryland schema DDL of Figure 4.3
    ("SCHEMA NAME IS COMPANY ... RECORD NAME IS DIV ... DIV-NAME
    VIRTUAL VIA DIV-EMP USING DIV-NAME ... SET NAME IS ALL-DIV. OWNER
    IS SYSTEM...").  Parsed schemas convert both to a concrete
    {!Ccv_network.Nschema.t} and to a semantic schema for the
    conversion pipeline. *)

open Ccv_common

type field_decl =
  | Pic of string * Value.ty * int  (** name, type, picture width *)
  | Virtual of { vname : string; via : string; using : string }

type record_decl = { rname : string; fields : field_decl list }

type set_decl = {
  sname : string;
  owner : string option;  (** [None] = SYSTEM *)
  member : string;
  keys : string list;
}

type t = { schema_name : string; records : record_decl list; sets : set_decl list }

exception Parse_error of string

val parse : string -> t
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Concrete network schema: virtual fields and BY VALUE selection
    derived from the VIRTUAL ... VIA ... USING clauses; CALC keys from
    the SYSTEM-owned set's keys. *)
val to_network : t -> Ccv_network.Nschema.t

(** Semantic schema: records become entities (keyed by their singular
    set's keys), owner-coupled sets become total 1:N associations named
    after the set. *)
val to_semantic : t -> Ccv_model.Semantic.t
