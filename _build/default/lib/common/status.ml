type t =
  | Ok
  | Not_found
  | End_of_set
  | Constraint_violation of string
  | No_currency
  | Duplicate_key of string
  | Invalid_request of string

let is_ok = function
  | Ok -> true
  | Not_found | End_of_set | Constraint_violation _ | No_currency
  | Duplicate_key _ | Invalid_request _ -> false

let equal a b =
  match a, b with
  | Ok, Ok | Not_found, Not_found | End_of_set, End_of_set
  | No_currency, No_currency -> true
  | Constraint_violation x, Constraint_violation y
  | Duplicate_key x, Duplicate_key y
  | Invalid_request x, Invalid_request y -> String.equal x y
  | ( Ok | Not_found | End_of_set | Constraint_violation _ | No_currency
    | Duplicate_key _ | Invalid_request _ ), _ -> false

let code = function
  | Ok -> "0000"
  | Not_found -> "0326"
  | End_of_set -> "0307"
  | Constraint_violation _ -> "1205"
  | No_currency -> "0303"
  | Duplicate_key _ -> "1605"
  | Invalid_request _ -> "9999"

let pp ppf = function
  | Ok -> Fmt.string ppf "OK"
  | Not_found -> Fmt.string ppf "NOT-FOUND"
  | End_of_set -> Fmt.string ppf "END-OF-SET"
  | Constraint_violation msg -> Fmt.pf ppf "CONSTRAINT-VIOLATION(%s)" msg
  | No_currency -> Fmt.string ppf "NO-CURRENCY"
  | Duplicate_key msg -> Fmt.pf ppf "DUPLICATE-KEY(%s)" msg
  | Invalid_request msg -> Fmt.pf ppf "INVALID-REQUEST(%s)" msg

let show s = Fmt.str "%a" pp s
