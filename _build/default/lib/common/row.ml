type t = (string * Value.t) list
(* Invariant: names are canonical (upper-case) and distinct, in field
   declaration order.  Rows are tiny (a handful of fields), so an assoc
   list beats a map on both clarity and constant factors. *)

let empty = []

let of_list bindings =
  let rec go acc = function
    | [] -> List.rev acc
    | (name, v) :: rest ->
        let name = Field.canon name in
        if List.mem_assoc name acc then go acc rest
        else go ((name, v) :: acc) rest
  in
  go [] bindings

let to_list row = row
let get row name = List.assoc_opt (Field.canon name) row
let get_exn row name = List.assoc (Field.canon name) row

let set row name v =
  let name = Field.canon name in
  if List.mem_assoc name row then
    List.map (fun (n, old) -> if String.equal n name then (n, v) else (n, old)) row
  else row @ [ (name, v) ]

let remove row name =
  let name = Field.canon name in
  List.filter (fun (n, _) -> not (String.equal n name)) row

let mem row name = List.mem_assoc (Field.canon name) row
let fields row = List.map fst row

let equal a b =
  List.length a = List.length b
  && List.for_all2
       (fun (n1, v1) (n2, v2) -> String.equal n1 n2 && Value.equal v1 v2)
       a b

let equal_unordered a b =
  List.length a = List.length b
  && List.for_all
       (fun (n, v) -> match List.assoc_opt n b with
         | Some v' -> Value.equal v v'
         | None -> false)
       a

let compare a b =
  List.compare
    (fun (n1, v1) (n2, v2) ->
      let c = String.compare n1 n2 in
      if c <> 0 then c else Value.compare v1 v2)
    a b

let project row names =
  List.map
    (fun name ->
      let name = Field.canon name in
      (name, Option.value (List.assoc_opt name row) ~default:Value.Null))
    names

let rename row ~from_ ~to_ =
  let from_ = Field.canon from_ and to_ = Field.canon to_ in
  List.map
    (fun (n, v) -> if String.equal n from_ then (to_, v) else (n, v))
    row

let union a b =
  a @ List.filter (fun (n, _) -> not (List.mem_assoc n a)) b

let conforms row decls =
  List.length row = List.length decls
  && List.for_all
       (fun (d : Field.t) ->
         match get row d.name with
         | Some v -> Value.conforms v d.ty
         | None -> false)
       decls

let coerce row decls =
  List.map
    (fun (d : Field.t) ->
      (d.name, Option.value (get row d.name) ~default:Value.Null))
    decls

let pp ppf row =
  Fmt.pf ppf "{%a}"
    (Fmt.list ~sep:(Fmt.any ", ") (fun ppf (n, v) ->
         Fmt.pf ppf "%s=%a" n Value.pp v))
    row

let show row = Fmt.str "%a" pp row
let hash row = Hashtbl.hash (List.map (fun (n, v) -> (n, Value.hash v)) row)
