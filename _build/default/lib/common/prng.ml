type t = { mutable state : int64 }

let create ~seed = { state = Int64.of_int seed }

(* splitmix64, Steele et al.; a full-period 64-bit mixer. *)
let next t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  let v = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  v mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Prng.int_in: empty range";
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (next t) 1L = 1L

let float t x =
  let v = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  x *. (v /. 9007199254740992.0)

let pick t = function
  | [] -> invalid_arg "Prng.pick: empty list"
  | xs -> List.nth xs (int t (List.length xs))

let pick_weighted t pairs =
  let total = List.fold_left (fun acc (w, _) -> acc + w) 0 pairs in
  if total <= 0 then invalid_arg "Prng.pick_weighted: weights must be positive";
  let roll = int t total in
  let rec go acc = function
    | [] -> invalid_arg "Prng.pick_weighted: empty list"
    | (w, x) :: rest -> if roll < acc + w then x else go (acc + w) rest
  in
  go 0 pairs

let shuffle t xs =
  let arr = Array.of_list xs in
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.to_list arr

let word t n = String.init n (fun _ -> Char.chr (Char.code 'A' + int t 26))

let split t =
  let seed = Int64.to_int (next t) in
  create ~seed
