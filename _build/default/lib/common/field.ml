type t = { name : string; ty : Value.ty }

let canon = String.uppercase_ascii
let name_equal a b = String.equal (canon a) (canon b)
let make name ty = { name = canon name; ty }
let equal a b = name_equal a.name b.name && Value.equal_ty a.ty b.ty

let compare a b =
  let c = String.compare (canon a.name) (canon b.name) in
  if c <> 0 then c else Value.compare_ty a.ty b.ty

let pp ppf f = Fmt.pf ppf "%s:%a" f.name Value.pp_ty f.ty
let show f = Fmt.str "%a" pp f
let find fields name = List.find_opt (fun f -> name_equal f.name name) fields
let mem fields name = Option.is_some (find fields name)
let names fields = List.map (fun f -> f.name) fields

let check_distinct ~what fields =
  let rec go = function
    | [] -> ()
    | f :: rest ->
        if mem rest f.name then
          invalid_arg (Fmt.str "%s: duplicate field %s" what f.name)
        else go rest
  in
  go fields
