type t =
  | Null
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

type ty = Tint | Tfloat | Tstr | Tbool

let equal a b =
  match a, b with
  | Null, Null -> true
  | Int x, Int y -> x = y
  | Float x, Float y -> Float.equal x y
  | Str x, Str y -> String.equal x y
  | Bool x, Bool y -> Bool.equal x y
  | (Null | Int _ | Float _ | Str _ | Bool _), _ -> false

let rank = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ -> 2
  | Float _ -> 3
  | Str _ -> 4

let compare a b =
  match a, b with
  | Null, Null -> 0
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  (* Cross-numeric comparison: an Int and a Float compare by value, so
     that a restructuring changing a field's carrier type does not
     change sort order. *)
  | Int x, Float y -> Float.compare (float_of_int x) y
  | Float x, Int y -> Float.compare x (float_of_int y)
  | Str x, Str y -> String.compare x y
  | Bool x, Bool y -> Bool.compare x y
  | a, b -> Int.compare (rank a) (rank b)

let equal_ty a b =
  match a, b with
  | Tint, Tint | Tfloat, Tfloat | Tstr, Tstr | Tbool, Tbool -> true
  | (Tint | Tfloat | Tstr | Tbool), _ -> false

let rank_ty = function Tbool -> 0 | Tint -> 1 | Tfloat -> 2 | Tstr -> 3
let compare_ty a b = Int.compare (rank_ty a) (rank_ty b)

let ty_of = function
  | Null -> None
  | Int _ -> Some Tint
  | Float _ -> Some Tfloat
  | Str _ -> Some Tstr
  | Bool _ -> Some Tbool

let conforms v ty =
  match ty_of v with None -> true | Some ty' -> equal_ty ty ty'

let is_null = function Null -> true | Int _ | Float _ | Str _ | Bool _ -> false

let default = function
  | Tint -> Int 0
  | Tfloat -> Float 0.
  | Tstr -> Str ""
  | Tbool -> Bool false

let numeric_op name fint ffloat a b =
  match a, b with
  | Int x, Int y -> Int (fint x y)
  | Float x, Float y -> Float (ffloat x y)
  | Int x, Float y -> Float (ffloat (float_of_int x) y)
  | Float x, Int y -> Float (ffloat x (float_of_int y))
  | _ -> invalid_arg (name ^ ": non-numeric operand")

let add a b = numeric_op "Value.add" ( + ) ( +. ) a b
let sub a b = numeric_op "Value.sub" ( - ) ( -. ) a b
let mul a b = numeric_op "Value.mul" ( * ) ( *. ) a b

let concat a b =
  match a, b with
  | Str x, Str y -> Str (x ^ y)
  | _ -> invalid_arg "Value.concat: non-string operand"

let pp ppf = function
  | Null -> Fmt.string ppf "NULL"
  | Int i -> Fmt.int ppf i
  | Float f -> Fmt.float ppf f
  | Str s -> Fmt.pf ppf "%S" s
  | Bool b -> Fmt.string ppf (if b then "TRUE" else "FALSE")

let pp_ty ppf ty =
  Fmt.string ppf
    (match ty with
    | Tint -> "INT"
    | Tfloat -> "FLOAT"
    | Tstr -> "STR"
    | Tbool -> "BOOL")

let show v = Fmt.str "%a" pp v
let show_ty ty = Fmt.str "%a" pp_ty ty

let to_display = function
  | Null -> "NULL"
  | Int i -> string_of_int i
  | Float f -> string_of_float f
  | Str s -> s
  | Bool b -> if b then "TRUE" else "FALSE"

let of_literal s =
  let n = String.length s in
  if n = 0 then None
  else if n >= 2 && (s.[0] = '\'' || s.[0] = '"') && s.[n - 1] = s.[0] then
    Some (Str (String.sub s 1 (n - 2)))
  else
    match String.uppercase_ascii s with
    | "NULL" -> Some Null
    | "TRUE" -> Some (Bool true)
    | "FALSE" -> Some (Bool false)
    | _ -> (
        match int_of_string_opt s with
        | Some i -> Some (Int i)
        | None -> (
            match float_of_string_opt s with
            | Some f -> Some (Float f)
            | None -> None))

let hash = function
  | Null -> 17
  | Int i -> Hashtbl.hash (1, i)
  | Float f -> Hashtbl.hash (2, f)
  | Str s -> Hashtbl.hash (3, s)
  | Bool b -> Hashtbl.hash (4, b)
