type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render ?title ?aligns headers rows =
  let ncols = List.length headers in
  let aligns =
    match aligns with
    | Some a when List.length a = ncols -> a
    | Some _ | None -> List.init ncols (fun _ -> Left)
  in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun acc row ->
            match List.nth_opt row i with
            | Some cell -> max acc (String.length cell)
            | None -> acc)
          (String.length h) rows)
      headers
  in
  let line =
    "+" ^ String.concat "+" (List.map (fun w -> String.make (w + 2) '-') widths)
    ^ "+"
  in
  let render_row cells =
    let padded =
      List.mapi
        (fun i w ->
          let cell = Option.value (List.nth_opt cells i) ~default:"" in
          let align = List.nth aligns i in
          " " ^ pad align w cell ^ " ")
        widths
    in
    "|" ^ String.concat "|" padded ^ "|"
  in
  let buf = Buffer.create 256 in
  (match title with
  | Some t ->
      Buffer.add_string buf t;
      Buffer.add_char buf '\n'
  | None -> ());
  Buffer.add_string buf line;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (render_row headers);
  Buffer.add_char buf '\n';
  Buffer.add_string buf line;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (render_row row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.add_string buf line;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let print ?title ?aligns headers rows =
  print_string (render ?title ?aligns headers rows)

let float_cell ?(digits = 2) f = Printf.sprintf "%.*f" digits f
let ratio_cell f = Printf.sprintf "%.2fx" f
