(** ASCII table rendering for the experiment report harness. *)

type align = Left | Right

(** [render ~title ~aligns headers rows] draws a boxed table.  When
    [aligns] is omitted every column is left-aligned. *)
val render :
  ?title:string -> ?aligns:align list -> string list -> string list list ->
  string

(** [print ...] is [render] followed by [print_string]. *)
val print :
  ?title:string -> ?aligns:align list -> string list -> string list list ->
  unit

(** Format a float with [digits] decimals (default 2). *)
val float_cell : ?digits:int -> float -> string

(** Format a ratio like ["3.2x"]. *)
val ratio_cell : float -> string
