(** Deterministic pseudo-random generator (splitmix64) for workload
    generation.  The standard-library [Random] is avoided so that every
    experiment is reproducible from a printed seed. *)

type t

val create : seed:int -> t

(** [int t bound] is uniform in [0, bound). [bound] must be positive. *)
val int : t -> int -> int

(** [int_in t lo hi] is uniform in [lo, hi] inclusive. *)
val int_in : t -> int -> int -> int

val bool : t -> bool

(** [float t x] is uniform in [0, x). *)
val float : t -> float -> float

(** [pick t xs] raises [Invalid_argument] on an empty list. *)
val pick : t -> 'a list -> 'a

(** [pick_weighted t pairs] picks proportionally to the (positive)
    weights. *)
val pick_weighted : t -> (int * 'a) list -> 'a

val shuffle : t -> 'a list -> 'a list

(** Fixed-length alphabetic string, upper-case. *)
val word : t -> int -> string

(** Split off an independent generator (for parallel sub-workloads). *)
val split : t -> t
