(** DBMS status codes.  Section 3.2 of the paper singles out
    status-code dependence as a conversion hazard, so every engine
    reports through this one explicit type and the analyzer can reason
    about which codes a program tests. *)

type t =
  | Ok
  | Not_found  (** no record satisfied the qualification *)
  | End_of_set  (** FIND NEXT ran off the end of a set / scan *)
  | Constraint_violation of string
  | No_currency  (** navigation with no established position *)
  | Duplicate_key of string
  | Invalid_request of string

val is_ok : t -> bool
val equal : t -> t -> bool

(** Stable numeric code, in the COBOL tradition ("0000", "0326"...). *)
val code : t -> string

val pp : Format.formatter -> t -> unit
val show : t -> string
