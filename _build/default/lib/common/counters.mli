(** Low-level access accounting.  Every engine charges its record
    touches here so that experiment E1 can compare the access cost of
    converted programs against the emulation and bridge baselines. *)

type t

val create : unit -> t

val record_read : t -> unit
val record_write : t -> unit

(** Charge [n] reads at once (bulk scans). *)
val record_reads : t -> int -> unit

val reads : t -> int
val writes : t -> int
val total : t -> int
val reset : t -> unit

(** [diff after before] as (reads, writes) — [snapshot]-style use. *)
val snapshot : t -> int * int
