type expr =
  | Const of Value.t
  | Field of string
  | Var of string
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Concat of expr * expr

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type t =
  | True
  | Cmp of cmp * expr * expr
  | And of t * t
  | Or of t * t
  | Not of t
  | Is_null of expr
  | Is_not_null of expr

type env = string -> Value.t option

let no_env _ = None

exception Unbound of string

let rec eval_expr ~env row = function
  | Const v -> v
  | Field name -> (
      match Row.get row name with
      | Some v -> v
      | None -> raise (Unbound ("field " ^ name)))
  | Var name -> (
      match env name with
      | Some v -> v
      | None -> raise (Unbound ("variable " ^ name)))
  | Add (a, b) -> Value.add (eval_expr ~env row a) (eval_expr ~env row b)
  | Sub (a, b) -> Value.sub (eval_expr ~env row a) (eval_expr ~env row b)
  | Mul (a, b) -> Value.mul (eval_expr ~env row a) (eval_expr ~env row b)
  | Concat (a, b) -> Value.concat (eval_expr ~env row a) (eval_expr ~env row b)

let apply_cmp op a b =
  (* 1979 three-valued logic in miniature: a comparison involving NULL
     is false except for Eq NULL NULL, matching how the paper's
     existence constraints treat missing references. *)
  match op with
  | Eq -> Value.equal a b
  | Ne -> not (Value.equal a b)
  | Lt -> (not (Value.is_null a || Value.is_null b)) && Value.compare a b < 0
  | Le -> (not (Value.is_null a || Value.is_null b)) && Value.compare a b <= 0
  | Gt -> (not (Value.is_null a || Value.is_null b)) && Value.compare a b > 0
  | Ge -> (not (Value.is_null a || Value.is_null b)) && Value.compare a b >= 0

let rec eval ~env row = function
  | True -> true
  | Cmp (op, a, b) -> apply_cmp op (eval_expr ~env row a) (eval_expr ~env row b)
  | And (a, b) -> eval ~env row a && eval ~env row b
  | Or (a, b) -> eval ~env row a || eval ~env row b
  | Not a -> not (eval ~env row a)
  | Is_null e -> Value.is_null (eval_expr ~env row e)
  | Is_not_null e -> not (Value.is_null (eval_expr ~env row e))

let rec fields_of_expr = function
  | Const _ | Var _ -> []
  | Field name -> [ Field.canon name ]
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Concat (a, b) ->
      fields_of_expr a @ fields_of_expr b

let rec vars_of_expr = function
  | Const _ | Field _ -> []
  | Var name -> [ name ]
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Concat (a, b) ->
      vars_of_expr a @ vars_of_expr b

let dedup xs =
  let rec go seen = function
    | [] -> List.rev seen
    | x :: rest -> if List.mem x seen then go seen rest else go (x :: seen) rest
  in
  go [] xs

let rec fields = function
  | True -> []
  | Cmp (_, a, b) -> dedup (fields_of_expr a @ fields_of_expr b)
  | And (a, b) | Or (a, b) -> dedup (fields a @ fields b)
  | Not a -> fields a
  | Is_null e | Is_not_null e -> dedup (fields_of_expr e)

let rec vars = function
  | True -> []
  | Cmp (_, a, b) -> dedup (vars_of_expr a @ vars_of_expr b)
  | And (a, b) | Or (a, b) -> dedup (vars a @ vars b)
  | Not a -> vars a
  | Is_null e | Is_not_null e -> dedup (vars_of_expr e)

let rec map_fields_expr f = function
  | Const v -> Const v
  | Field name -> Field (f name)
  | Var name -> Var name
  | Add (a, b) -> Add (map_fields_expr f a, map_fields_expr f b)
  | Sub (a, b) -> Sub (map_fields_expr f a, map_fields_expr f b)
  | Mul (a, b) -> Mul (map_fields_expr f a, map_fields_expr f b)
  | Concat (a, b) -> Concat (map_fields_expr f a, map_fields_expr f b)

let rec map_fields f = function
  | True -> True
  | Cmp (op, a, b) -> Cmp (op, map_fields_expr f a, map_fields_expr f b)
  | And (a, b) -> And (map_fields f a, map_fields f b)
  | Or (a, b) -> Or (map_fields f a, map_fields f b)
  | Not a -> Not (map_fields f a)
  | Is_null e -> Is_null (map_fields_expr f e)
  | Is_not_null e -> Is_not_null (map_fields_expr f e)

let rec fields_to_vars_expr f = function
  | Const v -> Const v
  | Field name -> Var (f name)
  | Var name -> Var name
  | Add (a, b) -> Add (fields_to_vars_expr f a, fields_to_vars_expr f b)
  | Sub (a, b) -> Sub (fields_to_vars_expr f a, fields_to_vars_expr f b)
  | Mul (a, b) -> Mul (fields_to_vars_expr f a, fields_to_vars_expr f b)
  | Concat (a, b) -> Concat (fields_to_vars_expr f a, fields_to_vars_expr f b)

let rec fields_to_vars f = function
  | True -> True
  | Cmp (op, a, b) -> Cmp (op, fields_to_vars_expr f a, fields_to_vars_expr f b)
  | And (a, b) -> And (fields_to_vars f a, fields_to_vars f b)
  | Or (a, b) -> Or (fields_to_vars f a, fields_to_vars f b)
  | Not a -> Not (fields_to_vars f a)
  | Is_null e -> Is_null (fields_to_vars_expr f e)
  | Is_not_null e -> Is_not_null (fields_to_vars_expr f e)

let rec subst_vars_expr env = function
  | Const v -> Const v
  | Field name -> Field name
  | Var name -> (
      match env name with Some v -> Const v | None -> Var name)
  | Add (a, b) -> Add (subst_vars_expr env a, subst_vars_expr env b)
  | Sub (a, b) -> Sub (subst_vars_expr env a, subst_vars_expr env b)
  | Mul (a, b) -> Mul (subst_vars_expr env a, subst_vars_expr env b)
  | Concat (a, b) -> Concat (subst_vars_expr env a, subst_vars_expr env b)

let rec subst_vars env = function
  | True -> True
  | Cmp (op, a, b) -> Cmp (op, subst_vars_expr env a, subst_vars_expr env b)
  | And (a, b) -> And (subst_vars env a, subst_vars env b)
  | Or (a, b) -> Or (subst_vars env a, subst_vars env b)
  | Not a -> Not (subst_vars env a)
  | Is_null e -> Is_null (subst_vars_expr env e)
  | Is_not_null e -> Is_not_null (subst_vars_expr env e)

let rec split_conjuncts = function
  | True -> []
  | And (a, b) -> split_conjuncts a @ split_conjuncts b
  | (Cmp _ | Or _ | Not _ | Is_null _ | Is_not_null _) as c -> [ c ]

let conj = function
  | [] -> True
  | c :: rest -> List.fold_left (fun acc c' -> And (acc, c')) c rest

let cand a b = match a, b with True, c | c, True -> c | a, b -> And (a, b)

let eq_field_const name v = Cmp (Eq, Field (Field.canon name), Const v)

let as_field_eq_const = function
  | Cmp (Eq, Field name, Const v) | Cmp (Eq, Const v, Field name) ->
      Some (Field.canon name, v)
  | True | Cmp _ | And _ | Or _ | Not _ | Is_null _ | Is_not_null _ -> None

let rec equal_expr a b =
  match a, b with
  | Const x, Const y -> Value.equal x y
  | Field x, Field y -> Field.name_equal x y
  | Var x, Var y -> String.equal x y
  | Add (a1, a2), Add (b1, b2)
  | Sub (a1, a2), Sub (b1, b2)
  | Mul (a1, a2), Mul (b1, b2)
  | Concat (a1, a2), Concat (b1, b2) -> equal_expr a1 b1 && equal_expr a2 b2
  | (Const _ | Field _ | Var _ | Add _ | Sub _ | Mul _ | Concat _), _ -> false

let rec equal a b =
  match a, b with
  | True, True -> true
  | Cmp (o1, a1, a2), Cmp (o2, b1, b2) ->
      o1 = o2 && equal_expr a1 b1 && equal_expr a2 b2
  | And (a1, a2), And (b1, b2) | Or (a1, a2), Or (b1, b2) ->
      equal a1 b1 && equal a2 b2
  | Not a, Not b -> equal a b
  | Is_null a, Is_null b | Is_not_null a, Is_not_null b -> equal_expr a b
  | (True | Cmp _ | And _ | Or _ | Not _ | Is_null _ | Is_not_null _), _ ->
      false

let rec pp_expr ppf = function
  | Const v -> Value.pp ppf v
  | Field name -> Fmt.string ppf name
  | Var name -> Fmt.pf ppf ":%s" name
  | Add (a, b) -> Fmt.pf ppf "(%a + %a)" pp_expr a pp_expr b
  | Sub (a, b) -> Fmt.pf ppf "(%a - %a)" pp_expr a pp_expr b
  | Mul (a, b) -> Fmt.pf ppf "(%a * %a)" pp_expr a pp_expr b
  | Concat (a, b) -> Fmt.pf ppf "(%a || %a)" pp_expr a pp_expr b

let pp_cmp ppf op =
  Fmt.string ppf
    (match op with
    | Eq -> "=" | Ne -> "<>" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">=")

let rec pp ppf = function
  | True -> Fmt.string ppf "TRUE"
  | Cmp (op, a, b) -> Fmt.pf ppf "%a %a %a" pp_expr a pp_cmp op pp_expr b
  | And (a, b) -> Fmt.pf ppf "(%a AND %a)" pp a pp b
  | Or (a, b) -> Fmt.pf ppf "(%a OR %a)" pp a pp b
  | Not a -> Fmt.pf ppf "NOT %a" pp a
  | Is_null e -> Fmt.pf ppf "%a IS NULL" pp_expr e
  | Is_not_null e -> Fmt.pf ppf "%a IS NOT NULL" pp_expr e

let show c = Fmt.str "%a" pp c
