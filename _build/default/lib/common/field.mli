(** Field (data-item) declarations, shared by every schema language. *)

type t = { name : string; ty : Value.ty }

val make : string -> Value.ty -> t
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val show : t -> string

(** [find fields name] is the declaration named [name], if any.
    Field names compare case-insensitively, as in the 1979 DDLs. *)
val find : t list -> string -> t option

val mem : t list -> string -> bool

(** [names fields] in declaration order. *)
val names : t list -> string list

(** Case-insensitive name equality used throughout the system. *)
val name_equal : string -> string -> bool

(** Canonical (upper-case) spelling of a field/record/set name. *)
val canon : string -> string

(** Raise [Invalid_argument] when the list declares a name twice. *)
val check_distinct : what:string -> t list -> unit
