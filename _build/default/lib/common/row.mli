(** A generic record/tuple/segment instance: an ordered mapping from
    field names to {!Value.t}.  Field order is the declaration order and
    is preserved by all operations, so printed output is deterministic. *)

type t

val empty : t

(** [of_list bindings] canonicalises names; later bindings override
    earlier ones for the same name (the position of the first wins). *)
val of_list : (string * Value.t) list -> t

val to_list : t -> (string * Value.t) list
val get : t -> string -> Value.t option

(** [get_exn row name] raises [Not_found] when the field is absent. *)
val get_exn : t -> string -> Value.t

(** [set row name v] replaces or appends the binding. *)
val set : t -> string -> Value.t -> t

val remove : t -> string -> t
val mem : t -> string -> bool
val fields : t -> string list
val equal : t -> t -> bool

(** Order-insensitive equality: same bindings regardless of position. *)
val equal_unordered : t -> t -> bool

val compare : t -> t -> int

(** [project row names] keeps exactly [names], in the given order;
    missing fields become [Null] (the 1979 convention for a field the
    restructured record no longer carries). *)
val project : t -> string list -> t

(** [rename row ~from_ ~to_] renames a field, keeping its position. *)
val rename : t -> from_:string -> to_:string -> t

(** [union a b]: bindings of [a] then bindings of [b] not already in
    [a] (left-biased, used to join owner and member records). *)
val union : t -> t -> t

(** [conforms row fields] checks arity, names and value types. *)
val conforms : t -> Field.t list -> bool

(** [coerce row fields] reorders/pads a row to a declaration: fields in
    declaration order, missing ones [Null], extra ones dropped. *)
val coerce : t -> Field.t list -> t

val pp : Format.formatter -> t -> unit
val show : t -> string
val hash : t -> int
