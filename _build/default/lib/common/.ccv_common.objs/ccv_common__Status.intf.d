lib/common/status.mli: Format
