lib/common/counters.ml:
