lib/common/status.ml: Fmt String
