lib/common/counters.mli:
