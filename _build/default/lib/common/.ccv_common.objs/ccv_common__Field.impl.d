lib/common/field.ml: Fmt List Option String Value
