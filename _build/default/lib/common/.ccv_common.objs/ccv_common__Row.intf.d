lib/common/row.mli: Field Format Value
