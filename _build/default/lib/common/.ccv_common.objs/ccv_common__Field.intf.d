lib/common/field.mli: Format Value
