lib/common/prng.mli:
