lib/common/value.mli: Format
