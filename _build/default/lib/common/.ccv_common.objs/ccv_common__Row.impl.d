lib/common/row.ml: Field Fmt Hashtbl List Option String Value
