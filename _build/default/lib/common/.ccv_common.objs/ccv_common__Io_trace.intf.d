lib/common/io_trace.mli: Format
