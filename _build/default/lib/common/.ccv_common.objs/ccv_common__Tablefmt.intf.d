lib/common/tablefmt.mli:
