lib/common/cond.mli: Format Row Value
