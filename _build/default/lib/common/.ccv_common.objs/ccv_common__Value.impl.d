lib/common/value.ml: Bool Float Fmt Hashtbl Int String
