lib/common/tablefmt.ml: Buffer List Option Printf String
