lib/common/cond.ml: Field Fmt List Row String Value
