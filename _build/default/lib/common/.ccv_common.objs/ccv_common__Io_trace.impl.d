lib/common/io_trace.ml: Fmt List String
