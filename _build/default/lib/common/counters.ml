type t = { mutable reads : int; mutable writes : int }

let create () = { reads = 0; writes = 0 }
let record_read t = t.reads <- t.reads + 1
let record_write t = t.writes <- t.writes + 1
let record_reads t n = t.reads <- t.reads + n
let reads t = t.reads
let writes t = t.writes
let total t = t.reads + t.writes

let reset t =
  t.reads <- 0;
  t.writes <- 0

let snapshot t = (t.reads, t.writes)
