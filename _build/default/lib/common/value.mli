(** Typed atomic values shared by every data model in the system.

    The 1979 setting is COBOL-ish: character strings with PICTUREs,
    integers, and a handful of numerics.  We model four carrier types
    plus an explicit [Null], which the paper needs to discuss existence
    constraints ("CNO and S can not have null values", section 3.1). *)

type t =
  | Null
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

type ty = Tint | Tfloat | Tstr | Tbool

val equal : t -> t -> bool

(** Total order: [Null] sorts first, then by type, then by value.
    Used for set sort keys, relational ORDER BY and comparisons. *)
val compare : t -> t -> int

val equal_ty : ty -> ty -> bool
val compare_ty : ty -> ty -> int

(** [ty_of v] is [None] for [Null], otherwise the carrier type. *)
val ty_of : t -> ty option

(** [conforms v ty] holds when [v] is [Null] or carries type [ty]. *)
val conforms : t -> ty -> bool

val is_null : t -> bool

(** Default (zero-ish) value of a type, used when a restructuring must
    invent a value (e.g. the "null instructor" of section 3.1). *)
val default : ty -> t

(** Arithmetic on numeric values; raises [Invalid_argument] on a type
    clash.  Int/float are promoted to float when mixed. *)
val add : t -> t -> t

val sub : t -> t -> t
val mul : t -> t -> t

(** String concatenation on [Str]; raises [Invalid_argument] otherwise. *)
val concat : t -> t -> t

val pp : Format.formatter -> t -> unit
val pp_ty : Format.formatter -> ty -> unit
val show : t -> string
val show_ty : ty -> string

(** Render without quotes, for terminal/report output. *)
val to_display : t -> string

(** Parse a literal the way the DDL/DML lexer sees it: quoted strings,
    integers, floats, [TRUE]/[FALSE], [NULL]. *)
val of_literal : string -> t option

(** Hash compatible with [equal]. *)
val hash : t -> int
