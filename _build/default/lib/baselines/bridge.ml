open Ccv_common
open Ccv_model
open Ccv_abstract
open Ccv_transform
module Ndb = Ccv_network.Ndb
module Dml = Ccv_network.Dml
module Interp = Ccv_network.Interp

type t = {
  source_schema : Semantic.t;
  target_mapping : Mapping.t;
  inverse_ops : Schema_change.op list;
  source_mapping : Mapping.t;
  source_nschema : Ccv_network.Nschema.t;
}

let create ~source_schema ~ops target_mapping =
  (* Build the inverse chain right-to-left, validating invertibility
     against each intermediate schema. *)
  let rec invert schema acc = function
    | [] -> acc
    | op :: rest -> (
        match Inverse.invert schema op with
        | Inverse.Lossy why ->
            invalid_arg ("Bridge.create: restructuring not invertible: " ^ why)
        | Inverse.Invertible inv | Inverse.Conditional (inv, _) ->
            let schema' = Schema_change.apply_exn schema op in
            invert schema' (inv :: acc) rest)
  in
  let inverse_ops = invert source_schema [] ops in
  let source_mapping, source_nschema = Mapping.derive_network source_schema in
  { source_schema; target_mapping; inverse_ops; source_mapping; source_nschema }

(* Reconstruct the full source-form database, charging the work to the
   target's counter (the target records are what is physically read)
   and reporting the write volume of the bridge image. *)
let reconstruct bridge target =
  let target_counters = Ndb.counters target in
  (* Every target record is read to build the image. *)
  Counters.record_reads target_counters (Ndb.total_records target);
  let sdb = Mapping.extract_network bridge.target_mapping target in
  let sdb_src =
    List.fold_left
      (fun sdb op -> Data_translate.translate_exn sdb op)
      sdb bridge.inverse_ops
  in
  let image =
    Mapping.load_network bridge.source_mapping bridge.source_nschema sdb_src
  in
  (* The image's construction work (stores, connects) counts too. *)
  let image_counters = Ndb.counters image in
  Counters.record_reads target_counters (Counters.total image_counters);
  Counters.reset image_counters;
  image

module Engine = struct
  type db = t * Ndb.t
  type state = { cur : Interp.currency; image : Ndb.t option }
  type dml = Dml.t

  let initial_state _ = { cur = Interp.initial_currency; image = None }

  let exec (bridge, target) st ~env stmt =
    match stmt with
    | Dml.Store _ | Dml.Modify _ | Dml.Erase _ | Dml.Connect _
    | Dml.Disconnect _ ->
        ( (bridge, target),
          st,
          [],
          Status.Invalid_request "bridge reconstruction is retrieval-only" )
    | Dml.Find _ | Dml.Get _ ->
        let image =
          match st.image with
          | Some image -> image
          | None -> reconstruct bridge target
        in
        let o = Interp.exec image st.cur ~env stmt in
        (* Per-call work on the image is real work: surface it on the
           target's counter, which the harness reads. *)
        let image_counters = Ndb.counters o.Interp.db in
        let spent = Counters.total image_counters in
        Counters.reset image_counters;
        Counters.record_reads (Ndb.counters target) spent;
        ( (bridge, target),
          { cur = o.Interp.cur; image = Some o.Interp.db },
          o.Interp.updates,
          o.Interp.status )
end

module Run = Host.Run (Engine)

let run ?input ?max_steps bridge target program =
  let counters = Ndb.counters target in
  let before = Counters.total counters in
  let r = Run.run ?input ?max_steps (bridge, target) program in
  (r.Run.trace, Counters.total counters - before)
