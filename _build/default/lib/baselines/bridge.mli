(** The bridge-program conversion strategy of §2.1.2: "the source
    application program's access requirements are supported by
    dynamically reconstructing from the target database that portion
    of the source database needed" (the WAND-style dynamic
    restructuring).

    The bridge reconstructs the source-form database from the
    restructured one on first access — charging every record read on
    the target and written into the bridge image — and then serves the
    source program's DML from the reconstruction.  Retrieval only: a
    faithful reverse mapping for updates is exactly what the paper
    says makes this strategy break down. *)

open Ccv_abstract
open Ccv_transform

type t

(** [create ~source_schema ~ops target_mapping] — the ops are the
    forward restructuring; the bridge applies their inverses to
    reconstruct (fails on non-invertible ops, per Housel's
    restriction). *)
val create :
  source_schema:Ccv_model.Semantic.t -> ops:Schema_change.op list ->
  Mapping.t -> t

module Engine :
  Host.ENGINE
    with type db = t * Ccv_network.Ndb.t
     and type dml = Ccv_network.Dml.t

module Run : module type of Host.Run (Engine)

val run :
  ?input:string list -> ?max_steps:int -> t -> Ccv_network.Ndb.t ->
  Ccv_network.Dml.t Host.program -> Ccv_common.Io_trace.t * int
