(** The DML-emulation conversion strategy of §2.1.2 (the Honeywell
    "Task 609" package): "preserves the behavior of the application
    program by intercepting the individual DML calls at execution time
    and invoking equivalent DML calls to the restructured database."

    Like its model, this implementation is {b retrieval only} ("1)
    retrieval only — no update allowed") and supports a fixed
    restructuring class — the INTERPOSE split of Figure 4.2→4.4 — on
    network databases.  Every intercepted call pays reconstruction
    work on the restructured database (owner hops to rebuild the
    grouped fields, two-level sweeps to mimic the replaced set), which
    is precisely the "degraded efficiency" E1 measures. *)

open Ccv_abstract
open Ccv_transform

type t
(** An emulation layer: source-schema DML accepted, target database
    operated. *)

(** [create ~source_schema ~op target_mapping] — [op] must be an
    [Interpose]; raises [Invalid_argument] otherwise. *)
val create :
  source_schema:Ccv_model.Semantic.t -> op:Schema_change.op -> Mapping.t -> t

module Engine :
  Host.ENGINE
    with type db = t * Ccv_network.Ndb.t
     and type dml = Ccv_network.Dml.t

module Run : module type of Host.Run (Engine)

(** Convenience: run a source network program through the emulator on
    the restructured database. *)
val run :
  ?input:string list -> ?max_steps:int -> t -> Ccv_network.Ndb.t ->
  Ccv_network.Dml.t Host.program ->
  Ccv_common.Io_trace.t * int (** trace, accesses *)
