open Ccv_common
open Ccv_model
open Ccv_abstract
open Ccv_transform
module Ndb = Ccv_network.Ndb
module Dml = Ccv_network.Dml
module Interp = Ccv_network.Interp

type t = {
  through : string;
  la : string;  (** DIV-DEPT style set (left association name) *)
  ra : string;  (** DEPT-EMP style set *)
  owner : Semantic.entity;
  member : Semantic.entity;
}

let create ~source_schema ~op target_mapping =
  match op with
  | Schema_change.Interpose { through; left_assoc; right_assoc; _ } ->
      let a = Semantic.find_assoc_exn source_schema through in
      (match
         ( Mapping.assoc_real target_mapping left_assoc,
           Mapping.assoc_real target_mapping right_assoc )
       with
      | Mapping.Assoc_set { set = la; _ }, Mapping.Assoc_set { set = ra; _ } ->
          { through = Field.canon through;
            la;
            ra;
            owner = Semantic.find_entity_exn source_schema a.left;
            member = Semantic.find_entity_exn source_schema a.right;
          }
      | _, _ ->
          invalid_arg "Emulation.create: interposed associations must be sets")
  | Schema_change.Rename_entity _ | Schema_change.Rename_field _
  | Schema_change.Rename_assoc _ | Schema_change.Add_field _
  | Schema_change.Drop_field _ | Schema_change.Add_constraint _
  | Schema_change.Drop_constraint _ | Schema_change.Widen_cardinality _
  | Schema_change.Collapse _ | Schema_change.Restrict_extension _ ->
      invalid_arg "Emulation.create: only INTERPOSE is emulated"

module Engine = struct
  type db = t * Ndb.t

  type state = {
    cur : Interp.currency;
    via : (int * int) option;  (** virtual position: (group, member) *)
    thr : int option;  (** current of the replaced set *)
  }

  type dml = Dml.t

  let initial_state _ = { cur = Interp.initial_currency; via = None; thr = None }

  (* Track the virtual set's currency: any touched owner or member
     record becomes its current. *)
  let track emu ndb st key =
    match Ndb.rtype_of ndb key with
    | Some r
      when Field.name_equal r emu.owner.ename
           || Field.name_equal r emu.member.ename ->
        { st with thr = Some key }
    | Some _ | None -> st

  let virtual_owner emu ndb st =
    match st.thr with
    | None -> None
    | Some key -> (
        match Ndb.rtype_of ndb key with
        | Some r when Field.name_equal r emu.owner.ename -> Some key
        | Some r when Field.name_equal r emu.member.ename -> (
            Counters.record_read (Ndb.counters ndb);
            match Ndb.owner_of ndb ~set:emu.ra ~member:key with
            | None -> None
            | Some group ->
                Counters.record_read (Ndb.counters ndb);
                Ndb.owner_of ndb ~set:emu.la ~member:group)
        | Some _ | None -> None)

  let matches ndb ~env key cond =
    match Ndb.view ndb key with
    | Some row -> Cond.eval ~env row cond
    | None -> false

  (* Sweep the two-level structure that replaced the set: groups of
     the owner, then members of each group — this is the emulation
     overhead the paper predicts. *)
  let sweep emu ndb ~env owner_key cond ~from_ =
    let groups = Ndb.members ndb ~set:emu.la ~owner:owner_key in
    let rec go groups skipping =
      match groups with
      | [] -> None
      | g :: rest -> (
          let members = Ndb.members ndb ~set:emu.ra ~owner:g in
          let members, skipping =
            match from_ with
            | Some (fg, fm) when skipping ->
                if g = fg then
                  let rec after = function
                    | [] -> []
                    | m :: tl -> if m = fm then tl else after tl
                  in
                  (after members, false)
                else ([], true)
            | _ -> (members, skipping)
          in
          match List.find_opt (fun m -> matches ndb ~env m cond) members with
          | Some m -> Some (g, m)
          | None -> go rest skipping)
    in
    go groups (from_ <> None)

  let ok_found emu ndb st key via =
    let cur = Interp.establish ndb st.cur key in
    let st = { cur; via; thr = Some key } in
    ignore emu;
    (st, Status.Ok)

  let exec (emu, ndb) st ~env stmt =
    let fail status = ((emu, ndb), st, [], status) in
    let pass stmt =
      let o = Interp.exec ndb st.cur ~env stmt in
      let st' = { st with cur = o.Interp.cur } in
      let st' =
        match Interp.current_of_run_unit o.Interp.cur with
        | Some key when Status.is_ok o.Interp.status ->
            track emu ndb st' key
        | Some _ | None -> st'
      in
      ((emu, o.Interp.db), st', o.Interp.updates, o.Interp.status)
    in
    match stmt with
    | Dml.Find (Dml.First_within (m, s, cond))
      when Field.name_equal s emu.through ->
        if not (Field.name_equal m emu.member.ename) then
          fail (Status.Invalid_request "emulated set has one member type")
        else (
          match virtual_owner emu ndb st with
          | None -> fail Status.No_currency
          | Some owner_key -> (
              match sweep emu ndb ~env owner_key cond ~from_:None with
              | Some (g, key) ->
                  let st, status = ok_found emu ndb st key (Some (g, key)) in
                  ((emu, ndb), st, [], status)
              | None -> fail Status.End_of_set))
    | Dml.Find (Dml.Next_within (m, s, cond))
      when Field.name_equal s emu.through ->
        if not (Field.name_equal m emu.member.ename) then
          fail (Status.Invalid_request "emulated set has one member type")
        else (
          match virtual_owner emu ndb st, st.via with
          | Some owner_key, Some from_ -> (
              match sweep emu ndb ~env owner_key cond ~from_:(Some from_) with
              | Some (g, key) ->
                  let st, status = ok_found emu ndb st key (Some (g, key)) in
                  ((emu, ndb), st, [], status)
              | None -> fail Status.End_of_set)
          | Some owner_key, None -> (
              match sweep emu ndb ~env owner_key cond ~from_:None with
              | Some (g, key) ->
                  let st, status = ok_found emu ndb st key (Some (g, key)) in
                  ((emu, ndb), st, [], status)
              | None -> fail Status.End_of_set)
          | None, _ -> fail Status.No_currency)
    | Dml.Find (Dml.Owner_within s) when Field.name_equal s emu.through -> (
        match virtual_owner emu ndb st with
        | Some owner_key ->
            Counters.record_read (Ndb.counters ndb);
            let st, status = ok_found emu ndb st owner_key None in
            ((emu, ndb), st, [], status)
        | None -> fail Status.No_currency)
    | Dml.Store _ | Dml.Modify _ | Dml.Erase _ | Dml.Connect _
    | Dml.Disconnect _ ->
        (* Task 609: "retrieval only -- no update allowed". *)
        fail (Status.Invalid_request "DML emulation is retrieval-only")
    | Dml.Find _ | Dml.Get _ -> pass stmt
end

module Run = Host.Run (Engine)

let run ?input ?max_steps emu ndb program =
  let counters = Ndb.counters ndb in
  let before = Counters.total counters in
  let r = Run.run ?input ?max_steps (emu, ndb) program in
  (r.Run.trace, Counters.total counters - before)
