lib/baselines/emulation.mli: Ccv_abstract Ccv_common Ccv_model Ccv_network Ccv_transform Host Mapping Schema_change
