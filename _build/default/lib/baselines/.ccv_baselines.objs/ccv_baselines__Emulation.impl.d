lib/baselines/emulation.ml: Ccv_abstract Ccv_common Ccv_model Ccv_network Ccv_transform Cond Counters Field Host List Mapping Schema_change Semantic Status
