lib/baselines/bridge.ml: Ccv_abstract Ccv_common Ccv_model Ccv_network Ccv_transform Counters Data_translate Host Inverse List Mapping Schema_change Semantic Status
