open Ccv_common

type insertion = Automatic | Manual
type retention = Optional | Mandatory | Fixed
type owner = System | Owner_record of string
type order = Chronological | Sorted of string list
type selection = By_value of (string * string) list | By_current

type set_decl = {
  sname : string;
  owner : owner;
  member : string;
  insertion : insertion;
  retention : retention;
  order : order;
  selection : selection;
  dups_allowed : bool;
}

type virtual_field = {
  vname : string;
  vty : Value.ty;
  via_set : string;
  source_field : string;
}

type record_decl = {
  rname : string;
  fields : Field.t list;
  virtuals : virtual_field list;
  calc_key : string list;
}

type t = { records : record_decl list; sets : set_decl list }

let record_decl ?(virtuals = []) ?(calc_key = []) name fields =
  let rname = Field.canon name in
  Field.check_distinct ~what:("record " ^ rname) fields;
  let virtuals =
    List.map
      (fun v ->
        { v with
          vname = Field.canon v.vname;
          via_set = Field.canon v.via_set;
          source_field = Field.canon v.source_field;
        })
      virtuals
  in
  List.iter
    (fun v ->
      if Field.mem fields v.vname then
        invalid_arg
          (Fmt.str "record %s: virtual %s shadows a stored field" rname v.vname))
    virtuals;
  let calc_key = List.map Field.canon calc_key in
  List.iter
    (fun k ->
      if not (Field.mem fields k) then
        invalid_arg (Fmt.str "record %s: calc key %s not declared" rname k))
    calc_key;
  { rname; fields; virtuals; calc_key }

let set_decl ?(insertion = Automatic) ?(retention = Mandatory)
    ?(order = Chronological) ?(selection = By_current) ?(dups_allowed = true)
    ~name ~owner ~member () =
  let owner =
    match owner with
    | System -> System
    | Owner_record r -> Owner_record (Field.canon r)
  in
  let order =
    match order with
    | Chronological -> Chronological
    | Sorted keys -> Sorted (List.map Field.canon keys)
  in
  let selection =
    match selection with
    | By_current -> By_current
    | By_value pairs ->
        if pairs = [] then invalid_arg "Nschema.set_decl: empty BY VALUE list";
        By_value (List.map (fun (o, m) -> (Field.canon o, Field.canon m)) pairs)
  in
  { sname = Field.canon name;
    owner;
    member = Field.canon member;
    insertion;
    retention;
    order;
    selection;
    dups_allowed;
  }

let find_record t name =
  List.find_opt (fun r -> Field.name_equal r.rname name) t.records

let find_record_exn t name =
  match find_record t name with
  | Some r -> r
  | None -> invalid_arg (Fmt.str "Nschema: unknown record type %s" name)

let find_set t name =
  List.find_opt (fun s -> Field.name_equal s.sname name) t.sets

let find_set_exn t name =
  match find_set t name with
  | Some s -> s
  | None -> invalid_arg (Fmt.str "Nschema: unknown set type %s" name)

let all_field_names r =
  Field.names r.fields @ List.map (fun v -> v.vname) r.virtuals

let virtual_of r name =
  List.find_opt (fun v -> Field.name_equal v.vname name) r.virtuals

let make records sets =
  let t = { records; sets } in
  let rec check_dup_records = function
    | [] -> ()
    | r :: rest ->
        if List.exists (fun r' -> Field.name_equal r'.rname r.rname) rest then
          invalid_arg (Fmt.str "Nschema: duplicate record type %s" r.rname)
        else check_dup_records rest
  in
  check_dup_records records;
  let rec check_dup_sets = function
    | [] -> ()
    | s :: rest ->
        if List.exists (fun s' -> Field.name_equal s'.sname s.sname) rest then
          invalid_arg (Fmt.str "Nschema: duplicate set type %s" s.sname)
        else check_dup_sets rest
  in
  check_dup_sets sets;
  List.iter
    (fun s ->
      let member = find_record_exn t s.member in
      let owner_decl =
        match s.owner with
        | System -> None
        | Owner_record o -> Some (find_record_exn t o)
      in
      (match s.order with
      | Chronological -> ()
      | Sorted keys ->
          List.iter
            (fun k ->
              if not (List.exists (Field.name_equal k) (all_field_names member))
              then
                invalid_arg
                  (Fmt.str "set %s: sort key %s not a field of %s" s.sname k
                     member.rname))
            keys);
      match s.selection with
      | By_current -> ()
      | By_value pairs ->
          List.iter
            (fun (ofield, mfield) ->
              (match owner_decl with
              | None ->
                  invalid_arg
                    (Fmt.str "set %s: BY VALUE selection on a SYSTEM set"
                       s.sname)
              | Some o ->
                  if not (Field.mem o.fields ofield) then
                    invalid_arg
                      (Fmt.str "set %s: selection field %s not in owner %s"
                         s.sname ofield o.rname));
              if
                not
                  (List.exists (Field.name_equal mfield)
                     (all_field_names member))
              then
                invalid_arg
                  (Fmt.str "set %s: selection field %s not in member %s"
                     s.sname mfield member.rname))
            pairs)
    sets;
  List.iter
    (fun r ->
      List.iter
        (fun v ->
          let s = find_set_exn t v.via_set in
          if not (Field.name_equal s.member r.rname) then
            invalid_arg
              (Fmt.str "record %s: virtual %s VIA %s but %s is not its member"
                 r.rname v.vname v.via_set r.rname);
          match s.owner with
          | System ->
              invalid_arg
                (Fmt.str "record %s: virtual %s VIA SYSTEM-owned set" r.rname
                   v.vname)
          | Owner_record o ->
              let od = find_record_exn t o in
              if not (Field.mem od.fields v.source_field) then
                invalid_arg
                  (Fmt.str "record %s: virtual %s sources missing field %s.%s"
                     r.rname v.vname o v.source_field))
        r.virtuals)
    records;
  t

let record_names t = List.map (fun r -> r.rname) t.records
let set_names t = List.map (fun s -> s.sname) t.sets

let sets_owned_by t rname =
  List.filter
    (fun s ->
      match s.owner with
      | System -> false
      | Owner_record o -> Field.name_equal o rname)
    t.sets

let sets_with_member t rname =
  List.filter (fun s -> Field.name_equal s.member rname) t.sets

let equal_set a b =
  Field.name_equal a.sname b.sname
  && a.owner = b.owner && Field.name_equal a.member b.member
  && a.insertion = b.insertion && a.retention = b.retention
  && a.order = b.order && a.selection = b.selection
  && a.dups_allowed = b.dups_allowed

let equal_record a b =
  Field.name_equal a.rname b.rname
  && List.length a.fields = List.length b.fields
  && List.for_all2 Field.equal a.fields b.fields
  && a.virtuals = b.virtuals && a.calc_key = b.calc_key

let equal a b =
  List.length a.records = List.length b.records
  && List.for_all2 equal_record a.records b.records
  && List.length a.sets = List.length b.sets
  && List.for_all2 equal_set a.sets b.sets

let pp_owner ppf = function
  | System -> Fmt.string ppf "SYSTEM"
  | Owner_record r -> Fmt.string ppf r

let pp_set ppf s =
  let pp_ins ppf = function
    | Automatic -> Fmt.string ppf "AUTOMATIC"
    | Manual -> Fmt.string ppf "MANUAL"
  in
  let pp_ret ppf = function
    | Optional -> Fmt.string ppf "OPTIONAL"
    | Mandatory -> Fmt.string ppf "MANDATORY"
    | Fixed -> Fmt.string ppf "FIXED"
  in
  Fmt.pf ppf "@[<h>SET %s OWNER %a MEMBER %s %a %a%a@]" s.sname pp_owner
    s.owner s.member pp_ins s.insertion pp_ret s.retention
    (fun ppf -> function
      | Chronological -> ()
      | Sorted keys ->
          Fmt.pf ppf " KEYS(%a)" Fmt.(list ~sep:(any ", ") string) keys)
    s.order

let pp_record ppf r =
  Fmt.pf ppf "@[<h>RECORD %s(%a%a)%a@]" r.rname
    Fmt.(list ~sep:(any ", ") Field.pp)
    r.fields
    (fun ppf -> function
      | [] -> ()
      | vs ->
          Fmt.pf ppf ", %a"
            Fmt.(
              list ~sep:(any ", ") (fun ppf v ->
                  pf ppf "%s VIRTUAL VIA %s USING %s" v.vname v.via_set
                    v.source_field))
            vs)
    r.virtuals
    (fun ppf -> function
      | [] -> ()
      | key -> Fmt.pf ppf " CALC(%a)" Fmt.(list ~sep:(any ", ") string) key)
    r.calc_key

let pp ppf t =
  Fmt.pf ppf "@[<v>%a@ %a@]"
    (Fmt.list pp_record) t.records (Fmt.list pp_set) t.sets

let show t = Fmt.str "%a" pp t
