open Ccv_common

type find =
  | Any of string * Cond.t
  | Duplicate of string * Cond.t
  | First_within of string * string * Cond.t
  | Next_within of string * string * Cond.t
  | Owner_within of string
  | Current of string

type erase_mode = Erase_one | Erase_all

type t =
  | Find of find
  | Get of string
  | Store of string
  | Modify of string * string list
  | Erase of erase_mode * string
  | Connect of string * string
  | Disconnect of string * string

let uwa ~rtype ~field = Field.canon rtype ^ "." ^ Field.canon field

let record_types = function
  | Find (Any (r, _) | Duplicate (r, _)) -> [ Field.canon r ]
  | Find (First_within (r, _, _) | Next_within (r, _, _)) -> [ Field.canon r ]
  | Find (Current r) -> [ Field.canon r ]
  | Find (Owner_within _) -> []
  | Get r | Store r | Modify (r, _) | Erase (_, r)
  | Connect (r, _) | Disconnect (r, _) -> [ Field.canon r ]

let set_types = function
  | Find (Any _ | Duplicate _ | Current _) | Get _ | Store _ | Modify _
  | Erase _ -> []
  | Find (First_within (_, s, _) | Next_within (_, s, _) | Owner_within s)
  | Connect (_, s) | Disconnect (_, s) -> [ Field.canon s ]

let vars_read = function
  | Find (Any (_, c) | Duplicate (_, c)
         | First_within (_, _, c) | Next_within (_, _, c)) -> Cond.vars c
  | Find (Owner_within _ | Current _) | Get _ | Erase _ | Connect _
  | Disconnect _ -> []
  | Store r | Modify (r, _) -> [ uwa ~rtype:r ~field:"*" ]

let equal_find a b =
  match a, b with
  | Any (r1, c1), Any (r2, c2) | Duplicate (r1, c1), Duplicate (r2, c2) ->
      Field.name_equal r1 r2 && Cond.equal c1 c2
  | First_within (r1, s1, c1), First_within (r2, s2, c2)
  | Next_within (r1, s1, c1), Next_within (r2, s2, c2) ->
      Field.name_equal r1 r2 && Field.name_equal s1 s2 && Cond.equal c1 c2
  | Owner_within s1, Owner_within s2 -> Field.name_equal s1 s2
  | Current r1, Current r2 -> Field.name_equal r1 r2
  | ( Any _ | Duplicate _ | First_within _ | Next_within _ | Owner_within _
    | Current _ ), _ -> false

let equal a b =
  match a, b with
  | Find f1, Find f2 -> equal_find f1 f2
  | Get r1, Get r2 | Store r1, Store r2 -> Field.name_equal r1 r2
  | Modify (r1, fs1), Modify (r2, fs2) ->
      Field.name_equal r1 r2
      && List.map Field.canon fs1 = List.map Field.canon fs2
  | Erase (m1, r1), Erase (m2, r2) -> m1 = m2 && Field.name_equal r1 r2
  | Connect (r1, s1), Connect (r2, s2) | Disconnect (r1, s1), Disconnect (r2, s2)
    -> Field.name_equal r1 r2 && Field.name_equal s1 s2
  | (Find _ | Get _ | Store _ | Modify _ | Erase _ | Connect _ | Disconnect _),
    _ -> false

let pp_qual ppf = function
  | Cond.True -> ()
  | c -> Fmt.pf ppf " USING %a" Cond.pp c

let pp_find ppf = function
  | Any (r, c) -> Fmt.pf ppf "FIND ANY %s%a" r pp_qual c
  | Duplicate (r, c) -> Fmt.pf ppf "FIND DUPLICATE %s%a" r pp_qual c
  | First_within (r, s, c) -> Fmt.pf ppf "FIND FIRST %s WITHIN %s%a" r s pp_qual c
  | Next_within (r, s, c) -> Fmt.pf ppf "FIND NEXT %s WITHIN %s%a" r s pp_qual c
  | Owner_within s -> Fmt.pf ppf "FIND OWNER WITHIN %s" s
  | Current r -> Fmt.pf ppf "FIND CURRENT %s" r

let pp ppf = function
  | Find f -> pp_find ppf f
  | Get r -> Fmt.pf ppf "GET %s" r
  | Store r -> Fmt.pf ppf "STORE %s" r
  | Modify (r, fs) ->
      Fmt.pf ppf "MODIFY %s (%a)" r Fmt.(list ~sep:(any ", ") string) fs
  | Erase (Erase_one, r) -> Fmt.pf ppf "ERASE %s" r
  | Erase (Erase_all, r) -> Fmt.pf ppf "ERASE ALL %s" r
  | Connect (r, s) -> Fmt.pf ppf "CONNECT %s TO %s" r s
  | Disconnect (r, s) -> Fmt.pf ppf "DISCONNECT %s FROM %s" r s

let show t = Fmt.str "%a" pp t
