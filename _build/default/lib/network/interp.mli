(** Execution of {!Dml} statements against an {!Ndb} instance, with
    DBTG currency semantics.  Section 3.2 of the paper names currency
    behaviour as a core difficulty of program conversion — the
    converter must reproduce it exactly, so it is modelled explicitly:
    a run unit carries a current-of-run-unit, a current per record type
    and a current per set type; every successful FIND/STORE updates
    all applicable indicators, and a failed operation leaves them
    untouched. *)

open Ccv_common

type currency

val initial_currency : currency

(** Introspection (used by baselines and tests). *)
val current_of_run_unit : currency -> int option

val current_of_record : currency -> string -> int option
val current_of_set : currency -> string -> int option

(** Owner key of the current occurrence of a set ([None] when the set
    has no currency yet); System-owned sets always resolve. *)
val current_occurrence_owner : Ndb.t -> currency -> string -> int option

(** [establish db cur key] makes the record with database key [key]
    current of run unit, of its record type and of its sets — the
    currency effect of a successful FIND, exposed for emulation layers
    that locate records by their own means. *)
val establish : Ndb.t -> currency -> int -> currency

type outcome = {
  db : Ndb.t;
  cur : currency;
  updates : (string * Value.t) list;  (** UWA variables written (GET) *)
  status : Status.t;
}

(** [exec db cur ~env stmt] — never raises on data conditions; engine
    misuse (unknown record/set type) raises [Invalid_argument]. *)
val exec : Ndb.t -> currency -> env:Cond.env -> Dml.t -> outcome
