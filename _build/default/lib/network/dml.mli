(** CODASYL-DBTG data-manipulation statements (the subset the paper's
    examples use, section 4.1's language template and Figure 4.4's
    rewrites).  Host-variable references appear inside qualifications
    as [Cond.Var]; the user work area (UWA) naming convention is
    ["RTYPE.FIELD"]. *)

open Ccv_common

type find =
  | Any of string * Cond.t
      (** [FIND ANY rtype USING qual] — first record of the type, in
          database-key order, whose view satisfies the qualification *)
  | Duplicate of string * Cond.t
      (** [FIND DUPLICATE] — next matching record after the current of
          the record type *)
  | First_within of string * string * Cond.t
      (** [(rtype, set, qual)] — first qualifying member of the current
          occurrence of [set] *)
  | Next_within of string * string * Cond.t
      (** [FIND NEXT rtype WITHIN set USING qual] — as in the paper's
          CODASYL template *)
  | Owner_within of string  (** [FIND OWNER WITHIN set] *)
  | Current of string
      (** [FIND CURRENT rtype] — re-establish the current of the record
          type as current of run unit (and of its sets), e.g. to regain
          an occurrence after an ERASE cleared set currency *)

type erase_mode = Erase_one | Erase_all

type t =
  | Find of find
  | Get of string  (** copy the current record's view into UWA vars *)
  | Store of string  (** build a record from UWA vars and store it *)
  | Modify of string * string list  (** update listed fields from UWA *)
  | Erase of erase_mode * string
  | Connect of string * string  (** (rtype, set) at current occurrence *)
  | Disconnect of string * string

(** UWA variable name for a record field. *)
val uwa : rtype:string -> field:string -> string

(** Record types / set types a statement mentions. *)
val record_types : t -> string list

val set_types : t -> string list

(** Host variables read by the statement (for dataflow analysis). *)
val vars_read : t -> string list

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val show : t -> string
