lib/network/interp.mli: Ccv_common Cond Dml Ndb Status Value
