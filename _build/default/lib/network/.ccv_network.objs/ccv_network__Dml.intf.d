lib/network/dml.mli: Ccv_common Cond Format
