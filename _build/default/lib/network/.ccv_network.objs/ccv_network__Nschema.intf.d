lib/network/nschema.mli: Ccv_common Field Format Value
