lib/network/dml.ml: Ccv_common Cond Field Fmt List
