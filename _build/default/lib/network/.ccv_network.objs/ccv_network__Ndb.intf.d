lib/network/ndb.mli: Ccv_common Counters Format Nschema Row Status Value
