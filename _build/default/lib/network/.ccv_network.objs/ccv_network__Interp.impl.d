lib/network/interp.ml: Ccv_common Cond Counters Dml Field Fmt List Map Ndb Nschema Option Row Status String Value
