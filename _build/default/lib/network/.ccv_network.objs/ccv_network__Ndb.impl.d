lib/network/ndb.ml: Ccv_common Counters Field Fmt Int List Map Nschema Option Row Status String Value
