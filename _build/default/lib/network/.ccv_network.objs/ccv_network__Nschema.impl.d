lib/network/nschema.ml: Ccv_common Field Fmt List Value
