(** CODASYL-DBTG owner-coupled-set schemas.

    Models the constructs the paper leans on: record types with CALC
    keys, set types with the AUTOMATIC/MANUAL insertion and
    OPTIONAL/MANDATORY/FIXED retention options (section 3.1), sorted
    member order with a duplicates rule, SYSTEM-owned singular sets and
    virtual (source) fields declared [VIA set USING field] as in the
    Maryland schema of Figure 4.3. *)

open Ccv_common

type insertion = Automatic | Manual

type retention =
  | Optional  (** ERASE of owner disconnects members *)
  | Mandatory  (** ERASE of owner fails while members exist *)
  | Fixed  (** ERASE of owner deletes members (the cascade of §3.1) *)

type owner = System | Owner_record of string

type order =
  | Chronological  (** insertion order (ORDER IS LAST) *)
  | Sorted of string list  (** ascending member sort-key fields *)

type selection =
  | By_value of (string * string) list
      (** [(owner_field, member_field)] pairs: on STORE, the occurrence
          whose owner matches the stored record on every pair is
          selected (SET SELECTION BY VALUE; composite owner keys use
          several pairs).  Must be non-empty. *)
  | By_current  (** the run-unit's current occurrence of this set *)

type set_decl = {
  sname : string;
  owner : owner;
  member : string;
  insertion : insertion;
  retention : retention;
  order : order;
  selection : selection;
  dups_allowed : bool;  (** duplicate sort keys within one occurrence *)
}

type virtual_field = {
  vname : string;
  vty : Value.ty;
  via_set : string;
  source_field : string;  (** field of the owner record *)
}

type record_decl = {
  rname : string;
  fields : Field.t list;  (** stored fields *)
  virtuals : virtual_field list;  (** derived from a set owner *)
  calc_key : string list;  (** FIND ANY hashes on these; [] = scan *)
}

type t = { records : record_decl list; sets : set_decl list }

val record_decl :
  ?virtuals:virtual_field list -> ?calc_key:string list -> string ->
  Field.t list -> record_decl

val set_decl :
  ?insertion:insertion -> ?retention:retention -> ?order:order ->
  ?selection:selection -> ?dups_allowed:bool -> name:string -> owner:owner ->
  member:string -> unit -> set_decl

(** Validates cross-references; raises [Invalid_argument]. *)
val make : record_decl list -> set_decl list -> t

val find_record : t -> string -> record_decl option
val find_record_exn : t -> string -> record_decl
val find_set : t -> string -> set_decl option
val find_set_exn : t -> string -> set_decl
val record_names : t -> string list
val set_names : t -> string list

(** Sets in which the given record type participates. *)
val sets_owned_by : t -> string -> set_decl list

val sets_with_member : t -> string -> set_decl list

(** Stored + virtual field views of a record type. *)
val all_field_names : record_decl -> string list

val virtual_of : record_decl -> string -> virtual_field option

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val show : t -> string
