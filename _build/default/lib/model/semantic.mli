(** Su's high-level semantic data model (section 4.1): entity types and
    binary association types whose "structural properties, operational
    characteristics and integrity constraints ... are given explicitly"
    — the precondition the paper states for formulating transformation
    rules.

    The model distinguishes {e defined} entities from {e characterizing}
    entities (EMP vs EMP.DEPENDENT: deleting an employee implies
    deleting its dependents), and carries the constraint classes
    section 3.1 shows are missing from the 1979 data models: existence
    constraints on association endpoints and numeric limits on
    relationship participation. *)

open Ccv_common

type entity_kind =
  | Defined
  | Characterizing of string
      (** of the named defined entity: existence + deletion dependency *)

type entity = {
  ename : string;
  fields : Field.t list;
  key : string list;  (** identifying fields; never null *)
  kind : entity_kind;
}

type cardinality =
  | One_to_many  (** each right instance relates to at most one left *)
  | Many_to_many

type assoc = {
  aname : string;
  left : string;  (** entity name — the "one" side under [One_to_many] *)
  right : string;
  fields : Field.t list;  (** attributes of the association itself *)
  card : cardinality;
}

type constraint_ =
  | Total_left of string
      (** every instance of the left entity participates in the assoc *)
  | Total_right of string
      (** every right instance participates (the §3.1 "course-offering
          cannot exist unless course and semester do") *)
  | Participation_limit of { assoc : string; per_left_max : int }
      (** at most N right partners per left instance ("a course may not
          be offered more than twice in a school year") *)
  | Field_not_null of { entity : string; field : string }

type t = {
  entities : entity list;
  assocs : assoc list;
  constraints : constraint_ list;
}

val entity :
  ?kind:entity_kind -> string -> Field.t list -> key:string list -> entity

val assoc :
  ?fields:Field.t list -> ?card:cardinality -> string -> left:string ->
  right:string -> unit -> assoc

(** Validates all cross references; raises [Invalid_argument]. *)
val make :
  ?constraints:constraint_ list -> entity list -> assoc list -> t

val find_entity : t -> string -> entity option
val find_entity_exn : t -> string -> entity
val find_assoc : t -> string -> assoc option
val find_assoc_exn : t -> string -> assoc
val entity_names : t -> string list
val assoc_names : t -> string list

(** Associations touching a given entity. *)
val assocs_of : t -> string -> assoc list

(** The association connecting two entities, if exactly one exists. *)
val assoc_between : t -> string -> string -> assoc option

(** Constraints mentioning an entity or association. *)
val constraints_on : t -> string -> constraint_ list

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val pp_constraint : Format.formatter -> constraint_ -> unit
val show : t -> string
