lib/model/semantic.ml: Ccv_common Field Fmt List String
