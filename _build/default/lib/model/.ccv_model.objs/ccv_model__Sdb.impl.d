lib/model/sdb.ml: Ccv_common Counters Field Fmt Hashtbl List Option Row Semantic Status String Value
