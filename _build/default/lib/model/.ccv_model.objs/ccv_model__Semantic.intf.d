lib/model/semantic.mli: Ccv_common Field Format
