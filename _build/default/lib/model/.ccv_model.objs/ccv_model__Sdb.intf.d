lib/model/sdb.mli: Ccv_common Counters Format Row Semantic Status Value
