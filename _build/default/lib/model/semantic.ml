open Ccv_common

type entity_kind = Defined | Characterizing of string

type entity = {
  ename : string;
  fields : Field.t list;
  key : string list;
  kind : entity_kind;
}

type cardinality = One_to_many | Many_to_many

type assoc = {
  aname : string;
  left : string;
  right : string;
  fields : Field.t list;
  card : cardinality;
}

type constraint_ =
  | Total_left of string
  | Total_right of string
  | Participation_limit of { assoc : string; per_left_max : int }
  | Field_not_null of { entity : string; field : string }

type t = {
  entities : entity list;
  assocs : assoc list;
  constraints : constraint_ list;
}

let entity ?(kind = Defined) name fields ~key =
  let ename = Field.canon name in
  Field.check_distinct ~what:("entity " ^ ename) fields;
  let key = List.map Field.canon key in
  List.iter
    (fun k ->
      if not (Field.mem fields k) then
        invalid_arg (Fmt.str "entity %s: key field %s not declared" ename k))
    key;
  let kind =
    match kind with
    | Defined -> Defined
    | Characterizing owner -> Characterizing (Field.canon owner)
  in
  { ename; fields; key; kind }

let assoc ?(fields = []) ?(card = One_to_many) name ~left ~right () =
  let aname = Field.canon name in
  Field.check_distinct ~what:("association " ^ aname) fields;
  { aname; left = Field.canon left; right = Field.canon right; fields; card }

let find_entity t name =
  List.find_opt (fun e -> Field.name_equal e.ename name) t.entities

let find_entity_exn t name =
  match find_entity t name with
  | Some e -> e
  | None -> invalid_arg (Fmt.str "Semantic: unknown entity %s" name)

let find_assoc t name =
  List.find_opt (fun a -> Field.name_equal a.aname name) t.assocs

let find_assoc_exn t name =
  match find_assoc t name with
  | Some a -> a
  | None -> invalid_arg (Fmt.str "Semantic: unknown association %s" name)

let make ?(constraints = []) entities assocs =
  let t = { entities; assocs; constraints } in
  let rec check_dup_e = function
    | [] -> ()
    | e :: rest ->
        if List.exists (fun e' -> Field.name_equal e'.ename e.ename) rest then
          invalid_arg (Fmt.str "Semantic: duplicate entity %s" e.ename)
        else check_dup_e rest
  in
  check_dup_e entities;
  let rec check_dup_a = function
    | [] -> ()
    | a :: rest ->
        if List.exists (fun a' -> Field.name_equal a'.aname a.aname) rest then
          invalid_arg (Fmt.str "Semantic: duplicate association %s" a.aname)
        else check_dup_a rest
  in
  check_dup_a assocs;
  List.iter
    (fun e ->
      match e.kind with
      | Defined -> ()
      | Characterizing owner ->
          if find_entity t owner = None then
            invalid_arg
              (Fmt.str "entity %s characterizes unknown entity %s" e.ename owner))
    entities;
  List.iter
    (fun a ->
      ignore (find_entity_exn t a.left);
      ignore (find_entity_exn t a.right))
    assocs;
  List.iter
    (function
      | Total_left a | Total_right a -> ignore (find_assoc_exn t a)
      | Participation_limit { assoc = a; per_left_max } ->
          ignore (find_assoc_exn t a);
          if per_left_max < 1 then
            invalid_arg "Semantic: participation limit must be >= 1"
      | Field_not_null { entity = e; field } ->
          let decl = find_entity_exn t e in
          if not (Field.mem decl.fields field) then
            invalid_arg
              (Fmt.str "constraint on %s: unknown field %s" e field))
    constraints;
  t

let entity_names t = List.map (fun e -> e.ename) t.entities
let assoc_names t = List.map (fun a -> a.aname) t.assocs

let assocs_of t name =
  let name = Field.canon name in
  List.filter
    (fun a -> String.equal a.left name || String.equal a.right name)
    t.assocs

let assoc_between t e1 e2 =
  let e1 = Field.canon e1 and e2 = Field.canon e2 in
  let candidates =
    List.filter
      (fun a ->
        (String.equal a.left e1 && String.equal a.right e2)
        || (String.equal a.left e2 && String.equal a.right e1))
      t.assocs
  in
  match candidates with [ a ] -> Some a | [] | _ :: _ -> None

let constraints_on t name =
  let name = Field.canon name in
  List.filter
    (function
      | Total_left a | Total_right a | Participation_limit { assoc = a; _ } ->
          String.equal (Field.canon a) name
      | Field_not_null { entity; _ } -> String.equal (Field.canon entity) name)
    t.constraints

let equal_entity a b =
  Field.name_equal a.ename b.ename
  && List.length a.fields = List.length b.fields
  && List.for_all2 Field.equal a.fields b.fields
  && a.key = b.key && a.kind = b.kind

let equal_assoc a b =
  Field.name_equal a.aname b.aname
  && Field.name_equal a.left b.left
  && Field.name_equal a.right b.right
  && List.length a.fields = List.length b.fields
  && List.for_all2 Field.equal a.fields b.fields
  && a.card = b.card

let equal a b =
  List.length a.entities = List.length b.entities
  && List.for_all2 equal_entity a.entities b.entities
  && List.length a.assocs = List.length b.assocs
  && List.for_all2 equal_assoc a.assocs b.assocs
  && a.constraints = b.constraints

let pp_constraint ppf = function
  | Total_left a -> Fmt.pf ppf "TOTAL LEFT %s" a
  | Total_right a -> Fmt.pf ppf "TOTAL RIGHT %s" a
  | Participation_limit { assoc; per_left_max } ->
      Fmt.pf ppf "LIMIT %s <= %d PER LEFT" assoc per_left_max
  | Field_not_null { entity; field } ->
      Fmt.pf ppf "NOT NULL %s.%s" entity field

let pp_entity ppf e =
  Fmt.pf ppf "@[<h>ENTITY %s(%a) KEY(%a)%a@]" e.ename
    Fmt.(list ~sep:(any ", ") Field.pp)
    e.fields
    Fmt.(list ~sep:(any ", ") string)
    e.key
    (fun ppf -> function
      | Defined -> ()
      | Characterizing owner -> Fmt.pf ppf " CHARACTERIZES %s" owner)
    e.kind

let pp_assoc ppf a =
  Fmt.pf ppf "@[<h>ASSOC %s: %s %s %s%a@]" a.aname a.left
    (match a.card with One_to_many -> "->*" | Many_to_many -> "*-*")
    a.right
    (fun ppf -> function
      | [] -> ()
      | fs -> Fmt.pf ppf " (%a)" Fmt.(list ~sep:(any ", ") Field.pp) fs)
    a.fields

let pp ppf t =
  Fmt.pf ppf "@[<v>%a@ %a@ %a@]"
    (Fmt.list pp_entity) t.entities
    (Fmt.list pp_assoc) t.assocs
    (Fmt.list pp_constraint) t.constraints

let show t = Fmt.str "%a" pp t
