open Ccv_common
open Ccv_model
open Ccv_abstract
open Ccv_transform

exception Refuse of string

let refuse fmt = Fmt.kstr (fun s -> raise (Refuse s)) fmt

(* ------------------------------------------------------------------ *)
(* Generic traversals                                                  *)

let rec map_expr f = function
  | Cond.Const v -> Cond.Const v
  | Cond.Field x -> Cond.Field x
  | Cond.Var x -> f x
  | Cond.Add (a, b) -> Cond.Add (map_expr f a, map_expr f b)
  | Cond.Sub (a, b) -> Cond.Sub (map_expr f a, map_expr f b)
  | Cond.Mul (a, b) -> Cond.Mul (map_expr f a, map_expr f b)
  | Cond.Concat (a, b) -> Cond.Concat (map_expr f a, map_expr f b)

let rec map_cond f = function
  | Cond.True -> Cond.True
  | Cond.Cmp (op, a, b) -> Cond.Cmp (op, map_expr f a, map_expr f b)
  | Cond.And (a, b) -> Cond.And (map_cond f a, map_cond f b)
  | Cond.Or (a, b) -> Cond.Or (map_cond f a, map_cond f b)
  | Cond.Not a -> Cond.Not (map_cond f a)
  | Cond.Is_null e -> Cond.Is_null (map_expr f e)
  | Cond.Is_not_null e -> Cond.Is_not_null (map_expr f e)

type rewriter = {
  rw_query : Apattern.t -> Apattern.t;
  rw_expr : Cond.expr -> Cond.expr;
  rw_cond : Cond.t -> Cond.t;
  rw_varname : string -> string;  (** applied to MOVE/ACCEPT targets *)
  rw_stmt : rewriter -> Aprog.astmt -> Aprog.astmt list option;
      (** custom statement rewrite; [None] falls through to the
          structural rewrite, [Some stmts] re-enters the pipeline (the
          rewriter must not re-match its own output) *)
}

let rec rw_body r body = List.concat_map (rw_stmt_full r) body

and rw_stmt_full r s =
  match r.rw_stmt r s with
  | None -> [ rw_structural r s ]
  | Some stmts -> List.concat_map (rw_stmt_full r) stmts

and rw_structural r = function
  | Aprog.For_each { query; body } ->
      Aprog.For_each { query = r.rw_query query; body = rw_body r body }
  | Aprog.First { query; present; absent } ->
      Aprog.First
        { query = r.rw_query query;
          present = rw_body r present;
          absent = rw_body r absent;
        }
  | Aprog.Insert { entity; values; connects } ->
      Aprog.Insert
        { entity;
          values = List.map (fun (f, e) -> (f, r.rw_expr e)) values;
          connects =
            List.map (fun (a, ks) -> (a, List.map r.rw_expr ks)) connects;
        }
  | Aprog.Link { assoc; left_key; right_key; attrs } ->
      Aprog.Link
        { assoc;
          left_key = List.map r.rw_expr left_key;
          right_key = List.map r.rw_expr right_key;
          attrs = List.map (fun (f, e) -> (f, r.rw_expr e)) attrs;
        }
  | Aprog.Unlink { assoc; left_key; right_key } ->
      Aprog.Unlink
        { assoc;
          left_key = List.map r.rw_expr left_key;
          right_key = List.map r.rw_expr right_key;
        }
  | Aprog.Update { query; assigns } ->
      Aprog.Update
        { query = r.rw_query query;
          assigns = List.map (fun (f, e) -> (f, r.rw_expr e)) assigns;
        }
  | Aprog.Delete { query; cascade } ->
      Aprog.Delete { query = r.rw_query query; cascade }
  | Aprog.Display es -> Aprog.Display (List.map r.rw_expr es)
  | Aprog.Accept x -> Aprog.Accept (r.rw_varname x)
  | Aprog.Write_file (f, es) -> Aprog.Write_file (f, List.map r.rw_expr es)
  | Aprog.Move (e, x) -> Aprog.Move (r.rw_expr e, r.rw_varname x)
  | Aprog.If (c, a, b) -> Aprog.If (r.rw_cond c, rw_body r a, rw_body r b)
  | Aprog.While (c, body) -> Aprog.While (r.rw_cond c, rw_body r body)

let identity_rewriter =
  { rw_query = Fun.id;
    rw_expr = Fun.id;
    rw_cond = Fun.id;
    rw_varname = Fun.id;
    rw_stmt = (fun _ _ -> None);
  }

let apply_rewriter r (p : Aprog.t) = { p with Aprog.body = rw_body r p.body }

let rename_vars f p =
  let rw_var x = Cond.Var (f x) in
  apply_rewriter
    { identity_rewriter with
      rw_expr = map_expr rw_var;
      rw_cond = map_cond rw_var;
      rw_varname = f;
      rw_query = List.map (Apattern.map_qual (map_cond rw_var));
    }
    p

let qualified_vars p =
  let acc = ref [] in
  let note x = if String.contains x '.' && not (List.mem x !acc) then acc := x :: !acc in
  let rw_var x = note x; Cond.Var x in
  ignore
    (apply_rewriter
       { identity_rewriter with
         rw_expr = map_expr rw_var;
         rw_cond = map_cond rw_var;
         rw_query = List.map (Apattern.map_qual (map_cond rw_var));
       }
       p);
  List.rev !acc

(* Rename the "NAME." prefix of qualified variables. *)
let rename_prefix ~from_ ~to_ =
  let pfx = Field.canon from_ ^ "." in
  fun x ->
    let n = String.length pfx in
    if String.length x > n && Field.name_equal (String.sub x 0 n) pfx then
      Field.canon to_ ^ "." ^ String.sub x n (String.length x - n)
    else x

(* Rename one qualified variable exactly. *)
let rename_qvar ~from_ ~to_ x = if Field.name_equal x from_ then to_ else x

(* ------------------------------------------------------------------ *)
(* Step-level renamings                                                *)

let rename_step_names ~is_entity ~from_ ~to_ step =
  let r name = if Field.name_equal name from_ then Field.canon to_ else name in
  match step with
  | Apattern.Self s ->
      if is_entity then Apattern.Self { s with target = r s.target }
      else Apattern.Self s
  | Apattern.Through s ->
      if is_entity then
        Apattern.Through { s with target = r s.target; source = r s.source }
      else Apattern.Through s
  | Apattern.Assoc_via s ->
      if is_entity then Apattern.Assoc_via { s with source = r s.source }
      else Apattern.Assoc_via { s with assoc = r s.assoc }
  | Apattern.Via_assoc s ->
      if is_entity then Apattern.Via_assoc { s with target = r s.target }
      else Apattern.Via_assoc { s with assoc = r s.assoc }

(* ------------------------------------------------------------------ *)
(* The INTERPOSE rule (Figure 4.2 -> 4.4)                              *)

type interpose_info = {
  through : string;
  n : string;  (** the interposed entity *)
  group_by : string list;
  la : string;
  ra : string;
  owner : Semantic.entity;
  member : Semantic.entity;
}

let in_group info f = List.exists (Field.name_equal f) info.group_by

(* Split a qualification into (conjuncts over grouped fields, rest);
   mixed conjuncts refuse (cannot place them on one side). *)
let split_group info qual =
  let grouped, rest =
    List.partition
      (fun c ->
        let fs = Cond.fields c in
        fs <> [] && List.for_all (in_group info) fs)
      (Cond.split_conjuncts qual)
  in
  List.iter
    (fun c ->
      let fs = Cond.fields c in
      if List.exists (in_group info) fs && not (List.for_all (in_group info) fs)
      then refuse "qualification mixes grouped and ungrouped fields: %a" Cond.pp c)
    rest;
  (Cond.conj grouped, Cond.conj rest)

(* Rewrite one access sequence under INTERPOSE. *)
let rec interpose_query info steps =
  match steps with
  | [] -> []
  | Apattern.Assoc_via { assoc; source; qual }
    :: Apattern.Via_assoc { target; assoc = a2; qual = q2 }
    :: rest
    when Field.name_equal assoc info.through && Field.name_equal a2 info.through
    ->
      let dir_down = Field.name_equal source info.owner.ename in
      let qg, qrest = split_group info q2 in
      (* The association qualification (over the endpoint keys) splits
         the same way: owner-key conjuncts live on N (which embeds the
         owner key), member-key conjuncts join the member side. *)
      let q1_n, q1_member =
        List.partition
          (fun c ->
            List.for_all
              (fun f -> List.exists (Field.name_equal f) info.owner.key)
              (Cond.fields c))
          (Cond.split_conjuncts qual)
      in
      List.iter
        (fun c ->
          if
            not
              (List.for_all
                 (fun f ->
                   List.exists (Field.name_equal f) info.member.key)
                 (Cond.fields c))
          then
            refuse "association qualification %a cannot be split" Cond.pp c)
        q1_member;
      let qg = Cond.cand qg (Cond.conj q1_n) in
      let qrest = Cond.cand qrest (Cond.conj q1_member) in
      if dir_down then
        (* O -> E becomes O -> N -> E, grouped-field conditions moving
           onto N (the §4.2 DEPT(DEPT-NAME='SALES') move). *)
        Apattern.Assoc_via { assoc = info.la; source; qual = Cond.True }
        :: Apattern.Via_assoc { target = info.n; assoc = info.la; qual = qg }
        :: Apattern.Assoc_via
             { assoc = info.ra; source = info.n; qual = Cond.True }
        :: Apattern.Via_assoc { target; assoc = info.ra; qual = qrest }
        :: interpose_query info rest
      else
        Apattern.Assoc_via
          { assoc = info.ra; source; qual = Cond.conj q1_member }
        :: Apattern.Via_assoc { target = info.n; assoc = info.ra; qual = qg }
        :: Apattern.Assoc_via
             { assoc = info.la; source = info.n; qual = Cond.True }
        :: Apattern.Via_assoc { target; assoc = info.la; qual = qrest }
        :: interpose_query info rest
  | Apattern.Assoc_via { assoc; source; qual } :: rest
    when Field.name_equal assoc info.through ->
      (* Unpaired association access: the replaced association's
         occurrences correspond one-to-one with the N->E association's
         occurrences (every E has exactly one N). *)
      let qg, qrest = split_group info qual in
      if Field.name_equal source info.owner.ename then
        Apattern.Assoc_via { assoc = info.la; source; qual = Cond.True }
        :: Apattern.Via_assoc { target = info.n; assoc = info.la; qual = qg }
        :: Apattern.Assoc_via { assoc = info.ra; source = info.n; qual = qrest }
        :: interpose_query info rest
      else
        Apattern.Assoc_via { assoc = info.ra; source; qual = qrest }
        :: (if Cond.equal qg Cond.True then []
            else
              [ Apattern.Via_assoc
                  { target = info.n; assoc = info.ra; qual = qg };
              ])
        @ interpose_query info rest
  | Apattern.Self { target; qual } :: rest
    when Field.name_equal target info.member.ename ->
      let qg, qrest = split_group info qual in
      let base = Apattern.Self { target; qual = qrest } in
      if Cond.equal qg Cond.True then base :: interpose_query info rest
      else
        (* Keep the member enumeration order and filter through the
           (unique, total) interposed owner. *)
        base
        :: Apattern.Assoc_via
             { assoc = info.ra; source = target; qual = Cond.True }
        :: Apattern.Via_assoc { target = info.n; assoc = info.ra; qual = qg }
        :: interpose_query info rest
  | step :: rest -> step :: interpose_query info rest

(* Does the program reference any grouped field variable of the member? *)
let uses_grouped_vars info p =
  List.exists
    (fun v ->
      List.exists
        (fun g -> Field.name_equal v (info.member.ename ^ "." ^ Field.canon g))
        info.group_by)
    (qualified_vars p)

(* Ensure every query that delivers the member also reaches N when the
   program reads grouped variables. *)
let extend_for_grouped_vars info query =
  let reaches_n =
    List.exists
      (fun s -> Field.name_equal (Apattern.target_of s) info.n)
      query
  in
  let delivers_member =
    List.exists
      (fun s -> Field.name_equal (Apattern.target_of s) info.member.ename)
      query
  in
  if delivers_member && not reaches_n then
    query
    @ [ Apattern.Assoc_via
          { assoc = info.ra; source = info.member.ename; qual = Cond.True };
        Apattern.Via_assoc
          { target = info.n; assoc = info.ra; qual = Cond.True };
      ]
  else query

let interpose_rule schema ~through ~new_entity ~group_by ~left_assoc
    ~right_assoc (p : Aprog.t) =
  let issues = ref [] in
  let issue fmt = Fmt.kstr (fun s -> issues := s :: !issues) fmt in
  let a = Semantic.find_assoc_exn schema through in
  let info =
    { through = Field.canon through;
      n = Field.canon new_entity;
      group_by = List.map Field.canon group_by;
      la = Field.canon left_assoc;
      ra = Field.canon right_assoc;
      owner = Semantic.find_entity_exn schema a.left;
      member = Semantic.find_entity_exn schema a.right;
    }
  in
  let needs_n = uses_grouped_vars info p in
  let rw_query q =
    let q = interpose_query info q in
    if needs_n then extend_for_grouped_vars info q else q
  in
  let rename_assoc_vars = rename_prefix ~from_:info.through ~to_:info.ra in
  let rename = rename_prefix ~from_:info.member.ename ~to_:info.n in
  let rename_grouped x =
    (* Only grouped fields move to N; other member fields stay. *)
    let p = Field.canon info.member.ename ^ "." in
    let n = String.length p in
    if
      String.length x > n
      && Field.name_equal (String.sub x 0 n) p
      && in_group info (String.sub x n (String.length x - n))
    then rename x
    else x
  in
  let rw_var x = Cond.Var (rename_assoc_vars (rename_grouped x)) in
  let rw_stmt _r s =
    match s with
    | Aprog.Insert { entity; values; connects }
      when Field.name_equal entity info.member.ename
           && List.exists
                (fun (an, _) -> Field.name_equal an info.through)
                connects ->
        let grouped_values, kept_values =
          List.partition (fun (f, _) -> in_group info f) values
        in
        if List.length grouped_values <> List.length info.group_by then
          refuse "INSERT %s does not set every grouped field" entity;
        let okey_exprs =
          match
            List.find_opt (fun (an, _) -> Field.name_equal an info.through)
              connects
          with
          | Some (_, ks) -> ks
          | None ->
              refuse "INSERT %s is not connected through %s" entity
                info.through
        in
        let group_exprs =
          List.map
            (fun g ->
              match
                List.find_opt (fun (f, _) -> Field.name_equal f g)
                  grouped_values
              with
              | Some (_, e) -> e
              | None -> refuse "INSERT %s misses grouped field %s" entity g)
            info.group_by
        in
        let nkey = okey_exprs @ group_exprs in
        let n_qual =
          Cond.conj
            (List.map2
               (fun k e -> Cond.Cmp (Cond.Eq, Cond.Field k, e))
               (info.owner.key @ info.group_by)
               nkey)
        in
        let n_values =
          List.map2
            (fun k e -> (Field.canon k, e))
            (info.owner.key @ info.group_by)
            nkey
        in
        let connects' =
          List.map
            (fun (an, ks) ->
              if Field.name_equal an info.through then (info.ra, nkey)
              else (an, ks))
            connects
        in
        issue
          "INSERT %s now materialises its %s group on demand (guarded insert)"
          entity info.n;
        Some
          [ Aprog.First
              { query = [ Apattern.Self { target = info.n; qual = n_qual } ];
                present = [];
                absent =
                  [ Aprog.Insert
                      { entity = info.n;
                        values = n_values;
                        connects = [ (info.la, okey_exprs) ];
                      };
                  ];
              };
            Aprog.Insert
              { entity = info.member.ename;
                values = kept_values;
                connects = connects';
              };
          ]
    | Aprog.Update { query; assigns }
      when Field.name_equal (Apattern.result_of query) info.member.ename
           && List.exists (fun (f, _) -> in_group info f) assigns ->
        (* §4.3: "under certain restructurings, updates may be
           ambiguous ... similar to the well-known view update
           problem." *)
        refuse "UPDATE of grouped field(s) of %s is ambiguous after the split"
          info.member.ename
    | Aprog.Link { assoc; _ } | Aprog.Unlink { assoc; _ }
      when Field.name_equal assoc info.through ->
        refuse "LINK/UNLINK through the replaced association %s" info.through
    | _ -> None
  in
  let p' =
    apply_rewriter
      { rw_query;
        rw_expr = map_expr rw_var;
        rw_cond = map_cond rw_var;
        rw_varname = (fun x -> rename_assoc_vars (rename_grouped x));
        rw_stmt;
      }
      p
  in
  (p', List.rev !issues)

(* ------------------------------------------------------------------ *)
(* The COLLAPSE rule (inverse)                                         *)

let collapse_rule schema ~left_assoc ~right_assoc ~removed_entity
    ~restored_assoc (p : Aprog.t) =
  let la = Semantic.find_assoc_exn schema left_assoc in
  let ra = Semantic.find_assoc_exn schema right_assoc in
  let n = Semantic.find_entity_exn schema removed_entity in
  let owner = Semantic.find_entity_exn schema la.left in
  let member = Semantic.find_entity_exn schema ra.right in
  let own_fields =
    List.filter_map
      (fun (f : Field.t) ->
        if List.exists (Field.name_equal f.name) owner.key then None
        else Some f.name)
      n.fields
  in
  let rec rw_query = function
    | [] -> []
    | Apattern.Assoc_via { assoc = a1; source; qual = q1 }
      :: Apattern.Via_assoc { target = t1; assoc = a1'; qual = qn }
      :: Apattern.Assoc_via { assoc = a2; source = s2; qual = q2 }
      :: Apattern.Via_assoc { target = t2; assoc = a2'; qual = qe }
      :: rest
      when Field.name_equal a1 left_assoc
           && Field.name_equal a1' left_assoc
           && Field.name_equal a2 right_assoc
           && Field.name_equal a2' right_assoc
           && Field.name_equal t1 n.ename
           && Field.name_equal s2 n.ename ->
        if not (Cond.equal q1 Cond.True && Cond.equal q2 Cond.True) then
          refuse "qualified association steps cannot be collapsed";
        (* N's own-field conditions become member conditions. *)
        let qn' =
          Cond.conj
            (List.map
               (fun c ->
                 let fs = Cond.fields c in
                 if List.for_all (fun f -> List.exists (Field.name_equal f) own_fields) fs
                 then c
                 else if fs = [] then c
                 else refuse "condition on %s keys cannot move to %s" n.ename member.ename)
               (Cond.split_conjuncts qn))
        in
        Apattern.Assoc_via
          { assoc = Field.canon restored_assoc; source; qual = Cond.True }
        :: Apattern.Via_assoc
             { target = t2;
               assoc = Field.canon restored_assoc;
               qual = Cond.cand qn' qe;
             }
        :: rw_query rest
    | step :: rest ->
        let name = Apattern.target_of step in
        if Field.name_equal name n.ename then
          refuse "access to removed entity %s cannot be collapsed" n.ename
        else if
          Field.name_equal name left_assoc || Field.name_equal name right_assoc
        then refuse "loose access through a collapsed association"
        else step :: rw_query rest
  in
  let rename x =
    (* N.g -> MEMBER.g for N's own fields. *)
    let pfx = Field.canon n.ename ^ "." in
    let l = String.length pfx in
    if String.length x > l && Field.name_equal (String.sub x 0 l) pfx then begin
      let f = String.sub x l (String.length x - l) in
      if List.exists (Field.name_equal f) own_fields then
        Field.canon member.ename ^ "." ^ f
      else x
    end
    else x
  in
  let rw_var x = Cond.Var (rename x) in
  let rw_stmt _r s =
    match s with
    | Aprog.Insert { entity; _ } when Field.name_equal entity n.ename ->
        (* Creation of the grouping entity disappears: its content is
           now implied by member rows. *)
        Some []
    | Aprog.First { query = [ Apattern.Self { target; _ } ]; present; absent }
      when Field.name_equal target n.ename && present = [] ->
        (* The guarded-creation idiom becomes a no-op. *)
        if
          List.for_all
            (function
              | Aprog.Insert { entity; _ } -> Field.name_equal entity n.ename
              | _ -> false)
            absent
        then Some []
        else refuse "FIRST over removed entity %s" n.ename
    | _ -> None
  in
  let p' =
    apply_rewriter
      { rw_query;
        rw_expr = map_expr rw_var;
        rw_cond = map_cond rw_var;
        rw_varname = rename;
        rw_stmt;
      }
      p
  in
  (p', [])

(* ------------------------------------------------------------------ *)

let convert schema op p =
  try
    match op with
    | Schema_change.Rename_entity { from_; to_ } ->
        let p =
          Aprog.map_queries
            (List.map (rename_step_names ~is_entity:true ~from_ ~to_))
            p
        in
        let rn = rename_prefix ~from_ ~to_ in
        let p = rename_vars rn p in
        let rw_stmt _r = function
          | Aprog.Insert i when Field.name_equal i.entity from_ ->
              Some [ Aprog.Insert { i with entity = Field.canon to_ } ]
          | _ -> None
        in
        Ok (apply_rewriter { identity_rewriter with rw_stmt } p, [])
    | Schema_change.Rename_assoc { from_; to_ } ->
        let p =
          Aprog.map_queries
            (List.map (rename_step_names ~is_entity:false ~from_ ~to_))
            p
        in
        let rn = rename_prefix ~from_ ~to_ in
        let p = rename_vars rn p in
        let rename_in an = if Field.name_equal an from_ then Field.canon to_ else an in
        let rw_stmt _r = function
          | Aprog.Link l when Field.name_equal l.assoc from_ ->
              Some [ Aprog.Link { l with assoc = Field.canon to_ } ]
          | Aprog.Unlink u when Field.name_equal u.assoc from_ ->
              Some [ Aprog.Unlink { u with assoc = Field.canon to_ } ]
          | Aprog.Insert i
            when List.exists
                   (fun (a, _) -> Field.name_equal a from_)
                   i.connects ->
              Some
                [ Aprog.Insert
                    { i with
                      connects =
                        List.map (fun (a, k) -> (rename_in a, k)) i.connects;
                    };
                ]
          | _ -> None
        in
        Ok (apply_rewriter { identity_rewriter with rw_stmt } p, [])
    | Schema_change.Rename_field { entity; from_; to_ } ->
        let rename_field_cond target qual =
          if Field.name_equal target entity then
            Cond.map_fields
              (fun f -> if Field.name_equal f from_ then Field.canon to_ else f)
              qual
          else qual
        in
        let rw_query =
          List.map (fun step ->
              match step with
              | Apattern.Self s when Field.name_equal s.target entity ->
                  Apattern.Self { s with qual = rename_field_cond s.target s.qual }
              | Apattern.Through s when Field.name_equal s.target entity ->
                  let tf, sf = s.link in
                  let tf =
                    if Field.name_equal tf from_ then Field.canon to_ else tf
                  in
                  Apattern.Through
                    { s with
                      link = (tf, sf);
                      qual = rename_field_cond s.target s.qual;
                    }
              | Apattern.Via_assoc s when Field.name_equal s.target entity ->
                  Apattern.Via_assoc
                    { s with qual = rename_field_cond s.target s.qual }
              | Apattern.Self _ | Apattern.Through _ | Apattern.Assoc_via _
              | Apattern.Via_assoc _ -> step)
        in
        let qv = Field.canon entity ^ "." ^ Field.canon from_ in
        let qv' = Field.canon entity ^ "." ^ Field.canon to_ in
        let p = Aprog.map_queries rw_query p in
        let p = rename_vars (rename_qvar ~from_:qv ~to_:qv') p in
        let rw_stmt _r = function
          | Aprog.Insert i
            when Field.name_equal i.entity entity
                 && List.exists (fun (f, _) -> Field.name_equal f from_)
                      i.values ->
              Some
                [ Aprog.Insert
                    { i with
                      values =
                        List.map
                          (fun (f, e) ->
                            ((if Field.name_equal f from_ then Field.canon to_
                              else f), e))
                          i.values;
                    };
                ]
          | Aprog.Update u
            when Field.name_equal (Apattern.result_of u.query) entity
                 && List.exists (fun (f, _) -> Field.name_equal f from_)
                      u.assigns ->
              Some
                [ Aprog.Update
                    { u with
                      assigns =
                        List.map
                          (fun (f, e) ->
                            ((if Field.name_equal f from_ then Field.canon to_
                              else f), e))
                          u.assigns;
                    };
                ]
          | _ -> None
        in
        Ok (apply_rewriter { identity_rewriter with rw_stmt } p, [])
    | Schema_change.Add_field _ -> Ok (p, [])
    | Schema_change.Drop_field { entity; field } ->
        let qv = Field.canon entity ^ "." ^ Field.canon field in
        if List.exists (Field.name_equal qv) (qualified_vars p) then
          Error
            (Fmt.str
               "program reads %s, whose values the restructuring does not \
                preserve"
               qv)
        else
          let touches_qual =
            List.exists
              (fun q ->
                List.exists
                  (fun step ->
                    Field.name_equal (Apattern.target_of step) entity
                    && List.exists (Field.name_equal field)
                         (Cond.fields (Apattern.qual_of step)))
                  q)
              (Aprog.queries p)
          in
          if touches_qual then
            Error
              (Fmt.str "program qualifies on dropped field %s.%s" entity field)
          else
            let rw_stmt _r = function
              | Aprog.Insert i
                when Field.name_equal i.entity entity
                     && List.exists (fun (f, _) -> Field.name_equal f field)
                          i.values ->
                  Some
                    [ Aprog.Insert
                        { i with
                          values =
                            List.filter
                              (fun (f, _) -> not (Field.name_equal f field))
                              i.values;
                        };
                    ]
              | _ -> None
            in
            Ok (apply_rewriter { identity_rewriter with rw_stmt } p, [])
    | Schema_change.Add_constraint c ->
        Ok
          ( p,
            [ Fmt.str
                "new constraint (%a): the program's updates may now be \
                 rejected at run time"
                Semantic.pp_constraint c;
            ] )
    | Schema_change.Drop_constraint _ -> Ok (p, [])
    | Schema_change.Widen_cardinality { assoc } ->
        (* Retrieval is unchanged; inserts that connected through the
           association must link explicitly, since the widened
           association is realized as a link record. *)
        let a = Semantic.find_assoc_exn schema assoc in
        let re = Semantic.find_entity_exn schema a.right in
        let rw_stmt _r = function
          | Aprog.Insert i
            when List.exists (fun (an, _) -> Field.name_equal an assoc) i.connects
            ->
              let this, others =
                List.partition
                  (fun (an, _) -> Field.name_equal an assoc)
                  i.connects
              in
              let right_key =
                List.map
                  (fun k ->
                    match
                      List.find_opt (fun (f, _) -> Field.name_equal f k) i.values
                    with
                    | Some (_, e) -> e
                    | None -> refuse "INSERT %s lacks key %s" i.entity k)
                  re.key
              in
              Some
                (Aprog.Insert { i with connects = others }
                 :: List.map
                      (fun (_, lk) ->
                        Aprog.Link
                          { assoc = Field.canon assoc;
                            left_key = lk;
                            right_key;
                            attrs = [];
                          })
                      this)
          | _ -> None
        in
        Ok (apply_rewriter { identity_rewriter with rw_stmt } p, [])
    | Schema_change.Interpose
        { through; new_entity; group_by; left_assoc; right_assoc } ->
        Ok
          (interpose_rule schema ~through ~new_entity ~group_by ~left_assoc
             ~right_assoc p)
    | Schema_change.Collapse
        { left_assoc; right_assoc; removed_entity; restored_assoc } ->
        Ok
          (collapse_rule schema ~left_assoc ~right_assoc ~removed_entity
             ~restored_assoc p)
    | Schema_change.Restrict_extension { entity; qual } ->
        (* §5.2: "we would probably want a conversion system to convert
           the 'print all employees' program successfully, though
           perhaps a warning should be issued." *)
        let touches =
          List.exists
            (fun q ->
              List.exists
                (fun step ->
                  Field.name_equal (Apattern.target_of step) entity)
                q)
            (Aprog.queries p)
        in
        Ok
          ( p,
            if touches then
              [ Fmt.str
                  "the program reads %s, whose extension the conversion                    restricts (DROPPING %a): behaviour is preserved only up                    to the removed instances (§5.2)"
                  entity Cond.pp qual;
              ]
            else [] )
  with Refuse reason -> Error reason

let convert_all schema ops p =
  let rec go schema ops p issues =
    match ops with
    | [] -> Ok (p, issues)
    | op :: rest -> (
        match convert schema op p with
        | Error e -> Error e
        | Ok (p', new_issues) -> (
            match Schema_change.apply schema op with
            | Error e -> Error e
            | Ok schema' -> go schema' rest p' (issues @ new_issues)))
  in
  go schema ops p []
