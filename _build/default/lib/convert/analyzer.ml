open Ccv_common
open Ccv_model
open Ccv_abstract
open Ccv_transform
module Dml = Ccv_network.Dml
module Sql = Ccv_relational.Sql
module Hdml = Ccv_hier.Hdml

type analysis = { aprog : Aprog.t; hazards : string list }

exception Fail of string

let fail fmt = Fmt.kstr (fun s -> raise (Fail s)) fmt

type actx = {
  mapping : Mapping.t;
  schema : Semantic.t;
  hazards : string list ref;
}

let hazard ctx fmt = Fmt.kstr (fun s -> ctx.hazards := s :: !(ctx.hazards)) fmt
let is_status_ok c = Cond.equal c Host.status_ok

let is_status_reset = function
  | Host.Move (Cond.Const (Value.Str "0000"), v) -> String.equal v Host.status_var
  | _ -> false

let is_status_move = function
  | Host.Move (_, v) -> String.equal v Host.status_var
  | _ -> false

let consume_reset = function
  | s :: rest when is_status_reset s -> rest
  | rest -> rest

(* Section 3.2: a host condition over the status register outside a
   recognized template is the status-code-dependence hazard. *)
let check_status_dependence c =
  if List.exists (String.equal Host.status_var) (Cond.vars c) then
    fail "status-code dependence outside a recognized template"

let qvar name field = Field.canon name ^ "." ^ Field.canon field

let entity ctx name = Semantic.find_entity_exn ctx.schema name

let is_entity ctx name = Semantic.find_entity ctx.schema name <> None

(* The association whose realization involves the given set name. *)
let assoc_of_set ctx set =
  List.find_map
    (fun (a : Semantic.assoc) ->
      match Mapping.assoc_real ctx.mapping a.aname with
      | Mapping.Assoc_set { set = s; _ } when Field.name_equal s set ->
          Some (a, `Member_set)
      | Mapping.Assoc_link_record { left_set; right_set; _ } ->
          if Field.name_equal left_set set then Some (a, `Left_link)
          else if Field.name_equal right_set set then Some (a, `Right_link)
          else None
      | Mapping.Assoc_set _ | Mapping.Assoc_relation _
      | Mapping.Assoc_parent_child | Mapping.Assoc_link_segment _ -> None)
    ctx.schema.Semantic.assocs

(* The association realized by a link record / relation / segment of
   the given name. *)
let assoc_of_realname ctx name =
  List.find_opt
    (fun (a : Semantic.assoc) ->
      match Mapping.assoc_real ctx.mapping a.aname with
      | Mapping.Assoc_link_record { record; _ } -> Field.name_equal record name
      | Mapping.Assoc_relation r -> Field.name_equal r name
      | Mapping.Assoc_link_segment s -> Field.name_equal s name
      | Mapping.Assoc_set _ | Mapping.Assoc_parent_child ->
          Field.name_equal a.aname name)
    ctx.schema.Semantic.assocs

(* Split a qualification between association fields (both keys and
   attributes) and the rest. *)
let split_assoc_qual ctx (a : Semantic.assoc) qual =
  let le = entity ctx a.left and re = entity ctx a.right in
  let anames = le.key @ re.key @ Field.names a.fields in
  let inside, outside =
    List.partition
      (fun c ->
        List.for_all (fun f -> List.exists (Field.name_equal f) anames)
          (Cond.fields c))
      (Cond.split_conjuncts qual)
  in
  (Cond.conj inside, Cond.conj outside)

(* Recover (field -> expr) bindings from a conjunction of equalities,
   e.g. the qualification a generator built with [key_eq_exprs]. *)
let bindings_of_cond cond =
  List.map
    (fun c ->
      match c with
      | Cond.Cmp (Cond.Eq, Cond.Field f, e) | Cond.Cmp (Cond.Eq, e, Cond.Field f)
        -> (Field.canon f, e)
      | _ -> fail "unrecognized qualification shape in key lookup")
    (Cond.split_conjuncts cond)

let exprs_for keys bindings =
  List.map
    (fun k ->
      match List.find_opt (fun (f, _) -> Field.name_equal f k) bindings with
      | Some (_, e) -> e
      | None -> fail "key field %s not bound in qualification" k)
    keys

let split_last xs =
  match List.rev xs with
  | [] -> None
  | last :: rev_init -> Some (List.rev rev_init, last)

(* Collect a maximal run of MOVE statements. *)
let rec collect_moves acc = function
  | Host.Move (e, x) :: rest when not (String.equal x Host.status_var) ->
      collect_moves ((x, e) :: acc) rest
  | rest -> (List.rev acc, rest)

(* Moves targeting "NAME.FIELD". *)
let uwa_moves name moves =
  List.filter_map
    (fun (x, e) ->
      let p = Field.canon name ^ "." in
      if String.length x > String.length p
         && String.equal (String.sub x 0 (String.length p)) p
      then Some (String.sub x (String.length p) (String.length x - String.length p), e)
      else None)
    moves

(* ------------------------------------------------------------------ *)
(* Network analysis                                                    *)

module Net = struct
  (* Recognize the §4.1 member-loop trailer: ... FIND NEXT m WITHIN s. *)
  let rec body ctx (stmts : Dml.t Host.stmt list) : Aprog.astmt list =
    match stmts with
    | [] -> []
    (* FIND ANY + WHILE: entity scan loop or whole-scan delete loop *)
    | Host.Dml (Dml.Find (Dml.Any (r, q))) :: Host.While (c, wbody) :: rest
      when is_status_ok c -> (
        match split_last wbody with
        | Some (mid, Host.Dml (Dml.Find (Dml.Duplicate (r', q'))))
          when Field.name_equal r r' && Cond.equal q q' -> (
            if not (is_entity ctx r) then
              fail "whole-association scan over %s has no access pattern" r;
            match mid with
            | Host.Dml (Dml.Get r'') :: middle when Field.name_equal r r'' ->
                Aprog.For_each
                  { query = [ Apattern.Self { target = r; qual = q } ];
                    body = body ctx middle;
                  }
                :: body ctx (consume_reset rest)
            | _ -> fail "scan loop over %s lacks a GET" r)
        | Some _ | None -> (
            match wbody with
            | [ Host.Dml (Dml.Erase (mode, r'));
                Host.Dml (Dml.Find (Dml.Any (r'', q')));
              ]
              when Field.name_equal r r' && Field.name_equal r r''
                   && Cond.equal q q' ->
                delete_stmt ctx r q mode :: body ctx (consume_reset rest)
            | _ -> fail "unrecognized FIND ANY loop over %s" r))
    (* FIND ANY + IF: FIRST template or keyed UNLINK of a link record *)
    | Host.Dml (Dml.Find (Dml.Any (r, q))) :: Host.If (c, then_, else_) :: rest
      when is_status_ok c -> (
        match then_ with
        | Host.Dml (Dml.Get r') :: present when Field.name_equal r r' ->
            if not (is_entity ctx r) then fail "FIRST over a link record %s" r;
            Aprog.First
              { query = [ Apattern.Self { target = r; qual = q } ];
                present = body ctx present;
                absent = body ctx else_;
              }
            :: body ctx rest
        | [ Host.Dml (Dml.Erase (Dml.Erase_one, r')) ]
          when Field.name_equal r r' -> (
            match assoc_of_realname ctx r with
            | Some a when not (is_entity ctx r) ->
                let le = entity ctx a.left and re = entity ctx a.right in
                let bindings = bindings_of_cond q in
                Aprog.Unlink
                  { assoc = a.aname;
                    left_key = exprs_for le.key bindings;
                    right_key = exprs_for re.key bindings;
                  }
                :: body ctx rest
            | Some _ | None -> fail "keyed ERASE of %s unrecognized" r)
        | _ -> fail "unrecognized FIND ANY / IF combination on %s" r)
    (* Manual link: FIND ANY owner; FIND ANY member; CONNECT *)
    | Host.Dml (Dml.Find (Dml.Any (o, qo)))
      :: Host.Dml (Dml.Find (Dml.Any (m, qm)))
      :: Host.Dml (Dml.Connect (m', set))
      :: rest
      when Field.name_equal m m' -> (
        match assoc_of_set ctx set with
        | Some (a, `Member_set) ->
            let le = entity ctx a.left and re = entity ctx a.right in
            if not (Field.name_equal o a.left) then
              fail "CONNECT owner mismatch on set %s" set;
            Aprog.Link
              { assoc = a.aname;
                left_key = exprs_for le.key (bindings_of_cond qo);
                right_key = exprs_for re.key (bindings_of_cond qm);
                attrs = [];
              }
            :: body ctx rest
        | Some _ | None -> fail "CONNECT into unknown set %s" set)
    (* FIND ANY member; DISCONNECT *)
    | Host.Dml (Dml.Find (Dml.Any (m, qm)))
      :: Host.Dml (Dml.Disconnect (m', set))
      :: rest
      when Field.name_equal m m' -> (
        match assoc_of_set ctx set with
        | Some (a, `Member_set) ->
            let re = entity ctx a.right in
            Aprog.Unlink
              { assoc = a.aname;
                left_key = [];
                right_key = exprs_for re.key (bindings_of_cond qm);
              }
            :: body ctx rest
        | Some _ | None -> fail "DISCONNECT from unknown set %s" set)
    (* Member loop: FIND FIRST ... WITHIN + WHILE *)
    | Host.Dml (Dml.Find (Dml.First_within (m, set, q)))
      :: Host.While (c, wbody)
      :: rest
      when is_status_ok c ->
        member_loop ctx m set q wbody rest
    (* FIND FIRST WITHIN without a loop: §3.2 "process the first". *)
    | Host.Dml (Dml.Find (Dml.First_within (m, set, q)))
      :: Host.If (c, then_, else_)
      :: rest
      when is_status_ok c -> (
        hazard ctx
          "order dependence: program processes only the first member of %s"
          set;
        match assoc_of_set ctx set with
        | Some (a, `Member_set) ->
            let qa, qm = split_assoc_qual ctx a q in
            let present =
              match then_ with
              | Host.Dml (Dml.Get m') :: more when Field.name_equal m m' ->
                  body ctx more
              | _ -> body ctx then_
            in
            Aprog.First
              { query =
                  [ Apattern.Assoc_via
                      { assoc = a.aname; source = a.left; qual = qa };
                    Apattern.Via_assoc
                      { target = m; assoc = a.aname; qual = qm };
                  ];
                present;
                absent = body ctx else_;
              }
            :: body ctx rest
        | Some _ | None -> fail "FIND FIRST within unknown set %s" set)
    (* Runs of MOVEs feed STORE / MODIFY / owner navigation. *)
    | Host.Move _ :: _ as all -> (
        let moves, after = collect_moves [] all in
        match after with
        | Host.Dml (Dml.Store r) :: rest -> store_stmt ctx moves r rest
        | Host.Dml (Dml.Modify (r, fields)) :: rest ->
            modify_stmt ctx moves r fields rest
        | Host.Dml (Dml.Find (Dml.Owner_within set)) :: Host.If (c, then_, [])
          :: rest
          when is_status_ok c ->
            owner_nav ctx set then_ rest
        | _ ->
            (* plain host moves *)
            let first =
              match all with
              | Host.Move (e, x) :: _ -> Aprog.Move (e, x)
              | _ -> assert false
            in
            first :: body ctx (List.tl all))
    | Host.Dml (Dml.Store r) :: rest -> store_stmt ctx [] r rest
    | Host.Dml (Dml.Modify (r, fields)) :: rest ->
        modify_stmt ctx [] r fields rest
    | Host.Dml (Dml.Find (Dml.Owner_within set)) :: Host.If (c, then_, [])
      :: rest
      when is_status_ok c ->
        owner_nav ctx set then_ rest
    | Host.Dml (Dml.Erase (mode, r)) :: rest ->
        (* Standalone ERASE of the current record of the enclosing loop. *)
        let e = entity ctx r in
        hazard ctx "standalone ERASE %s re-expressed as a keyed delete" r;
        Aprog.Delete
          { query =
              [ Apattern.Self
                  { target = r;
                    qual =
                      Cond.conj
                        (List.map
                           (fun k ->
                             Cond.Cmp
                               (Cond.Eq, Cond.Field k, Cond.Var (qvar r k)))
                           e.key);
                  };
              ];
            cascade = (mode = Dml.Erase_all);
          }
        :: body ctx rest
    | Host.Dml d :: next -> (
        (* Diagnose the §3.2 status hazard before giving up. *)
        match next with
        | (Host.If (c, _, _) | Host.While (c, _)) :: _
          when List.exists (String.equal Host.status_var) (Cond.vars c) ->
            fail "status-code dependence outside a recognized template"
        | _ -> fail "no template matches %a" Dml.pp d)
    | Host.Display es :: rest -> Aprog.Display es :: body ctx rest
    | Host.Accept x :: rest -> Aprog.Accept x :: body ctx rest
    | Host.Write_file (f, es) :: rest ->
        Aprog.Write_file (f, es) :: body ctx rest
    | Host.If (c, a, b) :: rest ->
        check_status_dependence c;
        Aprog.If (c, body ctx a, body ctx b) :: body ctx rest
    | Host.While (c, w) :: rest ->
        check_status_dependence c;
        Aprog.While (c, body ctx w) :: body ctx rest

  and member_loop ctx m set q wbody rest =
    match assoc_of_set ctx set with
    | Some (a, `Member_set) -> (
        match split_last wbody with
        | Some (mid, Host.Dml (Dml.Find (Dml.Next_within (m', set', q'))))
          when Field.name_equal m m' && Field.name_equal set set'
               && Cond.equal q q' -> (
            match mid with
            | Host.Dml (Dml.Get m'') :: middle when Field.name_equal m m'' ->
                let qa, qm = split_assoc_qual ctx a q in
                Aprog.For_each
                  { query =
                      [ Apattern.Assoc_via
                          { assoc = a.aname; source = a.left; qual = qa };
                        Apattern.Via_assoc
                          { target = m; assoc = a.aname; qual = qm };
                      ];
                    (* binding moves in [middle] are kept: inert *)
                    body = body ctx middle;
                  }
                :: body ctx (consume_reset rest)
            | _ -> fail "member loop on %s lacks a GET" set)
        | Some _ | None -> (
            (* erase-in-set loop *)
            match wbody with
            | [ Host.Dml (Dml.Erase (mode, m'));
                Host.Dml (Dml.Find (Dml.Current _));
                Host.Dml (Dml.Find (Dml.First_within (m'', set', q')));
              ]
              when Field.name_equal m m' && Field.name_equal m m''
                   && Field.name_equal set set' && Cond.equal q q' ->
                let qa, qm = split_assoc_qual ctx a q in
                Aprog.Delete
                  { query =
                      [ Apattern.Assoc_via
                          { assoc = a.aname; source = a.left; qual = qa };
                        Apattern.Via_assoc
                          { target = m; assoc = a.aname; qual = qm };
                      ];
                    cascade = (match wbody with
                              | Host.Dml (Dml.Erase (Dml.Erase_all, _)) :: _ -> true
                              | _ -> mode_is_all mode);
                  }
                :: body ctx (consume_reset rest)
            | _ -> fail "unrecognized loop within set %s" set))
    | Some (a, (`Left_link | `Right_link as side)) ->
        link_loop ctx a side m set q wbody rest
    | None -> fail "loop within unknown set %s" set

  and mode_is_all = function Dml.Erase_all -> true | Dml.Erase_one -> false

  and link_loop ctx (a : Semantic.assoc) side record set q wbody rest =
    let source = match side with `Left_link -> a.left | `Right_link -> a.right in
    match split_last wbody with
    | Some (mid, Host.Dml (Dml.Find (Dml.Next_within (r', set', q'))))
      when Field.name_equal record r' && Field.name_equal set set'
           && Cond.equal q q' -> (
        match mid with
        | Host.Dml (Dml.Get r'') :: middle when Field.name_equal record r'' -> (
            (* Optional owner navigation to the far endpoint. *)
            match middle with
            | Host.Dml (Dml.Find (Dml.Owner_within tgt_set))
              :: Host.If (c, Host.Dml (Dml.Get tgt) :: deeper, [])
              :: more
              when is_status_ok c ->
                if more <> [] then fail "statements after owner navigation";
                Aprog.For_each
                  { query =
                      [ Apattern.Assoc_via
                          { assoc = a.aname; source; qual = q };
                        Apattern.Via_assoc
                          { target = tgt; assoc = a.aname; qual = Cond.True };
                      ];
                    body = body ctx deeper;
                  }
                :: body ctx (consume_reset rest) |> fun r ->
                ignore tgt_set;
                r
            | _ ->
                Aprog.For_each
                  { query =
                      [ Apattern.Assoc_via { assoc = a.aname; source; qual = q }
                      ];
                    body = body ctx middle;
                  }
                :: body ctx (consume_reset rest))
        | _ -> fail "link loop on %s lacks a GET" set)
    | Some _ | None -> fail "unrecognized link-record loop on %s" set

  and owner_nav ctx set then_ rest =
    match assoc_of_set ctx set with
    | Some (a, `Member_set) -> (
        match then_ with
        | Host.Dml (Dml.Get o) :: deeper when Field.name_equal o a.left ->
            Aprog.For_each
              { query =
                  [ Apattern.Assoc_via
                      { assoc = a.aname; source = a.right; qual = Cond.True };
                    Apattern.Via_assoc
                      { target = a.left; assoc = a.aname; qual = Cond.True };
                  ];
                body = body ctx deeper;
              }
            :: body ctx rest
        | _ -> fail "owner navigation on %s lacks a GET" set)
    | Some (_, (`Left_link | `Right_link)) | None ->
        fail "owner navigation on unexpected set %s" set

  and store_stmt ctx moves r rest =
    match assoc_of_realname ctx r with
    | Some a when not (is_entity ctx r) ->
        (* STORE of a link record = LINK. *)
        let le = entity ctx a.left and re = entity ctx a.right in
        let fields = uwa_moves r moves in
        let pick keys =
          List.map
            (fun k ->
              match List.find_opt (fun (f, _) -> Field.name_equal f k) fields with
              | Some (_, e) -> e
              | None -> fail "STORE %s lacks key move for %s" r k)
            keys
        in
        let attrs =
          List.filter
            (fun (f, _) ->
              not
                (List.exists (Field.name_equal f) le.key
                || List.exists (Field.name_equal f) re.key))
            fields
        in
        Aprog.Link
          { assoc = a.aname;
            left_key = pick le.key;
            right_key = pick re.key;
            attrs;
          }
        :: body ctx rest
    | Some _ | None ->
        let e = entity ctx r in
        let fields = uwa_moves r moves in
        let values =
          List.filter (fun (f, _) -> Field.mem e.fields f) fields
        in
        (* Moves into member fields of AUTOMATIC sets are connections. *)
        let connects =
          List.filter_map
            (fun (a : Semantic.assoc) ->
              match Mapping.assoc_real ctx.mapping a.aname with
              | Mapping.Assoc_set { member_fields; _ }
                when Field.name_equal a.right r ->
                  let exprs =
                    List.filter_map
                      (fun mf ->
                        List.find_map
                          (fun (f, ex) ->
                            if Field.name_equal f mf && not (Field.mem e.fields mf)
                            then Some ex
                            else None)
                          fields)
                      member_fields
                  in
                  if List.length exprs = List.length member_fields then
                    Some (a.aname, exprs)
                  else None
              | Mapping.Assoc_set _ | Mapping.Assoc_relation _
              | Mapping.Assoc_link_record _ | Mapping.Assoc_parent_child
              | Mapping.Assoc_link_segment _ -> None)
            (Semantic.assocs_of ctx.schema r)
        in
        (* Manual connects following the STORE. *)
        let rec manual acc = function
          | Host.Dml (Dml.Find (Dml.Any (o, qo)))
            :: Host.Dml (Dml.Connect (m, set))
            :: more
            when Field.name_equal m r -> (
              match assoc_of_set ctx set with
              | Some (a, `Member_set) ->
                  let le = entity ctx a.left in
                  ignore o;
                  manual
                    ((a.aname, exprs_for le.key (bindings_of_cond qo)) :: acc)
                    more
              | Some _ | None -> fail "CONNECT into unknown set %s" set)
          | more -> (List.rev acc, more)
        in
        let manual_connects, rest = manual [] rest in
        Aprog.Insert { entity = r; values; connects = connects @ manual_connects }
        :: body ctx rest

  and modify_stmt ctx moves r fields rest =
    let e = entity ctx r in
    let uwa = uwa_moves r moves in
    let assigns =
      List.map
        (fun f ->
          match List.find_opt (fun (g, _) -> Field.name_equal g f) uwa with
          | Some (_, ex) -> (Field.canon f, ex)
          | None -> (Field.canon f, Cond.Var (qvar r f)))
        fields
    in
    Aprog.Update
      { query =
          [ Apattern.Self
              { target = r;
                qual =
                  Cond.conj
                    (List.map
                       (fun k ->
                         Cond.Cmp (Cond.Eq, Cond.Field k, Cond.Var (qvar r k)))
                       e.key);
              };
          ];
        assigns;
      }
    :: body ctx rest

  and delete_stmt ctx r q mode =
    match assoc_of_realname ctx r with
    | Some _ when not (is_entity ctx r) ->
        fail "whole-association delete over %s" r
    | Some _ | None ->
        Aprog.Delete
          { query = [ Apattern.Self { target = r; qual = q } ];
            cascade = (mode = Dml.Erase_all);
          }
end

(* ------------------------------------------------------------------ *)
(* Relational analysis                                                 *)

module Rel = struct
  open Engines

  (* Interpret an opened query as one access step: pins of the shape
     [Field k = Var "S.k"] over a full side key denote Assoc_via /
     Via_assoc; otherwise the step is a Self scan. *)
  let step_of_query ctx (q : Sql.query) =
    if is_entity ctx q.Sql.from_ then
      match assoc_of_realname ctx q.Sql.from_ with
      | Some _ -> fail "ambiguous relation %s" q.Sql.from_
      | None -> `Self (q.Sql.from_, q.Sql.where_)
    else
      match assoc_of_realname ctx q.Sql.from_ with
      | Some a ->
          let le = entity ctx a.left and re = entity ctx a.right in
          let conjuncts = Cond.split_conjuncts q.Sql.where_ in
          let pin_of side_name keys =
            let pins, others =
              List.partition
                (fun c ->
                  match c with
                  | Cond.Cmp (Cond.Eq, Cond.Field f, Cond.Var v) ->
                      List.exists (Field.name_equal f) keys
                      && String.equal v (qvar side_name f)
                  | _ -> false)
                conjuncts
            in
            if List.length pins = List.length keys then Some others else None
          in
          (match pin_of a.left le.key with
          | Some others -> `Assoc (a, a.left, Cond.conj others)
          | None -> (
              match pin_of a.right re.key with
              | Some others -> `Assoc (a, a.right, Cond.conj others)
              | None -> fail "unpinned association scan over %s" a.aname))
      | None -> fail "unknown relation %s" q.Sql.from_

  let rec body ctx (stmts : Rel_dml.t Host.stmt list) : Aprog.astmt list =
    match stmts with
    | [] -> []
    | Host.Dml (Rel_dml.Open q)
      :: Host.Dml Rel_dml.Fetch
      :: Host.While (c, wbody)
      :: Host.Dml Rel_dml.Close
      :: rest
      when is_status_ok c -> (
        match split_last wbody with
        | Some (mid, Host.Dml Rel_dml.Fetch) -> (
            match step_of_query ctx q with
            | `Self (e, qual) ->
                Aprog.For_each
                  { query = [ Apattern.Self { target = e; qual } ];
                    body = body ctx mid;
                  }
                :: body ctx (consume_reset rest)
            | `Assoc (a, source, qual) -> (
                (* Optional Via_assoc inner fetch. *)
                match mid with
                | Host.Dml (Rel_dml.Open q2)
                  :: Host.Dml Rel_dml.Fetch
                  :: Host.If (c2, deeper, [])
                  :: Host.Dml Rel_dml.Close
                  :: []
                  when is_status_ok c2 && is_entity ctx q2.Sql.from_ ->
                    let tgt = entity ctx q2.Sql.from_ in
                    let conjuncts = Cond.split_conjuncts q2.Sql.where_ in
                    let pins, others =
                      List.partition
                        (fun cj ->
                          match cj with
                          | Cond.Cmp (Cond.Eq, Cond.Field f, Cond.Var v) ->
                              List.exists (Field.name_equal f) tgt.key
                              && String.equal v (qvar a.aname f)
                          | _ -> false)
                        conjuncts
                    in
                    if List.length pins <> List.length tgt.key then
                      fail "inner fetch of %s not pinned to %s" tgt.ename
                        a.aname;
                    Aprog.For_each
                      { query =
                          [ Apattern.Assoc_via
                              { assoc = a.aname; source; qual };
                            Apattern.Via_assoc
                              { target = tgt.ename;
                                assoc = a.aname;
                                qual = Cond.conj others;
                              };
                          ];
                        body = body ctx deeper;
                      }
                    :: body ctx (consume_reset rest)
                | _ ->
                    Aprog.For_each
                      { query =
                          [ Apattern.Assoc_via { assoc = a.aname; source; qual }
                          ];
                        body = body ctx mid;
                      }
                    :: body ctx (consume_reset rest)))
        | Some _ | None -> fail "cursor loop does not end with FETCH")
    | Host.Dml (Rel_dml.Open q)
      :: Host.Dml Rel_dml.Fetch
      :: Host.If (c, then_, else_)
      :: rest
      when is_status_ok c -> (
        match step_of_query ctx q with
        | `Self (e, qual) ->
            let strip = function
              | Host.Dml Rel_dml.Close :: s :: more when is_status_move s ->
                  more
              | Host.Dml Rel_dml.Close :: more -> more
              | more -> more
            in
            Aprog.First
              { query = [ Apattern.Self { target = e; qual } ];
                present = body ctx (strip then_);
                absent = body ctx (strip else_);
              }
            :: body ctx rest
        | `Assoc _ -> fail "FIRST over an association relation")
    | Host.Dml (Rel_dml.Exec (Sql.Insert (rel, assigns))) :: rest -> (
        match assoc_of_realname ctx rel with
        | Some a when not (is_entity ctx rel) ->
            let le = entity ctx a.left and re = entity ctx a.right in
            let pick keys =
              List.map
                (fun k ->
                  match
                    List.find_opt (fun (f, _) -> Field.name_equal f k) assigns
                  with
                  | Some (_, e) -> e
                  | None -> fail "INSERT into %s lacks key %s" rel k)
                keys
            in
            let attrs =
              List.filter
                (fun (f, _) ->
                  not
                    (List.exists (Field.name_equal f) le.key
                    || List.exists (Field.name_equal f) re.key))
                assigns
            in
            Aprog.Link
              { assoc = a.aname;
                left_key = pick le.key;
                right_key = pick re.key;
                attrs;
              }
            :: body ctx rest
        | Some _ | None ->
            let e = entity ctx rel in
            (* Following inserts into association relations that embed
               this entity's key are connections. *)
            let key_exprs =
              List.map
                (fun k ->
                  match
                    List.find_opt (fun (f, _) -> Field.name_equal f k) assigns
                  with
                  | Some (_, ex) -> Some ex
                  | None -> None)
                e.key
            in
            let rec connects acc = function
              | Host.Dml (Rel_dml.Exec (Sql.Insert (arel, aassigns))) :: more
                -> (
                  match assoc_of_realname ctx arel with
                  | Some a
                    when (not (is_entity ctx arel))
                         && Field.name_equal a.right rel ->
                      let le = entity ctx a.left in
                      let lk =
                        List.map
                          (fun k ->
                            match
                              List.find_opt
                                (fun (f, _) -> Field.name_equal f k)
                                aassigns
                            with
                            | Some (_, ex) -> ex
                            | None -> fail "connect insert lacks %s" k)
                          le.key
                      in
                      connects ((a.aname, lk) :: acc) more
                  | Some _ | None -> (List.rev acc, Host.Dml (Rel_dml.Exec (Sql.Insert (arel, aassigns))) :: more)
                  )
              | more -> (List.rev acc, more)
            in
            let conn, rest = connects [] rest in
            ignore key_exprs;
            Aprog.Insert { entity = rel; values = assigns; connects = conn }
            :: body ctx rest)
    | Host.Dml (Rel_dml.Exec (Sql.Update (rel, assigns, cond))) :: rest ->
        Aprog.Update
          { query = [ Apattern.Self { target = rel; qual = cond } ]; assigns }
        :: body ctx rest
    | Host.Dml (Rel_dml.Exec (Sql.Delete (rel, cond))) :: rest -> (
        match assoc_of_realname ctx rel with
        | Some a when not (is_entity ctx rel) -> (
            (* keyed unlink when both sides are pinned; otherwise part
               of a cascade group handled with the entity delete *)
            let le = entity ctx a.left and re = entity ctx a.right in
            match
              (try Some (bindings_of_cond cond) with Fail _ -> None)
            with
            | Some bindings
              when List.length bindings = List.length le.key + List.length re.key
              ->
                Aprog.Unlink
                  { assoc = a.aname;
                    left_key = exprs_for le.key bindings;
                    right_key = exprs_for re.key bindings;
                  }
                :: body ctx rest
            | _ -> (
                (* link-removal prefix of an entity delete group *)
                match delete_group ctx (Host.Dml (Rel_dml.Exec (Sql.Delete (rel, cond))) :: rest) with
                | Some (stmt, rest) -> stmt :: body ctx rest
                | None -> fail "unrecognized DELETE of %s" rel))
        | Some _ | None -> (
            match delete_group ctx (Host.Dml (Rel_dml.Exec (Sql.Delete (rel, cond))) :: rest) with
            | Some (stmt, rest) -> stmt :: body ctx rest
            | None ->
                Aprog.Delete
                  { query = [ Apattern.Self { target = rel; qual = cond } ];
                    cascade = false;
                  }
                :: body ctx rest))
    | Host.Dml d :: _ -> fail "no template matches %a" Rel_dml.pp d
    | Host.Display es :: rest -> Aprog.Display es :: body ctx rest
    | Host.Accept x :: rest -> Aprog.Accept x :: body ctx rest
    | Host.Write_file (f, es) :: rest ->
        Aprog.Write_file (f, es) :: body ctx rest
    | Host.Move (e, x) :: rest -> Aprog.Move (e, x) :: body ctx rest
    | Host.If (c, a, b) :: rest ->
        check_status_dependence c;
        Aprog.If (c, body ctx a, body ctx b) :: body ctx rest
    | Host.While (c, w) :: rest ->
        check_status_dependence c;
        Aprog.While (c, body ctx w) :: body ctx rest

  (* A group [DELETE assoc... ; DELETE entity (key pins)] collapses
     into one entity delete (the links die with the entity at the
     semantic level). *)
  and delete_group ctx stmts =
    let rec skip_assoc_deletes acc = function
      | Host.Dml (Rel_dml.Exec (Sql.Delete (rel, _))) :: more
        when (not (is_entity ctx rel)) && assoc_of_realname ctx rel <> None ->
          skip_assoc_deletes (acc + 1) more
      | rest -> (acc, rest)
    in
    let _n, after = skip_assoc_deletes 0 stmts in
    match after with
    | Host.Dml (Rel_dml.Exec (Sql.Delete (rel, cond))) :: rest
      when is_entity ctx rel ->
        Some
          ( Aprog.Delete
              { query = [ Apattern.Self { target = rel; qual = cond } ];
                cascade = false;
              },
            rest )
    | _ -> None
end

(* ------------------------------------------------------------------ *)
(* Hierarchical analysis                                               *)

module Hier = struct
  (* A pinned SSA (qual = key-eq-vars of its own segment) marks an
     ancestor bound by an enclosing loop. *)
  let is_pin ctx (s : Hdml.ssa) =
    match Semantic.find_entity ctx.schema s.Hdml.seg with
    | None -> false
    | Some e ->
        let pins =
          List.map
            (fun k -> Cond.Cmp (Cond.Eq, Cond.Field k, Cond.Var (qvar e.ename k)))
            e.key
        in
        Cond.equal s.Hdml.qual (Cond.conj pins)

  let parent_assoc ctx child =
    List.find_opt
      (fun (a : Semantic.assoc) ->
        Field.name_equal a.right child
        && Mapping.assoc_real ctx.mapping a.aname = Mapping.Assoc_parent_child)
      ctx.schema.Semantic.assocs

  (* Interpret an SSA path as an access-pattern chain. *)
  let chain_of_ssas ctx (ssas : Hdml.ssa list) =
    let rec go prev acc = function
      | [] -> List.rev acc
      | (s : Hdml.ssa) :: rest -> (
          match Semantic.find_entity ctx.schema s.Hdml.seg with
          | Some e -> (
              match prev with
              | None when is_pin ctx s && rest <> [] ->
                  (* outer-bound ancestor: contributes no step *)
                  go (Some e.ename) acc rest
              | None ->
                  go (Some e.ename)
                    (Apattern.Self { target = e.ename; qual = s.Hdml.qual }
                     :: acc)
                    rest
              | Some src -> (
                  match parent_assoc ctx e.ename with
                  | Some a when Field.name_equal a.left src ->
                      go (Some e.ename)
                        (Apattern.Via_assoc
                           { target = e.ename;
                             assoc = a.aname;
                             qual = s.Hdml.qual;
                           }
                         :: Apattern.Assoc_via
                              { assoc = a.aname; source = src; qual = Cond.True }
                         :: acc)
                        rest
                  | Some _ | None ->
                      fail "segment %s is not a child of %s" e.ename src))
          | None -> (
              match assoc_of_realname ctx s.Hdml.seg with
              | Some a -> (
                  match prev with
                  | Some src when Field.name_equal a.left src ->
                      go (Some s.Hdml.seg)
                        (Apattern.Assoc_via
                           { assoc = a.aname; source = src; qual = s.Hdml.qual }
                         :: acc)
                        rest
                  | Some _ | None ->
                      fail "link segment %s without its parent" s.Hdml.seg)
              | None -> fail "unknown segment %s" s.Hdml.seg))
    in
    go None [] ssas

  let rec body ctx (stmts : Hdml.t Host.stmt list) : Aprog.astmt list =
    match stmts with
    | [] -> []
    | Host.Dml (Hdml.Gn ssas) :: Host.While (c, wbody) :: rest
      when is_status_ok c -> (
        match split_last wbody with
        | Some (mid, Host.Dml (Hdml.Gn ssas'))
          when List.length ssas = List.length ssas'
               && List.for_all2
                    (fun (a : Hdml.ssa) (b : Hdml.ssa) ->
                      Field.name_equal a.Hdml.seg b.Hdml.seg
                      && Cond.equal a.Hdml.qual b.Hdml.qual)
                    ssas ssas' ->
            let query = chain_of_ssas ctx ssas in
            (match mid with
            | [ Host.Dml Hdml.Dlet ] ->
                Aprog.Delete { query; cascade = true }
            | _ ->
                (* Binding moves are kept: they re-assign the values the
                   contexts already bind, which is behaviourally inert. *)
                Aprog.For_each { query; body = body ctx mid })
            :: body ctx (consume_reset rest)
        | Some (_, Host.Dml (Hdml.Gn _)) ->
            fail "GN loop with mismatched SSAs"
        | Some _ | None -> (
            match wbody with
            | [ Host.Dml Hdml.Dlet; Host.Dml (Hdml.Gn ssas') ]
              when List.length ssas = List.length ssas' ->
                Aprog.Delete
                  { query = chain_of_ssas ctx ssas; cascade = true }
                :: body ctx (consume_reset rest)
            | _ -> fail "unrecognized GN loop"))
    | Host.Dml (Hdml.Gu ssas) :: Host.If (c, then_, else_) :: rest
      when is_status_ok c ->
        Aprog.First
          { query = chain_of_ssas ctx ssas;
            present = body ctx then_;
            absent = body ctx else_;
          }
        :: body ctx rest
    | Host.Move _ :: _ as all -> (
        let moves, after = collect_moves [] all in
        match after with
        | Host.Dml (Hdml.Isrt (seg, parent_ssas)) :: rest ->
            isrt_stmt ctx moves seg parent_ssas rest
        | Host.Dml (Hdml.Repl fields) :: rest -> repl_stmt ctx moves fields rest
        | _ -> (
            match all with
            | Host.Move (e, x) :: tl -> Aprog.Move (e, x) :: body ctx tl
            | _ -> assert false))
    | Host.Dml (Hdml.Isrt (seg, parent_ssas)) :: rest ->
        isrt_stmt ctx [] seg parent_ssas rest
    | Host.Dml d :: _ -> fail "no template matches %a" Hdml.pp d
    | Host.Display es :: rest -> Aprog.Display es :: body ctx rest
    | Host.Accept x :: rest -> Aprog.Accept x :: body ctx rest
    | Host.Write_file (f, es) :: rest ->
        Aprog.Write_file (f, es) :: body ctx rest
    | Host.If (c, a, b) :: rest ->
        check_status_dependence c;
        Aprog.If (c, body ctx a, body ctx b) :: body ctx rest
    | Host.While (c, w) :: rest ->
        check_status_dependence c;
        Aprog.While (c, body ctx w) :: body ctx rest

  and isrt_stmt ctx moves seg parent_ssas rest =
    match assoc_of_realname ctx seg with
    | Some a when not (is_entity ctx seg) ->
        let le = entity ctx a.left and re = entity ctx a.right in
        let fields = uwa_moves seg moves in
        let left_key =
          match parent_ssas with
          | [ s ] -> exprs_for le.key (bindings_of_cond s.Hdml.qual)
          | _ -> fail "link segment ISRT without its parent SSA"
        in
        let right_key =
          List.map
            (fun k ->
              match List.find_opt (fun (f, _) -> Field.name_equal f k) fields with
              | Some (_, e) -> e
              | None -> fail "ISRT %s lacks key move for %s" seg k)
            re.key
        in
        let attrs =
          List.filter
            (fun (f, _) -> not (List.exists (Field.name_equal f) re.key))
            fields
        in
        Aprog.Link { assoc = a.aname; left_key; right_key; attrs }
        :: body ctx rest
    | Some _ | None ->
        let e = entity ctx seg in
        let fields = uwa_moves seg moves in
        let values = List.filter (fun (f, _) -> Field.mem e.fields f) fields in
        let connects =
          match parent_ssas with
          | [] -> []
          | [ s ] -> (
              match parent_assoc ctx e.ename with
              | Some a ->
                  let le = entity ctx a.left in
                  [ (a.aname, exprs_for le.key (bindings_of_cond s.Hdml.qual)) ]
              | None -> fail "ISRT %s under unexpected parent" seg)
          | _ -> fail "ISRT with a multi-level parent path"
        in
        (* Link-segment inserts that follow connect further
           associations. *)
        let rec more_links acc = function
          | Host.Move _ :: _ as all -> (
              let mvs, after = collect_moves [] all in
              match after with
              | Host.Dml (Hdml.Isrt (seg2, [ ps ])) :: more -> (
                  match assoc_of_realname ctx seg2 with
                  | Some a when not (is_entity ctx seg2) ->
                      let le = entity ctx a.left in
                      ignore mvs;
                      more_links
                        ((a.aname, exprs_for le.key (bindings_of_cond ps.Hdml.qual))
                         :: acc)
                        more
                  | Some _ | None -> (List.rev acc, all))
              | _ -> (List.rev acc, all))
          | all -> (List.rev acc, all)
        in
        let extra, rest = more_links [] rest in
        Aprog.Insert { entity = seg; values; connects = connects @ extra }
        :: body ctx rest

  and repl_stmt ctx moves fields rest =
    (* REPL applies to the current segment; recover its type from the
       move that assigns one of the replaced fields (earlier moves in
       the run may be loop binding moves for other names). *)
    let target =
      List.find_map
        (fun (x, _) ->
          match String.index_opt x '.' with
          | Some i ->
              let prefix = String.sub x 0 i in
              let field = String.sub x (i + 1) (String.length x - i - 1) in
              if
                is_entity ctx prefix
                && List.exists (Field.name_equal field) fields
              then Some prefix
              else None
          | None -> None)
        moves
    in
    let target =
      match target with
      | Some t -> t
      | None -> fail "REPL without qualified moves"
    in
    let e = entity ctx target in
    let uwa = uwa_moves target moves in
    let assigns =
      List.map
        (fun f ->
          match List.find_opt (fun (g, _) -> Field.name_equal g f) uwa with
          | Some (_, ex) -> (Field.canon f, ex)
          | None -> (Field.canon f, Cond.Var (qvar target f)))
        fields
    in
    Aprog.Update
      { query =
          [ Apattern.Self
              { target;
                qual =
                  Cond.conj
                    (List.map
                       (fun k ->
                         Cond.Cmp (Cond.Eq, Cond.Field k, Cond.Var (qvar target k)))
                       e.key);
              };
          ];
        assigns;
      }
    :: body ctx rest
end

(* ------------------------------------------------------------------ *)

let wrap ctx name f =
  try
    let body = f () in
    Ok { aprog = { Aprog.name; body }; hazards = List.rev !(ctx.hazards) }
  with
  | Fail reason -> Error reason
  | Invalid_argument reason -> Error reason

let make_ctx mapping =
  { mapping; schema = mapping.Mapping.semantic; hazards = ref [] }

let analyze_network mapping (p : Dml.t Host.program) =
  let ctx = make_ctx mapping in
  wrap ctx p.Host.name (fun () -> Net.body ctx p.Host.body)

let analyze_relational mapping (p : Engines.Rel_dml.t Host.program) =
  let ctx = make_ctx mapping in
  wrap ctx p.Host.name (fun () -> Rel.body ctx p.Host.body)

let analyze_hier mapping (p : Hdml.t Host.program) =
  let ctx = make_ctx mapping in
  wrap ctx p.Host.name (fun () -> Hier.body ctx p.Host.body)

let analyze mapping = function
  | Engines.Net_program p -> analyze_network mapping p
  | Engines.Rel_program p -> analyze_relational mapping p
  | Engines.Hier_program p -> analyze_hier mapping p
