lib/convert/rules.ml: Apattern Aprog Ccv_abstract Ccv_common Ccv_model Ccv_transform Cond Field Fmt Fun List Schema_change Semantic String
