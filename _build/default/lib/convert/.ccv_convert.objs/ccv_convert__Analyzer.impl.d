lib/convert/analyzer.ml: Apattern Aprog Ccv_abstract Ccv_common Ccv_hier Ccv_model Ccv_network Ccv_relational Ccv_transform Cond Engines Field Fmt Host List Mapping Rel_dml Semantic String Value
