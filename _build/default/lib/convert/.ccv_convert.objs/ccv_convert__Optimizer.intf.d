lib/convert/optimizer.mli: Aprog Ccv_abstract Ccv_model Semantic
