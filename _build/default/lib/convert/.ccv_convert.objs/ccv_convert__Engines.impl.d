lib/convert/engines.ml: Ccv_abstract Ccv_common Ccv_hier Ccv_network Ccv_relational Counters Fmt Host Io_trace List Row Status
