lib/convert/engines.mli: Ccv_abstract Ccv_common Ccv_hier Ccv_network Ccv_relational Format Host Io_trace
