lib/convert/advisor.mli: Aprog Ccv_abstract Ccv_model Format Semantic
