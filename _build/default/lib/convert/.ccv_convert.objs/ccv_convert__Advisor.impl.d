lib/convert/advisor.ml: Apattern Aprog Ccv_abstract Ccv_common Ccv_model Cond Field Fmt List Rules Semantic String
