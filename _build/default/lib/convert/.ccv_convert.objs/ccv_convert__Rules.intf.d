lib/convert/rules.mli: Aprog Ccv_abstract Ccv_common Ccv_model Ccv_transform Schema_change Semantic
