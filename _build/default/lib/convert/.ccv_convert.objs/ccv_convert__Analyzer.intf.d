lib/convert/analyzer.mli: Aprog Ccv_abstract Ccv_hier Ccv_network Ccv_transform Engines Host Mapping
