lib/convert/supervisor.mli: Aprog Ccv_abstract Ccv_model Ccv_transform Engines Equivalence Format Mapping Schema_change Sdb Semantic
