lib/convert/equivalence.mli: Aprog Ccv_abstract Ccv_common Ccv_model Ccv_transform Engines Format Io_trace Mapping Sdb
