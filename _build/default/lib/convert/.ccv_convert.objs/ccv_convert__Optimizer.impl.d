lib/convert/optimizer.ml: Apattern Aprog Ccv_abstract Ccv_common Ccv_model Cond Field Fmt Host List Rules Semantic String
