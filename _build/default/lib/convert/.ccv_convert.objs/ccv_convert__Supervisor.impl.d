lib/convert/supervisor.ml: Advisor Analyzer Aprog Ccv_abstract Ccv_model Ccv_transform Data_translate Engines Equivalence Fmt Generator List Mapping Optimizer Result Rules Schema_change Sdb Semantic
