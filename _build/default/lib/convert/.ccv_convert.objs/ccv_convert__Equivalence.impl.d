lib/convert/equivalence.ml: Ainterp Ccv_abstract Ccv_common Ccv_model Ccv_transform Engines Fmt Generator Io_trace List Mapping Sdb String
