(** The operational equivalence judgment of §1.1 ("except with respect
    to the database, a restructured program must preserve the
    input/output behavior of the original program"), with the weaker
    level §5.2 anticipates ("there are probably levels of successful
    conversion"): traces equal as multisets, which tolerates the
    enumeration-order changes a model switch can force. *)

open Ccv_common
open Ccv_model
open Ccv_abstract
open Ccv_transform

type verdict =
  | Strict  (** traces identical, event for event *)
  | Modulo_order  (** same events, different interleaving *)
  | Divergent of string  (** first divergence, human-readable *)

val compare_traces : Io_trace.t -> Io_trace.t -> verdict
val verdict_at_least : verdict -> verdict -> bool
val pp_verdict : Format.formatter -> verdict -> unit

(** Run an abstract program on one of the three realizations of the
    same semantic instance and compare with the {!Ainterp} reference
    run.  Returns the verdict plus both traces. *)
type check = {
  verdict : verdict;
  reference : Io_trace.t;
  observed : Io_trace.t;
  accesses : int;  (** engine accesses of the concrete run *)
  gen_issues : string list;
}

val check_against_model :
  ?input:string list -> Mapping.target_model -> Sdb.t -> Aprog.t ->
  (check, string) result
(** [Error reason] when the generator cannot target that model. *)

(** Compare two concrete runs directly (used by the conversion
    pipeline: source program on source db vs converted program on
    translated db). *)
val compare_runs :
  ?input:string list -> Engines.database -> Engines.program ->
  Engines.database -> Engines.program -> verdict * Io_trace.t * Io_trace.t
