(** The Program Analyzer of Figure 4.1: "uses the source database
    description and matches candidate language templates against the
    source application program to produce a representation of the
    database operations and data access patterns made by the program."

    Analysis works by structural template matching over the host
    program — the CODASYL FIND-ANY/FIND-NEXT loop idioms of §4.1, the
    embedded-SQL cursor idioms, and the DL/I GN-loop idioms — and
    translates each into access-pattern sequences over the semantic
    model, using the source {!Ccv_transform.Mapping.t} to interpret
    record types, sets and segments.

    Programs outside the template library fail analysis ("large
    classes of programs will have to be analyzed to become convinced
    that the set of templates is widely applicable", §5.3); §3.2's
    hazards — status-code dependence outside a template, processing
    only the first member of a many-member set, qualification over
    never-assigned variables — are reported in [hazards] (some fatal,
    some warnings). *)

open Ccv_abstract
open Ccv_transform

type analysis = {
  aprog : Aprog.t;
  hazards : string list;  (** non-fatal §3.2 warnings *)
}

val analyze_network :
  Mapping.t -> Ccv_network.Dml.t Host.program -> (analysis, string) result

val analyze_relational :
  Mapping.t -> Engines.Rel_dml.t Host.program -> (analysis, string) result

val analyze_hier :
  Mapping.t -> Ccv_hier.Hdml.t Host.program -> (analysis, string) result

(** Dispatch on the program's model; the mapping must match. *)
val analyze : Mapping.t -> Engines.program -> (analysis, string) result
