open Ccv_common
open Ccv_model
open Ccv_abstract
open Ccv_transform
module Dml = Ccv_network.Dml
module Sql = Ccv_relational.Sql
module Hdml = Ccv_hier.Hdml

exception Unsupported of string

let unsupported fmt = Fmt.kstr (fun s -> raise (Unsupported s)) fmt

type gen = { program : Engines.program; issues : string list }

let qvar name field = Field.canon name ^ "." ^ Field.canon field

(* A record qualification re-expressed over fetched host variables. *)
let host_cond prefix_of cond = Cond.fields_to_vars prefix_of cond

let guard cond body = match cond with Cond.True -> body | c -> [ Host.If (c, body, []) ]

let status_reset = Host.Move (Cond.Const (Value.Str "0000"), Host.status_var)

let status_set st =
  Host.Move (Cond.Const (Value.Str (Status.code st)), Host.status_var)

(* key = Var bindings, e.g. E# = :EMP.E# — pins an already-bound
   instance in a qualification or SSA. *)
let key_eq_vars name keys =
  Cond.conj
    (List.map (fun k -> Cond.Cmp (Cond.Eq, Cond.Field k, Cond.Var (qvar name k))) keys)

let key_eq_exprs keys exprs =
  Cond.conj
    (List.map2 (fun k e -> Cond.Cmp (Cond.Eq, Cond.Field k, e)) keys exprs)

(* Split a qualification's conjuncts: those whose fields all lie in
   [allowed] stay; the rest go to a host-level guard via [prefix_of]. *)
let split_qual allowed prefix_of cond =
  let inside, outside =
    List.partition
      (fun c ->
        List.for_all
          (fun f -> List.exists (Field.name_equal f) allowed)
          (Cond.fields c))
      (Cond.split_conjuncts cond)
  in
  (Cond.conj inside, host_cond prefix_of (Cond.conj outside))

type ctx = {
  mapping : Mapping.t;
  schema : Semantic.t;
  issues : string list ref;
}

let issue ctx fmt = Fmt.kstr (fun s -> ctx.issues := s :: !(ctx.issues)) fmt

let entity ctx name = Semantic.find_entity_exn ctx.schema name
let assoc ctx name = Semantic.find_assoc_exn ctx.schema name

(* Fields of an association occurrence as seen abstractly: left key,
   right key, attributes. *)
let assoc_field_names ctx (a : Semantic.assoc) =
  let le = entity ctx a.left and re = entity ctx a.right in
  let rec dedup = function
    | [] -> []
    | f :: rest ->
        f :: dedup (List.filter (fun g -> not (Field.name_equal f g)) rest)
  in
  dedup (le.key @ re.key @ Field.names a.fields)

(* ------------------------------------------------------------------ *)
(* Network target                                                      *)

module Net = struct
  (* Currency discipline: a FIND disturbs the currency of its record
     type and of every set the found record participates in, so no
     enclosing loop may be walking those (§3.2's currency hazard). *)
  type enclosing = { rtypes : string list; sets : string list }

  let no_enclosing = { rtypes = []; sets = [] }

  let check_scan ctx enc rtype =
    if List.exists (Field.name_equal rtype) enc.rtypes then
      unsupported "nested scan over record type %s would destroy currency"
        rtype;
    (* A FIND also moves the currency of every set the found record
       participates in: refuse when an enclosing loop walks one. *)
    let touched =
      List.concat_map
        (fun (a : Semantic.assoc) ->
          match Mapping.assoc_real_opt ctx.mapping a.aname with
          | Some (Mapping.Assoc_set { set; _ }) -> [ Field.canon set ]
          | Some (Mapping.Assoc_link_record { left_set; right_set; _ }) ->
              if Field.name_equal rtype a.aname then [ left_set; right_set ]
              else []
          | Some (Mapping.Assoc_relation _ | Mapping.Assoc_parent_child
                 | Mapping.Assoc_link_segment _)
          | None -> [])
        (Semantic.assocs_of ctx.schema rtype)
    in
    match List.find_opt (fun s -> List.mem s enc.sets) touched with
    | Some s ->
        unsupported "nested FIND on %s would move the currency of set %s"
          rtype s
    | None -> ()

  (* Moves binding the association pseudo-record from member fields:
     the member view carries the owner key (stored or virtual) under
     the owner's key field names. *)
  let assoc_moves_from_member ctx (a : Semantic.assoc) member_name =
    List.map
      (fun f -> Host.Move (Cond.Var (qvar member_name f), qvar a.aname f))
      (assoc_field_names ctx a)

  (* [inner] receives the enclosing-currency description accumulated
     by the loops wrapped around it. *)
  let rec steps ctx enc (seq : Apattern.t) inner =
    match seq with
    | [] -> inner enc
    | Apattern.Self { target; qual } :: rest ->
        check_scan ctx enc target;
        let enc' = { enc with rtypes = Field.canon target :: enc.rtypes } in
        let k = steps ctx enc' rest inner in
        [ Host.Dml (Dml.Find (Dml.Any (target, qual)));
          Host.While
            ( Host.status_ok,
              (Host.Dml (Dml.Get target) :: k)
              @ [ Host.Dml (Dml.Find (Dml.Duplicate (target, qual))) ] );
        ]
    | Apattern.Through { target; source; link = tf, sf; qual } :: rest ->
        check_scan ctx enc target;
        let enc' = { enc with rtypes = Field.canon target :: enc.rtypes } in
        let k = steps ctx enc' rest inner in
        let cond =
          Cond.cand
            (Cond.Cmp (Cond.Eq, Cond.Field tf, Cond.Var (qvar source sf)))
            qual
        in
        [ Host.Dml (Dml.Find (Dml.Any (target, cond)));
          Host.While
            ( Host.status_ok,
              (Host.Dml (Dml.Get target) :: k)
              @ [ Host.Dml (Dml.Find (Dml.Duplicate (target, cond))) ] );
        ]
    | Apattern.Assoc_via { assoc = aname; source; qual } :: rest -> (
        let a = assoc ctx aname in
        let source_is_left = Field.name_equal source a.left in
        match Mapping.assoc_real ctx.mapping aname with
        | Mapping.Assoc_set { set; member_fields = _ } ->
            if source_is_left then set_member_loop ctx enc a set qual rest inner
            else set_owner_nav ctx enc a set qual rest inner
        | Mapping.Assoc_link_record { record; left_set; right_set } ->
            link_record_loop ctx enc a ~record ~left_set ~right_set
              ~source_is_left qual rest inner
        | Mapping.Assoc_relation _ | Mapping.Assoc_parent_child
        | Mapping.Assoc_link_segment _ ->
            unsupported "association %s has no network realization" aname)
    | Apattern.Via_assoc { assoc; _ } :: _ ->
        unsupported "unpaired access via association %s" assoc

  (* Loop over the members of the source-owned occurrence of a set
     (the paper's FIND NEXT ... WITHIN ... template, §4.1). *)
  and set_member_loop ctx enc (a : Semantic.assoc) set qual rest inner =
    let member = entity ctx a.right in
    let moves = assoc_moves_from_member ctx a member.ename in
    let enc' = { enc with sets = Field.canon set :: enc.sets } in
    let continue_, combined, host_guard =
      match rest with
      | Apattern.Via_assoc { target; assoc = a2; qual = q2 } :: rest'
        when Field.name_equal a2 a.aname && Field.name_equal target a.right ->
          (rest', Cond.cand qual q2, Cond.True)
      | _ -> (rest, qual, Cond.True)
    in
    ignore host_guard;
    let k = steps ctx enc' continue_ inner in
    [ Host.Dml (Dml.Find (Dml.First_within (member.ename, set, combined)));
      Host.While
        ( Host.status_ok,
          (Host.Dml (Dml.Get member.ename) :: moves)
          @ k
          @ [ Host.Dml (Dml.Find (Dml.Next_within (member.ename, set, combined)))
            ] );
    ]

  (* Navigate from a member to its owner: FIND OWNER WITHIN set. *)
  and set_owner_nav ctx enc (a : Semantic.assoc) set qual rest inner =
    let owner = entity ctx a.left in
    let member = entity ctx a.right in
    if
      not
        (List.exists
           (function
             | Semantic.Total_right x -> Field.name_equal x a.aname
             | Semantic.Total_left _ | Semantic.Participation_limit _
             | Semantic.Field_not_null _ -> false)
           ctx.schema.Semantic.constraints
        ||
        match (entity ctx a.right).kind with
        | Semantic.Characterizing o -> Field.name_equal o a.left
        | Semantic.Defined -> false)
    then
      unsupported
        "navigation to the OPTIONAL owner of %s cannot rely on set currency"
        set;
    match rest with
    | Apattern.Via_assoc { target; assoc = a2; qual = q2 } :: rest'
      when Field.name_equal a2 a.aname && Field.name_equal target a.left ->
        let k = steps ctx enc rest' inner in
        let moves = assoc_moves_from_member ctx a member.ename in
        (* The association qualification over owner/member key vars. *)
        let q1_host =
          host_cond
            (fun f ->
              if List.exists (Field.name_equal f) owner.key then
                qvar owner.ename f
              else qvar member.ename f)
            qual
        in
        let q2_host = host_cond (qvar owner.ename) q2 in
        moves
        @ [ Host.Dml (Dml.Find (Dml.Owner_within set));
            Host.If
              ( Host.status_ok,
                Host.Dml (Dml.Get owner.ename)
                :: guard (Cond.cand q1_host q2_host) k,
                [] );
          ]
    | _ ->
        (* Association occurrence alone: everything is derivable from
           the member's view. *)
        let moves = assoc_moves_from_member ctx a member.ename in
        let q_host =
          host_cond (fun f -> qvar a.aname f) qual
        in
        let k = steps ctx enc rest inner in
        moves @ guard q_host k

  and link_record_loop ctx enc (a : Semantic.assoc) ~record ~left_set
      ~right_set ~source_is_left qual rest inner =
    let src_set = if source_is_left then left_set else right_set in
    let enc' = { enc with sets = src_set :: enc.sets } in
    let loop_body_tail =
      [ Host.Dml (Dml.Find (Dml.Next_within (record, src_set, qual))) ]
    in
    match rest with
    | Apattern.Via_assoc { target; assoc = a2; qual = q2 } :: rest'
      when Field.name_equal a2 a.aname ->
        let tgt_is_right = Field.name_equal target a.right in
        let tgt_set = if tgt_is_right then right_set else left_set in
        let tgt = entity ctx target in
        let q2_host = host_cond (qvar tgt.ename) q2 in
        let k = steps ctx enc' rest' inner in
        [ Host.Dml (Dml.Find (Dml.First_within (record, src_set, qual)));
          Host.While
            ( Host.status_ok,
              [ Host.Dml (Dml.Get record);
                Host.Dml (Dml.Find (Dml.Owner_within tgt_set));
                Host.If
                  ( Host.status_ok,
                    Host.Dml (Dml.Get tgt.ename) :: guard q2_host k,
                    [] );
              ]
              @ loop_body_tail );
        ]
    | _ ->
        let k = steps ctx enc' rest inner in
        [ Host.Dml (Dml.Find (Dml.First_within (record, src_set, qual)));
          Host.While
            ( Host.status_ok,
              (Host.Dml (Dml.Get record) :: k) @ loop_body_tail );
        ]

  let rec stmt ctx enc (s : Aprog.astmt) : Dml.t Host.stmt list =
    match s with
    | Aprog.For_each { query; body } ->
        steps ctx enc query (fun enc' -> body_stmts ctx enc' body)
        @ [ status_reset ]
    | Aprog.First { query; present; absent } -> (
        match query with
        | [ Apattern.Self { target; qual } ] ->
            check_scan ctx enc target;
            [ Host.Dml (Dml.Find (Dml.Any (target, qual)));
              Host.If
                ( Host.status_ok,
                  Host.Dml (Dml.Get target) :: body_stmts ctx enc present,
                  body_stmts ctx enc absent );
            ]
        | _ -> unsupported "FIRST over a multi-step access sequence")
    | Aprog.Insert { entity = ename; values; connects } ->
        let e = entity ctx ename in
        let value_moves =
          List.map (fun (f, ex) -> Host.Move (ex, qvar ename f)) values
        in
        let auto_moves, manual_connects =
          List.fold_left
            (fun (moves, manual) (aname, key_exprs) ->
              let a = assoc ctx aname in
              match Mapping.assoc_real ctx.mapping aname with
              | Mapping.Assoc_set { set; member_fields } ->
                  let decl =
                    Ccv_network.Nschema.find_set_exn
                      (match ctx.mapping.Mapping.model with
                      | _ -> network_schema ctx)
                      set
                  in
                  if decl.Ccv_network.Nschema.insertion = Ccv_network.Nschema.Automatic
                  then
                    ( moves
                      @ List.map2
                          (fun mf ex -> Host.Move (ex, qvar ename mf))
                          member_fields key_exprs,
                      manual )
                  else (moves, (a, set, key_exprs) :: manual)
              | Mapping.Assoc_link_record _ ->
                  unsupported
                    "INSERT cannot connect through link-record association %s"
                    aname
              | Mapping.Assoc_relation _ | Mapping.Assoc_parent_child
              | Mapping.Assoc_link_segment _ ->
                  unsupported "association %s has no network realization" aname)
            ([], []) connects
        in
        let store = [ Host.Dml (Dml.Store ename) ] in
        let connect_stmts =
          List.concat_map
            (fun ((a : Semantic.assoc), set, key_exprs) ->
              let owner = entity ctx a.left in
              [ Host.Dml
                  (Dml.Find (Dml.Any (owner.ename, key_eq_exprs owner.key key_exprs)));
                Host.Dml (Dml.Connect (e.ename, set));
              ])
            (List.rev manual_connects)
        in
        value_moves @ auto_moves @ store @ connect_stmts
    | Aprog.Link { assoc = aname; left_key; right_key; attrs } -> (
        let a = assoc ctx aname in
        match Mapping.assoc_real ctx.mapping aname with
        | Mapping.Assoc_link_record { record; _ } ->
            let le = entity ctx a.left and re = entity ctx a.right in
            let moves =
              List.map2 (fun k ex -> Host.Move (ex, qvar record k)) le.key left_key
              @ List.map2
                  (fun k ex -> Host.Move (ex, qvar record k))
                  re.key right_key
              @ List.map (fun (f, ex) -> Host.Move (ex, qvar record f)) attrs
            in
            moves @ [ Host.Dml (Dml.Store record) ]
        | Mapping.Assoc_set { set; _ } ->
            let decl = Ccv_network.Nschema.find_set_exn (network_schema ctx) set in
            if decl.Ccv_network.Nschema.insertion = Ccv_network.Nschema.Automatic
            then
              unsupported
                "LINK through AUTOMATIC set %s: members connect at STORE" set
            else
              let le = entity ctx a.left and re = entity ctx a.right in
              [ Host.Dml
                  (Dml.Find (Dml.Any (le.ename, key_eq_exprs le.key left_key)));
                Host.Dml
                  (Dml.Find (Dml.Any (re.ename, key_eq_exprs re.key right_key)));
                Host.Dml (Dml.Connect (re.ename, set));
              ]
        | Mapping.Assoc_relation _ | Mapping.Assoc_parent_child
        | Mapping.Assoc_link_segment _ ->
            unsupported "association %s has no network realization" aname)
    | Aprog.Unlink { assoc = aname; left_key; right_key } -> (
        let a = assoc ctx aname in
        match Mapping.assoc_real ctx.mapping aname with
        | Mapping.Assoc_link_record { record; _ } ->
            let le = entity ctx a.left and re = entity ctx a.right in
            let cond =
              Cond.And
                (key_eq_exprs le.key left_key, key_eq_exprs re.key right_key)
            in
            [ Host.Dml (Dml.Find (Dml.Any (record, cond)));
              Host.If
                (Host.status_ok, [ Host.Dml (Dml.Erase (Dml.Erase_one, record)) ], []);
            ]
        | Mapping.Assoc_set { set; _ } ->
            let decl = Ccv_network.Nschema.find_set_exn (network_schema ctx) set in
            if decl.Ccv_network.Nschema.retention <> Ccv_network.Nschema.Optional
            then unsupported "UNLINK from non-OPTIONAL set %s" set
            else
              let re = entity ctx a.right in
              ignore left_key;
              [ Host.Dml
                  (Dml.Find (Dml.Any (re.ename, key_eq_exprs re.key right_key)));
                Host.Dml (Dml.Disconnect (re.ename, set));
              ]
        | Mapping.Assoc_relation _ | Mapping.Assoc_parent_child
        | Mapping.Assoc_link_segment _ ->
            unsupported "association %s has no network realization" aname)
    | Aprog.Update { query; assigns } -> (
        let target = Apattern.result_of query in
        let rtype =
          match Mapping.assoc_real_opt ctx.mapping target with
          | Some (Mapping.Assoc_link_record { record; _ }) -> record
          | Some (Mapping.Assoc_set _) ->
              unsupported "UPDATE of a set-realized association %s" target
          | Some _ -> unsupported "UPDATE of association %s" target
          | None -> Field.canon target
        in
        let modify =
          List.map (fun (f, ex) -> Host.Move (ex, qvar rtype f)) assigns
          @ [ Host.Dml (Dml.Modify (rtype, List.map fst assigns)) ]
        in
        (* An update of the record an enclosing loop is positioned on
           (query = its own key pins) is the CODASYL in-place idiom:
           FIND CURRENT re-establishes the run unit, then MODIFY —
           rather than a nested scan the currency rules forbid. *)
        match query with
        | [ Apattern.Self { target = t; qual } ]
          when List.exists (Field.name_equal rtype) enc.rtypes
               && Field.name_equal t target
               && Cond.equal qual
                    (key_eq_vars rtype
                       (match Semantic.find_entity ctx.schema target with
                       | Some e -> e.Semantic.key
                       | None -> [ "" ])) ->
            Host.Dml (Dml.Find (Dml.Current rtype)) :: modify
        | _ -> steps ctx enc query (fun _ -> modify) @ [ status_reset ])
    | Aprog.Delete { query; cascade } ->
        let mode = if cascade then Dml.Erase_all else Dml.Erase_one in
        delete ctx enc query mode @ [ status_reset ]
    | Aprog.Display es -> [ Host.Display es ]
    | Aprog.Accept x -> [ Host.Accept x ]
    | Aprog.Write_file (f, es) -> [ Host.Write_file (f, es) ]
    | Aprog.Move (e, x) -> [ Host.Move (e, x) ]
    | Aprog.If (c, a, b) ->
        [ Host.If (c, body_stmts ctx enc a, body_stmts ctx enc b) ]
    | Aprog.While (c, body) -> [ Host.While (c, body_stmts ctx enc body) ]

  and body_stmts ctx enc body = List.concat_map (stmt ctx enc) body

  and delete ctx enc query mode =
    match query with
    | [ Apattern.Self { target; qual } ] ->
        let target_rtype =
          match Mapping.assoc_real_opt ctx.mapping target with
          | Some (Mapping.Assoc_link_record { record; _ }) -> record
          | Some _ -> unsupported "DELETE of association %s" target
          | None -> Field.canon target
        in
        [ Host.Dml (Dml.Find (Dml.Any (target_rtype, qual)));
          Host.While
            ( Host.status_ok,
              [ Host.Dml (Dml.Erase (mode, target_rtype));
                Host.Dml (Dml.Find (Dml.Any (target_rtype, qual)));
              ] );
        ]
    | _ -> (
        (* Outer loops position on the source; the innermost member
           loop is a find-erase-refind cycle that re-establishes set
           currency through FIND CURRENT after each ERASE. *)
        match List.rev query with
        | Apattern.Via_assoc { target; assoc = aname; qual = q2 }
          :: Apattern.Assoc_via { assoc = aname'; source; qual = q1 }
          :: outer_rev
          when Field.name_equal aname aname' -> (
            let a = assoc ctx aname in
            if not (Field.name_equal target a.right) then
              unsupported "DELETE navigating to an owner";
            match Mapping.assoc_real ctx.mapping aname with
            | Mapping.Assoc_set { set; _ } ->
                let member = entity ctx a.right in
                let combined = Cond.cand q1 q2 in
                let inner =
                  [ Host.Dml
                      (Dml.Find (Dml.First_within (member.ename, set, combined)));
                    Host.While
                      ( Host.status_ok,
                        [ Host.Dml (Dml.Erase (mode, member.ename));
                          Host.Dml (Dml.Find (Dml.Current source));
                          Host.Dml
                            (Dml.Find
                               (Dml.First_within (member.ename, set, combined)));
                        ] );
                  ]
                in
                steps ctx enc (List.rev outer_rev) (fun _ -> inner)
            | Mapping.Assoc_link_record _ ->
                unsupported "DELETE through a link-record association"
            | Mapping.Assoc_relation _ | Mapping.Assoc_parent_child
            | Mapping.Assoc_link_segment _ ->
                unsupported "association %s has no network realization" aname)
        | _ -> unsupported "DELETE over this access sequence")

  and network_schema ctx =
    match ctx.mapping.Mapping.model with
    | Mapping.Net ->
        let _, nschema = Mapping.derive_network ctx.schema in
        nschema
    | Mapping.Rel | Mapping.Hier ->
        unsupported "network generation from a non-network mapping"
end

(* ------------------------------------------------------------------ *)
(* Relational target                                                   *)

module Rel = struct
  open Engines

  let rec steps ctx (seq : Apattern.t) inner =
    match seq with
    | [] -> inner
    | Apattern.Self { target; qual } :: rest ->
        cursor_loop target qual (steps ctx rest inner)
    | Apattern.Through { target; source; link = tf, sf; qual } :: rest ->
        let cond =
          Cond.cand
            (Cond.Cmp (Cond.Eq, Cond.Field tf, Cond.Var (qvar source sf)))
            qual
        in
        cursor_loop target cond (steps ctx rest inner)
    | Apattern.Assoc_via { assoc = aname; source; qual } :: rest -> (
        let a = assoc ctx aname in
        let src = entity ctx source in
        let where_ = Cond.cand (key_eq_vars source src.key) qual in
        match rest with
        | Apattern.Via_assoc { target; assoc = a2; qual = q2 } :: rest'
          when Field.name_equal a2 a.aname ->
            let tgt = entity ctx target in
            let tcond = Cond.cand (key_eq_vars a.aname tgt.key) q2 in
            cursor_loop a.aname where_
              [ Host.Dml (Rel_dml.Open (Sql.query target ~where_:tcond));
                Host.Dml Rel_dml.Fetch;
                Host.If (Host.status_ok, steps ctx rest' inner, []);
                Host.Dml Rel_dml.Close;
              ]
        | _ -> cursor_loop a.aname where_ (steps ctx rest inner))
    | Apattern.Via_assoc { assoc; _ } :: _ ->
        unsupported "unpaired access via association %s" assoc

  and cursor_loop rel where_ k =
    [ Host.Dml (Engines.Rel_dml.Open (Sql.query rel ~where_));
      Host.Dml Engines.Rel_dml.Fetch;
      Host.While (Host.status_ok, k @ [ Host.Dml Engines.Rel_dml.Fetch ]);
      Host.Dml Engines.Rel_dml.Close;
    ]

  let rec stmt ctx (s : Aprog.astmt) : Rel_dml.t Host.stmt list =
    match s with
    | Aprog.For_each { query; body } ->
        steps ctx query (body_stmts ctx body) @ [ status_reset ]
    | Aprog.First { query; present; absent } -> (
        match query with
        | [ Apattern.Self { target; qual } ] ->
            [ Host.Dml (Rel_dml.Open (Sql.query target ~where_:qual));
              Host.Dml Rel_dml.Fetch;
              Host.If
                ( Host.status_ok,
                  Host.Dml Rel_dml.Close :: status_reset
                  :: body_stmts ctx present,
                  Host.Dml Rel_dml.Close :: status_set Status.Not_found
                  :: body_stmts ctx absent );
            ]
        | _ -> unsupported "FIRST over a multi-step access sequence")
    | Aprog.Insert { entity = ename; values; connects } ->
        let e = entity ctx ename in
        let right_key_exprs =
          List.map
            (fun k ->
              match
                List.find_opt (fun (f, _) -> Field.name_equal f k) values
              with
              | Some (_, ex) -> ex
              | None -> unsupported "INSERT %s lacks key field %s" ename k)
            e.key
        in
        Host.Dml (Rel_dml.Exec (Sql.Insert (ename, values)))
        :: List.concat_map
             (fun (aname, key_exprs) ->
               let a = assoc ctx aname in
               let le = entity ctx a.left in
               let assigns =
                 List.map2 (fun k ex -> (k, ex)) le.key key_exprs
                 @ List.map2 (fun k ex -> (k, ex)) e.key right_key_exprs
               in
               [ Host.Dml (Rel_dml.Exec (Sql.Insert (aname, assigns))) ])
             connects
    | Aprog.Link { assoc = aname; left_key; right_key; attrs } ->
        let a = assoc ctx aname in
        let le = entity ctx a.left and re = entity ctx a.right in
        let assigns =
          List.map2 (fun k ex -> (k, ex)) le.key left_key
          @ List.map2 (fun k ex -> (k, ex)) re.key right_key
          @ attrs
        in
        [ Host.Dml (Rel_dml.Exec (Sql.Insert (aname, assigns))) ]
    | Aprog.Unlink { assoc = aname; left_key; right_key } ->
        let a = assoc ctx aname in
        let le = entity ctx a.left and re = entity ctx a.right in
        let cond =
          Cond.And (key_eq_exprs le.key left_key, key_eq_exprs re.key right_key)
        in
        [ Host.Dml (Rel_dml.Exec (Sql.Delete (aname, cond))) ]
    | Aprog.Update { query; assigns } ->
        let target = Apattern.result_of query in
        let key =
          match Semantic.find_entity ctx.schema target with
          | Some e -> e.Semantic.key
          | None ->
              let a = assoc ctx target in
              (entity ctx a.left).key @ (entity ctx a.right).key
        in
        let inner =
          [ Host.Dml
              (Rel_dml.Exec
                 (Sql.Update (target, assigns, key_eq_vars target key)));
          ]
        in
        steps ctx query inner @ [ status_reset ]
    | Aprog.Delete { query; cascade } ->
        let target = Apattern.result_of query in
        let inner =
          match Semantic.find_entity ctx.schema target with
          | Some e ->
              if not cascade then
                issue ctx
                  "DELETE %s without cascade: the relational target cannot \
                   check totality partners"
                  target;
              (match
                 List.find_opt
                   (fun (c : Semantic.entity) ->
                     match c.kind with
                     | Semantic.Characterizing o -> Field.name_equal o target
                     | Semantic.Defined -> false)
                   ctx.schema.Semantic.entities
               with
              | Some child ->
                  unsupported
                    "DELETE of %s requires cascading into characterizing %s"
                    target child.ename
              | None -> ());
              (* Cascading totality: partners of a 1:N total association
                 are orphaned by this deletion and must die too (M:N
                 totality would need a sole-link test SQL-77 cannot
                 express here). *)
              let total aname =
                List.exists
                  (function
                    | Semantic.Total_right x -> Field.name_equal x aname
                    | Semantic.Total_left _ | Semantic.Participation_limit _
                    | Semantic.Field_not_null _ -> false)
                  ctx.schema.Semantic.constraints
              in
              let partner_cascades =
                if not cascade then []
                else
                  List.concat_map
                    (fun (a : Semantic.assoc) ->
                      if
                        Field.name_equal a.left target
                        && total a.aname
                      then
                        if a.card <> Semantic.One_to_many then
                          unsupported
                            "cascade through M:N total association %s needs a \
                             sole-link test"
                            a.aname
                        else
                          let re = entity ctx a.right in
                          [ Host.Dml
                              (Rel_dml.Open
                                 (Sql.query a.aname
                                    ~where_:(key_eq_vars target e.Semantic.key)));
                            Host.Dml Rel_dml.Fetch;
                            Host.While
                              ( Host.status_ok,
                                [ Host.Dml
                                    (Rel_dml.Exec
                                       (Sql.Delete
                                          ( re.ename,
                                            key_eq_vars a.aname re.key )));
                                  Host.Dml Rel_dml.Fetch;
                                ] );
                            Host.Dml Rel_dml.Close;
                          ]
                      else [])
                    (Semantic.assocs_of ctx.schema target)
              in
              partner_cascades
              @ List.map
                  (fun (a : Semantic.assoc) ->
                    let side_keys =
                      if Field.name_equal a.left target then e.Semantic.key
                      else (entity ctx a.right).key
                    in
                    Host.Dml
                      (Rel_dml.Exec
                         (Sql.Delete (a.aname, key_eq_vars target side_keys))))
                  (Semantic.assocs_of ctx.schema target)
              @ [ Host.Dml
                    (Rel_dml.Exec
                       (Sql.Delete (target, key_eq_vars target e.Semantic.key)));
                ]
          | None ->
              let a = assoc ctx target in
              let keys = (entity ctx a.left).key @ (entity ctx a.right).key in
              [ Host.Dml
                  (Rel_dml.Exec (Sql.Delete (target, key_eq_vars target keys)));
              ]
        in
        steps ctx query inner @ [ status_reset ]
    | Aprog.Display es -> [ Host.Display es ]
    | Aprog.Accept x -> [ Host.Accept x ]
    | Aprog.Write_file (f, es) -> [ Host.Write_file (f, es) ]
    | Aprog.Move (e, x) -> [ Host.Move (e, x) ]
    | Aprog.If (c, a, b) -> [ Host.If (c, body_stmts ctx a, body_stmts ctx b) ]
    | Aprog.While (c, body) -> [ Host.While (c, body_stmts ctx body) ]

  and body_stmts ctx body = List.concat_map (stmt ctx) body
end

(* ------------------------------------------------------------------ *)
(* Hierarchical target                                                 *)

module Hier = struct
  (* Compilation carries the accumulated SSA path pinning every
     enclosing level by its key (qualified SSAs over host variables) —
     the idiom a careful IMS programmer uses instead of GNP so that
     nested sweeps never lose position. *)

  let pin ctx name =
    let e = entity ctx name in
    Hdml.ssa ~qual:(key_eq_vars e.ename e.key) e.ename

  (* The ancestor chain of an entity under the hierarchical mapping,
     as key-pinned SSAs (the enclosing loops bound those keys). *)
  let ancestor_pins ctx name =
    let parent_of ename =
      List.find_map
        (fun (a : Semantic.assoc) ->
          match Mapping.assoc_real_opt ctx.mapping a.aname with
          | Some Mapping.Assoc_parent_child
            when Field.name_equal a.right ename
                 && not (Field.name_equal a.left ename) ->
              Some a.left
          | Some _ | None -> None)
        (Semantic.assocs_of ctx.schema ename)
    in
    let rec up acc ename =
      match parent_of ename with
      | None -> pin ctx ename :: acc
      | Some p -> up (pin ctx ename :: acc) p
    in
    up [] (Field.canon name)

  (* Starting SSA path for a query compiled at nesting [depth]. *)
  let initial_path ctx depth (query : Apattern.t) =
    match query with
    | Apattern.Self { target; _ } :: _ ->
        if depth > 0 then
          unsupported
            "independent scan of %s inside a DL/I loop would lose position"
            target;
        []
    | Apattern.Assoc_via { source; _ } :: _ -> ancestor_pins ctx source
    | Apattern.Through { target; _ } :: _ ->
        unsupported "comparable-field access to %s needs a second position"
          target
    | (Apattern.Via_assoc _ :: _ | []) ->
        unsupported "query cannot start with an association endpoint access"

  let rec steps ctx path (seq : Apattern.t) inner =
    match seq with
    | [] -> inner
    | Apattern.Self { target; qual } :: rest ->
        if path <> [] then
          unsupported
            "independent scan of %s inside a DL/I loop would lose position"
            target;
        let ssas = [ Hdml.ssa ~qual target ] in
        let k = steps ctx [ pin ctx target ] rest inner in
        [ Host.Dml (Hdml.Gn ssas);
          Host.While (Host.status_ok, k @ [ Host.Dml (Hdml.Gn ssas) ]);
        ]
    | Apattern.Through { target; _ } :: _ ->
        unsupported "comparable-field access to %s needs a second position"
          target
    | Apattern.Assoc_via { assoc = aname; source; qual } :: rest -> (
        let a = assoc ctx aname in
        if not (Field.name_equal source a.left) then
          unsupported "DL/I cannot navigate upward through %s" aname;
        match Mapping.assoc_real ctx.mapping aname with
        | Mapping.Assoc_parent_child -> (
            let child = entity ctx a.right in
            (* Conjuncts over the child's own fields ride in the SSA;
               the rest (owner-key comparisons) are implied by the
               pinned ancestors. *)
            let in_ssa, in_host =
              split_qual
                (Field.names child.fields)
                (fun f -> qvar a.aname f)
                qual
            in
            let moves =
              List.map
                (fun f -> Host.Move (Cond.Var (qvar source f), qvar a.aname f))
                (entity ctx a.left).key
              @ List.map
                  (fun f ->
                    Host.Move (Cond.Var (qvar child.ename f), qvar a.aname f))
                  child.key
            in
            match rest with
            | Apattern.Via_assoc { target; assoc = a2; qual = q2 } :: rest'
              when Field.name_equal a2 a.aname
                   && Field.name_equal target a.right ->
                let ssas =
                  path @ [ Hdml.ssa ~qual:(Cond.cand in_ssa q2) child.ename ]
                in
                let k = steps ctx (path @ [ pin ctx child.ename ]) rest' inner in
                [ Host.Dml (Hdml.Gn ssas);
                  Host.While
                    ( Host.status_ok,
                      moves @ guard in_host k @ [ Host.Dml (Hdml.Gn ssas) ] );
                ]
            | _ ->
                let ssas = path @ [ Hdml.ssa ~qual:in_ssa child.ename ] in
                let k = steps ctx (path @ [ pin ctx child.ename ]) rest inner in
                [ Host.Dml (Hdml.Gn ssas);
                  Host.While
                    ( Host.status_ok,
                      moves @ guard in_host k @ [ Host.Dml (Hdml.Gn ssas) ] );
                ])
        | Mapping.Assoc_link_segment seg -> (
            let re = entity ctx a.right in
            let seg_decl_fields =
              (* right key + attributes, as laid out by the mapping *)
              re.key @ Field.names a.fields
            in
            let in_ssa, in_host =
              split_qual seg_decl_fields (fun f -> qvar a.aname f) qual
            in
            let moves =
              List.map
                (fun f -> Host.Move (Cond.Var (qvar source f), qvar a.aname f))
                (entity ctx a.left).key
            in
            match rest with
            | Apattern.Via_assoc { target; assoc = a2; qual = q2 } :: rest'
              when Field.name_equal a2 a.aname
                   && Field.name_equal target a.right ->
                (* The far endpoint itself is out of reach, but its key
                   is stored in the link segment — a converter can bind
                   exactly the key fields (real systems exploit the
                   same stored foreign key).  Qualifications or later
                   accesses over its non-key fields stay impossible. *)
                let key_only, beyond =
                  split_qual re.key (fun f -> qvar target f) q2
                in
                if beyond <> Cond.True then
                  unsupported
                    "DL/I cannot test non-key fields of the far endpoint of %s"
                    seg;
                let far_moves =
                  List.map
                    (fun k ->
                      Host.Move (Cond.Var (qvar a.aname k), qvar target k))
                    re.key
                in
                let key_host = host_cond (qvar target) key_only in
                let ssas = path @ [ Hdml.ssa ~qual:in_ssa seg ] in
                let k = steps ctx (path @ [ Hdml.ssa seg ]) rest' inner in
                [ Host.Dml (Hdml.Gn ssas);
                  Host.While
                    ( Host.status_ok,
                      moves @ far_moves
                      @ guard (Cond.cand in_host key_host) k
                      @ [ Host.Dml (Hdml.Gn ssas) ] );
                ]
            | Apattern.Via_assoc _ :: _ ->
                unsupported
                  "DL/I cannot reach the far endpoint of link segment %s" seg
            | _ ->
                let ssas = path @ [ Hdml.ssa ~qual:in_ssa seg ] in
                let k = steps ctx (path @ [ Hdml.ssa seg ]) rest inner in
                [ Host.Dml (Hdml.Gn ssas);
                  Host.While
                    ( Host.status_ok,
                      moves @ guard in_host k @ [ Host.Dml (Hdml.Gn ssas) ] );
                ])
        | Mapping.Assoc_relation _ | Mapping.Assoc_set _
        | Mapping.Assoc_link_record _ ->
            unsupported "association %s has no hierarchical realization" aname)
    | Apattern.Via_assoc { assoc; _ } :: _ ->
        unsupported "unpaired access via association %s" assoc

  (* Flatten a whole query into one SSA path (for GU-style one-shot
     positioning in FIRST and DELETE). *)
  let flatten ctx (seq : Apattern.t) =
    let rec go acc = function
      | [] -> List.rev acc
      | Apattern.Self { target; qual } :: rest when acc = [] ->
          go [ Hdml.ssa ~qual target ] rest
      | Apattern.Assoc_via { assoc = aname; source; qual }
        :: Apattern.Via_assoc { target; assoc = a2; qual = q2 }
        :: rest
        when Field.name_equal aname a2 -> (
          let a = assoc ctx aname in
          if
            not
              (Field.name_equal source a.left && Field.name_equal target a.right)
          then unsupported "cannot flatten upward navigation";
          match Mapping.assoc_real ctx.mapping aname with
          | Mapping.Assoc_parent_child ->
              go (Hdml.ssa ~qual:(Cond.cand qual q2) target :: acc) rest
          | Mapping.Assoc_set _ | Mapping.Assoc_relation _
          | Mapping.Assoc_link_record _ | Mapping.Assoc_link_segment _ ->
              unsupported "cannot flatten association %s" aname)
      | Apattern.Assoc_via { assoc = aname; qual; _ } :: rest -> (
          match Mapping.assoc_real ctx.mapping aname with
          | Mapping.Assoc_link_segment seg ->
              go (Hdml.ssa ~qual seg :: acc) rest
          | Mapping.Assoc_parent_child | Mapping.Assoc_set _
          | Mapping.Assoc_relation _ | Mapping.Assoc_link_record _ ->
              unsupported "cannot flatten association %s" aname)
      | (Apattern.Self _ | Apattern.Through _ | Apattern.Via_assoc _) :: _ ->
          unsupported "cannot flatten this access sequence"
    in
    go [] seq

  let rec stmt ctx depth (s : Aprog.astmt) : Hdml.t Host.stmt list =
    match s with
    | Aprog.For_each { query; body } ->
        steps ctx (initial_path ctx depth query) query
          (body_stmts ctx (depth + 1) body)
        @ [ status_reset ]
    | Aprog.First { query; present; absent } ->
        if depth > 0 then
          unsupported "FIRST inside a DL/I loop would lose position";
        let ssas = flatten ctx query in
        [ Host.Dml (Hdml.Gu ssas);
          Host.If
            ( Host.status_ok,
              body_stmts ctx depth present,
              body_stmts ctx depth absent );
        ]
    | Aprog.Insert { entity = ename; values; connects } ->
        if depth > 0 then
          unsupported "ISRT inside a DL/I loop would lose position";
        let e = entity ctx ename in
        let value_moves =
          List.map (fun (f, ex) -> Host.Move (ex, qvar ename f)) values
        in
        let parent_assoc =
          List.find_opt
            (fun (aname, _) ->
              match Mapping.assoc_real ctx.mapping aname with
              | Mapping.Assoc_parent_child -> true
              | Mapping.Assoc_set _ | Mapping.Assoc_relation _
              | Mapping.Assoc_link_record _ | Mapping.Assoc_link_segment _ ->
                  false)
            connects
        in
        let parent_ssas =
          match parent_assoc with
          | None -> []
          | Some (aname, key_exprs) ->
              let a = assoc ctx aname in
              let le = entity ctx a.left in
              [ Hdml.ssa ~qual:(key_eq_exprs le.key key_exprs) le.ename ]
        in
        let others =
          List.filter
            (fun (aname, _) ->
              match parent_assoc with
              | Some (p, _) -> not (Field.name_equal p aname)
              | None -> true)
            connects
        in
        let link_stmts =
          List.concat_map
            (fun (aname, key_exprs) ->
              let a = assoc ctx aname in
              match Mapping.assoc_real ctx.mapping aname with
              | Mapping.Assoc_link_segment seg ->
                  let le = entity ctx a.left in
                  let right_key_moves =
                    List.map
                      (fun k ->
                        match
                          List.find_opt (fun (f, _) -> Field.name_equal f k) values
                        with
                        | Some (_, ex) -> Host.Move (ex, qvar seg k)
                        | None ->
                            unsupported "INSERT %s lacks key field %s" ename k)
                      e.key
                  in
                  right_key_moves
                  @ [ Host.Dml
                        (Hdml.Isrt
                           ( seg,
                             [ Hdml.ssa ~qual:(key_eq_exprs le.key key_exprs)
                                 le.ename
                             ] ));
                    ]
              | Mapping.Assoc_parent_child | Mapping.Assoc_set _
              | Mapping.Assoc_relation _ | Mapping.Assoc_link_record _ ->
                  unsupported "cannot connect through %s hierarchically" aname)
            others
        in
        value_moves @ [ Host.Dml (Hdml.Isrt (ename, parent_ssas)) ] @ link_stmts
    | Aprog.Link { assoc = aname; left_key; right_key; attrs } -> (
        if depth > 0 then
          unsupported "ISRT inside a DL/I loop would lose position";
        let a = assoc ctx aname in
        match Mapping.assoc_real ctx.mapping aname with
        | Mapping.Assoc_link_segment seg ->
            let le = entity ctx a.left and re = entity ctx a.right in
            let moves =
              List.map2 (fun k ex -> Host.Move (ex, qvar seg k)) re.key right_key
              @ List.map (fun (f, ex) -> Host.Move (ex, qvar seg f)) attrs
            in
            moves
            @ [ Host.Dml
                  (Hdml.Isrt
                     ( seg,
                       [ Hdml.ssa ~qual:(key_eq_exprs le.key left_key) le.ename ]
                     ));
              ]
        | Mapping.Assoc_parent_child ->
            unsupported "LINK through parent-child %s: children attach at ISRT"
              aname
        | Mapping.Assoc_set _ | Mapping.Assoc_relation _
        | Mapping.Assoc_link_record _ ->
            unsupported "association %s has no hierarchical realization" aname)
    | Aprog.Unlink { assoc = aname; left_key; right_key } -> (
        if depth > 0 then
          unsupported "DLET inside a DL/I loop would lose position";
        let a = assoc ctx aname in
        match Mapping.assoc_real ctx.mapping aname with
        | Mapping.Assoc_link_segment seg ->
            let le = entity ctx a.left and re = entity ctx a.right in
            let ssas =
              [ Hdml.ssa ~qual:(key_eq_exprs le.key left_key) le.ename;
                Hdml.ssa ~qual:(key_eq_exprs re.key right_key) seg;
              ]
            in
            [ Host.Dml (Hdml.Gu ssas);
              Host.If (Host.status_ok, [ Host.Dml Hdml.Dlet ], []);
            ]
        | Mapping.Assoc_parent_child | Mapping.Assoc_set _
        | Mapping.Assoc_relation _ | Mapping.Assoc_link_record _ ->
            unsupported "UNLINK of %s unsupported hierarchically" aname)
    | Aprog.Update { query; assigns } ->
        let target = Apattern.result_of query in
        let tname =
          match Mapping.assoc_real_opt ctx.mapping target with
          | Some (Mapping.Assoc_link_segment seg) -> seg
          | Some _ -> unsupported "UPDATE of association %s" target
          | None -> Field.canon target
        in
        let inner =
          List.map (fun (f, ex) -> Host.Move (ex, qvar tname f)) assigns
          @ [ Host.Dml (Hdml.Repl (List.map fst assigns)) ]
        in
        steps ctx (initial_path ctx depth query) query inner @ [ status_reset ]
    | Aprog.Delete { query; cascade } ->
        if depth > 0 then
          unsupported "DLET inside a DL/I loop would lose position";
        let target = Apattern.result_of query in
        if not cascade then begin
          match Semantic.find_entity ctx.schema target with
          | Some _
            when Ccv_hier.Hschema.children
                   (snd (Mapping.derive_hier ctx.schema))
                   target
                 <> [] ->
              issue ctx
                "DLET of %s cascades into its children regardless of the \
                 program's intent"
                target
          | Some _ | None -> ()
        end;
        let ssas = flatten ctx query in
        [ Host.Dml (Hdml.Gn ssas);
          Host.While
            ( Host.status_ok,
              [ Host.Dml Hdml.Dlet; Host.Dml (Hdml.Gn ssas) ] );
          status_reset;
        ]
    | Aprog.Display es -> [ Host.Display es ]
    | Aprog.Accept x -> [ Host.Accept x ]
    | Aprog.Write_file (f, es) -> [ Host.Write_file (f, es) ]
    | Aprog.Move (e, x) -> [ Host.Move (e, x) ]
    | Aprog.If (c, a, b) ->
        [ Host.If (c, body_stmts ctx depth a, body_stmts ctx depth b) ]
    | Aprog.While (c, body) -> [ Host.While (c, body_stmts ctx depth body) ]

  and body_stmts ctx depth body = List.concat_map (stmt ctx depth) body
end

(* ------------------------------------------------------------------ *)

let make_ctx mapping =
  { mapping; schema = mapping.Mapping.semantic; issues = ref [] }

let to_network mapping (p : Aprog.t) =
  let ctx = make_ctx mapping in
  try
    let body = Net.body_stmts ctx Net.no_enclosing p.Aprog.body in
    Ok ({ Host.name = p.Aprog.name; body }, List.rev !(ctx.issues))
  with Unsupported reason -> Error reason

let to_relational mapping (p : Aprog.t) =
  let ctx = make_ctx mapping in
  try
    let body = Rel.body_stmts ctx p.Aprog.body in
    Ok ({ Host.name = p.Aprog.name; body }, List.rev !(ctx.issues))
  with Unsupported reason -> Error reason

let to_hier mapping (p : Aprog.t) =
  let ctx = make_ctx mapping in
  try
    let body = Hier.body_stmts ctx 0 p.Aprog.body in
    Ok ({ Host.name = p.Aprog.name; body }, List.rev !(ctx.issues))
  with Unsupported reason -> Error reason

let generate mapping p =
  match mapping.Mapping.model with
  | Mapping.Net ->
      Result.map
        (fun (prog, issues) -> { program = Engines.Net_program prog; issues })
        (to_network mapping p)
  | Mapping.Rel ->
      Result.map
        (fun (prog, issues) -> { program = Engines.Rel_program prog; issues })
        (to_relational mapping p)
  | Mapping.Hier ->
      Result.map
        (fun (prog, issues) -> { program = Engines.Hier_program prog; issues })
        (to_hier mapping p)
