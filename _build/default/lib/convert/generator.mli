(** The Program Generator of Figure 4.1: compile an abstract program
    (host structure + access-pattern sequences) into a concrete host
    program for the model a {!Ccv_transform.Mapping.t} realizes —
    CODASYL DML loops with currency discipline, embedded-SQL cursor
    loops, or DL/I calls with accumulated qualified SSAs.

    Generation is total for the relational model on supported abstract
    forms, and partial for network/hierarchical where the 1979 models
    genuinely cannot express an access (e.g. upward navigation to an
    OPTIONAL owner, position-destroying scans inside a DL/I loop);
    those cases return [Error] with the reason — the supervisor logs
    them as conversion issues, reproducing the paper's observation that
    "a completely automated system is probably not possible" (§3.2).

    Known semantic seams (documented in DESIGN.md): DL/I enumerates a
    child segment grouped under its parents, so an entity scan
    generated to hierarchical preserves I/O only up to output order —
    the §5.2 "levels of successful conversion". *)

open Ccv_abstract
open Ccv_transform

type gen = {
  program : Engines.program;
  issues : string list;  (** non-fatal warnings for the supervisor *)
}

val to_network :
  Mapping.t -> Aprog.t -> (Ccv_network.Dml.t Host.program * string list, string) result

val to_relational :
  Mapping.t -> Aprog.t ->
  (Engines.Rel_dml.t Host.program * string list, string) result

val to_hier :
  Mapping.t -> Aprog.t -> (Ccv_hier.Hdml.t Host.program * string list, string) result

(** Dispatch on the mapping's model. *)
val generate : Mapping.t -> Aprog.t -> (gen, string) result
