(** The abstract program representation of Figure 4.1: host control
    structure and I/O retained verbatim, database interaction expressed
    as access-pattern sequences over the semantic model.  This is what
    the Program Analyzer produces, the Program Converter rewrites, the
    Optimizer simplifies and the Program Generator compiles back to a
    concrete DML. *)

open Ccv_common

type astmt =
  | For_each of { query : Apattern.t; body : astmt list }
      (** iterate the contexts; each binds qualified vars
          ["NAME.FIELD"] for the body *)
  | First of { query : Apattern.t; present : astmt list; absent : astmt list }
      (** bind the first context if any *)
  | Insert of {
      entity : string;
      values : (string * Cond.expr) list;
      connects : (string * Cond.expr list) list;
          (** associations to join at insertion: (assoc, left-key
              exprs); needed because AUTOMATIC owner-coupled sets
              connect at STORE time, so insert-and-connect is one
              operation in the network model *)
    }
  | Link of {
      assoc : string;
      left_key : Cond.expr list;
      right_key : Cond.expr list;
      attrs : (string * Cond.expr) list;
    }
  | Unlink of { assoc : string; left_key : Cond.expr list; right_key : Cond.expr list }
      (** [left_key = []] unlinks the right instance from whichever
          left partner it has (the DISCONNECT idiom, sound for 1:N) *)
  | Update of { query : Apattern.t; assigns : (string * Cond.expr) list }
      (** update the instances delivered by the query (its result
          entity); assigns evaluate in the context *)
  | Delete of { query : Apattern.t; cascade : bool }
  | Display of Cond.expr list
  | Accept of string
  | Write_file of string * Cond.expr list
  | Move of Cond.expr * string
  | If of Cond.t * astmt list * astmt list
  | While of Cond.t * astmt list

type t = { name : string; body : astmt list }

(** Every access-pattern sequence in the program (for analysis). *)
val queries : t -> Apattern.t list

(** Structure-preserving rewrite of every query. *)
val map_queries : (Apattern.t -> Apattern.t) -> t -> t

(** Statement count (optimizer metric). *)
val size : t -> int

(** Total access-pattern steps across all queries (the paper's "access
    path length"). *)
val path_length : t -> int

val check : Ccv_model.Semantic.t -> t -> string list
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val show : t -> string
