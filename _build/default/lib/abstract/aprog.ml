open Ccv_common

type astmt =
  | For_each of { query : Apattern.t; body : astmt list }
  | First of { query : Apattern.t; present : astmt list; absent : astmt list }
  | Insert of {
      entity : string;
      values : (string * Cond.expr) list;
      connects : (string * Cond.expr list) list;
    }
  | Link of {
      assoc : string;
      left_key : Cond.expr list;
      right_key : Cond.expr list;
      attrs : (string * Cond.expr) list;
    }
  | Unlink of { assoc : string; left_key : Cond.expr list; right_key : Cond.expr list }
  | Update of { query : Apattern.t; assigns : (string * Cond.expr) list }
  | Delete of { query : Apattern.t; cascade : bool }
  | Display of Cond.expr list
  | Accept of string
  | Write_file of string * Cond.expr list
  | Move of Cond.expr * string
  | If of Cond.t * astmt list * astmt list
  | While of Cond.t * astmt list

type t = { name : string; body : astmt list }

let rec queries_of_stmt = function
  | For_each { query; body } -> query :: List.concat_map queries_of_stmt body
  | First { query; present; absent } ->
      (query :: List.concat_map queries_of_stmt present)
      @ List.concat_map queries_of_stmt absent
  | Update { query; _ } | Delete { query; _ } -> [ query ]
  | Insert _ | Link _ | Unlink _ | Display _ | Accept _ | Write_file _
  | Move _ -> []
  | If (_, a, b) ->
      List.concat_map queries_of_stmt a @ List.concat_map queries_of_stmt b
  | While (_, body) -> List.concat_map queries_of_stmt body

let queries p = List.concat_map queries_of_stmt p.body

let rec map_stmt f = function
  | For_each { query; body } ->
      For_each { query = f query; body = List.map (map_stmt f) body }
  | First { query; present; absent } ->
      First
        { query = f query;
          present = List.map (map_stmt f) present;
          absent = List.map (map_stmt f) absent;
        }
  | Update { query; assigns } -> Update { query = f query; assigns }
  | Delete { query; cascade } -> Delete { query = f query; cascade }
  | (Insert _ | Link _ | Unlink _ | Display _ | Accept _ | Write_file _
    | Move _) as s -> s
  | If (c, a, b) -> If (c, List.map (map_stmt f) a, List.map (map_stmt f) b)
  | While (c, body) -> While (c, List.map (map_stmt f) body)

let map_queries f p = { p with body = List.map (map_stmt f) p.body }

let rec size_stmt = function
  | For_each { body; _ } -> 1 + List.fold_left (fun n s -> n + size_stmt s) 0 body
  | First { present; absent; _ } ->
      1 + List.fold_left (fun n s -> n + size_stmt s) 0 (present @ absent)
  | Insert _ | Link _ | Unlink _ | Update _ | Delete _ | Display _ | Accept _
  | Write_file _ | Move _ -> 1
  | If (_, a, b) -> 1 + List.fold_left (fun n s -> n + size_stmt s) 0 (a @ b)
  | While (_, body) -> 1 + List.fold_left (fun n s -> n + size_stmt s) 0 body

let size p = List.fold_left (fun n s -> n + size_stmt s) 0 p.body

let path_length p =
  List.fold_left (fun n q -> n + List.length q) 0 (queries p)

let check schema p =
  (* Thread the names each FOR EACH binds into nested queries. *)
  let rec stmt bound = function
    | For_each { query; body } ->
        Apattern.check ~bound schema query
        @ body_check (Apattern.names_of query @ bound) body
    | First { query; present; absent } ->
        Apattern.check ~bound schema query
        @ body_check (Apattern.names_of query @ bound) present
        @ body_check bound absent
    | Update { query; _ } | Delete { query; _ } ->
        Apattern.check ~bound schema query
    | Insert _ | Link _ | Unlink _ | Display _ | Accept _ | Write_file _
    | Move _ -> []
    | If (_, a, b) -> body_check bound a @ body_check bound b
    | While (_, body) -> body_check bound body
  and body_check bound body = List.concat_map (stmt bound) body in
  body_check [] p.body

let rec equal_stmt a b =
  match a, b with
  | For_each x, For_each y ->
      Apattern.equal x.query y.query && equal_body x.body y.body
  | First x, First y ->
      Apattern.equal x.query y.query
      && equal_body x.present y.present
      && equal_body x.absent y.absent
  | Insert x, Insert y ->
      Field.name_equal x.entity y.entity && x.values = y.values
      && x.connects = y.connects
  | Link x, Link y ->
      Field.name_equal x.assoc y.assoc
      && x.left_key = y.left_key && x.right_key = y.right_key
      && x.attrs = y.attrs
  | Unlink x, Unlink y ->
      Field.name_equal x.assoc y.assoc
      && x.left_key = y.left_key && x.right_key = y.right_key
  | Update x, Update y ->
      Apattern.equal x.query y.query && x.assigns = y.assigns
  | Delete x, Delete y ->
      Apattern.equal x.query y.query && x.cascade = y.cascade
  | Display x, Display y -> x = y
  | Accept x, Accept y -> String.equal x y
  | Write_file (f1, e1), Write_file (f2, e2) -> String.equal f1 f2 && e1 = e2
  | Move (e1, x1), Move (e2, x2) -> e1 = e2 && String.equal x1 x2
  | If (c1, a1, b1), If (c2, a2, b2) ->
      Cond.equal c1 c2 && equal_body a1 a2 && equal_body b1 b2
  | While (c1, b1), While (c2, b2) -> Cond.equal c1 c2 && equal_body b1 b2
  | ( For_each _ | First _ | Insert _ | Link _ | Unlink _ | Update _
    | Delete _ | Display _ | Accept _ | Write_file _ | Move _ | If _
    | While _ ), _ -> false

and equal_body a b = List.length a = List.length b && List.for_all2 equal_stmt a b

let equal a b = String.equal a.name b.name && equal_body a.body b.body

let rec pp_stmt indent ppf s =
  let pad = String.make indent ' ' in
  match s with
  | For_each { query; body } ->
      Fmt.pf ppf "%sFOR EACH@.%a%sDO@.%a%sEND-FOR" pad
        (pp_query (indent + 2)) query pad (pp_body (indent + 2)) body pad
  | First { query; present; absent } ->
      Fmt.pf ppf "%sFIRST@.%a%sPRESENT@.%a%sABSENT@.%a%sEND-FIRST" pad
        (pp_query (indent + 2)) query pad (pp_body (indent + 2)) present pad
        (pp_body (indent + 2)) absent pad
  | Insert { entity; values; connects } ->
      Fmt.pf ppf "%sINSERT %s (%a)%a" pad entity
        Fmt.(list ~sep:(any ", ") (fun ppf (f, e) ->
                 pf ppf "%s=%a" f Cond.pp_expr e))
        values
        (fun ppf -> function
          | [] -> ()
          | cs ->
              Fmt.pf ppf " CONNECT %a"
                Fmt.(
                  list ~sep:(any "; ") (fun ppf (a, ks) ->
                      pf ppf "%s VIA (%a)" a
                        (list ~sep:(any ",") Cond.pp_expr)
                        ks))
                cs)
        connects
  | Link { assoc; left_key; right_key; attrs } ->
      Fmt.pf ppf "%sLINK %s (%a)-(%a)%a" pad assoc
        Fmt.(list ~sep:(any ",") Cond.pp_expr) left_key
        Fmt.(list ~sep:(any ",") Cond.pp_expr) right_key
        (fun ppf -> function
          | [] -> ()
          | attrs ->
              Fmt.pf ppf " WITH (%a)"
                Fmt.(list ~sep:(any ", ") (fun ppf (f, e) ->
                         pf ppf "%s=%a" f Cond.pp_expr e))
                attrs)
        attrs
  | Unlink { assoc; left_key; right_key } ->
      Fmt.pf ppf "%sUNLINK %s (%a)-(%a)" pad assoc
        Fmt.(list ~sep:(any ",") Cond.pp_expr) left_key
        Fmt.(list ~sep:(any ",") Cond.pp_expr) right_key
  | Update { query; assigns } ->
      Fmt.pf ppf "%sUPDATE@.%a%sSET %a" pad (pp_query (indent + 2)) query pad
        Fmt.(list ~sep:(any ", ") (fun ppf (f, e) ->
                 pf ppf "%s=%a" f Cond.pp_expr e))
        assigns
  | Delete { query; cascade } ->
      Fmt.pf ppf "%sDELETE%s@.%a" pad (if cascade then " CASCADE" else "")
        (pp_query (indent + 2)) query
  | Display es ->
      Fmt.pf ppf "%sDISPLAY %a" pad Fmt.(list ~sep:(any " ") Cond.pp_expr) es
  | Accept x -> Fmt.pf ppf "%sACCEPT %s" pad x
  | Write_file (file, es) ->
      Fmt.pf ppf "%sWRITE %a TO FILE %s" pad
        Fmt.(list ~sep:(any " ") Cond.pp_expr) es file
  | Move (e, x) -> Fmt.pf ppf "%sMOVE %a TO %s" pad Cond.pp_expr e x
  | If (c, a, []) ->
      Fmt.pf ppf "%sIF %a THEN@.%a%sEND-IF" pad Cond.pp c
        (pp_body (indent + 2)) a pad
  | If (c, a, b) ->
      Fmt.pf ppf "%sIF %a THEN@.%a%sELSE@.%a%sEND-IF" pad Cond.pp c
        (pp_body (indent + 2)) a pad (pp_body (indent + 2)) b pad
  | While (c, body) ->
      Fmt.pf ppf "%sWHILE %a@.%a%sEND-WHILE" pad Cond.pp c
        (pp_body (indent + 2)) body pad

and pp_body indent ppf body =
  List.iter (fun s -> Fmt.pf ppf "%a@." (pp_stmt indent) s) body

and pp_query indent ppf q =
  List.iter
    (fun step ->
      Fmt.pf ppf "%s%a@." (String.make indent ' ') Apattern.pp_step step)
    q

let pp ppf p = Fmt.pf ppf "ABSTRACT PROGRAM %s.@.%a" p.name (pp_body 2) p.body
let show p = Fmt.str "%a" pp p
