(** The host-language layer: a small COBOL-like structured language
    with embedded DML statements, generic in the DML type so the same
    host skeleton runs against any of the three engines.

    This is where the paper's operational equivalence judgment lives:
    running a program yields an {!Ccv_common.Io_trace.t} of its
    terminal and non-database file behaviour, and §1.1 declares two
    programs equivalent iff those traces coincide. *)

open Ccv_common

type 'dml stmt =
  | Dml of 'dml
  | Move of Cond.expr * string  (** MOVE expr TO var *)
  | Display of Cond.expr list  (** one terminal line, space-separated *)
  | Accept of string  (** read the next terminal input into var *)
  | Write_file of string * Cond.expr list
  | If of Cond.t * 'dml stmt list * 'dml stmt list
  | While of Cond.t * 'dml stmt list
      (** test before each iteration; expressions are over host
          variables only *)

type 'dml program = { name : string; body : 'dml stmt list }

(** The status register every DML statement writes (its
    {!Ccv_common.Status.code}); host conditions test it. *)
val status_var : string

val status_ok : Cond.t
val status_is : Status.t -> Cond.t
val status_not : Status.t -> Cond.t

(** A host variable as a condition/expression operand. *)
val v : string -> Cond.expr

val str : string -> Cond.expr
val int : int -> Cond.expr

(** Structural helpers for analysis and conversion. *)

val map_dml : ('a -> 'b) -> 'a program -> 'b program

(** Replace each DML statement by a statement {e list} (for template
    rewrites that expand one statement into several). *)
val concat_map_dml : ('a -> 'b stmt list) -> 'a program -> 'b program

val dml_list : 'a program -> 'a list

(** All host variables the program reads or writes. *)
val variables : 'a program -> vars_of_dml:('a -> string list) -> string list

val size : 'a program -> int

val pp :
  dml:(Format.formatter -> 'a -> unit) -> Format.formatter -> 'a program ->
  unit

(** Execution. *)

module type ENGINE = sig
  type db
  type state
  type dml

  val initial_state : db -> state

  val exec :
    db -> state -> env:Cond.env -> dml ->
    db * state * (string * Value.t) list * Status.t
end

module Run (E : ENGINE) : sig
  type result = {
    db : E.db;
    trace : Io_trace.t;
    env : (string * Value.t) list;  (** final variable bindings *)
    statuses : Status.t list;  (** per executed DML, in order *)
    steps : int;
    hit_limit : bool;  (** the [max_steps] guard fired *)
  }

  (** [run ?input ?max_steps db program].  [input] scripts the
      terminal; an exhausted script reads as [""].  Unset variables
      read as [Null].  [max_steps] (default 200_000) bounds total
      statement executions. *)
  val run :
    ?input:string list -> ?max_steps:int -> E.db -> E.dml program -> result
end
