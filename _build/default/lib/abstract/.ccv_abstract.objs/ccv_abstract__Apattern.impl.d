lib/abstract/apattern.ml: Ccv_common Ccv_model Cond Field Fmt List Option Row Sdb Semantic Value
