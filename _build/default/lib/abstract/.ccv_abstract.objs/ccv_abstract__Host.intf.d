lib/abstract/host.mli: Ccv_common Cond Format Io_trace Status Value
