lib/abstract/ainterp.mli: Aprog Ccv_common Ccv_model Io_trace Value
