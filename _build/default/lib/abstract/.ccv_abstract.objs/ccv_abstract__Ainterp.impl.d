lib/abstract/ainterp.ml: Apattern Aprog Ccv_common Ccv_model Cond Host Io_trace List Option Row Sdb Semantic Status String Value
