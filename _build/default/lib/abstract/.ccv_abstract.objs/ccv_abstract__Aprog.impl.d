lib/abstract/aprog.ml: Apattern Ccv_common Cond Field Fmt List String
