lib/abstract/aprog.mli: Apattern Ccv_common Ccv_model Cond Format
