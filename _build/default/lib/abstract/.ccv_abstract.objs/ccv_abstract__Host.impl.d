lib/abstract/host.ml: Ccv_common Cond Fmt Io_trace List Option Row Status String Value
