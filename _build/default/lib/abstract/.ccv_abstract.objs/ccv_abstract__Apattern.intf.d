lib/abstract/apattern.mli: Ccv_common Ccv_model Cond Format Row
