(** The four basic access patterns of section 4.1, and their evaluation
    as a pipeline ("a sequence of these basic access patterns can be
    used to describe the traversal of data specified in the application
    program").

    A sequence is evaluated left to right over a growing set of
    {e contexts}.  A context is a joined row whose fields are qualified
    ["NAME.FIELD"]; each step extends every context with the
    occurrences it reaches.  Qualifications within a step are written
    on the {e unqualified} fields of that step's target. *)

open Ccv_common

type step =
  | Self of { target : string; qual : Cond.t }
      (** ACCESS A via A — occurrences of entity A satisfying the
          qualification *)
  | Through of {
      target : string;
      source : string;
      link : string * string;  (** (target field, source field) *)
      qual : Cond.t;
    }
      (** ACCESS A via B through (Ai, Bj) — entities related only by
          comparable fields *)
  | Assoc_via of { assoc : string; source : string; qual : Cond.t }
      (** ACCESS AB via B — association occurrences constrained by a
          previously accessed B *)
  | Via_assoc of { target : string; assoc : string; qual : Cond.t }
      (** ACCESS A via AB — entity occurrences reached through accessed
          association occurrences *)

type t = step list

(** Target name a step reaches (entity, or association for
    [Assoc_via]). *)
val target_of : step -> string

(** Names every step mentions, in order. *)
val names_of : t -> string list

(** The entity/assoc whose occurrences the whole sequence delivers
    (target of the last step); raises [Invalid_argument] on []. *)
val result_of : t -> string

val qual_of : step -> Cond.t
val map_qual : (Cond.t -> Cond.t) -> step -> step

(** Static validation against a semantic schema: targets exist,
    association endpoints line up, sources appear earlier in the
    sequence or in [bound] (names an enclosing FOR EACH binds).
    Returns error messages. *)
val check : ?bound:string list -> Ccv_model.Semantic.t -> t -> string list

(** [eval db ~env seq] — the list of contexts, deterministic order.
    A first-step source that no earlier step bound resolves through
    [env] (qualified ["NAME.FIELD"] variables of an enclosing loop). *)
val eval : Ccv_model.Sdb.t -> env:Cond.env -> t -> Row.t list

val equal : t -> t -> bool
val pp_step : Format.formatter -> step -> unit
val pp : Format.formatter -> t -> unit
val show : t -> string
