(** Reference semantics for abstract programs: execution directly over
    a semantic-model instance.  Used to validate the Program Analyzer
    (the abstract image of a program must behave like the original) and
    to test transformation rules in isolation from any concrete DBMS. *)

open Ccv_common

type result = {
  db : Ccv_model.Sdb.t;
  trace : Io_trace.t;
  env : (string * Value.t) list;
  steps : int;
  hit_limit : bool;
}

val run :
  ?input:string list -> ?max_steps:int -> Ccv_model.Sdb.t -> Aprog.t -> result
