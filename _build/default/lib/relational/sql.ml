open Ccv_common

type query = {
  select : string list;
  from_ : string;
  where_ : Cond.t;
  where_in : (string * query) list;
  order_by : string list;
}

type stmt =
  | Query of query
  | Insert of string * (string * Cond.expr) list
  | Delete of string * Cond.t
  | Update of string * (string * Cond.expr) list * Cond.t

let query ?(select = []) ?(where_ = Cond.True) ?(where_in = [])
    ?(order_by = []) from_ =
  { select = List.map Field.canon select;
    from_ = Field.canon from_;
    where_;
    where_in = List.map (fun (f, q) -> (Field.canon f, q)) where_in;
    order_by = List.map Field.canon order_by;
  }

let rec compile q =
  let base = Algebra.Rel q.from_ in
  let selected =
    match q.where_ with
    | Cond.True -> base
    | c -> Algebra.Select (c, base)
  in
  let with_in =
    List.fold_left
      (fun acc (field, sub) ->
        let sub_field =
          match sub.select with
          | [ f ] -> f
          | _ ->
              invalid_arg
                (Fmt.str "Sql: IN subquery on %s must project one field"
                   sub.from_)
        in
        Algebra.Semijoin ((field, sub_field), acc, compile sub))
      selected q.where_in
  in
  let projected =
    match q.select with
    | [] -> with_in
    | names -> Algebra.Project (names, with_in)
  in
  match q.order_by with
  | [] -> projected
  | names -> Algebra.Sort (names, projected)

let run_query ~env db q = Algebra.eval ~env db (compile q)

let exec ~env db = function
  | Query q -> Ok (db, run_query ~env db q)
  | Insert (rel, assigns) -> (
      let row =
        Row.of_list
          (List.map (fun (f, e) -> (f, Cond.eval_expr ~env Row.empty e)) assigns)
      in
      match Rdb.insert db rel row with
      | Ok db -> Ok (db, [])
      | Error s -> Error s)
  | Delete (rel, cond) ->
      let db, _n = Rdb.delete_where db rel cond ~env in
      Ok (db, [])
  | Update (rel, assigns, cond) -> (
      match Rdb.update_where db rel cond ~env assigns with
      | Ok (db, _n) -> Ok (db, [])
      | Error s -> Error s)

let rec relations_of_query q =
  q.from_ :: List.concat_map (fun (_, sub) -> relations_of_query sub) q.where_in

let relations_of = function
  | Query q -> relations_of_query q
  | Insert (rel, _) | Delete (rel, _) | Update (rel, _, _) -> [ Field.canon rel ]

let rec equal_query a b =
  a.select = b.select
  && Field.name_equal a.from_ b.from_
  && Cond.equal a.where_ b.where_
  && a.order_by = b.order_by
  && List.length a.where_in = List.length b.where_in
  && List.for_all2
       (fun (f1, q1) (f2, q2) -> Field.name_equal f1 f2 && equal_query q1 q2)
       a.where_in b.where_in

let rec pp_query ppf q =
  let pp_select ppf = function
    | [] -> Fmt.string ppf "*"
    | names -> Fmt.(list ~sep:(any ", ") string) ppf names
  in
  Fmt.pf ppf "@[<v2>SELECT %a@ FROM %s" pp_select q.select q.from_;
  let has_where = q.where_ <> Cond.True || q.where_in <> [] in
  if has_where then begin
    Fmt.pf ppf "@ WHERE ";
    let first = ref true in
    let sep () = if !first then first := false else Fmt.pf ppf "@ AND " in
    (match q.where_ with
    | Cond.True -> ()
    | c ->
        sep ();
        Cond.pp ppf c);
    List.iter
      (fun (f, sub) ->
        sep ();
        Fmt.pf ppf "%s IN@;<1 2>(%a)" f pp_query sub)
      q.where_in
  end;
  (match q.order_by with
  | [] -> ()
  | names -> Fmt.pf ppf "@ ORDER BY %a" Fmt.(list ~sep:(any ", ") string) names);
  Fmt.pf ppf "@]"

let pp_assign ppf (f, e) = Fmt.pf ppf "%s = %a" f Cond.pp_expr e

let pp ppf = function
  | Query q -> pp_query ppf q
  | Insert (rel, assigns) ->
      Fmt.pf ppf "@[INSERT INTO %s (%a)@]" rel
        Fmt.(list ~sep:(any ", ") pp_assign)
        assigns
  | Delete (rel, cond) -> Fmt.pf ppf "@[DELETE FROM %s WHERE %a@]" rel Cond.pp cond
  | Update (rel, assigns, cond) ->
      Fmt.pf ppf "@[UPDATE %s SET %a WHERE %a@]" rel
        Fmt.(list ~sep:(any ", ") pp_assign)
        assigns Cond.pp cond

let show s = Fmt.str "%a" pp s
