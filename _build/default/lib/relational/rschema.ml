open Ccv_common

type rel_decl = { rname : string; fields : Field.t list; key : string list }
type t = { relations : rel_decl list }

let rel_decl name fields ~key =
  let rname = Field.canon name in
  Field.check_distinct ~what:("relation " ^ rname) fields;
  let key = List.map Field.canon key in
  List.iter
    (fun k ->
      if not (Field.mem fields k) then
        invalid_arg (Fmt.str "relation %s: key field %s not declared" rname k))
    key;
  { rname; fields; key }

let make relations =
  let rec check = function
    | [] -> ()
    | r :: rest ->
        if List.exists (fun r' -> Field.name_equal r'.rname r.rname) rest then
          invalid_arg (Fmt.str "schema: duplicate relation %s" r.rname)
        else check rest
  in
  check relations;
  { relations }

let find t name =
  List.find_opt (fun r -> Field.name_equal r.rname name) t.relations

let find_exn t name =
  match find t name with
  | Some r -> r
  | None -> invalid_arg (Fmt.str "schema: unknown relation %s" name)

let mem t name = Option.is_some (find t name)
let rel_names t = List.map (fun r -> r.rname) t.relations
let add t decl = make (t.relations @ [ decl ])

let remove t name =
  { relations =
      List.filter (fun r -> not (Field.name_equal r.rname name)) t.relations
  }

let replace t decl =
  { relations =
      List.map
        (fun r -> if Field.name_equal r.rname decl.rname then decl else r)
        t.relations
  }

let equal_rel a b =
  Field.name_equal a.rname b.rname
  && List.length a.fields = List.length b.fields
  && List.for_all2 Field.equal a.fields b.fields
  && List.length a.key = List.length b.key
  && List.for_all2 Field.name_equal a.key b.key

let equal a b =
  List.length a.relations = List.length b.relations
  && List.for_all2 equal_rel a.relations b.relations

let pp_rel ppf r =
  Fmt.pf ppf "@[<h>%s(%a)%a@]" r.rname
    (Fmt.list ~sep:(Fmt.any ", ") Field.pp)
    r.fields
    (fun ppf -> function
      | [] -> ()
      | key -> Fmt.pf ppf " KEY(%a)" (Fmt.list ~sep:(Fmt.any ", ") Fmt.string) key)
    r.key

let pp ppf t = Fmt.pf ppf "@[<v>%a@]" (Fmt.list pp_rel) t.relations
let show t = Fmt.str "%a" pp t
