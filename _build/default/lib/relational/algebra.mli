(** Relational algebra over {!Rdb} instances.  This is both the
    execution engine for SEQUEL-style queries and the algebraic
    substrate the optimizer reasons with (the paper's Michigan code
    templates "correspond to operators in the relational algebra",
    section 4.3). *)

open Ccv_common

type t =
  | Rel of string  (** base relation *)
  | Select of Cond.t * t
  | Project of string list * t
  | Product of t * t
  | Join of Cond.t * t * t  (** theta join *)
  | Natural_join of t * t
  | Semijoin of (string * string) * t * t
      (** [Semijoin ((a, b), l, r)]: rows of [l] whose field [a] occurs
          as field [b] of some row of [r] — the IN-subquery shape. *)
  | Rename of (string * string) list * t  (** (from, to) pairs *)
  | Union of t * t
  | Diff of t * t
  | Distinct of t
  | Sort of string list * t

val eval : env:Cond.env -> Rdb.t -> t -> Row.t list

(** Free base relations mentioned, left-to-right, with duplicates. *)
val base_relations : t -> string list

(** One bottom-up rewrite pass of the classical laws the paper's
    optimisation section presupposes: selection pushdown through
    product/join, fusing cascaded selections and projections, dropping
    identity projections (needs the schema to know full field lists).
    Idempotent when iterated to fixpoint via {!optimize}. *)
val rewrite_once : Rschema.t -> t -> t

val optimize : Rschema.t -> t -> t

(** Number of operator nodes (optimizer metric). *)
val size : t -> int

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val show : t -> string
