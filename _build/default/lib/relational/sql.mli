(** SEQUEL-style statements, matching the surface language the paper
    quotes in section 4.1 (nested [SELECT ... WHERE x IN (SELECT ...)]).
    Queries compile to {!Algebra.t}; updates execute directly. *)

open Ccv_common

type query = {
  select : string list;  (** projected fields; [] means SELECT * *)
  from_ : string;
  where_ : Cond.t;
  where_in : (string * query) list;
      (** [(field, sub)]: FIELD IN (subquery); the subquery must
          project exactly one field. *)
  order_by : string list;
}

type stmt =
  | Query of query
  | Insert of string * (string * Cond.expr) list
  | Delete of string * Cond.t
  | Update of string * (string * Cond.expr) list * Cond.t

val query :
  ?select:string list -> ?where_:Cond.t -> ?where_in:(string * query) list ->
  ?order_by:string list -> string -> query

(** Compile a query to relational algebra (IN becomes semijoin). *)
val compile : query -> Algebra.t

val run_query : env:Cond.env -> Rdb.t -> query -> Row.t list

(** Execute any statement; queries return their rows, updates return
    the new instance. *)
val exec : env:Cond.env -> Rdb.t -> stmt -> (Rdb.t * Row.t list, Status.t) result

(** Relations a statement touches. *)
val relations_of : stmt -> string list

val equal_query : query -> query -> bool
val pp_query : Format.formatter -> query -> unit
val pp : Format.formatter -> stmt -> unit
val show : stmt -> string
