open Ccv_common

type t =
  | Rel of string
  | Select of Cond.t * t
  | Project of string list * t
  | Product of t * t
  | Join of Cond.t * t * t
  | Natural_join of t * t
  | Semijoin of (string * string) * t * t
  | Rename of (string * string) list * t
  | Union of t * t
  | Diff of t * t
  | Distinct of t
  | Sort of string list * t

let rec eval ~env db = function
  | Rel name -> Rdb.rows db name
  | Select (cond, e) -> List.filter (fun r -> Cond.eval ~env r cond) (eval ~env db e)
  | Project (names, e) -> List.map (fun r -> Row.project r names) (eval ~env db e)
  | Product (a, b) ->
      let rb = eval ~env db b in
      List.concat_map (fun ra -> List.map (fun r -> Row.union ra r) rb) (eval ~env db a)
  | Join (cond, a, b) ->
      let rb = eval ~env db b in
      List.concat_map
        (fun ra ->
          List.filter_map
            (fun r ->
              let joined = Row.union ra r in
              if Cond.eval ~env joined cond then Some joined else None)
            rb)
        (eval ~env db a)
  | Natural_join (a, b) ->
      let ra = eval ~env db a and rb = eval ~env db b in
      let common =
        match ra, rb with
        | r1 :: _, r2 :: _ ->
            List.filter (fun f -> Row.mem r2 f) (Row.fields r1)
        | _, _ -> []
      in
      List.concat_map
        (fun r1 ->
          List.filter_map
            (fun r2 ->
              let agree =
                List.for_all
                  (fun f -> Value.equal (Row.get_exn r1 f) (Row.get_exn r2 f))
                  common
              in
              if agree then Some (Row.union r1 r2) else None)
            rb)
        ra
  | Semijoin ((fa, fb), a, b) ->
      let keys =
        List.filter_map (fun r -> Row.get r fb) (eval ~env db b)
      in
      List.filter
        (fun r ->
          match Row.get r fa with
          | Some v -> List.exists (Value.equal v) keys
          | None -> false)
        (eval ~env db a)
  | Rename (pairs, e) ->
      List.map
        (fun r ->
          List.fold_left
            (fun r (from_, to_) -> Row.rename r ~from_ ~to_)
            r pairs)
        (eval ~env db e)
  | Union (a, b) -> eval ~env db a @ eval ~env db b
  | Diff (a, b) ->
      let rb = eval ~env db b in
      List.filter (fun r -> not (List.exists (Row.equal r) rb)) (eval ~env db a)
  | Distinct e ->
      let rec dedup seen = function
        | [] -> List.rev seen
        | r :: rest ->
            if List.exists (Row.equal r) seen then dedup seen rest
            else dedup (r :: seen) rest
      in
      dedup [] (eval ~env db e)
  | Sort (names, e) ->
      let cmp r1 r2 =
        let rec go = function
          | [] -> 0
          | n :: rest ->
              let c =
                Value.compare
                  (Option.value (Row.get r1 n) ~default:Value.Null)
                  (Option.value (Row.get r2 n) ~default:Value.Null)
              in
              if c <> 0 then c else go rest
        in
        go names
      in
      List.stable_sort cmp (eval ~env db e)

let rec base_relations = function
  | Rel name -> [ Field.canon name ]
  | Select (_, e) | Project (_, e) | Rename (_, e) | Distinct e | Sort (_, e) ->
      base_relations e
  | Product (a, b) | Join (_, a, b) | Natural_join (a, b)
  | Semijoin (_, a, b) | Union (a, b) | Diff (a, b) ->
      base_relations a @ base_relations b

(* Fields produced by an expression, when statically known. *)
let rec out_fields schema = function
  | Rel name -> (
      match Rschema.find schema name with
      | Some decl -> Some (Field.names decl.fields)
      | None -> None)
  | Select (_, e) | Distinct e | Sort (_, e) -> out_fields schema e
  | Project (names, _) -> Some (List.map Field.canon names)
  | Rename (pairs, e) ->
      Option.map
        (List.map (fun f ->
             match
               List.find_opt (fun (from_, _) -> Field.name_equal from_ f) pairs
             with
             | Some (_, to_) -> Field.canon to_
             | None -> f))
        (out_fields schema e)
  | Product (a, b) | Join (_, a, b) | Natural_join (a, b) -> (
      match out_fields schema a, out_fields schema b with
      | Some fa, Some fb ->
          Some (fa @ List.filter (fun f -> not (List.mem f fa)) fb)
      | _, _ -> None)
  | Semijoin (_, a, _) -> out_fields schema a
  | Union (a, _) | Diff (a, _) -> out_fields schema a

let cond_covered_by schema cond e =
  match out_fields schema e with
  | None -> false
  | Some fs -> List.for_all (fun f -> List.mem f fs) (Cond.fields cond)

let rec rewrite_once schema node =
  let r = rewrite_once schema in
  match node with
  | Rel name -> Rel name
  | Select (Cond.True, e) -> r e
  | Select (c1, Select (c2, e)) -> Select (Cond.And (c2, c1), r e)
  (* Selection pushdown: route each conjunct to the side that can
     evaluate it, keep the rest above. *)
  | Select (c, Product (a, b)) -> push_select schema c (fun x y -> Product (x, y)) a b
  | Select (c, Join (jc, a, b)) ->
      push_select schema c (fun x y -> Join (jc, x, y)) a b
  | Select (c, Natural_join (a, b)) ->
      push_select schema c (fun x y -> Natural_join (x, y)) a b
  | Select (c, e) -> Select (c, r e)
  | Project (names, Project (_, e)) -> Project (names, r e)
  | Project (names, e) -> (
      let e = r e in
      match out_fields schema e with
      | Some fs when List.map Field.canon names = fs -> e
      | Some _ | None -> Project (names, e))
  | Product (a, b) -> Product (r a, r b)
  | Join (c, a, b) -> Join (c, r a, r b)
  | Natural_join (a, b) -> Natural_join (r a, r b)
  | Semijoin (k, a, b) -> Semijoin (k, r a, r b)
  | Rename ([], e) -> r e
  | Rename (pairs, e) -> Rename (pairs, r e)
  | Union (a, b) -> Union (r a, r b)
  | Diff (a, b) -> Diff (r a, r b)
  | Distinct (Distinct e) -> Distinct (r e)
  | Distinct e -> Distinct (r e)
  | Sort (names, Sort (_, e)) -> Sort (names, r e)
  | Sort (names, e) -> Sort (names, r e)

and push_select schema c rebuild a b =
  let conjuncts = Cond.split_conjuncts c in
  let to_a, rest = List.partition (fun cj -> cond_covered_by schema cj a) conjuncts in
  let to_b, above = List.partition (fun cj -> cond_covered_by schema cj b) rest in
  let wrap side = function [] -> rewrite_once schema side | cs -> Select (Cond.conj cs, rewrite_once schema side) in
  let core = rebuild (wrap a to_a) (wrap b to_b) in
  match above with [] -> core | cs -> Select (Cond.conj cs, core)

let rec size = function
  | Rel _ -> 1
  | Select (_, e) | Project (_, e) | Rename (_, e) | Distinct e | Sort (_, e) ->
      1 + size e
  | Product (a, b) | Join (_, a, b) | Natural_join (a, b)
  | Semijoin (_, a, b) | Union (a, b) | Diff (a, b) ->
      1 + size a + size b

let rec equal x y =
  match x, y with
  | Rel a, Rel b -> Field.name_equal a b
  | Select (c1, a), Select (c2, b) -> Cond.equal c1 c2 && equal a b
  | Project (n1, a), Project (n2, b) ->
      List.map Field.canon n1 = List.map Field.canon n2 && equal a b
  | Product (a1, a2), Product (b1, b2)
  | Natural_join (a1, a2), Natural_join (b1, b2)
  | Union (a1, a2), Union (b1, b2)
  | Diff (a1, a2), Diff (b1, b2) -> equal a1 b1 && equal a2 b2
  | Join (c1, a1, a2), Join (c2, b1, b2) ->
      Cond.equal c1 c2 && equal a1 b1 && equal a2 b2
  | Semijoin ((x1, y1), a1, a2), Semijoin ((x2, y2), b1, b2) ->
      Field.name_equal x1 x2 && Field.name_equal y1 y2 && equal a1 b1
      && equal a2 b2
  | Rename (p1, a), Rename (p2, b) -> p1 = p2 && equal a b
  | Distinct a, Distinct b -> equal a b
  | Sort (n1, a), Sort (n2, b) ->
      List.map Field.canon n1 = List.map Field.canon n2 && equal a b
  | ( Rel _ | Select _ | Project _ | Product _ | Join _ | Natural_join _
    | Semijoin _ | Rename _ | Union _ | Diff _ | Distinct _ | Sort _ ), _ ->
      false

let optimize schema e =
  let rec fix e n =
    if n = 0 then e
    else
      let e' = rewrite_once schema e in
      if equal e e' then e else fix e' (n - 1)
  in
  fix e 20

let rec pp ppf = function
  | Rel name -> Fmt.string ppf name
  | Select (c, e) -> Fmt.pf ppf "@[σ[%a]@,(%a)@]" Cond.pp c pp e
  | Project (names, e) ->
      Fmt.pf ppf "@[π[%a]@,(%a)@]"
        (Fmt.list ~sep:(Fmt.any ",") Fmt.string) names pp e
  | Product (a, b) -> Fmt.pf ppf "(%a × %a)" pp a pp b
  | Join (c, a, b) -> Fmt.pf ppf "(%a ⋈[%a] %a)" pp a Cond.pp c pp b
  | Natural_join (a, b) -> Fmt.pf ppf "(%a ⋈ %a)" pp a pp b
  | Semijoin ((fa, fb), a, b) -> Fmt.pf ppf "(%a ⋉[%s=%s] %a)" pp a fa fb pp b
  | Rename (pairs, e) ->
      Fmt.pf ppf "ρ[%a](%a)"
        (Fmt.list ~sep:(Fmt.any ",") (fun ppf (f, t) -> Fmt.pf ppf "%s→%s" f t))
        pairs pp e
  | Union (a, b) -> Fmt.pf ppf "(%a ∪ %a)" pp a pp b
  | Diff (a, b) -> Fmt.pf ppf "(%a − %a)" pp a pp b
  | Distinct e -> Fmt.pf ppf "δ(%a)" pp e
  | Sort (names, e) ->
      Fmt.pf ppf "sort[%a](%a)"
        (Fmt.list ~sep:(Fmt.any ",") Fmt.string) names pp e

let show e = Fmt.str "%a" pp e
