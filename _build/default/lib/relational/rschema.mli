(** Relational schemas, in the style of the paper's Figure 3.1a:
    relation declarations with attribute lists and a primary key (the
    only constraint "maintained explicitly in the relational model...
    tuple uniqueness by means of key declarations", section 3.1). *)

open Ccv_common

type rel_decl = {
  rname : string;  (** canonical (upper-case) relation name *)
  fields : Field.t list;
  key : string list;  (** primary-key field names; [] = no key *)
}

type t = { relations : rel_decl list }

(** [rel_decl name fields ~key] canonicalises names and validates that
    key fields exist; raises [Invalid_argument] otherwise. *)
val rel_decl : string -> Field.t list -> key:string list -> rel_decl

val make : rel_decl list -> t

(** Lookup is case-insensitive. *)
val find : t -> string -> rel_decl option

val find_exn : t -> string -> rel_decl
val mem : t -> string -> bool
val rel_names : t -> string list

(** [add schema decl] / [remove schema name] / [replace schema decl] —
    building blocks for schema restructurings. *)
val add : t -> rel_decl -> t

val remove : t -> string -> t
val replace : t -> rel_decl -> t

val equal : t -> t -> bool
val pp_rel : Format.formatter -> rel_decl -> unit
val pp : Format.formatter -> t -> unit
val show : t -> string
