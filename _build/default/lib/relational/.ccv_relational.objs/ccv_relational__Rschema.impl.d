lib/relational/rschema.ml: Ccv_common Field Fmt List Option
