lib/relational/sql.mli: Algebra Ccv_common Cond Format Rdb Row Status
