lib/relational/sql.ml: Algebra Ccv_common Cond Field Fmt List Rdb Row
