lib/relational/rschema.mli: Ccv_common Field Format
