lib/relational/algebra.mli: Ccv_common Cond Format Rdb Row Rschema
