lib/relational/rdb.ml: Ccv_common Cond Counters Field Fmt List Option Row Rschema Status String Value
