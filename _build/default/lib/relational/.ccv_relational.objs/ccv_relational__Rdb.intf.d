lib/relational/rdb.mli: Ccv_common Cond Counters Format Row Rschema Status
