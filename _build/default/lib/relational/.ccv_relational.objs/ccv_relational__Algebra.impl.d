lib/relational/algebra.ml: Ccv_common Cond Field Fmt List Option Rdb Row Rschema Value
