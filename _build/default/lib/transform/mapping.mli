(** Realization of a semantic schema in each concrete 1979 data model,
    with data loaders in both directions.

    This is the keystone the paper's framework turns on: the semantic
    model is the "intermediate form ... used as the target for the
    decompilation process and the source of a compilation process"
    (section 3.1), so each entity/association must have a concrete
    realization per model:

    - {b relational}: entity → relation; association → relation holding
      both keys plus attributes (Figure 3.1a).
    - {b network}: entity → record type with a CALC key and a
      SYSTEM-owned singular set (the Maryland ALL-DIV device);
      attribute-free 1:N association → owner-coupled set (selection BY
      VALUE of the owner key); association with attributes or M:N →
      link record owned through two sets (Figure 3.1b's
      COURSE'S-OFFERING / SEMESTER'S-OFFERING shape).
    - {b hierarchical}: a total attribute-free 1:N association →
      physical parent-child; every other association → a link segment
      under the left entity carrying the right key and the attributes.

    Restrictions (checked, [Invalid_argument] otherwise): network and
    hierarchical realizations need single-field entity keys. *)

open Ccv_model
module Rschema = Ccv_relational.Rschema
module Rdb = Ccv_relational.Rdb
module Nschema = Ccv_network.Nschema
module Ndb = Ccv_network.Ndb
module Hschema = Ccv_hier.Hschema
module Hdb = Ccv_hier.Hdb

type target_model = Rel | Net | Hier

type assoc_real =
  | Assoc_relation of string
  | Assoc_set of { set : string; member_fields : string list }
      (** [member_fields]: the member-side fields (stored or virtual)
          carrying the owner key, aligned with the owner's key fields;
          used for BY VALUE selection *)
  | Assoc_link_record of { record : string; left_set : string; right_set : string }
  | Assoc_parent_child
  | Assoc_link_segment of string

type t = {
  model : target_model;
  semantic : Semantic.t;
  assoc_reals : (string * assoc_real) list;
}

val assoc_real : t -> string -> assoc_real

(** [None] when the name is not an association (e.g. an entity). *)
val assoc_real_opt : t -> string -> assoc_real option

(** Singular-set name for an entity in the network realization. *)
val singular_set : string -> string

val pp_model : Format.formatter -> target_model -> unit
val pp : Format.formatter -> t -> unit

(** Schema derivation. *)

val derive_relational : Semantic.t -> t * Rschema.t
val derive_network : Semantic.t -> t * Nschema.t
val derive_hier : Semantic.t -> t * Hschema.t

(** Entities in an order where every total-association owner precedes
    its members (load order). *)
val load_order : Semantic.t -> Semantic.entity list

(** Data loaders (semantic instance → concrete instance). *)

val load_relational : Rschema.t -> Sdb.t -> Rdb.t
val load_network : t -> Nschema.t -> Sdb.t -> Ndb.t
val load_hier : t -> Hschema.t -> Sdb.t -> Hdb.t

(** Extractors (concrete instance → semantic instance); with the
    loaders these give round-trip data translation between any two
    models. *)

val extract_relational : Semantic.t -> Rdb.t -> Sdb.t
val extract_network : t -> Ndb.t -> Sdb.t
val extract_hier : t -> Hdb.t -> Sdb.t
