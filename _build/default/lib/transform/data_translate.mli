(** The data translator: restructure a semantic instance to match a
    schema change (the paper's premise that "transforming the database
    to match the schema can be accomplished with a modest effort" —
    this module is that modest effort, and experiment E8 measures it).

    Translation can emit warnings (e.g. grouped fields of instances
    with no association partner are lost; a newly added constraint is
    violated by existing data). *)

open Ccv_model

val translate :
  Sdb.t -> Schema_change.op -> (Sdb.t * string list, string) result

val translate_exn : Sdb.t -> Schema_change.op -> Sdb.t

val translate_all :
  Sdb.t -> Schema_change.op list -> (Sdb.t * string list, string) result
