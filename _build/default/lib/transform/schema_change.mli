(** Schema restructuring operators and their classification — the
    paper's "definition of a restructuring to some new (logical) form"
    (problem statement, §1.1) made concrete.  The Conversion Analyzer
    of Figure 4.1 "classif[ies] the types of changes that have been
    made"; {!classify} is that classifier, and the Program Converter
    keys its transformation rules on the {!change_class}. *)

open Ccv_common
open Ccv_model

type op =
  | Rename_entity of { from_ : string; to_ : string }
  | Rename_field of { entity : string; from_ : string; to_ : string }
  | Rename_assoc of { from_ : string; to_ : string }
  | Add_field of { entity : string; field : Field.t; default : Value.t }
  | Drop_field of { entity : string; field : string }
  | Add_constraint of Semantic.constraint_
  | Drop_constraint of Semantic.constraint_
  | Widen_cardinality of { assoc : string }  (** 1:N becomes M:N *)
  | Interpose of {
      through : string;  (** existing simple association O→E *)
      new_entity : string;  (** N, keyed by O's key plus [group_by] *)
      group_by : string list;  (** fields moved from E up into N *)
      left_assoc : string;  (** new O→N association *)
      right_assoc : string;  (** new N→E association *)
    }
      (** The Figure 4.2 → Figure 4.4 restructuring: promote a field
          group of the member into an interposed entity. *)
  | Collapse of {
      left_assoc : string;
      right_assoc : string;
      removed_entity : string;
      restored_assoc : string;
    }  (** inverse of [Interpose]: fold N's own fields back into E *)
  | Restrict_extension of { entity : string; qual : Ccv_common.Cond.t }
      (** drop the instances satisfying [qual] during conversion — the
          §5.2 example ("suppose employees who retired prior to 1950
          are deleted during conversion"): programs convert with a
          warning but are deliberately not strictly I/O equivalent *)

type change_class =
  | Renaming
  | Field_extension
  | Field_deletion  (** information loss: "a different and more
                        difficult conversion problem" (§1.1) *)
  | Constraint_change
  | Cardinality_generalization
  | Structural_split
  | Structural_merge
  | Extension_reduction
      (** instances removed: a weaker §5.2 "level of successful
          conversion" *)

val classify : op -> change_class

(** [apply schema op] — the restructured schema, or an error message
    when the operator does not fit the schema. *)
val apply : Semantic.t -> op -> (Semantic.t, string) result

val apply_exn : Semantic.t -> op -> Semantic.t
val apply_all : Semantic.t -> op list -> (Semantic.t, string) result

(** Fields of the interposed entity [N]: the owner-key field
    declarations followed by the grouped field declarations.  Exposed
    for the data translator and the converter. *)
val interpose_entity_fields :
  Semantic.t -> through:string -> group_by:string list -> Field.t list * string list
(** returns (field decls, key names) *)

val pp_op : Format.formatter -> op -> unit
val pp_class : Format.formatter -> change_class -> unit
val show_op : op -> string
val show_class : change_class -> string
