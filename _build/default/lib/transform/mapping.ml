open Ccv_common
open Ccv_model
module Rschema = Ccv_relational.Rschema
module Rdb = Ccv_relational.Rdb
module Nschema = Ccv_network.Nschema
module Ndb = Ccv_network.Ndb
module Hschema = Ccv_hier.Hschema
module Hdb = Ccv_hier.Hdb

type target_model = Rel | Net | Hier

type assoc_real =
  | Assoc_relation of string
  | Assoc_set of { set : string; member_fields : string list }
  | Assoc_link_record of { record : string; left_set : string; right_set : string }
  | Assoc_parent_child
  | Assoc_link_segment of string

type t = {
  model : target_model;
  semantic : Semantic.t;
  assoc_reals : (string * assoc_real) list;
}

let assoc_real_opt t aname = List.assoc_opt (Field.canon aname) t.assoc_reals

let assoc_real t aname =
  match assoc_real_opt t aname with
  | Some r -> r
  | None -> invalid_arg (Fmt.str "Mapping: unknown association %s" aname)

let singular_set ename = "ALL-" ^ Field.canon ename

let pp_model ppf = function
  | Rel -> Fmt.string ppf "relational"
  | Net -> Fmt.string ppf "network"
  | Hier -> Fmt.string ppf "hierarchical"

let pp_real ppf = function
  | Assoc_relation r -> Fmt.pf ppf "relation %s" r
  | Assoc_set { set; member_fields } ->
      Fmt.pf ppf "set %s (selection via %s)" set
        (String.concat ", " member_fields)
  | Assoc_link_record { record; left_set; right_set } ->
      Fmt.pf ppf "link record %s (sets %s, %s)" record left_set right_set
  | Assoc_parent_child -> Fmt.string ppf "parent-child"
  | Assoc_link_segment s -> Fmt.pf ppf "link segment %s" s

let pp ppf t =
  Fmt.pf ppf "@[<v>model: %a@ %a@]" pp_model t.model
    (Fmt.list (fun ppf (a, r) -> Fmt.pf ppf "%s -> %a" a pp_real r))
    t.assoc_reals

(* Helpers over the semantic schema. *)

let single_key (e : Semantic.entity) =
  match e.key with
  | [ k ] -> k
  | _ ->
      invalid_arg
        (Fmt.str "Mapping: entity %s needs a single-field key for this model"
           e.ename)

let key_field_decl (e : Semantic.entity) k =
  match Field.find e.fields k with
  | Some f -> f
  | None -> invalid_arg (Fmt.str "Mapping: %s has no key field %s" e.ename k)

let is_characterizing schema (a : Semantic.assoc) =
  let right = Semantic.find_entity_exn schema a.right in
  match right.kind with
  | Semantic.Characterizing owner -> Field.name_equal owner a.left
  | Semantic.Defined -> false

let is_total schema (a : Semantic.assoc) =
  is_characterizing schema a
  || List.exists
       (function
         | Semantic.Total_right x -> Field.name_equal x a.aname
         | Semantic.Total_left _ | Semantic.Participation_limit _
         | Semantic.Field_not_null _ -> false)
       schema.Semantic.constraints

(* An association realizable as a plain owner-coupled set / physical
   parent-child: 1:N with no attributes of its own. *)
let is_simple (a : Semantic.assoc) =
  a.card = Semantic.One_to_many && a.fields = []

(* ------------------------------------------------------------------ *)
(* Relational realization                                              *)

let assoc_rel_fields schema (a : Semantic.assoc) =
  let le = Semantic.find_entity_exn schema a.left in
  let re = Semantic.find_entity_exn schema a.right in
  (* Dedup by name: an interposed entity's key embeds its owner's key
     fields, which must appear once in the association relation. *)
  let keys =
    List.fold_left
      (fun acc (f : Field.t) ->
        if List.exists (fun (g : Field.t) -> Field.name_equal g.name f.name) acc
        then acc
        else acc @ [ f ])
      []
      (List.map (key_field_decl le) le.key @ List.map (key_field_decl re) re.key)
  in
  (keys @ a.fields, List.map (fun (f : Field.t) -> f.name) keys)

let derive_relational schema =
  let entity_rels =
    List.map
      (fun (e : Semantic.entity) ->
        Rschema.rel_decl e.ename e.fields ~key:e.key)
      schema.Semantic.entities
  in
  let assoc_rels =
    List.map
      (fun (a : Semantic.assoc) ->
        let fields, key = assoc_rel_fields schema a in
        Rschema.rel_decl a.aname fields ~key)
      schema.Semantic.assocs
  in
  let mapping =
    { model = Rel;
      semantic = schema;
      assoc_reals =
        List.map
          (fun (a : Semantic.assoc) -> (a.aname, Assoc_relation a.aname))
          schema.Semantic.assocs;
    }
  in
  (mapping, Rschema.make (entity_rels @ assoc_rels))

(* ------------------------------------------------------------------ *)
(* Network realization                                                 *)

let derive_network schema =
  let reals =
    List.map
      (fun (a : Semantic.assoc) ->
        if is_simple a then
          let le = Semantic.find_entity_exn schema a.left in
          (* Member fields carrying the owner key have the owner key
             field names (stored if the member already declares them,
             virtual otherwise). *)
          (a.aname, Assoc_set { set = a.aname; member_fields = le.key })
        else
          ( a.aname,
            Assoc_link_record
              { record = a.aname;
                left_set = Field.canon a.left ^ "-" ^ Field.canon a.aname;
                right_set = Field.canon a.right ^ "-" ^ Field.canon a.aname;
              } ))
      schema.Semantic.assocs
  in
  let real_of aname = List.assoc (Field.canon aname) reals in
  let record_of_entity (e : Semantic.entity) =
    (* A virtual field per owner-key field of each simple association
       in which this entity is the member and does not itself store
       that field. *)
    let virtuals =
      List.concat_map
        (fun (a : Semantic.assoc) ->
          match real_of a.aname with
          | Assoc_set { set; member_fields }
            when Field.name_equal a.right e.ename ->
              let le = Semantic.find_entity_exn schema a.left in
              List.filter_map
                (fun mfield ->
                  if Field.mem e.fields mfield then None
                  else
                    let lkey = key_field_decl le mfield in
                    Some
                      { Nschema.vname = mfield;
                        vty = lkey.ty;
                        via_set = set;
                        source_field = lkey.name;
                      })
                member_fields
          | Assoc_set _ | Assoc_relation _ | Assoc_link_record _
          | Assoc_parent_child | Assoc_link_segment _ -> [])
        (Semantic.assocs_of schema e.ename)
    in
    Nschema.record_decl ~virtuals ~calc_key:e.key e.ename e.fields
  in
  let link_records =
    List.filter_map
      (fun (a : Semantic.assoc) ->
        match real_of a.aname with
        | Assoc_link_record { record; _ } ->
            let fields, key = assoc_rel_fields schema a in
            Some (Nschema.record_decl ~calc_key:key record fields)
        | Assoc_set _ | Assoc_relation _ | Assoc_parent_child
        | Assoc_link_segment _ -> None)
      schema.Semantic.assocs
  in
  let singular_sets =
    List.map
      (fun (e : Semantic.entity) ->
        Nschema.set_decl ~insertion:Nschema.Automatic ~retention:Nschema.Fixed
          ~name:(singular_set e.ename) ~owner:Nschema.System ~member:e.ename ())
      schema.Semantic.entities
  in
  let assoc_sets =
    List.concat_map
      (fun (a : Semantic.assoc) ->
        match real_of a.aname with
        | Assoc_set { set; member_fields } ->
            let le = Semantic.find_entity_exn schema a.left in
            let total = is_total schema a in
            [ Nschema.set_decl
                ~insertion:(if total then Nschema.Automatic else Nschema.Manual)
                ~retention:
                  (if is_characterizing schema a then Nschema.Fixed
                   else if total then Nschema.Mandatory
                   else Nschema.Optional)
                ~selection:(Nschema.By_value (List.combine le.key member_fields))
                ~name:set ~owner:(Nschema.Owner_record a.left) ~member:a.right
                ()
            ]
        | Assoc_link_record { record; left_set; right_set } ->
            let le = Semantic.find_entity_exn schema a.left in
            let re = Semantic.find_entity_exn schema a.right in
            let self_pairs (e : Semantic.entity) =
              List.map (fun k -> (k, k)) e.key
            in
            [ Nschema.set_decl ~insertion:Nschema.Automatic
                ~retention:Nschema.Fixed
                ~selection:(Nschema.By_value (self_pairs le))
                ~name:left_set ~owner:(Nschema.Owner_record a.left)
                ~member:record ();
              Nschema.set_decl ~insertion:Nschema.Automatic
                ~retention:Nschema.Fixed
                ~selection:(Nschema.By_value (self_pairs re))
                ~name:right_set ~owner:(Nschema.Owner_record a.right)
                ~member:record ();
            ]
        | Assoc_relation _ | Assoc_parent_child | Assoc_link_segment _ -> [])
      schema.Semantic.assocs
  in
  let records =
    List.map record_of_entity schema.Semantic.entities @ link_records
  in
  let mapping = { model = Net; semantic = schema; assoc_reals = reals } in
  (mapping, Nschema.make records (singular_sets @ assoc_sets))

(* ------------------------------------------------------------------ *)
(* Hierarchical realization                                            *)

(* The (first) simple total association under which an entity hangs as
   a physical child. *)
let hier_parent_assoc schema (e : Semantic.entity) =
  List.find_opt
    (fun (a : Semantic.assoc) ->
      Field.name_equal a.right e.ename && is_simple a && is_total schema a
      && not (Field.name_equal a.left e.ename))
    schema.Semantic.assocs

let derive_hier schema =
  let reals =
    List.map
      (fun (a : Semantic.assoc) ->
        let re = Semantic.find_entity_exn schema a.right in
        match hier_parent_assoc schema re with
        | Some pa when Field.name_equal pa.aname a.aname ->
            (a.aname, Assoc_parent_child)
        | Some _ | None -> (a.aname, Assoc_link_segment (Field.canon a.aname)))
      schema.Semantic.assocs
  in
  let real_of aname = List.assoc (Field.canon aname) reals in
  let entity_segs =
    List.map
      (fun (e : Semantic.entity) ->
        let parent =
          Option.map
            (fun (a : Semantic.assoc) -> a.left)
            (hier_parent_assoc schema e)
        in
        Hschema.seg_decl ?parent e.ename e.fields)
      schema.Semantic.entities
  in
  let link_segs =
    List.filter_map
      (fun (a : Semantic.assoc) ->
        match real_of a.aname with
        | Assoc_link_segment seg ->
            let re = Semantic.find_entity_exn schema a.right in
            let rkey = key_field_decl re (single_key re) in
            Some (Hschema.seg_decl ~parent:a.left seg (rkey :: a.fields))
        | Assoc_parent_child | Assoc_relation _ | Assoc_set _
        | Assoc_link_record _ -> None)
      schema.Semantic.assocs
  in
  let mapping = { model = Hier; semantic = schema; assoc_reals = reals } in
  (mapping, Hschema.make (entity_segs @ link_segs))

(* ------------------------------------------------------------------ *)
(* Load order: owners of total simple associations first.              *)

let load_order schema =
  let entities = schema.Semantic.entities in
  let depends_on (e : Semantic.entity) =
    List.filter_map
      (fun (a : Semantic.assoc) ->
        if Field.name_equal a.right e.ename && is_total schema a
           && not (Field.name_equal a.left e.ename)
        then Some (Field.canon a.left)
        else None)
      (Semantic.assocs_of schema e.ename)
  in
  let rec go placed pending fuel =
    if fuel = 0 then
      invalid_arg "Mapping.load_order: cyclic total associations"
    else
      match pending with
      | [] -> List.rev placed
      | _ ->
          let ready, blocked =
            List.partition
              (fun e ->
                List.for_all
                  (fun dep ->
                    List.exists
                      (fun (p : Semantic.entity) -> Field.name_equal p.ename dep)
                      placed)
                  (depends_on e))
              pending
          in
          if ready = [] then
            invalid_arg "Mapping.load_order: cyclic total associations"
          else go (List.rev ready @ placed) blocked (fuel - 1)
  in
  go [] entities (List.length entities + 1)

(* ------------------------------------------------------------------ *)
(* Relational load / extract                                           *)

let load_relational rschema sdb =
  let schema = Sdb.schema sdb in
  let db = Rdb.create rschema in
  let db =
    List.fold_left
      (fun db (e : Semantic.entity) ->
        Rdb.load db e.ename (Sdb.rows_silent sdb e.ename))
      db schema.Semantic.entities
  in
  List.fold_left
    (fun db (a : Semantic.assoc) ->
      Rdb.load db a.aname
        (List.map
           (fun l -> Sdb.link_row schema a l)
           (Sdb.links_silent sdb a.aname)))
    db schema.Semantic.assocs

let extract_relational schema rdb =
  let sdb = Sdb.create schema in
  let sdb =
    List.fold_left
      (fun sdb (e : Semantic.entity) ->
        List.fold_left
          (fun sdb row -> Sdb.insert_entity_exn sdb e.ename row)
          sdb
          (Rdb.rows_silent rdb e.ename))
      sdb (load_order schema)
  in
  List.fold_left
    (fun sdb (a : Semantic.assoc) ->
      let le = Semantic.find_entity_exn schema a.left in
      let re = Semantic.find_entity_exn schema a.right in
      List.fold_left
        (fun sdb row ->
          let pick keys = List.map (fun k -> Row.get_exn row k) keys in
          Sdb.link_exn
            ~attrs:(Row.project row (Field.names a.fields))
            sdb a.aname ~left:(pick le.key) ~right:(pick re.key))
        sdb
        (Rdb.rows_silent rdb a.aname))
    sdb schema.Semantic.assocs

(* ------------------------------------------------------------------ *)
(* Network load / extract                                              *)

let store_exn db rtype row =
  match Ndb.store db rtype row with
  | Ok (db, key) -> (db, key)
  | Error s ->
      invalid_arg (Fmt.str "Mapping.load_network %s: %a" rtype Status.pp s)

let load_network mapping nschema sdb =
  let schema = Sdb.schema sdb in
  let db = ref (Ndb.create nschema) in
  let index : (string * string, int) Hashtbl.t = Hashtbl.create 64 in
  let key_repr key = String.concat "|" (List.map Value.show key) in
  (* Seed rows of member entities with the owner-key value so that
     AUTOMATIC BY VALUE selection finds the right occurrence. *)
  let seed_for (e : Semantic.entity) row =
    List.fold_left
      (fun row (a : Semantic.assoc) ->
        match assoc_real mapping a.aname with
        | Assoc_set { member_fields; _ }
          when Field.name_equal a.right e.ename && is_total schema a ->
            let rkey = Sdb.key_of e row in
            let owner_key =
              List.fold_left
                (fun acc (l : Sdb.link) ->
                  if List.compare Value.compare l.rkey rkey = 0 then Some l.lkey
                  else acc)
                None
                (Sdb.links_silent sdb a.aname)
            in
            (match owner_key with
            | Some lkey ->
                List.fold_left2
                  (fun row mfield v ->
                    if Row.mem row mfield then row else Row.set row mfield v)
                  row member_fields lkey
            | None -> row)
        | Assoc_set _ | Assoc_relation _ | Assoc_link_record _
        | Assoc_parent_child | Assoc_link_segment _ -> row)
      row
      (Semantic.assocs_of schema e.ename)
  in
  List.iter
    (fun (e : Semantic.entity) ->
      List.iter
        (fun row ->
          let db', key = store_exn !db e.ename (seed_for e row) in
          db := db';
          Hashtbl.replace index (e.ename, key_repr (Sdb.key_of e row)) key)
        (Sdb.rows_silent sdb e.ename))
    (load_order schema);
  List.iter
    (fun (a : Semantic.assoc) ->
      match assoc_real mapping a.aname with
      | Assoc_set { set; _ } when not (is_total schema a) ->
          (* MANUAL membership: CONNECT each link. *)
          List.iter
            (fun (l : Sdb.link) ->
              let owner = Hashtbl.find index (Field.canon a.left, key_repr l.lkey) in
              let member =
                Hashtbl.find index (Field.canon a.right, key_repr l.rkey)
              in
              match Ndb.connect !db ~set ~member ~owner with
              | Ok db' -> db := db'
              | Error s ->
                  invalid_arg
                    (Fmt.str "Mapping.load_network connect %s: %a" set Status.pp
                       s))
            (Sdb.links_silent sdb a.aname)
      | Assoc_set _ -> ()
      | Assoc_link_record { record; _ } ->
          List.iter
            (fun l ->
              let row = Sdb.link_row schema a l in
              let db', _ = store_exn !db record row in
              db := db')
            (Sdb.links_silent sdb a.aname)
      | Assoc_relation _ | Assoc_parent_child | Assoc_link_segment _ ->
          invalid_arg "Mapping.load_network: non-network realization")
    schema.Semantic.assocs;
  !db

let extract_network mapping ndb =
  let schema = mapping.semantic in
  let sdb = ref (Sdb.create schema) in
  List.iter
    (fun (e : Semantic.entity) ->
      List.iter
        (fun key ->
          match Ndb.view_silent ndb key with
          | Some row ->
              let row = Row.project row (Field.names e.fields) in
              sdb := Sdb.insert_entity_exn !sdb e.ename row
          | None -> ())
        (Ndb.all_keys_silent ndb e.ename))
    (load_order schema);
  List.iter
    (fun (a : Semantic.assoc) ->
      let le = Semantic.find_entity_exn schema a.left in
      let re = Semantic.find_entity_exn schema a.right in
      match assoc_real mapping a.aname with
      | Assoc_set { set; _ } ->
          List.iter
            (fun (owner, members) ->
              match Ndb.view_silent ndb owner with
              | None -> ()
              | Some orow ->
                  let left = List.map (fun k -> Row.get_exn orow k) le.key in
                  List.iter
                    (fun m ->
                      match Ndb.view_silent ndb m with
                      | Some mrow ->
                          let right =
                            List.map (fun k -> Row.get_exn mrow k) re.key
                          in
                          sdb := Sdb.link_exn !sdb a.aname ~left ~right
                      | None -> ())
                    members)
            (Ndb.occurrences ndb set)
      | Assoc_link_record { record; _ } ->
          List.iter
            (fun key ->
              match Ndb.view_silent ndb key with
              | Some row ->
                  let pick keys = List.map (fun k -> Row.get_exn row k) keys in
                  sdb :=
                    Sdb.link_exn
                      ~attrs:(Row.project row (Field.names a.fields))
                      !sdb a.aname ~left:(pick le.key) ~right:(pick re.key)
              | None -> ())
            (Ndb.all_keys_silent ndb record)
      | Assoc_relation _ | Assoc_parent_child | Assoc_link_segment _ ->
          invalid_arg "Mapping.extract_network: non-network realization")
    schema.Semantic.assocs;
  !sdb

(* ------------------------------------------------------------------ *)
(* Hierarchical load / extract                                         *)

let load_hier mapping hschema sdb =
  let schema = Sdb.schema sdb in
  let db = ref (Hdb.create hschema) in
  let index : (string * string, int) Hashtbl.t = Hashtbl.create 64 in
  let key_repr key = String.concat "|" (List.map Value.show key) in
  let insert_exn parent stype row =
    let db', key = Hdb.insert_exn !db ~parent stype row in
    db := db';
    key
  in
  List.iter
    (fun (e : Semantic.entity) ->
      let parent_assoc = hier_parent_assoc schema e in
      List.iter
        (fun row ->
          let rkey = Sdb.key_of e row in
          let parent =
            match parent_assoc with
            | None -> None
            | Some a ->
                let link =
                  List.find_opt
                    (fun (l : Sdb.link) ->
                      List.compare Value.compare l.rkey rkey = 0)
                    (Sdb.links_silent sdb a.aname)
                in
                (match link with
                | Some l ->
                    Some (Hashtbl.find index (Field.canon a.left, key_repr l.lkey))
                | None ->
                    invalid_arg
                      (Fmt.str "Mapping.load_hier: %s instance has no parent"
                         e.ename))
          in
          let key = insert_exn parent e.ename row in
          Hashtbl.replace index (e.ename, key_repr rkey) key)
        (Sdb.rows_silent sdb e.ename))
    (load_order schema);
  List.iter
    (fun (a : Semantic.assoc) ->
      match assoc_real mapping a.aname with
      | Assoc_parent_child -> ()
      | Assoc_link_segment seg ->
          let re = Semantic.find_entity_exn schema a.right in
          let rkey_field = single_key re in
          List.iter
            (fun (l : Sdb.link) ->
              let parent =
                Hashtbl.find index (Field.canon a.left, key_repr l.lkey)
              in
              let row =
                Row.of_list
                  ((rkey_field, List.hd l.rkey) :: Row.to_list l.attrs)
              in
              ignore (insert_exn (Some parent) seg row))
            (Sdb.links_silent sdb a.aname)
      | Assoc_relation _ | Assoc_set _ | Assoc_link_record _ ->
          invalid_arg "Mapping.load_hier: non-hierarchical realization")
    schema.Semantic.assocs;
  !db

let extract_hier mapping hdb =
  let schema = mapping.semantic in
  let sdb = ref (Sdb.create schema) in
  let nodes_of stype =
    List.filter
      (fun k ->
        match Hdb.stype_of hdb k with
        | Some t -> Field.name_equal t stype
        | None -> false)
      (Hdb.hierarchic_sequence_silent hdb)
  in
  List.iter
    (fun (e : Semantic.entity) ->
      List.iter
        (fun k ->
          match Hdb.get_silent hdb k with
          | Some (_, row) -> sdb := Sdb.insert_entity_exn !sdb e.ename row
          | None -> ())
        (nodes_of e.ename))
    (load_order schema);
  let key_of_node (e : Semantic.entity) k =
    match Hdb.get_silent hdb k with
    | Some (_, row) -> Some (Sdb.key_of e row)
    | None -> None
  in
  List.iter
    (fun (a : Semantic.assoc) ->
      let le = Semantic.find_entity_exn schema a.left in
      let re = Semantic.find_entity_exn schema a.right in
      match assoc_real mapping a.aname with
      | Assoc_parent_child ->
          List.iter
            (fun k ->
              match Hdb.parent_of hdb k with
              | Some p -> (
                  match key_of_node le p, key_of_node re k with
                  | Some left, Some right ->
                      sdb := Sdb.link_exn !sdb a.aname ~left ~right
                  | _, _ -> ())
              | None -> ())
            (nodes_of re.ename)
      | Assoc_link_segment seg ->
          let rkey_field = single_key re in
          List.iter
            (fun k ->
              match Hdb.get_silent hdb k, Hdb.parent_of hdb k with
              | Some (_, row), Some p -> (
                  match key_of_node le p with
                  | Some left ->
                      sdb :=
                        Sdb.link_exn
                          ~attrs:(Row.project row (Field.names a.fields))
                          !sdb a.aname ~left
                          ~right:[ Row.get_exn row rkey_field ]
                  | None -> ())
              | _, _ -> ())
            (nodes_of seg)
      | Assoc_relation _ | Assoc_set _ | Assoc_link_record _ ->
          invalid_arg "Mapping.extract_hier: non-hierarchical realization")
    schema.Semantic.assocs;
  !sdb
