lib/transform/schema_change.mli: Ccv_common Ccv_model Field Format Semantic Value
