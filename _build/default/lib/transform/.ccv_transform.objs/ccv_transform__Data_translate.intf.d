lib/transform/data_translate.mli: Ccv_model Schema_change Sdb
