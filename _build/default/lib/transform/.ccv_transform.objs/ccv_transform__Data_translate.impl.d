lib/transform/data_translate.ml: Ccv_common Ccv_model Cond Field Fmt List Option Result Row Schema_change Sdb Semantic Status String Value
