lib/transform/mapping.mli: Ccv_hier Ccv_model Ccv_network Ccv_relational Format Sdb Semantic
