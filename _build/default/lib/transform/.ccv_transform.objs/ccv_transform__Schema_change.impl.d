lib/transform/schema_change.ml: Ccv_common Ccv_model Cond Field Fmt List Result Semantic String Value
