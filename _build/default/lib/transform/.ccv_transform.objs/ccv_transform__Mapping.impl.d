lib/transform/mapping.ml: Ccv_common Ccv_hier Ccv_model Ccv_network Ccv_relational Field Fmt Hashtbl List Option Row Sdb Semantic Status String Value
