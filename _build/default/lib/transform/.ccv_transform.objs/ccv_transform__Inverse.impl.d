lib/transform/inverse.ml: Ccv_common Ccv_model Data_translate Field Fmt List Schema_change Sdb Semantic
