lib/transform/inverse.mli: Ccv_model Format Schema_change
