(** Housel-style inverse analysis (section 2.2): "It is assumed ... that
    the inverse of these data mapping operators exists, i.e., the
    source database can be reconstructed from the target database";
    Housel himself "observes that the assumption of the existence of
    inverse operators restricts the scope of the conversion problem".

    This module makes that observation executable: it decides which
    restructuring operators are invertible, produces the inverse when
    one exists, and experiment E9 verifies T⁻¹(T(db)) = db. *)

type verdict =
  | Invertible of Schema_change.op
  | Lossy of string  (** why information is lost *)
  | Conditional of Schema_change.op * string
      (** invertible only under the stated data condition (checked at
          translation time) *)

val invert : Ccv_model.Semantic.t -> Schema_change.op -> verdict

val pp_verdict : Format.formatter -> verdict -> unit

(** [roundtrip db op] — translate forward, then back when possible;
    [Some true] = contents restored, [Some false] = not restored,
    [None] = no inverse exists. *)
val roundtrip : Ccv_model.Sdb.t -> Schema_change.op -> bool option
