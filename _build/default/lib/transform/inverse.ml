open Ccv_common
open Ccv_model

type verdict =
  | Invertible of Schema_change.op
  | Lossy of string
  | Conditional of Schema_change.op * string

let invert schema op =
  match op with
  | Schema_change.Rename_entity { from_; to_ } ->
      Invertible (Schema_change.Rename_entity { from_ = to_; to_ = from_ })
  | Schema_change.Rename_field { entity; from_; to_ } ->
      Invertible (Schema_change.Rename_field { entity; from_ = to_; to_ = from_ })
  | Schema_change.Rename_assoc { from_; to_ } ->
      Invertible (Schema_change.Rename_assoc { from_ = to_; to_ = from_ })
  | Schema_change.Add_field { entity; field; default = _ } ->
      (* Dropping the added field restores the schema; the data is
         restored exactly because the field carried the default. *)
      Invertible (Schema_change.Drop_field { entity; field = field.Field.name })
  | Schema_change.Drop_field { entity; field } ->
      Lossy
        (Fmt.str "values of %s.%s cannot be reconstructed" entity field)
  | Schema_change.Restrict_extension { entity; _ } ->
      Lossy (Fmt.str "removed %s instances cannot be reconstructed" entity)
  | Schema_change.Add_constraint c ->
      Invertible (Schema_change.Drop_constraint c)
  | Schema_change.Drop_constraint c ->
      Conditional
        ( Schema_change.Add_constraint c,
          "data written after the drop may violate the constraint" )
  | Schema_change.Widen_cardinality { assoc } ->
      Conditional
        ( Schema_change.Widen_cardinality { assoc },
          "narrowing back requires every right instance to keep a single \
           partner" )
  | Schema_change.Interpose
      { through; new_entity; group_by = _; left_assoc; right_assoc } ->
      Invertible
        (Schema_change.Collapse
           { left_assoc;
             right_assoc;
             removed_entity = new_entity;
             restored_assoc = through;
           })
  | Schema_change.Collapse
      { left_assoc; right_assoc; removed_entity; restored_assoc } -> (
      (* Collapsing loses the grouping only if we forget which fields
         were grouped; we can reconstruct them from the removed
         entity's declaration. *)
      match Semantic.find_entity schema removed_entity with
      | None -> Lossy "removed entity unknown in the source schema"
      | Some n ->
          let la = Semantic.find_assoc_exn schema left_assoc in
          let owner = Semantic.find_entity_exn schema la.left in
          let group_by =
            List.filter_map
              (fun (f : Field.t) ->
                if List.exists (Field.name_equal f.name) owner.key
                then None
                else Some f.name)
              n.fields
          in
          Invertible
            (Schema_change.Interpose
               { through = restored_assoc;
                 new_entity = removed_entity;
                 group_by;
                 left_assoc;
                 right_assoc;
               }))

let pp_verdict ppf = function
  | Invertible op -> Fmt.pf ppf "invertible by %a" Schema_change.pp_op op
  | Lossy why -> Fmt.pf ppf "lossy: %s" why
  | Conditional (op, cond) ->
      Fmt.pf ppf "conditionally invertible by %a (%s)" Schema_change.pp_op op
        cond

let roundtrip db op =
  match invert (Sdb.schema db) op with
  | Lossy _ -> None
  | Invertible inv | Conditional (inv, _) -> (
      match Data_translate.translate db op with
      | Error _ -> Some false
      | Ok (db', _) -> (
          match Data_translate.translate db' inv with
          | Error _ -> Some false
          | Ok (db'', _) -> Some (Sdb.equal_contents db db'')))
