open Ccv_common
open Ccv_model

type op =
  | Rename_entity of { from_ : string; to_ : string }
  | Rename_field of { entity : string; from_ : string; to_ : string }
  | Rename_assoc of { from_ : string; to_ : string }
  | Add_field of { entity : string; field : Field.t; default : Value.t }
  | Drop_field of { entity : string; field : string }
  | Add_constraint of Semantic.constraint_
  | Drop_constraint of Semantic.constraint_
  | Widen_cardinality of { assoc : string }
  | Interpose of {
      through : string;
      new_entity : string;
      group_by : string list;
      left_assoc : string;
      right_assoc : string;
    }
  | Collapse of {
      left_assoc : string;
      right_assoc : string;
      removed_entity : string;
      restored_assoc : string;
    }
  | Restrict_extension of { entity : string; qual : Cond.t }

type change_class =
  | Renaming
  | Field_extension
  | Field_deletion
  | Constraint_change
  | Cardinality_generalization
  | Structural_split
  | Structural_merge
  | Extension_reduction

let classify = function
  | Rename_entity _ | Rename_field _ | Rename_assoc _ -> Renaming
  | Add_field _ -> Field_extension
  | Drop_field _ -> Field_deletion
  | Add_constraint _ | Drop_constraint _ -> Constraint_change
  | Widen_cardinality _ -> Cardinality_generalization
  | Interpose _ -> Structural_split
  | Collapse _ -> Structural_merge
  | Restrict_extension _ -> Extension_reduction

let ( let* ) r f = Result.bind r f

let find_entity schema name =
  match Semantic.find_entity schema name with
  | Some e -> Ok e
  | None -> Error (Fmt.str "unknown entity %s" name)

let find_assoc schema name =
  match Semantic.find_assoc schema name with
  | Some a -> Ok a
  | None -> Error (Fmt.str "unknown association %s" name)

let replace_entity schema (e : Semantic.entity) =
  { schema with
    Semantic.entities =
      List.map
        (fun (e' : Semantic.entity) ->
          if Field.name_equal e'.ename e.ename then e else e')
        schema.Semantic.entities;
  }

let rename_in_constraints schema ~is_assoc ~from_ ~to_ =
  { schema with
    Semantic.constraints =
      List.map
        (fun c ->
          match c with
          | Semantic.Total_left a when is_assoc && Field.name_equal a from_ ->
              Semantic.Total_left to_
          | Semantic.Total_right a when is_assoc && Field.name_equal a from_ ->
              Semantic.Total_right to_
          | Semantic.Participation_limit { assoc; per_left_max }
            when is_assoc && Field.name_equal assoc from_ ->
              Semantic.Participation_limit { assoc = to_; per_left_max }
          | Semantic.Field_not_null { entity; field }
            when (not is_assoc) && Field.name_equal entity from_ ->
              Semantic.Field_not_null { entity = to_; field }
          | Semantic.Total_left _ | Semantic.Total_right _
          | Semantic.Participation_limit _ | Semantic.Field_not_null _ -> c)
        schema.Semantic.constraints;
  }

let interpose_entity_fields schema ~through ~group_by =
  let a = Semantic.find_assoc_exn schema through in
  let owner = Semantic.find_entity_exn schema a.left in
  let member = Semantic.find_entity_exn schema a.right in
  let owner_keys =
    List.map
      (fun k ->
        match Field.find owner.fields k with
        | Some f -> f
        | None -> invalid_arg (Fmt.str "missing owner key field %s" k))
      owner.key
  in
  let grouped =
    List.map
      (fun g ->
        match Field.find member.fields g with
        | Some f -> f
        | None -> invalid_arg (Fmt.str "missing grouped field %s" g))
      group_by
  in
  (owner_keys @ grouped, owner.key @ List.map Field.canon group_by)

let apply schema op =
  match op with
  | Rename_entity { from_; to_ } ->
      let* e = find_entity schema from_ in
      if Semantic.find_entity schema to_ <> None then
        Error (Fmt.str "entity %s already exists" to_)
      else
        let to_ = Field.canon to_ in
        let entities =
          List.map
            (fun (e' : Semantic.entity) ->
              let e' =
                if Field.name_equal e'.ename e.ename then
                  { e' with Semantic.ename = to_ }
                else e'
              in
              match e'.kind with
              | Semantic.Characterizing owner when Field.name_equal owner from_
                -> { e' with kind = Semantic.Characterizing to_ }
              | Semantic.Characterizing _ | Semantic.Defined -> e')
            schema.Semantic.entities
        in
        let assocs =
          List.map
            (fun (a : Semantic.assoc) ->
              { a with
                left = (if Field.name_equal a.left from_ then to_ else a.left);
                right = (if Field.name_equal a.right from_ then to_ else a.right);
              })
            schema.Semantic.assocs
        in
        Ok (rename_in_constraints { schema with entities; assocs }
              ~is_assoc:false ~from_ ~to_)
  | Rename_field { entity; from_; to_ } ->
      let* e = find_entity schema entity in
      (match Field.find e.fields from_ with
      | None -> Error (Fmt.str "%s has no field %s" entity from_)
      | Some f ->
          if Field.mem e.fields to_ then
            Error (Fmt.str "%s already has field %s" entity to_)
          else
            let to_ = Field.canon to_ in
            let fields =
              List.map
                (fun (g : Field.t) ->
                  if Field.name_equal g.name from_ then { f with Field.name = to_ }
                  else g)
                e.fields
            in
            let key =
              List.map
                (fun k -> if Field.name_equal k from_ then to_ else k)
                e.key
            in
            let schema =
              replace_entity schema { e with Semantic.fields; key }
            in
            let constraints =
              List.map
                (fun c ->
                  match c with
                  | Semantic.Field_not_null { entity = en; field }
                    when Field.name_equal en entity
                         && Field.name_equal field from_ ->
                      Semantic.Field_not_null { entity = en; field = to_ }
                  | Semantic.Field_not_null _ | Semantic.Total_left _
                  | Semantic.Total_right _ | Semantic.Participation_limit _ ->
                      c)
                schema.Semantic.constraints
            in
            Ok { schema with Semantic.constraints })
  | Rename_assoc { from_; to_ } ->
      let* a = find_assoc schema from_ in
      if Semantic.find_assoc schema to_ <> None then
        Error (Fmt.str "association %s already exists" to_)
      else
        let to_ = Field.canon to_ in
        let assocs =
          List.map
            (fun (a' : Semantic.assoc) ->
              if Field.name_equal a'.aname a.aname then
                { a' with Semantic.aname = to_ }
              else a')
            schema.Semantic.assocs
        in
        Ok (rename_in_constraints { schema with Semantic.assocs }
              ~is_assoc:true ~from_ ~to_)
  | Add_field { entity; field; default = _ } ->
      let* e = find_entity schema entity in
      if Field.mem e.fields field.Field.name then
        Error (Fmt.str "%s already has field %s" entity field.Field.name)
      else
        Ok (replace_entity schema { e with Semantic.fields = e.fields @ [ field ] })
  | Drop_field { entity; field } ->
      let* e = find_entity schema entity in
      if not (Field.mem e.fields field) then
        Error (Fmt.str "%s has no field %s" entity field)
      else if List.exists (Field.name_equal field) e.key then
        Error (Fmt.str "cannot drop key field %s.%s" entity field)
      else
        let fields =
          List.filter
            (fun (f : Field.t) -> not (Field.name_equal f.name field))
            e.fields
        in
        let constraints =
          List.filter
            (fun c ->
              match c with
              | Semantic.Field_not_null { entity = en; field = f } ->
                  not (Field.name_equal en entity && Field.name_equal f field)
              | Semantic.Total_left _ | Semantic.Total_right _
              | Semantic.Participation_limit _ -> true)
            schema.Semantic.constraints
        in
        Ok { (replace_entity schema { e with Semantic.fields })
             with Semantic.constraints }
  | Add_constraint c ->
      if List.mem c schema.Semantic.constraints then
        Error "constraint already present"
      else
        (* Re-validate through the smart constructor. *)
        (try
           Ok
             (Semantic.make
                ~constraints:(schema.Semantic.constraints @ [ c ])
                schema.Semantic.entities schema.Semantic.assocs)
         with Invalid_argument msg -> Error msg)
  | Drop_constraint c ->
      if not (List.mem c schema.Semantic.constraints) then
        Error "constraint not present"
      else
        Ok
          { schema with
            Semantic.constraints =
              List.filter (fun c' -> c' <> c) schema.Semantic.constraints;
          }
  | Widen_cardinality { assoc } ->
      let* a = find_assoc schema assoc in
      if a.card = Semantic.Many_to_many then
        Error (Fmt.str "%s is already many-to-many" assoc)
      else
        Ok
          { schema with
            Semantic.assocs =
              List.map
                (fun (a' : Semantic.assoc) ->
                  if Field.name_equal a'.aname a.aname then
                    { a' with Semantic.card = Semantic.Many_to_many }
                  else a')
                schema.Semantic.assocs;
          }
  | Interpose { through; new_entity; group_by; left_assoc; right_assoc } -> (
      let* a = find_assoc schema through in
      if a.card <> Semantic.One_to_many || a.fields <> [] then
        Error "INTERPOSE needs a simple (attribute-free, 1:N) association"
      else if Semantic.find_entity schema new_entity <> None then
        Error (Fmt.str "entity %s already exists" new_entity)
      else
        let* member = find_entity schema a.right in
        let missing =
          List.filter (fun g -> not (Field.mem member.fields g)) group_by
        in
        if missing <> [] then
          Error
            (Fmt.str "%s lacks grouped fields %s" a.right
               (String.concat ", " missing))
        else if
          List.exists
            (fun g -> List.exists (Field.name_equal g) member.key)
            group_by
        then Error "cannot group a key field into the interposed entity"
        else
          try
            let nfields, nkey =
              interpose_entity_fields schema ~through ~group_by
            in
            let n = Semantic.entity new_entity nfields ~key:nkey in
            let member' =
              { member with
                Semantic.fields =
                  List.filter
                    (fun (f : Field.t) ->
                      not (List.exists (Field.name_equal f.name) group_by))
                    member.fields;
              }
            in
            let la =
              Semantic.assoc left_assoc ~left:a.left ~right:new_entity ()
            in
            let ra =
              Semantic.assoc right_assoc ~left:new_entity ~right:a.right ()
            in
            let entities =
              List.map
                (fun (e : Semantic.entity) ->
                  if Field.name_equal e.ename member.ename then member' else e)
                schema.Semantic.entities
              @ [ n ]
            in
            let assocs =
              List.filter
                (fun (a' : Semantic.assoc) ->
                  not (Field.name_equal a'.aname through))
                schema.Semantic.assocs
              @ [ la; ra ]
            in
            (* Totality of the old association becomes totality of both
               halves; other constraints on it are dropped (an issue the
               supervisor reports). *)
            let constraints =
              List.concat_map
                (fun c ->
                  match c with
                  | Semantic.Total_right x when Field.name_equal x through ->
                      [ Semantic.Total_right left_assoc;
                        Semantic.Total_right right_assoc;
                      ]
                  | Semantic.Total_left x when Field.name_equal x through -> []
                  | Semantic.Participation_limit { assoc; _ }
                    when Field.name_equal assoc through -> []
                  | Semantic.Total_left _ | Semantic.Total_right _
                  | Semantic.Participation_limit _ | Semantic.Field_not_null _
                    -> [ c ])
                schema.Semantic.constraints
            in
            Ok (Semantic.make ~constraints entities assocs)
          with Invalid_argument msg -> Error msg)
  | Restrict_extension { entity; qual } ->
      let* e = find_entity schema entity in
      let unknown =
        List.filter (fun f -> not (Field.mem e.fields f)) (Cond.fields qual)
      in
      if unknown <> [] then
        Error
          (Fmt.str "%s has no field(s) %s" entity (String.concat ", " unknown))
      else Ok schema
  | Collapse { left_assoc; right_assoc; removed_entity; restored_assoc } -> (
      let* la = find_assoc schema left_assoc in
      let* ra = find_assoc schema right_assoc in
      let* n = find_entity schema removed_entity in
      if not (Field.name_equal la.right n.ename && Field.name_equal ra.left n.ename)
      then Error "COLLAPSE: associations do not meet at the removed entity"
      else if Semantic.find_assoc schema restored_assoc <> None then
        Error (Fmt.str "association %s already exists" restored_assoc)
      else
        let* owner = find_entity schema la.left in
        let* member = find_entity schema ra.right in
        (* N's own (non-owner-key) fields return to the member. *)
        let own_fields =
          List.filter
            (fun (f : Field.t) ->
              not (List.exists (Field.name_equal f.name) owner.key))
            n.fields
        in
        let member' =
          { member with Semantic.fields = member.fields @ own_fields }
        in
        let restored =
          Semantic.assoc restored_assoc ~left:owner.ename ~right:member.ename ()
        in
        let entities =
          List.filter_map
            (fun (e : Semantic.entity) ->
              if Field.name_equal e.ename n.ename then None
              else if Field.name_equal e.ename member.ename then Some member'
              else Some e)
            schema.Semantic.entities
        in
        let assocs =
          List.filter
            (fun (a : Semantic.assoc) ->
              not
                (Field.name_equal a.aname left_assoc
                || Field.name_equal a.aname right_assoc))
            schema.Semantic.assocs
          @ [ restored ]
        in
        let was_total name =
          List.exists
            (function
              | Semantic.Total_right x -> Field.name_equal x name
              | Semantic.Total_left _ | Semantic.Participation_limit _
              | Semantic.Field_not_null _ -> false)
            schema.Semantic.constraints
        in
        let constraints =
          List.filter
            (fun c ->
              match c with
              | Semantic.Total_left x | Semantic.Total_right x ->
                  not
                    (Field.name_equal x left_assoc
                    || Field.name_equal x right_assoc)
              | Semantic.Participation_limit { assoc; _ } ->
                  not
                    (Field.name_equal assoc left_assoc
                    || Field.name_equal assoc right_assoc)
              | Semantic.Field_not_null { entity; _ } ->
                  not (Field.name_equal entity n.ename))
            schema.Semantic.constraints
          @
          if was_total left_assoc && was_total right_assoc then
            [ Semantic.Total_right restored_assoc ]
          else []
        in
        try Ok (Semantic.make ~constraints entities assocs)
        with Invalid_argument msg -> Error msg)

let apply_exn schema op =
  match apply schema op with
  | Ok s -> s
  | Error msg -> invalid_arg ("Schema_change.apply_exn: " ^ msg)

let apply_all schema ops =
  List.fold_left
    (fun acc op -> Result.bind acc (fun s -> apply s op))
    (Ok schema) ops

let pp_op ppf = function
  | Rename_entity { from_; to_ } -> Fmt.pf ppf "RENAME ENTITY %s TO %s" from_ to_
  | Rename_field { entity; from_; to_ } ->
      Fmt.pf ppf "RENAME FIELD %s.%s TO %s" entity from_ to_
  | Rename_assoc { from_; to_ } -> Fmt.pf ppf "RENAME ASSOC %s TO %s" from_ to_
  | Add_field { entity; field; default } ->
      Fmt.pf ppf "ADD FIELD %s.%a DEFAULT %a" entity Field.pp field Value.pp
        default
  | Drop_field { entity; field } -> Fmt.pf ppf "DROP FIELD %s.%s" entity field
  | Add_constraint c -> Fmt.pf ppf "ADD CONSTRAINT %a" Semantic.pp_constraint c
  | Drop_constraint c ->
      Fmt.pf ppf "DROP CONSTRAINT %a" Semantic.pp_constraint c
  | Widen_cardinality { assoc } -> Fmt.pf ppf "WIDEN %s TO M:N" assoc
  | Interpose { through; new_entity; group_by; left_assoc; right_assoc } ->
      Fmt.pf ppf "INTERPOSE %s INTO %s GROUPING (%s) AS %s,%s" new_entity
        through
        (String.concat ", " group_by)
        left_assoc right_assoc
  | Collapse { left_assoc; right_assoc; removed_entity; restored_assoc } ->
      Fmt.pf ppf "COLLAPSE %s THROUGH %s,%s RESTORING %s" removed_entity
        left_assoc right_assoc restored_assoc
  | Restrict_extension { entity; qual } ->
      Fmt.pf ppf "RESTRICT %s DROPPING %a" entity Cond.pp qual

let pp_class ppf c =
  Fmt.string ppf
    (match c with
    | Renaming -> "renaming"
    | Field_extension -> "field-extension"
    | Field_deletion -> "field-deletion"
    | Constraint_change -> "constraint-change"
    | Cardinality_generalization -> "cardinality-generalization"
    | Structural_split -> "structural-split"
    | Structural_merge -> "structural-merge"
    | Extension_reduction -> "extension-reduction")

let show_op op = Fmt.str "%a" pp_op op
let show_class c = Fmt.str "%a" pp_class c
