(** The employee/department database of section 4.1, used for the Su
    access-pattern examples: EMP(E#,ENAME,AGE), DEPT(D#,DNAME,MGR) and
    the EMP-DEPT(E#,D#,YEAR-OF-SERVICE) association. *)

open Ccv_model

val schema : Semantic.t
val emp : string
val dept : string
val emp_dept : string

val instance : unit -> Sdb.t
val scaled : seed:int -> n:int -> Sdb.t
