(** The Maryland company database of Figure 4.2: DIV and EMP with the
    DIV-EMP owner-coupled association (each employee belongs to exactly
    one division).  EMP carries DEPT-NAME as a plain field — the field
    the Figure 4.4 restructuring promotes into a DEPT record between
    DIV and EMP. *)

open Ccv_model

val schema : Semantic.t
val div : string
val emp : string
val div_emp : string

(** Names used by the Figure 4.4 restructuring. *)
val dept : string

val div_dept : string
val dept_emp : string

val instance : unit -> Sdb.t

(** [n] employees across [max 2 (n/10)] divisions, 3 departments per
    division. *)
val scaled : seed:int -> n:int -> Sdb.t
