open Ccv_common
open Ccv_model

let course = "COURSE"
let semester = "SEMESTER"
let offering = "COURSE-OFFERING"

let schema =
  Semantic.make
    ~constraints:
      [ Semantic.Participation_limit { assoc = offering; per_left_max = 2 };
        Semantic.Field_not_null { entity = course; field = "CNAME" };
      ]
    [ Semantic.entity course
        [ Field.make "CNO" Value.Tstr; Field.make "CNAME" Value.Tstr ]
        ~key:[ "CNO" ];
      Semantic.entity semester
        [ Field.make "S" Value.Tstr; Field.make "YEAR" Value.Tint ]
        ~key:[ "S" ];
    ]
    [ Semantic.assoc offering ~left:course ~right:semester
        ~fields:[ Field.make "INSTRUCTOR" Value.Tstr ]
        ~card:Semantic.Many_to_many ();
    ]

let courses =
  [ ("C101", "DATABASES"); ("C102", "COMPILERS"); ("C201", "NETWORKS");
    ("C202", "GRAPHICS"); ("C301", "OPERATING-SYSTEMS");
  ]

let semesters = [ ("F78", 1978); ("S79", 1979); ("F79", 1979) ]

let offerings =
  [ ("C101", "F78", "TAYLOR"); ("C101", "S79", "FRY");
    ("C102", "F78", "SHNEIDERMAN"); ("C201", "S79", "SMITH");
    ("C202", "F79", "SU"); ("C301", "F79", "TAYLOR");
  ]

let instance () =
  let db = Sdb.create schema in
  let db =
    List.fold_left
      (fun db (cno, cname) ->
        Sdb.insert_entity_exn db course
          (Row.of_list [ ("CNO", Value.Str cno); ("CNAME", Value.Str cname) ]))
      db courses
  in
  let db =
    List.fold_left
      (fun db (s, year) ->
        Sdb.insert_entity_exn db semester
          (Row.of_list [ ("S", Value.Str s); ("YEAR", Value.Int year) ]))
      db semesters
  in
  List.fold_left
    (fun db (cno, s, instructor) ->
      Sdb.link_exn db offering
        ~attrs:(Row.of_list [ ("INSTRUCTOR", Value.Str instructor) ])
        ~left:[ Value.Str cno ] ~right:[ Value.Str s ])
    db offerings

let scaled ~seed ~n =
  let rng = Prng.create ~seed in
  let db = Sdb.create schema in
  let n_sem = (n / 4) + 1 in
  let db =
    let rec go db i =
      if i >= n then db
      else
        let row =
          Row.of_list
            [ ("CNO", Value.Str (Printf.sprintf "C%04d" i));
              ("CNAME", Value.Str (Prng.word rng 8));
            ]
        in
        go (Sdb.insert_entity_exn db course row) (i + 1)
    in
    go db 0
  in
  let db =
    let rec go db i =
      if i >= n_sem then db
      else
        let row =
          Row.of_list
            [ ("S", Value.Str (Printf.sprintf "S%03d" i));
              ("YEAR", Value.Int (1970 + (i mod 10)));
            ]
        in
        go (Sdb.insert_entity_exn db semester row) (i + 1)
    in
    go db 0
  in
  (* Up to two offerings per course, respecting the participation
     limit by construction. *)
  let rec offer db i =
    if i >= n then db
    else
      let count = Prng.int rng 3 in
      let rec add db picked j =
        if j >= count then db
        else
          let s = Prng.int rng n_sem in
          if List.mem s picked then add db picked (j + 1)
          else
            let db =
              Sdb.link_exn db offering
                ~attrs:
                  (Row.of_list [ ("INSTRUCTOR", Value.Str (Prng.word rng 6)) ])
                ~left:[ Value.Str (Printf.sprintf "C%04d" i) ]
                ~right:[ Value.Str (Printf.sprintf "S%03d" s) ]
            in
            add db (s :: picked) (j + 1)
      in
      offer (add db [] 0) (i + 1)
  in
  offer db 0
