(** The paper's worked example programs, as abstract programs over the
    canonical schemas, plus small update/insert/delete programs used by
    tests and experiments. *)

open Ccv_abstract

(** §4.1: "Find the names of employees who work for Manager Smith for
    more than ten years" — the paper's four-step access-pattern
    sequence (ACCESS DEPT via DEPT; ACCESS EMP-DEPT via DEPT; ACCESS
    EMP via EMP-DEPT; RETRIEVE). *)
val su_manager_query : Aprog.t

(** §4.1: "Get the names of those employees who have worked for
    department D2 for three years" — the SEQUEL/CODASYL template
    example. *)
val su_d2_query : Aprog.t

(** §4.2 example 1: employees older than 30 (Figure 4.2 schema). *)
val maryland_age_query : Aprog.t

(** §4.2 example 2: employees in the SALES department of the MACHINERY
    division. *)
val maryland_sales_query : Aprog.t

(** School: offerings of a course with instructors (Figure 3.1). *)
val school_offerings_query : Aprog.t

(** Company: guarded insert of an employee into a division (checks the
    division exists first, then inserts connected). *)
val company_hire : name:string -> dept:string -> age:int -> division:string -> Aprog.t

(** Company: raise the recorded age of every employee of a division. *)
val company_birthday : division:string -> Aprog.t

(** Company: delete a division and everything in it (cascade). *)
val company_close_division : division:string -> Aprog.t

(** All retrieval programs with the schema they run against, for table
    driving. *)
val retrievals : (string * Ccv_model.Semantic.t * Aprog.t) list
