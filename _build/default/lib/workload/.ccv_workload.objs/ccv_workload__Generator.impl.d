lib/workload/generator.ml: Apattern Aprog Ccv_abstract Ccv_common Ccv_model Ccv_network Cond Dml Field Fmt Host List Option Printf Prng Row Sdb Semantic Value
