lib/workload/programs.mli: Aprog Ccv_abstract Ccv_model
