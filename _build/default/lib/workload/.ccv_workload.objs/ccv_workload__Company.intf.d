lib/workload/company.mli: Ccv_model Sdb Semantic
