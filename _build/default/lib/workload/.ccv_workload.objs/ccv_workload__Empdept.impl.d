lib/workload/empdept.ml: Ccv_common Ccv_model Field List Printf Prng Row Sdb Semantic Value
