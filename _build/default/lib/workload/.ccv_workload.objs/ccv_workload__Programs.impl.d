lib/workload/programs.ml: Apattern Aprog Ccv_abstract Ccv_common Company Cond Empdept Host School Value
