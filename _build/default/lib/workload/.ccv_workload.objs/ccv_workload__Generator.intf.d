lib/workload/generator.mli: Aprog Ccv_abstract Ccv_common Ccv_model Ccv_network Format Host Prng Sdb Semantic
