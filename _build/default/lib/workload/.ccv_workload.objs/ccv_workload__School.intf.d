lib/workload/school.mli: Ccv_model Sdb Semantic
