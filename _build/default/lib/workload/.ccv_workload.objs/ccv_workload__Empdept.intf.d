lib/workload/empdept.mli: Ccv_model Sdb Semantic
