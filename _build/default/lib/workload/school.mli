(** The school database of section 3.1 / Figures 3.1a-b: COURSE,
    SEMESTER and the COURSE-OFFERING association between them (with
    the INSTRUCTOR attribute whose null-ness the paper discusses).
    Constraint: a course may not be offered more than twice per
    semester pair — the paper's "numeric limits on relationship
    participation" example is encoded as a participation limit. *)

open Ccv_model

val schema : Semantic.t

(** Names, to avoid stringly-typed tests. *)
val course : string

val semester : string
val offering : string

(** The small instance used by examples and unit tests. *)
val instance : unit -> Sdb.t

(** A seeded scaled instance: [n] courses, [n/4 + 1] semesters, roughly
    [2n] offerings. *)
val scaled : seed:int -> n:int -> Sdb.t
