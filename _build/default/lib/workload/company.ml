open Ccv_common
open Ccv_model

let div = "DIV"
let emp = "EMP"
let div_emp = "DIV-EMP"
let dept = "DEPT"
let div_dept = "DIV-DEPT"
let dept_emp = "DEPT-EMP"

let schema =
  Semantic.make
    ~constraints:[ Semantic.Total_right div_emp ]
    [ Semantic.entity div
        [ Field.make "DIV-NAME" Value.Tstr; Field.make "DIV-LOC" Value.Tstr ]
        ~key:[ "DIV-NAME" ];
      Semantic.entity emp
        [ Field.make "EMP-NAME" Value.Tstr;
          Field.make "DEPT-NAME" Value.Tstr;
          Field.make "AGE" Value.Tint;
        ]
        ~key:[ "EMP-NAME" ];
    ]
    [ Semantic.assoc div_emp ~left:div ~right:emp () ]

let divisions = [ ("MACHINERY", "DETROIT"); ("CHEMICALS", "HOUSTON") ]

let employees =
  [ ("ADAMS", "SALES", 34, "MACHINERY"); ("BAKER", "SALES", 28, "MACHINERY");
    ("CLARK", "DESIGN", 45, "MACHINERY"); ("DAVIS", "SALES", 31, "CHEMICALS");
    ("EVANS", "LABS", 52, "CHEMICALS"); ("FROST", "DESIGN", 29, "MACHINERY");
    ("GREEN", "LABS", 38, "CHEMICALS");
  ]

let instance () =
  let db = Sdb.create schema in
  let db =
    List.fold_left
      (fun db (name, loc) ->
        Sdb.insert_entity_exn db div
          (Row.of_list
             [ ("DIV-NAME", Value.Str name); ("DIV-LOC", Value.Str loc) ]))
      db divisions
  in
  List.fold_left
    (fun db (name, dept_name, age, division) ->
      let db =
        Sdb.insert_entity_exn db emp
          (Row.of_list
             [ ("EMP-NAME", Value.Str name);
               ("DEPT-NAME", Value.Str dept_name);
               ("AGE", Value.Int age);
             ])
      in
      Sdb.link_exn db div_emp ~left:[ Value.Str division ]
        ~right:[ Value.Str name ])
    db employees

let scaled ~seed ~n =
  let rng = Prng.create ~seed in
  let n_div = max 2 (n / 10) in
  let depts = [ "SALES"; "DESIGN"; "LABS" ] in
  let db = Sdb.create schema in
  let db =
    let rec go db i =
      if i >= n_div then db
      else
        let row =
          Row.of_list
            [ ("DIV-NAME", Value.Str (Printf.sprintf "DIV%03d" i));
              ("DIV-LOC", Value.Str (Prng.word rng 7));
            ]
        in
        go (Sdb.insert_entity_exn db div row) (i + 1)
    in
    go db 0
  in
  let rec go db i =
    if i >= n then db
    else
      let name = Printf.sprintf "E%05d" i in
      let division = Printf.sprintf "DIV%03d" (Prng.int rng n_div) in
      let db =
        Sdb.insert_entity_exn db emp
          (Row.of_list
             [ ("EMP-NAME", Value.Str name);
               ("DEPT-NAME", Value.Str (Prng.pick rng depts));
               ("AGE", Value.Int (Prng.int_in rng 20 65));
             ])
      in
      go
        (Sdb.link_exn db div_emp ~left:[ Value.Str division ]
           ~right:[ Value.Str name ])
        (i + 1)
  in
  go db 0
