open Ccv_common
open Ccv_model

let emp = "EMP"
let dept = "DEPT"
let emp_dept = "EMP-DEPT"

let schema =
  Semantic.make
    [ Semantic.entity emp
        [ Field.make "E#" Value.Tstr;
          Field.make "ENAME" Value.Tstr;
          Field.make "AGE" Value.Tint;
        ]
        ~key:[ "E#" ];
      Semantic.entity dept
        [ Field.make "D#" Value.Tstr;
          Field.make "DNAME" Value.Tstr;
          Field.make "MGR" Value.Tstr;
        ]
        ~key:[ "D#" ];
    ]
    [ Semantic.assoc emp_dept ~left:emp ~right:dept
        ~fields:[ Field.make "YEAR-OF-SERVICE" Value.Tint ]
        ~card:Semantic.Many_to_many ();
    ]

let emps =
  [ ("E1", "JONES", 42); ("E2", "BLAKE", 35); ("E3", "WARD", 28);
    ("E4", "KING", 55); ("E5", "SCOTT", 47);
  ]

let depts =
  [ ("D1", "ACCOUNTING", "SMITH"); ("D2", "RESEARCH", "SMITH");
    ("D3", "SALES", "ALLEN");
  ]

let links =
  [ ("E1", "D1", 12); ("E2", "D2", 3); ("E3", "D2", 11); ("E4", "D3", 20);
    ("E5", "D1", 2); ("E5", "D3", 6);
  ]

let instance () =
  let db = Sdb.create schema in
  let db =
    List.fold_left
      (fun db (e, name, age) ->
        Sdb.insert_entity_exn db emp
          (Row.of_list
             [ ("E#", Value.Str e); ("ENAME", Value.Str name);
               ("AGE", Value.Int age);
             ]))
      db emps
  in
  let db =
    List.fold_left
      (fun db (d, name, mgr) ->
        Sdb.insert_entity_exn db dept
          (Row.of_list
             [ ("D#", Value.Str d); ("DNAME", Value.Str name);
               ("MGR", Value.Str mgr);
             ]))
      db depts
  in
  List.fold_left
    (fun db (e, d, years) ->
      Sdb.link_exn db emp_dept
        ~attrs:(Row.of_list [ ("YEAR-OF-SERVICE", Value.Int years) ])
        ~left:[ Value.Str e ] ~right:[ Value.Str d ])
    db links

let scaled ~seed ~n =
  let rng = Prng.create ~seed in
  let n_dept = max 3 (n / 8) in
  let db = Sdb.create schema in
  let db =
    let rec go db i =
      if i >= n_dept then db
      else
        let row =
          Row.of_list
            [ ("D#", Value.Str (Printf.sprintf "D%04d" i));
              ("DNAME", Value.Str (Prng.word rng 8));
              ("MGR", Value.Str (Prng.word rng 6));
            ]
        in
        go (Sdb.insert_entity_exn db dept row) (i + 1)
    in
    go db 0
  in
  let rec go db i =
    if i >= n then db
    else
      let e = Printf.sprintf "E%05d" i in
      let db =
        Sdb.insert_entity_exn db emp
          (Row.of_list
             [ ("E#", Value.Str e);
               ("ENAME", Value.Str (Prng.word rng 6));
               ("AGE", Value.Int (Prng.int_in rng 20 65));
             ])
      in
      let n_links = 1 + Prng.int rng 2 in
      let rec add db picked j =
        if j >= n_links then db
        else
          let d = Prng.int rng n_dept in
          if List.mem d picked then add db picked (j + 1)
          else
            let db =
              Sdb.link_exn db emp_dept
                ~attrs:
                  (Row.of_list
                     [ ("YEAR-OF-SERVICE", Value.Int (Prng.int_in rng 0 30)) ])
                ~left:[ Value.Str e ]
                ~right:[ Value.Str (Printf.sprintf "D%04d" d) ]
            in
            add db (d :: picked) (j + 1)
      in
      go (add db [] 0) (i + 1)
  in
  go db 0
