open Ccv_common
open Ccv_abstract

let v = Host.v
let str = Host.str
let int = Host.int

let eq f s = Cond.Cmp (Cond.Eq, Cond.Field f, Cond.Const (Value.Str s))
let gt f n = Cond.Cmp (Cond.Gt, Cond.Field f, Cond.Const (Value.Int n))

let su_manager_query =
  { Aprog.name = "SU-MANAGER-SMITH";
    body =
      [ Aprog.For_each
          { query =
              [ Apattern.Self { target = Empdept.dept; qual = eq "MGR" "SMITH" };
                Apattern.Assoc_via
                  { assoc = Empdept.emp_dept;
                    source = Empdept.dept;
                    qual = gt "YEAR-OF-SERVICE" 10;
                  };
                Apattern.Via_assoc
                  { target = Empdept.emp;
                    assoc = Empdept.emp_dept;
                    qual = Cond.True;
                  };
              ];
            body = [ Aprog.Display [ v "EMP.ENAME" ] ];
          }
      ];
  }

let su_d2_query =
  { Aprog.name = "SU-D2-THREE-YEARS";
    body =
      [ Aprog.For_each
          { query =
              [ Apattern.Self { target = Empdept.dept; qual = eq "D#" "D2" };
                Apattern.Assoc_via
                  { assoc = Empdept.emp_dept;
                    source = Empdept.dept;
                    qual =
                      Cond.Cmp
                        ( Cond.Eq,
                          Cond.Field "YEAR-OF-SERVICE",
                          Cond.Const (Value.Int 3) );
                  };
                Apattern.Via_assoc
                  { target = Empdept.emp;
                    assoc = Empdept.emp_dept;
                    qual = Cond.True;
                  };
              ];
            body = [ Aprog.Display [ v "EMP.ENAME" ] ];
          }
      ];
  }

let maryland_age_query =
  { Aprog.name = "MD-AGE-OVER-30";
    body =
      [ Aprog.For_each
          { query = [ Apattern.Self { target = Company.emp; qual = gt "AGE" 30 } ];
            body = [ Aprog.Display [ v "EMP.EMP-NAME" ] ];
          }
      ];
  }

let maryland_sales_query =
  { Aprog.name = "MD-MACHINERY-SALES";
    body =
      [ Aprog.For_each
          { query =
              [ Apattern.Self
                  { target = Company.div; qual = eq "DIV-NAME" "MACHINERY" };
                Apattern.Assoc_via
                  { assoc = Company.div_emp;
                    source = Company.div;
                    qual = Cond.True;
                  };
                Apattern.Via_assoc
                  { target = Company.emp;
                    assoc = Company.div_emp;
                    qual = eq "DEPT-NAME" "SALES";
                  };
              ];
            body = [ Aprog.Display [ v "EMP.EMP-NAME" ] ];
          }
      ];
  }

let school_offerings_query =
  { Aprog.name = "SCHOOL-OFFERINGS";
    body =
      [ Aprog.For_each
          { query =
              [ Apattern.Self { target = School.course; qual = Cond.True };
                Apattern.Assoc_via
                  { assoc = School.offering;
                    source = School.course;
                    qual = Cond.True;
                  };
                Apattern.Via_assoc
                  { target = School.semester;
                    assoc = School.offering;
                    qual = Cond.True;
                  };
              ];
            body =
              [ Aprog.Display
                  [ v "COURSE.CNO"; v "SEMESTER.S";
                    v "COURSE-OFFERING.INSTRUCTOR";
                  ];
              ];
          }
      ];
  }

let company_hire ~name ~dept ~age ~division =
  { Aprog.name = "COMPANY-HIRE";
    body =
      [ Aprog.First
          { query =
              [ Apattern.Self
                  { target = Company.div;
                    qual =
                      Cond.Cmp
                        ( Cond.Eq,
                          Cond.Field "DIV-NAME",
                          Cond.Const (Value.Str division) );
                  };
              ];
            present =
              [ Aprog.Insert
                  { entity = Company.emp;
                    values =
                      [ ("EMP-NAME", str name);
                        ("DEPT-NAME", str dept);
                        ("AGE", int age);
                      ];
                    connects = [ (Company.div_emp, [ str division ]) ];
                  };
                Aprog.Display [ str "HIRED"; str name ];
              ];
            absent = [ Aprog.Display [ str "NO SUCH DIVISION"; str division ] ];
          }
      ];
  }

let company_birthday ~division =
  { Aprog.name = "COMPANY-BIRTHDAY";
    body =
      [ Aprog.Update
          { query =
              [ Apattern.Self
                  { target = Company.div;
                    qual =
                      Cond.Cmp
                        ( Cond.Eq,
                          Cond.Field "DIV-NAME",
                          Cond.Const (Value.Str division) );
                  };
                Apattern.Assoc_via
                  { assoc = Company.div_emp;
                    source = Company.div;
                    qual = Cond.True;
                  };
                Apattern.Via_assoc
                  { target = Company.emp;
                    assoc = Company.div_emp;
                    qual = Cond.True;
                  };
              ];
            assigns =
              [ ("AGE", Cond.Add (Cond.Var "EMP.AGE", Cond.Const (Value.Int 1)))
              ];
          };
        Aprog.Display [ str "AGES BUMPED IN"; str division ];
      ];
  }

let company_close_division ~division =
  { Aprog.name = "COMPANY-CLOSE-DIVISION";
    body =
      [ Aprog.Delete
          { query =
              [ Apattern.Self
                  { target = Company.div;
                    qual =
                      Cond.Cmp
                        ( Cond.Eq,
                          Cond.Field "DIV-NAME",
                          Cond.Const (Value.Str division) );
                  };
              ];
            cascade = true;
          };
        Aprog.Display [ str "CLOSED"; str division ];
      ];
  }

let retrievals =
  [ ("su-manager", Empdept.schema, su_manager_query);
    ("su-d2", Empdept.schema, su_d2_query);
    ("md-age", Company.schema, maryland_age_query);
    ("md-sales", Company.schema, maryland_sales_query);
    ("school-offerings", School.schema, school_offerings_query);
  ]
