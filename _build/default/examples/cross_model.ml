(* Cross-model conversion: §4.1's point that "since the conversion
   takes place at a level of abstraction that is removed from an
   actual DBMS language, conversion from one DBMS to another ... is
   possible."

   The EMP-DEPT query of §4.1 ("employees who work for Manager Smith
   for more than ten years") is expressed once as an access-pattern
   sequence, generated into SEQUEL cursors and into CODASYL DML, run
   on the corresponding realizations of one instance, and judged
   equivalent.  Then a CODASYL source program is converted wholesale
   to run against the relational database.

     dune exec examples/cross_model.exe *)

open Ccv_common
open Ccv_abstract
open Ccv_transform
open Ccv_convert
module W = Ccv_workload

let () =
  let prog = W.Programs.su_manager_query in
  Printf.printf "§4.1 access-pattern sequence:\n%s\n\n"
    (Fmt.str "%a" Apattern.pp (List.hd (Aprog.queries prog)));

  let sdb = W.Empdept.instance () in

  (* One abstract program, three machines. *)
  List.iter
    (fun (name, model) ->
      let mapping, db = Supervisor.realize model sdb in
      match Generator.generate mapping prog with
      | Error e -> Printf.printf "%s: not generatable (%s)\n\n" name e
      | Ok g ->
          let r = Engines.run db g.Generator.program in
          Printf.printf "%s run: [%s]  (%d accesses)\n" name
            (String.concat "; " (Io_trace.terminal_lines r.Engines.trace))
            r.Engines.accesses)
    [ ("relational  ", Mapping.Rel);
      ("network     ", Mapping.Net);
      ("hierarchical", Mapping.Hier);
    ];

  (* Whole-program conversion network -> relational. *)
  Printf.printf "\nConverting the CODASYL program to embedded SQL:\n\n";
  let net_mapping = Supervisor.mapping_for Mapping.Net W.Empdept.schema in
  let source =
    match Generator.generate net_mapping prog with
    | Ok g -> g.Generator.program
    | Error e -> failwith e
  in
  let req =
    { Supervisor.source_schema = W.Empdept.schema;
      source_model = Mapping.Net;
      ops = [];
      target_model = Mapping.Rel;
    }
  in
  match Supervisor.convert_and_verify req source sdb with
  | Error (stage, e) -> Printf.printf "failed at %s: %s\n" stage e
  | Ok outcome ->
      Printf.printf "%s\n"
        (Fmt.str "%a" Engines.pp_program
           outcome.Supervisor.report.Supervisor.target_program);
      Printf.printf "verdict: %s\n"
        (Fmt.str "%a" Equivalence.pp_verdict outcome.Supervisor.verdict)
