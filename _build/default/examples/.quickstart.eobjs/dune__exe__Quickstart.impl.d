examples/quickstart.ml: Aprog Ccv_abstract Ccv_convert Ccv_transform Ccv_workload Engines Equivalence Fmt Generator List Mapping Printf Schema_change Supervisor
