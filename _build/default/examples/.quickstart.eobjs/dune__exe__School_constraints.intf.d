examples/school_constraints.mli:
