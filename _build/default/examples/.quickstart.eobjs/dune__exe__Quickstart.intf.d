examples/quickstart.mli:
