examples/cross_model.ml: Apattern Aprog Ccv_abstract Ccv_common Ccv_convert Ccv_transform Ccv_workload Engines Equivalence Fmt Generator Io_trace List Mapping Printf String Supervisor
