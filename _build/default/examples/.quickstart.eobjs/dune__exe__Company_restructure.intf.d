examples/company_restructure.mli:
