examples/school_constraints.ml: Ccv_common Ccv_model Ccv_network Ccv_transform Ccv_workload List Mapping Printf Result Row Sdb Status Value
