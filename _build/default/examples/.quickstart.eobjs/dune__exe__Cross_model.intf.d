examples/cross_model.mli:
