(* The paper's worked example in its own surface syntax: parse the
   Figure 4.3 DDL, parse the two §4.2 FIND statements, apply the
   Figure 4.2 -> Figure 4.4 restructuring, and print the rewritten
   FINDs next to the paper's expected result.

     dune exec examples/company_restructure.exe *)

open Ccv_abstract
open Ccv_transform
open Ccv_convert
open Ccv_frontend
module W = Ccv_workload

let fig43_text =
  {|SCHEMA NAME IS COMPANY-NAME
RECORD SECTION;
  RECORD NAME IS DIV.
  FIELDS ARE.
    DIV-NAME PIC X(20).
    DIV-LOC PIC X(10).
  END RECORD.
  RECORD NAME IS EMP.
  FIELDS ARE.
    EMP-NAME PIC X(25).
    DEPT-NAME PIC X(5).
    AGE PIC 9(2).
    DIV-NAME VIRTUAL
      VIA DIV-EMP
      USING DIV-NAME.
  END RECORD.
END RECORD SECTION.
SET SECTION.
  SET NAME IS ALL-DIV.
  OWNER IS SYSTEM.
  MEMBER IS DIV.
  SET KEYS ARE (DIV-NAME).
  END SET.
  SET NAME IS ALL-EMP.
  OWNER IS SYSTEM.
  MEMBER IS EMP.
  SET KEYS ARE (EMP-NAME).
  END SET.
  SET NAME IS DIV-EMP.
  OWNER IS DIV.
  MEMBER IS EMP.
  SET KEYS ARE (EMP-NAME).
  END SET.
END SET SECTION.
END SCHEMA.|}

let interpose =
  Schema_change.Interpose
    { through = "DIV-EMP";
      new_entity = "DEPT";
      group_by = [ "DEPT-NAME" ];
      left_assoc = "DIV-DEPT";
      right_assoc = "DEPT-EMP";
    }

let () =
  let ddl = Ddl.parse fig43_text in
  Printf.printf "Parsed Figure 4.3 schema (%d records, %d sets)\n\n"
    (List.length ddl.Ddl.records)
    (List.length ddl.Ddl.sets);

  (* The paper's two FIND statements. *)
  let finds =
    [ "FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP(AGE > 30))";
      "FIND(EMP: SYSTEM, ALL-DIV, DIV(DIV-NAME = 'MACHINERY'), DIV-EMP, \
       EMP(DEPT-NAME = 'SALES'))";
    ]
  in
  List.iter
    (fun text ->
      let f = Dml_parse.parse_find ddl text in
      Printf.printf "source:    %s\n" text;
      (* Use the canonical company schema (same structure as the DDL)
         so the restructuring names line up. *)
      let wrapped =
        { Aprog.name = "F";
          body = [ Aprog.For_each { query = f.Dml_parse.query; body = [] } ];
        }
      in
      match Rules.convert W.Company.schema interpose wrapped with
      | Error e -> Printf.printf "converter refused: %s\n\n" e
      | Ok (converted, issues) ->
          let query' =
            match converted.Aprog.body with
            | [ Aprog.For_each { query; _ } ] -> query
            | _ -> assert false
          in
          Printf.printf "converted: %s\n"
            (Dml_parse.find_of_query ~target:"EMP" query');
          List.iter (fun i -> Printf.printf "  note: %s\n" i) issues;
          (* Operational check on the canonical instance. *)
          let display = [ Aprog.Display [ Host.v "EMP.EMP-NAME" ] ] in
          let prog q =
            { Aprog.name = "F";
              body = [ Aprog.For_each { query = q; body = display } ];
            }
          in
          let sdb = W.Company.instance () in
          let before = Ainterp.run sdb (prog f.Dml_parse.query) in
          let sdb', _ = Result.get_ok (Data_translate.translate sdb interpose) in
          let after = Ainterp.run sdb' (prog query') in
          Printf.printf "verdict:   %s\n\n"
            (Fmt.str "%a" Equivalence.pp_verdict
               (Equivalence.compare_traces before.Ainterp.trace
                  after.Ainterp.trace)))
    finds;

  (* The paper's expected rewrite of example 2, for comparison. *)
  Printf.printf
    "paper:     FIND(EMP: SYSTEM, ALL-DIV, DIV(DIV-NAME = 'MACHINERY'),\n\
    \                DIV-DEPT, DEPT(DEPT-NAME = 'SALES'), DEPT-EMP, EMP)\n"
