(* Section 3.1's integrity-constraint discussion, executable: the
   school database with its existence constraint (a course offering
   needs its course and semester), the participation limit (a course
   is offered at most twice), and the ERASE-cascade hazard.

     dune exec examples/school_constraints.exe *)

open Ccv_common
open Ccv_model
open Ccv_transform
module W = Ccv_workload
module Ndb = Ccv_network.Ndb

let show label = function
  | Ok _ -> Printf.printf "  %-45s accepted\n" label
  | Error s -> Printf.printf "  %-45s %s\n" label (Status.show s)

let () =
  let sdb = W.School.instance () in
  Printf.printf "School database (Figure 3.1): %d instances\n\n"
    (Sdb.total_instances sdb);

  Printf.printf "Declarative enforcement at the semantic level:\n";
  show "offering for missing course C999"
    (Result.map ignore
       (Sdb.link sdb W.School.offering ~left:[ Value.Str "C999" ]
          ~right:[ Value.Str "F78" ]));
  show "offering with null semester"
    (Result.map ignore
       (Sdb.link sdb W.School.offering ~left:[ Value.Str "C101" ]
          ~right:[ Value.Null ]));
  let sdb2 =
    Sdb.link_exn sdb W.School.offering ~left:[ Value.Str "C102" ]
      ~right:[ Value.Str "S79" ]
  in
  show "third offering of C102 (limit is 2)"
    (Result.map ignore
       (Sdb.link sdb2 W.School.offering ~left:[ Value.Str "C102" ]
          ~right:[ Value.Str "F79" ]));
  show "course with null CNAME"
    (Result.map ignore
       (Sdb.insert_entity sdb W.School.course
          (Row.of_list [ ("CNO", Value.Str "C900"); ("CNAME", Value.Null) ])));

  Printf.printf
    "\nThe §3.1 ERASE hazard on the CODASYL realization (constraints\n\
     enforced only by set mechanics):\n";
  let mapping, nschema = Mapping.derive_network W.School.schema in
  let ndb = Mapping.load_network mapping nschema sdb in
  let offerings db = List.length (Ndb.all_keys_silent db "COURSE-OFFERING") in
  Printf.printf "  offerings before: %d\n" (offerings ndb);
  let sem = List.hd (Ndb.all_keys_silent ndb "SEMESTER") in
  (match Ndb.erase ndb Ndb.Erase ~-1 |> fun _ -> Ndb.erase ndb Ndb.Erase sem with
  | Error s ->
      Printf.printf "  plain ERASE of a semester: %s (members exist)\n"
        (Status.show s)
  | Ok _ -> Printf.printf "  plain ERASE of a semester: accepted\n");
  (match Ndb.erase ndb Ndb.Erase_all sem with
  | Ok ndb' ->
      Printf.printf
        "  ERASE ALL of a semester: accepted — offerings now %d\n\
        \  (\"this violates the system's integrity constraints\", §3.1)\n"
        (offerings ndb')
  | Error s -> Printf.printf "  ERASE ALL: %s\n" (Status.show s));

  Printf.printf
    "\nThe same deletion at the semantic level leaves an auditable state:\n";
  match
    Sdb.delete_entity sdb W.School.semester [ Value.Str "F78" ] ~cascade:false
  with
  | Ok sdb' ->
      let violations = Sdb.validate sdb' in
      Printf.printf "  delete semester F78: accepted, %d audit findings\n"
        (List.length violations);
      List.iter (fun v -> Printf.printf "    %s\n" v) violations
  | Error s -> Printf.printf "  delete semester F78: %s\n" (Status.show s)
