(* Quickstart: convert one CODASYL program under one restructuring.

     dune exec examples/quickstart.exe

   The schema is the paper's company database (Figure 4.2): divisions
   owning employees through the DIV-EMP set.  The restructuring is the
   paper's own Figure 4.4 change: promote EMP's DEPT-NAME field into a
   DEPT record interposed between DIV and EMP.  We write the source
   program as an abstract program, realize it as a network (CODASYL)
   program, and let the supervisor convert and verify it. *)

open Ccv_abstract
open Ccv_transform
open Ccv_convert
module W = Ccv_workload

let () =
  (* 1. The program: list SALES employees of the MACHINERY division. *)
  let program = W.Programs.maryland_sales_query in
  Printf.printf "Abstract source program:\n%s\n" (Fmt.str "%a" Aprog.pp program);

  (* 2. Its concrete CODASYL form — what a 1979 shop actually has. *)
  let source_mapping = Supervisor.mapping_for Mapping.Net W.Company.schema in
  let source =
    match Generator.generate source_mapping program with
    | Ok g -> g.Generator.program
    | Error e -> failwith e
  in
  Printf.printf "Concrete CODASYL source:\n%s\n"
    (Fmt.str "%a" Engines.pp_program source);

  (* 3. The restructuring: Figure 4.2 -> Figure 4.4. *)
  let ops =
    [ Schema_change.Interpose
        { through = W.Company.div_emp;
          new_entity = W.Company.dept;
          group_by = [ "DEPT-NAME" ];
          left_assoc = W.Company.div_dept;
          right_assoc = W.Company.dept_emp;
        };
    ]
  in

  (* 4. Convert and verify against the canonical instance. *)
  let req =
    { Supervisor.source_schema = W.Company.schema;
      source_model = Mapping.Net;
      ops;
      target_model = Mapping.Net;
    }
  in
  let sdb = W.Company.instance () in
  match Supervisor.convert_and_verify req source sdb with
  | Error (stage, reason) -> Printf.printf "conversion failed at %s: %s\n" stage reason
  | Ok outcome ->
      Printf.printf "Converted CODASYL program:\n%s\n"
        (Fmt.str "%a" Engines.pp_program outcome.Supervisor.report.Supervisor.target_program);
      Printf.printf "Issues for the conversion analyst:\n";
      List.iter
        (fun i -> Printf.printf "  %s\n" (Fmt.str "%a" Supervisor.pp_issue i))
        outcome.Supervisor.report.Supervisor.issues;
      Printf.printf "\nEquivalence verdict (per §1.1): %s\n"
        (Fmt.str "%a" Equivalence.pp_verdict outcome.Supervisor.verdict);
      Printf.printf "Accesses: source-form program %d, converted program %d\n"
        outcome.Supervisor.source_accesses outcome.Supervisor.target_accesses
