test/test_analyzer.ml: Ainterp Alcotest Analyzer Aprog Ccv_abstract Ccv_common Ccv_convert Ccv_model Ccv_network Ccv_transform Ccv_workload Dml Equivalence Generator Host List Mapping Sdb String
