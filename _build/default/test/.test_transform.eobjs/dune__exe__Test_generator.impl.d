test/test_generator.ml: Alcotest Ccv_abstract Ccv_convert Ccv_model Ccv_transform Ccv_workload Engines Equivalence Generator List Mapping QCheck QCheck_alcotest Sdb
