test/test_hierarchical.mli:
