test/test_mapping.ml: Alcotest Ccv_common Ccv_hier Ccv_model Ccv_network Ccv_transform Ccv_workload Field List Mapping Sdb
