test/test_hierarchical.ml: Alcotest Ccv_common Ccv_hier Cond Field Hdb Hdml Hinterp Hschema List Printf Prng QCheck QCheck_alcotest Row Status Value
