test/test_model.ml: Alcotest Ccv_common Ccv_model Field List Printf Prng QCheck QCheck_alcotest Row Sdb Semantic Status Value
