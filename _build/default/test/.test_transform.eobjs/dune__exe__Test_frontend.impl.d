test/test_frontend.ml: Alcotest Ccv_abstract Ccv_common Ccv_frontend Ccv_model Ccv_network Ccv_workload Cond Ddl Dml_parse Lexer List Row Value
