test/test_pipeline.ml: Alcotest Ccv_abstract Ccv_common Ccv_convert Ccv_model Ccv_transform Ccv_workload Equivalence Fmt Generator List Mapping Schema_change Semantic Supervisor
