test/test_abstract.mli:
