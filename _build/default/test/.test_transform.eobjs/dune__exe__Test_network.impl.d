test/test_network.ml: Alcotest Ccv_common Ccv_network Cond Dml Field Interp List Ndb Nschema Printf Prng QCheck QCheck_alcotest Row Status Value
