test/test_relational.ml: Alcotest Algebra Ccv_common Ccv_relational Cond Counters Field List QCheck QCheck_alcotest Rdb Row Rschema Sql Status Value
