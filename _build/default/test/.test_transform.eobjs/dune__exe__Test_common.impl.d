test/test_common.ml: Alcotest Ccv_common Cond Counters Field Io_trace List Prng QCheck QCheck_alcotest Row Status String Tablefmt Value
