test/test_baselines.ml: Alcotest Ccv_baselines Ccv_common Ccv_convert Ccv_transform Ccv_workload Data_translate Engines Generator List Mapping QCheck QCheck_alcotest Result Schema_change Supervisor
