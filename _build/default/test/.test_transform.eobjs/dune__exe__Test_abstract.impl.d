test/test_abstract.ml: Ainterp Alcotest Apattern Aprog Ccv_abstract Ccv_common Ccv_model Ccv_workload Cond Host Io_trace List QCheck QCheck_alcotest Row Sdb Status Value
