test/test_transform.ml: Alcotest Ccv_common Ccv_model Ccv_transform Ccv_workload Cond Data_translate Field Inverse List QCheck QCheck_alcotest Row Schema_change Sdb Semantic Value
