(* Figure 4.3 DDL round-trip and §4.2 FIND parsing. *)

open Ccv_common
open Ccv_frontend

let fig43 =
  {|SCHEMA NAME IS COMPANY-NAME
RECORD SECTION;

  RECORD NAME IS DIV.
  FIELDS ARE.
    DIV-NAME PIC X(20).
    DIV-LOC PIC X(10).
  END RECORD.

  RECORD NAME IS EMP.
  FIELDS ARE.
    EMP-NAME PIC X(25).
    DEPT-NAME PIC X(5).
    AGE PIC 9(2).
    DIV-NAME VIRTUAL
      VIA DIV-EMP
      USING DIV-NAME.
  END RECORD.
END RECORD SECTION.
SET SECTION.

  SET NAME IS ALL-DIV.
  OWNER IS SYSTEM.
  MEMBER IS DIV.
  SET KEYS ARE (DIV-NAME).
  END SET.

  SET NAME IS DIV-EMP.
  OWNER IS DIV.
  MEMBER IS EMP.
  SET KEYS ARE (EMP-NAME).
  END SET.

  SET NAME IS ALL-EMP.
  OWNER IS SYSTEM.
  MEMBER IS EMP.
  SET KEYS ARE (EMP-NAME).
  END SET.
END SET SECTION.

END SCHEMA.|}

let parse_case =
  Alcotest.test_case "fig 4.3 parses" `Quick (fun () ->
      let ddl = Ddl.parse fig43 in
      Alcotest.(check string) "schema name" "COMPANY-NAME" ddl.Ddl.schema_name;
      Alcotest.(check int) "records" 2 (List.length ddl.Ddl.records);
      Alcotest.(check int) "sets" 3 (List.length ddl.Ddl.sets))

let roundtrip_case =
  Alcotest.test_case "fig 4.3 print/parse round-trip" `Quick (fun () ->
      let ddl = Ddl.parse fig43 in
      let printed = Ddl.to_string ddl in
      let again = Ddl.parse printed in
      Alcotest.(check bool) "round-trip" true (ddl = again))

let network_case =
  Alcotest.test_case "fig 4.3 network schema" `Quick (fun () ->
      let ddl = Ddl.parse fig43 in
      let n = Ddl.to_network ddl in
      let emp = Ccv_network.Nschema.find_record_exn n "EMP" in
      Alcotest.(check int) "EMP virtuals" 1 (List.length emp.virtuals);
      let s = Ccv_network.Nschema.find_set_exn n "DIV-EMP" in
      Alcotest.(check bool) "BY VALUE selection" true
        (match s.selection with
        | Ccv_network.Nschema.By_value [ ("DIV-NAME", "DIV-NAME") ] -> true
        | _ -> false))

let semantic_case =
  Alcotest.test_case "fig 4.3 semantic schema" `Quick (fun () ->
      let ddl = Ddl.parse fig43 in
      let s = Ddl.to_semantic ddl in
      Alcotest.(check int) "entities" 2
        (List.length s.Ccv_model.Semantic.entities);
      Alcotest.(check int) "assocs" 1 (List.length s.Ccv_model.Semantic.assocs))

let find_case =
  Alcotest.test_case "§4.2 FIND parses to access patterns" `Quick (fun () ->
      let ddl = Ddl.parse fig43 in
      let f =
        Dml_parse.parse_find ddl
          "FIND(EMP: SYSTEM, ALL-DIV, DIV(DIV-NAME = 'MACHINERY'), DIV-EMP, \
           EMP(DEPT-NAME = 'SALES'))"
      in
      match f.Dml_parse.query with
      | [ Ccv_abstract.Apattern.Self { target = "DIV"; _ };
          Ccv_abstract.Apattern.Assoc_via { assoc = "DIV-EMP"; _ };
          Ccv_abstract.Apattern.Via_assoc { target = "EMP"; qual; _ };
        ] ->
          Alcotest.(check bool) "EMP qual" true
            (Cond.equal qual
               (Cond.Cmp
                  ( Cond.Eq,
                    Cond.Field "DEPT-NAME",
                    Cond.Const (Value.Str "SALES") )))
      | q ->
          Alcotest.failf "unexpected query: %a" Ccv_abstract.Apattern.pp q)

let sort_case =
  Alcotest.test_case "SORT wrapper" `Quick (fun () ->
      let ddl = Ddl.parse fig43 in
      let f =
        Dml_parse.parse_find ddl
          "SORT(FIND(EMP: SYSTEM, ALL-EMP, EMP(AGE > 30))) ON (EMP-NAME)"
      in
      Alcotest.(check (list string)) "sort fields" [ "EMP-NAME" ]
        f.Dml_parse.sort_on)

let program_case =
  Alcotest.test_case "program parse and run" `Quick (fun () ->
      let ddl = Ddl.parse fig43 in
      let prog, _notes =
        Dml_parse.parse_program ddl
          {|PROGRAM LIST-SALES.
            FOR EACH FIND(EMP: SYSTEM, ALL-DIV, DIV(DIV-NAME = 'MACHINERY'),
                          DIV-EMP, EMP(DEPT-NAME = 'SALES'))
              DISPLAY EMP.EMP-NAME, 'IN SALES'.
            END.
            DISPLAY 'DONE'.|}
      in
      (* The parsed schema is structurally the company schema: run the
         program against the canonical instance. *)
      let sdb0 = Ccv_workload.Company.instance () in
      (* rebuild under the parsed semantic schema *)
      let sem = Ddl.to_semantic ddl in
      let sdb =
        List.fold_left
          (fun db row ->
            Ccv_model.Sdb.insert_entity_exn db "DIV"
              (Row.project row [ "DIV-NAME"; "DIV-LOC" ]))
          (Ccv_model.Sdb.create sem)
          (Ccv_model.Sdb.rows_silent sdb0 "DIV")
      in
      let sdb =
        List.fold_left
          (fun db row -> Ccv_model.Sdb.insert_entity_exn db "EMP" row)
          sdb
          (Ccv_model.Sdb.rows_silent sdb0 "EMP")
      in
      let sdb =
        List.fold_left
          (fun db (l : Ccv_model.Sdb.link) ->
            Ccv_model.Sdb.link_exn db "DIV-EMP" ~left:l.lkey ~right:l.rkey)
          sdb
          (Ccv_model.Sdb.links_silent sdb0 "DIV-EMP")
      in
      let r = Ccv_abstract.Ainterp.run sdb prog in
      Alcotest.(check (list string))
        "output"
        [ "ADAMS IN SALES"; "BAKER IN SALES"; "DONE" ]
        (Ccv_common.Io_trace.terminal_lines r.Ccv_abstract.Ainterp.trace))

let error_cases =
  [ Alcotest.test_case "DDL: virtual via unknown set" `Quick (fun () ->
        let bad =
          {|SCHEMA NAME IS S
RECORD SECTION;
  RECORD NAME IS R.
  FIELDS ARE.
    A PIC X(5).
    B VIRTUAL VIA NOPE USING A.
  END RECORD.
END RECORD SECTION.
SET SECTION.
END SET SECTION.
END SCHEMA.|}
        in
        let ddl = Ddl.parse bad in
        try
          ignore (Ddl.to_network ddl);
          Alcotest.fail "expected a parse/derivation error"
        with Ddl.Parse_error _ -> ());
    Alcotest.test_case "DDL: truncated input" `Quick (fun () ->
        try
          ignore (Ddl.parse "SCHEMA NAME IS X RECORD SECTION");
          Alcotest.fail "expected failure"
        with Ddl.Parse_error _ -> ());
    Alcotest.test_case "FIND: set before its owner" `Quick (fun () ->
        let ddl = Ddl.parse fig43 in
        try
          ignore
            (Dml_parse.parse_find ddl
               "FIND(EMP: SYSTEM, DIV-EMP, EMP, ALL-DIV, DIV)");
          Alcotest.fail "expected failure"
        with Dml_parse.Parse_error _ -> ());
    Alcotest.test_case "FIND: path target mismatch" `Quick (fun () ->
        let ddl = Ddl.parse fig43 in
        try
          ignore (Dml_parse.parse_find ddl "FIND(EMP: SYSTEM, ALL-DIV, DIV)");
          Alcotest.fail "expected failure"
        with Dml_parse.Parse_error _ -> ());
    Alcotest.test_case "lexer: unterminated string" `Quick (fun () ->
        try
          ignore (Lexer.tokenize "DISPLAY 'OOPS");
          Alcotest.fail "expected failure"
        with Lexer.Error _ -> ());
  ]

let () =
  Alcotest.run "frontend"
    [ ("ddl", [ parse_case; roundtrip_case; network_case; semantic_case ]);
      ("dml", [ find_case; sort_case; program_case ]);
      ("errors", error_cases);
    ]
