(* Abstract layer: the four §4.1 access patterns, query validation,
   the reference interpreter (statuses, atomic insert-and-connect,
   input scripting), and the generic host runtime. *)

open Ccv_common
open Ccv_model
open Ccv_abstract
module W = Ccv_workload

let check = Alcotest.(check bool)

let sdb () = W.Empdept.instance ()

let eval q = Apattern.eval (sdb ()) ~env:Cond.no_env q

let pattern_tests =
  [ Alcotest.test_case "Self selects by qualification" `Quick (fun () ->
        let rows =
          eval
            [ Apattern.Self
                { target = "EMP";
                  qual = Cond.Cmp (Cond.Gt, Cond.Field "AGE", Cond.Const (Value.Int 40));
                };
            ]
        in
        (* E1 (42), E4 (55), E5 (47) *)
        check "three" true (List.length rows = 3));
    Alcotest.test_case "Assoc_via + Via_assoc chains (§4.1)" `Quick (fun () ->
        let rows =
          eval
            [ Apattern.Self
                { target = "DEPT"; qual = Cond.eq_field_const "D#" (Value.Str "D1") };
              Apattern.Assoc_via
                { assoc = "EMP-DEPT"; source = "DEPT"; qual = Cond.True };
              Apattern.Via_assoc
                { target = "EMP"; assoc = "EMP-DEPT"; qual = Cond.True };
            ]
        in
        check "two emps in D1" true (List.length rows = 2);
        check "context carries all names" true
          (List.for_all
             (fun r ->
               Row.mem r "DEPT.DNAME" && Row.mem r "EMP-DEPT.YEAR-OF-SERVICE"
               && Row.mem r "EMP.ENAME")
             rows));
    Alcotest.test_case "Through joins on comparable fields" `Quick (fun () ->
        (* relate DEPT to EMP by comparing MGR with ENAME — contrived
           but exactly the paper's 'mathematical relation of comparable
           fields' *)
        let rows =
          eval
            [ Apattern.Self { target = "EMP"; qual = Cond.True };
              Apattern.Through
                { target = "DEPT";
                  source = "EMP";
                  link = ("MGR", "ENAME");
                  qual = Cond.True;
                };
            ]
        in
        (* SMITH manages D1 and D2 but is not an employee name; ALLEN
           manages D3 and is not an employee; no matches *)
        check "no accidental matches" true (rows = []));
    Alcotest.test_case "qualification with host variables" `Quick (fun () ->
        let env name =
          if name = "WANTED" then Some (Value.Str "D2") else None
        in
        let rows =
          Apattern.eval (sdb ()) ~env
            [ Apattern.Self
                { target = "DEPT";
                  qual = Cond.Cmp (Cond.Eq, Cond.Field "D#", Cond.Var "WANTED");
                };
            ]
        in
        check "one dept" true (List.length rows = 1));
    Alcotest.test_case "check flags bad sequences" `Quick (fun () ->
        let bad =
          [ Apattern.Assoc_via
              { assoc = "EMP-DEPT"; source = "DEPT"; qual = Cond.True };
          ]
        in
        check "unbound source" true
          (Apattern.check W.Empdept.schema bad <> []);
        check "bound by enclosing loop" true
          (Apattern.check ~bound:[ "DEPT" ] W.Empdept.schema bad = []));
  ]

let run ?input p = Ainterp.run ?input (sdb ()) p

let lines r = Io_trace.terminal_lines r.Ainterp.trace

let v = Host.v
let str = Host.str

let ainterp_tests =
  [ Alcotest.test_case "First sets status and binds" `Quick (fun () ->
        let p =
          { Aprog.name = "T";
            body =
              [ Aprog.First
                  { query =
                      [ Apattern.Self
                          { target = "EMP";
                            qual = Cond.eq_field_const "E#" (Value.Str "E3");
                          };
                      ];
                    present = [ Aprog.Display [ v "EMP.ENAME" ] ];
                    absent = [ Aprog.Display [ str "NONE" ] ];
                  };
                Aprog.If
                  (Host.status_ok, [ Aprog.Display [ str "OK" ] ], []);
              ];
          }
        in
        check "output" true (lines (run p) = [ "WARD"; "OK" ]));
    Alcotest.test_case "insert-and-connect is atomic" `Quick (fun () ->
        (* connecting to a missing DEPT must leave no EMP behind *)
        let p =
          { Aprog.name = "T";
            body =
              [ Aprog.Insert
                  { entity = "EMP";
                    values =
                      [ ("E#", str "E9"); ("ENAME", str "GHOST");
                        ("AGE", Host.int 20);
                      ];
                    connects = [ ("EMP-DEPT", [ str "E9" ]) ];
                  };
              ];
          }
        in
        (* EMP-DEPT is left=EMP so connecting EMP as right fails on the
           endpoint lookup; whatever the failure, atomicity holds *)
        let r = run p in
        check "no ghost"
          true
          (Sdb.find_entity r.Ainterp.db "EMP" [ Value.Str "E9" ] = None
          || Sdb.links_silent r.Ainterp.db "EMP-DEPT"
             |> List.exists (fun (l : Sdb.link) -> l.rkey = [ Value.Str "E9" ])));
    Alcotest.test_case "Accept consumes the input script" `Quick (fun () ->
        let p =
          { Aprog.name = "T";
            body =
              [ Aprog.Accept "X"; Aprog.Display [ v "X" ];
                Aprog.Accept "Y"; Aprog.Display [ v "Y" ];
              ];
          }
        in
        let r = run ~input:[ "HELLO" ] p in
        check "script then empty" true (lines r = [ "HELLO"; "" ]));
    Alcotest.test_case "While loops over host variables" `Quick (fun () ->
        let p =
          { Aprog.name = "T";
            body =
              [ Aprog.Move (Host.int 0, "I");
                Aprog.While
                  ( Cond.Cmp (Cond.Lt, Cond.Var "I", Cond.Const (Value.Int 3)),
                    [ Aprog.Display [ v "I" ];
                      Aprog.Move
                        (Cond.Add (Cond.Var "I", Cond.Const (Value.Int 1)), "I");
                    ] );
              ];
          }
        in
        check "three iterations" true (lines (run p) = [ "0"; "1"; "2" ]));
    Alcotest.test_case "Delete of an association target unlinks" `Quick
      (fun () ->
        let p =
          { Aprog.name = "T";
            body =
              [ Aprog.Delete
                  { query =
                      [ Apattern.Self
                          { target = "EMP";
                            qual = Cond.eq_field_const "E#" (Value.Str "E5");
                          };
                        Apattern.Assoc_via
                          { assoc = "EMP-DEPT"; source = "EMP"; qual = Cond.True };
                      ];
                    cascade = false;
                  };
              ];
          }
        in
        let r = run p in
        check "E5's links gone" true
          (not
             (List.exists
                (fun (l : Sdb.link) -> l.lkey = [ Value.Str "E5" ])
                (Sdb.links_silent r.Ainterp.db "EMP-DEPT")));
        check "E5 itself stays" true
          (Sdb.find_entity r.Ainterp.db "EMP" [ Value.Str "E5" ] <> None));
    Alcotest.test_case "step limit reported" `Quick (fun () ->
        let p =
          { Aprog.name = "T";
            body =
              [ Aprog.While (Cond.True, [ Aprog.Move (Host.int 1, "X") ]) ];
          }
        in
        let r = Ainterp.run ~max_steps:100 (sdb ()) p in
        check "hit limit" true r.Ainterp.hit_limit);
  ]

(* Host runtime over a trivial engine. *)
module Null_engine = struct
  type db = int ref
  type state = unit
  type dml = Bump | Fail

  let initial_state _ = ()

  let exec db () ~env:_ = function
    | Bump ->
        incr db;
        (db, (), [ ("COUNT", Value.Int !db) ], Status.Ok)
    | Fail -> (db, (), [], Status.Not_found)
end

module Null_run = Host.Run (Null_engine)

let host_tests =
  [ Alcotest.test_case "DML updates env and status register" `Quick (fun () ->
        let p =
          { Host.name = "T";
            body =
              [ Host.Dml Null_engine.Bump;
                Host.Display [ v "COUNT" ];
                Host.Dml Null_engine.Fail;
                Host.If
                  ( Host.status_is Status.Not_found,
                    [ Host.Display [ str "MISSING" ] ],
                    [] );
              ];
          }
        in
        let r = Null_run.run (ref 0) p in
        check "trace" true
          (Io_trace.terminal_lines r.Null_run.trace = [ "1"; "MISSING" ]);
        check "statuses recorded" true
          (r.Null_run.statuses = [ Status.Ok; Status.Not_found ]));
    Alcotest.test_case "write_file events captured" `Quick (fun () ->
        let p =
          { Host.name = "T";
            body = [ Host.Write_file ("out.dat", [ str "LINE" ]) ];
          }
        in
        let r = Null_run.run (ref 0) p in
        check "file event" true
          (r.Null_run.trace = [ Io_trace.File_write ("out.dat", "LINE") ]));
    Alcotest.test_case "concat_map_dml expands statements" `Quick (fun () ->
        let p =
          { Host.name = "T"; body = [ Host.Dml 1; Host.If (Cond.True, [ Host.Dml 2 ], []) ] }
        in
        let p' =
          Host.concat_map_dml (fun d -> [ Host.Dml (d * 10); Host.Dml (d * 10 + 1) ]) p
        in
        check "expanded" true (Host.dml_list p' = [ 10; 11; 20; 21 ]));
  ]

(* Property: Apattern.eval is deterministic and insensitive to counter
   state (pure over the instance). *)
let eval_prop =
  QCheck.Test.make ~name:"Apattern.eval deterministic" ~count:50
    QCheck.(int_range 1 100)
    (fun n ->
      let q =
        [ Apattern.Self
            { target = "EMP";
              qual = Cond.Cmp (Cond.Ge, Cond.Field "AGE", Cond.Const (Value.Int n));
            };
          Apattern.Assoc_via
            { assoc = "EMP-DEPT"; source = "EMP"; qual = Cond.True };
        ]
      in
      let db = sdb () in
      let a = Apattern.eval db ~env:Cond.no_env q in
      let b = Apattern.eval db ~env:Cond.no_env q in
      List.length a = List.length b && List.for_all2 Row.equal a b)

let () =
  Alcotest.run "abstract"
    [ ("patterns", pattern_tests);
      ("ainterp", ainterp_tests);
      ("host", host_tests);
      ("props", [ QCheck_alcotest.to_alcotest eval_prop ]);
    ]
