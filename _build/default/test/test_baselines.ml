(* The §2.1.2 baselines must preserve program behaviour while paying
   more accesses than the rewritten (converted) program — the claim E1
   quantifies.  Here we verify correctness and the overhead ordering
   on the Figure 4.2→4.4 restructuring. *)

open Ccv_convert
open Ccv_transform
module W = Ccv_workload
module B = Ccv_baselines

let interpose_op =
  Schema_change.Interpose
    { through = W.Company.div_emp;
      new_entity = W.Company.dept;
      group_by = [ "DEPT-NAME" ];
      left_assoc = W.Company.div_dept;
      right_assoc = W.Company.dept_emp;
    }

let setup ?(n = 0) () =
  let sdb = if n = 0 then W.Company.instance () else W.Company.scaled ~seed:5 ~n in
  let source_mapping, source_nschema = Mapping.derive_network W.Company.schema in
  let source_db = Mapping.load_network source_mapping source_nschema sdb in
  let target_schema = Schema_change.apply_exn W.Company.schema interpose_op in
  let sdb', _w =
    match Data_translate.translate sdb interpose_op with
    | Ok r -> r
    | Error e -> Alcotest.failf "translate: %s" e
  in
  let target_mapping, target_nschema = Mapping.derive_network target_schema in
  let target_db = Mapping.load_network target_mapping target_nschema sdb' in
  (source_mapping, source_db, target_mapping, target_db)

let source_net prog =
  let mapping, _ = Mapping.derive_network W.Company.schema in
  match Generator.to_network mapping prog with
  | Ok (p, _) -> p
  | Error e -> Alcotest.failf "source gen: %s" e

let baseline_preserves name prog =
  Alcotest.test_case name `Quick (fun () ->
      let _sm, source_db, target_mapping, target_db = setup () in
      let reference =
        Engines.run (Engines.Net_db source_db)
          (Engines.Net_program (source_net prog))
      in
      let emu =
        B.Emulation.create ~source_schema:W.Company.schema ~op:interpose_op
          target_mapping
      in
      let emu_trace, _ = B.Emulation.run emu target_db (source_net prog) in
      Alcotest.(check bool)
        (name ^ ": emulation trace") true
        (Ccv_common.Io_trace.equal reference.Engines.trace emu_trace);
      let bridge =
        B.Bridge.create ~source_schema:W.Company.schema ~ops:[ interpose_op ]
          target_mapping
      in
      let bridge_trace, _ = B.Bridge.run bridge target_db (source_net prog) in
      Alcotest.(check bool)
        (name ^ ": bridge trace") true
        (Ccv_common.Io_trace.equal reference.Engines.trace bridge_trace))

let overhead_case =
  Alcotest.test_case "baselines cost more accesses than conversion" `Quick
    (fun () ->
      let _sm, _source_db, target_mapping, target_db = setup ~n:80 () in
      let prog = W.Programs.maryland_sales_query in
      (* converted program on the target *)
      let req =
        { Supervisor.source_schema = W.Company.schema;
          source_model = Mapping.Net;
          ops = [ interpose_op ];
          target_model = Mapping.Net;
        }
      in
      let report =
        match
          Supervisor.convert_program req (Engines.Net_program (source_net prog))
        with
        | Ok r -> r
        | Error (stage, e) -> Alcotest.failf "%s: %s" stage e
      in
      let converted =
        Engines.run (Engines.Net_db target_db) report.Supervisor.target_program
      in
      let emu =
        B.Emulation.create ~source_schema:W.Company.schema ~op:interpose_op
          target_mapping
      in
      let _, emu_accesses = B.Emulation.run emu target_db (source_net prog) in
      let bridge =
        B.Bridge.create ~source_schema:W.Company.schema ~ops:[ interpose_op ]
          target_mapping
      in
      let _, bridge_accesses = B.Bridge.run bridge target_db (source_net prog) in
      Alcotest.(check bool)
        "emulation >= converted" true
        (emu_accesses >= converted.Engines.accesses);
      Alcotest.(check bool)
        "bridge >= converted" true
        (bridge_accesses >= converted.Engines.accesses))

let retrieval_only =
  Alcotest.test_case "baselines refuse updates" `Quick (fun () ->
      let _sm, _sdb, target_mapping, target_db = setup () in
      let prog =
        source_net
          (W.Programs.company_hire ~name:"X" ~dept:"SALES" ~age:20
             ~division:"MACHINERY")
      in
      let emu =
        B.Emulation.create ~source_schema:W.Company.schema ~op:interpose_op
          target_mapping
      in
      let r =
        B.Emulation.Run.run (emu, target_db) prog
      in
      Alcotest.(check bool)
        "an update statement reported invalid" true
        (List.exists
           (function Ccv_common.Status.Invalid_request _ -> true | _ -> false)
           r.B.Emulation.Run.statuses))

(* Property: on random scaled instances, emulation reproduces the
   source behaviour exactly while never being cheaper than the
   converted program. *)
let emulation_prop =
  QCheck.Test.make ~name:"emulation is faithful and never cheaper" ~count:15
    QCheck.(pair (int_range 1 500) (int_range 10 60))
    (fun (seed, n) ->
      let sdb = W.Company.scaled ~seed ~n in
      let sm, sns = Mapping.derive_network W.Company.schema in
      let source_db = Mapping.load_network sm sns sdb in
      let sdb', _ = Result.get_ok (Data_translate.translate sdb interpose_op) in
      let target_schema =
        Schema_change.apply_exn W.Company.schema interpose_op
      in
      let tm, tns = Mapping.derive_network target_schema in
      let target_db = Mapping.load_network tm tns sdb' in
      let prog = source_net W.Programs.maryland_age_query in
      let reference =
        Engines.run (Engines.Net_db source_db) (Engines.Net_program prog)
      in
      let emu =
        B.Emulation.create ~source_schema:W.Company.schema ~op:interpose_op tm
      in
      let trace, accesses = B.Emulation.run emu target_db prog in
      Ccv_common.Io_trace.equal reference.Engines.trace trace
      && accesses >= reference.Engines.accesses)

let bridge_prop =
  QCheck.Test.make ~name:"bridge is faithful" ~count:10
    QCheck.(pair (int_range 1 500) (int_range 10 40))
    (fun (seed, n) ->
      let sdb = W.Company.scaled ~seed ~n in
      let sm, sns = Mapping.derive_network W.Company.schema in
      let source_db = Mapping.load_network sm sns sdb in
      let sdb', _ = Result.get_ok (Data_translate.translate sdb interpose_op) in
      let target_schema =
        Schema_change.apply_exn W.Company.schema interpose_op
      in
      let tm, tns = Mapping.derive_network target_schema in
      let target_db = Mapping.load_network tm tns sdb' in
      let prog = source_net W.Programs.maryland_sales_query in
      let reference =
        Engines.run (Engines.Net_db source_db) (Engines.Net_program prog)
      in
      let bridge =
        B.Bridge.create ~source_schema:W.Company.schema ~ops:[ interpose_op ]
          tm
      in
      let trace, _ = B.Bridge.run bridge target_db prog in
      Ccv_common.Io_trace.equal reference.Engines.trace trace)

let () =
  Alcotest.run "baselines"
    [ ("behaviour",
       [ baseline_preserves "md-age" W.Programs.maryland_age_query;
         baseline_preserves "md-sales" W.Programs.maryland_sales_query;
       ]);
      ("overhead", [ overhead_case ]);
      ("retrieval-only", [ retrieval_only ]);
      ("props",
       [ QCheck_alcotest.to_alcotest emulation_prop;
         QCheck_alcotest.to_alcotest bridge_prop;
       ]);
    ]
