(* CODASYL substrate: schema validation, record/set mechanics
   (AUTOMATIC/MANUAL, OPTIONAL/MANDATORY/FIXED), virtual fields,
   BY VALUE selection, ERASE semantics, and the currency model of the
   DML interpreter — the behaviours §3.2 says a converter must
   reproduce exactly. *)

open Ccv_common
open Ccv_network

let check = Alcotest.(check bool)

(* A small hand-built schema: DIV owns EMP through DIV-EMP (AUTOMATIC,
   MANDATORY, BY VALUE on DIV-NAME); PROJ is an OPTIONAL MANUAL member
   of EMP's EMP-PROJ set. *)
let schema =
  Nschema.make
    [ Nschema.record_decl ~calc_key:[ "DIV-NAME" ] "DIV"
        [ Field.make "DIV-NAME" Value.Tstr ];
      Nschema.record_decl ~calc_key:[ "EMP-NAME" ]
        ~virtuals:
          [ { Nschema.vname = "DIV-NAME";
              vty = Value.Tstr;
              via_set = "DIV-EMP";
              source_field = "DIV-NAME";
            };
          ]
        "EMP"
        [ Field.make "EMP-NAME" Value.Tstr; Field.make "AGE" Value.Tint ];
      Nschema.record_decl ~calc_key:[ "P#" ] "PROJ"
        [ Field.make "P#" Value.Tstr ];
    ]
    [ Nschema.set_decl ~insertion:Nschema.Automatic ~retention:Nschema.Mandatory
        ~selection:(Nschema.By_value [ ("DIV-NAME", "DIV-NAME") ])
        ~name:"DIV-EMP" ~owner:(Nschema.Owner_record "DIV") ~member:"EMP" ();
      Nschema.set_decl ~insertion:Nschema.Manual ~retention:Nschema.Optional
        ~name:"EMP-PROJ" ~owner:(Nschema.Owner_record "EMP") ~member:"PROJ" ();
      Nschema.set_decl ~insertion:Nschema.Automatic ~retention:Nschema.Fixed
        ~name:"ALL-EMP" ~owner:Nschema.System ~member:"EMP" ();
    ]

let store_exn db rtype row =
  match Ndb.store db rtype row with
  | Ok (db, k) -> (db, k)
  | Error s -> Alcotest.failf "store %s: %s" rtype (Status.show s)

let div name = Row.of_list [ ("DIV-NAME", Value.Str name) ]

let emp name age d =
  Row.of_list
    [ ("EMP-NAME", Value.Str name); ("AGE", Value.Int age);
      ("DIV-NAME", Value.Str d);
    ]

let sample () =
  let db = Ndb.create schema in
  let db, d1 = store_exn db "DIV" (div "A") in
  let db, d2 = store_exn db "DIV" (div "B") in
  let db, e1 = store_exn db "EMP" (emp "X" 30 "A") in
  let db, e2 = store_exn db "EMP" (emp "Y" 40 "A") in
  let db, e3 = store_exn db "EMP" (emp "Z" 50 "B") in
  (db, d1, d2, e1, e2, e3)

let schema_tests =
  [ Alcotest.test_case "virtual cannot shadow a stored field" `Quick (fun () ->
        try
          ignore
            (Nschema.record_decl
               ~virtuals:
                 [ { Nschema.vname = "A"; vty = Value.Tint; via_set = "S";
                     source_field = "A" } ]
               "R"
               [ Field.make "A" Value.Tint ]);
          Alcotest.fail "expected failure"
        with Invalid_argument _ -> ());
    Alcotest.test_case "selection field must exist in owner" `Quick (fun () ->
        try
          ignore
            (Nschema.make
               [ Nschema.record_decl "O" [ Field.make "K" Value.Tstr ];
                 Nschema.record_decl "M" [ Field.make "K" Value.Tstr ];
               ]
               [ Nschema.set_decl
                   ~selection:(Nschema.By_value [ ("NOPE", "K") ])
                   ~name:"S" ~owner:(Nschema.Owner_record "O") ~member:"M" ();
               ]);
          Alcotest.fail "expected failure"
        with Invalid_argument _ -> ());
  ]

let ndb_tests =
  [ Alcotest.test_case "automatic BY VALUE connection" `Quick (fun () ->
        let db, d1, d2, e1, e2, e3 = sample () in
        check "A's members" true (Ndb.members_silent db ~set:"DIV-EMP" ~owner:d1 = [ e1; e2 ]);
        check "B's members" true (Ndb.members_silent db ~set:"DIV-EMP" ~owner:d2 = [ e3 ]);
        check "owner_of" true (Ndb.owner_of db ~set:"DIV-EMP" ~member:e1 = Some d1));
    Alcotest.test_case "store fails without an owner (§3.1)" `Quick (fun () ->
        let db, _, _, _, _, _ = sample () in
        match Ndb.store db "EMP" (emp "W" 20 "NOWHERE") with
        | Error (Status.Constraint_violation _) -> ()
        | _ -> Alcotest.fail "expected constraint violation");
    Alcotest.test_case "CALC duplicates rejected" `Quick (fun () ->
        let db, _, _, _, _, _ = sample () in
        match Ndb.store db "EMP" (emp "X" 99 "B") with
        | Error (Status.Duplicate_key _) -> ()
        | _ -> Alcotest.fail "expected duplicate key");
    Alcotest.test_case "virtual field resolves through the set" `Quick
      (fun () ->
        let db, _, _, e1, _, _ = sample () in
        match Ndb.view_silent db e1 with
        | Some row -> check "DIV-NAME derived" true (Row.get row "DIV-NAME" = Some (Value.Str "A"))
        | None -> Alcotest.fail "no view");
    Alcotest.test_case "manual set: connect then disconnect" `Quick (fun () ->
        let db, _, _, e1, _, _ = sample () in
        let db, p = store_exn db "PROJ" (Row.of_list [ ("P#", Value.Str "P1") ]) in
        check "not connected yet" true
          (Ndb.owner_of db ~set:"EMP-PROJ" ~member:p = None);
        let db =
          match Ndb.connect db ~set:"EMP-PROJ" ~member:p ~owner:e1 with
          | Ok db -> db
          | Error s -> Alcotest.failf "connect: %s" (Status.show s)
        in
        check "connected" true (Ndb.owner_of db ~set:"EMP-PROJ" ~member:p = Some e1);
        (match Ndb.disconnect db ~set:"EMP-PROJ" ~member:p with
        | Ok db' ->
            check "disconnected" true
              (Ndb.owner_of db' ~set:"EMP-PROJ" ~member:p = None)
        | Error s -> Alcotest.failf "disconnect: %s" (Status.show s)));
    Alcotest.test_case "disconnect from MANDATORY set refused" `Quick (fun () ->
        let db, _, _, e1, _, _ = sample () in
        match Ndb.disconnect db ~set:"DIV-EMP" ~member:e1 with
        | Error (Status.Constraint_violation _) -> ()
        | _ -> Alcotest.fail "expected refusal");
    Alcotest.test_case "plain ERASE refuses a non-empty owner" `Quick
      (fun () ->
        let db, d1, _, _, _, _ = sample () in
        match Ndb.erase db Ndb.Erase d1 with
        | Error (Status.Constraint_violation _) -> ()
        | _ -> Alcotest.fail "expected refusal");
    Alcotest.test_case "ERASE ALL cascades into MANDATORY members" `Quick
      (fun () ->
        let db, d1, _, _, _, _ = sample () in
        match Ndb.erase db Ndb.Erase_all d1 with
        | Ok db' ->
            check "emps gone" true
              (List.length (Ndb.all_keys_silent db' "EMP") = 1)
        | Error s -> Alcotest.failf "erase: %s" (Status.show s));
    Alcotest.test_case "modify updates fields" `Quick (fun () ->
        let db, _, _, e1, _, _ = sample () in
        match Ndb.modify db e1 [ ("AGE", Value.Int 99) ] with
        | Ok db' -> (
            match Ndb.view_silent db' e1 with
            | Some row -> check "age" true (Row.get row "AGE" = Some (Value.Int 99))
            | None -> Alcotest.fail "gone")
        | Error s -> Alcotest.failf "modify: %s" (Status.show s));
  ]

(* ------------- currency / DML interpreter ------------- *)

let env_of bindings name = List.assoc_opt name bindings

let exec db cur stmt =
  let o = Interp.exec db cur ~env:Cond.no_env stmt in
  (o.Interp.db, o.Interp.cur, o.Interp.status)

let interp_tests =
  [ Alcotest.test_case "FIND ANY / DUPLICATE enumerate in key order" `Quick
      (fun () ->
        let db, _, _, e1, e2, e3 = sample () in
        let cur = Interp.initial_currency in
        let db, cur, s1 = exec db cur (Dml.Find (Dml.Any ("EMP", Cond.True))) in
        check "first" true
          (s1 = Status.Ok && Interp.current_of_run_unit cur = Some e1);
        let db, cur, _ = exec db cur (Dml.Find (Dml.Duplicate ("EMP", Cond.True))) in
        check "second" true (Interp.current_of_run_unit cur = Some e2);
        let db, cur, _ = exec db cur (Dml.Find (Dml.Duplicate ("EMP", Cond.True))) in
        check "third" true (Interp.current_of_run_unit cur = Some e3);
        let _, _, s4 = exec db cur (Dml.Find (Dml.Duplicate ("EMP", Cond.True))) in
        check "exhausted" true (s4 = Status.Not_found));
    Alcotest.test_case "set sweep: FIRST/NEXT WITHIN uses owner currency"
      `Quick (fun () ->
        let db, _, _, e1, e2, _ = sample () in
        let cur = Interp.initial_currency in
        let q = Cond.eq_field_const "DIV-NAME" (Value.Str "A") in
        let db, cur, _ = exec db cur (Dml.Find (Dml.Any ("DIV", q))) in
        let db, cur, s =
          exec db cur (Dml.Find (Dml.First_within ("EMP", "DIV-EMP", Cond.True)))
        in
        check "first member" true
          (s = Status.Ok && Interp.current_of_run_unit cur = Some e1);
        let db, cur, _ =
          exec db cur (Dml.Find (Dml.Next_within ("EMP", "DIV-EMP", Cond.True)))
        in
        check "second member" true (Interp.current_of_run_unit cur = Some e2);
        let _, _, s3 =
          exec db cur (Dml.Find (Dml.Next_within ("EMP", "DIV-EMP", Cond.True)))
        in
        check "end of set" true (s3 = Status.End_of_set));
    Alcotest.test_case "FIND OWNER resolves the member's occurrence" `Quick
      (fun () ->
        let db, _, d2, _, _, _ = sample () in
        let cur = Interp.initial_currency in
        let q = Cond.eq_field_const "EMP-NAME" (Value.Str "Z") in
        let db, cur, _ = exec db cur (Dml.Find (Dml.Any ("EMP", q))) in
        let _, cur, s = exec db cur (Dml.Find (Dml.Owner_within "DIV-EMP")) in
        check "owner found" true
          (s = Status.Ok && Interp.current_of_run_unit cur = Some d2));
    Alcotest.test_case "navigation without currency fails" `Quick (fun () ->
        let db, _, _, _, _, _ = sample () in
        let cur = Interp.initial_currency in
        let _, _, s =
          exec db cur (Dml.Find (Dml.Next_within ("EMP", "DIV-EMP", Cond.True)))
        in
        check "no currency" true (s = Status.No_currency));
    Alcotest.test_case "GET binds UWA variables from the view" `Quick (fun () ->
        let db, _, _, _, _, _ = sample () in
        let cur = Interp.initial_currency in
        let q = Cond.eq_field_const "EMP-NAME" (Value.Str "X") in
        let o1 = Interp.exec db cur ~env:Cond.no_env (Dml.Find (Dml.Any ("EMP", q))) in
        let o2 = Interp.exec o1.Interp.db o1.Interp.cur ~env:Cond.no_env (Dml.Get "EMP") in
        check "uwa emp-name" true
          (List.assoc_opt "EMP.EMP-NAME" o2.Interp.updates = Some (Value.Str "X"));
        check "uwa derived div" true
          (List.assoc_opt "EMP.DIV-NAME" o2.Interp.updates = Some (Value.Str "A")));
    Alcotest.test_case "STORE from UWA variables" `Quick (fun () ->
        let db, _, _, _, _, _ = sample () in
        let cur = Interp.initial_currency in
        let env =
          env_of
            [ ("EMP.EMP-NAME", Value.Str "NEW"); ("EMP.AGE", Value.Int 20);
              ("EMP.DIV-NAME", Value.Str "B");
            ]
        in
        let o = Interp.exec db cur ~env (Dml.Store "EMP") in
        check "stored" true (o.Interp.status = Status.Ok);
        check "4 emps" true
          (List.length (Ndb.all_keys_silent o.Interp.db "EMP") = 4));
    Alcotest.test_case "FIND CURRENT re-establishes set currency" `Quick
      (fun () ->
        let db, d1, _, _, _, _ = sample () in
        let cur = Interp.initial_currency in
        let q = Cond.eq_field_const "DIV-NAME" (Value.Str "A") in
        let db, cur, _ = exec db cur (Dml.Find (Dml.Any ("DIV", q))) in
        (* disturb the set currency via another record *)
        let db, cur, _ = exec db cur (Dml.Find (Dml.Any ("PROJ", Cond.True))) in
        ignore d1;
        let _, cur, s = exec db cur (Dml.Find (Dml.Current "DIV")) in
        check "ok" true (s = Status.Ok);
        check "occurrence back" true
          (Interp.current_occurrence_owner db cur "DIV-EMP" = Some d1));
  ]

(* Property: FIND FIRST/NEXT WITHIN enumerates exactly the member list
   of the current occurrence, in order. *)
let sweep_prop =
  QCheck.Test.make ~name:"set sweep equals member list" ~count:50
    QCheck.(int_range 1 500)
    (fun seed ->
      let rng = Prng.create ~seed in
      let db = ref (Ndb.create schema) in
      let divs = [ "A"; "B"; "C" ] in
      List.iter
        (fun d ->
          let db', _ = store_exn !db "DIV" (div d) in
          db := db')
        divs;
      let n = 3 + Prng.int rng 10 in
      for i = 0 to n - 1 do
        let d = Prng.pick rng divs in
        let db', _ =
          store_exn !db "EMP" (emp (Printf.sprintf "E%d" i) (20 + i) d)
        in
        db := db'
      done;
      let target = Prng.pick rng divs in
      let q = Cond.eq_field_const "DIV-NAME" (Value.Str target) in
      let cur = Interp.initial_currency in
      let dbv = !db in
      let dbv, cur, _ = exec dbv cur (Dml.Find (Dml.Any ("DIV", q))) in
      let dkey =
        match Interp.current_of_run_unit cur with Some k -> k | None -> -1
      in
      let expected = Ndb.members_silent dbv ~set:"DIV-EMP" ~owner:dkey in
      let rec sweep db cur acc stmt =
        let db, cur, s = exec db cur stmt in
        if s = Status.Ok then
          match Interp.current_of_run_unit cur with
          | Some k ->
              sweep db cur (k :: acc)
                (Dml.Find (Dml.Next_within ("EMP", "DIV-EMP", Cond.True)))
          | None -> List.rev acc
        else List.rev acc
      in
      let seen =
        sweep dbv cur [] (Dml.Find (Dml.First_within ("EMP", "DIV-EMP", Cond.True)))
      in
      seen = expected)

let () =
  Alcotest.run "network"
    [ ("schema", schema_tests);
      ("ndb", ndb_tests);
      ("interp", interp_tests);
      ("props", [ QCheck_alcotest.to_alcotest sweep_prop ]);
    ]
