(* Round-trip tests for the semantic <-> concrete mappings: for each
   canonical workload and each target model, extract (load db) must
   reproduce the semantic instance.  These round-trips are the data
   translator of the framework, so they anchor everything above. *)

open Ccv_common
open Ccv_model
open Ccv_transform
module School = Ccv_workload.School
module Company = Ccv_workload.Company
module Empdept = Ccv_workload.Empdept

let check = Alcotest.(check bool)

let workloads =
  [ ("school", School.schema, School.instance);
    ("company", Company.schema, Company.instance);
    ("empdept", Empdept.schema, Empdept.instance);
  ]

let relational_roundtrip (name, schema, instance) =
  Alcotest.test_case ("relational roundtrip " ^ name) `Quick (fun () ->
      let sdb = instance () in
      let _mapping, rschema = Mapping.derive_relational schema in
      let rdb = Mapping.load_relational rschema sdb in
      let back = Mapping.extract_relational schema rdb in
      check "roundtrip preserves contents" true (Sdb.equal_contents sdb back))

let network_roundtrip (name, schema, instance) =
  Alcotest.test_case ("network roundtrip " ^ name) `Quick (fun () ->
      let sdb = instance () in
      let mapping, nschema = Mapping.derive_network schema in
      let ndb = Mapping.load_network mapping nschema sdb in
      let back = Mapping.extract_network mapping ndb in
      check "roundtrip preserves contents" true (Sdb.equal_contents sdb back))

let hier_roundtrip (name, schema, instance) =
  Alcotest.test_case ("hierarchical roundtrip " ^ name) `Quick (fun () ->
      let sdb = instance () in
      let mapping, hschema = Mapping.derive_hier schema in
      let hdb = Mapping.load_hier mapping hschema sdb in
      let back = Mapping.extract_hier mapping hdb in
      check "roundtrip preserves contents" true (Sdb.equal_contents sdb back))

let scaled_roundtrips =
  [ Alcotest.test_case "network roundtrip scaled company" `Quick (fun () ->
        let sdb = Company.scaled ~seed:7 ~n:60 in
        let mapping, nschema = Mapping.derive_network Company.schema in
        let ndb = Mapping.load_network mapping nschema sdb in
        let back = Mapping.extract_network mapping ndb in
        check "roundtrip" true (Sdb.equal_contents sdb back));
    Alcotest.test_case "hier roundtrip scaled empdept" `Quick (fun () ->
        let sdb = Empdept.scaled ~seed:11 ~n:40 in
        let mapping, hschema = Mapping.derive_hier Empdept.schema in
        let hdb = Mapping.load_hier mapping hschema sdb in
        let back = Mapping.extract_hier mapping hdb in
        check "roundtrip" true (Sdb.equal_contents sdb back));
    Alcotest.test_case "relational roundtrip scaled school" `Quick (fun () ->
        let sdb = School.scaled ~seed:3 ~n:50 in
        let _mapping, rschema = Mapping.derive_relational School.schema in
        let rdb = Mapping.load_relational rschema sdb in
        let back = Mapping.extract_relational School.schema rdb in
        check "roundtrip" true (Sdb.equal_contents sdb back));
  ]

let cross_model =
  [ Alcotest.test_case "network -> hier translation (company)" `Quick
      (fun () ->
        let sdb = Company.instance () in
        let nmap, nschema = Mapping.derive_network Company.schema in
        let ndb = Mapping.load_network nmap nschema sdb in
        let via = Mapping.extract_network nmap ndb in
        let hmap, hschema = Mapping.derive_hier Company.schema in
        let hdb = Mapping.load_hier hmap hschema via in
        let back = Mapping.extract_hier hmap hdb in
        check "cross-model translation" true (Sdb.equal_contents sdb back));
  ]

let schema_shape =
  [ Alcotest.test_case "network schema of company has DIV-EMP set" `Quick
      (fun () ->
        let _mapping, nschema = Mapping.derive_network Company.schema in
        let s = Ccv_network.Nschema.find_set_exn nschema "DIV-EMP" in
        check "owner" true (s.owner = Ccv_network.Nschema.Owner_record "DIV");
        check "member" true (Field.name_equal s.member "EMP");
        check "automatic" true (s.insertion = Ccv_network.Nschema.Automatic));
    Alcotest.test_case "network schema of school uses a link record" `Quick
      (fun () ->
        let mapping, nschema = Mapping.derive_network School.schema in
        (match Mapping.assoc_real mapping School.offering with
        | Mapping.Assoc_link_record { record; left_set; right_set } ->
            check "record exists" true
              (Ccv_network.Nschema.find_record nschema record <> None);
            check "left set exists" true
              (Ccv_network.Nschema.find_set nschema left_set <> None);
            check "right set exists" true
              (Ccv_network.Nschema.find_set nschema right_set <> None)
        | _ -> Alcotest.fail "expected link record realization"));
    Alcotest.test_case "hier schema of company: EMP child of DIV" `Quick
      (fun () ->
        let _mapping, hschema = Mapping.derive_hier Company.schema in
        let e = Ccv_hier.Hschema.find_exn hschema "EMP" in
        check "parent" true (e.parent = Some "DIV"));
    Alcotest.test_case "hier schema of empdept uses link segment" `Quick
      (fun () ->
        let mapping, _ = Mapping.derive_hier Empdept.schema in
        match Mapping.assoc_real mapping Empdept.emp_dept with
        | Mapping.Assoc_link_segment _ -> ()
        | _ -> Alcotest.fail "expected link segment");
  ]

let () =
  Alcotest.run "mapping"
    [ ("relational-roundtrip", List.map relational_roundtrip workloads);
      ("network-roundtrip", List.map network_roundtrip workloads);
      ("hier-roundtrip", List.map hier_roundtrip workloads);
      ("scaled", scaled_roundtrips);
      ("cross-model", cross_model);
      ("schema-shape", schema_shape);
    ]
