(* End-to-end conversion pipeline tests: source concrete program →
   analyze → convert under a restructuring → optimize → generate →
   run against the translated database → §1.1 equivalence judgment.

   The centerpiece is the paper's own Figure 4.2 → Figure 4.4
   restructuring: a DEPT entity interposed between DIV and EMP, with
   both §4.2 FIND examples converted and verified. *)

open Ccv_model
open Ccv_convert
open Ccv_transform
module W = Ccv_workload

let fig44_ops =
  [ Schema_change.Interpose
      { through = W.Company.div_emp;
        new_entity = W.Company.dept;
        group_by = [ "DEPT-NAME" ];
        left_assoc = W.Company.div_dept;
        right_assoc = W.Company.dept_emp;
      };
  ]

let request source_model target_model ops =
  { Supervisor.source_schema = W.Company.schema;
    source_model;
    ops;
    target_model;
  }

let source_program model prog =
  let mapping = Supervisor.mapping_for model W.Company.schema in
  match Generator.generate mapping prog with
  | Ok { Generator.program; _ } -> program
  | Error e -> Alcotest.failf "cannot build source program: %s" e

let expect_verdict ?(input = []) ~allow_order name req prog =
  let sdb = W.Company.instance () in
  let source = source_program req.Supervisor.source_model prog in
  match Supervisor.convert_and_verify ~input req source sdb with
  | Error (stage, reason) ->
      Alcotest.failf "%s: %s failed: %s" name stage reason
  | Ok outcome -> (
      match outcome.Supervisor.verdict with
      | Equivalence.Strict -> ()
      | Equivalence.Modulo_order when allow_order -> ()
      | v ->
          Alcotest.failf "%s: verdict %a" name Equivalence.pp_verdict v)

let models =
  [ ("rel", Mapping.Rel); ("net", Mapping.Net); ("hier", Mapping.Hier) ]

(* Figure 4.4 conversions, same model on both sides. *)
let fig44_cases =
  let progs =
    [ ("md-age", W.Programs.maryland_age_query, false);
      ("md-sales", W.Programs.maryland_sales_query, false);
      ("hire", W.Programs.company_hire ~name:"HUNT" ~dept:"SALES" ~age:30
         ~division:"MACHINERY", false);
      ("close-division",
       W.Programs.company_close_division ~division:"CHEMICALS", false);
    ]
  in
  List.concat_map
    (fun (pname, prog, needs_order) ->
      List.filter_map
        (fun (mname, model) ->
          (* the hierarchical source for close-division regenerates;
             all combinations must at least not crash *)
          Some
            (Alcotest.test_case
               (Fmt.str "fig4.4 %s on %s" pname mname)
               `Quick
               (fun () ->
                 expect_verdict ~allow_order:(needs_order || model = Mapping.Hier)
                   (pname ^ "/" ^ mname)
                   (request model model fig44_ops)
                   prog)))
        models)
    progs

(* Cross-model conversions (no schema change): network source program
   converted to run on a relational database — §4.1's "conversion from
   one DBMS to another to account for some schema changes is
   possible". *)
let cross_model_cases =
  [ Alcotest.test_case "net -> rel (md-sales)" `Quick (fun () ->
        expect_verdict ~allow_order:false "net->rel"
          (request Mapping.Net Mapping.Rel [])
          W.Programs.maryland_sales_query);
    Alcotest.test_case "rel -> net (md-age)" `Quick (fun () ->
        expect_verdict ~allow_order:false "rel->net"
          (request Mapping.Rel Mapping.Net [])
          W.Programs.maryland_age_query);
    Alcotest.test_case "net -> hier (md-sales)" `Quick (fun () ->
        expect_verdict ~allow_order:true "net->hier"
          (request Mapping.Net Mapping.Hier [])
          W.Programs.maryland_sales_query);
    Alcotest.test_case "hier -> rel (hire)" `Quick (fun () ->
        expect_verdict ~allow_order:false "hier->rel"
          (request Mapping.Hier Mapping.Rel [])
          (W.Programs.company_hire ~name:"NEW" ~dept:"LABS" ~age:25
             ~division:"CHEMICALS"));
  ]

(* Rename / field ops through the pipeline. *)
let rename_cases =
  let ops_rename =
    [ Schema_change.Rename_entity { from_ = "EMP"; to_ = "EMPLOYEE" };
      Schema_change.Rename_field
        { entity = "EMPLOYEE"; from_ = "AGE"; to_ = "EMP-AGE" };
      Schema_change.Rename_assoc { from_ = "DIV-EMP"; to_ = "STAFF" };
    ]
  in
  [ Alcotest.test_case "renames (md-sales on net)" `Quick (fun () ->
        expect_verdict ~allow_order:false "renames"
          (request Mapping.Net Mapping.Net ops_rename)
          W.Programs.maryland_sales_query);
    Alcotest.test_case "renames (birthday on rel)" `Quick (fun () ->
        expect_verdict ~allow_order:false "renames-upd"
          (request Mapping.Rel Mapping.Rel ops_rename)
          (W.Programs.company_birthday ~division:"CHEMICALS"));
    Alcotest.test_case "add field is transparent" `Quick (fun () ->
        expect_verdict ~allow_order:false "add-field"
          (request Mapping.Net Mapping.Net
             [ Schema_change.Add_field
                 { entity = "EMP";
                   field = Ccv_common.Field.make "SALARY" Ccv_common.Value.Tint;
                   default = Ccv_common.Value.Int 0;
                 };
             ])
          W.Programs.maryland_age_query);
    Alcotest.test_case "drop of a read field refuses" `Quick (fun () ->
        let req =
          request Mapping.Net Mapping.Net
            [ Schema_change.Drop_field { entity = "EMP"; field = "AGE" } ]
        in
        let source = source_program Mapping.Net W.Programs.maryland_age_query in
        match Supervisor.convert_program req source with
        | Error ("program-converter", _) -> ()
        | Error (stage, reason) ->
            Alcotest.failf "wrong stage %s: %s" stage reason
        | Ok _ -> Alcotest.fail "expected the converter to refuse");
  ]

(* Widening DIV-EMP to M:N turns the set into a link record; retrieval
   programs must survive unchanged in behaviour. *)
let widen_cases =
  [ Alcotest.test_case "widen cardinality (md-sales on net)" `Quick (fun () ->
        expect_verdict ~allow_order:false "widen"
          (request Mapping.Net Mapping.Net
             [ Schema_change.Drop_constraint
                 (Semantic.Total_right W.Company.div_emp);
               Schema_change.Widen_cardinality { assoc = W.Company.div_emp };
             ])
          W.Programs.maryland_sales_query);
  ]

(* The Maryland example text: the converted md-sales program must walk
   DIV -> DIV-DEPT -> DEPT(SALES) -> DEPT-EMP -> EMP, i.e. mention the
   new associations. *)
let structure_cases =
  [ Alcotest.test_case "fig4.4 rewrite walks through DEPT" `Quick (fun () ->
        let req = request Mapping.Net Mapping.Net fig44_ops in
        let source = source_program Mapping.Net W.Programs.maryland_sales_query in
        match Supervisor.convert_program req source with
        | Error (stage, reason) -> Alcotest.failf "%s: %s" stage reason
        | Ok report ->
            let names =
              List.concat_map Ccv_abstract.Apattern.names_of
                (Ccv_abstract.Aprog.queries report.Supervisor.optimized)
            in
            let has n = List.exists (Ccv_common.Field.name_equal n) names in
            Alcotest.(check bool) "mentions DEPT" true (has W.Company.dept);
            Alcotest.(check bool) "mentions DIV-DEPT" true (has W.Company.div_dept);
            Alcotest.(check bool) "mentions DEPT-EMP" true (has W.Company.dept_emp);
            Alcotest.(check bool) "drops DIV-EMP" false (has W.Company.div_emp));
  ]

(* §5.2: restricting the extension converts the program with a warning
   and yields a deliberately weaker level of equivalence. *)
let restrict_cases =
  [ Alcotest.test_case "§5.2 extension restriction warns, diverges" `Quick
      (fun () ->
        let req =
          request Mapping.Net Mapping.Net
            [ Schema_change.Restrict_extension
                { entity = "EMP";
                  qual =
                    Ccv_common.Cond.Cmp
                      ( Ccv_common.Cond.Ge,
                        Ccv_common.Cond.Field "AGE",
                        Ccv_common.Cond.Const (Ccv_common.Value.Int 50) );
                };
            ]
        in
        let source = source_program Mapping.Net W.Programs.maryland_age_query in
        let sdb = W.Company.instance () in
        match Supervisor.convert_and_verify req source sdb with
        | Error (stage, e) -> Alcotest.failf "%s: %s" stage e
        | Ok outcome ->
            Alcotest.(check bool)
              "converter warned" true
              (List.exists
                 (fun i -> i.Supervisor.stage = "program-converter")
                 outcome.Supervisor.report.Supervisor.issues);
            (match outcome.Supervisor.verdict with
            | Equivalence.Divergent _ -> ()
            | v ->
                Alcotest.failf
                  "expected divergence from the removed instances, got %a"
                  Equivalence.pp_verdict v));
    Alcotest.test_case "restriction not touching the program is silent" `Quick
      (fun () ->
        let req =
          request Mapping.Net Mapping.Net
            [ Schema_change.Restrict_extension
                { entity = "DIV";
                  qual =
                    Ccv_common.Cond.Cmp
                      ( Ccv_common.Cond.Eq,
                        Ccv_common.Cond.Field "DIV-LOC",
                        Ccv_common.Cond.Const (Ccv_common.Value.Str "NOWHERE")
                      );
                };
            ]
        in
        let source = source_program Mapping.Net W.Programs.maryland_age_query in
        let sdb = W.Company.instance () in
        match Supervisor.convert_and_verify req source sdb with
        | Error (stage, e) -> Alcotest.failf "%s: %s" stage e
        | Ok outcome -> (
            match outcome.Supervisor.verdict with
            | Equivalence.Strict -> ()
            | v -> Alcotest.failf "expected strict, got %a" Equivalence.pp_verdict v));
  ]

let () =
  Alcotest.run "pipeline"
    [ ("fig4.4", fig44_cases);
      ("levels-of-conversion", restrict_cases);
      ("cross-model", cross_model_cases);
      ("renames", rename_cases);
      ("widen", widen_cases);
      ("structure", structure_cases);
    ]
