(* Cross-model generation tests: every canonical paper program,
   generated to each concrete model, must reproduce the abstract
   reference trace on the corresponding realization of the same
   instance (strictly, or modulo enumeration order where the model
   forces a different grouping — the §5.2 "levels of conversion"). *)

open Ccv_model
open Ccv_convert
open Ccv_transform
module W = Ccv_workload

let models = [ ("rel", Mapping.Rel); ("net", Mapping.Net); ("hier", Mapping.Hier) ]

let instance_for schema =
  if schema == W.Empdept.schema then W.Empdept.instance ()
  else if schema == W.Company.schema then W.Company.instance ()
  else W.School.instance ()

let check_verdict ~allow_order name verdict =
  match verdict with
  | Equivalence.Strict -> ()
  | Equivalence.Modulo_order when allow_order -> ()
  | v ->
      Alcotest.failf "%s: expected equivalence, got %a" name
        Equivalence.pp_verdict v

(* Queries that enter the EMP-DEPT link segment from the DEPT side
   need upward navigation, which one fixed hierarchy cannot express —
   the paper's "restrictiveness" observation made concrete.  The
   generator must refuse them rather than produce a wrong program. *)
let expected_hier_failures = [ "su-manager"; "su-d2" ]

let retrieval_cases =
  List.concat_map
    (fun (name, schema, prog) ->
      List.map
        (fun (mname, model) ->
          Alcotest.test_case (name ^ " on " ^ mname) `Quick (fun () ->
              let sdb = instance_for schema in
              let expect_failure =
                model = Mapping.Hier && List.mem name expected_hier_failures
              in
              match Equivalence.check_against_model model sdb prog with
              | Ok check ->
                  if expect_failure then
                    Alcotest.failf
                      "%s/%s: expected a generation refusal, got a program"
                      name mname
                  else
                    check_verdict ~allow_order:(model = Mapping.Hier)
                      (name ^ "/" ^ mname) check.Equivalence.verdict
              | Error reason ->
                  if not expect_failure then
                    Alcotest.failf "%s/%s: generation failed: %s" name mname
                      reason))
        models)
    W.Programs.retrievals

let update_cases =
  let progs =
    [ ("hire", W.Programs.company_hire ~name:"HUNT" ~dept:"SALES" ~age:30
         ~division:"MACHINERY");
      ("hire-bad-division", W.Programs.company_hire ~name:"HUNT" ~dept:"SALES"
         ~age:30 ~division:"NOWHERE");
      ("birthday", W.Programs.company_birthday ~division:"CHEMICALS");
      ("close-division", W.Programs.company_close_division ~division:"MACHINERY");
    ]
  in
  List.concat_map
    (fun (name, prog) ->
      List.map
        (fun (mname, model) ->
          Alcotest.test_case (name ^ " on " ^ mname) `Quick (fun () ->
              let sdb = W.Company.instance () in
              match Equivalence.check_against_model model sdb prog with
              | Ok check ->
                  check_verdict ~allow_order:(model = Mapping.Hier)
                    (name ^ "/" ^ mname) check.Equivalence.verdict
              | Error reason ->
                  Alcotest.failf "%s/%s: generation failed: %s" name mname
                    reason))
        models)
    progs

(* The update programs must leave equivalent database contents too:
   run abstractly, extract the concrete final state, compare. *)
let state_cases =
  let progs =
    [ ("hire", W.Programs.company_hire ~name:"HUNT" ~dept:"SALES" ~age:30
         ~division:"MACHINERY");
      ("birthday", W.Programs.company_birthday ~division:"CHEMICALS");
      ("close-division", W.Programs.company_close_division ~division:"MACHINERY");
    ]
  in
  List.concat_map
    (fun (name, prog) ->
      List.map
        (fun (mname, model) ->
          Alcotest.test_case (name ^ " state on " ^ mname) `Quick (fun () ->
              let sdb = W.Company.instance () in
              let reference = (Ccv_abstract.Ainterp.run sdb prog).Ccv_abstract.Ainterp.db in
              let schema = Sdb.schema sdb in
              let mapping, db =
                match model with
                | Mapping.Rel ->
                    let m, rs = Mapping.derive_relational schema in
                    (m, Engines.Rel_db (Mapping.load_relational rs sdb))
                | Mapping.Net ->
                    let m, ns = Mapping.derive_network schema in
                    (m, Engines.Net_db (Mapping.load_network m ns sdb))
                | Mapping.Hier ->
                    let m, hs = Mapping.derive_hier schema in
                    (m, Engines.Hier_db (Mapping.load_hier m hs sdb))
              in
              match Generator.generate mapping prog with
              | Error reason -> Alcotest.failf "generation failed: %s" reason
              | Ok { Generator.program; _ } ->
                  let r = Engines.run db program in
                  let back =
                    match r.Engines.final_db with
                    | Engines.Rel_db rdb -> Mapping.extract_relational schema rdb
                    | Engines.Net_db ndb -> Mapping.extract_network mapping ndb
                    | Engines.Hier_db hdb -> Mapping.extract_hier mapping hdb
                  in
                  Alcotest.(check bool)
                    (name ^ "/" ^ mname ^ " db state")
                    true
                    (Sdb.equal_contents reference back)))
        models)
    progs

(* Property: any generated abstract program, realized on every model
   that can host it, reproduces the reference trace (strictly for
   rel/net, modulo enumeration order for hier). *)
let cross_engine_prop =
  QCheck.Test.make ~name:"random programs behave identically on all engines"
    ~count:40
    QCheck.(int_range 1 100_000)
    (fun seed ->
      let sample = W.Company.instance () in
      let progs = W.Generator.batch ~seed W.Company.schema ~sample ~n:2 () in
      List.for_all
        (fun (_fam, prog) ->
          List.for_all
            (fun model ->
              let sdb = W.Company.instance () in
              match Equivalence.check_against_model model sdb prog with
              | Error _ -> true (* not hostable on this model *)
              | Ok c -> (
                  match c.Equivalence.verdict with
                  | Equivalence.Strict -> true
                  | Equivalence.Modulo_order -> model = Mapping.Hier
                  | Equivalence.Divergent _ -> false))
            [ Mapping.Rel; Mapping.Net; Mapping.Hier ])
        progs)

let () =
  Alcotest.run "generator"
    [ ("retrievals", retrieval_cases);
      ("updates", update_cases);
      ("final-state", state_cases);
      ("props", [ QCheck_alcotest.to_alcotest cross_engine_prop ]);
    ]
