(* Hierarchical substrate: schema validation, occurrence trees,
   hierarchic sequence, and the DL/I calls with SSAs. *)

open Ccv_common
open Ccv_hier

let check = Alcotest.(check bool)

let schema =
  Hschema.make
    [ Hschema.seg_decl "DIV" [ Field.make "DIV-NAME" Value.Tstr ];
      Hschema.seg_decl ~parent:"DIV" "DEPT" [ Field.make "DEPT-NAME" Value.Tstr ];
      Hschema.seg_decl ~parent:"DEPT" ~seq_field:"EMP-NAME" "EMP"
        [ Field.make "EMP-NAME" Value.Tstr; Field.make "AGE" Value.Tint ];
    ]

let seg1 name = Row.of_list [ ("DIV-NAME", Value.Str name) ]
let dept name = Row.of_list [ ("DEPT-NAME", Value.Str name) ]

let empr name age =
  Row.of_list [ ("EMP-NAME", Value.Str name); ("AGE", Value.Int age) ]

(* div A (dept S (emps X Z), dept T (emp Y)), div B (dept U) *)
let sample () =
  let db = Hdb.create schema in
  let db, a = Hdb.insert_exn db ~parent:None "DIV" (seg1 "A") in
  let db, s = Hdb.insert_exn db ~parent:(Some a) "DEPT" (dept "S") in
  let db, x = Hdb.insert_exn db ~parent:(Some s) "EMP" (empr "X" 30) in
  let db, z = Hdb.insert_exn db ~parent:(Some s) "EMP" (empr "Z" 50) in
  let db, t = Hdb.insert_exn db ~parent:(Some a) "DEPT" (dept "T") in
  let db, y = Hdb.insert_exn db ~parent:(Some t) "EMP" (empr "Y" 40) in
  let db, b = Hdb.insert_exn db ~parent:None "DIV" (seg1 "B") in
  let db, u = Hdb.insert_exn db ~parent:(Some b) "DEPT" (dept "U") in
  (db, a, s, x, z, t, y, b, u)

let schema_tests =
  [ Alcotest.test_case "cycles rejected" `Quick (fun () ->
        try
          ignore
            (Hschema.make
               [ Hschema.seg_decl ~parent:"B" "A" [ Field.make "X" Value.Tint ];
                 Hschema.seg_decl ~parent:"A" "B" [ Field.make "Y" Value.Tint ];
               ]);
          Alcotest.fail "expected failure"
        with Invalid_argument _ -> ());
    Alcotest.test_case "path_to walks the hierarchy" `Quick (fun () ->
        let path = List.map (fun s -> s.Hschema.sname) (Hschema.path_to schema "EMP") in
        check "path" true (path = [ "DIV"; "DEPT"; "EMP" ]));
  ]

let hdb_tests =
  [ Alcotest.test_case "hierarchic sequence is preorder" `Quick (fun () ->
        let db, a, s, x, z, t, y, b, u = sample () in
        check "preorder" true
          (Hdb.hierarchic_sequence_silent db = [ a; s; x; z; t; y; b; u ]));
    Alcotest.test_case "seq field orders twins" `Quick (fun () ->
        let db, _, s, x, z, _, _, _, _ = sample () in
        (* EMP-NAME is the sequence field: M sorts before X and Z. *)
        let db, w = Hdb.insert_exn db ~parent:(Some s) "EMP" (empr "M" 20) in
        check "M first" true (Hdb.children_of db s = [ w; x; z ]);
        let db, y = Hdb.insert_exn db ~parent:(Some s) "EMP" (empr "Y" 20) in
        check "Y between X and Z" true (Hdb.children_of db s = [ w; x; y; z ]));
    Alcotest.test_case "delete removes the subtree" `Quick (fun () ->
        let db, a, _, _, _, _, _, _, _ = sample () in
        match Hdb.delete db a with
        | Ok db' ->
            check "five segments gone" true (Hdb.total_segments db' = 2);
            check "root list updated" true (List.length (Hdb.root_keys db') = 1)
        | Error st -> Alcotest.failf "delete: %s" (Status.show st));
    Alcotest.test_case "child under wrong parent type rejected" `Quick
      (fun () ->
        let db, a, _, _, _, _, _, _, _ = sample () in
        match Hdb.insert db ~parent:(Some a) "EMP" (empr "Q" 1) with
        | Error (Status.Invalid_request _) -> ()
        | _ -> Alcotest.fail "expected refusal");
    Alcotest.test_case "replace updates fields" `Quick (fun () ->
        let db, _, _, x, _, _, _, _, _ = sample () in
        match Hdb.replace db x [ ("AGE", Value.Int 77) ] with
        | Ok db' -> (
            match Hdb.get_silent db' x with
            | Some (_, row) -> check "age" true (Row.get row "AGE" = Some (Value.Int 77))
            | None -> Alcotest.fail "missing")
        | Error st -> Alcotest.failf "replace: %s" (Status.show st));
  ]

let exec db pos stmt =
  let o = Hinterp.exec db pos ~env:Cond.no_env stmt in
  (o.Hinterp.db, o.Hinterp.pos, o.Hinterp.status)

let ssa = Hdml.ssa

let dml_tests =
  [ Alcotest.test_case "GU finds the first match with a qualified path"
      `Quick (fun () ->
        let db, _, _, _, z, _, _, _, _ = sample () in
        let pos = Hinterp.initial_position in
        let _, pos, s =
          exec db pos
            (Hdml.Gu
               [ ssa ~qual:(Cond.eq_field_const "DIV-NAME" (Value.Str "A")) "DIV";
                 ssa ~qual:(Cond.eq_field_const "DEPT-NAME" (Value.Str "S")) "DEPT";
                 ssa ~qual:(Cond.eq_field_const "EMP-NAME" (Value.Str "Z")) "EMP";
               ])
        in
        check "found Z" true (s = Status.Ok && Hinterp.current_key pos = Some z));
    Alcotest.test_case "GN sweeps all EMPs forward" `Quick (fun () ->
        let db, _, _, x, z, _, y, _, _ = sample () in
        let rec sweep db pos acc =
          let db, pos, s = exec db pos (Hdml.Gn [ ssa "EMP" ]) in
          if s = Status.Ok then
            match Hinterp.current_key pos with
            | Some k -> sweep db pos (k :: acc)
            | None -> List.rev acc
          else List.rev acc
        in
        let seen = sweep db Hinterp.initial_position [] in
        check "hierarchic order" true (seen = [ x; z; y ]));
    Alcotest.test_case "GN with ancestor pins stays in the subtree" `Quick
      (fun () ->
        let db, _, _, x, z, _, _, _, _ = sample () in
        let pins =
          [ ssa ~qual:(Cond.eq_field_const "DIV-NAME" (Value.Str "A")) "DIV";
            ssa ~qual:(Cond.eq_field_const "DEPT-NAME" (Value.Str "S")) "DEPT";
            ssa "EMP";
          ]
        in
        let rec sweep db pos acc =
          let db, pos, s = exec db pos (Hdml.Gn pins) in
          if s = Status.Ok then
            match Hinterp.current_key pos with
            | Some k -> sweep db pos (k :: acc)
            | None -> List.rev acc
          else List.rev acc
        in
        check "only dept S emps" true
          (sweep db Hinterp.initial_position [] = [ x; z ]));
    Alcotest.test_case "GNP iterates within parentage" `Quick (fun () ->
        let db, _, _, x, z, _, _, _, _ = sample () in
        let pos = Hinterp.initial_position in
        let db, pos, _ =
          exec db pos
            (Hdml.Gu
               [ ssa ~qual:(Cond.eq_field_const "DEPT-NAME" (Value.Str "S")) "DEPT" ])
        in
        let db, pos, s1 = exec db pos (Hdml.Gnp [ ssa "EMP" ]) in
        check "first child" true
          (s1 = Status.Ok && Hinterp.current_key pos = Some x);
        let db, pos, _ = exec db pos (Hdml.Gnp [ ssa "EMP" ]) in
        check "second child" true (Hinterp.current_key pos = Some z);
        let _, _, s3 = exec db pos (Hdml.Gnp [ ssa "EMP" ]) in
        check "end" true (s3 = Status.End_of_set));
    Alcotest.test_case "ISRT under a located parent; DLET; REPL" `Quick
      (fun () ->
        let db, _, _, _, _, _, _, _, _ = sample () in
        let pos = Hinterp.initial_position in
        let env name =
          List.assoc_opt name
            [ ("EMP.EMP-NAME", Value.Str "NEW"); ("EMP.AGE", Value.Int 22) ]
        in
        let o =
          Hinterp.exec db pos ~env
            (Hdml.Isrt
               ( "EMP",
                 [ ssa ~qual:(Cond.eq_field_const "DEPT-NAME" (Value.Str "U")) "DEPT" ]
               ))
        in
        check "inserted" true (o.Hinterp.status = Status.Ok);
        let db = o.Hinterp.db in
        let o2 =
          Hinterp.exec db o.Hinterp.pos
            ~env:(fun n -> List.assoc_opt n [ ("EMP.AGE", Value.Int 23) ])
            (Hdml.Repl [ "AGE" ])
        in
        check "replaced" true (o2.Hinterp.status = Status.Ok);
        let o3 =
          Hinterp.exec o2.Hinterp.db o2.Hinterp.pos ~env:Cond.no_env Hdml.Dlet
        in
        check "deleted" true (o3.Hinterp.status = Status.Ok);
        check "back to baseline" true (Hdb.total_segments o3.Hinterp.db = 8));
    Alcotest.test_case "GU miss reports not-found and keeps position" `Quick
      (fun () ->
        let db, _, _, x, _, _, _, _, _ = sample () in
        let pos = Hinterp.initial_position in
        let db, pos, _ = exec db pos (Hdml.Gn [ ssa "EMP" ]) in
        let _, pos', s =
          exec db pos
            (Hdml.Gu [ ssa ~qual:(Cond.eq_field_const "DIV-NAME" (Value.Str "Q")) "DIV" ])
        in
        check "not found" true (s = Status.Not_found);
        check "position kept" true (Hinterp.current_key pos' = Some x));
  ]

(* Property: the hierarchic sequence visits every segment exactly once
   (preorder is a permutation of the arena). *)
let seq_prop =
  QCheck.Test.make ~name:"hierarchic sequence is a permutation" ~count:50
    QCheck.(int_range 1 500)
    (fun seed ->
      let rng = Prng.create ~seed in
      let db = ref (Hdb.create schema) in
      let divs = ref [] in
      let depts = ref [] in
      for i = 0 to 2 + Prng.int rng 3 do
        let db', d =
          Hdb.insert_exn !db ~parent:None "DIV" (seg1 (Printf.sprintf "D%d" i))
        in
        db := db';
        divs := d :: !divs
      done;
      for i = 0 to 3 + Prng.int rng 5 do
        let parent = Prng.pick rng !divs in
        let db', d =
          Hdb.insert_exn !db ~parent:(Some parent) "DEPT"
            (dept (Printf.sprintf "T%d" i))
        in
        db := db';
        depts := d :: !depts
      done;
      for i = 0 to 5 + Prng.int rng 8 do
        let parent = Prng.pick rng !depts in
        let db', _ =
          Hdb.insert_exn !db ~parent:(Some parent) "EMP"
            (empr (Printf.sprintf "E%d" i) (20 + i))
        in
        db := db'
      done;
      let seq = Hdb.hierarchic_sequence_silent !db in
      List.length seq = Hdb.total_segments !db
      && List.length (List.sort_uniq compare seq) = List.length seq)

let () =
  Alcotest.run "hierarchical"
    [ ("schema", schema_tests);
      ("hdb", hdb_tests);
      ("dml", dml_tests);
      ("props", [ QCheck_alcotest.to_alcotest seq_prop ]);
    ]
