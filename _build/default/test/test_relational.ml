(* Relational substrate: schema validation, instance operations,
   algebra evaluation, optimizer laws (property-checked), and the
   SEQUEL layer. *)

open Ccv_common
open Ccv_relational

let check = Alcotest.(check bool)

let emp_decl =
  Rschema.rel_decl "EMP"
    [ Field.make "E#" Value.Tstr; Field.make "ENAME" Value.Tstr;
      Field.make "AGE" Value.Tint;
    ]
    ~key:[ "E#" ]

let dept_decl =
  Rschema.rel_decl "DEPT"
    [ Field.make "D#" Value.Tstr; Field.make "DNAME" Value.Tstr ]
    ~key:[ "D#" ]

let ed_decl =
  Rschema.rel_decl "ED"
    [ Field.make "E#" Value.Tstr; Field.make "D#" Value.Tstr;
      Field.make "YRS" Value.Tint;
    ]
    ~key:[ "E#"; "D#" ]

let schema = Rschema.make [ emp_decl; dept_decl; ed_decl ]

let emp e n a =
  Row.of_list [ ("E#", Value.Str e); ("ENAME", Value.Str n); ("AGE", Value.Int a) ]

let dept d n = Row.of_list [ ("D#", Value.Str d); ("DNAME", Value.Str n) ]

let ed e d y =
  Row.of_list [ ("E#", Value.Str e); ("D#", Value.Str d); ("YRS", Value.Int y) ]

let sample () =
  let db = Rdb.create schema in
  let db =
    Rdb.load db "EMP"
      [ emp "E1" "JONES" 40; emp "E2" "BLAKE" 30; emp "E3" "WARD" 50 ]
  in
  let db = Rdb.load db "DEPT" [ dept "D1" "SALES"; dept "D2" "LABS" ] in
  Rdb.load db "ED" [ ed "E1" "D1" 5; ed "E2" "D2" 3; ed "E3" "D1" 9 ]

let schema_tests =
  [ Alcotest.test_case "duplicate relation rejected" `Quick (fun () ->
        try
          ignore (Rschema.make [ emp_decl; emp_decl ]);
          Alcotest.fail "expected failure"
        with Invalid_argument _ -> ());
    Alcotest.test_case "key must exist" `Quick (fun () ->
        try
          ignore (Rschema.rel_decl "X" [ Field.make "A" Value.Tint ] ~key:[ "B" ]);
          Alcotest.fail "expected failure"
        with Invalid_argument _ -> ());
    Alcotest.test_case "add/remove/replace" `Quick (fun () ->
        let s = Rschema.remove schema "ED" in
        check "removed" false (Rschema.mem s "ED");
        let s = Rschema.add s ed_decl in
        check "back" true (Rschema.mem s "ED"));
  ]

let rdb_tests =
  [ Alcotest.test_case "duplicate key rejected" `Quick (fun () ->
        let db = sample () in
        match Rdb.insert db "EMP" (emp "E1" "X" 1) with
        | Error (Status.Duplicate_key _) -> ()
        | _ -> Alcotest.fail "expected duplicate key");
    Alcotest.test_case "type mismatch rejected" `Quick (fun () ->
        let db = sample () in
        match
          Rdb.insert db "EMP"
            (Row.of_list
               [ ("E#", Value.Str "E9"); ("ENAME", Value.Str "N");
                 ("AGE", Value.Str "old");
               ])
        with
        | Error (Status.Invalid_request _) -> ()
        | _ -> Alcotest.fail "expected invalid");
    Alcotest.test_case "delete_where counts" `Quick (fun () ->
        let db = sample () in
        let _, n =
          Rdb.delete_where db "EMP"
            (Cond.Cmp (Cond.Gt, Cond.Field "AGE", Cond.Const (Value.Int 35)))
            ~env:Cond.no_env
        in
        check "two deleted" true (n = 2));
    Alcotest.test_case "update_where applies expressions" `Quick (fun () ->
        let db = sample () in
        match
          Rdb.update_where db "EMP" Cond.True ~env:Cond.no_env
            [ ("AGE", Cond.Add (Cond.Field "AGE", Cond.Const (Value.Int 1))) ]
        with
        | Ok (db', 3) ->
            let ages =
              List.map (fun r -> Row.get_exn r "AGE") (Rdb.rows_silent db' "EMP")
            in
            check "bumped" true
              (ages = [ Value.Int 41; Value.Int 31; Value.Int 51 ])
        | _ -> Alcotest.fail "expected 3 updates");
    Alcotest.test_case "counters charge reads" `Quick (fun () ->
        let db = sample () in
        Counters.reset (Rdb.counters db);
        ignore (Rdb.rows db "EMP");
        check "3 reads" true (Counters.reads (Rdb.counters db) = 3));
  ]

let algebra_tests =
  let env = Cond.no_env in
  [ Alcotest.test_case "select + project" `Quick (fun () ->
        let db = sample () in
        let rows =
          Algebra.eval ~env db
            (Algebra.Project
               ( [ "ENAME" ],
                 Algebra.Select
                   ( Cond.Cmp
                       (Cond.Ge, Cond.Field "AGE", Cond.Const (Value.Int 40)),
                     Algebra.Rel "EMP" ) ))
        in
        check "two rows" true (List.length rows = 2);
        check "only ename" true
          (List.for_all (fun r -> Row.fields r = [ "ENAME" ]) rows));
    Alcotest.test_case "natural join" `Quick (fun () ->
        let db = sample () in
        let rows =
          Algebra.eval ~env db
            (Algebra.Natural_join (Algebra.Rel "EMP", Algebra.Rel "ED"))
        in
        check "3 joined" true (List.length rows = 3);
        check "has D#" true (List.for_all (fun r -> Row.mem r "D#") rows));
    Alcotest.test_case "semijoin is the IN shape" `Quick (fun () ->
        let db = sample () in
        let rows =
          Algebra.eval ~env db
            (Algebra.Semijoin
               ( ("E#", "E#"),
                 Algebra.Rel "EMP",
                 Algebra.Select
                   ( Cond.Cmp
                       (Cond.Eq, Cond.Field "D#", Cond.Const (Value.Str "D1")),
                     Algebra.Rel "ED" ) ))
        in
        check "2 emps in D1" true (List.length rows = 2));
    Alcotest.test_case "union, diff, distinct, sort" `Quick (fun () ->
        let db = sample () in
        let all = Algebra.Rel "EMP" in
        let u = Algebra.eval ~env db (Algebra.Union (all, all)) in
        check "union doubles" true (List.length u = 6);
        let d =
          Algebra.eval ~env db (Algebra.Distinct (Algebra.Union (all, all)))
        in
        check "distinct collapses" true (List.length d = 3);
        let empty = Algebra.eval ~env db (Algebra.Diff (all, all)) in
        check "diff empty" true (empty = []);
        let sorted = Algebra.eval ~env db (Algebra.Sort ([ "AGE" ], all)) in
        check "sorted" true
          (List.map (fun r -> Row.get_exn r "AGE") sorted
          = [ Value.Int 30; Value.Int 40; Value.Int 50 ]));
    Alcotest.test_case "rename" `Quick (fun () ->
        let db = sample () in
        let rows =
          Algebra.eval ~env db
            (Algebra.Rename ([ ("ENAME", "NAME") ], Algebra.Rel "EMP"))
        in
        check "renamed" true (List.for_all (fun r -> Row.mem r "NAME") rows));
  ]

(* Random shallow algebra expressions for the optimizer law. *)
let algebra_gen =
  let open QCheck.Gen in
  let cond_gen =
    oneof
      [ return Cond.True;
        map
          (fun n ->
            Cond.Cmp (Cond.Gt, Cond.Field "AGE", Cond.Const (Value.Int n)))
          (int_range 25 45);
        map
          (fun d ->
            Cond.Cmp (Cond.Eq, Cond.Field "D#", Cond.Const (Value.Str d)))
          (oneofl [ "D1"; "D2" ]);
      ]
  in
  let base =
    oneofl [ Algebra.Rel "EMP"; Algebra.Rel "ED"; Algebra.Rel "DEPT" ]
  in
  let rec expr n =
    if n = 0 then base
    else
      frequency
        [ (2, base);
          (3, map2 (fun c e -> Algebra.Select (c, e)) cond_gen (expr (n - 1)));
          (2, map2 (fun a b -> Algebra.Product (a, b)) base (expr (n - 1)));
          (2, map2 (fun a b -> Algebra.Natural_join (a, b)) base (expr (n - 1)));
          (1, map (fun e -> Algebra.Distinct e) (expr (n - 1)));
          (1, map (fun e -> Algebra.Sort ([ "AGE" ], e)) (expr (n - 1)));
        ]
  in
  expr 3

let algebra_arb = QCheck.make ~print:Algebra.show algebra_gen
let multiset_eq a b = List.sort Row.compare a = List.sort Row.compare b

(* Random expressions can be ill-typed (a condition naming a field the
   operand lacks); both sides must then fail identically. *)
let try_eval db e =
  try Ok (Algebra.eval ~env:Cond.no_env db e) with Cond.Unbound f -> Error f

let algebra_props =
  [ QCheck.Test.make ~name:"optimize preserves evaluation" ~count:200
      algebra_arb (fun e ->
        let db = sample () in
        match try_eval db e, try_eval db (Algebra.optimize schema e) with
        | Ok before, Ok after -> multiset_eq before after
        | Error _, Error _ -> true
        | Ok _, Error _ | Error _, Ok _ -> false);
    QCheck.Test.make ~name:"optimize never grows the plan" ~count:200
      algebra_arb (fun e ->
        Algebra.size (Algebra.optimize schema e) <= Algebra.size e);
    QCheck.Test.make ~name:"optimize is idempotent" ~count:200 algebra_arb
      (fun e ->
        let once = Algebra.optimize schema e in
        Algebra.equal once (Algebra.optimize schema once));
  ]

let sql_tests =
  [ Alcotest.test_case "nested IN compiles to semijoin" `Quick (fun () ->
        let db = sample () in
        let q =
          Sql.query ~select:[ "ENAME" ]
            ~where_in:
              [ ( "E#",
                  Sql.query ~select:[ "E#" ]
                    ~where_:
                      (Cond.Cmp
                         (Cond.Eq, Cond.Field "D#", Cond.Const (Value.Str "D2")))
                    "ED" );
              ]
            "EMP"
        in
        let rows = Sql.run_query ~env:Cond.no_env db q in
        check "one emp" true
          (List.map (fun r -> Row.get_exn r "ENAME") rows
          = [ Value.Str "BLAKE" ]));
    Alcotest.test_case "insert/delete/update statements" `Quick (fun () ->
        let db = sample () in
        let exec db s =
          match Sql.exec ~env:Cond.no_env db s with
          | Ok (db, _) -> db
          | Error st -> Alcotest.failf "exec: %s" (Status.show st)
        in
        let db =
          exec db
            (Sql.Insert
               ( "DEPT",
                 [ ("D#", Cond.Const (Value.Str "D3"));
                   ("DNAME", Cond.Const (Value.Str "OPS"));
                 ] ))
        in
        check "3 depts" true (Rdb.cardinality db "DEPT" = 3);
        let db =
          exec db
            (Sql.Update
               ( "DEPT",
                 [ ("DNAME", Cond.Const (Value.Str "OPS2")) ],
                 Cond.Cmp (Cond.Eq, Cond.Field "D#", Cond.Const (Value.Str "D3"))
               ))
        in
        let db =
          exec db
            (Sql.Delete
               ( "DEPT",
                 Cond.Cmp (Cond.Eq, Cond.Field "D#", Cond.Const (Value.Str "D1"))
               ))
        in
        check "2 depts" true (Rdb.cardinality db "DEPT" = 2));
    Alcotest.test_case "order by" `Quick (fun () ->
        let db = sample () in
        let q = Sql.query ~order_by:[ "AGE" ] "EMP" in
        let rows = Sql.run_query ~env:Cond.no_env db q in
        check "ascending" true
          (List.map (fun r -> Row.get_exn r "AGE") rows
          = [ Value.Int 30; Value.Int 40; Value.Int 50 ]));
  ]

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "relational"
    [ ("schema", schema_tests);
      ("rdb", rdb_tests);
      ("algebra", algebra_tests);
      qsuite "algebra-props" algebra_props;
      ("sql", sql_tests);
    ]
