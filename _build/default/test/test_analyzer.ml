(* Analyzer round-trips: for each canonical abstract program, generate
   a concrete program per model, analyze it back, and check that the
   recovered abstract program behaves identically (same I/O trace and
   same final semantic contents) on the reference interpreter.  This is
   the paper's decompilation/compilation cycle through the high-level
   representation. *)

open Ccv_model
open Ccv_abstract
open Ccv_convert
open Ccv_transform
module W = Ccv_workload

let models = [ ("rel", Mapping.Rel); ("net", Mapping.Net); ("hier", Mapping.Hier) ]

let mapping_for model schema =
  match model with
  | Mapping.Rel -> fst (Mapping.derive_relational schema)
  | Mapping.Net -> fst (Mapping.derive_network schema)
  | Mapping.Hier -> fst (Mapping.derive_hier schema)

let instance_for schema =
  if schema == W.Empdept.schema then W.Empdept.instance ()
  else if schema == W.Company.schema then W.Company.instance ()
  else W.School.instance ()

let roundtrip_case (name, schema, prog) (mname, model) =
  Alcotest.test_case (name ^ " via " ^ mname) `Quick (fun () ->
      let mapping = mapping_for model schema in
      match Generator.generate mapping prog with
      | Error _ -> () (* generation refusals are covered elsewhere *)
      | Ok { Generator.program; _ } -> (
          match Analyzer.analyze mapping program with
          | Error reason ->
              Alcotest.failf "%s/%s: analysis failed: %s" name mname reason
          | Ok { Analyzer.aprog; _ } ->
              let sdb = instance_for schema in
              let r1 = Ainterp.run sdb prog in
              let r2 = Ainterp.run sdb aprog in
              (match
                 Equivalence.compare_traces r1.Ainterp.trace r2.Ainterp.trace
               with
              | Equivalence.Strict -> ()
              | v ->
                  Alcotest.failf "%s/%s: recovered program diverges: %a@.%a"
                    name mname Equivalence.pp_verdict v Aprog.pp aprog);
              Alcotest.(check bool)
                (name ^ "/" ^ mname ^ " contents")
                true
                (Sdb.equal_contents r1.Ainterp.db r2.Ainterp.db)))

let programs =
  W.Programs.retrievals
  @ [ ("hire", W.Company.schema,
       W.Programs.company_hire ~name:"HUNT" ~dept:"SALES" ~age:30
         ~division:"MACHINERY");
      ("birthday", W.Company.schema,
       W.Programs.company_birthday ~division:"CHEMICALS");
      ("close-division", W.Company.schema,
       W.Programs.company_close_division ~division:"MACHINERY");
    ]

let roundtrip_cases =
  List.concat_map
    (fun p -> List.map (roundtrip_case p) models)
    programs

(* Hazard detection: a hand-written program that tests a raw status
   code must be rejected with the §3.2 status-dependence diagnosis. *)
let hazard_cases =
  [ Alcotest.test_case "status-code dependence rejected" `Quick (fun () ->
        let open Ccv_network in
        let mapping = mapping_for Mapping.Net W.Company.schema in
        let bad : Dml.t Host.program =
          { Host.name = "BAD-STATUS";
            body =
              [ Host.Dml (Dml.Find (Dml.Any ("EMP", Ccv_common.Cond.True)));
                Host.If
                  ( Ccv_common.Cond.Cmp
                      ( Ccv_common.Cond.Eq,
                        Ccv_common.Cond.Var Host.status_var,
                        Ccv_common.Cond.Const (Ccv_common.Value.Str "0307") ),
                    [ Host.Display [ Host.str "END" ] ],
                    [] );
              ];
          }
        in
        match Analyzer.analyze_network mapping bad with
        | Error reason ->
            Alcotest.(check bool)
              "mentions status dependence" true
              (List.exists
                 (fun w -> String.equal w "status-code")
                 (String.split_on_char ' ' reason))
        | Ok _ -> Alcotest.fail "expected the analyzer to reject");
    Alcotest.test_case "process-first hazard flagged" `Quick (fun () ->
        let open Ccv_network in
        let mapping = mapping_for Mapping.Net W.Company.schema in
        let prog : Dml.t Host.program =
          { Host.name = "PROCESS-FIRST";
            body =
              [ Host.Dml (Dml.Find (Dml.Any ("DIV", Ccv_common.Cond.True)));
                Host.While
                  ( Host.status_ok,
                    [ Host.Dml (Dml.Get "DIV");
                      Host.Dml
                        (Dml.Find
                           (Dml.First_within ("EMP", "DIV-EMP", Ccv_common.Cond.True)));
                      Host.If
                        ( Host.status_ok,
                          [ Host.Dml (Dml.Get "EMP");
                            Host.Display [ Host.v "EMP.EMP-NAME" ];
                          ],
                          [] );
                      Host.Dml (Dml.Find (Dml.Duplicate ("DIV", Ccv_common.Cond.True)));
                    ] );
              ];
          }
        in
        match Analyzer.analyze_network mapping prog with
        | Error reason -> Alcotest.failf "analysis failed: %s" reason
        | Ok { Analyzer.hazards; _ } ->
            Alcotest.(check bool)
              "order-dependence hazard present" true
              (List.exists
                 (fun h ->
                   List.exists
                     (fun w -> w = "order")
                     (String.split_on_char ' ' h))
                 hazards));
  ]

let () =
  Alcotest.run "analyzer"
    [ ("roundtrips", roundtrip_cases); ("hazards", hazard_cases) ]
