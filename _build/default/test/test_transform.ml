(* Transform layer: restructuring operators on schemas, the data
   translator, change classification, and inverse analysis. *)

open Ccv_common
open Ccv_model
open Ccv_transform
module W = Ccv_workload

let check = Alcotest.(check bool)

let interpose_op =
  Schema_change.Interpose
    { through = W.Company.div_emp;
      new_entity = W.Company.dept;
      group_by = [ "DEPT-NAME" ];
      left_assoc = W.Company.div_dept;
      right_assoc = W.Company.dept_emp;
    }

let apply op = Schema_change.apply W.Company.schema op

let schema_change_tests =
  [ Alcotest.test_case "rename entity updates associations and constraints"
      `Quick (fun () ->
        match apply (Schema_change.Rename_entity { from_ = "EMP"; to_ = "STAFF" }) with
        | Ok s ->
            check "entity renamed" true (Semantic.find_entity s "STAFF" <> None);
            let a = Semantic.find_assoc_exn s W.Company.div_emp in
            check "assoc right side" true (Field.name_equal a.right "STAFF")
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "rename field keeps key membership" `Quick (fun () ->
        match
          apply
            (Schema_change.Rename_field
               { entity = "EMP"; from_ = "EMP-NAME"; to_ = "FULL-NAME" })
        with
        | Ok s ->
            let e = Semantic.find_entity_exn s "EMP" in
            check "key follows" true (e.key = [ "FULL-NAME" ])
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "dropping a key field refused" `Quick (fun () ->
        match apply (Schema_change.Drop_field { entity = "EMP"; field = "EMP-NAME" }) with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected refusal");
    Alcotest.test_case "interpose reshapes schema" `Quick (fun () ->
        match apply interpose_op with
        | Ok s ->
            let dept = Semantic.find_entity_exn s "DEPT" in
            check "dept keyed by owner key + group" true
              (dept.key = [ "DIV-NAME"; "DEPT-NAME" ]);
            let emp = Semantic.find_entity_exn s "EMP" in
            check "emp lost DEPT-NAME" false (Field.mem emp.fields "DEPT-NAME");
            check "old assoc gone" true
              (Semantic.find_assoc s W.Company.div_emp = None);
            check "totality split" true
              (List.mem (Semantic.Total_right W.Company.dept_emp)
                 s.Semantic.constraints)
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "interpose cannot group a key field" `Quick (fun () ->
        match
          apply
            (Schema_change.Interpose
               { through = W.Company.div_emp;
                 new_entity = "X";
                 group_by = [ "EMP-NAME" ];
                 left_assoc = "A1";
                 right_assoc = "A2";
               })
        with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected refusal");
    Alcotest.test_case "collapse undoes interpose on the schema" `Quick
      (fun () ->
        let s1 = Schema_change.apply_exn W.Company.schema interpose_op in
        match
          Schema_change.apply s1
            (Schema_change.Collapse
               { left_assoc = W.Company.div_dept;
                 right_assoc = W.Company.dept_emp;
                 removed_entity = W.Company.dept;
                 restored_assoc = W.Company.div_emp;
               })
        with
        | Ok s2 ->
            let emp = Semantic.find_entity_exn s2 "EMP" in
            check "emp regained DEPT-NAME" true (Field.mem emp.fields "DEPT-NAME");
            check "assoc restored" true
              (Semantic.find_assoc s2 W.Company.div_emp <> None)
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "classification covers all operators" `Quick (fun () ->
        check "interpose is structural" true
          (Schema_change.classify interpose_op = Schema_change.Structural_split);
        check "rename class" true
          (Schema_change.classify
             (Schema_change.Rename_entity { from_ = "A"; to_ = "B" })
          = Schema_change.Renaming));
  ]

let translate op db = Data_translate.translate db op

let data_tests =
  [ Alcotest.test_case "add_field fills the default everywhere" `Quick
      (fun () ->
        let db = W.Company.instance () in
        match
          translate
            (Schema_change.Add_field
               { entity = "EMP";
                 field = Field.make "SALARY" Value.Tint;
                 default = Value.Int 100;
               })
            db
        with
        | Ok (db', _) ->
            check "all filled" true
              (List.for_all
                 (fun r -> Row.get r "SALARY" = Some (Value.Int 100))
                 (Sdb.rows_silent db' "EMP"))
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "interpose groups distinct (division, dept) pairs"
      `Quick (fun () ->
        let db = W.Company.instance () in
        match translate interpose_op db with
        | Ok (db', _) ->
            (* MACHINERY: SALES+DESIGN; CHEMICALS: SALES+LABS -> 4 depts *)
            check "4 depts" true (List.length (Sdb.rows_silent db' "DEPT") = 4);
            check "emp count preserved" true
              (List.length (Sdb.rows_silent db' "EMP")
              = List.length (Sdb.rows_silent db "EMP"));
            check "dept-emp links = old div-emp links" true
              (List.length (Sdb.links_silent db' W.Company.dept_emp)
              = List.length (Sdb.links_silent db W.Company.div_emp));
            check "consistent" true (Sdb.validate db' = [])
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "drop_field warns about information loss" `Quick
      (fun () ->
        let db = W.Company.instance () in
        match
          translate (Schema_change.Drop_field { entity = "EMP"; field = "AGE" }) db
        with
        | Ok (_, warnings) -> check "warned" true (warnings <> [])
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "add_constraint reports violating data" `Quick
      (fun () ->
        let db = W.School.instance () in
        (* every course is offered at most twice already; a limit of 1
           makes existing data violate *)
        match
          translate
            (Schema_change.Add_constraint
               (Semantic.Participation_limit
                  { assoc = W.School.offering; per_left_max = 1 }))
            db
        with
        | Ok (_, warnings) -> check "violations surfaced" true (warnings <> [])
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "restrict drops instances and their links" `Quick
      (fun () ->
        let db = W.Company.instance () in
        let op =
          Schema_change.Restrict_extension
            { entity = "EMP";
              qual =
                Cond.Cmp
                  (Cond.Ge, Cond.Field "AGE", Cond.Const (Value.Int 45));
            }
        in
        match translate op db with
        | Ok (db', warnings) ->
            check "instances removed" true
              (List.length (Sdb.rows_silent db' "EMP")
              < List.length (Sdb.rows_silent db "EMP"));
            check "their links dropped" true
              (List.length (Sdb.links_silent db' W.Company.div_emp)
              = List.length (Sdb.rows_silent db' "EMP"));
            check "warned" true (warnings <> [])
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "renames preserve contents modulo names" `Quick
      (fun () ->
        let db = W.Company.instance () in
        match
          translate (Schema_change.Rename_entity { from_ = "EMP"; to_ = "STAFF" }) db
        with
        | Ok (db', _) ->
            check "same volume" true
              (Sdb.total_instances db' = Sdb.total_instances db);
            check "rows moved" true
              (List.length (Sdb.rows_silent db' "STAFF")
              = List.length (Sdb.rows_silent db "EMP"))
        | Error e -> Alcotest.fail e);
  ]

let inverse_tests =
  [ Alcotest.test_case "verdicts per operator" `Quick (fun () ->
        let v op = Inverse.invert W.Company.schema op in
        (match v (Schema_change.Rename_entity { from_ = "EMP"; to_ = "X" }) with
        | Inverse.Invertible _ -> ()
        | _ -> Alcotest.fail "rename should invert");
        (match v (Schema_change.Drop_field { entity = "EMP"; field = "AGE" }) with
        | Inverse.Lossy _ -> ()
        | _ -> Alcotest.fail "drop should be lossy");
        match
          v (Schema_change.Drop_constraint (Semantic.Total_right W.Company.div_emp))
        with
        | Inverse.Conditional _ -> ()
        | _ -> Alcotest.fail "drop-constraint should be conditional");
    Alcotest.test_case "interpose/collapse round-trips instances" `Quick
      (fun () ->
        match Inverse.roundtrip (W.Company.instance ()) interpose_op with
        | Some true -> ()
        | Some false -> Alcotest.fail "contents not restored"
        | None -> Alcotest.fail "expected an inverse");
  ]

(* Property: on random scaled instances, the interpose translation
   preserves member rows, produces consistent instances and keeps one
   right-assoc link per original link. *)
let interpose_prop =
  QCheck.Test.make ~name:"interpose translation invariants" ~count:40
    QCheck.(pair (int_range 1 1000) (int_range 5 60))
    (fun (seed, n) ->
      let db = W.Company.scaled ~seed ~n in
      match Data_translate.translate db interpose_op with
      | Error _ -> false
      | Ok (db', _) ->
          List.length (Sdb.rows_silent db' "EMP") = n
          && List.length (Sdb.links_silent db' W.Company.dept_emp)
             = List.length (Sdb.links_silent db W.Company.div_emp)
          && Sdb.validate db' = [])

let roundtrip_prop =
  QCheck.Test.make ~name:"rename round-trip on random instances" ~count:40
    QCheck.(pair (int_range 1 1000) (int_range 5 40))
    (fun (seed, n) ->
      let db = W.Company.scaled ~seed ~n in
      Inverse.roundtrip db
        (Schema_change.Rename_field
           { entity = "EMP"; from_ = "AGE"; to_ = "YEARS" })
      = Some true)

let () =
  Alcotest.run "transform"
    [ ("schema-change", schema_change_tests);
      ("data-translate", data_tests);
      ("inverse", inverse_tests);
      ("props",
       [ QCheck_alcotest.to_alcotest interpose_prop;
         QCheck_alcotest.to_alcotest roundtrip_prop;
       ]);
    ]
