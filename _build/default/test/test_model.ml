(* Semantic model: schema validation and declarative constraint
   enforcement (§3.1's catalogue — existence, dependency deletion,
   participation limits, nullability), plus the audit pass. *)

open Ccv_common
open Ccv_model

let check = Alcotest.(check bool)

(* EMP with characterizing DEPENDENT (the §4.1 example), plus PROJ in a
   non-total M:N association. *)
let schema =
  Semantic.make
    ~constraints:
      [ Semantic.Total_right "EMP-DEP";
        Semantic.Participation_limit { assoc = "EMP-PROJ"; per_left_max = 2 };
        Semantic.Field_not_null { entity = "EMP"; field = "ENAME" };
      ]
    [ Semantic.entity "EMP"
        [ Field.make "E#" Value.Tstr; Field.make "ENAME" Value.Tstr ]
        ~key:[ "E#" ];
      Semantic.entity ~kind:(Semantic.Characterizing "EMP") "DEPENDENT"
        [ Field.make "DNAME" Value.Tstr ]
        ~key:[ "DNAME" ];
      Semantic.entity "PROJ"
        [ Field.make "P#" Value.Tstr ]
        ~key:[ "P#" ];
    ]
    [ Semantic.assoc "EMP-DEP" ~left:"EMP" ~right:"DEPENDENT" ();
      Semantic.assoc "EMP-PROJ" ~left:"EMP" ~right:"PROJ"
        ~card:Semantic.Many_to_many ();
    ]

let empr e n = Row.of_list [ ("E#", Value.Str e); ("ENAME", Value.Str n) ]
let dep n = Row.of_list [ ("DNAME", Value.Str n) ]
let proj p = Row.of_list [ ("P#", Value.Str p) ]

let sample () =
  let db = Sdb.create schema in
  let db = Sdb.insert_entity_exn db "EMP" (empr "E1" "JONES") in
  let db = Sdb.insert_entity_exn db "EMP" (empr "E2" "BLAKE") in
  let db = Sdb.insert_entity_exn db "DEPENDENT" (dep "ANNA") in
  let db =
    Sdb.link_exn db "EMP-DEP" ~left:[ Value.Str "E1" ] ~right:[ Value.Str "ANNA" ]
  in
  let db = Sdb.insert_entity_exn db "PROJ" (proj "P1") in
  let db = Sdb.insert_entity_exn db "PROJ" (proj "P2") in
  let db = Sdb.insert_entity_exn db "PROJ" (proj "P3") in
  db

let schema_tests =
  [ Alcotest.test_case "characterizing of unknown entity rejected" `Quick
      (fun () ->
        try
          ignore
            (Semantic.make
               [ Semantic.entity ~kind:(Semantic.Characterizing "GHOST") "X"
                   [ Field.make "A" Value.Tstr ]
                   ~key:[ "A" ];
               ]
               []);
          Alcotest.fail "expected failure"
        with Invalid_argument _ -> ());
    Alcotest.test_case "assoc_between finds the unique association" `Quick
      (fun () ->
        match Semantic.assoc_between schema "EMP" "DEPENDENT" with
        | Some a -> check "name" true (Field.name_equal a.aname "EMP-DEP")
        | None -> Alcotest.fail "expected an association");
    Alcotest.test_case "constraints_on filters" `Quick (fun () ->
        check "emp-proj has one" true
          (List.length (Semantic.constraints_on schema "EMP-PROJ") = 1));
  ]

let constraint_tests =
  [ Alcotest.test_case "duplicate key rejected" `Quick (fun () ->
        let db = sample () in
        match Sdb.insert_entity db "EMP" (empr "E1" "DUP") with
        | Error (Status.Duplicate_key _) -> ()
        | _ -> Alcotest.fail "expected duplicate");
    Alcotest.test_case "not-null field enforced" `Quick (fun () ->
        let db = sample () in
        match
          Sdb.insert_entity db "EMP"
            (Row.of_list [ ("E#", Value.Str "E9"); ("ENAME", Value.Null) ])
        with
        | Error (Status.Constraint_violation _) -> ()
        | _ -> Alcotest.fail "expected violation");
    Alcotest.test_case "link endpoints must exist" `Quick (fun () ->
        let db = sample () in
        match
          Sdb.link db "EMP-PROJ" ~left:[ Value.Str "E9" ] ~right:[ Value.Str "P1" ]
        with
        | Error (Status.Constraint_violation _) -> ()
        | _ -> Alcotest.fail "expected violation");
    Alcotest.test_case "participation limit enforced" `Quick (fun () ->
        let db = sample () in
        let db =
          Sdb.link_exn db "EMP-PROJ" ~left:[ Value.Str "E1" ]
            ~right:[ Value.Str "P1" ]
        in
        let db =
          Sdb.link_exn db "EMP-PROJ" ~left:[ Value.Str "E1" ]
            ~right:[ Value.Str "P2" ]
        in
        match
          Sdb.link db "EMP-PROJ" ~left:[ Value.Str "E1" ] ~right:[ Value.Str "P3" ]
        with
        | Error (Status.Constraint_violation _) -> ()
        | _ -> Alcotest.fail "expected limit violation");
    Alcotest.test_case "1:N cardinality enforced" `Quick (fun () ->
        let db = sample () in
        match
          Sdb.link db "EMP-DEP" ~left:[ Value.Str "E2" ] ~right:[ Value.Str "ANNA" ]
        with
        | Error (Status.Constraint_violation _) -> ()
        | _ -> Alcotest.fail "expected second-parent violation");
    Alcotest.test_case "deleting an employee takes dependents (§4.1)" `Quick
      (fun () ->
        let db = sample () in
        match Sdb.delete_entity db "EMP" [ Value.Str "E1" ] ~cascade:true with
        | Ok db' ->
            check "dependent gone" true (Sdb.rows_silent db' "DEPENDENT" = []);
            check "links gone" true (Sdb.links_silent db' "EMP-DEP" = [])
        | Error s -> Alcotest.failf "delete: %s" (Status.show s));
    Alcotest.test_case "orphaning delete refused without cascade" `Quick
      (fun () ->
        let db = sample () in
        match Sdb.delete_entity db "EMP" [ Value.Str "E1" ] ~cascade:false with
        | Error (Status.Constraint_violation _) -> ()
        | Ok _ ->
            (* characterizing dependents always die with their defined
               entity, so this is also acceptable only if the dependent
               went away *)
            Alcotest.fail "expected refusal (ANNA would be orphaned)"
        | Error s -> Alcotest.failf "unexpected: %s" (Status.show s));
    Alcotest.test_case "update entities" `Quick (fun () ->
        let db = sample () in
        match
          Sdb.update_entity db "EMP" [ Value.Str "E2" ]
            [ ("ENAME", Value.Str "NEW") ]
        with
        | Ok db' -> (
            match Sdb.find_entity db' "EMP" [ Value.Str "E2" ] with
            | Some row ->
                check "renamed" true (Row.get row "ENAME" = Some (Value.Str "NEW"))
            | None -> Alcotest.fail "missing")
        | Error s -> Alcotest.failf "update: %s" (Status.show s));
    Alcotest.test_case "partners_of_left / right" `Quick (fun () ->
        let db = sample () in
        check "E1's dependents" true
          (List.length (Sdb.partners_of_left db "EMP-DEP" [ Value.Str "E1" ]) = 1);
        check "ANNA's employee" true
          (List.length (Sdb.partners_of_right db "EMP-DEP" [ Value.Str "ANNA" ])
          = 1));
  ]

let validate_tests =
  [ Alcotest.test_case "clean instance validates" `Quick (fun () ->
        check "no findings" true (Sdb.validate (sample ()) = []));
    Alcotest.test_case "audit catches a totality break" `Quick (fun () ->
        let db = sample () in
        (* unlink ANNA from its employee: TOTAL right now broken *)
        match
          Sdb.unlink db "EMP-DEP" ~left:[ Value.Str "E1" ] ~right:[ Value.Str "ANNA" ]
        with
        | Ok db' ->
            check "finding reported" true (List.length (Sdb.validate db') >= 1)
        | Error s -> Alcotest.failf "unlink: %s" (Status.show s));
  ]

(* Property: random (insert | link) interaction sequences never leave a
   validating instance in a state the auditor rejects — declarative
   enforcement keeps the §3.1 invariants by construction. *)
let audit_prop =
  QCheck.Test.make ~name:"declarative ops keep instances consistent" ~count:60
    QCheck.(int_range 1 1000)
    (fun seed ->
      let rng = Prng.create ~seed in
      let db = ref (sample ()) in
      for i = 0 to 30 do
        match Prng.int rng 4 with
        | 0 ->
            (match
               Sdb.insert_entity !db "EMP" (empr (Printf.sprintf "R%d" i) "N")
             with
            | Ok db' -> db := db'
            | Error _ -> ())
        | 1 ->
            (match
               Sdb.insert_entity !db "PROJ" (proj (Printf.sprintf "Q%d" i))
             with
            | Ok db' -> db := db'
            | Error _ -> ())
        | 2 ->
            let e = Printf.sprintf "R%d" (Prng.int rng (i + 1)) in
            let p = Printf.sprintf "Q%d" (Prng.int rng (i + 1)) in
            (match
               Sdb.link !db "EMP-PROJ" ~left:[ Value.Str e ]
                 ~right:[ Value.Str p ]
             with
            | Ok db' -> db := db'
            | Error _ -> ())
        | _ -> (
            let e = Printf.sprintf "R%d" (Prng.int rng (i + 1)) in
            match Sdb.delete_entity !db "EMP" [ Value.Str e ] ~cascade:true with
            | Ok db' -> db := db'
            | Error _ -> ())
      done;
      Sdb.validate !db = [])

let () =
  Alcotest.run "model"
    [ ("schema", schema_tests);
      ("constraints", constraint_tests);
      ("validate", validate_tests);
      ("props", [ QCheck_alcotest.to_alcotest audit_prop ]);
    ]
