(* Experiment harness: regenerates every experiment in EXPERIMENTS.md.
   Run `dune exec bench/main.exe` for everything, or pass experiment
   ids (e1 .. e9, fig31, fig43, micro) to run a subset. *)

open Ccv_common
open Ccv_model
open Ccv_abstract
open Ccv_transform
open Ccv_convert
module W = Ccv_workload
module B = Ccv_baselines

let section title =
  Printf.printf "\n=== %s ===\n\n" title

let time_ms f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, (Unix.gettimeofday () -. t0) *. 1000.)

(* Machine-readable results, collected by any experiment that calls
   [emit_json] and written to the [--out] file (default
   BENCH_PR1.json) under [--json].  Experiments may add fields to
   [meta_extra]; they land in the leading "meta" row that stamps the
   output with the git commit and domain counts for reproducibility. *)
let bench_json : string list ref = ref []
let meta_extra : (string * string) list ref = ref []

let emit_json fields =
  bench_json :=
    ("{" ^ String.concat ", " (List.map (fun (k, v) -> Printf.sprintf "%S: %s" k v) fields)
    ^ "}")
    :: !bench_json

let json_str s = Printf.sprintf "%S" s
let json_float f = Printf.sprintf "%.3f" f

let git_commit () =
  try
    let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
    let line = try input_line ic with End_of_file -> "unknown" in
    ignore (Unix.close_process_in ic);
    line
  with _ -> "unknown"

(* ------------------------------------------------------------------ *)
(* Shared setup for the Figure 4.2 -> 4.4 restructuring                *)

let interpose_op =
  Schema_change.Interpose
    { through = W.Company.div_emp;
      new_entity = W.Company.dept;
      group_by = [ "DEPT-NAME" ];
      left_assoc = W.Company.div_dept;
      right_assoc = W.Company.dept_emp;
    }

let net_source prog =
  let mapping, _ = Mapping.derive_network W.Company.schema in
  match Generator.to_network mapping prog with
  | Ok (p, _) -> p
  | Error e -> failwith ("source generation: " ^ e)

let company_setup n =
  let sdb =
    if n = 0 then W.Company.instance () else W.Company.scaled ~seed:42 ~n
  in
  let sm, sns = Mapping.derive_network W.Company.schema in
  let source_db = Mapping.load_network sm sns sdb in
  let sdb', _ = Result.get_ok (Data_translate.translate sdb interpose_op) in
  let target_schema = Schema_change.apply_exn W.Company.schema interpose_op in
  let tm, tns = Mapping.derive_network target_schema in
  let target_db = Mapping.load_network tm tns sdb' in
  (sdb, source_db, tm, target_db)

(* ------------------------------------------------------------------ *)
(* E1: emulation / bridge overhead vs rewritten program                *)

(* md-sales against scaled instances: division DIV001 exists there. *)
let scaled_sales_query =
  { Aprog.name = "DIV-SALES";
    body =
      [ Aprog.For_each
          { query =
              [ Apattern.Self
                  { target = "DIV";
                    qual =
                      Cond.Cmp
                        ( Cond.Eq,
                          Cond.Field "DIV-NAME",
                          Cond.Const (Value.Str "DIV001") );
                  };
                Apattern.Assoc_via
                  { assoc = W.Company.div_emp; source = "DIV"; qual = Cond.True };
                Apattern.Via_assoc
                  { target = "EMP";
                    assoc = W.Company.div_emp;
                    qual =
                      Cond.Cmp
                        ( Cond.Eq,
                          Cond.Field "DEPT-NAME",
                          Cond.Const (Value.Str "SALES") );
                  };
              ];
            body = [ Aprog.Display [ Host.v "EMP.EMP-NAME" ] ];
          };
      ];
  }

let e1 () =
  section
    "E1  Cost of conversion strategies under the Fig 4.2->4.4 split \
     (paper claim: emulation and bridge suffer \"degraded efficiency\", \
     §2.1.2)";
  let req =
    { Supervisor.source_schema = W.Company.schema;
      source_model = Mapping.Net;
      ops = [ interpose_op ];
      target_model = Mapping.Net;
    }
  in
  let rows = ref [] in
  List.iter
    (fun n ->
      List.iter
        (fun (pname, prog) ->
          let _sdb, source_db, tm, target_db = company_setup n in
          let source = net_source prog in
          let src_run =
            Engines.run (Engines.Net_db source_db) (Engines.Net_program source)
          in
          let report =
            match Supervisor.convert_program req (Engines.Net_program source) with
            | Ok r -> r
            | Error (stage, e) -> failwith (stage ^ ": " ^ e)
          in
          let conv_run, conv_ms =
            time_ms (fun () ->
                Engines.run (Engines.Net_db target_db)
                  report.Supervisor.target_program)
          in
          let emu =
            B.Emulation.create ~source_schema:W.Company.schema ~op:interpose_op
              tm
          in
          let (_, emu_acc), emu_ms =
            time_ms (fun () -> B.Emulation.run emu target_db source)
          in
          let bridge =
            B.Bridge.create ~source_schema:W.Company.schema
              ~ops:[ interpose_op ] tm
          in
          let (_, bridge_acc), bridge_ms =
            time_ms (fun () -> B.Bridge.run bridge target_db source)
          in
          List.iter
            (fun (variant, acc, ms) ->
              emit_json
                [ ("experiment", json_str "e1");
                  ("program", json_str pname);
                  ("variant", json_str variant);
                  ("n", string_of_int n);
                  ("accesses", string_of_int acc);
                  ("wall_ms", json_float ms);
                ])
            [ ("converted", conv_run.Engines.accesses, conv_ms);
              ("emulated", emu_acc, emu_ms);
              ("bridge", bridge_acc, bridge_ms);
            ];
          rows :=
            [ string_of_int n;
              pname;
              string_of_int src_run.Engines.accesses;
              string_of_int conv_run.Engines.accesses;
              string_of_int emu_acc;
              string_of_int bridge_acc;
              Tablefmt.float_cell conv_ms;
              Tablefmt.float_cell emu_ms;
              Tablefmt.float_cell bridge_ms;
            ]
            :: !rows)
        [ ("md-age", W.Programs.maryland_age_query);
          ("div-sales", scaled_sales_query);
        ])
    [ 20; 50; 100; 200 ];
  Tablefmt.print
    ~title:
      "accesses and wall time per strategy (converted = rewritten program)"
    ~aligns:
      [ Tablefmt.Right; Tablefmt.Left; Tablefmt.Right; Tablefmt.Right;
        Tablefmt.Right; Tablefmt.Right; Tablefmt.Right; Tablefmt.Right;
        Tablefmt.Right;
      ]
    [ "n(emp)"; "program"; "source acc"; "converted acc"; "emulated acc";
      "bridge acc"; "conv ms"; "emu ms"; "bridge ms";
    ]
    (List.rev !rows)

(* ------------------------------------------------------------------ *)
(* E2: conversion coverage by restructuring class                      *)

let restructurings =
  [ ("rename-entity",
     [ Schema_change.Rename_entity { from_ = "EMP"; to_ = "EMPLOYEE" } ]);
    ("rename-field",
     [ Schema_change.Rename_field
         { entity = "EMP"; from_ = "AGE"; to_ = "EMP-AGE" };
     ]);
    ("add-field",
     [ Schema_change.Add_field
         { entity = "EMP";
           field = Field.make "SALARY" Value.Tint;
           default = Value.Int 0;
         };
     ]);
    ("drop-field",
     [ Schema_change.Drop_field { entity = "EMP"; field = "AGE" } ]);
    ("add-constraint",
     [ Schema_change.Add_constraint
         (Semantic.Field_not_null { entity = "EMP"; field = "DEPT-NAME" });
     ]);
    ("widen-card",
     [ Schema_change.Drop_constraint (Semantic.Total_right W.Company.div_emp);
       Schema_change.Widen_cardinality { assoc = W.Company.div_emp };
     ]);
    ("interpose", [ interpose_op ]);
  ]

let e2 () =
  section
    "E2  Conversion coverage by restructuring class (anchor: §2.1.1's \
     65-70% success for conventional converters; §5.2's levels of \
     successful conversion)";
  let sample = W.Company.instance () in
  let programs =
    W.Generator.batch ~seed:2024 W.Company.schema ~sample ~n:60 ()
  in
  (* Build concrete network sources; drop the few whose chains the
     network model cannot host (counted separately). *)
  let mapping, _ = Mapping.derive_network W.Company.schema in
  let sources =
    List.filter_map
      (fun (fam, prog) ->
        match Generator.to_network mapping prog with
        | Ok (p, _) -> Some (fam, p)
        | Error _ -> None)
      programs
  in
  let total = List.length sources in
  let rows =
    List.map
      (fun (cname, ops) ->
        let req =
          { Supervisor.source_schema = W.Company.schema;
            source_model = Mapping.Net;
            ops;
            target_model = Mapping.Net;
          }
        in
        let converted = ref 0 and strict = ref 0 and modulo = ref 0 in
        let divergent = ref 0 and refused = ref 0 in
        List.iter
          (fun (_fam, source) ->
            let sdb = W.Company.instance () in
            match
              Supervisor.convert_and_verify req (Engines.Net_program source) sdb
            with
            | Error _ -> incr refused
            | Ok outcome -> (
                incr converted;
                match outcome.Supervisor.verdict with
                | Equivalence.Strict -> incr strict
                | Equivalence.Modulo_order -> incr modulo
                | Equivalence.Divergent _ -> incr divergent))
          sources;
        let pct x = Printf.sprintf "%3.0f%%" (100. *. float x /. float total) in
        [ cname;
          string_of_int total;
          pct !converted;
          pct !strict;
          pct !modulo;
          pct !divergent;
          pct !refused;
        ])
      restructurings
  in
  Tablefmt.print
    ~title:
      "generated network programs converted per class (refused = flagged \
       for the conversion analyst)"
    [ "class"; "programs"; "converted"; "strict-eq"; "order-eq"; "divergent";
      "refused";
    ]
    rows;
  (* Preflight static verdicts for the same abstract corpus: the
     analyzer predicts each refusal without executing a rewrite, and
     repeated diagnostic codes are deduplicated per class. *)
  let a_conv = ref 0 and a_ref = ref 0 in
  let analyze_rows =
    List.map
      (fun (cname, ops) ->
        let conv = ref 0 and diags = ref [] in
        List.iter
          (fun (_fam, p) ->
            match Ccv_analysis.Preflight.classify W.Company.schema ops p with
            | Ccv_analysis.Preflight.Convertible -> incr conv
            | Ccv_analysis.Preflight.Refused { diagnostic; _ } ->
                diags := diagnostic :: !diags)
          programs;
        a_conv := !a_conv + !conv;
        a_ref := !a_ref + List.length !diags;
        let codes =
          List.map
            (fun (c, k) -> Printf.sprintf "%s x%d" c k)
            (Diagnostic.count_codes (List.rev !diags))
        in
        [ cname;
          string_of_int (List.length programs);
          string_of_int !conv;
          string_of_int (List.length !diags);
          (if codes = [] then "-" else String.concat "  " codes);
        ])
      restructurings
  in
  print_newline ();
  Tablefmt.print
    ~title:
      "preflight static verdicts for the abstract corpus (refusal codes \
       deduplicated)"
    [ "class"; "programs"; "convertible"; "refused"; "refusal codes" ]
    analyze_rows;
  meta_extra :=
    !meta_extra
    @ [ ("analyze_convertible", string_of_int !a_conv);
        ("analyze_refused", string_of_int !a_ref);
      ];
  (* Second table: pure model-to-model conversion of the same corpus
     (no schema change) — the §4.1 "conversion from one DBMS to
     another" coverage. *)
  let model_rows =
    List.map
      (fun (tname, target) ->
        let req =
          { Supervisor.source_schema = W.Company.schema;
            source_model = Mapping.Net;
            ops = [];
            target_model = target;
          }
        in
        let strict = ref 0 and modulo = ref 0 in
        let divergent = ref 0 and refused = ref 0 in
        List.iter
          (fun (_fam, source) ->
            let sdb = W.Company.instance () in
            match
              Supervisor.convert_and_verify req (Engines.Net_program source) sdb
            with
            | Error _ -> incr refused
            | Ok outcome -> (
                match outcome.Supervisor.verdict with
                | Equivalence.Strict -> incr strict
                | Equivalence.Modulo_order -> incr modulo
                | Equivalence.Divergent _ -> incr divergent))
          sources;
        let pct x = Printf.sprintf "%3.0f%%" (100. *. float x /. float total) in
        [ "net -> " ^ tname; string_of_int total; pct !strict; pct !modulo;
          pct !divergent; pct !refused;
        ])
      [ ("rel", Mapping.Rel); ("net", Mapping.Net); ("hier", Mapping.Hier) ]
  in
  print_newline ();
  Tablefmt.print
    ~title:"cross-model conversion of the same corpus (no schema change)"
    [ "direction"; "programs"; "strict-eq"; "order-eq"; "divergent"; "refused" ]
    model_rows

(* ------------------------------------------------------------------ *)
(* E3: the Maryland worked example, end to end                         *)

let fig43_text =
  {|SCHEMA NAME IS COMPANY-NAME
RECORD SECTION;
  RECORD NAME IS DIV.
  FIELDS ARE.
    DIV-NAME PIC X(20).
    DIV-LOC PIC X(10).
  END RECORD.
  RECORD NAME IS EMP.
  FIELDS ARE.
    EMP-NAME PIC X(25).
    DEPT-NAME PIC X(5).
    AGE PIC 9(2).
    DIV-NAME VIRTUAL
      VIA DIV-EMP
      USING DIV-NAME.
  END RECORD.
END RECORD SECTION.
SET SECTION.
  SET NAME IS ALL-DIV.
  OWNER IS SYSTEM.
  MEMBER IS DIV.
  SET KEYS ARE (DIV-NAME).
  END SET.
  SET NAME IS ALL-EMP.
  OWNER IS SYSTEM.
  MEMBER IS EMP.
  SET KEYS ARE (EMP-NAME).
  END SET.
  SET NAME IS DIV-EMP.
  OWNER IS DIV.
  MEMBER IS EMP.
  SET KEYS ARE (EMP-NAME).
  END SET.
END SET SECTION.
END SCHEMA.|}

let e3 () =
  section
    "E3  Figure 4.2 -> Figure 4.4: the §4.2 FIND statements under the \
     DEPT interposition";
  let ddl = Ccv_frontend.Ddl.parse fig43_text in
  let finds =
    [ ("example 1 (age > 30)",
       "FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP(AGE > 30))");
      ("example 2 (machinery sales)",
       "FIND(EMP: SYSTEM, ALL-DIV, DIV(DIV-NAME = 'MACHINERY'), DIV-EMP, \
        EMP(DEPT-NAME = 'SALES'))");
    ]
  in
  List.iter
    (fun (label, text) ->
      let f = Ccv_frontend.Dml_parse.parse_find ddl text in
      Printf.printf "source %s:\n  %s\n" label text;
      let converted, issues =
        match Rules.convert W.Company.schema interpose_op
                { Aprog.name = "F"; body = [ Aprog.For_each { query = f.Ccv_frontend.Dml_parse.query; body = [] } ] }
        with
        | Ok (p, issues) -> (p, issues)
        | Error e -> failwith e
      in
      let query' =
        match converted.Aprog.body with
        | [ Aprog.For_each { query; _ } ] -> query
        | _ -> failwith "unexpected shape"
      in
      Printf.printf "converted:\n  %s\n"
        (Ccv_frontend.Dml_parse.find_of_query ~target:"EMP" query');
      List.iter (fun i -> Printf.printf "  note: %s\n" i) issues;
      (* verify operationally *)
      let prog query =
        { Aprog.name = "F";
          body =
            [ Aprog.For_each
                { query; body = [ Aprog.Display [ Host.v "EMP.EMP-NAME" ] ] }
            ];
        }
      in
      let sdb = W.Company.instance () in
      let before = Ainterp.run sdb (prog f.Ccv_frontend.Dml_parse.query) in
      let sdb', _ = Result.get_ok (Data_translate.translate sdb interpose_op) in
      let after = Ainterp.run sdb' (prog query') in
      Printf.printf "verdict: %s\n\n"
        (Fmt.str "%a" Equivalence.pp_verdict
           (Equivalence.compare_traces before.Ainterp.trace after.Ainterp.trace)))
    finds

(* ------------------------------------------------------------------ *)
(* E4: optimizer effect                                                *)

let e4 () =
  section "E4  Optimizer effect on access-path length and accesses (§5.4)";
  (* Programs with late guards, as a naive converter would leave them. *)
  let guarded name entity field value display =
    { Aprog.name;
      body =
        [ Aprog.For_each
            { query = [ Apattern.Self { target = entity; qual = Cond.True } ];
              body =
                [ Aprog.If
                    ( Cond.Cmp
                        ( Cond.Eq,
                          Cond.Var (entity ^ "." ^ field),
                          Cond.Const value ),
                      [ Aprog.Display [ Host.v display ] ],
                      [] );
                ];
            };
        ];
    }
  in
  let chain_guarded =
    { Aprog.name = "CHAIN";
      body =
        [ Aprog.For_each
            { query =
                [ Apattern.Self { target = "DIV"; qual = Cond.True };
                  Apattern.Assoc_via
                    { assoc = W.Company.div_emp; source = "DIV";
                      qual = Cond.True };
                  Apattern.Via_assoc
                    { target = "EMP"; assoc = W.Company.div_emp;
                      qual = Cond.True };
                ];
              body =
                [ Aprog.If
                    ( Cond.And
                        ( Cond.Cmp
                            ( Cond.Eq,
                              Cond.Var "DIV.DIV-NAME",
                              Cond.Const (Value.Str "MACHINERY") ),
                          Cond.Cmp
                            ( Cond.Eq,
                              Cond.Var "EMP.DEPT-NAME",
                              Cond.Const (Value.Str "SALES") ) ),
                      [ Aprog.Display [ Host.v "EMP.EMP-NAME" ] ],
                      [] );
                ];
            };
        ];
    }
  in
  (* Two consecutive loops over the same singleton prefix: the sharing
     rewrite merges them so the prefix is evaluated once. *)
  let repeated_prefix =
    let prefix =
      [ Apattern.Self
          { target = "EMP";
            qual = Cond.eq_field_const "EMP-NAME" (Value.Str "E00007");
          };
        Apattern.Self
          { target = "DIV";
            qual = Cond.eq_field_const "DIV-NAME" (Value.Str "DIV001");
          };
      ]
    in
    { Aprog.name = "REPEAT";
      body =
        [ Aprog.For_each
            { query = prefix; body = [ Aprog.Display [ Host.v "EMP.AGE" ] ] };
          Aprog.For_each
            { query = prefix;
              body = [ Aprog.Display [ Host.v "DIV.DIV-LOC" ] ];
            };
        ];
    }
  in
  let progs =
    [ ("late-guard scan",
       guarded "SCAN" "EMP" "DEPT-NAME" (Value.Str "SALES") "EMP.EMP-NAME");
      ("late-guard chain", chain_guarded);
      ("repeated prefix", repeated_prefix);
    ]
  in
  let rows =
    List.map
      (fun (name, p) ->
        let sdb = W.Company.scaled ~seed:9 ~n:120 in
        let before_acc =
          Counters.total (Sdb.counters sdb) |> fun b ->
          ignore (Ainterp.run sdb p);
          Counters.total (Sdb.counters sdb) - b
        in
        let p', log = Optimizer.optimize W.Company.schema p in
        let after_acc =
          let b = Counters.total (Sdb.counters sdb) in
          ignore (Ainterp.run sdb p');
          Counters.total (Sdb.counters sdb) - b
        in
        [ name;
          string_of_int (Aprog.size p);
          string_of_int (Aprog.size p');
          string_of_int before_acc;
          string_of_int after_acc;
          string_of_int (List.length log);
        ])
      progs
  in
  Tablefmt.print
    ~title:"before/after the optimizer (accesses on the reference engine)"
    [ "program"; "stmts before"; "stmts after"; "acc before"; "acc after";
      "rewrites";
    ]
    rows

(* ------------------------------------------------------------------ *)
(* E5: declarative vs procedural integrity (§3.1)                      *)

let e5 () =
  section
    "E5  Integrity constraints: declarative model enforcement vs \
     program-embedded checks (§3.1)";
  let sdb = W.School.instance () in
  let outcomes = ref [] in
  let record name result = outcomes := (name, result) :: !outcomes in
  (* 1. Offering for a missing course (existence constraint). *)
  (match
     Sdb.link sdb W.School.offering ~left:[ Value.Str "C999" ]
       ~right:[ Value.Str "F78" ]
   with
  | Error (Status.Constraint_violation _) -> record "dangling offering" "rejected"
  | Error s -> record "dangling offering" (Status.show s)
  | Ok _ -> record "dangling offering" "ACCEPTED (corruption)");
  (* 2. Third offering of one course (participation limit). *)
  let sdb2 =
    Sdb.link_exn sdb W.School.offering ~left:[ Value.Str "C102" ]
      ~right:[ Value.Str "S79" ]
  in
  (match
     Sdb.link sdb2 W.School.offering ~left:[ Value.Str "C102" ]
       ~right:[ Value.Str "F79" ]
   with
  | Error (Status.Constraint_violation _) ->
      record "3rd offering of C102" "rejected (limit 2)"
  | Error s -> record "3rd offering of C102" (Status.show s)
  | Ok _ -> record "3rd offering of C102" "ACCEPTED (corruption)");
  (* 3. Null CNAME (field constraint). *)
  (match
     Sdb.insert_entity sdb W.School.course
       (Row.of_list [ ("CNO", Value.Str "C900"); ("CNAME", Value.Null) ])
   with
  | Error (Status.Constraint_violation _) -> record "null CNAME" "rejected"
  | Error s -> record "null CNAME" (Status.show s)
  | Ok _ -> record "null CNAME" "ACCEPTED (corruption)");
  (* 4. The ERASE-cascade hazard on the network realization: deleting a
     semester with ERASE ALL silently deletes offerings (the paper's
     DELETE/ERASE example). *)
  let mapping, nschema = Mapping.derive_network W.School.schema in
  let ndb = Mapping.load_network mapping nschema sdb in
  let module Ndb = Ccv_network.Ndb in
  let offerings_before =
    List.length (Ndb.all_keys_silent ndb "COURSE-OFFERING")
  in
  let sem_key = List.hd (Ndb.all_keys_silent ndb "SEMESTER") in
  (match Ndb.erase ndb Ndb.Erase_all sem_key with
  | Ok ndb' ->
      let offerings_after =
        List.length (Ndb.all_keys_silent ndb' "COURSE-OFFERING")
      in
      record "ERASE ALL semester (network)"
        (Printf.sprintf "cascaded: %d -> %d offerings silently gone"
           offerings_before offerings_after)
  | Error s -> record "ERASE ALL semester (network)" (Status.show s));
  (* 5. Same deletion at the semantic level keeps an audit trail. *)
  (match
     Sdb.delete_entity sdb W.School.semester [ Value.Str "F78" ] ~cascade:false
   with
  | Ok sdb' ->
      record "delete semester (semantic, no cascade)"
        (match Sdb.validate sdb' with
        | [] -> "clean"
        | v -> Printf.sprintf "%d audited violations" (List.length v))
  | Error (Status.Constraint_violation _) ->
      record "delete semester (semantic, no cascade)" "rejected"
  | Error s -> record "delete semester (semantic, no cascade)" (Status.show s));
  Tablefmt.print
    ~title:"constraint scenarios (school database, Figure 3.1)"
    [ "scenario"; "outcome" ]
    (List.rev_map (fun (a, b) -> [ a; b ]) !outcomes)

(* ------------------------------------------------------------------ *)
(* E6: the §4.1 access-pattern example in SEQUEL and CODASYL           *)

let e6 () =
  section
    "E6  §4.1 example: one access-pattern sequence, generated to SEQUEL \
     and to CODASYL DML, executed equivalently";
  let prog = W.Programs.su_d2_query in
  Printf.printf "access-pattern representation:\n%s\n"
    (Fmt.str "%a" Apattern.pp (List.hd (Aprog.queries prog)));
  let sdb = W.Empdept.instance () in
  let rel_mapping, rschema = Mapping.derive_relational W.Empdept.schema in
  let rdb = Mapping.load_relational rschema sdb in
  let net_mapping, nschema = Mapping.derive_network W.Empdept.schema in
  let ndb = Mapping.load_network net_mapping nschema sdb in
  let rel_prog =
    match Generator.to_relational rel_mapping prog with
    | Ok (p, _) -> p
    | Error e -> failwith e
  in
  let net_prog =
    match Generator.to_network net_mapping prog with
    | Ok (p, _) -> p
    | Error e -> failwith e
  in
  Printf.printf "\n--- SEQUEL form ---\n%s\n"
    (Fmt.str "%a" (Host.pp ~dml:Engines.Rel_dml.pp) rel_prog);
  Printf.printf "\n--- CODASYL form ---\n%s\n"
    (Fmt.str "%a" (Host.pp ~dml:Ccv_network.Dml.pp) net_prog);
  let r1 = Engines.run (Engines.Rel_db rdb) (Engines.Rel_program rel_prog) in
  let r2 = Engines.run (Engines.Net_db ndb) (Engines.Net_program net_prog) in
  Printf.printf "relational output: %s\n"
    (String.concat " | " (Io_trace.terminal_lines r1.Engines.trace));
  Printf.printf "network output:    %s\n"
    (String.concat " | " (Io_trace.terminal_lines r2.Engines.trace));
  Printf.printf "verdict: %s\n"
    (Fmt.str "%a" Equivalence.pp_verdict
       (Equivalence.compare_traces r1.Engines.trace r2.Engines.trace))

(* ------------------------------------------------------------------ *)
(* E7: analyzer template coverage and hazards                          *)

let e7 () =
  section
    "E7  Program-analyzer template coverage (§5.3) and §3.2 hazard \
     detection";
  let mapping, _ = Mapping.derive_network W.Company.schema in
  (* hand-built variants *)
  let rows =
    List.map
      (fun (name, prog, expected) ->
        match Analyzer.analyze_network mapping prog with
        | Ok { Analyzer.hazards; _ } ->
            [ name; "analyzed";
              (if hazards = [] then "-" else String.concat "; " hazards);
              (if expected then "as expected" else "UNEXPECTED");
            ]
        | Error reason ->
            [ name; "refused"; reason;
              (if expected then "UNEXPECTED" else "as expected");
            ])
      (W.Generator.non_template_variants W.Company.schema)
  in
  Tablefmt.print ~title:"hand-written program variants"
    [ "program"; "analysis"; "diagnostics"; "check" ]
    rows;
  (* generated corpus round-trip *)
  let sample = W.Company.instance () in
  let corpus = W.Generator.batch ~seed:77 W.Company.schema ~sample ~n:80 () in
  let attempted = ref 0 and analyzed = ref 0 and behaved = ref 0 in
  List.iter
    (fun (_fam, aprog) ->
      match Generator.to_network mapping aprog with
      | Error _ -> ()
      | Ok (source, _) -> (
          incr attempted;
          match Analyzer.analyze_network mapping source with
          | Error _ -> ()
          | Ok { Analyzer.aprog = recovered; _ } ->
              incr analyzed;
              let sdb = W.Company.instance () in
              let r1 = Ainterp.run sdb aprog in
              let r2 = Ainterp.run sdb recovered in
              if Io_trace.equal r1.Ainterp.trace r2.Ainterp.trace then
                incr behaved))
    corpus;
  Printf.printf
    "\ngenerated corpus: %d programs, %d analyzed (%.0f%%), %d behaviour-\n\
     preserving round-trips (%.0f%%)\n"
    !attempted !analyzed
    (100. *. float !analyzed /. float !attempted)
    !behaved
    (100. *. float !behaved /. float !attempted)

(* ------------------------------------------------------------------ *)
(* E8: data translation throughput                                     *)

let e8 () =
  section "E8  Data translation throughput (records+links per second)";
  let rows = ref [] in
  List.iter
    (fun n ->
      let sdb = W.Company.scaled ~seed:4 ~n in
      let volume = Sdb.total_instances sdb in
      List.iter
        (fun (name, op) ->
          let (_ : Sdb.t), ms =
            time_ms (fun () -> Data_translate.translate_exn sdb op)
          in
          rows :=
            [ string_of_int n; name; string_of_int volume;
              Tablefmt.float_cell ms;
              Tablefmt.float_cell (float volume /. (ms /. 1000.) /. 1000.);
            ]
            :: !rows)
        [ ("rename-entity",
           Schema_change.Rename_entity { from_ = "EMP"; to_ = "EMPLOYEE" });
          ("add-field",
           Schema_change.Add_field
             { entity = "EMP";
               field = Field.make "SALARY" Value.Tint;
               default = Value.Int 0;
             });
          ("interpose", interpose_op);
        ])
    [ 100; 400; 1000 ];
  Tablefmt.print
    ~title:"semantic-level restructuring translation"
    ~aligns:
      [ Tablefmt.Right; Tablefmt.Left; Tablefmt.Right; Tablefmt.Right;
        Tablefmt.Right;
      ]
    [ "n(emp)"; "operator"; "instances"; "ms"; "k inst/s" ]
    (List.rev !rows)

(* ------------------------------------------------------------------ *)
(* E9: inverse mappings (Housel)                                       *)

let e9 () =
  section
    "E9  Invertibility of restructuring operators (Housel's assumption, \
     §2.2) and round-trip checks";
  let sdb = W.Company.instance () in
  let rows =
    List.map
      (fun (name, ops) ->
        match ops with
        | [ op ] ->
            let verdict = Inverse.invert W.Company.schema op in
            let roundtrip =
              match Inverse.roundtrip sdb op with
              | Some true -> "contents restored"
              | Some false -> "NOT restored"
              | None -> "no inverse"
            in
            [ name; Fmt.str "%a" Inverse.pp_verdict verdict; roundtrip ]
        | _ -> [ name; "(multi-op)"; "-" ])
      restructurings
  in
  Tablefmt.print ~title:"T^-1(T(db)) = db ?"
    [ "operator"; "invertibility"; "round-trip" ]
    rows

(* ------------------------------------------------------------------ *)
(* Figures                                                             *)

let fig31 () =
  section
    "F3.1  The school database: one semantic schema, its relational \
     (Fig 3.1a) and CODASYL (Fig 3.1b) realizations";
  Printf.printf "semantic schema:\n%s\n\n"
    (Fmt.str "%a" Semantic.pp W.School.schema);
  let _m, rschema = Mapping.derive_relational W.School.schema in
  Printf.printf "relational (Figure 3.1a):\n%s\n\n"
    (Fmt.str "%a" Ccv_relational.Rschema.pp rschema);
  let _m, nschema = Mapping.derive_network W.School.schema in
  Printf.printf "network (Figure 3.1b):\n%s\n"
    (Fmt.str "%a" Ccv_network.Nschema.pp nschema)

let fig43 () =
  section "F4.3  Maryland DDL round-trip (Figure 4.3)";
  let ddl = Ccv_frontend.Ddl.parse fig43_text in
  let printed = Ccv_frontend.Ddl.to_string ddl in
  Printf.printf "%s\n" printed;
  let again = Ccv_frontend.Ddl.parse printed in
  Printf.printf "round-trip: %s\n"
    (if ddl = again then "stable" else "UNSTABLE")

(* ------------------------------------------------------------------ *)
(* Micro-benchmarks (bechamel)                                         *)

let micro () =
  section "Micro-benchmarks (bechamel, monotonic clock)";
  let open Bechamel in
  let sdb = W.Company.scaled ~seed:13 ~n:200 in
  let net_mapping, nschema = Mapping.derive_network W.Company.schema in
  let ndb = Mapping.load_network net_mapping nschema sdb in
  let rel_mapping, rschema = Mapping.derive_relational W.Company.schema in
  let rdb = Mapping.load_relational rschema sdb in
  let hier_mapping, hschema = Mapping.derive_hier W.Company.schema in
  let hdb = Mapping.load_hier hier_mapping hschema sdb in
  let net_prog = net_source W.Programs.maryland_sales_query in
  let rel_prog =
    Result.get_ok (Generator.to_relational rel_mapping W.Programs.maryland_sales_query)
    |> fst
  in
  let hier_prog =
    Result.get_ok (Generator.to_hier hier_mapping W.Programs.maryland_sales_query)
    |> fst
  in
  let tests =
    [ Test.make ~name:"net: FIND sweep (md-sales)" (Staged.stage (fun () ->
          ignore (Engines.run (Engines.Net_db ndb) (Engines.Net_program net_prog))));
      Test.make ~name:"rel: cursor sweep (md-sales)" (Staged.stage (fun () ->
          ignore (Engines.run (Engines.Rel_db rdb) (Engines.Rel_program rel_prog))));
      Test.make ~name:"hier: GN sweep (md-sales)" (Staged.stage (fun () ->
          ignore
            (Engines.run (Engines.Hier_db hdb) (Engines.Hier_program hier_prog))));
      Test.make ~name:"analyze (network md-sales)" (Staged.stage (fun () ->
          ignore (Analyzer.analyze_network net_mapping net_prog)));
      Test.make ~name:"convert (interpose rule)" (Staged.stage (fun () ->
          ignore
            (Rules.convert W.Company.schema interpose_op
               W.Programs.maryland_sales_query)));
      Test.make ~name:"translate (interpose, n=200)" (Staged.stage (fun () ->
          ignore (Data_translate.translate_exn sdb interpose_op)));
      Test.make ~name:"generate (network)" (Staged.stage (fun () ->
          ignore (Generator.to_network net_mapping W.Programs.maryland_sales_query)));
    ]
  in
  let benchmark test =
    let instances = [ Toolkit.Instance.monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
    let raw = Benchmark.all cfg instances test in
    let results =
      Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false
                     ~predictors:[| Measure.run |])
        (Toolkit.Instance.monotonic_clock) raw
    in
    results
  in
  List.iter
    (fun test ->
      let results = benchmark (Test.make_grouped ~name:"g" [ test ]) in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] ->
              Printf.printf "%-36s %12.0f ns/run\n" name est
          | Some _ | None -> Printf.printf "%-36s (no estimate)\n" name)
        results)
    tests

(* ------------------------------------------------------------------ *)
(* micro-index: cursor iteration and equality indexes vs scans         *)

let micro_index () =
  section
    "MICRO-INDEX  cursor FIND NEXT and indexed equality FIND vs the \
     rescan/scan access model";
  let module Ndb = Ccv_network.Ndb in
  let module Interp = Ccv_network.Interp in
  let module Dml = Ccv_network.Dml in
  let env _ = None in
  let rows = ref [] in
  List.iter
    (fun n ->
      let sdb = W.Company.scaled ~seed:7 ~n in
      let m, ns = Mapping.derive_network W.Company.schema in
      let ndb = Mapping.load_network m ns sdb in
      let counters = Ndb.counters ndb in
      let measure f =
        let before = Counters.total counters in
        let r, ms = time_ms f in
        (r, Counters.total counters - before, ms)
      in
      (* A. Exhaustive FIND ANY + FIND DUPLICATE sweep over EMP.  The
         interpreter walks a cursor over the per-type index; the legacy
         model (replicated here through the public API) refetched every
         key of the type and filtered k > current on each step. *)
      let cursor_sweep () =
        let rec go db cur count =
          let o =
            Interp.exec db cur ~env (Dml.Find (Dml.Duplicate ("EMP", Cond.True)))
          in
          if o.Interp.status = Status.Ok then
            go o.Interp.db o.Interp.cur (count + 1)
          else count
        in
        let o =
          Interp.exec ndb Interp.initial_currency ~env
            (Dml.Find (Dml.Any ("EMP", Cond.True)))
        in
        if o.Interp.status = Status.Ok then go o.Interp.db o.Interp.cur 1 else 0
      in
      let rescan_sweep () =
        let step current =
          List.find_opt (fun k -> k > current) (Ndb.all_keys ndb "EMP")
        in
        let rec go current count =
          match step current with
          | Some k ->
              ignore (Ndb.view ndb k);
              go k (count + 1)
          | None -> count
        in
        match Ndb.all_keys ndb "EMP" with
        | [] -> 0
        | k :: _ ->
            ignore (Ndb.view ndb k);
            go k 1
      in
      let swept, cursor_acc, cursor_ms = measure cursor_sweep in
      let swept', rescan_acc, rescan_ms = measure rescan_sweep in
      if swept <> swept' then
        failwith
          (Printf.sprintf "micro-index: sweep mismatch %d vs %d" swept swept');
      (* B. Equality-qualified FIND ANY, repeated over distinct keys:
         index probe through the interpreter vs a full type scan. *)
      let probes = 100 in
      let probe_names =
        List.init probes (fun i -> Printf.sprintf "E%05d" (i * 97 mod n))
      in
      let cond name =
        Cond.Cmp (Cond.Eq, Cond.Field "EMP-NAME", Cond.Const (Value.Str name))
      in
      let indexed_probes () =
        (* The first FIND builds the index on demand; keep the indexed
           db for the rest, as a run unit would. *)
        List.fold_left
          (fun (db, hits) name ->
            let o =
              Interp.exec db Interp.initial_currency ~env
                (Dml.Find (Dml.Any ("EMP", cond name)))
            in
            (o.Interp.db, if o.Interp.status = Status.Ok then hits + 1 else hits))
          (ndb, 0) probe_names
        |> snd
      in
      let scan_probes () =
        let find name =
          List.exists
            (fun k ->
              match Ndb.view ndb k with
              | Some row -> Row.get row "EMP-NAME" = Some (Value.Str name)
              | None -> false)
            (Ndb.all_keys_silent ndb "EMP")
        in
        List.length (List.filter find probe_names)
      in
      let hits, idx_acc, idx_ms = measure indexed_probes in
      let hits', scan_acc, scan_ms = measure scan_probes in
      if hits <> hits' then
        failwith
          (Printf.sprintf "micro-index: probe mismatch %d vs %d" hits hits');
      List.iter
        (fun (variant, items, acc, ms) ->
          emit_json
            [ ("experiment", json_str "micro-index");
              ("variant", json_str variant);
              ("n", string_of_int n);
              ("items", string_of_int items);
              ("accesses", string_of_int acc);
              ("wall_ms", json_float ms);
            ];
          rows :=
            [ string_of_int n; variant; string_of_int items;
              string_of_int acc; Tablefmt.float_cell ms;
            ]
            :: !rows)
        [ ("find-next-cursor", swept, cursor_acc, cursor_ms);
          ("find-next-rescan", swept, rescan_acc, rescan_ms);
          ("eq-find-indexed", hits, idx_acc, idx_ms);
          ("eq-find-scan", hits, scan_acc, scan_ms);
        ])
    [ 100; 300; 1000 ];
  Tablefmt.print
    ~title:
      "cursor/index access paths vs the scan model (accesses are counted \
       reads+writes)"
    ~aligns:
      [ Tablefmt.Right; Tablefmt.Left; Tablefmt.Right; Tablefmt.Right;
        Tablefmt.Right;
      ]
    [ "n(emp)"; "variant"; "items"; "accesses"; "wall ms" ]
    (List.rev !rows)

(* ------------------------------------------------------------------ *)
(* SERVE: phased-coexistence service — shadow throughput per domain
   count, and the cost of shadowing vs straight target execution.      *)

let serve () =
  section
    "SERVE  Phased-coexistence service: shadow throughput by domain \
     count, shadow overhead vs straight target execution";
  let module S = Ccv_serve in
  let seed = 515 in
  let n = 240 in
  let domain_counts = [ 1; 2; 4 ] in
  (* A scaled instance so each request does real engine work — the
     domain-spawn cost per tick has to be amortized against it. *)
  let sample = W.Company.scaled ~seed:42 ~n:120 in
  let reqs = S.Request.stream ~seed W.Company.schema ~sample ~n () in
  let req =
    { Supervisor.source_schema = W.Company.schema;
      source_model = Mapping.Net;
      ops = [ interpose_op ];
      target_model = Mapping.Net;
    }
  in
  (* Pinned phases: promote_after/max_divergence_rate keep the
     controller where it starts, so every request is measured under
     one regime. *)
  let pinned initial =
    { S.Cutover.canary_fraction = 0.25;
      window = 32;
      min_observations = 8;
      max_divergence_rate = 2.0;
      promote_after = max_int;
      initial;
    }
  in
  let run ~domains ~initial =
    let config =
      { S.Pool.default_config with domains; shards = 8; batch = 24;
        canary_seed = seed }
    in
    match S.Pool.run ~config ~cutover:(pinned initial) req sample reqs with
    | Ok r -> r
    | Error e -> failwith ("serve bench: " ^ e)
  in
  let rows = ref [] in
  let wall_1 = ref 0. in
  List.iter
    (fun d ->
      let r = run ~domains:d ~initial:S.Cutover.Shadow in
      if d = 1 then wall_1 := r.S.Pool.wall_s;
      let thr = float r.S.Pool.served /. r.S.Pool.wall_s in
      emit_json
        [ ("experiment", json_str "serve");
          ("variant", json_str "shadow");
          ("domains", string_of_int d);
          ("served", string_of_int r.S.Pool.served);
          ("divergent", string_of_int (S.Metrics.total_divergent r.S.Pool.metrics));
          ("wall_s", json_float r.S.Pool.wall_s);
          ("req_per_s", json_float thr);
          ("speedup_vs_1", json_float (!wall_1 /. r.S.Pool.wall_s));
        ];
      rows :=
        [ "shadow"; string_of_int d; string_of_int r.S.Pool.served;
          Tablefmt.float_cell (r.S.Pool.wall_s *. 1000.);
          Tablefmt.float_cell thr;
          Tablefmt.float_cell (!wall_1 /. r.S.Pool.wall_s);
        ]
        :: !rows)
    domain_counts;
  let straight = run ~domains:1 ~initial:S.Cutover.Cutover in
  let thr = float straight.S.Pool.served /. straight.S.Pool.wall_s in
  let overhead = !wall_1 /. straight.S.Pool.wall_s in
  emit_json
    [ ("experiment", json_str "serve");
      ("variant", json_str "straight-target");
      ("domains", string_of_int 1);
      ("served", string_of_int straight.S.Pool.served);
      ("wall_s", json_float straight.S.Pool.wall_s);
      ("req_per_s", json_float thr);
      ("shadow_overhead_x", json_float overhead);
    ];
  rows :=
    [ "straight-target"; "1"; string_of_int straight.S.Pool.served;
      Tablefmt.float_cell (straight.S.Pool.wall_s *. 1000.);
      Tablefmt.float_cell thr; "-";
    ]
    :: !rows;
  List.iter emit_json (S.Metrics.json_rows straight.S.Pool.metrics);
  meta_extra :=
    !meta_extra
    @ [ ("serve_seed", string_of_int seed);
        ("serve_requests", string_of_int n);
        ("serve_domain_counts",
         "[" ^ String.concat ", " (List.map string_of_int domain_counts) ^ "]");
      ];
  Tablefmt.print
    ~title:
      (Printf.sprintf
         "service throughput (shadow runs source AND target per request; \
          this machine recommends %d domain(s), so cross-domain speedup \
          is bounded by the hardware)"
         (Domain.recommended_domain_count ()))
    ~aligns:
      [ Tablefmt.Left; Tablefmt.Right; Tablefmt.Right; Tablefmt.Right;
        Tablefmt.Right; Tablefmt.Right;
      ]
    [ "variant"; "domains"; "served"; "wall ms"; "req/s"; "speedup vs 1" ]
    (List.rev !rows);
  Printf.printf
    "\nshadow overhead at 1 domain: %.2fx the straight target run\n" overhead

(* ------------------------------------------------------------------ *)
(* PLAN: compiled query plans — the abstract interpreter vs the
   compile-once-run-many closures, and the serving loop with the
   per-shard plan cache on vs off (steady-state stream: a fixed set of
   distinct programs cycled over many requests).                       *)

let plan () =
  section
    "PLAN  Compiled plans: interpreter vs compiled closures; plan-cache \
     hit rate and serve throughput with the cache on/off";
  let module P = Ccv_plan in
  let module G = Ccv_workload.Generator in
  let rows = ref [] in
  (* -- abstract programs: interpret per run vs compile once ---------- *)
  let bench_progs variant ~mk_db ~progs ~reps =
    let interp_db = mk_db () and compiled_db = mk_db () in
    List.iter (fun p -> ignore (Ainterp.run interp_db p)) progs;
    let (), interp_ms =
      time_ms (fun () ->
          for _ = 1 to reps do
            List.iter (fun p -> ignore (Ainterp.run interp_db p)) progs
          done)
    in
    let compiled, compile_ms =
      time_ms (fun () ->
          List.map (fun p -> P.Compile.compile W.Company.schema p) progs)
    in
    List.iter (fun c -> ignore (P.Compile.run compiled_db c)) compiled;
    let (), run_ms =
      time_ms (fun () ->
          for _ = 1 to reps do
            List.iter (fun c -> ignore (P.Compile.run compiled_db c)) compiled
          done)
    in
    let runs = reps * List.length progs in
    let speedup = interp_ms /. run_ms in
    emit_json
      [ ("experiment", json_str "plan");
        ("variant", json_str variant);
        ("programs", string_of_int (List.length progs));
        ("runs", string_of_int runs);
        ("interp_ms", json_float interp_ms);
        ("compile_ms", json_float compile_ms);
        ("compiled_run_ms", json_float run_ms);
        ("speedup", json_float speedup);
      ];
    rows :=
      [ variant; string_of_int runs; Tablefmt.float_cell interp_ms;
        Tablefmt.float_cell compile_ms; Tablefmt.float_cell run_ms;
        Tablefmt.float_cell speedup;
      ]
      :: !rows
  in
  let instance () = W.Company.instance () in
  let scaled () = W.Company.scaled ~seed:42 ~n:400 in
  let mixed =
    List.map snd
      (G.batch ~seed:808 W.Company.schema ~sample:(instance ()) ~n:24 ())
  in
  bench_progs "abstract-mixed" ~mk_db:instance ~progs:mixed ~reps:100;
  let lookup_family =
    List.find
      (fun f -> Fmt.str "%a" G.pp_family f = "lookup")
      G.all_families
  in
  let lookups =
    List.map snd
      (G.batch ~seed:809 W.Company.schema ~sample:(scaled ()) ~n:12
         ~mix:[ (1, lookup_family) ] ())
  in
  bench_progs "eq-lookup-scaled" ~mk_db:scaled ~progs:lookups ~reps:500;
  Tablefmt.print
    ~title:
      "abstract execution: interpreter vs compiled closures (compile \
       once, run many; eq lookups probe the hoisted index)"
    ~aligns:
      [ Tablefmt.Left; Tablefmt.Right; Tablefmt.Right; Tablefmt.Right;
        Tablefmt.Right; Tablefmt.Right;
      ]
    [ "variant"; "runs"; "interp ms"; "compile ms"; "compiled ms"; "speedup" ]
    (List.rev !rows);
  (* -- serving: per-shard plan cache on vs off ----------------------- *)
  let module S = Ccv_serve in
  let seed = 616 in
  let n = 480 in
  let distinct = 12 in
  let nshards = 8 in
  (* the base instance: requests are cheap to execute, so the
     per-request conversion pipeline — what the cache removes — is the
     dominant cost, as in a steady-state service of small queries *)
  let sample = W.Company.instance () in
  let reqs =
    S.Request.stream ~seed W.Company.schema ~sample ~n ~distinct ()
  in
  let req =
    { Supervisor.source_schema = W.Company.schema;
      source_model = Mapping.Net;
      ops = [ interpose_op ];
      target_model = Mapping.Net;
    }
  in
  let pinned =
    { S.Cutover.canary_fraction = 0.25;
      window = 32;
      min_observations = 8;
      max_divergence_rate = 2.0;
      promote_after = max_int;
      initial = S.Cutover.Shadow;
    }
  in
  let run_serve ~domains ~use_plan_cache =
    let config =
      { S.Pool.default_config with
        domains; shards = nshards; batch = 24; canary_seed = seed;
        use_plan_cache;
      }
    in
    match S.Pool.run ~config ~cutover:pinned req sample reqs with
    | Ok r -> r
    | Error e -> failwith ("plan bench: " ^ e)
  in
  let srows = ref [] in
  let stats = ref P.Plan_cache.zero_stats in
  List.iter
    (fun d ->
      let off = run_serve ~domains:d ~use_plan_cache:false in
      let on_ = run_serve ~domains:d ~use_plan_cache:true in
      if d = 1 then stats := on_.S.Pool.plan_stats;
      let thr (r : S.Pool.report) = float r.S.Pool.served /. r.S.Pool.wall_s in
      let speedup = off.S.Pool.wall_s /. on_.S.Pool.wall_s in
      List.iter
        (fun (variant, (r : S.Pool.report)) ->
          emit_json
            [ ("experiment", json_str "plan");
              ("variant", json_str variant);
              ("domains", string_of_int d);
              ("served", string_of_int r.S.Pool.served);
              ("divergent",
               string_of_int (S.Metrics.total_divergent r.S.Pool.metrics));
              ("wall_s", json_float r.S.Pool.wall_s);
              ("req_per_s", json_float (thr r));
              ("plan_hits", string_of_int r.S.Pool.plan_stats.P.Plan_cache.hits);
              ("plan_misses",
               string_of_int r.S.Pool.plan_stats.P.Plan_cache.misses);
            ])
        [ ("serve-interpreted", off); ("serve-cached", on_) ];
      srows :=
        [ string_of_int d; string_of_int on_.S.Pool.served;
          Tablefmt.float_cell (thr off); Tablefmt.float_cell (thr on_);
          Tablefmt.float_cell speedup;
          Printf.sprintf "%.1f%%"
            (100. *. P.Plan_cache.hit_rate on_.S.Pool.plan_stats);
        ]
        :: !srows)
    [ 1; 2; 4 ];
  let s = !stats in
  meta_extra :=
    !meta_extra
    @ [ ("plan_serve_requests", string_of_int n);
        ("plan_serve_distinct", string_of_int distinct);
        ("plan_cache_hits", string_of_int s.P.Plan_cache.hits);
        ("plan_cache_misses", string_of_int s.P.Plan_cache.misses);
        ("plan_cache_hit_rate", json_float (P.Plan_cache.hit_rate s));
      ];
  Tablefmt.print
    ~title:
      (Printf.sprintf
         "steady-state serving (%d requests cycling %d programs, %d \
          shards): re-convert per request vs per-shard compiled plan cache"
         n distinct nshards)
    ~aligns:
      [ Tablefmt.Right; Tablefmt.Right; Tablefmt.Right; Tablefmt.Right;
        Tablefmt.Right; Tablefmt.Right;
      ]
    [ "domains"; "served"; "interp req/s"; "cached req/s"; "speedup";
      "hit rate" ]
    (List.rev !srows);
  Printf.printf
    "\nplan cache steady state: %d hit(s), %d miss(es), %.1f%% hit rate\n"
    s.P.Plan_cache.hits s.P.Plan_cache.misses
    (100. *. P.Plan_cache.hit_rate s)

(* ------------------------------------------------------------------ *)
(* SCALING: the persistent worker pool — req/s per domain count with
   the plan cache on and off, parallel replica preparation, and the
   pool's park time.  [--smoke] mode (the scaling-smoke id) runs a
   small batch at 2 domains on every CI push and fails loudly when the
   pool regresses into negative scaling.                               *)

(* Set by the scaling experiment: the measured throughput argmax.  The
   meta row prefers it over [Domain.recommended_domain_count] so the
   recommendation reflects this machine's serving behaviour, not just
   its core count. *)
let measured_recommended : int option ref = ref None

let scaling ?(smoke = false) () =
  section
    (if smoke then
       "SCALING-SMOKE  persistent pool regression check (2 domains, small \
        batch)"
     else
       "SCALING  persistent worker pool: req/s by domain count, parallel \
        replica prep, pool idle time");
  let module S = Ccv_serve in
  let seed = 717 in
  let n = if smoke then 96 else 480 in
  let distinct = 12 in
  let nshards = 8 in
  let domain_counts = if smoke then [ 1; 2 ] else [ 1; 2; 4; 8 ] in
  Printf.printf "hardware: Domain.recommended_domain_count () = %d\n\n"
    (Domain.recommended_domain_count ());
  let sample = W.Company.instance () in
  let reqs =
    S.Request.stream ~seed W.Company.schema ~sample ~n ~distinct ()
  in
  let req =
    { Supervisor.source_schema = W.Company.schema;
      source_model = Mapping.Net;
      ops = [ interpose_op ];
      target_model = Mapping.Net;
    }
  in
  let pinned =
    { S.Cutover.canary_fraction = 0.25;
      window = 32;
      min_observations = 8;
      max_divergence_rate = 2.0;
      promote_after = max_int;
      initial = S.Cutover.Shadow;
    }
  in
  let run_serve ~domains ~use_plan_cache ~epoch_serving =
    let config =
      { S.Pool.default_config with
        domains; shards = nshards; batch = 24; canary_seed = seed;
        use_plan_cache; epoch_serving;
      }
    in
    let once () =
      match S.Pool.run ~config ~cutover:pinned req sample reqs with
      | Ok r -> r
      | Error e -> failwith ("scaling bench: " ^ e)
    in
    (* served traffic is deterministic per config, so the trials differ
       only in timing: keep the fastest to damp scheduler noise on
       millisecond-scale runs *)
    let r0 = once () in
    List.fold_left
      (fun best _ ->
        let r = once () in
        if r.S.Pool.wall_s < best.S.Pool.wall_s then r else best)
      r0 [ (); () ]
  in
  let rows = ref [] in
  (* throughput per (variant, mode), for baselines and the smoke gate *)
  let thr_acc : ((string * string) * (int * float) list ref) list =
    List.concat_map
      (fun v -> List.map (fun m -> ((v, m), ref [])) [ "epoch"; "barrier" ])
      [ "cached"; "interpreted" ]
  in
  let idle_acc : ((string * string * int) * float) list ref = ref [] in
  List.iter
    (fun d ->
      List.iter
        (fun (variant, use_plan_cache) ->
          List.iter
            (fun (mode, epoch_serving) ->
              let r = run_serve ~domains:d ~use_plan_cache ~epoch_serving in
              let thr = float r.S.Pool.served /. r.S.Pool.wall_s in
              let acc = List.assoc (variant, mode) thr_acc in
              acc := (d, thr) :: !acc;
              idle_acc :=
                ((variant, mode, d), r.S.Pool.pool_idle_s) :: !idle_acc;
              let base =
                match List.assoc_opt 1 !acc with Some t -> t | None -> thr
              in
              emit_json
                [ ("experiment", json_str "scaling");
                  ("variant", json_str variant);
                  ("mode", json_str mode);
                  ("domains", string_of_int d);
                  ("served", string_of_int r.S.Pool.served);
                  ("divergent",
                   string_of_int (S.Metrics.total_divergent r.S.Pool.metrics));
                  ("wall_s", json_float r.S.Pool.wall_s);
                  ("req_per_s", json_float thr);
                  ("speedup_vs_1", json_float (thr /. base));
                  ("pool_idle_s", json_float r.S.Pool.pool_idle_s);
                  ("worker_idle_s",
                   "["
                   ^ String.concat ", "
                       (List.map json_float r.S.Pool.worker_idle_s)
                   ^ "]");
                ];
          rows :=
                [ variant; mode; string_of_int d;
                  string_of_int r.S.Pool.served;
                  Tablefmt.float_cell (r.S.Pool.wall_s *. 1000.);
                  Tablefmt.float_cell thr;
                  Tablefmt.float_cell (thr /. base);
                  Tablefmt.float_cell r.S.Pool.pool_idle_s;
                ]
                :: !rows)
            [ ("epoch", true); ("barrier", false) ])
        [ ("cached", true); ("interpreted", false) ])
    domain_counts;
  let cached_thr = !(List.assoc ("cached", "epoch") thr_acc) in
  Tablefmt.print
    ~title:
      (Printf.sprintf
         "pool serving, epoch snapshots vs tick barrier (%d requests, %d \
          shards; speedup is per variant+mode vs its own 1-domain run)"
         n nshards)
    ~aligns:
      [ Tablefmt.Left; Tablefmt.Left; Tablefmt.Right; Tablefmt.Right;
        Tablefmt.Right; Tablefmt.Right; Tablefmt.Right; Tablefmt.Right;
      ]
    [ "variant"; "mode"; "domains"; "served"; "wall ms"; "req/s";
      "speedup vs 1"; "idle s" ]
    (List.rev !rows);
  (* idle-time head-to-head: the coordination overhead the epoch
     pipeline removes *)
  print_newline ();
  Tablefmt.print
    ~title:"coordination idle seconds, barrier vs epoch (cached variant)"
    ~aligns:
      [ Tablefmt.Right; Tablefmt.Right; Tablefmt.Right ]
    [ "domains"; "barrier idle s"; "epoch idle s" ]
    (List.map
       (fun d ->
         [ string_of_int d;
           Tablefmt.float_cell
             (List.assoc ("cached", "barrier", d) !idle_acc);
           Tablefmt.float_cell (List.assoc ("cached", "epoch", d) !idle_acc);
         ])
       domain_counts);
  (* -- parallel replica preparation: the same pool chunks the bulk
        data translation ([Supervisor.prepare_serving ?pool]) -------- *)
  let big = W.Company.scaled ~seed:42 ~n:(if smoke then 120 else 400) in
  let prep_ms k =
    let once pool =
      let r, ms =
        time_ms (fun () -> Supervisor.prepare_serving ?pool req big)
      in
      (match r with
      | Ok _ -> ()
      | Error (stage, e) -> failwith ("scaling prep: " ^ stage ^ ": " ^ e));
      ms
    in
    if k = 1 then once None
    else Workpool.with_pool k (fun pool -> once (Some pool))
  in
  let prep_1 = prep_ms 1 in
  let prows =
    List.map
      (fun k ->
        let ms = if k = 1 then prep_1 else prep_ms k in
        emit_json
          [ ("experiment", json_str "scaling");
            ("variant", json_str "prepare");
            ("domains", string_of_int k);
            ("wall_ms", json_float ms);
            ("speedup_vs_1", json_float (prep_1 /. ms));
          ];
        [ string_of_int k; Tablefmt.float_cell ms;
          Tablefmt.float_cell (prep_1 /. ms);
        ])
      domain_counts
  in
  print_newline ();
  Tablefmt.print
    ~title:
      "replica preparation (translate + load a scaled instance) on the pool"
    ~aligns:[ Tablefmt.Right; Tablefmt.Right; Tablefmt.Right ]
    [ "domains"; "prep ms"; "speedup vs 1" ]
    prows;
  (* -- recommendation from measurement ------------------------------- *)
  let best =
    List.fold_left
      (fun (bd, bt) (d, t) -> if t > bt then (d, t) else (bd, bt))
      (1, 0.) cached_thr
  in
  measured_recommended := Some (fst best);
  meta_extra :=
    !meta_extra
    @ [ ("scaling_seed", string_of_int seed);
        ("scaling_requests", string_of_int n);
        ("scaling_domain_counts",
         "[" ^ String.concat ", " (List.map string_of_int domain_counts) ^ "]");
        ("scaling_best_cached_req_per_s", json_float (snd best));
        ("epoch_batch",
         string_of_int S.Pool.default_config.S.Pool.epoch_batch);
        ("epoch_lag", string_of_int S.Pool.default_config.S.Pool.epoch_lag);
      ];
  Printf.printf
    "\nmeasured recommendation: %d domain(s) (best cached req/s); hardware \
     reports %d core(s)\n"
    (fst best)
    (Domain.recommended_domain_count ());
  (* -- smoke gate: fail loudly on negative scaling ------------------- *)
  if smoke then begin
    let thr_of variant mode =
      let acc = !(List.assoc (variant, mode) thr_acc) in
      let t1 = List.assoc 1 acc and t2 = List.assoc 2 acc in
      Printf.printf "smoke %-12s %-8s 1 domain %8.0f req/s, 2 domains \
                     %8.0f req/s (%.2fx)\n"
        variant mode t1 t2 (t2 /. t1);
      (t1, t2)
    in
    List.iter
      (fun variant ->
        (* The spawn-per-tick loop the pool replaced collapsed to ~0.3x
           at 2 domains even on one core; both serving modes must stay
           well clear of that cliff. *)
        let b1, b2 = thr_of variant "barrier" in
        let e1, e2 = thr_of variant "epoch" in
        List.iter
          (fun (mode, t1, t2) ->
            if t2 /. t1 < 0.4 then begin
              Printf.eprintf
                "SCALING REGRESSION: %s/%s throughput at 2 domains is \
                 %.2fx the 1-domain run (threshold 0.40x)\n"
                variant mode (t2 /. t1);
              exit 1
            end)
          [ ("barrier", b1, b2); ("epoch", e1, e2) ];
        (* Barrier-free serving exists to beat the barrier.  Absolute
           2-domain throughput, not ratio-of-ratios: epoch mode's
           faster 1-domain baseline would otherwise make an equal
           2-domain run look like a regression.  0.85 slack for
           scheduler noise on millisecond-scale runs. *)
        if e2 < b2 *. 0.85 then begin
          Printf.eprintf
            "SCALING REGRESSION: %s epoch-mode 2-domain throughput \
             (%.0f req/s) fell below barrier mode (%.0f req/s) beyond \
             the 0.85 slack\n"
            variant e2 b2;
          exit 1
        end)
      [ "cached"; "interpreted" ];
    Printf.printf
      "smoke: no negative-scaling regression in either serving mode\n"
  end

(* ------------------------------------------------------------------ *)
(* migration: live cutover (lazy translation + backfill + dual-apply)
   vs stop-the-world bulk preparation                                  *)

let percentile_us p lats =
  match List.sort Float.compare lats with
  | [] -> 0.
  | sorted ->
      let n = List.length sorted in
      let idx = max 0 (min (n - 1) (int_of_float (ceil (p *. float n)) - 1)) in
      List.nth sorted idx

let migration ?(smoke = false) () =
  section
    (if smoke then
       "MIGRATION-SMOKE  live first response must beat bulk preparation"
     else
       "MIGRATION  live (lazy + backfill + dual-apply) vs stop-the-world: \
        time to first response, req/s and p95 during migration");
  let module S = Ccv_serve in
  let module M = Ccv_migrate.Migrate in
  let seed = 929 in
  let nshards = 4 in
  let n = if smoke then 96 else 128 in
  (* the volume sweep rides the epoch flagship at 2 domains; the
     domain sweep (1/2/8, both modes) runs at the middle volume so the
     bench finishes in CI time *)
  let volumes = if smoke then [ 1000 ] else [ 250; 1000; 3000 ] in
  let sweep_volume = 1000 in
  let domain_counts = if smoke then [ 2 ] else [ 1; 2; 8 ] in
  let req =
    { Supervisor.source_schema = W.Company.schema;
      source_model = Mapping.Net;
      ops = [ interpose_op ];
      target_model = Mapping.Net;
    }
  in
  (* pinned in Shadow: every request is measured mid-migration, under
     the dual-run regime, never after a promotion *)
  let pinned =
    { S.Cutover.canary_fraction = 0.25;
      window = 32;
      min_observations = 8;
      max_divergence_rate = 2.0;
      promote_after = max_int;
      initial = S.Cutover.Shadow;
    }
  in
  let run_one ~sample ~reqs ~domains ~epoch_serving ~live =
    let config =
      { S.Pool.default_config with
        domains; shards = nshards; batch = 24; canary_seed = seed;
        epoch_serving; live_migration = live; backfill_batch = 48;
        backfill_lag = 1;
      }
    in
    match S.Pool.run ~config ~cutover:pinned req sample reqs with
    | Error e -> failwith ("migration bench: " ^ e)
    | Ok r ->
        let lats =
          List.map
            (fun (o : S.Shadow.outcome) -> o.S.Shadow.latency_us)
            r.S.Pool.outcomes
        in
        let first =
          match r.S.Pool.outcomes with
          | o :: _ -> o.S.Shadow.latency_us /. 1e6
          | [] -> 0.
        in
        (r, r.S.Pool.prepare_s +. first, percentile_us 0.95 lats)
  in
  let rows = ref [] in
  (* (volume, style, mode, domains) -> (prepare_s, first_response_s) *)
  let results = ref [] in
  List.iter
    (fun vol ->
      let sample = W.Company.scaled ~seed:42 ~n:vol in
      let reqs =
        S.Request.stream ~seed W.Company.schema ~sample ~n ~distinct:12
          ~skew:1.1 ()
      in
      let ds = if vol = sweep_volume then domain_counts else [ 2 ] in
      let modes =
        if vol = sweep_volume then [ ("epoch", true); ("barrier", false) ]
        else [ ("epoch", true) ]
      in
      List.iter
        (fun d ->
          List.iter
            (fun (mode, epoch_serving) ->
              List.iter
                (fun (style, live) ->
                  let r, first_resp, p95 =
                    run_one ~sample ~reqs ~domains:d ~epoch_serving ~live
                  in
                  let thr = float r.S.Pool.served /. r.S.Pool.wall_s in
                  results :=
                    ((vol, style, mode, d), (r.S.Pool.prepare_s, first_resp))
                    :: !results;
                  let faulted, backfilled =
                    match r.S.Pool.migration with
                    | Some m -> (m.M.faulted, m.M.backfilled)
                    | None -> (0, 0)
                  in
                  emit_json
                    [ ("experiment", json_str "migration");
                      ("style", json_str style);
                      ("mode", json_str mode);
                      ("volume", string_of_int vol);
                      ("domains", string_of_int d);
                      ("served", string_of_int r.S.Pool.served);
                      ("prepare_s", json_float r.S.Pool.prepare_s);
                      ("first_response_s", json_float first_resp);
                      ("wall_s", json_float r.S.Pool.wall_s);
                      ("req_per_s", json_float thr);
                      ("p95_us", json_float p95);
                      ("faulted", string_of_int faulted);
                      ("backfilled", string_of_int backfilled);
                    ];
          rows :=
                    [ string_of_int vol; style; mode; string_of_int d;
                      Tablefmt.float_cell (r.S.Pool.prepare_s *. 1000.);
                      Tablefmt.float_cell (first_resp *. 1000.);
                      Tablefmt.float_cell thr;
                      Tablefmt.float_cell p95;
                      string_of_int faulted; string_of_int backfilled;
                    ]
                    :: !rows)
                [ ("stop-the-world", false); ("live", true) ])
            modes)
        ds)
    volumes;
  Tablefmt.print
    ~title:
      (Printf.sprintf
         "serving during migration, %d requests, %d shards (first response \
          = prepare + first request latency)"
         n nshards)
    ~aligns:
      [ Tablefmt.Right; Tablefmt.Left; Tablefmt.Left; Tablefmt.Right;
        Tablefmt.Right; Tablefmt.Right; Tablefmt.Right; Tablefmt.Right;
        Tablefmt.Right; Tablefmt.Right;
      ]
    [ "volume"; "style"; "mode"; "domains"; "prep ms"; "first resp ms";
      "req/s"; "p95 us"; "faulted"; "backfilled" ]
    (List.rev !rows);
  meta_extra :=
    !meta_extra
    @ [ ("migration_seed", string_of_int seed);
        ("migration_requests", string_of_int n);
        ("migration_volumes",
         "[" ^ String.concat ", " (List.map string_of_int volumes) ^ "]");
        ("migration_backfill_batch", "48");
        ("migration_backfill_lag", "1");
      ];
  (* The point of the subsystem, stated as a gate: at the largest
     dataset, live migration answers its first request before the
     stop-the-world run has even finished preparing its replicas. *)
  let top = List.fold_left max 0 volumes in
  List.iter
    (fun mode ->
      match
        ( List.assoc_opt (top, "stop-the-world", mode, 2) !results,
          List.assoc_opt (top, "live", mode, 2) !results )
      with
      | Some (stw_prep, _), Some (_, live_first) ->
          Printf.printf
            "%s, %d records: live first response %.3fs vs stop-the-world \
             prepare %.3fs (%.1fx)\n"
            mode top live_first stw_prep (stw_prep /. live_first);
          if smoke && live_first >= stw_prep then begin
            Printf.eprintf
              "MIGRATION REGRESSION: %s-mode live first response (%.3fs) \
               does not beat bulk preparation (%.3fs) at %d records\n"
              mode live_first stw_prep top;
            exit 1
          end
      | _ -> ())
    (if smoke then [ "epoch"; "barrier" ] else [ "epoch" ]);
  if smoke then
    Printf.printf
      "smoke: live migration serves before bulk preparation completes\n"

(* ------------------------------------------------------------------ *)
(* drain: pure backfill throughput — every slot of a scaled instance
   drained through [Migrate.backfill_to] with no serving in the way.
   Isolates the per-batch slice-assembly cost of [Migrate.merge_batch]:
   superlinear assembly shows up as slots/s falling with volume. *)

let drain () =
  section
    "DRAIN  backfill drain throughput vs instance volume (merge_batch \
     slice assembly must stay near-linear)";
  let module M = Ccv_migrate.Migrate in
  let req =
    { Supervisor.source_schema = W.Company.schema;
      source_model = Mapping.Net;
      ops = [ interpose_op ];
      target_model = Mapping.Net;
    }
  in
  let rows = ref [] in
  List.iter
    (fun vol ->
      let sample = W.Company.scaled ~seed:42 ~n:vol in
      let config = { M.default_config with batch = 48 } in
      match M.start ~config ~shard_id:0 req sample with
      | Error (stage, reason) -> failwith (stage ^ ": " ^ reason)
      | Ok (m, _servable) ->
          let total = M.total m in
          let (), ms =
            time_ms (fun () ->
                let to_ = ref 0 in
                while M.n_done m < total && M.failed m = None do
                  to_ := min total (!to_ + 48);
                  M.backfill_to m ~to_:!to_
                done)
          in
          (match M.failed m with
          | Some msg -> failwith ("drain bench: migration failed: " ^ msg)
          | None -> ());
          let per_slot_us = ms *. 1000. /. float (max total 1) in
          emit_json
            [ ("experiment", json_str "drain");
              ("volume", string_of_int vol);
              ("slots", string_of_int total);
              ("wall_ms", json_float ms);
              ("slots_per_s", json_float (float total /. (ms /. 1000.)));
              ("per_slot_us", json_float per_slot_us);
            ];
          rows :=
            [ string_of_int vol; string_of_int total;
              Tablefmt.float_cell ms;
              Tablefmt.float_cell (float total /. (ms /. 1000.));
              Tablefmt.float_cell per_slot_us;
            ]
            :: !rows)
    [ 250; 1000; 3000 ];
  Tablefmt.print
    ~title:"full backfill drain, batch 48, interpose op (no serving)"
    ~aligns:
      [ Tablefmt.Right; Tablefmt.Right; Tablefmt.Right; Tablefmt.Right;
        Tablefmt.Right ]
    [ "volume"; "slots"; "wall ms"; "slots/s"; "us/slot" ]
    (List.rev !rows)

(* ------------------------------------------------------------------ *)
(* cost: cost-based plan selection from live cardinality statistics vs
   the fixed first-conjunct heuristic.  A micro pair measures record
   reads on a skewed instance where the heuristic probes the popular
   conjunct; serving runs the skewed workload cached, heuristic vs
   cost-based; a third run mutates under a small drift threshold to
   exercise statistics-driven plan invalidation.  [--gate] mode
   (cost-smoke) fails loudly when cost-based cached serving falls
   behind heuristic cached serving on the skewed workload.             *)

let cost_bench ?(gate = false) () =
  section
    (if gate then
       "COST-SMOKE  cost-based cached serving must not fall behind the \
        heuristic on the skewed workload"
     else
       "COST  cost-based plan selection vs fixed heuristic: micro probe \
        choice, skewed serving, drift invalidation");
  let module P = Ccv_plan in
  let module S = Ccv_serve in
  (* -- micro: two-eq-conjunct lookup, popular conjunct first --------- *)
  let vol = 2000 in
  let mk_db () = W.Company.scaled ~seed:17 ~n:vol in
  let sample = mk_db () in
  let stats = P.Stats.of_sdb sample in
  let sales_emp =
    match
      List.find_opt
        (fun r -> Row.get r "DEPT-NAME" = Some (Value.Str "SALES"))
        (Sdb.rows_silent sample "EMP")
    with
    | Some r -> Row.get_exn r "EMP-NAME"
    | None -> failwith "cost bench: no SALES employee"
  in
  let prog =
    { Aprog.name = "SKEWED-LOOKUP";
      body =
        [ Aprog.For_each
            { query =
                [ Apattern.Self
                    { target = "EMP";
                      qual =
                        Cond.And
                          ( Cond.eq_field_const "DEPT-NAME" (Value.Str "SALES"),
                            Cond.eq_field_const "EMP-NAME" sales_emp );
                    };
                ];
              body = [ Aprog.Display [ Host.v "EMP.AGE" ] ];
            };
        ];
    }
  in
  let reps = if gate then 50 else 300 in
  let measure compiled =
    (* thread the returned database through so the plan's indexes are
       built once and stay warm, as in cached serving *)
    let db = ref (mk_db ()) in
    db := (P.Compile.run !db compiled).Ainterp.db;
    (* counters are shared through the persistent Sdb: one counted run *)
    Counters.reset (Sdb.counters !db);
    db := (P.Compile.run !db compiled).Ainterp.db;
    let reads = Counters.reads (Sdb.counters !db) in
    let (), ms =
      time_ms (fun () ->
          for _ = 1 to reps do
            db := (P.Compile.run !db compiled).Ainterp.db
          done)
    in
    (reads, ms)
  in
  let h_reads, h_ms = measure (P.Compile.compile W.Company.schema prog) in
  let c_reads, c_ms = measure (P.Compile.compile ~stats W.Company.schema prog) in
  emit_json
    [ ("experiment", json_str "cost");
      ("variant", json_str "micro-two-conjunct");
      ("volume", string_of_int vol);
      ("reps", string_of_int reps);
      ("heuristic_reads", string_of_int h_reads);
      ("cost_reads", string_of_int c_reads);
      ("heuristic_ms", json_float h_ms);
      ("cost_ms", json_float c_ms);
      ("read_ratio", json_float (float h_reads /. float (max c_reads 1)));
    ];
  Tablefmt.print
    ~title:
      (Printf.sprintf
         "two-eq-conjunct lookup on a %d-employee skewed instance (popular \
          conjunct first; %d reps)"
         vol reps)
    ~aligns:
      [ Tablefmt.Left; Tablefmt.Right; Tablefmt.Right; Tablefmt.Right ]
    [ "plans"; "reads/run"; "wall ms"; "reads ratio" ]
    [ [ "heuristic (first conjunct)"; string_of_int h_reads;
        Tablefmt.float_cell h_ms; "1.0";
      ];
      [ "cost-based (selective conjunct)"; string_of_int c_reads;
        Tablefmt.float_cell c_ms;
        Tablefmt.float_cell (float h_reads /. float (max c_reads 1));
      ];
    ];
  if c_reads > h_reads then begin
    Printf.eprintf
      "COST REGRESSION: cost-chosen plan reads more records than the \
       heuristic (%d > %d)\n"
      c_reads h_reads;
    exit 1
  end;
  (* -- serving: skewed workload, cached, heuristic vs cost-based ----- *)
  let seed = 424 in
  let nreq = if gate then 192 else 480 in
  let distinct = 12 in
  let skew = 1.2 in
  let nshards = 4 in
  let sample = W.Company.instance () in
  let reqs =
    S.Request.stream ~seed W.Company.schema ~sample ~n:nreq ~distinct ~skew ()
  in
  let req =
    { Supervisor.source_schema = W.Company.schema;
      source_model = Mapping.Net;
      ops = [ interpose_op ];
      target_model = Mapping.Net;
    }
  in
  let pinned =
    { S.Cutover.canary_fraction = 0.25;
      window = 32;
      min_observations = 8;
      max_divergence_rate = 2.0;
      promote_after = max_int;
      initial = S.Cutover.Shadow;
    }
  in
  let run_serve ~cost_based ?(stats_every = 0) ?(drift_threshold = 0.5) () =
    let config =
      { S.Pool.default_config with
        domains = 2; shards = nshards; batch = 24; canary_seed = seed;
        cost_based_plans = cost_based; stats_every; drift_threshold;
      }
    in
    let once () =
      match S.Pool.run ~config ~cutover:pinned req sample reqs with
      | Ok r -> r
      | Error e -> failwith ("cost bench: " ^ e)
    in
    (* served traffic is deterministic per config; keep the fastest of
       three to damp scheduler noise *)
    let r0 = once () in
    List.fold_left
      (fun best _ ->
        let r = once () in
        if r.S.Pool.wall_s < best.S.Pool.wall_s then r else best)
      r0 [ (); () ]
  in
  let heur = run_serve ~cost_based:false () in
  let cost = run_serve ~cost_based:true () in
  let drifted =
    run_serve ~cost_based:true ~stats_every:8 ~drift_threshold:0.02 ()
  in
  let thr (r : S.Pool.report) = float r.S.Pool.served /. r.S.Pool.wall_s in
  List.iter
    (fun (variant, (r : S.Pool.report)) ->
      emit_json
        [ ("experiment", json_str "cost");
          ("variant", json_str variant);
          ("skew", json_float skew);
          ("requests", string_of_int nreq);
          ("served", string_of_int r.S.Pool.served);
          ("divergent",
           string_of_int (S.Metrics.total_divergent r.S.Pool.metrics));
          ("wall_s", json_float r.S.Pool.wall_s);
          ("req_per_s", json_float (thr r));
          ("plan_hits", string_of_int r.S.Pool.plan_stats.P.Plan_cache.hits);
          ("plan_misses",
           string_of_int r.S.Pool.plan_stats.P.Plan_cache.misses);
          ("drift_invalidations",
           string_of_int
             r.S.Pool.plan_stats.P.Plan_cache.drift_invalidations);
        ])
    [ ("serve-heuristic", heur); ("serve-cost", cost);
      ("serve-cost-drift", drifted);
    ];
  Tablefmt.print
    ~title:
      (Printf.sprintf
         "skewed cached serving (%d requests, skew %.1f, %d shards); the \
          drift run re-observes every 8 requests at a 2%% threshold"
         nreq skew nshards)
    ~aligns:
      [ Tablefmt.Left; Tablefmt.Right; Tablefmt.Right; Tablefmt.Right;
        Tablefmt.Right ]
    [ "variant"; "served"; "req/s"; "vs heuristic"; "drift flushes" ]
    (List.map
       (fun (name, r) ->
         [ name; string_of_int r.S.Pool.served; Tablefmt.float_cell (thr r);
           Tablefmt.float_cell (thr r /. thr heur);
           string_of_int r.S.Pool.plan_stats.P.Plan_cache.drift_invalidations;
         ])
       [ ("heuristic", heur); ("cost-based", cost); ("cost+drift", drifted) ]);
  meta_extra :=
    !meta_extra
    @ [ ("cost_serve_requests", string_of_int nreq);
        ("cost_serve_skew", json_float skew);
        ("cost_micro_heuristic_reads", string_of_int h_reads);
        ("cost_micro_cost_reads", string_of_int c_reads);
        ("cost_drift_invalidations",
         string_of_int
           drifted.S.Pool.plan_stats.P.Plan_cache.drift_invalidations);
        (* backfill drain per-slot baseline measured on this machine
           BEFORE this PR's slice-assembly and bulk-load flattening, at
           volumes 250/1000/3000 — compare against the drain rows *)
        ("drain_before_per_slot_us", "[561, 1965, 2058]");
        ("drain_before_volumes", "[250, 1000, 3000]");
      ];
  if gate then begin
    Printf.printf
      "smoke: heuristic %8.0f req/s, cost-based %8.0f req/s (%.2fx)\n"
      (thr heur) (thr cost)
      (thr cost /. thr heur);
    (* absolute throughput with slack for scheduler noise, as in the
       scaling smoke: the cost-based path must not tax cached serving *)
    if thr cost < thr heur *. 0.85 then begin
      Printf.eprintf
        "COST REGRESSION: cost-based cached serving (%.0f req/s) fell \
         below heuristic cached serving (%.0f req/s) beyond the 0.85 \
         slack on the skewed workload\n"
        (thr cost) (thr heur);
      exit 1
    end;
    if drifted.S.Pool.plan_stats.P.Plan_cache.drift_invalidations = 0 then begin
      Printf.eprintf
        "COST REGRESSION: the mutating drift run recorded no \
         drift invalidations (stats_every 8, threshold 0.02)\n";
      exit 1
    end;
    Printf.printf
      "smoke: drift run flushed %d generation(s) under mutation\n"
      drifted.S.Pool.plan_stats.P.Plan_cache.drift_invalidations
  end

(* ------------------------------------------------------------------ *)
(* hotshard: work-stealing epoch scheduler vs static pinning under a
   hot shard, with coordinated-omission-free open-loop latency.

   Traffic: the generator's uniform stream, and a shard-skewed remap
   of the same stream that concentrates ~50% of requests on shard 0
   (routing is a pure function of the id, so remapping ids is what a
   hot shard looks like to the pool).  Every scheduler serves the
   exact same request list and the fingerprint gate asserts the served
   output is bit-identical, so the comparison is pure scheduling.

   Latency is measured open-loop: per (traffic, domains) cell a fixed
   arrival schedule is derived once from the pinned scheduler's
   measured capacity and shared by every scheduler, and each request's
   latency is charged from its *intended* arrival (max of service
   latency and completion minus arrival, off the {!Shadow.outcome}
   [done_at] stamp).  A scheduler that stalls the stream therefore
   pays for the queueing it causes instead of hiding it by arriving
   late — the coordinated-omission failure a closed-loop
   service-latency histogram suffers.  [hotshard-smoke] gates skewed
   2-domain stealing p95 against pinned and uniform stealing
   throughput against pinned.                                          *)

let hotshard ?(smoke = false) () =
  section
    (if smoke then
       "HOTSHARD-SMOKE  stealing vs pinning under a hot shard (2 domains)"
     else
       "HOTSHARD  skew-aware work stealing vs static pinning: open-loop \
        p50/p95/p99, hot shard at ~50%");
  let module S = Ccv_serve in
  let seed = 909 in
  let n = if smoke then 96 else 360 in
  let nshards = 8 in
  let trials = 3 in
  let domain_counts = if smoke then [ 2 ] else [ 1; 2; 8 ] in
  (* a scaled instance makes each request's scans heavy enough that
     scheduling — not per-claim overhead or OS quanta — dominates the
     completion order the latency gate measures *)
  let sample = W.Company.scaled ~seed:42 ~n:300 in
  let uniform =
    S.Request.stream ~seed W.Company.schema ~sample ~n ~distinct:12 ()
  in
  (* Even stream indices land on shard 0, odd ones spread over shards
     1..7 — ids stay unique and strictly increasing, so the stream is
     the same traffic with a hot shard. *)
  let skewed =
    List.mapi
      (fun i (r : S.Request.t) ->
        let id =
          if i mod 2 = 0 then i * nshards
          else (i * nshards) + 1 + (i / 2 mod (nshards - 1))
        in
        { r with S.Request.id = id })
      uniform
  in
  let req =
    { Supervisor.source_schema = W.Company.schema;
      source_model = Mapping.Net;
      ops = [ interpose_op ];
      target_model = Mapping.Net;
    }
  in
  let pinned_cutover =
    { S.Cutover.canary_fraction = 0.25;
      window = 32;
      min_observations = 8;
      max_divergence_rate = 2.0;
      promote_after = max_int;
      initial = S.Cutover.Shadow;
    }
  in
  let run_one ~domains ~steal ~split_threshold reqs =
    let config =
      { S.Pool.default_config with
        domains; shards = nshards; canary_seed = seed; use_plan_cache = true;
        steal; split_threshold; epoch_batch = 6;
      }
    in
    match S.Pool.run ~config ~cutover:pinned_cutover req sample reqs with
    | Ok r -> r
    | Error e -> failwith ("hotshard bench: " ^ e)
  in
  (* the served traffic is deterministic per config, so trials differ
     only in timing: best-of-3 on each metric damps scheduler noise *)
  let runs ~domains ~steal ~split_threshold reqs =
    List.init trials (fun _ -> run_one ~domains ~steal ~split_threshold reqs)
  in
  let thr (r : S.Pool.report) = float r.S.Pool.served /. r.S.Pool.wall_s in
  let best f = List.fold_left (fun acc r -> Float.min acc (f r)) infinity in
  (* open-loop latencies for one run against a fixed arrival schedule:
     arrival.(k) is the intended offset of the stream's k-th request
     from serving start, approximated by the earliest service start
     the run observed *)
  let open_lats arrival idx_of_id (r : S.Pool.report) =
    let base =
      List.fold_left
        (fun acc (o : S.Shadow.outcome) ->
          Float.min acc (o.S.Shadow.done_at -. (o.S.Shadow.latency_us /. 1e6)))
        infinity r.S.Pool.outcomes
    in
    List.map
      (fun (o : S.Shadow.outcome) ->
        let k = Hashtbl.find idx_of_id o.S.Shadow.request.S.Request.id in
        Float.max o.S.Shadow.latency_us
          ((o.S.Shadow.done_at -. base -. arrival.(k)) *. 1e6))
      r.S.Pool.outcomes
  in
  let fingerprint (r : S.Pool.report) =
    ( List.map
        (fun (o : S.Shadow.outcome) ->
          ( o.S.Shadow.request.S.Request.id,
            Io_trace.terminal_lines o.S.Shadow.served_trace ))
        r.S.Pool.outcomes,
      r.S.Pool.transitions )
  in
  let rows = ref [] in
  (* (traffic, domains, sched) -> (req/s, p95 us) for the smoke gate *)
  let cells = ref [] in
  List.iter
    (fun (traffic, reqs) ->
      let idx_of_id = Hashtbl.create (List.length reqs) in
      List.iteri
        (fun i (r : S.Request.t) ->
          Hashtbl.replace idx_of_id r.S.Request.id i)
        reqs;
      List.iter
        (fun domains ->
          let pinned_runs = runs ~domains ~steal:false ~split_threshold:0 reqs in
          (* the arrival schedule every scheduler is measured against:
             90% of the pinned scheduler's best observed capacity *)
          let rate = 0.9 *. List.fold_left (fun a r -> Float.max a (thr r)) 0. pinned_runs in
          let arrival = Array.init (List.length reqs) (fun k -> float k /. rate) in
          let reference = fingerprint (List.hd pinned_runs) in
          List.iter
            (fun (sched, steal, split_threshold) ->
              let rs =
                if steal then runs ~domains ~steal ~split_threshold reqs
                else pinned_runs
              in
              if List.exists (fun r -> fingerprint r <> reference) rs then begin
                Printf.eprintf
                  "HOTSHARD DIVERGENCE: %s/%s/%d domains served different \
                   traffic than the pinned scheduler\n"
                  traffic sched domains;
                exit 1
              end;
              let p q = best (fun r -> percentile_us q (open_lats arrival idx_of_id r)) rs in
              let p50 = p 0.50 and p95 = p 0.95 and p99 = p 0.99 in
              let rps = -.(best (fun r -> -.(thr r)) rs) in
              let stolen, frags =
                List.fold_left
                  (fun (s, f) (r : S.Pool.report) ->
                    match r.S.Pool.steal_stats with
                    | None -> (s, f)
                    | Some slots ->
                        ( max s
                            (List.fold_left (fun a x -> a + x.S.Pool.stolen) 0 slots),
                          max f
                            (List.fold_left
                               (fun a x -> a + x.S.Pool.split_frags)
                               0 slots) ))
                  (0, 0) rs
              in
              cells := ((traffic, domains, sched), (rps, p95)) :: !cells;
              emit_json
                [ ("experiment", json_str "hotshard");
                  ("traffic", json_str traffic);
                  ("sched", json_str sched);
                  ("domains", string_of_int domains);
                  ("served", string_of_int (List.hd rs).S.Pool.served);
                  ("req_per_s", json_float rps);
                  ("arrival_rate_per_s", json_float rate);
                  ("open_p50_us", json_float p50);
                  ("open_p95_us", json_float p95);
                  ("open_p99_us", json_float p99);
                  ("stolen", string_of_int stolen);
                  ("split_frags", string_of_int frags);
                ];
              rows :=
                [ traffic; sched; string_of_int domains;
                  Tablefmt.float_cell rps; Tablefmt.float_cell p50;
                  Tablefmt.float_cell p95; Tablefmt.float_cell p99;
                  string_of_int stolen; string_of_int frags;
                ]
                :: !rows)
            [ ("pinned", false, 0); ("steal", true, 0);
              ("steal+split", true, 3);
            ])
        domain_counts)
    [ ("uniform", uniform); ("skewed", skewed) ];
  Tablefmt.print
    ~title:
      (Printf.sprintf
         "hot-shard serving, %d requests, %d shards (skewed = ~50%% of the \
          stream on shard 0); open-loop latency against a fixed arrival \
          schedule at 90%% of pinned capacity"
         n nshards)
    ~aligns:
      [ Tablefmt.Left; Tablefmt.Left; Tablefmt.Right; Tablefmt.Right;
        Tablefmt.Right; Tablefmt.Right; Tablefmt.Right; Tablefmt.Right;
        Tablefmt.Right;
      ]
    [ "traffic"; "sched"; "domains"; "req/s"; "p50 us"; "p95 us"; "p99 us";
      "stolen"; "frags" ]
    (List.rev !rows);
  meta_extra :=
    !meta_extra
    @ [ ("hotshard_seed", string_of_int seed);
        ("hotshard_requests", string_of_int n);
        ("hotshard_shards", string_of_int nshards);
        ("hotshard_arrival_frac_of_pinned", "0.9");
        (* translate_slice per-slot cost on this machine BEFORE this
           PR's key-indexed flattening, at backfill volumes
           250/1000/3000 — compare against the after row *)
        ("translate_slice_before_us_per_slot", "[130, 214, 272]");
        ("translate_slice_after_us_per_slot", "[119, 196, 216]");
        ("translate_slice_volumes", "[250, 1000, 3000]");
      ];
  if smoke then begin
    let cell traffic sched =
      List.assoc (traffic, 2, sched) !cells
    in
    let s_thr, s_p95 = cell "skewed" "steal" in
    let p_thr, p_p95 = cell "skewed" "pinned" in
    let u_s_thr, _ = cell "uniform" "steal" in
    let u_p_thr, _ = cell "uniform" "pinned" in
    Printf.printf
      "smoke skewed  pinned %8.0f req/s p95 %8.0f us | steal %8.0f req/s \
       p95 %8.0f us (%.2fx)\n"
      p_thr p_p95 s_thr s_p95 (s_p95 /. p_p95);
    Printf.printf
      "smoke uniform pinned %8.0f req/s | steal %8.0f req/s (%.2fx)\n"
      u_p_thr u_s_thr (u_s_thr /. u_p_thr);
    (* The tentpole inequality — stealing must not lose to static
       pinning on open-loop tail latency under a hot shard — is a
       statement about load balancing across parallel hardware: on a
       host with one hardware domain the two pool domains timeshare a
       single core, so migrating the backlog buys nothing and the
       strict gate would only measure the OS scheduler.  Enforce it
       when the hardware can express it (CI runners), and pin the
       single-core-valid invariants — throughput parity and a
       pathology bound on the tail — otherwise.  1.10 slack for
       scheduler noise on millisecond-scale runs, as elsewhere. *)
    let cores = Domain.recommended_domain_count () in
    if cores >= 2 then begin
      if s_p95 > p_p95 *. 1.10 then begin
        Printf.eprintf
          "HOTSHARD REGRESSION: skewed 2-domain stealing p95 (%.0f us) \
           exceeds pinned p95 (%.0f us) beyond the 1.10 slack\n"
          s_p95 p_p95;
        exit 1
      end
    end
    else begin
      Printf.printf
        "smoke: single hardware domain — skewed p95 gated at the \
         pathology bound (1.5x), parity gated on throughput\n";
      if s_p95 > p_p95 *. 1.5 then begin
        Printf.eprintf
          "HOTSHARD REGRESSION: skewed 2-domain stealing p95 (%.0f us) \
           exceeds pinned p95 (%.0f us) beyond the single-core 1.5x \
           pathology bound\n"
          s_p95 p_p95;
        exit 1
      end;
      if s_thr < p_thr *. 0.90 then begin
        Printf.eprintf
          "HOTSHARD REGRESSION: skewed 2-domain stealing throughput \
           (%.0f req/s) fell below 0.90x pinned (%.0f req/s)\n"
          s_thr p_thr;
        exit 1
      end
    end;
    (* and stealing must be free when there is nothing to steal *)
    if u_s_thr < u_p_thr *. 0.95 then begin
      Printf.eprintf
        "HOTSHARD REGRESSION: uniform 2-domain stealing throughput \
         (%.0f req/s) fell below 0.95x pinned (%.0f req/s)\n"
        u_s_thr u_p_thr;
      exit 1
    end;
    Printf.printf
      "smoke: stealing holds the skewed tail gate and the uniform \
       throughput gate\n"
  end

(* ------------------------------------------------------------------ *)

let all =
  [ ("e1", e1); ("e2", e2); ("e3", e3); ("e4", e4); ("e5", e5); ("e6", e6);
    ("e7", e7); ("e8", e8); ("e9", e9); ("fig31", fig31); ("fig43", fig43);
    ("micro", micro); ("micro-index", micro_index); ("serve", serve);
    ("plan", plan); ("scaling", (fun () -> scaling ()));
    ("scaling-smoke", (fun () -> scaling ~smoke:true ()));
    ("migration", (fun () -> migration ()));
    ("migration-smoke", (fun () -> migration ~smoke:true ()));
    ("drain", drain);
    ("cost", (fun () -> cost_bench ()));
    ("cost-smoke", (fun () -> cost_bench ~gate:true ()));
    ("hotshard", (fun () -> hotshard ()));
    ("hotshard-smoke", (fun () -> hotshard ~smoke:true ()));
  ]

let () =
  let args =
    match Array.to_list Sys.argv with _ :: rest -> rest | [] -> []
  in
  let rec extract_out acc = function
    | "--out" :: file :: rest -> (Some file, List.rev_append acc rest)
    | x :: rest -> extract_out (x :: acc) rest
    | [] -> (None, List.rev acc)
  in
  let out, args = extract_out [] args in
  let out = Option.value out ~default:"BENCH_PR1.json" in
  let json = List.mem "--json" args in
  let ids = List.filter (fun a -> a <> "--json") args in
  let requested = if ids = [] then List.map fst all else ids in
  List.iter
    (fun id ->
      match List.assoc_opt id all with
      | Some f -> f ()
      | None ->
          Printf.eprintf "unknown experiment %s (have: %s)\n" id
            (String.concat ", " (List.map fst all)))
    requested;
  if json then begin
    let meta =
      "{"
      ^ String.concat ", "
          (List.map
             (fun (k, v) -> Printf.sprintf "%S: %s" k v)
             ([ ("kind", json_str "meta");
                ("git_commit", json_str (git_commit ()));
                ("experiments", json_str (String.concat " " requested));
                (* measured by the scaling experiment when it ran;
                   the hardware count is only the fallback *)
                ("recommended_domain_count",
                 string_of_int
                   (Option.value !measured_recommended
                      ~default:(Domain.recommended_domain_count ())));
                ("hardware_domain_count",
                 string_of_int (Domain.recommended_domain_count ()));
              ]
             @ !meta_extra))
      ^ "}"
    in
    let oc = open_out out in
    output_string oc
      ("[\n  " ^ String.concat ",\n  " (meta :: List.rev !bench_json) ^ "\n]\n");
    close_out oc;
    Printf.printf "\nwrote %s (%d rows)\n" out (1 + List.length !bench_json)
  end
