#!/bin/sh
# Tier-1 verify plus machine-readable bench emission in one command:
# build, run the full test suite, then run the micro-index experiment
# and write BENCH_PR1.json at the repository root.
set -eu
cd "$(dirname "$0")/.."

dune build
dune runtest
dune exec bench/main.exe -- micro-index --json
