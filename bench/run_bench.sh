#!/bin/sh
# Tier-1 verify plus machine-readable bench emission in one command:
# build, run the full test suite (including the compiled-vs-interpreted
# differential property suite), then write BENCH_PR1.json (index
# micro-bench), BENCH_PR2.json (phased-coexistence service),
# BENCH_PR4.json (compiled plans + plan cache), BENCH_PR6.json
# (worker-pool scaling, epoch snapshots vs tick barrier),
# BENCH_PR7.json (live migration vs stop-the-world preparation),
# BENCH_PR9.json (cost-based plan selection + backfill drain) and
# BENCH_PR10.json (work-stealing vs pinned under a hot shard,
# open-loop latency) at the repository root.
set -eu
cd "$(dirname "$0")/.."

dune build
dune runtest
dune exec bench/main.exe -- micro-index --json
dune exec bench/main.exe -- serve --json --out BENCH_PR2.json
dune exec bench/main.exe -- plan --json --out BENCH_PR4.json
dune exec bench/main.exe -- scaling --json --out BENCH_PR6.json
dune exec bench/main.exe -- migration --json --out BENCH_PR7.json
dune exec bench/main.exe -- cost drain --json --out BENCH_PR9.json
dune exec bench/main.exe -- hotshard --json --out BENCH_PR10.json
