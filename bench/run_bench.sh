#!/bin/sh
# Tier-1 verify plus machine-readable bench emission in one command:
# build, run the full test suite, then write BENCH_PR1.json (index
# micro-bench) and BENCH_PR2.json (phased-coexistence service) at the
# repository root.
set -eu
cd "$(dirname "$0")/.."

dune build
dune runtest
dune exec bench/main.exe -- micro-index --json
dune exec bench/main.exe -- serve --json --out BENCH_PR2.json
