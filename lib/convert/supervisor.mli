(** The Program Conversion Supervisor of Figure 4.1: it feeds the
    source and target database descriptions to the Conversion Analyzer
    (change classification), drives the Program Analyzer, the Program
    Converter, the Optimizer and the Program Generator, and collects
    every issue raised along the way — the paper expects "an
    interactive system ... most successful in resolving issues of
    database integrity and application program requirements"; the
    issue log is what the conversion analyst would see. *)

open Ccv_model
open Ccv_abstract
open Ccv_transform

type request = {
  source_schema : Semantic.t;
  source_model : Mapping.target_model;
  ops : Schema_change.op list;  (** the restructuring definition *)
  target_model : Mapping.target_model;
}

type issue = {
  stage : string;  (** "analyzer" | "converter" | "generator" | ... *)
  message : string;
}

type report = {
  classification : (Schema_change.op * Schema_change.change_class) list;
  target_schema : Semantic.t;
  abstract_source : Aprog.t;
  abstract_target : Aprog.t;
  optimized : Aprog.t;
  target_program : Engines.program;
  issues : issue list;
  optimizer_log : string list;
}

val pp_issue : Format.formatter -> issue -> unit
val pp_report : Format.formatter -> report -> unit

(** Convert one concrete program.  [Error (stage, reason)] when a stage
    refuses — the paper's "cannot be handled automatically" outcome.
    [?stats] hands the optimizer a cardinality snapshot, so equality
    conjuncts are ordered by observed selectivity. *)
val convert_program :
  ?stats:Ccv_plan.Stats.t ->
  request -> Engines.program -> (report, string * string) result

(** Translate a semantic instance along the request's ops and realize
    it in the target model (the data-translation leg of a conversion).
    Returns the loaded database plus translation warnings.  [pool]
    parallelizes the bulk translation
    ({!Ccv_transform.Data_translate}). *)
val translate_database :
  ?pool:Ccv_common.Workpool.t ->
  request -> Sdb.t -> (Engines.database * Sdb.t * string list, string) result

(** {2 Serving hook}

    The phased-coexistence service ({!Ccv_serve}) keeps the source and
    the converted database side by side while requests keep flowing.
    [prepare_serving] does the one-off work for a replica pair: realize
    the source instance, translate the data, and load the target
    realization.  [serve_pair] then produces, per incoming abstract
    request, the servable (source program, converted target program)
    pair — the paper's coexistence strategies (§2.1.2) made
    operational. *)

type servable = {
  serve_request : request;
  source_mapping : Mapping.t;
  source_db : Engines.database;
  target_db : Engines.database;
  translated : Sdb.t;  (** the semantic instance after the ops *)
  warnings : string list;  (** data-translation warnings *)
}

val prepare_serving :
  ?pool:Ccv_common.Workpool.t ->
  request -> Sdb.t -> (servable, string * string) result

(** Live-migration variant of {!prepare_serving}: realize the source
    replica only and hand back a servable whose target is an {e empty}
    instance of the target schema (also returned), to be populated
    record by record by {!Ccv_migrate} fault-in and backfill.  [Error]
    only when the ops do not apply to the source schema. *)
val prepare_live :
  request -> Sdb.t -> (servable * Ccv_model.Semantic.t, string * string) result

(** Digest of everything a compiled serving plan depends on — source
    schema, restructuring ops, source and target models.  Plan caches
    keyed per program use this as their generation tag: a changed
    fingerprint (the Supervisor restructured the schema) invalidates
    every cached compilation. *)
val serving_fingerprint : request -> string

type served_pair = {
  source_program : Engines.program;
  target_program : (Engines.program, string * string) result;
      (** [Error (stage, reason)] when conversion refuses: the service
          falls back to the source side and counts the refusal *)
  pair_issues : issue list;
}

(** [Error _] only when the request cannot even be generated against
    the source model (nothing to serve at all).  [at_epoch] stamps the
    pair's issue list with the snapshot epoch it was compiled under —
    provenance for reproducing a divergence seen in epoch serving.
    [?stats] flows to the optimizer (see {!convert_program}); serving
    shards pass the snapshot their plan cache's generation was costed
    under. *)
val serve_pair :
  ?at_epoch:int -> ?stats:Ccv_plan.Stats.t ->
  servable -> Aprog.t -> (served_pair, string * string) result

(** End-to-end: convert the program, translate the data, run both
    sides, and judge equivalence per §1.1/§5.2. *)
type outcome = {
  report : report;
  verdict : Equivalence.verdict;
  source_accesses : int;
  target_accesses : int;
}

val convert_and_verify :
  ?input:string list -> request -> Engines.program -> Sdb.t ->
  (outcome, string * string) result

(** Realize a semantic instance in a model (helper shared with
    experiments). *)
val realize : Mapping.target_model -> Sdb.t -> Mapping.t * Engines.database

(** The mapping a model derives for a schema. *)
val mapping_for : Mapping.target_model -> Semantic.t -> Mapping.t
