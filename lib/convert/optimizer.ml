open Ccv_common
open Ccv_model
open Ccv_abstract

(* Variables read anywhere in a statement list (including query
   qualifications). *)
let vars_read body =
  let p = { Aprog.name = "_"; body } in
  Rules.qualified_vars p

let prefix_of x =
  match String.index_opt x '.' with
  | Some i -> Some (String.sub x 0 i, String.sub x (i + 1) (String.length x - i - 1))
  | None -> None

(* Try to fold a host condition into a query: every conjunct whose
   variables all belong to one access target becomes part of that
   step's qualification (variables turn back into fields). *)
let fold_guard query cond =
  let targets = Apattern.names_of query in
  let foldable, residual =
    List.partition
      (fun c ->
        let vs = List.filter_map prefix_of (Cond.vars c) in
        vs <> []
        && List.length vs = List.length (Cond.vars c)
        && (match vs with
           | (p0, _) :: _ ->
               List.for_all (fun (p, _) -> Field.name_equal p p0) vs
               && List.exists (Field.name_equal p0) targets
           | [] -> false)
        && Cond.fields c = [])
      (Cond.split_conjuncts cond)
  in
  if foldable = [] then None
  else
    let add_to_step target extra step =
      if Field.name_equal (Apattern.target_of step) target then
        Apattern.map_qual (fun q -> Cond.cand q extra) step
      else step
    in
    let query' =
      List.fold_left
        (fun query c ->
          match List.filter_map prefix_of (Cond.vars c) with
          | (target, _) :: _ ->
              let extra =
                Rules.map_cond
                  (fun x ->
                    match prefix_of x with
                    | Some (p, f) when Field.name_equal p target -> Cond.Field f
                    | Some _ | None -> Cond.Var x)
                  c
              in
              (* fold into the FIRST step delivering that target *)
              let folded = ref false in
              List.map
                (fun step ->
                  if
                    (not !folded)
                    && Field.name_equal (Apattern.target_of step) target
                  then begin
                    folded := true;
                    add_to_step target extra step
                  end
                  else step)
                query
          | [] -> query)
        query foldable
    in
    Some (query', Cond.conj residual)

(* A trailing [Assoc_via A via E; Via_assoc N via A] pair is removable
   when the association is 1:N (E on the right) and total — each E has
   exactly one partner, so the hop neither filters nor duplicates —
   and nothing reads the bindings it produces. *)
let drop_redundant_hop schema query ~used =
  match List.rev query with
  | Apattern.Via_assoc { target; assoc = a2; qual = Cond.True }
    :: Apattern.Assoc_via { assoc = a1; source; qual = Cond.True }
    :: rev_rest
    when Field.name_equal a1 a2 -> (
      match Semantic.find_assoc schema a1 with
      | Some a
        when a.card = Semantic.One_to_many
             && Field.name_equal a.right source
             && (List.exists
                   (function
                     | Semantic.Total_right x -> Field.name_equal x a.aname
                     | Semantic.Total_left _ | Semantic.Participation_limit _
                     | Semantic.Field_not_null _ -> false)
                   schema.Semantic.constraints
                ||
                match (Semantic.find_entity_exn schema a.right).kind with
                | Semantic.Characterizing o -> Field.name_equal o a.left
                | Semantic.Defined -> false) ->
          let binds_unused =
            not
              (List.exists
                 (fun v ->
                   match prefix_of v with
                   | Some (p, _) ->
                       Field.name_equal p target || Field.name_equal p a1
                   | None -> false)
                 used)
          in
          if binds_unused then Some (List.rev rev_rest) else None
      | Some _ | None -> None)
  | _ -> None

let is_pure_cond c = not (List.exists (String.equal Host.status_var) (Cond.vars c))

(* Access-path cost awareness: the evaluator opens a SELF step with an
   equality-index probe on the first [field = const] conjunct it finds.
   Hoist index-eligible equality conjuncts (declared stored fields
   compared to a constant or host variable) to the front of the
   qualification so the probe sees them before residual predicates.
   The partition is stable and the rewrite idempotent, so the
   optimizer's fixpoint terminates. *)
let hoist_eq_conjuncts schema log query =
  let eligible target c =
    match c with
    | Cond.Cmp (Cond.Eq, Cond.Field f, (Cond.Const _ | Cond.Var _))
    | Cond.Cmp (Cond.Eq, (Cond.Const _ | Cond.Var _), Cond.Field f) -> (
        match Semantic.find_entity schema target with
        | Some e -> Field.mem e.fields f
        | None -> false)
    | Cond.True | Cond.Cmp _ | Cond.And _ | Cond.Or _ | Cond.Not _
    | Cond.Is_null _ | Cond.Is_not_null _ -> false
  in
  List.map
    (fun step ->
      match step with
      | Apattern.Self { target; qual } ->
          let eqs, rest = List.partition (eligible target) (Cond.split_conjuncts qual) in
          let hoisted = Cond.conj (eqs @ rest) in
          if eqs <> [] && not (Cond.equal hoisted qual) then begin
            log :=
              Fmt.str "equality predicate hoisted for indexed access on %s"
                target
              :: !log;
            Apattern.Self { target; qual = hoisted }
          end
          else step
      | Apattern.Through _ | Apattern.Assoc_via _ | Apattern.Via_assoc _ ->
          step)
    query

(* One optimization sweep, expressed on the traversal kit's Map
   engine: the top-down [stmt] hook prunes empty IFs before descending,
   [stmt_out] applies the per-statement rewrites bottom-up (children
   are already optimized when it fires, as the old recursion did), and
   [body_out] runs dead-move elimination over each statement list. *)
module M = Traverse.Map (Traverse.Unit_env)

let opt_mapper schema log =
  { M.default with
    M.stmt =
      (fun _ () s ->
        match s with
        | Aprog.If (c, [], []) when is_pure_cond c ->
            log := "empty IF removed" :: !log;
            Some []
        | _ -> None);
    M.stmt_out =
      (fun _ () s ->
        match s with
        | Aprog.For_each { query; body } -> (
            (* qualification pushdown from a sole guarding IF *)
            let query, body =
              match body with
              | [ Aprog.If (c, inner, []) ] when is_pure_cond c -> (
                  match fold_guard query c with
                  | Some (query', residual) ->
                      log :=
                        Fmt.str "guard folded into access path (%a)" Cond.pp c
                        :: !log;
                      ( query',
                        if Cond.equal residual Cond.True then inner
                        else [ Aprog.If (residual, inner, []) ] )
                  | None -> (query, body))
              | _ -> (query, body)
            in
            let query = hoist_eq_conjuncts schema log query in
            let used = vars_read body in
            match drop_redundant_hop schema query ~used with
            | Some query' ->
                log := "redundant partner navigation removed" :: !log;
                [ Aprog.For_each { query = query'; body } ]
            | None -> [ Aprog.For_each { query; body } ])
        | Aprog.First { query; present; absent } ->
            [ Aprog.First
                { query = hoist_eq_conjuncts schema log query; present; absent }
            ]
        | Aprog.Update { query; assigns } ->
            [ Aprog.Update
                { query = hoist_eq_conjuncts schema log query; assigns };
            ]
        | Aprog.Delete { query; cascade } ->
            [ Aprog.Delete
                { query = hoist_eq_conjuncts schema log query; cascade };
            ]
        | s -> [ s ]);
    M.body_out =
      (fun _ () body ->
        (* dead move elimination *)
        let rec dme = function
          | Aprog.Move (_, x) :: (Aprog.Move (_, y) :: _ as rest)
            when String.equal x y ->
              log := Fmt.str "dead MOVE to %s removed" x :: !log;
              dme rest
          | s :: rest -> s :: dme rest
          | [] -> []
        in
        dme body);
  }

let optimize schema (p : Aprog.t) =
  let log = ref [] in
  let m = opt_mapper schema log in
  let rec fix body n =
    if n = 0 then body
    else
      let body' = M.body m () body in
      if
        Aprog.equal { p with Aprog.body = body } { p with Aprog.body = body' }
      then body
      else fix body' (n - 1)
  in
  let body = fix p.Aprog.body 5 in
  ({ p with Aprog.body = body }, List.rev !log)
