open Ccv_common
open Ccv_model
open Ccv_abstract

(* Variables read anywhere in a statement list (including query
   qualifications). *)
let vars_read body =
  let p = { Aprog.name = "_"; body } in
  Rules.qualified_vars p

let prefix_of x =
  match String.index_opt x '.' with
  | Some i -> Some (String.sub x 0 i, String.sub x (i + 1) (String.length x - i - 1))
  | None -> None

(* Try to fold a host condition into a query: every conjunct whose
   variables all belong to one access target becomes part of that
   step's qualification (variables turn back into fields). *)
let fold_guard query cond =
  let targets = Apattern.names_of query in
  let foldable, residual =
    List.partition
      (fun c ->
        let vs = List.filter_map prefix_of (Cond.vars c) in
        vs <> []
        && List.length vs = List.length (Cond.vars c)
        && (match vs with
           | (p0, _) :: _ ->
               List.for_all (fun (p, _) -> Field.name_equal p p0) vs
               && List.exists (Field.name_equal p0) targets
           | [] -> false)
        && Cond.fields c = [])
      (Cond.split_conjuncts cond)
  in
  if foldable = [] then None
  else
    let add_to_step target extra step =
      if Field.name_equal (Apattern.target_of step) target then
        Apattern.map_qual (fun q -> Cond.cand q extra) step
      else step
    in
    let query' =
      List.fold_left
        (fun query c ->
          match List.filter_map prefix_of (Cond.vars c) with
          | (target, _) :: _ ->
              let extra =
                Rules.map_cond
                  (fun x ->
                    match prefix_of x with
                    | Some (p, f) when Field.name_equal p target -> Cond.Field f
                    | Some _ | None -> Cond.Var x)
                  c
              in
              (* fold into the FIRST step delivering that target *)
              let folded = ref false in
              List.map
                (fun step ->
                  if
                    (not !folded)
                    && Field.name_equal (Apattern.target_of step) target
                  then begin
                    folded := true;
                    add_to_step target extra step
                  end
                  else step)
                query
          | [] -> query)
        query foldable
    in
    Some (query', Cond.conj residual)

(* A trailing [Assoc_via A via E; Via_assoc N via A] pair is removable
   when the association is 1:N (E on the right) and total — each E has
   exactly one partner, so the hop neither filters nor duplicates —
   and nothing reads the bindings it produces. *)
let drop_redundant_hop schema query ~used =
  match List.rev query with
  | Apattern.Via_assoc { target; assoc = a2; qual = Cond.True }
    :: Apattern.Assoc_via { assoc = a1; source; qual = Cond.True }
    :: rev_rest
    when Field.name_equal a1 a2 -> (
      match Semantic.find_assoc schema a1 with
      | Some a
        when a.card = Semantic.One_to_many
             && Field.name_equal a.right source
             && (List.exists
                   (function
                     | Semantic.Total_right x -> Field.name_equal x a.aname
                     | Semantic.Total_left _ | Semantic.Participation_limit _
                     | Semantic.Field_not_null _ -> false)
                   schema.Semantic.constraints
                ||
                match (Semantic.find_entity_exn schema a.right).kind with
                | Semantic.Characterizing o -> Field.name_equal o a.left
                | Semantic.Defined -> false) ->
          let binds_unused =
            not
              (List.exists
                 (fun v ->
                   match prefix_of v with
                   | Some (p, _) ->
                       Field.name_equal p target || Field.name_equal p a1
                   | None -> false)
                 used)
          in
          if binds_unused then Some (List.rev rev_rest) else None
      | Some _ | None -> None)
  | _ -> None

let is_pure_cond c = not (List.exists (String.equal Host.status_var) (Cond.vars c))

(* Access-path cost awareness: the evaluator opens a SELF step with an
   equality-index probe on the first [field = const] conjunct it finds.
   Hoist index-eligible equality conjuncts (declared stored fields
   compared to a constant or host variable) to the front of the
   qualification so the probe sees them before residual predicates —
   and, when a statistics snapshot is available, order them most
   selective first, so the probe the evaluator picks is the cheapest
   one (hot-bucket exact, residual average otherwise).  Any eligible
   probe is result-transparent, so the ordering affects access counts,
   never answers.  The partition is stable and the rewrite idempotent
   for a fixed snapshot, so the optimizer's fixpoint terminates. *)
let hoist_eq_conjuncts ?stats schema log query =
  let eligible target c =
    match c with
    | Cond.Cmp (Cond.Eq, Cond.Field f, (Cond.Const _ | Cond.Var _))
    | Cond.Cmp (Cond.Eq, (Cond.Const _ | Cond.Var _), Cond.Field f) -> (
        match Semantic.find_entity schema target with
        | Some e -> Field.mem e.fields f
        | None -> false)
    | Cond.True | Cond.Cmp _ | Cond.And _ | Cond.Or _ | Cond.Not _
    | Cond.Is_null _ | Cond.Is_not_null _ -> false
  in
  let eq_cost st target c =
    match c with
    | Cond.Cmp (Cond.Eq, Cond.Field f, rhs)
    | Cond.Cmp (Cond.Eq, rhs, Cond.Field f) ->
        let v = match rhs with Cond.Const v -> Some v | _ -> None in
        Ccv_plan.Cost.eq_rows st target f v
    | _ -> infinity
  in
  let order st target eqs =
    List.stable_sort
      (fun a b -> Float.compare (eq_cost st target a) (eq_cost st target b))
      eqs
  in
  List.map
    (fun step ->
      match step with
      | Apattern.Self { target; qual } ->
          let eqs, rest = List.partition (eligible target) (Cond.split_conjuncts qual) in
          let eqs =
            match stats with None -> eqs | Some st -> order st target eqs
          in
          let hoisted = Cond.conj (eqs @ rest) in
          if eqs <> [] && not (Cond.equal hoisted qual) then begin
            log :=
              Fmt.str "equality predicate hoisted for indexed access on %s"
                target
              :: !log;
            Apattern.Self { target; qual = hoisted }
          end
          else step
      | Apattern.Through _ | Apattern.Assoc_via _ | Apattern.Via_assoc _ ->
          step)
    query

(* ------------------------------------------------------------------ *)
(* Common-subpattern sharing: the rewrite behind the LN002 lint.  Two
   consecutive loops that open with the same two access-pattern steps
   re-evaluate that prefix twice; when the prefix provably yields at
   most one context and the first loop cannot perturb the second's
   view of it, the prefix is computed once:

     FOR EACH [p1; p2; r1...] b1      FOR EACH [p1; p2]
     FOR EACH [p1; p2; r2...] b2  =>    FOR EACH [r1...] b1
                                        FOR EACH [r2...] b2

   Soundness gates, checked in [try_share]:
   - the prefix yields at most one context (step 1 pins every key
     field of its target by equality; step 2 does the same or is a
     keyed link traversal onto a single-field key), so the original
     all-b1-then-all-b2 order equals the per-context order;
   - the first loop performs no database mutation, so the second
     loop's prefix evaluation would have seen the same instance;
   - nothing the first loop writes (host variables, context bindings,
     the status register) is read by the prefix qualifications;
   - remainder targets are disjoint from prefix targets, so context
     bindings resolve identically through the environment.

   Inner queries resolve prefix-bound sources through the enclosing
   loop's qualified bindings, exactly the nesting contract
   [Apattern.eval] documents. *)

let step_eq_conjuncts qual =
  List.filter
    (function
      | Cond.Cmp (Cond.Eq, Cond.Field _, (Cond.Const _ | Cond.Var _))
      | Cond.Cmp (Cond.Eq, (Cond.Const _ | Cond.Var _), Cond.Field _) -> true
      | _ -> false)
    (Cond.split_conjuncts qual)

let pins_key schema target qual =
  match Semantic.find_entity schema target with
  | None -> false
  | Some e ->
      e.Semantic.key <> []
      && List.for_all
           (fun k ->
             List.exists
               (function
                 | Cond.Cmp (Cond.Eq, Cond.Field f, _)
                 | Cond.Cmp (Cond.Eq, _, Cond.Field f) -> Field.name_equal f k
                 | _ -> false)
               (step_eq_conjuncts qual))
           e.Semantic.key

(* At most one context out of the two-step prefix. *)
let singleton_prefix schema = function
  | [ Apattern.Self { target = t1; qual = q1 }; second ] -> (
      pins_key schema t1 q1
      &&
      match second with
      | Apattern.Self { target; qual } -> pins_key schema target qual
      | Apattern.Through { target; link = tf, _; _ } -> (
          match Semantic.find_entity schema target with
          | Some e -> (
              match e.Semantic.key with
              | [ k ] -> Field.name_equal k tf
              | _ -> false)
          | None -> false)
      | Apattern.Assoc_via _ | Apattern.Via_assoc _ -> false)
  | _ -> false

let rec body_mutates body =
  List.exists
    (function
      | Aprog.Insert _ | Aprog.Link _ | Aprog.Unlink _ | Aprog.Update _
      | Aprog.Delete _ -> true
      | Aprog.For_each { body; _ } -> body_mutates body
      | Aprog.First { present; absent; _ } ->
          body_mutates present || body_mutates absent
      | Aprog.If (_, t, e) -> body_mutates t || body_mutates e
      | Aprog.While (_, b) -> body_mutates b
      | Aprog.Display _ | Aprog.Accept _ | Aprog.Write_file _ | Aprog.Move _ ->
          false)
    body

(* Host variables a loop writes (conservatively): MOVE/ACCEPT targets,
   the status register, and every qualified binding of every query in
   scope (its own and any nested one). *)
let loop_writes query body =
  let rec vars body =
    List.concat_map
      (function
        | Aprog.Move (_, x) -> [ x ]
        | Aprog.Accept x -> [ x ]
        | Aprog.For_each { body; _ } -> vars body
        | Aprog.First { present; absent; _ } -> vars present @ vars absent
        | Aprog.If (_, t, e) -> vars t @ vars e
        | Aprog.While (_, b) -> vars b
        | Aprog.Insert _ | Aprog.Link _ | Aprog.Unlink _ | Aprog.Update _
        | Aprog.Delete _ | Aprog.Display _ | Aprog.Write_file _ -> [])
      body
  in
  let prefixes =
    List.concat_map Apattern.names_of
      (query :: Aprog.queries { Aprog.name = "_"; body })
  in
  (Host.status_var :: vars body, prefixes)

let try_share schema q1 b1 q2 b2 =
  match (q1, q2) with
  | p1 :: p2 :: r1, p1' :: p2' :: r2
    when Apattern.equal [ p1; p2 ] [ p1'; p2' ]
         && singleton_prefix schema [ p1; p2 ] ->
      let prefix = [ p1; p2 ] in
      let prefix_targets = Apattern.names_of prefix in
      let remainder_disjoint r =
        List.for_all
          (fun t ->
            not (List.exists (Field.name_equal t) prefix_targets))
          (Apattern.names_of r)
      in
      let prefix_reads =
        List.concat_map (fun s -> Cond.vars (Apattern.qual_of s)) prefix
      in
      let written_vars, written_prefixes = loop_writes q1 b1 in
      let no_conflict =
        List.for_all
          (fun v ->
            (not (List.exists (String.equal v) written_vars))
            &&
            match prefix_of v with
            | Some (p, _) ->
                not (List.exists (Field.name_equal p) written_prefixes)
            | None -> true)
          prefix_reads
      in
      let status_free body =
        not (List.exists (String.equal Host.status_var) (vars_read body))
      in
      let inner r b =
        match r with [] -> Some b | _ -> Some [ Aprog.For_each { query = r; body = b } ]
      in
      if
        (not (body_mutates b1))
        && no_conflict && remainder_disjoint r1 && remainder_disjoint r2
        (* with an empty first remainder the first body runs bare, so
           its trailing status must be invisible to what follows *)
        && (r1 <> []
           || (status_free b2
              && List.for_all
                   (fun s -> is_pure_cond (Apattern.qual_of s))
                   r2))
      then
        match (inner r1 b1, inner r2 b2) with
        | Some i1, Some i2 ->
            Some (Aprog.For_each { query = prefix; body = i1 @ i2 })
        | _ -> None
      else None
  | _ -> None

let share_common_prefixes schema log body =
  let rec go = function
    | (Aprog.For_each { query = q1; body = b1 } as s1)
      :: (Aprog.For_each { query = q2; body = b2 } as s2)
      :: rest -> (
        match try_share schema q1 b1 q2 b2 with
        | Some merged ->
            log :=
              Fmt.str "common access prefix shared between consecutive loops"
              :: !log;
            go (merged :: rest)
        | None -> s1 :: go (s2 :: rest))
    | s :: rest -> s :: go rest
    | [] -> []
  in
  go body

(* One optimization sweep, expressed on the traversal kit's Map
   engine: the top-down [stmt] hook prunes empty IFs before descending,
   [stmt_out] applies the per-statement rewrites bottom-up (children
   are already optimized when it fires, as the old recursion did), and
   [body_out] runs dead-move elimination over each statement list. *)
module M = Traverse.Map (Traverse.Unit_env)

let opt_mapper ?stats schema log =
  { M.default with
    M.stmt =
      (fun _ () s ->
        match s with
        | Aprog.If (c, [], []) when is_pure_cond c ->
            log := "empty IF removed" :: !log;
            Some []
        | _ -> None);
    M.stmt_out =
      (fun _ () s ->
        match s with
        | Aprog.For_each { query; body } -> (
            (* qualification pushdown from a sole guarding IF *)
            let query, body =
              match body with
              | [ Aprog.If (c, inner, []) ] when is_pure_cond c -> (
                  match fold_guard query c with
                  | Some (query', residual) ->
                      log :=
                        Fmt.str "guard folded into access path (%a)" Cond.pp c
                        :: !log;
                      ( query',
                        if Cond.equal residual Cond.True then inner
                        else [ Aprog.If (residual, inner, []) ] )
                  | None -> (query, body))
              | _ -> (query, body)
            in
            let query = hoist_eq_conjuncts ?stats schema log query in
            let used = vars_read body in
            match drop_redundant_hop schema query ~used with
            | Some query' ->
                log := "redundant partner navigation removed" :: !log;
                [ Aprog.For_each { query = query'; body } ]
            | None -> [ Aprog.For_each { query; body } ])
        | Aprog.First { query; present; absent } ->
            [ Aprog.First
                { query = hoist_eq_conjuncts ?stats schema log query;
                  present;
                  absent;
                }
            ]
        | Aprog.Update { query; assigns } ->
            [ Aprog.Update
                { query = hoist_eq_conjuncts ?stats schema log query; assigns };
            ]
        | Aprog.Delete { query; cascade } ->
            [ Aprog.Delete
                { query = hoist_eq_conjuncts ?stats schema log query; cascade };
            ]
        | s -> [ s ]);
    M.body_out =
      (fun _ () body ->
        (* dead move elimination *)
        let rec dme = function
          | Aprog.Move (_, x) :: (Aprog.Move (_, y) :: _ as rest)
            when String.equal x y ->
              log := Fmt.str "dead MOVE to %s removed" x :: !log;
              dme rest
          | s :: rest -> s :: dme rest
          | [] -> []
        in
        share_common_prefixes schema log (dme body));
  }

let optimize ?stats schema (p : Aprog.t) =
  let log = ref [] in
  let m = opt_mapper ?stats schema log in
  let rec fix body n =
    if n = 0 then body
    else
      let body' = M.body m () body in
      if
        Aprog.equal { p with Aprog.body = body } { p with Aprog.body = body' }
      then body
      else fix body' (n - 1)
  in
  let body = fix p.Aprog.body 5 in
  ({ p with Aprog.body = body }, List.rev !log)
