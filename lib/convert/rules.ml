open Ccv_common
open Ccv_model
open Ccv_abstract
open Ccv_transform

(* Refusals carry a structured diagnostic (stable CV0xx code, offending
   entity/field/path, human message).  [convert] still renders the
   message for its string-typed callers. *)
exception Refuse of Diagnostic.t

(* ------------------------------------------------------------------ *)
(* Traversals — all built on the Traverse kit                          *)

let map_expr = Traverse.map_expr
let map_cond = Traverse.map_cond

module M = Traverse.Map (Traverse.Unit_env)
module F = Traverse.Fold (Traverse.Unit_env)

(* A conversion rewrite: per-node hooks over the kit's Map engine.  The
   [stmt] hook is top-down and its output re-enters the pipeline (the
   hook must not re-match its own output). *)
let mapper ?(query = Fun.id) ?(expr = Fun.id) ?(cond = Fun.id)
    ?(varname = Fun.id) ?(stmt = fun _ -> None) () =
  { M.default with
    M.query = (fun _ () q -> query q);
    M.expr = (fun _ () e -> expr e);
    M.cond = (fun _ () c -> cond c);
    M.varname = (fun _ () x -> varname x);
    M.stmt = (fun _ () s -> stmt s);
  }

let apply m (p : Aprog.t) = M.program m () p

let rename_vars f p =
  let rw_var x = Cond.Var (f x) in
  apply
    (mapper ~expr:(map_expr rw_var) ~cond:(map_cond rw_var) ~varname:f
       ~query:(List.map (Apattern.map_qual (map_cond rw_var)))
       ())
    p

let qualified_vars p =
  let folder =
    { F.default with
      F.expr =
        (fun self () acc e ->
          match e with
          | Cond.Var x when String.contains x '.' && not (List.mem x acc) ->
              x :: acc
          | _ -> F.default.F.expr self () acc e);
    }
  in
  List.rev (F.program folder () [] p)

(* Rename the "NAME." prefix of qualified variables. *)
let rename_prefix ~from_ ~to_ =
  let pfx = Field.canon from_ ^ "." in
  fun x ->
    let n = String.length pfx in
    if String.length x > n && Field.name_equal (String.sub x 0 n) pfx then
      Field.canon to_ ^ "." ^ String.sub x n (String.length x - n)
    else x

(* Rename one qualified variable exactly. *)
let rename_qvar ~from_ ~to_ x = if Field.name_equal x from_ then to_ else x

(* ------------------------------------------------------------------ *)
(* Step-level renamings                                                *)

let rename_step_names ~is_entity ~from_ ~to_ step =
  let r name = if Field.name_equal name from_ then Field.canon to_ else name in
  match step with
  | Apattern.Self s ->
      if is_entity then Apattern.Self { s with target = r s.target }
      else Apattern.Self s
  | Apattern.Through s ->
      if is_entity then
        Apattern.Through { s with target = r s.target; source = r s.source }
      else Apattern.Through s
  | Apattern.Assoc_via s ->
      if is_entity then Apattern.Assoc_via { s with source = r s.source }
      else Apattern.Assoc_via { s with assoc = r s.assoc }
  | Apattern.Via_assoc s ->
      if is_entity then Apattern.Via_assoc { s with target = r s.target }
      else Apattern.Via_assoc { s with assoc = r s.assoc }

(* ------------------------------------------------------------------ *)
(* The INTERPOSE rule (Figure 4.2 -> 4.4)                              *)

type interpose_info = {
  through : string;
  n : string;  (** the interposed entity *)
  group_by : string list;
  la : string;
  ra : string;
  owner : Semantic.entity;
  member : Semantic.entity;
}

let mk_interpose_info schema ~through ~new_entity ~group_by ~left_assoc
    ~right_assoc =
  let a = Semantic.find_assoc_exn schema through in
  { through = Field.canon through;
    n = Field.canon new_entity;
    group_by = List.map Field.canon group_by;
    la = Field.canon left_assoc;
    ra = Field.canon right_assoc;
    owner = Semantic.find_entity_exn schema a.left;
    member = Semantic.find_entity_exn schema a.right;
  }

let in_group info f = List.exists (Field.name_equal f) info.group_by

(* The refusal predicates below are shared verbatim between the rewrite
   (which raises) and the preflight analyzer (which reports), so the
   two verdicts agree by construction. *)

(* A conjunct mixing grouped and ungrouped fields cannot be placed on
   either side of the split. *)
let split_group_check info qual =
  List.find_map
    (fun c ->
      let fs = Cond.fields c in
      if List.exists (in_group info) fs && not (List.for_all (in_group info) fs)
      then
        Some
          (Diagnostic.errf ~code:"CV001" ~entity:info.member.ename
             "qualification mixes grouped and ungrouped fields: %a" Cond.pp c)
      else None)
    (Cond.split_conjuncts qual)

(* The association qualification (over the endpoint keys) must split
   into owner-key conjuncts and member-key conjuncts. *)
let assoc_split_partition info qual =
  List.partition
    (fun c ->
      List.for_all
        (fun f -> List.exists (Field.name_equal f) info.owner.key)
        (Cond.fields c))
    (Cond.split_conjuncts qual)

let assoc_split_check info qual =
  let _q1_n, q1_member = assoc_split_partition info qual in
  List.find_map
    (fun c ->
      if
        not
          (List.for_all
             (fun f -> List.exists (Field.name_equal f) info.member.key)
             (Cond.fields c))
      then
        Some
          (Diagnostic.errf ~code:"CV002" ~entity:info.through
             "association qualification %a cannot be split" Cond.pp c)
      else None)
    q1_member

let check_ok = function Some d -> raise (Refuse d) | None -> ()

(* Split a qualification into (conjuncts over grouped fields, rest). *)
let split_group info qual =
  check_ok (split_group_check info qual);
  let grouped, rest =
    List.partition
      (fun c ->
        let fs = Cond.fields c in
        fs <> [] && List.for_all (in_group info) fs)
      (Cond.split_conjuncts qual)
  in
  (Cond.conj grouped, Cond.conj rest)

(* Rewrite one access sequence under INTERPOSE. *)
let rec interpose_query info steps =
  match steps with
  | [] -> []
  | Apattern.Assoc_via { assoc; source; qual }
    :: Apattern.Via_assoc { target; assoc = a2; qual = q2 }
    :: rest
    when Field.name_equal assoc info.through && Field.name_equal a2 info.through
    ->
      let dir_down = Field.name_equal source info.owner.ename in
      let qg, qrest = split_group info q2 in
      check_ok (assoc_split_check info qual);
      let q1_n, q1_member = assoc_split_partition info qual in
      let qg = Cond.cand qg (Cond.conj q1_n) in
      let qrest = Cond.cand qrest (Cond.conj q1_member) in
      if dir_down then
        (* O -> E becomes O -> N -> E, grouped-field conditions moving
           onto N (the §4.2 DEPT(DEPT-NAME='SALES') move). *)
        Apattern.Assoc_via { assoc = info.la; source; qual = Cond.True }
        :: Apattern.Via_assoc { target = info.n; assoc = info.la; qual = qg }
        :: Apattern.Assoc_via
             { assoc = info.ra; source = info.n; qual = Cond.True }
        :: Apattern.Via_assoc { target; assoc = info.ra; qual = qrest }
        :: interpose_query info rest
      else
        Apattern.Assoc_via
          { assoc = info.ra; source; qual = Cond.conj q1_member }
        :: Apattern.Via_assoc { target = info.n; assoc = info.ra; qual = qg }
        :: Apattern.Assoc_via
             { assoc = info.la; source = info.n; qual = Cond.True }
        :: Apattern.Via_assoc { target; assoc = info.la; qual = qrest }
        :: interpose_query info rest
  | Apattern.Assoc_via { assoc; source; qual } :: rest
    when Field.name_equal assoc info.through ->
      (* Unpaired association access: the replaced association's
         occurrences correspond one-to-one with the N->E association's
         occurrences (every E has exactly one N). *)
      let qg, qrest = split_group info qual in
      if Field.name_equal source info.owner.ename then
        Apattern.Assoc_via { assoc = info.la; source; qual = Cond.True }
        :: Apattern.Via_assoc { target = info.n; assoc = info.la; qual = qg }
        :: Apattern.Assoc_via { assoc = info.ra; source = info.n; qual = qrest }
        :: interpose_query info rest
      else
        Apattern.Assoc_via { assoc = info.ra; source; qual = qrest }
        :: (if Cond.equal qg Cond.True then []
            else
              [ Apattern.Via_assoc
                  { target = info.n; assoc = info.ra; qual = qg };
              ])
        @ interpose_query info rest
  | Apattern.Self { target; qual } :: rest
    when Field.name_equal target info.member.ename ->
      let qg, qrest = split_group info qual in
      let base = Apattern.Self { target; qual = qrest } in
      if Cond.equal qg Cond.True then base :: interpose_query info rest
      else
        (* Keep the member enumeration order and filter through the
           (unique, total) interposed owner. *)
        base
        :: Apattern.Assoc_via
             { assoc = info.ra; source = target; qual = Cond.True }
        :: Apattern.Via_assoc { target = info.n; assoc = info.ra; qual = qg }
        :: interpose_query info rest
  | step :: rest -> step :: interpose_query info rest

(* Preflight: first refusal [interpose_query] would raise on this
   access sequence, without building the rewritten sequence. *)
let rec interpose_query_check info steps =
  match steps with
  | [] -> None
  | Apattern.Assoc_via { assoc; qual; _ }
    :: Apattern.Via_assoc { assoc = a2; qual = q2; _ }
    :: rest
    when Field.name_equal assoc info.through && Field.name_equal a2 info.through
    -> (
      match split_group_check info q2 with
      | Some d -> Some d
      | None -> (
          match assoc_split_check info qual with
          | Some d -> Some d
          | None -> interpose_query_check info rest))
  | Apattern.Assoc_via { assoc; qual; _ } :: rest
    when Field.name_equal assoc info.through -> (
      match split_group_check info qual with
      | Some d -> Some d
      | None -> interpose_query_check info rest)
  | Apattern.Self { target; qual } :: rest
    when Field.name_equal target info.member.ename -> (
      match split_group_check info qual with
      | Some d -> Some d
      | None -> interpose_query_check info rest)
  | _ :: rest -> interpose_query_check info rest

(* Statement-level refusals, shared by rewrite and preflight. *)
let interpose_stmt_check info s =
  match s with
  | Aprog.Insert { entity; values; connects }
    when Field.name_equal entity info.member.ename
         && List.exists
              (fun (an, _) -> Field.name_equal an info.through)
              connects ->
      let grouped_values, _ = List.partition (fun (f, _) -> in_group info f) values in
      if List.length grouped_values <> List.length info.group_by then
        Some
          (Diagnostic.errf ~code:"CV003" ~entity
             "INSERT %s does not set every grouped field" entity)
      else if
        not
          (List.exists (fun (an, _) -> Field.name_equal an info.through) connects)
      then
        Some
          (Diagnostic.errf ~code:"CV004" ~entity
             "INSERT %s is not connected through %s" entity info.through)
      else
        List.find_map
          (fun g ->
            if
              not
                (List.exists (fun (f, _) -> Field.name_equal f g) grouped_values)
            then
              Some
                (Diagnostic.errf ~code:"CV005" ~entity ~field:g
                   "INSERT %s misses grouped field %s" entity g)
            else None)
          info.group_by
  | Aprog.Update { query; assigns }
    when Field.name_equal (Apattern.result_of query) info.member.ename
         && List.exists (fun (f, _) -> in_group info f) assigns ->
      (* §4.3: "under certain restructurings, updates may be
         ambiguous ... similar to the well-known view update
         problem." *)
      Some
        (Diagnostic.errf ~code:"CV006" ~entity:info.member.ename
           "UPDATE of grouped field(s) of %s is ambiguous after the split"
           info.member.ename)
  | (Aprog.Link { assoc; _ } | Aprog.Unlink { assoc; _ })
    when Field.name_equal assoc info.through ->
      Some
        (Diagnostic.errf ~code:"CV007" ~entity:info.through
           "LINK/UNLINK through the replaced association %s" info.through)
  | _ -> None

(* Does the program reference any grouped field variable of the member? *)
let uses_grouped_vars info p =
  List.exists
    (fun v ->
      List.exists
        (fun g -> Field.name_equal v (info.member.ename ^ "." ^ Field.canon g))
        info.group_by)
    (qualified_vars p)

(* Ensure every query that delivers the member also reaches N when the
   program reads grouped variables. *)
let extend_for_grouped_vars info query =
  let reaches_n =
    List.exists
      (fun s -> Field.name_equal (Apattern.target_of s) info.n)
      query
  in
  let delivers_member =
    List.exists
      (fun s -> Field.name_equal (Apattern.target_of s) info.member.ename)
      query
  in
  if delivers_member && not reaches_n then
    query
    @ [ Apattern.Assoc_via
          { assoc = info.ra; source = info.member.ename; qual = Cond.True };
        Apattern.Via_assoc
          { target = info.n; assoc = info.ra; qual = Cond.True };
      ]
  else query

let interpose_rule schema ~through ~new_entity ~group_by ~left_assoc
    ~right_assoc (p : Aprog.t) =
  let issues = ref [] in
  let issue fmt = Fmt.kstr (fun s -> issues := s :: !issues) fmt in
  let info =
    mk_interpose_info schema ~through ~new_entity ~group_by ~left_assoc
      ~right_assoc
  in
  let needs_n = uses_grouped_vars info p in
  let rw_query q =
    let q = interpose_query info q in
    if needs_n then extend_for_grouped_vars info q else q
  in
  let rename_assoc_vars = rename_prefix ~from_:info.through ~to_:info.ra in
  let rename = rename_prefix ~from_:info.member.ename ~to_:info.n in
  let rename_grouped x =
    (* Only grouped fields move to N; other member fields stay. *)
    let p = Field.canon info.member.ename ^ "." in
    let n = String.length p in
    if
      String.length x > n
      && Field.name_equal (String.sub x 0 n) p
      && in_group info (String.sub x n (String.length x - n))
    then rename x
    else x
  in
  let rw_var x = Cond.Var (rename_assoc_vars (rename_grouped x)) in
  let rw_stmt s =
    check_ok (interpose_stmt_check info s);
    match s with
    | Aprog.Insert { entity; values; connects }
      when Field.name_equal entity info.member.ename
           && List.exists
                (fun (an, _) -> Field.name_equal an info.through)
                connects ->
        let grouped_values, kept_values =
          List.partition (fun (f, _) -> in_group info f) values
        in
        let okey_exprs =
          match
            List.find_opt (fun (an, _) -> Field.name_equal an info.through)
              connects
          with
          | Some (_, ks) -> ks
          | None -> assert false (* interpose_stmt_check passed *)
        in
        let group_exprs =
          List.map
            (fun g ->
              match
                List.find_opt (fun (f, _) -> Field.name_equal f g)
                  grouped_values
              with
              | Some (_, e) -> e
              | None -> assert false (* interpose_stmt_check passed *))
            info.group_by
        in
        let nkey = okey_exprs @ group_exprs in
        let n_qual =
          Cond.conj
            (List.map2
               (fun k e -> Cond.Cmp (Cond.Eq, Cond.Field k, e))
               (info.owner.key @ info.group_by)
               nkey)
        in
        let n_values =
          List.map2
            (fun k e -> (Field.canon k, e))
            (info.owner.key @ info.group_by)
            nkey
        in
        let connects' =
          List.map
            (fun (an, ks) ->
              if Field.name_equal an info.through then (info.ra, nkey)
              else (an, ks))
            connects
        in
        issue
          "INSERT %s now materialises its %s group on demand (guarded insert)"
          entity info.n;
        Some
          [ Aprog.First
              { query = [ Apattern.Self { target = info.n; qual = n_qual } ];
                present = [];
                absent =
                  [ Aprog.Insert
                      { entity = info.n;
                        values = n_values;
                        connects = [ (info.la, okey_exprs) ];
                      };
                  ];
              };
            Aprog.Insert
              { entity = info.member.ename;
                values = kept_values;
                connects = connects';
              };
          ]
    | _ -> None
  in
  let p' =
    apply
      (mapper ~query:rw_query ~expr:(map_expr rw_var) ~cond:(map_cond rw_var)
         ~varname:(fun x -> rename_assoc_vars (rename_grouped x))
         ~stmt:rw_stmt ())
      p
  in
  (p', List.rev !issues)

(* ------------------------------------------------------------------ *)
(* The COLLAPSE rule (inverse)                                         *)

type collapse_info = {
  c_left : string;   (** left (owner->N) association name *)
  c_right : string;  (** right (N->member) association name *)
  c_n : Semantic.entity;
  c_member : Semantic.entity;
  c_own_fields : string list;
}

let mk_collapse_info schema ~left_assoc ~right_assoc ~removed_entity =
  let la = Semantic.find_assoc_exn schema left_assoc in
  let ra = Semantic.find_assoc_exn schema right_assoc in
  let n = Semantic.find_entity_exn schema removed_entity in
  let owner = Semantic.find_entity_exn schema la.left in
  let member = Semantic.find_entity_exn schema ra.right in
  let own_fields =
    List.filter_map
      (fun (f : Field.t) ->
        if List.exists (Field.name_equal f.name) owner.key then None
        else Some f.name)
      n.fields
  in
  { c_left = left_assoc;
    c_right = right_assoc;
    c_n = n;
    c_member = member;
    c_own_fields = own_fields;
  }

(* Shared refusal predicates for the collapsed quad and for loose
   steps. *)
let collapse_quad_check ci ~q1 ~q2 ~qn =
  if not (Cond.equal q1 Cond.True && Cond.equal q2 Cond.True) then
    Some
      (Diagnostic.errf ~code:"CV008" ~entity:ci.c_n.ename
         "qualified association steps cannot be collapsed")
  else
    List.find_map
      (fun c ->
        let fs = Cond.fields c in
        if
          List.for_all
            (fun f -> List.exists (Field.name_equal f) ci.c_own_fields)
            fs
        then None
        else if fs = [] then None
        else
          Some
            (Diagnostic.errf ~code:"CV009" ~entity:ci.c_n.ename
               "condition on %s keys cannot move to %s" ci.c_n.ename
               ci.c_member.ename))
      (Cond.split_conjuncts qn)

let collapse_step_check ci step =
  let name = Apattern.target_of step in
  if Field.name_equal name ci.c_n.ename then
    Some
      (Diagnostic.errf ~code:"CV010" ~entity:ci.c_n.ename
         ~path:(Fmt.str "%a" Apattern.pp_step step)
         "access to removed entity %s cannot be collapsed" ci.c_n.ename)
  else if
    Field.name_equal name ci.c_left || Field.name_equal name ci.c_right
  then
    Some
      (Diagnostic.errf ~code:"CV011" ~entity:name
         ~path:(Fmt.str "%a" Apattern.pp_step step)
         "loose access through a collapsed association")
  else None

(* Preflight mirror of the collapse query rewrite. *)
let rec collapse_query_check ci = function
  | [] -> None
  | Apattern.Assoc_via { assoc = a1; qual = q1; _ }
    :: Apattern.Via_assoc { target = t1; assoc = a1'; qual = qn }
    :: Apattern.Assoc_via { assoc = a2; source = s2; qual = q2 }
    :: Apattern.Via_assoc { assoc = a2'; _ }
    :: rest
    when Field.name_equal a1 ci.c_left
         && Field.name_equal a1' ci.c_left
         && Field.name_equal a2 ci.c_right
         && Field.name_equal a2' ci.c_right
         && Field.name_equal t1 ci.c_n.ename
         && Field.name_equal s2 ci.c_n.ename -> (
      match collapse_quad_check ci ~q1 ~q2 ~qn with
      | Some d -> Some d
      | None -> collapse_query_check ci rest)
  | step :: rest -> (
      match collapse_step_check ci step with
      | Some d -> Some d
      | None -> collapse_query_check ci rest)

(* Preflight mirror of the collapse statement rewrite: [`Skip] marks
   subtrees the rewrite drops wholesale (their contents must not be
   scanned — the engine never sees them either). *)
let collapse_stmt_scan ci s =
  match s with
  | Aprog.Insert { entity; _ } when Field.name_equal entity ci.c_n.ename ->
      `Skip
  | Aprog.First { query = [ Apattern.Self { target; _ } ]; present; absent }
    when Field.name_equal target ci.c_n.ename && present = [] ->
      if
        List.for_all
          (function
            | Aprog.Insert { entity; _ } -> Field.name_equal entity ci.c_n.ename
            | _ -> false)
          absent
      then `Skip
      else
        `Refused
          (Diagnostic.errf ~code:"CV012" ~entity:ci.c_n.ename
             "FIRST over removed entity %s" ci.c_n.ename)
  | _ -> `Continue

let collapse_rule schema ~left_assoc ~right_assoc ~removed_entity
    ~restored_assoc (p : Aprog.t) =
  let ci = mk_collapse_info schema ~left_assoc ~right_assoc ~removed_entity in
  let n = ci.c_n in
  let rec rw_query = function
    | [] -> []
    | Apattern.Assoc_via { assoc = a1; source; qual = q1 }
      :: Apattern.Via_assoc { target = t1; assoc = a1'; qual = qn }
      :: Apattern.Assoc_via { assoc = a2; source = s2; qual = q2 }
      :: Apattern.Via_assoc { target = t2; assoc = a2'; qual = qe }
      :: rest
      when Field.name_equal a1 left_assoc
           && Field.name_equal a1' left_assoc
           && Field.name_equal a2 right_assoc
           && Field.name_equal a2' right_assoc
           && Field.name_equal t1 n.ename
           && Field.name_equal s2 n.ename ->
        check_ok (collapse_quad_check ci ~q1 ~q2 ~qn);
        (* N's own-field conditions become member conditions. *)
        let qn' = Cond.conj (Cond.split_conjuncts qn) in
        Apattern.Assoc_via
          { assoc = Field.canon restored_assoc; source; qual = Cond.True }
        :: Apattern.Via_assoc
             { target = t2;
               assoc = Field.canon restored_assoc;
               qual = Cond.cand qn' qe;
             }
        :: rw_query rest
    | step :: rest ->
        check_ok (collapse_step_check ci step);
        step :: rw_query rest
  in
  let rename x =
    (* N.g -> MEMBER.g for N's own fields. *)
    let pfx = Field.canon n.ename ^ "." in
    let l = String.length pfx in
    if String.length x > l && Field.name_equal (String.sub x 0 l) pfx then begin
      let f = String.sub x l (String.length x - l) in
      if List.exists (Field.name_equal f) ci.c_own_fields then
        Field.canon ci.c_member.ename ^ "." ^ f
      else x
    end
    else x
  in
  let rw_var x = Cond.Var (rename x) in
  let rw_stmt s =
    match collapse_stmt_scan ci s with
    | `Skip ->
        (* Creation of the grouping entity disappears: its content is
           now implied by member rows (the guarded-creation idiom
           becomes a no-op). *)
        Some []
    | `Refused d -> raise (Refuse d)
    | `Continue -> None
  in
  let p' =
    apply
      (mapper ~query:rw_query ~expr:(map_expr rw_var) ~cond:(map_cond rw_var)
         ~varname:rename ~stmt:rw_stmt ())
      p
  in
  (p', [])

(* ------------------------------------------------------------------ *)
(* Drop-field refusals (shared by convert and preflight)               *)

let drop_field_check ~entity ~field p =
  let qv = Field.canon entity ^ "." ^ Field.canon field in
  if List.exists (Field.name_equal qv) (qualified_vars p) then
    Some
      (Diagnostic.errf ~code:"CV014" ~entity ~field
         "program reads %s, whose values the restructuring does not preserve"
         qv)
  else
    let touches_qual =
      List.exists
        (fun q ->
          List.exists
            (fun step ->
              Field.name_equal (Apattern.target_of step) entity
              && List.exists (Field.name_equal field)
                   (Cond.fields (Apattern.qual_of step)))
            q)
        (Aprog.queries p)
    in
    if touches_qual then
      Some
        (Diagnostic.errf ~code:"CV015" ~entity ~field
           "program qualifies on dropped field %s.%s" entity field)
    else None

(* Widen-cardinality INSERT refusal (shared by rewrite and preflight). *)
let widen_insert_check ~assoc (re : Semantic.entity) s =
  match s with
  | Aprog.Insert i
    when List.exists (fun (an, _) -> Field.name_equal an assoc) i.connects ->
      List.find_map
        (fun k ->
          if
            not (List.exists (fun (f, _) -> Field.name_equal f k) i.values)
          then
            Some
              (Diagnostic.errf ~code:"CV013" ~entity:i.entity ~field:k
                 "INSERT %s lacks key %s" i.entity k)
          else None)
        re.key
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Preflight: classify a (program, op) pair without rewriting          *)

(* Walk the program in rewrite order, reporting the first refusal the
   conversion engine would raise.  [on_stmt] may claim subtrees the
   rewrite drops so their contents are not scanned. *)
let scan ~on_query ~on_stmt p =
  let folder =
    { F.default with
      F.query =
        (fun _ () acc q ->
          match acc with Some _ -> acc | None -> on_query q);
      F.stmt =
        (fun self () acc s ->
          match acc with
          | Some _ -> Some acc
          | None -> (
              match on_stmt s with
              | `Refused d -> Some (Some d)
              | `Skip -> Some acc
              | `Continue ->
                  Some (F.children self () acc s)));
    }
  in
  F.program folder () None p

let keep_query _ = None
let keep_stmt _ = `Continue

let preflight_op schema op p =
  match op with
  | Schema_change.Rename_entity _ | Schema_change.Rename_assoc _
  | Schema_change.Rename_field _ | Schema_change.Add_field _
  | Schema_change.Add_constraint _ | Schema_change.Drop_constraint _
  | Schema_change.Restrict_extension _ ->
      (* these rules never refuse *)
      None
  | Schema_change.Drop_field { entity; field } ->
      drop_field_check ~entity ~field p
  | Schema_change.Widen_cardinality { assoc } ->
      let a = Semantic.find_assoc_exn schema assoc in
      let re = Semantic.find_entity_exn schema a.right in
      scan ~on_query:keep_query
        ~on_stmt:(fun s ->
          match widen_insert_check ~assoc re s with
          | Some d -> `Refused d
          | None -> keep_stmt s)
        p
  | Schema_change.Interpose
      { through; new_entity; group_by; left_assoc; right_assoc } ->
      let info =
        mk_interpose_info schema ~through ~new_entity ~group_by ~left_assoc
          ~right_assoc
      in
      scan
        ~on_query:(interpose_query_check info)
        ~on_stmt:(fun s ->
          match interpose_stmt_check info s with
          | Some d -> `Refused d
          | None -> keep_stmt s)
        p
  | Schema_change.Collapse
      { left_assoc; right_assoc; removed_entity; restored_assoc = _ } ->
      let ci =
        mk_collapse_info schema ~left_assoc ~right_assoc ~removed_entity
      in
      scan ~on_query:(collapse_query_check ci)
        ~on_stmt:(collapse_stmt_scan ci)
        p

(* ------------------------------------------------------------------ *)

let convert_d schema op p =
  try
    match op with
    | Schema_change.Rename_entity { from_; to_ } ->
        let p =
          Aprog.map_queries
            (List.map (rename_step_names ~is_entity:true ~from_ ~to_))
            p
        in
        let rn = rename_prefix ~from_ ~to_ in
        let p = rename_vars rn p in
        let rw_stmt = function
          | Aprog.Insert i when Field.name_equal i.entity from_ ->
              Some [ Aprog.Insert { i with entity = Field.canon to_ } ]
          | _ -> None
        in
        Ok (apply (mapper ~stmt:rw_stmt ()) p, [])
    | Schema_change.Rename_assoc { from_; to_ } ->
        let p =
          Aprog.map_queries
            (List.map (rename_step_names ~is_entity:false ~from_ ~to_))
            p
        in
        let rn = rename_prefix ~from_ ~to_ in
        let p = rename_vars rn p in
        let rename_in an = if Field.name_equal an from_ then Field.canon to_ else an in
        let rw_stmt = function
          | Aprog.Link l when Field.name_equal l.assoc from_ ->
              Some [ Aprog.Link { l with assoc = Field.canon to_ } ]
          | Aprog.Unlink u when Field.name_equal u.assoc from_ ->
              Some [ Aprog.Unlink { u with assoc = Field.canon to_ } ]
          | Aprog.Insert i
            when List.exists
                   (fun (a, _) -> Field.name_equal a from_)
                   i.connects ->
              Some
                [ Aprog.Insert
                    { i with
                      connects =
                        List.map (fun (a, k) -> (rename_in a, k)) i.connects;
                    };
                ]
          | _ -> None
        in
        Ok (apply (mapper ~stmt:rw_stmt ()) p, [])
    | Schema_change.Rename_field { entity; from_; to_ } ->
        let rename_field_cond target qual =
          if Field.name_equal target entity then
            Cond.map_fields
              (fun f -> if Field.name_equal f from_ then Field.canon to_ else f)
              qual
          else qual
        in
        let rw_query =
          List.map (fun step ->
              match step with
              | Apattern.Self s when Field.name_equal s.target entity ->
                  Apattern.Self { s with qual = rename_field_cond s.target s.qual }
              | Apattern.Through s when Field.name_equal s.target entity ->
                  let tf, sf = s.link in
                  let tf =
                    if Field.name_equal tf from_ then Field.canon to_ else tf
                  in
                  Apattern.Through
                    { s with
                      link = (tf, sf);
                      qual = rename_field_cond s.target s.qual;
                    }
              | Apattern.Via_assoc s when Field.name_equal s.target entity ->
                  Apattern.Via_assoc
                    { s with qual = rename_field_cond s.target s.qual }
              | Apattern.Self _ | Apattern.Through _ | Apattern.Assoc_via _
              | Apattern.Via_assoc _ -> step)
        in
        let qv = Field.canon entity ^ "." ^ Field.canon from_ in
        let qv' = Field.canon entity ^ "." ^ Field.canon to_ in
        let p = Aprog.map_queries rw_query p in
        let p = rename_vars (rename_qvar ~from_:qv ~to_:qv') p in
        let rw_stmt = function
          | Aprog.Insert i
            when Field.name_equal i.entity entity
                 && List.exists (fun (f, _) -> Field.name_equal f from_)
                      i.values ->
              Some
                [ Aprog.Insert
                    { i with
                      values =
                        List.map
                          (fun (f, e) ->
                            ((if Field.name_equal f from_ then Field.canon to_
                              else f), e))
                          i.values;
                    };
                ]
          | Aprog.Update u
            when Field.name_equal (Apattern.result_of u.query) entity
                 && List.exists (fun (f, _) -> Field.name_equal f from_)
                      u.assigns ->
              Some
                [ Aprog.Update
                    { u with
                      assigns =
                        List.map
                          (fun (f, e) ->
                            ((if Field.name_equal f from_ then Field.canon to_
                              else f), e))
                          u.assigns;
                    };
                ]
          | _ -> None
        in
        Ok (apply (mapper ~stmt:rw_stmt ()) p, [])
    | Schema_change.Add_field _ -> Ok (p, [])
    | Schema_change.Drop_field { entity; field } -> (
        match drop_field_check ~entity ~field p with
        | Some d -> Error d
        | None ->
            let rw_stmt = function
              | Aprog.Insert i
                when Field.name_equal i.entity entity
                     && List.exists (fun (f, _) -> Field.name_equal f field)
                          i.values ->
                  Some
                    [ Aprog.Insert
                        { i with
                          values =
                            List.filter
                              (fun (f, _) -> not (Field.name_equal f field))
                              i.values;
                        };
                    ]
              | _ -> None
            in
            Ok (apply (mapper ~stmt:rw_stmt ()) p, []))
    | Schema_change.Add_constraint c ->
        Ok
          ( p,
            [ Fmt.str
                "new constraint (%a): the program's updates may now be \
                 rejected at run time"
                Semantic.pp_constraint c;
            ] )
    | Schema_change.Drop_constraint _ -> Ok (p, [])
    | Schema_change.Widen_cardinality { assoc } ->
        (* Retrieval is unchanged; inserts that connected through the
           association must link explicitly, since the widened
           association is realized as a link record. *)
        let a = Semantic.find_assoc_exn schema assoc in
        let re = Semantic.find_entity_exn schema a.right in
        let rw_stmt s =
          check_ok (widen_insert_check ~assoc re s);
          match s with
          | Aprog.Insert i
            when List.exists (fun (an, _) -> Field.name_equal an assoc) i.connects
            ->
              let this, others =
                List.partition
                  (fun (an, _) -> Field.name_equal an assoc)
                  i.connects
              in
              let right_key =
                List.map
                  (fun k ->
                    match
                      List.find_opt (fun (f, _) -> Field.name_equal f k) i.values
                    with
                    | Some (_, e) -> e
                    | None -> assert false (* widen_insert_check passed *))
                  re.key
              in
              Some
                (Aprog.Insert { i with connects = others }
                 :: List.map
                      (fun (_, lk) ->
                        Aprog.Link
                          { assoc = Field.canon assoc;
                            left_key = lk;
                            right_key;
                            attrs = [];
                          })
                      this)
          | _ -> None
        in
        Ok (apply (mapper ~stmt:rw_stmt ()) p, [])
    | Schema_change.Interpose
        { through; new_entity; group_by; left_assoc; right_assoc } ->
        Ok
          (interpose_rule schema ~through ~new_entity ~group_by ~left_assoc
             ~right_assoc p)
    | Schema_change.Collapse
        { left_assoc; right_assoc; removed_entity; restored_assoc } ->
        Ok
          (collapse_rule schema ~left_assoc ~right_assoc ~removed_entity
             ~restored_assoc p)
    | Schema_change.Restrict_extension { entity; qual } ->
        (* §5.2: "we would probably want a conversion system to convert
           the 'print all employees' program successfully, though
           perhaps a warning should be issued." *)
        let touches =
          List.exists
            (fun q ->
              List.exists
                (fun step ->
                  Field.name_equal (Apattern.target_of step) entity)
                q)
            (Aprog.queries p)
        in
        Ok
          ( p,
            if touches then
              [ Fmt.str
                  "the program reads %s, whose extension the conversion                    restricts (DROPPING %a): behaviour is preserved only up                    to the removed instances (§5.2)"
                  entity Cond.pp qual;
              ]
            else [] )
  with Refuse d -> Error d

let convert schema op p =
  Result.map_error Diagnostic.to_string (convert_d schema op p)

(* Keep the rendered message identical to Schema_change.apply's error
   string; the stable code is the only addition. *)
let schema_change_error _op e = Diagnostic.errf ~code:"CV016" "%s" e

let convert_all_d schema ops p =
  let rec go schema ops p issues =
    match ops with
    | [] -> Ok (p, issues)
    | op :: rest -> (
        match convert_d schema op p with
        | Error d -> Error d
        | Ok (p', new_issues) -> (
            match Schema_change.apply schema op with
            | Error e -> Error (schema_change_error op e)
            | Ok schema' -> go schema' rest p' (issues @ new_issues)))
  in
  go schema ops p []

let convert_all schema ops p =
  Result.map_error Diagnostic.to_string (convert_all_d schema ops p)
