(** {!Ccv_abstract.Host.ENGINE} adapters for the three concrete
    database engines, plus the embedded-SQL cursor DML the relational
    host programs use. *)

open Ccv_common
open Ccv_abstract

(** Embedded-SQL statements: updates execute directly; queries run
    through an explicit cursor stack ([Open]/[Fetch]/[Close]), the
    1970s host-language idiom.  [Fetch] binds each field of the next
    row as ["REL.FIELD"] and reports [End_of_set] at exhaustion. *)
module Rel_dml : sig
  type t =
    | Exec of Ccv_relational.Sql.stmt
    | Open of Ccv_relational.Sql.query
    | Fetch
    | Close

  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end

module Net_engine :
  Host.ENGINE
    with type db = Ccv_network.Ndb.t
     and type dml = Ccv_network.Dml.t
     and type state = Ccv_network.Interp.currency

module Rel_engine : sig
  include
    Host.ENGINE
      with type db = Ccv_relational.Rdb.t
       and type dml = Rel_dml.t

  val cursor_depth : state -> int
end

module Hier_engine :
  Host.ENGINE
    with type db = Ccv_hier.Hdb.t
     and type dml = Ccv_hier.Hdml.t
     and type state = Ccv_hier.Hinterp.position

(** Runners, one per engine. *)
module Net_run : module type of Host.Run (Net_engine)

module Rel_run : module type of Host.Run (Rel_engine)
module Hier_run : module type of Host.Run (Hier_engine)

(** A concrete program in whichever model it targets. *)
type program =
  | Net_program of Ccv_network.Dml.t Host.program
  | Rel_program of Rel_dml.t Host.program
  | Hier_program of Ccv_hier.Hdml.t Host.program

(** A concrete database instance. *)
type database =
  | Net_db of Ccv_network.Ndb.t
  | Rel_db of Ccv_relational.Rdb.t
  | Hier_db of Ccv_hier.Hdb.t

type run_result = {
  trace : Io_trace.t;
  steps : int;
  hit_limit : bool;
  accesses : int;  (** engine record reads+writes consumed by the run *)
  final_db : database;
}

(** [run ?input ?max_steps db program] — pairs a database with a
    program of the same model; raises [Invalid_argument] on a model
    mismatch. *)
val run :
  ?input:string list -> ?max_steps:int -> database -> program -> run_result

(** A host program lowered to closures once
    ({!Ccv_plan.Host_compiler}), in whichever model it targets. *)
type compiled_program

val compile : program -> compiled_program

(** Like {!run}, but executing the compiled form — behaviourally
    identical, without per-request re-interpretation of the host
    statement tree. *)
val run_compiled :
  ?input:string list -> ?max_steps:int -> database -> compiled_program ->
  run_result

(** [observed_stats semantic db] — counter-silent statistics snapshot
    of a host instance, shaped by the semantic schema (realizations
    keep the semantic names).  Associations without a standalone
    realization (owner-coupled sets, parent-child) are absent from the
    link counts; the hierarchical store returns {!Ccv_plan.Stats.empty}
    (no per-segment count maps), so drift checks are inert there. *)
val observed_stats : Ccv_model.Semantic.t -> database -> Ccv_plan.Stats.t

val program_size : program -> int
val pp_program : Format.formatter -> program -> unit
