(** The transformation rules of Figure 4.1: "the internal
    representation of how the database schema has been changed is used
    by a Program Converter to select the proper transformation rules
    for use in mapping the source program representation to the target
    program representation."

    Each {!Ccv_transform.Schema_change.op} selects one rule; a rule
    rewrites the abstract program so that it "runs equivalently"
    against the restructured database.  Rules can refuse (the program
    is not convertible — e.g. it reads a dropped field, §1.1's
    information-loss case, or updates a grouped field, §4.3's view
    update ambiguity) and can emit issues for the conversion analyst
    (§4's interactive supervisor), e.g. the Figure 4.4 SORT note when a
    restructuring changes enumeration order. *)

open Ccv_abstract
open Ccv_model
open Ccv_transform

val convert :
  Semantic.t -> Schema_change.op -> Aprog.t ->
  (Aprog.t * string list, string) result
(** [convert source_schema op program] — the source schema is the one
    the program was analyzed against (before [op]). *)

val convert_all :
  Semantic.t -> Schema_change.op list -> Aprog.t ->
  (Aprog.t * string list, string) result

val convert_d :
  Semantic.t -> Schema_change.op -> Aprog.t ->
  (Aprog.t * string list, Ccv_common.Diagnostic.t) result
(** Like {!convert} but refusals keep their structured diagnostic
    (stable CV0xx code, offending entity/field/path).  [convert] is
    this with the message rendered. *)

val convert_all_d :
  Semantic.t -> Schema_change.op list -> Aprog.t ->
  (Aprog.t * string list, Ccv_common.Diagnostic.t) result
(** Structured variant of {!convert_all}; a schema-level failure of
    [Schema_change.apply] surfaces as code [CV016]. *)

val preflight_op :
  Semantic.t -> Schema_change.op -> Aprog.t -> Ccv_common.Diagnostic.t option
(** Static refusal prediction: the first refusal {!convert_d} would
    report for this (program, op) pair, computed without executing the
    rewrite.  Shares its predicate functions with the rewrite itself,
    so [preflight_op schema op p = None] iff
    [convert_d schema op p = Ok _] (the differential property the test
    suite enforces over generated corpora). *)

(** Rename every host-variable reference through [f] (exposed for the
    optimizer and tests). *)
val rename_vars : (string -> string) -> Aprog.t -> Aprog.t

(** All qualified variables ("NAME.FIELD") the program mentions. *)
val qualified_vars : Aprog.t -> string list

(** Expression/condition rewriting on variable references (shared with
    the optimizer). *)
val map_expr : (string -> Ccv_common.Cond.expr) -> Ccv_common.Cond.expr -> Ccv_common.Cond.expr

val map_cond : (string -> Ccv_common.Cond.expr) -> Ccv_common.Cond.t -> Ccv_common.Cond.t
