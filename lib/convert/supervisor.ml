open Ccv_model
open Ccv_abstract
open Ccv_transform

type request = {
  source_schema : Semantic.t;
  source_model : Mapping.target_model;
  ops : Schema_change.op list;
  target_model : Mapping.target_model;
}

type issue = { stage : string; message : string }

type report = {
  classification : (Schema_change.op * Schema_change.change_class) list;
  target_schema : Semantic.t;
  abstract_source : Aprog.t;
  abstract_target : Aprog.t;
  optimized : Aprog.t;
  target_program : Engines.program;
  issues : issue list;
  optimizer_log : string list;
}

let pp_issue ppf i = Fmt.pf ppf "[%s] %s" i.stage i.message

let pp_report ppf r =
  Fmt.pf ppf "@[<v>classification:@ %a@ issues:@ %a@ optimizer:@ %a@]"
    (Fmt.list (fun ppf (op, cls) ->
         Fmt.pf ppf "  %a -> %a" Schema_change.pp_op op Schema_change.pp_class
           cls))
    r.classification
    (Fmt.list (fun ppf i -> Fmt.pf ppf "  %a" pp_issue i))
    r.issues
    (Fmt.list (fun ppf s -> Fmt.pf ppf "  %s" s))
    r.optimizer_log

let realize model sdb =
  let schema = Sdb.schema sdb in
  match model with
  | Mapping.Rel ->
      let mapping, rschema = Mapping.derive_relational schema in
      (mapping, Engines.Rel_db (Mapping.load_relational rschema sdb))
  | Mapping.Net ->
      let mapping, nschema = Mapping.derive_network schema in
      (mapping, Engines.Net_db (Mapping.load_network mapping nschema sdb))
  | Mapping.Hier ->
      let mapping, hschema = Mapping.derive_hier schema in
      (mapping, Engines.Hier_db (Mapping.load_hier mapping hschema sdb))

let mapping_for model schema =
  match model with
  | Mapping.Rel -> fst (Mapping.derive_relational schema)
  | Mapping.Net -> fst (Mapping.derive_network schema)
  | Mapping.Hier -> fst (Mapping.derive_hier schema)

let ( let* ) r f = Result.bind r f

let convert_program ?stats req program =
  (* Conversion Analyzer: validate and classify the restructuring. *)
  let classification =
    List.map (fun op -> (op, Schema_change.classify op)) req.ops
  in
  let* target_schema =
    Result.map_error
      (fun e -> ("conversion-analyzer", e))
      (Schema_change.apply_all req.source_schema req.ops)
  in
  (* Program Analyzer. *)
  let source_mapping = mapping_for req.source_model req.source_schema in
  let* { Analyzer.aprog = abstract_source; hazards } =
    Result.map_error (fun e -> ("program-analyzer", e))
      (Analyzer.analyze source_mapping program)
  in
  (* Program Converter: transformation rules per change class. *)
  let* abstract_target, rule_issues =
    Result.map_error (fun e -> ("program-converter", e))
      (Rules.convert_all req.source_schema req.ops abstract_source)
  in
  (* Optimizer — under the statistics snapshot when one is supplied,
     so conjunct ordering reflects live cardinalities. *)
  let optimized, optimizer_log =
    Optimizer.optimize ?stats target_schema abstract_target
  in
  (* Program Generator against the target mapping. *)
  let target_mapping = mapping_for req.target_model target_schema in
  let* { Generator.program = target_program; issues = gen_issues } =
    Result.map_error (fun e -> ("program-generator", e))
      (Generator.generate target_mapping optimized)
  in
  let advisor =
    List.map
      (fun s -> Fmt.str "%a" Advisor.pp_suggestion s)
      (Advisor.review req.source_schema abstract_source)
  in
  let issues =
    List.map (fun m -> { stage = "program-analyzer"; message = m }) hazards
    @ List.map (fun m -> { stage = "advisor"; message = m }) advisor
    @ List.map (fun m -> { stage = "program-converter"; message = m }) rule_issues
    @ List.map (fun m -> { stage = "program-generator"; message = m }) gen_issues
  in
  Ok
    { classification;
      target_schema;
      abstract_source;
      abstract_target;
      optimized;
      target_program;
      issues;
      optimizer_log;
    }

let translate_database ?pool req sdb =
  match Data_translate.translate_all ?pool sdb req.ops with
  | Error e -> Error e
  | Ok (sdb', warnings) ->
      let _, db = realize req.target_model sdb' in
      Ok (db, sdb', warnings)

type servable = {
  serve_request : request;
  source_mapping : Mapping.t;
  source_db : Engines.database;
  target_db : Engines.database;
  translated : Sdb.t;
  warnings : string list;
}

(* Everything a compiled serving plan depends on: the source schema,
   the restructuring definition and both models.  When any of these
   change, previously compiled pairs are stale and the plan caches must
   flush — the digest is their generation tag. *)
let serving_fingerprint req =
  let model = function Mapping.Rel -> "rel" | Mapping.Net -> "net" | Mapping.Hier -> "hier" in
  let rendered =
    Fmt.str "%a|%s|%s|%s" Semantic.pp req.source_schema
      (model req.source_model)
      (String.concat ";" (List.map Schema_change.show_op req.ops))
      (model req.target_model)
  in
  Digest.to_hex (Digest.string rendered)

let prepare_serving ?pool req sdb =
  let source_mapping = mapping_for req.source_model req.source_schema in
  let _, source_db = realize req.source_model sdb in
  match translate_database ?pool req sdb with
  | Error e -> Error ("data-translator", e)
  | Ok (target_db, translated, warnings) ->
      Ok
        { serve_request = req;
          source_mapping;
          source_db;
          target_db;
          translated;
          warnings;
        }

(* Live-migration entry: realize the source replica only.  The target
   starts as an empty instance of the target schema and is populated
   record by record by the migration subsystem (fault-in + backfill),
   so the first request is served without waiting on bulk
   translation. *)
let prepare_live req sdb =
  match Schema_change.apply_all req.source_schema req.ops with
  | Error e -> Error ("conversion-analyzer", e)
  | Ok target_schema ->
      let source_mapping = mapping_for req.source_model req.source_schema in
      let _, source_db = realize req.source_model sdb in
      let empty = Sdb.create target_schema in
      let _, target_db = realize req.target_model empty in
      Ok
        ( { serve_request = req;
            source_mapping;
            source_db;
            target_db;
            translated = empty;
            warnings = [];
          },
          target_schema )

type served_pair = {
  source_program : Engines.program;
  target_program : (Engines.program, string * string) result;
  pair_issues : issue list;
}

let serve_pair ?at_epoch ?stats sv aprog =
  match Generator.generate sv.source_mapping aprog with
  | Error e -> Error ("source-generator", e)
  | Ok { Generator.program = source_program; issues = src_issues } -> (
      let src_issues =
        List.map (fun m -> { stage = "source-generator"; message = m }) src_issues
      in
      let src_issues =
        (* provenance: under epoch serving the snapshot a pair was
           compiled against matters for reproducing a divergence *)
        match at_epoch with
        | None -> src_issues
        | Some e ->
            { stage = "serving";
              message = Printf.sprintf "pair compiled at epoch %d" e;
            }
            :: src_issues
      in
      match convert_program ?stats sv.serve_request source_program with
      | Error err ->
          Ok { source_program; target_program = Error err; pair_issues = src_issues }
      | Ok report ->
          Ok
            { source_program;
              target_program = Ok report.target_program;
              pair_issues = src_issues @ report.issues;
            })

type outcome = {
  report : report;
  verdict : Equivalence.verdict;
  source_accesses : int;
  target_accesses : int;
}

let convert_and_verify ?(input = []) req program sdb =
  let* report = convert_program req program in
  let _, source_db = realize req.source_model sdb in
  let* target_db, _sdb', _warnings =
    Result.map_error (fun e -> ("data-translator", e)) (translate_database req sdb)
  in
  let source_run = Engines.run ~input source_db program in
  let target_run = Engines.run ~input target_db report.target_program in
  let verdict =
    Equivalence.compare_traces source_run.Engines.trace target_run.Engines.trace
  in
  Ok
    { report;
      verdict;
      source_accesses = source_run.Engines.accesses;
      target_accesses = target_run.Engines.accesses;
    }
