open Ccv_common
open Ccv_model
open Ccv_abstract
open Ccv_transform

type verdict = Strict | Modulo_order | Divergent of string

(* Multiset comparison by sorting both traces under the total event
   order — O(n log n) event comparisons, no string rendering.  The
   previous implementation formatted every event through [Fmt] before
   sorting, which dominated long-trace judgments. *)
let multiset_equal a b =
  List.length a = List.length b
  && List.equal Io_trace.equal_event
       (List.sort Io_trace.compare_event a)
       (List.sort Io_trace.compare_event b)

let compare_traces reference observed =
  if Io_trace.equal reference observed then Strict
  else if multiset_equal reference observed then Modulo_order
  else
    match Io_trace.first_divergence reference observed with
    | Some (i, r, o) ->
        let show = function
          | Some e -> Fmt.str "%a" Io_trace.pp_event e
          | None -> "<end>"
        in
        Divergent
          (Fmt.str "event %d: expected %s, got %s" i (show r) (show o))
    | None -> Divergent "traces differ"

let verdict_at_least threshold v =
  match threshold, v with
  | Strict, Strict -> true
  | Strict, (Modulo_order | Divergent _) -> false
  | Modulo_order, (Strict | Modulo_order) -> true
  | Modulo_order, Divergent _ -> false
  | Divergent _, _ -> true

let pp_verdict ppf = function
  | Strict -> Fmt.string ppf "strict"
  | Modulo_order -> Fmt.string ppf "modulo-order"
  | Divergent why -> Fmt.pf ppf "divergent (%s)" why

type check = {
  verdict : verdict;
  reference : Io_trace.t;
  observed : Io_trace.t;
  accesses : int;
  gen_issues : string list;
}

let realize model sdb =
  let schema = Sdb.schema sdb in
  match model with
  | Mapping.Rel ->
      let mapping, rschema = Mapping.derive_relational schema in
      (mapping, Engines.Rel_db (Mapping.load_relational rschema sdb))
  | Mapping.Net ->
      let mapping, nschema = Mapping.derive_network schema in
      (mapping, Engines.Net_db (Mapping.load_network mapping nschema sdb))
  | Mapping.Hier ->
      let mapping, hschema = Mapping.derive_hier schema in
      (mapping, Engines.Hier_db (Mapping.load_hier mapping hschema sdb))

let check_against_model ?(input = []) model sdb aprog =
  let mapping, db = realize model sdb in
  match Generator.generate mapping aprog with
  | Error reason -> Error reason
  | Ok { Generator.program; issues } ->
      let reference = (Ainterp.run ~input sdb aprog).Ainterp.trace in
      let r = Engines.run ~input db program in
      Ok
        { verdict = compare_traces reference r.Engines.trace;
          reference;
          observed = r.Engines.trace;
          accesses = r.Engines.accesses;
          gen_issues = issues;
        }

let compare_runs ?(input = []) db1 p1 db2 p2 =
  let r1 = Engines.run ~input db1 p1 in
  let r2 = Engines.run ~input db2 p2 in
  (compare_traces r1.Engines.trace r2.Engines.trace, r1.Engines.trace,
   r2.Engines.trace)
