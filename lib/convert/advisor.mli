(** The §5.3 by-product: "if a program analyzer can be successfully
    constructed, it could be used as a programmer's aid during initial
    writing of database application programs.  Application programmers
    may misunderstand or misuse data relationships... a programmer may
    try to relate two files through two data items which are not
    related in application terms. Or the programmer may not be aware of
    all the access paths available."

    The advisor inspects an abstract program against the semantic
    schema and reports improvement suggestions:

    - a [Through] (comparable-fields) access between entities that an
      association already connects — use the association's access path;
    - a [Through] access over fields with no declared relationship at
      all — flag the §5.3 "not related in application terms" suspicion;
    - an equality qualification the compiled plan still serves by a
      scan — advise the concrete [Sdb.ensure_index] call that turns it
      into an indexed probe;
    - a [First] over an access that can deliver many instances —
      the §3.2 "process the first" vs "process all" confusion;
    - query steps whose bindings the program never reads — wasted
      navigation (access-path overshoot). *)

open Ccv_abstract
open Ccv_model

type suggestion = {
  severity : [ `Advice | `Suspicion ];
  message : string;
}

val review : Semantic.t -> Aprog.t -> suggestion list
val pp_suggestion : Format.formatter -> suggestion -> unit
