(** The §5.3 by-product: "if a program analyzer can be successfully
    constructed, it could be used as a programmer's aid during initial
    writing of database application programs.  Application programmers
    may misunderstand or misuse data relationships... a programmer may
    try to relate two files through two data items which are not
    related in application terms. Or the programmer may not be aware of
    all the access paths available."

    The advisor inspects an abstract program against the semantic
    schema and reports improvement suggestions:

    - a [Through] (comparable-fields) access between entities that an
      association already connects — use the association's access path;
    - a [Through] access over fields with no declared relationship at
      all — flag the §5.3 "not related in application terms" suspicion;
    - an equality qualification the compiled plan still serves by a
      scan — advise the concrete [Sdb.ensure_index] call that turns it
      into an indexed probe;
    - a [First] over an access that can deliver many instances —
      the §3.2 "process the first" vs "process all" confusion;
    - query steps whose bindings the program never reads — wasted
      navigation (access-path overshoot). *)

open Ccv_abstract
open Ccv_model

type suggestion = {
  severity : [ `Advice | `Suspicion ];
  message : string;
}

val review : Semantic.t -> Aprog.t -> suggestion list

(** The scan-vs-index advice alone, for one query.  Without [stats],
    the advice is structural (every scanned equality); with [stats] —
    e.g. the serving layer's current, drift-rebased snapshot — only
    scans that are {e hot under the observed cardinalities} are
    advised, and the message carries the observed extent size and
    bucket profile alongside the concrete [Sdb.ensure_index] call. *)
val index_suggestions :
  ?stats:Ccv_plan.Stats.t -> Semantic.t -> Apattern.t -> suggestion list

val pp_suggestion : Format.formatter -> suggestion -> unit
