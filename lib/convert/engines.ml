open Ccv_common
open Ccv_abstract
module Ndb = Ccv_network.Ndb
module Interp = Ccv_network.Interp
module Rdb = Ccv_relational.Rdb
module Sql = Ccv_relational.Sql
module Hdb = Ccv_hier.Hdb
module Hinterp = Ccv_hier.Hinterp

module Rel_dml = struct
  type t = Exec of Sql.stmt | Open of Sql.query | Fetch | Close

  let equal a b =
    match a, b with
    | Exec s1, Exec s2 -> (
        match s1, s2 with
        | Sql.Query q1, Sql.Query q2 -> Sql.equal_query q1 q2
        | s1, s2 -> s1 = s2)
    | Open q1, Open q2 -> Sql.equal_query q1 q2
    | Fetch, Fetch | Close, Close -> true
    | (Exec _ | Open _ | Fetch | Close), _ -> false

  let pp ppf = function
    | Exec s -> Fmt.pf ppf "EXEC SQL %a" Sql.pp s
    | Open q -> Fmt.pf ppf "OPEN CURSOR FOR %a" Sql.pp_query q
    | Fetch -> Fmt.string ppf "FETCH"
    | Close -> Fmt.string ppf "CLOSE"
end

module Net_engine = struct
  type db = Ndb.t
  type state = Interp.currency
  type dml = Ccv_network.Dml.t

  let initial_state _ = Interp.initial_currency

  let exec db state ~env stmt =
    let o = Interp.exec db state ~env stmt in
    (o.Interp.db, o.Interp.cur, o.Interp.updates, o.Interp.status)
end

module Rel_engine = struct
  type db = Rdb.t
  type state = (string * Row.t list) list
  (** open cursors, innermost first: (source relation, pending rows) *)

  type dml = Rel_dml.t

  let initial_state _ = []
  let cursor_depth state = List.length state

  let exec db state ~env stmt =
    match stmt with
    | Rel_dml.Exec s -> (
        match Sql.exec ~env db s with
        | Ok (db, _rows) -> (db, state, [], Status.Ok)
        | Error status -> (db, state, [], status))
    | Rel_dml.Open q ->
        let rows = Sql.run_query ~env db q in
        (db, (q.Sql.from_, rows) :: state, [], Status.Ok)
    | Rel_dml.Fetch -> (
        match state with
        | [] -> (db, state, [], Status.No_currency)
        | (rel, []) :: rest -> (db, (rel, []) :: rest, [], Status.End_of_set)
        | (rel, row :: more) :: rest ->
            let updates =
              List.map
                (fun (f, v) -> (rel ^ "." ^ f, v))
                (Row.to_list row)
            in
            (db, (rel, more) :: rest, updates, Status.Ok))
    | Rel_dml.Close -> (
        match state with
        | [] -> (db, state, [], Status.No_currency)
        | _ :: rest -> (db, rest, [], Status.Ok))
end

module Hier_engine = struct
  type db = Hdb.t
  type state = Hinterp.position
  type dml = Ccv_hier.Hdml.t

  let initial_state _ = Hinterp.initial_position

  let exec db state ~env stmt =
    let o = Hinterp.exec db state ~env stmt in
    (o.Hinterp.db, o.Hinterp.pos, o.Hinterp.updates, o.Hinterp.status)
end

module Net_run = Host.Run (Net_engine)
module Rel_run = Host.Run (Rel_engine)
module Hier_run = Host.Run (Hier_engine)

module Net_compile = Ccv_plan.Host_compiler.Make (Net_engine)
module Rel_compile = Ccv_plan.Host_compiler.Make (Rel_engine)
module Hier_compile = Ccv_plan.Host_compiler.Make (Hier_engine)

type program =
  | Net_program of Ccv_network.Dml.t Host.program
  | Rel_program of Rel_dml.t Host.program
  | Hier_program of Ccv_hier.Hdml.t Host.program

type database =
  | Net_db of Ndb.t
  | Rel_db of Rdb.t
  | Hier_db of Hdb.t

type run_result = {
  trace : Io_trace.t;
  steps : int;
  hit_limit : bool;
  accesses : int;
  final_db : database;
}

let run ?input ?max_steps db program =
  match db, program with
  | Net_db db, Net_program p ->
      let counters = Ndb.counters db in
      let before = Counters.total counters in
      let r = Net_run.run ?input ?max_steps db p in
      { trace = r.Net_run.trace;
        steps = r.Net_run.steps;
        hit_limit = r.Net_run.hit_limit;
        accesses = Counters.total counters - before;
        final_db = Net_db r.Net_run.db;
      }
  | Rel_db db, Rel_program p ->
      let counters = Rdb.counters db in
      let before = Counters.total counters in
      let r = Rel_run.run ?input ?max_steps db p in
      { trace = r.Rel_run.trace;
        steps = r.Rel_run.steps;
        hit_limit = r.Rel_run.hit_limit;
        accesses = Counters.total counters - before;
        final_db = Rel_db r.Rel_run.db;
      }
  | Hier_db db, Hier_program p ->
      let counters = Hdb.counters db in
      let before = Counters.total counters in
      let r = Hier_run.run ?input ?max_steps db p in
      { trace = r.Hier_run.trace;
        steps = r.Hier_run.steps;
        hit_limit = r.Hier_run.hit_limit;
        accesses = Counters.total counters - before;
        final_db = Hier_db r.Hier_run.db;
      }
  | (Net_db _ | Rel_db _ | Hier_db _), _ ->
      invalid_arg "Engines.run: database and program models differ"

type compiled_program =
  | Net_compiled of Net_compile.t
  | Rel_compiled of Rel_compile.t
  | Hier_compiled of Hier_compile.t

let compile = function
  | Net_program p -> Net_compiled (Net_compile.compile p)
  | Rel_program p -> Rel_compiled (Rel_compile.compile p)
  | Hier_program p -> Hier_compiled (Hier_compile.compile p)

let run_compiled ?input ?max_steps db program =
  match db, program with
  | Net_db db, Net_compiled c ->
      let counters = Ndb.counters db in
      let before = Counters.total counters in
      let r = Net_compile.run ?input ?max_steps db c in
      { trace = r.Net_compile.trace;
        steps = r.Net_compile.steps;
        hit_limit = r.Net_compile.hit_limit;
        accesses = Counters.total counters - before;
        final_db = Net_db r.Net_compile.db;
      }
  | Rel_db db, Rel_compiled c ->
      let counters = Rdb.counters db in
      let before = Counters.total counters in
      let r = Rel_compile.run ?input ?max_steps db c in
      { trace = r.Rel_compile.trace;
        steps = r.Rel_compile.steps;
        hit_limit = r.Rel_compile.hit_limit;
        accesses = Counters.total counters - before;
        final_db = Rel_db r.Rel_compile.db;
      }
  | Hier_db db, Hier_compiled c ->
      let counters = Hdb.counters db in
      let before = Counters.total counters in
      let r = Hier_compile.run ?input ?max_steps db c in
      { trace = r.Hier_compile.trace;
        steps = r.Hier_compile.steps;
        hit_limit = r.Hier_compile.hit_limit;
        accesses = Counters.total counters - before;
        final_db = Hier_db r.Hier_compile.db;
      }
  | (Net_db _ | Rel_db _ | Hier_db _), _ ->
      invalid_arg "Engines.run_compiled: database and program models differ"

(* Statistics snapshot of a host instance, shaped by the semantic
   schema: entity counts by record type / relation (realizations keep
   the semantic names), link counts where the association has a
   standalone realization (relation or link record).  Set-realized
   associations have no standalone occurrence to count, and the
   hierarchical store keeps no per-segment count maps — those names
   are simply absent, which the drift metric ignores for links.
   Counter-silent throughout: observing statistics must not perturb
   the access counts the benchmarks report. *)
let observed_stats semantic db =
  let module Semantic = Ccv_model.Semantic in
  match db with
  | Net_db db ->
      let counts = Ndb.type_counts db in
      let count_of name =
        Option.value (List.assoc_opt (Field.canon name) counts) ~default:0
      in
      Ccv_plan.Stats.of_counts
        ~entities:
          (List.map
             (fun (e : Semantic.entity) -> (e.ename, count_of e.ename))
             semantic.Semantic.entities)
        ~links:
          (List.filter_map
             (fun (a : Semantic.assoc) ->
               Option.map
                 (fun n -> (Field.canon a.aname, n))
                 (List.assoc_opt (Field.canon a.aname) counts))
             semantic.Semantic.assocs)
  | Rel_db db ->
      let cards = Rdb.cardinalities db in
      let find name =
        List.find_map
          (fun (n, c) -> if Field.name_equal n name then Some c else None)
          cards
      in
      Ccv_plan.Stats.of_counts
        ~entities:
          (List.map
             (fun (e : Semantic.entity) ->
               (e.ename, Option.value (find e.ename) ~default:0))
             semantic.Semantic.entities)
        ~links:
          (List.filter_map
             (fun (a : Semantic.assoc) ->
               Option.map
                 (fun n -> (Field.canon a.aname, n))
                 (find a.aname))
             semantic.Semantic.assocs)
  | Hier_db _ -> Ccv_plan.Stats.empty

let program_size = function
  | Net_program p -> Host.size p
  | Rel_program p -> Host.size p
  | Hier_program p -> Host.size p

let pp_program ppf = function
  | Net_program p -> Host.pp ~dml:Ccv_network.Dml.pp ppf p
  | Rel_program p -> Host.pp ~dml:Rel_dml.pp ppf p
  | Hier_program p -> Host.pp ~dml:Ccv_hier.Hdml.pp ppf p
