(** The Optimizer of Figure 4.1: "the target program's representation
    is further processed by an optimizer which refines the
    representation, improving access paths, algorithms, and data
    handling" (§5.4 ties this to access-path selection).

    Abstract-level rewrites implemented:
    - {b qualification pushdown}: a host IF guard over one access
      target's fields folds back into that step's qualification, so
      the engine prunes during the scan instead of after it;
    - {b redundant navigation removal}: a trailing hop to a 1:N total
      association partner whose bindings nobody reads (often left
      behind by a Collapse conversion) disappears;
    - {b dead move elimination}: consecutive MOVEs to the same
      variable keep only the last;
    - {b empty-branch pruning}: an IF with two empty branches and a
      pure condition disappears;
    - {b common-prefix sharing}: consecutive loops opening with the
      same two access-pattern steps compute that prefix once, when the
      prefix provably yields at most one context and the first loop
      cannot perturb the second's view of it (the rewrite behind the
      LN002 lint);
    - {b selectivity ordering} (with [?stats]): hoisted equality
      conjuncts are ordered most selective first under the statistics
      snapshot, so the evaluator's probe convention (first eligible
      conjunct) picks the cheapest index.

    Each rewrite is logged for the conversion report. *)

open Ccv_abstract
open Ccv_model

val optimize :
  ?stats:Ccv_plan.Stats.t -> Semantic.t -> Aprog.t -> Aprog.t * string list

val drop_redundant_hop :
  Semantic.t -> Apattern.t -> used:string list ->
  Apattern.t option
(** A trailing 1:N total-association partner hop whose bindings nobody
    in [used] reads can be removed; [Some query'] is the query without
    it.  Exposed for the analyzer's dead-step lint. *)

val vars_read : Aprog.astmt list -> string list
(** Variables read anywhere in a statement list (including query
    qualifications). *)
