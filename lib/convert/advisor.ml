open Ccv_common
open Ccv_model
open Ccv_abstract

type suggestion = { severity : [ `Advice | `Suspicion ]; message : string }

let pp_suggestion ppf s =
  Fmt.pf ppf "[%s] %s"
    (match s.severity with `Advice -> "advice" | `Suspicion -> "suspicion")
    s.message

let prefix_of x =
  match String.index_opt x '.' with
  | Some i -> Some (String.sub x 0 i)
  | None -> None

(* Does an association's attribute or key field carry the same name on
   both linked fields?  Heuristic for "related in application terms":
   the linking fields correspond to an association endpoint key. *)
let through_suggestions schema query =
  List.filter_map
    (fun step ->
      match step with
      | Apattern.Through { target; source; link = tf, sf; _ } -> (
          match Semantic.assoc_between schema source target with
          | Some a ->
              Some
                { severity = `Advice;
                  message =
                    Fmt.str
                      "ACCESS %s via %s through (%s,%s): association %s \
                       already relates these entities — use its access path"
                      target source tf sf a.aname;
                }
          | None ->
              (* no declared relationship: suspicious unless both
                 fields are keys of their entities *)
              let is_key ename f =
                match Semantic.find_entity schema ename with
                | Some e -> List.exists (Field.name_equal f) e.key
                | None -> false
              in
              if is_key target tf || is_key source sf then None
              else
                Some
                  { severity = `Suspicion;
                    message =
                      Fmt.str
                        "ACCESS %s via %s through (%s,%s): the schema \
                         declares no relationship between these entities — \
                         the fields may not be related in application terms"
                        target source tf sf;
                  })
      | Apattern.Self _ | Apattern.Assoc_via _ | Apattern.Via_assoc _ -> None)
    query

(* A FIRST whose access can deliver several instances (non-key
   qualification, or navigation through the many side). *)
let first_suggestion schema query =
  match query with
  | [ Apattern.Self { target; qual } ] -> (
      match Semantic.find_entity schema target with
      | Some e ->
          let bound_keys =
            List.filter
              (fun k ->
                List.exists
                  (fun c ->
                    match Cond.as_field_eq_const c with
                    | Some (f, _) -> Field.name_equal f k
                    | None -> (
                        match c with
                        | Cond.Cmp (Cond.Eq, Cond.Field f, Cond.Var _)
                        | Cond.Cmp (Cond.Eq, Cond.Var _, Cond.Field f) ->
                            Field.name_equal f k
                        | _ -> false))
                  (Cond.split_conjuncts qual))
              e.key
          in
          if List.length bound_keys = List.length e.key then []
          else
            [ { severity = `Suspicion;
                message =
                  Fmt.str
                    "FIRST over %s with a non-key qualification: several \
                     instances may match — did the program mean to process \
                     all of them? (§3.2 order dependence)"
                    target;
              };
            ]
      | None -> [])
  | _ ->
      [ { severity = `Suspicion;
          message =
            "FIRST over a multi-step access sequence processes one of \
             possibly many contexts";
        };
      ]

(* Equality conjuncts whose compiled access path is still a scan:
   advise the concrete index call.  Rides the plan layer, so the
   advice names exactly the steps {!Ccv_plan.Compile} would execute as
   scans — and agrees with the LN003 lint, which walks the same
   plans. *)
let eq_conjunct_field c =
  match c with
  | Cond.Cmp (Cond.Eq, Cond.Field f, (Cond.Const _ | Cond.Var _))
  | Cond.Cmp (Cond.Eq, (Cond.Const _ | Cond.Var _), Cond.Field f) -> Some f
  | _ -> None

(* With [stats] the advice is observational, not structural: the plan
   is costed under the snapshot, the message carries the observed
   cardinalities, and cold scans are not advised at all — a scan over a
   handful of instances beats index maintenance, and a field with one
   distinct value gains nothing from a probe. *)
let hot_scan_floor = 16

let index_suggestions ?stats schema query =
  let plan = Ccv_plan.Plan.of_query ?stats schema query in
  List.rev
    (Ccv_plan.Plan.fold_steps
       (fun acc (st : Ccv_plan.Plan.step) ->
         match st.access with
         | Ccv_plan.Plan.Indexed_probe _ | Ccv_plan.Plan.Link_traverse _
         | Ccv_plan.Plan.Key_lookup -> acc
         | Ccv_plan.Plan.Extent_scan | Ccv_plan.Plan.Assoc_scan _ -> (
             match List.find_map eq_conjunct_field st.conjuncts with
             | Some f -> (
                 let target = Symbol.name st.target in
                 let advise detail =
                   { severity = `Advice;
                     message =
                       Fmt.str
                         "equality on %s.%s is served by a scan%s — declare \
                          the index (Sdb.ensure_index db %S %S) and the \
                          access becomes an indexed probe"
                         target f detail target f;
                   }
                   :: acc
                 in
                 match stats with
                 | None -> advise ""
                 | Some st -> (
                     let count =
                       Option.value ~default:0
                         (Ccv_plan.Stats.entity_count st target)
                     in
                     match Ccv_plan.Stats.field_stat st target f with
                     | Some fs when count >= hot_scan_floor && fs.distinct >= 2
                       ->
                         advise
                           (Fmt.str
                              " over %d stored instance(s) (%d distinct \
                               value(s), largest bucket %d)"
                              count fs.distinct fs.max_bucket)
                     | None when count >= hot_scan_floor ->
                         advise
                           (Fmt.str " over %d stored instance(s)" count)
                     | Some _ | None -> acc))
             | None -> acc))
       [] plan)

(* Steps whose bindings the program never reads. *)
let overshoot_suggestions _schema p =
  let used = Rules.qualified_vars p in
  let used_prefixes = List.filter_map prefix_of used in
  List.concat_map
    (fun query ->
      match List.rev query with
      | last :: _ :: _ ->
          let name = Apattern.target_of last in
          if
            Cond.equal (Apattern.qual_of last) Cond.True
            && not (List.exists (Field.name_equal name) used_prefixes)
          then
            [ { severity = `Advice;
                message =
                  Fmt.str
                    "the final access to %s binds values the program never \
                     reads — the navigation may be unnecessary"
                    name;
              };
            ]
          else []
      | _ -> [])
    (Aprog.queries p)

module F = Traverse.Fold (Traverse.Unit_env)

let review schema (p : Aprog.t) =
  (* Statement-order fold on the traversal kit: every query contributes
     its THROUGH suggestions, a FIRST additionally contributes its
     multiple-match suspicion before its query's. *)
  let folder =
    { F.default with
      F.query =
        (fun _ () acc q ->
          acc @ through_suggestions schema q @ index_suggestions schema q);
      F.stmt =
        (fun self () acc s ->
          match s with
          | Aprog.First { query; _ } ->
              Some (F.children self () (acc @ first_suggestion schema query) s)
          | _ -> None);
    }
  in
  F.program folder () [] p @ overshoot_suggestions schema p
