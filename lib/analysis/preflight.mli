(** Refusal prediction without rewriting: classifies a
    (program, schema-change chain) pair using the predicate functions
    the conversion engine itself raises from. *)

open Ccv_common
open Ccv_model
open Ccv_abstract
open Ccv_transform

type verdict =
  | Convertible
  | Refused of { at : int; op : Schema_change.op; diagnostic : Diagnostic.t }
      (** [at] is the 0-based index of the refusing op in the chain. *)

val predict_op :
  Semantic.t -> Schema_change.op -> Aprog.t -> Diagnostic.t option
(** = [Rules.preflight_op]: the single-op static verdict.  [None] iff
    [Rules.convert_d] succeeds on the pair. *)

val classify : Semantic.t -> Schema_change.op list -> Aprog.t -> verdict
(** Chain verdict.  Ops whose preflight passes advance the program and
    schema through the engine so later ops are judged in context; a
    rewrite that would refuse is never executed. *)

val pp_verdict : Format.formatter -> verdict -> unit
