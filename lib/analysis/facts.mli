(** Constraint-inference pass: integrity constraints the program's
    shape implies, as Info diagnostics — FA001 key-lookup uniqueness,
    FA002 guarded creation, FA003 connectivity assumed by association
    navigation, FA004 required connection on INSERT. *)

open Ccv_common
open Ccv_model
open Ccv_abstract

val infer : Semantic.t -> Aprog.t -> Diagnostic.t list
(** Deduplicated, in program order. *)
