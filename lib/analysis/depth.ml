(* Navigation-depth / demand-closure pass.

   Live migration faults in a request's demand closure before
   dual-running it, and [Migrate.merge_batch] expands that closure
   through exactly two association hops.  This pass computes a
   program's maximum association-hop depth statically, so the cap
   becomes an admission-time verdict: programs within the cap are
   admitted with proof, deeper ones are refused up front with the
   offending access path named (AD001) — instead of failing with a
   generic serving-time error mid-migration. *)

open Ccv_common
open Ccv_abstract

let default_cap = 2
(* = the two [expand] rounds in Migrate.merge_batch; keep in sync. *)

(* Association hops in one access sequence: a paired
   [Assoc_via A; Via_assoc via A] crosses one association, an unpaired
   association step also crosses one.  SELF and THROUGH steps stay on
   already-reached records. *)
let hops_of_query q =
  let rec go n = function
    | [] -> n
    | Apattern.Assoc_via _ :: Apattern.Via_assoc _ :: rest -> go (n + 1) rest
    | (Apattern.Assoc_via _ | Apattern.Via_assoc _) :: rest -> go (n + 1) rest
    | (Apattern.Self _ | Apattern.Through _) :: rest -> go n rest
  in
  go 0 q

let render_path q = String.concat " -> " (Apattern.names_of q)

(* The deepest query, with its hop count. *)
let deepest p =
  Traverse.fold_queries
    (fun acc q ->
      let h = hops_of_query q in
      match acc with
      | Some (best, _) when best >= h -> acc
      | _ -> Some (h, q))
    None p

let max_hops p = match deepest p with None -> 0 | Some (h, _) -> h

let check ?(cap = default_cap) p =
  match deepest p with
  | Some (h, q) when h > cap ->
      Error
        (Diagnostic.errf ~code:"AD001" ~path:(render_path q)
           "navigation depth %d exceeds the %d-hop demand closure: access \
            path %s cannot be faulted in during live migration"
           h cap (render_path q))
  | _ -> Ok ()
