(** Navigation-depth / demand-closure pass: maximum association-hop
    depth per program, checked against the live-migration demand cap. *)

open Ccv_common
open Ccv_abstract

val default_cap : int
(** The hop depth [Migrate.merge_batch] expands a request's demand
    closure through (2). *)

val hops_of_query : Apattern.t -> int
(** Association crossings in one access sequence: a paired
    [Assoc_via; Via_assoc] counts once, an unpaired association step
    counts once, SELF/THROUGH count zero. *)

val max_hops : Aprog.t -> int

val deepest : Aprog.t -> (int * Apattern.t) option
(** The deepest query with its hop count ([None] on a query-free
    program). *)

val render_path : Apattern.t -> string
(** ["A -> B -> C"], the targets of the sequence. *)

val check : ?cap:int -> Aprog.t -> (unit, Diagnostic.t) result
(** [Error d] (code AD001, [d.path] = the offending access path) when
    the program navigates deeper than [cap] (default
    {!default_cap}). *)
