(* Constraint-inference pass: integrity constraints embedded in
   program text, surfaced as Info diagnostics (the paper's §5.1 point
   that "constraints embedded in programs" are the hard part of
   conversion — here we at least extract the ones the program's shape
   implies):

     FA001  key-lookup uniqueness — a FIRST over one entity whose
            qualification pins every key field assumes at most one
            match (key uniqueness).
     FA002  guarded creation — the FIRST/absent-INSERT idiom enforces
            uniqueness of the inserted entity at creation time.
     FA003  connectivity — association navigation assumes source
            records are connected through the association.
     FA004  required connection — an INSERT that always connects
            through an association treats membership as total. *)

open Ccv_common
open Ccv_model
open Ccv_abstract

module F = Traverse.Fold (Traverse.Unit_env)

let key_pinned schema ename qual =
  match Semantic.find_entity schema ename with
  | None -> false
  | Some e ->
      e.key <> []
      && List.for_all
           (fun k ->
             List.exists
               (fun c ->
                 match c with
                 | Cond.Cmp (Cond.Eq, Cond.Field f, (Cond.Const _ | Cond.Var _))
                 | Cond.Cmp (Cond.Eq, (Cond.Const _ | Cond.Var _), Cond.Field f)
                   ->
                     Field.name_equal f k
                 | _ -> false)
               (Cond.split_conjuncts qual))
           e.key

let dedupe ds =
  let rec go seen = function
    | [] -> List.rev seen
    | (d : Diagnostic.t) :: rest ->
        if
          List.exists
            (fun (d' : Diagnostic.t) ->
              String.equal d.code d'.code && String.equal d.message d'.message)
            seen
        then go seen rest
        else go (d :: seen) rest
  in
  go [] ds

let infer schema p =
  let folder =
    { F.default with
      F.step =
        (fun self () acc s ->
          let acc =
            match s with
            | Apattern.Assoc_via { assoc; source; _ } ->
                Diagnostic.inferf ~code:"FA003" ~entity:assoc
                  "navigation from %s through %s assumes the records are \
                   connected (connectivity)"
                  source assoc
                :: acc
            | _ -> acc
          in
          F.default.F.step self () acc s);
      F.stmt =
        (fun self () acc s ->
          match s with
          | Aprog.First
              { query = [ Apattern.Self { target; qual } ]; present = _; absent }
            ->
              let acc =
                if
                  List.exists
                    (function Aprog.Insert { entity; _ } -> Field.name_equal entity target | _ -> false)
                    absent
                then
                  Diagnostic.inferf ~code:"FA002" ~entity:target
                    "the FIRST/absent-INSERT idiom enforces uniqueness of %s \
                     at creation time (guarded creation)"
                    target
                  :: acc
                else acc
              in
              let acc =
                if key_pinned schema target qual then
                  Diagnostic.inferf ~code:"FA001" ~entity:target
                    "FIRST over %s pins its full key: the program assumes key \
                     uniqueness"
                    target
                  :: acc
                else acc
              in
              Some (F.children self () acc s)
          | Aprog.Insert { entity; connects; _ } when connects <> [] ->
              Some
                (F.children self ()
                   (List.fold_left
                      (fun acc (an, _) ->
                        Diagnostic.inferf ~code:"FA004" ~entity:an
                          "INSERT %s always connects through %s: the program \
                           treats membership as required (total association)"
                          entity an
                        :: acc)
                      acc connects)
                   s)
          | _ -> None);
    }
  in
  dedupe (List.rev (F.program folder () [] p))
