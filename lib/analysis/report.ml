(* One program's full static-analysis report: refusal-prediction
   verdict for an optional schema-change chain, navigation depth vs.
   the demand cap, lints, and inferred facts — renderable as text or
   JSON (hand-rolled; the repo carries no JSON dependency). *)

open Ccv_common
open Ccv_abstract
open Ccv_transform

type t = {
  program : string;
  verdict : Preflight.verdict;
  max_hops : int;
  depth : Diagnostic.t option;  (** AD001 when over the cap *)
  lints : Diagnostic.t list;
  facts : Diagnostic.t list;
}

let analyze ?(cap = Depth.default_cap) ?(ops = []) schema (p : Aprog.t) =
  { program = p.Aprog.name;
    verdict = Preflight.classify schema ops p;
    max_hops = Depth.max_hops p;
    depth = (match Depth.check ~cap p with Ok () -> None | Error d -> Some d);
    lints = Lint.all schema p;
    facts = Facts.infer schema p;
  }

let diagnostics r =
  (match r.verdict with
  | Preflight.Convertible -> []
  | Preflight.Refused { diagnostic; _ } -> [ diagnostic ])
  @ (match r.depth with None -> [] | Some d -> [ d ])
  @ r.lints @ r.facts

let errors r =
  List.filter
    (fun (d : Diagnostic.t) -> d.severity = Diagnostic.Error)
    (diagnostics r)

let refused r =
  match (r.verdict, r.depth) with
  | Preflight.Refused _, _ | _, Some _ -> true
  | Preflight.Convertible, None -> false

let to_json r =
  let verdict_json =
    match r.verdict with
    | Preflight.Convertible -> "\"convertible\""
    | Preflight.Refused { at; op; diagnostic } ->
        Printf.sprintf "{\"refused_at\":%d,\"op\":\"%s\",\"diagnostic\":%s}" at
          (Diagnostic.json_escape (Fmt.str "%a" Schema_change.pp_op op))
          (Diagnostic.to_json diagnostic)
  in
  let list ds = String.concat "," (List.map Diagnostic.to_json ds) in
  Printf.sprintf
    "{\"program\":\"%s\",\"verdict\":%s,\"max_hops\":%d,\"depth\":%s,\"lints\":[%s],\"facts\":[%s]}"
    (Diagnostic.json_escape r.program)
    verdict_json r.max_hops
    (match r.depth with None -> "null" | Some d -> Diagnostic.to_json d)
    (list r.lints) (list r.facts)

let pp ppf r =
  Fmt.pf ppf "@[<v>program %s: %a (max hops %d)" r.program Preflight.pp_verdict
    r.verdict r.max_hops;
  List.iter
    (fun d -> Fmt.pf ppf "@,  %a" Diagnostic.pp d)
    ((match r.depth with None -> [] | Some d -> [ d ]) @ r.lints @ r.facts);
  Fmt.pf ppf "@]"
