(* Lint passes over abstract programs, emitted as structured
   diagnostics with stable codes:

     LN001  dead abstract step (warning) — a trailing partner hop
            binds values the program never reads; the optimizer's
            [drop_redundant_hop] predicate decides, so the lint flags
            exactly the hops the optimizer would remove.
     LN002  common subpattern (info) — an access-path prefix of two or
            more steps evaluated by several queries.
     LN003  index-eligible conjunct not reaching an index (warning) —
            an equality conjunct on a step whose compiled access path
            is still a scan. *)

open Ccv_common
open Ccv_abstract
open Ccv_convert

let dead_steps schema p =
  let used = Rules.qualified_vars p in
  List.rev
    (Traverse.fold_queries
       (fun acc q ->
         match Optimizer.drop_redundant_hop schema q ~used with
         | Some _ ->
             Diagnostic.warnf ~code:"LN001" ~path:(Depth.render_path q)
               ~entity:(Apattern.result_of q)
               "trailing access to %s binds values the program never reads \
                (dead abstract step)"
               (Apattern.result_of q)
             :: acc
         | None -> acc)
       [] p)

let eq_prefix a b = Apattern.equal a b

let common_subpatterns p =
  let queries = List.rev (Traverse.fold_queries (fun acc q -> q :: acc) [] p) in
  let prefixes =
    List.filter_map
      (function a :: b :: _ -> Some [ a; b ] | _ -> None)
      queries
  in
  let rec distinct acc = function
    | [] -> List.rev acc
    | pfx :: rest ->
        if List.exists (eq_prefix pfx) acc then distinct acc rest
        else distinct (pfx :: acc) rest
  in
  List.filter_map
    (fun pfx ->
      let n = List.length (List.filter (eq_prefix pfx) prefixes) in
      if n >= 2 then
        Some
          (Diagnostic.inferf ~code:"LN002" ~path:(Depth.render_path pfx)
             "access-path prefix %s is evaluated %d times — a shared binding \
              could evaluate it once"
             (Depth.render_path pfx) n)
      else None)
    (distinct [] prefixes)

let eq_conjunct_field c =
  match c with
  | Cond.Cmp (Cond.Eq, Cond.Field f, (Cond.Const _ | Cond.Var _))
  | Cond.Cmp (Cond.Eq, (Cond.Const _ | Cond.Var _), Cond.Field f) -> Some f
  | _ -> None

let unindexed_eq schema p =
  List.rev
    (Traverse.fold_queries
       (fun acc q ->
         let plan = Ccv_plan.Plan.of_query schema q in
         Ccv_plan.Plan.fold_steps
           (fun acc (st : Ccv_plan.Plan.step) ->
             match st.access with
             | Ccv_plan.Plan.Indexed_probe _ | Ccv_plan.Plan.Link_traverse _
             | Ccv_plan.Plan.Key_lookup -> acc
             | Ccv_plan.Plan.Extent_scan | Ccv_plan.Plan.Assoc_scan _ -> (
                 match List.find_map eq_conjunct_field st.conjuncts with
                 | Some f ->
                     let target = Symbol.name st.target in
                     Diagnostic.warnf ~code:"LN003" ~entity:target ~field:f
                       ~path:(Depth.render_path q)
                       "equality on %s.%s does not reach an index — the \
                        compiled access path is still a scan (declare it: \
                        Sdb.ensure_index db %S %S)"
                       target f target f
                     :: acc
                 | None -> acc))
           acc plan)
       [] p)

let all schema p =
  dead_steps schema p @ common_subpatterns p @ unindexed_eq schema p
