(* Refusal prediction: classify a (program, schema-change chain) pair
   Convertible / Refused without executing the rewrites.

   The per-op verdict is [Rules.preflight_op], which shares its
   predicate functions with the rewrite engine itself, so the two
   agree by construction (the differential test in test_analysis
   enforces this over generated corpora: zero false-accepts, zero
   false-refusals).

   For a multi-op chain, later ops must be judged against the program
   and schema as earlier ops leave them, so once an op's preflight
   passes we advance through the engine — the chain verdict is still
   delivered without ever *running* a rewrite that would refuse. *)

open Ccv_common
open Ccv_transform
open Ccv_convert

type verdict =
  | Convertible
  | Refused of { at : int; op : Schema_change.op; diagnostic : Diagnostic.t }

let predict_op = Rules.preflight_op

let classify schema ops p =
  let rec go schema p i = function
    | [] -> Convertible
    | op :: rest -> (
        match Rules.preflight_op schema op p with
        | Some d -> Refused { at = i; op; diagnostic = d }
        | None -> (
            match Rules.convert_d schema op p with
            | Error d ->
                (* unreachable when the shared predicates are complete;
                   kept so a predicate gap can never produce a
                   false-accept *)
                Refused { at = i; op; diagnostic = d }
            | Ok (p', _) -> (
                match Schema_change.apply schema op with
                | Error e ->
                    Refused
                      { at = i;
                        op;
                        diagnostic = Diagnostic.errf ~code:"CV016" "%s" e;
                      }
                | Ok schema' -> go schema' p' (i + 1) rest)))
  in
  go schema p 0 ops

let pp_verdict ppf = function
  | Convertible -> Fmt.string ppf "convertible"
  | Refused { at; op; diagnostic } ->
      Fmt.pf ppf "refused at op %d (%a): %a" at Schema_change.pp_op op
        Diagnostic.pp diagnostic
