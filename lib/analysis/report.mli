(** Assembled static-analysis report for one program. *)

open Ccv_common
open Ccv_model
open Ccv_abstract

type t = {
  program : string;
  verdict : Preflight.verdict;
  max_hops : int;
  depth : Diagnostic.t option;
  lints : Diagnostic.t list;
  facts : Diagnostic.t list;
}

val analyze : ?cap:int -> ?ops:Ccv_transform.Schema_change.op list ->
  Semantic.t -> Aprog.t -> t
(** Runs every pass: refusal prediction over [ops] (default none),
    depth vs. [cap] (default {!Depth.default_cap}), lints, facts. *)

val diagnostics : t -> Diagnostic.t list
(** All diagnostics, refusal first. *)

val errors : t -> Diagnostic.t list
(** Only the [Error]-severity ones. *)

val refused : t -> bool
(** A conversion refusal was predicted or the depth cap is exceeded. *)

val to_json : t -> string
val pp : Format.formatter -> t -> unit
