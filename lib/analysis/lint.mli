(** Lint passes: dead abstract steps (LN001, warning), common
    subpatterns (LN002, info), index-eligible equality conjuncts not
    reaching an index (LN003, warning). *)

open Ccv_common
open Ccv_model
open Ccv_abstract

val dead_steps : Semantic.t -> Aprog.t -> Diagnostic.t list
(** Flags exactly the trailing hops [Optimizer.drop_redundant_hop]
    would remove. *)

val common_subpatterns : Aprog.t -> Diagnostic.t list
(** Access-path prefixes (two or more steps) evaluated by at least two
    queries. *)

val unindexed_eq : Semantic.t -> Aprog.t -> Diagnostic.t list
(** Equality conjuncts on steps whose compiled plan access is still a
    scan. *)

val all : Semantic.t -> Aprog.t -> Diagnostic.t list
