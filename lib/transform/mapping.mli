(** Realization of a semantic schema in each concrete 1979 data model,
    with data loaders in both directions.

    This is the keystone the paper's framework turns on: the semantic
    model is the "intermediate form ... used as the target for the
    decompilation process and the source of a compilation process"
    (section 3.1), so each entity/association must have a concrete
    realization per model:

    - {b relational}: entity → relation; association → relation holding
      both keys plus attributes (Figure 3.1a).
    - {b network}: entity → record type with a CALC key and a
      SYSTEM-owned singular set (the Maryland ALL-DIV device);
      attribute-free 1:N association → owner-coupled set (selection BY
      VALUE of the owner key); association with attributes or M:N →
      link record owned through two sets (Figure 3.1b's
      COURSE'S-OFFERING / SEMESTER'S-OFFERING shape).
    - {b hierarchical}: a total attribute-free 1:N association →
      physical parent-child; every other association → a link segment
      under the left entity carrying the right key and the attributes.

    Restrictions (checked, [Invalid_argument] otherwise): network and
    hierarchical realizations need single-field entity keys. *)

open Ccv_common
open Ccv_model
module Rschema = Ccv_relational.Rschema
module Rdb = Ccv_relational.Rdb
module Nschema = Ccv_network.Nschema
module Ndb = Ccv_network.Ndb
module Hschema = Ccv_hier.Hschema
module Hdb = Ccv_hier.Hdb

type target_model = Rel | Net | Hier

type assoc_real =
  | Assoc_relation of string
  | Assoc_set of { set : string; member_fields : string list }
      (** [member_fields]: the member-side fields (stored or virtual)
          carrying the owner key, aligned with the owner's key fields;
          used for BY VALUE selection *)
  | Assoc_link_record of { record : string; left_set : string; right_set : string }
  | Assoc_parent_child
  | Assoc_link_segment of string

type t = {
  model : target_model;
  semantic : Semantic.t;
  assoc_reals : (string * assoc_real) list;
}

val assoc_real : t -> string -> assoc_real

(** [None] when the name is not an association (e.g. an entity). *)
val assoc_real_opt : t -> string -> assoc_real option

(** Singular-set name for an entity in the network realization. *)
val singular_set : string -> string

val pp_model : Format.formatter -> target_model -> unit
val pp : Format.formatter -> t -> unit

(** Schema derivation. *)

val derive_relational : Semantic.t -> t * Rschema.t
val derive_network : Semantic.t -> t * Nschema.t
val derive_hier : Semantic.t -> t * Hschema.t

(** Entities in an order where every total-association owner precedes
    its members (load order). *)
val load_order : Semantic.t -> Semantic.entity list

(** Data loaders (semantic instance → concrete instance). *)

val load_relational : Rschema.t -> Sdb.t -> Rdb.t
val load_network : t -> Nschema.t -> Sdb.t -> Ndb.t
val load_hier : t -> Hschema.t -> Sdb.t -> Hdb.t

(** Incremental loading for live migration: a [loader] keeps a host
    replica plus the semantic-key → database-key index across merges,
    so batches of records can be appended as they are translated
    (fault-in and backfill) instead of bulk-loading the whole instance
    up front.  The bulk loaders above are [loader_add ~strict:true]
    over every row and link. *)

type loader

val loader_relational : Semantic.t -> Rschema.t -> loader
val loader_network : t -> Nschema.t -> loader
val loader_hier : t -> Hschema.t -> loader

(** [loader_add loader ~rows ~links] merges the given rows (by entity)
    and links (by association) into the replica, in {!load_order};
    member rows are seeded for BY VALUE set selection from the links
    provided in the same call, so a row's owning link must ride with
    it.  Returns warnings for records or links it could not place
    (e.g. an endpoint concurrently deleted); with [strict:true] those
    raise [Invalid_argument] instead, the historical bulk behaviour. *)
val loader_add :
  ?strict:bool -> loader ->
  rows:(string * Row.t list) list ->
  links:(string * Sdb.link list) list -> string list

(** The replica under the loader; [Invalid_argument] on a model
    mismatch.  The setters push back a replica that advanced outside
    the loader (dual-applied writes during serving) so later merges
    append to the current state. *)

val loader_rdb : loader -> Rdb.t
val loader_ndb : loader -> Ndb.t
val loader_hdb : loader -> Hdb.t
val loader_set_rdb : loader -> Rdb.t -> unit
val loader_set_ndb : loader -> Ndb.t -> unit
val loader_set_hdb : loader -> Hdb.t -> unit

(** Extractors (concrete instance → semantic instance); with the
    loaders these give round-trip data translation between any two
    models. *)

val extract_relational : Semantic.t -> Rdb.t -> Sdb.t
val extract_network : t -> Ndb.t -> Sdb.t
val extract_hier : t -> Hdb.t -> Sdb.t
