open Ccv_common
open Ccv_model
module Rschema = Ccv_relational.Rschema
module Rdb = Ccv_relational.Rdb
module Nschema = Ccv_network.Nschema
module Ndb = Ccv_network.Ndb
module Hschema = Ccv_hier.Hschema
module Hdb = Ccv_hier.Hdb

type target_model = Rel | Net | Hier

type assoc_real =
  | Assoc_relation of string
  | Assoc_set of { set : string; member_fields : string list }
  | Assoc_link_record of { record : string; left_set : string; right_set : string }
  | Assoc_parent_child
  | Assoc_link_segment of string

type t = {
  model : target_model;
  semantic : Semantic.t;
  assoc_reals : (string * assoc_real) list;
}

let assoc_real_opt t aname = List.assoc_opt (Field.canon aname) t.assoc_reals

let assoc_real t aname =
  match assoc_real_opt t aname with
  | Some r -> r
  | None -> invalid_arg (Fmt.str "Mapping: unknown association %s" aname)

let singular_set ename = "ALL-" ^ Field.canon ename

let pp_model ppf = function
  | Rel -> Fmt.string ppf "relational"
  | Net -> Fmt.string ppf "network"
  | Hier -> Fmt.string ppf "hierarchical"

let pp_real ppf = function
  | Assoc_relation r -> Fmt.pf ppf "relation %s" r
  | Assoc_set { set; member_fields } ->
      Fmt.pf ppf "set %s (selection via %s)" set
        (String.concat ", " member_fields)
  | Assoc_link_record { record; left_set; right_set } ->
      Fmt.pf ppf "link record %s (sets %s, %s)" record left_set right_set
  | Assoc_parent_child -> Fmt.string ppf "parent-child"
  | Assoc_link_segment s -> Fmt.pf ppf "link segment %s" s

let pp ppf t =
  Fmt.pf ppf "@[<v>model: %a@ %a@]" pp_model t.model
    (Fmt.list (fun ppf (a, r) -> Fmt.pf ppf "%s -> %a" a pp_real r))
    t.assoc_reals

(* Helpers over the semantic schema. *)

let single_key (e : Semantic.entity) =
  match e.key with
  | [ k ] -> k
  | _ ->
      invalid_arg
        (Fmt.str "Mapping: entity %s needs a single-field key for this model"
           e.ename)

let key_field_decl (e : Semantic.entity) k =
  match Field.find e.fields k with
  | Some f -> f
  | None -> invalid_arg (Fmt.str "Mapping: %s has no key field %s" e.ename k)

let is_characterizing schema (a : Semantic.assoc) =
  let right = Semantic.find_entity_exn schema a.right in
  match right.kind with
  | Semantic.Characterizing owner -> Field.name_equal owner a.left
  | Semantic.Defined -> false

let is_total schema (a : Semantic.assoc) =
  is_characterizing schema a
  || List.exists
       (function
         | Semantic.Total_right x -> Field.name_equal x a.aname
         | Semantic.Total_left _ | Semantic.Participation_limit _
         | Semantic.Field_not_null _ -> false)
       schema.Semantic.constraints

(* An association realizable as a plain owner-coupled set / physical
   parent-child: 1:N with no attributes of its own. *)
let is_simple (a : Semantic.assoc) =
  a.card = Semantic.One_to_many && a.fields = []

(* ------------------------------------------------------------------ *)
(* Relational realization                                              *)

let assoc_rel_fields schema (a : Semantic.assoc) =
  let le = Semantic.find_entity_exn schema a.left in
  let re = Semantic.find_entity_exn schema a.right in
  (* Dedup by name: an interposed entity's key embeds its owner's key
     fields, which must appear once in the association relation. *)
  let keys =
    List.fold_left
      (fun acc (f : Field.t) ->
        if List.exists (fun (g : Field.t) -> Field.name_equal g.name f.name) acc
        then acc
        else acc @ [ f ])
      []
      (List.map (key_field_decl le) le.key @ List.map (key_field_decl re) re.key)
  in
  (keys @ a.fields, List.map (fun (f : Field.t) -> f.name) keys)

let derive_relational schema =
  let entity_rels =
    List.map
      (fun (e : Semantic.entity) ->
        Rschema.rel_decl e.ename e.fields ~key:e.key)
      schema.Semantic.entities
  in
  let assoc_rels =
    List.map
      (fun (a : Semantic.assoc) ->
        let fields, key = assoc_rel_fields schema a in
        Rschema.rel_decl a.aname fields ~key)
      schema.Semantic.assocs
  in
  let mapping =
    { model = Rel;
      semantic = schema;
      assoc_reals =
        List.map
          (fun (a : Semantic.assoc) -> (a.aname, Assoc_relation a.aname))
          schema.Semantic.assocs;
    }
  in
  (mapping, Rschema.make (entity_rels @ assoc_rels))

(* ------------------------------------------------------------------ *)
(* Network realization                                                 *)

let derive_network schema =
  let reals =
    List.map
      (fun (a : Semantic.assoc) ->
        if is_simple a then
          let le = Semantic.find_entity_exn schema a.left in
          (* Member fields carrying the owner key have the owner key
             field names (stored if the member already declares them,
             virtual otherwise). *)
          (a.aname, Assoc_set { set = a.aname; member_fields = le.key })
        else
          ( a.aname,
            Assoc_link_record
              { record = a.aname;
                left_set = Field.canon a.left ^ "-" ^ Field.canon a.aname;
                right_set = Field.canon a.right ^ "-" ^ Field.canon a.aname;
              } ))
      schema.Semantic.assocs
  in
  let real_of aname = List.assoc (Field.canon aname) reals in
  let record_of_entity (e : Semantic.entity) =
    (* A virtual field per owner-key field of each simple association
       in which this entity is the member and does not itself store
       that field. *)
    let virtuals =
      List.concat_map
        (fun (a : Semantic.assoc) ->
          match real_of a.aname with
          | Assoc_set { set; member_fields }
            when Field.name_equal a.right e.ename ->
              let le = Semantic.find_entity_exn schema a.left in
              List.filter_map
                (fun mfield ->
                  if Field.mem e.fields mfield then None
                  else
                    let lkey = key_field_decl le mfield in
                    Some
                      { Nschema.vname = mfield;
                        vty = lkey.ty;
                        via_set = set;
                        source_field = lkey.name;
                      })
                member_fields
          | Assoc_set _ | Assoc_relation _ | Assoc_link_record _
          | Assoc_parent_child | Assoc_link_segment _ -> [])
        (Semantic.assocs_of schema e.ename)
    in
    Nschema.record_decl ~virtuals ~calc_key:e.key e.ename e.fields
  in
  let link_records =
    List.filter_map
      (fun (a : Semantic.assoc) ->
        match real_of a.aname with
        | Assoc_link_record { record; _ } ->
            let fields, key = assoc_rel_fields schema a in
            Some (Nschema.record_decl ~calc_key:key record fields)
        | Assoc_set _ | Assoc_relation _ | Assoc_parent_child
        | Assoc_link_segment _ -> None)
      schema.Semantic.assocs
  in
  let singular_sets =
    List.map
      (fun (e : Semantic.entity) ->
        Nschema.set_decl ~insertion:Nschema.Automatic ~retention:Nschema.Fixed
          ~name:(singular_set e.ename) ~owner:Nschema.System ~member:e.ename ())
      schema.Semantic.entities
  in
  let assoc_sets =
    List.concat_map
      (fun (a : Semantic.assoc) ->
        match real_of a.aname with
        | Assoc_set { set; member_fields } ->
            let le = Semantic.find_entity_exn schema a.left in
            let total = is_total schema a in
            [ Nschema.set_decl
                ~insertion:(if total then Nschema.Automatic else Nschema.Manual)
                ~retention:
                  (if is_characterizing schema a then Nschema.Fixed
                   else if total then Nschema.Mandatory
                   else Nschema.Optional)
                ~selection:(Nschema.By_value (List.combine le.key member_fields))
                ~name:set ~owner:(Nschema.Owner_record a.left) ~member:a.right
                ()
            ]
        | Assoc_link_record { record; left_set; right_set } ->
            let le = Semantic.find_entity_exn schema a.left in
            let re = Semantic.find_entity_exn schema a.right in
            let self_pairs (e : Semantic.entity) =
              List.map (fun k -> (k, k)) e.key
            in
            [ Nschema.set_decl ~insertion:Nschema.Automatic
                ~retention:Nschema.Fixed
                ~selection:(Nschema.By_value (self_pairs le))
                ~name:left_set ~owner:(Nschema.Owner_record a.left)
                ~member:record ();
              Nschema.set_decl ~insertion:Nschema.Automatic
                ~retention:Nschema.Fixed
                ~selection:(Nschema.By_value (self_pairs re))
                ~name:right_set ~owner:(Nschema.Owner_record a.right)
                ~member:record ();
            ]
        | Assoc_relation _ | Assoc_parent_child | Assoc_link_segment _ -> [])
      schema.Semantic.assocs
  in
  let records =
    List.map record_of_entity schema.Semantic.entities @ link_records
  in
  let mapping = { model = Net; semantic = schema; assoc_reals = reals } in
  (mapping, Nschema.make records (singular_sets @ assoc_sets))

(* ------------------------------------------------------------------ *)
(* Hierarchical realization                                            *)

(* The (first) simple total association under which an entity hangs as
   a physical child. *)
let hier_parent_assoc schema (e : Semantic.entity) =
  List.find_opt
    (fun (a : Semantic.assoc) ->
      Field.name_equal a.right e.ename && is_simple a && is_total schema a
      && not (Field.name_equal a.left e.ename))
    schema.Semantic.assocs

let derive_hier schema =
  let reals =
    List.map
      (fun (a : Semantic.assoc) ->
        let re = Semantic.find_entity_exn schema a.right in
        match hier_parent_assoc schema re with
        | Some pa when Field.name_equal pa.aname a.aname ->
            (a.aname, Assoc_parent_child)
        | Some _ | None -> (a.aname, Assoc_link_segment (Field.canon a.aname)))
      schema.Semantic.assocs
  in
  let real_of aname = List.assoc (Field.canon aname) reals in
  let entity_segs =
    List.map
      (fun (e : Semantic.entity) ->
        let parent =
          Option.map
            (fun (a : Semantic.assoc) -> a.left)
            (hier_parent_assoc schema e)
        in
        Hschema.seg_decl ?parent e.ename e.fields)
      schema.Semantic.entities
  in
  let link_segs =
    List.filter_map
      (fun (a : Semantic.assoc) ->
        match real_of a.aname with
        | Assoc_link_segment seg ->
            let re = Semantic.find_entity_exn schema a.right in
            let rkey = key_field_decl re (single_key re) in
            Some (Hschema.seg_decl ~parent:a.left seg (rkey :: a.fields))
        | Assoc_parent_child | Assoc_relation _ | Assoc_set _
        | Assoc_link_record _ -> None)
      schema.Semantic.assocs
  in
  let mapping = { model = Hier; semantic = schema; assoc_reals = reals } in
  (mapping, Hschema.make (entity_segs @ link_segs))

(* ------------------------------------------------------------------ *)
(* Load order: owners of total simple associations first.              *)

let load_order schema =
  let entities = schema.Semantic.entities in
  let depends_on (e : Semantic.entity) =
    List.filter_map
      (fun (a : Semantic.assoc) ->
        if Field.name_equal a.right e.ename && is_total schema a
           && not (Field.name_equal a.left e.ename)
        then Some (Field.canon a.left)
        else None)
      (Semantic.assocs_of schema e.ename)
  in
  let rec go placed pending fuel =
    if fuel = 0 then
      invalid_arg "Mapping.load_order: cyclic total associations"
    else
      match pending with
      | [] -> List.rev placed
      | _ ->
          let ready, blocked =
            List.partition
              (fun e ->
                List.for_all
                  (fun dep ->
                    List.exists
                      (fun (p : Semantic.entity) -> Field.name_equal p.ename dep)
                      placed)
                  (depends_on e))
              pending
          in
          if ready = [] then
            invalid_arg "Mapping.load_order: cyclic total associations"
          else go (List.rev ready @ placed) blocked (fuel - 1)
  in
  go [] entities (List.length entities + 1)

(* ------------------------------------------------------------------ *)
(* Incremental loading.

   A [loader] keeps a host replica plus the semantic-key -> database-key
   index the network and hierarchical models need across merges, so
   records can be fed in batches (live migration's lazy fault-in and
   backfill) instead of one bulk pass.  [loader_add] over every row and
   link of an instance is exactly the bulk load; the [load_*] entry
   points below are wrappers over it with [strict:true], which restores
   their historical [invalid_arg] behaviour.  Lenient mode (the
   default) instead skips a record or link it cannot place and reports
   it as a warning — during a live migration an endpoint can legally be
   gone by the time a link merges (a dual-applied cascade deleted
   it). *)

type loader =
  | Lrel of { lsem : Semantic.t; mutable rdb : Rdb.t }
  | Lnet of {
      nmap : t;
      mutable ndb : Ndb.t;
      nindex : (string * string, int) Hashtbl.t;
    }
  | Lhier of {
      hmap : t;
      mutable hdb : Hdb.t;
      hindex : (string * string, int) Hashtbl.t;
    }

let key_repr key = String.concat "|" (List.map Value.show key)

let loader_relational schema rschema =
  Lrel { lsem = schema; rdb = Rdb.create rschema }

let loader_network map nschema =
  Lnet { nmap = map; ndb = Ndb.create nschema; nindex = Hashtbl.create 64 }

let loader_hier map hschema =
  Lhier { hmap = map; hdb = Hdb.create hschema; hindex = Hashtbl.create 64 }

let loader_rdb = function
  | Lrel l -> l.rdb
  | Lnet _ | Lhier _ -> invalid_arg "Mapping.loader_rdb: not relational"

let loader_ndb = function
  | Lnet l -> l.ndb
  | Lrel _ | Lhier _ -> invalid_arg "Mapping.loader_ndb: not network"

let loader_hdb = function
  | Lhier l -> l.hdb
  | Lrel _ | Lnet _ -> invalid_arg "Mapping.loader_hdb: not hierarchical"

let loader_set_rdb loader db =
  match loader with
  | Lrel l -> l.rdb <- db
  | Lnet _ | Lhier _ -> invalid_arg "Mapping.loader_set_rdb: not relational"

let loader_set_ndb loader db =
  match loader with
  | Lnet l -> l.ndb <- db
  | Lrel _ | Lhier _ -> invalid_arg "Mapping.loader_set_ndb: not network"

let loader_set_hdb loader db =
  match loader with
  | Lhier l -> l.hdb <- db
  | Lrel _ | Lnet _ -> invalid_arg "Mapping.loader_set_hdb: not hierarchical"

let loader_add ?(strict = false) loader ~rows ~links =
  let warnings = ref [] in
  let warn fmt = Fmt.kstr (fun s -> warnings := s :: !warnings) fmt in
  let rows_for (e : Semantic.entity) =
    List.concat_map
      (fun (en, rs) -> if Field.name_equal en e.ename then rs else [])
      rows
  in
  let links_for (a : Semantic.assoc) =
    List.concat_map
      (fun (an, ls) -> if Field.name_equal an a.aname then ls else [])
      links
  in
  (match loader with
  | Lrel l ->
      let schema = l.lsem in
      List.iter
        (fun (e : Semantic.entity) ->
          match rows_for e with
          | [] -> ()
          | rs -> l.rdb <- Rdb.load l.rdb e.ename rs)
        schema.Semantic.entities;
      List.iter
        (fun (a : Semantic.assoc) ->
          match links_for a with
          | [] -> ()
          | ls ->
              l.rdb <-
                Rdb.load l.rdb a.aname
                  (List.map (fun lk -> Sdb.link_row schema a lk) ls))
        schema.Semantic.assocs
  | Lnet l ->
      let map = l.nmap in
      let schema = map.semantic in
      let store rtype row k =
        match Ndb.store l.ndb rtype row with
        | Ok (db, key) ->
            l.ndb <- db;
            k key
        | Error s ->
            if strict then
              invalid_arg
                (Fmt.str "Mapping.load_network %s: %a" rtype Status.pp s)
            else warn "load_network %s: %a (skipped)" rtype Status.pp s
      in
      (* Seed rows of member entities with the owner-key value so that
         AUTOMATIC BY VALUE selection finds the right occurrence; the
         owner key comes from the links provided alongside the rows. *)
      let seed_for (e : Semantic.entity) row =
        List.fold_left
          (fun row (a : Semantic.assoc) ->
            match assoc_real map a.aname with
            | Assoc_set { member_fields; _ }
              when Field.name_equal a.right e.ename && is_total schema a ->
                let rkey = Sdb.key_of e row in
                let owner_key =
                  List.fold_left
                    (fun acc (lk : Sdb.link) ->
                      if List.compare Value.compare lk.rkey rkey = 0 then
                        Some lk.lkey
                      else acc)
                    None (links_for a)
                in
                (match owner_key with
                | Some lkey ->
                    List.fold_left2
                      (fun row mfield v ->
                        if Row.mem row mfield then row else Row.set row mfield v)
                      row member_fields lkey
                | None -> row)
            | Assoc_set _ | Assoc_relation _ | Assoc_link_record _
            | Assoc_parent_child | Assoc_link_segment _ -> row)
          row
          (Semantic.assocs_of schema e.ename)
      in
      List.iter
        (fun (e : Semantic.entity) ->
          List.iter
            (fun row ->
              store e.ename (seed_for e row) (fun key ->
                  Hashtbl.replace l.nindex
                    (Field.canon e.ename, key_repr (Sdb.key_of e row))
                    key))
            (rows_for e))
        (load_order schema);
      List.iter
        (fun (a : Semantic.assoc) ->
          match links_for a with
          | [] -> ()
          | ls -> (
              match assoc_real map a.aname with
              | Assoc_set { set; _ } when not (is_total schema a) ->
                  (* MANUAL membership: CONNECT each link. *)
                  List.iter
                    (fun (lk : Sdb.link) ->
                      let owner =
                        Hashtbl.find_opt l.nindex
                          (Field.canon a.left, key_repr lk.lkey)
                      and member =
                        Hashtbl.find_opt l.nindex
                          (Field.canon a.right, key_repr lk.rkey)
                      in
                      match (owner, member) with
                      | Some owner, Some member -> (
                          match Ndb.connect l.ndb ~set ~member ~owner with
                          | Ok db' -> l.ndb <- db'
                          | Error s ->
                              if strict then
                                invalid_arg
                                  (Fmt.str "Mapping.load_network connect %s: %a"
                                     set Status.pp s)
                              else
                                warn "load_network connect %s: %a (skipped)" set
                                  Status.pp s)
                      | _ ->
                          if strict then
                            invalid_arg
                              (Fmt.str
                                 "Mapping.load_network connect %s: missing \
                                  endpoint"
                                 set)
                          else
                            warn "load_network connect %s: missing endpoint %s \
                                  (skipped)"
                              set
                              (key_repr (lk.lkey @ lk.rkey)))
                    ls
              | Assoc_set _ -> ()
              | Assoc_link_record { record; _ } ->
                  List.iter
                    (fun lk ->
                      let row = Sdb.link_row schema a lk in
                      store record row (fun _ -> ()))
                    ls
              | Assoc_relation _ | Assoc_parent_child | Assoc_link_segment _ ->
                  invalid_arg "Mapping.load_network: non-network realization"))
        schema.Semantic.assocs
  | Lhier l ->
      let map = l.hmap in
      let schema = map.semantic in
      let insert parent stype row k =
        match Hdb.insert l.hdb ~parent stype row with
        | Ok (db, key) ->
            l.hdb <- db;
            k key
        | Error s ->
            if strict then
              invalid_arg
                (Fmt.str "Mapping.load_hier %s: %a" stype Status.pp s)
            else warn "load_hier %s: %a (skipped)" stype Status.pp s
      in
      List.iter
        (fun (e : Semantic.entity) ->
          let parent_assoc = hier_parent_assoc schema e in
          List.iter
            (fun row ->
              let rkey = Sdb.key_of e row in
              let parent =
                match parent_assoc with
                | None -> Some None
                | Some a -> (
                    let link =
                      List.find_opt
                        (fun (lk : Sdb.link) ->
                          List.compare Value.compare lk.rkey rkey = 0)
                        (links_for a)
                    in
                    match link with
                    | Some lk -> (
                        match
                          Hashtbl.find_opt l.hindex
                            (Field.canon a.left, key_repr lk.lkey)
                        with
                        | Some p -> Some (Some p)
                        | None ->
                            if strict then
                              invalid_arg
                                (Fmt.str
                                   "Mapping.load_hier: %s instance has no \
                                    parent"
                                   e.ename)
                            else begin
                              warn "load_hier %s: parent %s not loaded \
                                    (skipped)"
                                e.ename (key_repr lk.lkey);
                              None
                            end)
                    | None ->
                        if strict then
                          invalid_arg
                            (Fmt.str
                               "Mapping.load_hier: %s instance has no parent"
                               e.ename)
                        else begin
                          warn "load_hier %s %s: no parent link (skipped)"
                            e.ename (key_repr rkey);
                          None
                        end)
              in
              match parent with
              | None -> ()
              | Some parent ->
                  insert parent e.ename row (fun key ->
                      Hashtbl.replace l.hindex
                        (Field.canon e.ename, key_repr rkey)
                        key))
            (rows_for e))
        (load_order schema);
      List.iter
        (fun (a : Semantic.assoc) ->
          match links_for a with
          | [] -> ()
          | ls -> (
              match assoc_real map a.aname with
              | Assoc_parent_child -> ()
              | Assoc_link_segment seg ->
                  let re = Semantic.find_entity_exn schema a.right in
                  let rkey_field = single_key re in
                  List.iter
                    (fun (lk : Sdb.link) ->
                      match
                        Hashtbl.find_opt l.hindex
                          (Field.canon a.left, key_repr lk.lkey)
                      with
                      | Some parent ->
                          let row =
                            Row.of_list
                              ((rkey_field, List.hd lk.rkey)
                              :: Row.to_list lk.attrs)
                          in
                          insert (Some parent) seg row (fun _ -> ())
                      | None ->
                          if strict then
                            raise Not_found
                          else
                            warn "load_hier segment %s: parent %s not loaded \
                                  (skipped)"
                              seg (key_repr lk.lkey))
                    ls
              | Assoc_relation _ | Assoc_set _ | Assoc_link_record _ ->
                  invalid_arg "Mapping.load_hier: non-hierarchical realization"))
        schema.Semantic.assocs);
  List.rev !warnings

let all_rows_links sdb =
  let schema = Sdb.schema sdb in
  ( List.map
      (fun (e : Semantic.entity) -> (e.ename, Sdb.rows_silent sdb e.ename))
      schema.Semantic.entities,
    List.map
      (fun (a : Semantic.assoc) -> (a.aname, Sdb.links_silent sdb a.aname))
      schema.Semantic.assocs )

(* ------------------------------------------------------------------ *)
(* Relational load / extract                                           *)

let load_relational rschema sdb =
  let loader = loader_relational (Sdb.schema sdb) rschema in
  let rows, links = all_rows_links sdb in
  ignore (loader_add ~strict:true loader ~rows ~links);
  loader_rdb loader

let extract_relational schema rdb =
  let sdb = Sdb.create schema in
  let sdb =
    List.fold_left
      (fun sdb (e : Semantic.entity) ->
        List.fold_left
          (fun sdb row -> Sdb.insert_entity_exn sdb e.ename row)
          sdb
          (Rdb.rows_silent rdb e.ename))
      sdb (load_order schema)
  in
  List.fold_left
    (fun sdb (a : Semantic.assoc) ->
      let le = Semantic.find_entity_exn schema a.left in
      let re = Semantic.find_entity_exn schema a.right in
      List.fold_left
        (fun sdb row ->
          let pick keys = List.map (fun k -> Row.get_exn row k) keys in
          Sdb.link_exn
            ~attrs:(Row.project row (Field.names a.fields))
            sdb a.aname ~left:(pick le.key) ~right:(pick re.key))
        sdb
        (Rdb.rows_silent rdb a.aname))
    sdb schema.Semantic.assocs

(* ------------------------------------------------------------------ *)
(* Network load / extract                                              *)

let load_network mapping nschema sdb =
  let loader = loader_network mapping nschema in
  let rows, links = all_rows_links sdb in
  ignore (loader_add ~strict:true loader ~rows ~links);
  loader_ndb loader

let extract_network mapping ndb =
  let schema = mapping.semantic in
  let sdb = ref (Sdb.create schema) in
  List.iter
    (fun (e : Semantic.entity) ->
      List.iter
        (fun key ->
          match Ndb.view_silent ndb key with
          | Some row ->
              let row = Row.project row (Field.names e.fields) in
              sdb := Sdb.insert_entity_exn !sdb e.ename row
          | None -> ())
        (Ndb.all_keys_silent ndb e.ename))
    (load_order schema);
  List.iter
    (fun (a : Semantic.assoc) ->
      let le = Semantic.find_entity_exn schema a.left in
      let re = Semantic.find_entity_exn schema a.right in
      match assoc_real mapping a.aname with
      | Assoc_set { set; _ } ->
          List.iter
            (fun (owner, members) ->
              match Ndb.view_silent ndb owner with
              | None -> ()
              | Some orow ->
                  let left = List.map (fun k -> Row.get_exn orow k) le.key in
                  List.iter
                    (fun m ->
                      match Ndb.view_silent ndb m with
                      | Some mrow ->
                          let right =
                            List.map (fun k -> Row.get_exn mrow k) re.key
                          in
                          sdb := Sdb.link_exn !sdb a.aname ~left ~right
                      | None -> ())
                    members)
            (Ndb.occurrences ndb set)
      | Assoc_link_record { record; _ } ->
          List.iter
            (fun key ->
              match Ndb.view_silent ndb key with
              | Some row ->
                  let pick keys = List.map (fun k -> Row.get_exn row k) keys in
                  sdb :=
                    Sdb.link_exn
                      ~attrs:(Row.project row (Field.names a.fields))
                      !sdb a.aname ~left:(pick le.key) ~right:(pick re.key)
              | None -> ())
            (Ndb.all_keys_silent ndb record)
      | Assoc_relation _ | Assoc_parent_child | Assoc_link_segment _ ->
          invalid_arg "Mapping.extract_network: non-network realization")
    schema.Semantic.assocs;
  !sdb

(* ------------------------------------------------------------------ *)
(* Hierarchical load / extract                                         *)

let load_hier mapping hschema sdb =
  let loader = loader_hier mapping hschema in
  let rows, links = all_rows_links sdb in
  ignore (loader_add ~strict:true loader ~rows ~links);
  loader_hdb loader

let extract_hier mapping hdb =
  let schema = mapping.semantic in
  let sdb = ref (Sdb.create schema) in
  let nodes_of stype =
    List.filter
      (fun k ->
        match Hdb.stype_of hdb k with
        | Some t -> Field.name_equal t stype
        | None -> false)
      (Hdb.hierarchic_sequence_silent hdb)
  in
  List.iter
    (fun (e : Semantic.entity) ->
      List.iter
        (fun k ->
          match Hdb.get_silent hdb k with
          | Some (_, row) -> sdb := Sdb.insert_entity_exn !sdb e.ename row
          | None -> ())
        (nodes_of e.ename))
    (load_order schema);
  let key_of_node (e : Semantic.entity) k =
    match Hdb.get_silent hdb k with
    | Some (_, row) -> Some (Sdb.key_of e row)
    | None -> None
  in
  List.iter
    (fun (a : Semantic.assoc) ->
      let le = Semantic.find_entity_exn schema a.left in
      let re = Semantic.find_entity_exn schema a.right in
      match assoc_real mapping a.aname with
      | Assoc_parent_child ->
          List.iter
            (fun k ->
              match Hdb.parent_of hdb k with
              | Some p -> (
                  match key_of_node le p, key_of_node re k with
                  | Some left, Some right ->
                      sdb := Sdb.link_exn !sdb a.aname ~left ~right
                  | _, _ -> ())
              | None -> ())
            (nodes_of re.ename)
      | Assoc_link_segment seg ->
          let rkey_field = single_key re in
          List.iter
            (fun k ->
              match Hdb.get_silent hdb k, Hdb.parent_of hdb k with
              | Some (_, row), Some p -> (
                  match key_of_node le p with
                  | Some left ->
                      sdb :=
                        Sdb.link_exn
                          ~attrs:(Row.project row (Field.names a.fields))
                          !sdb a.aname ~left
                          ~right:[ Row.get_exn row rkey_field ]
                  | None -> ())
              | _, _ -> ())
            (nodes_of seg)
      | Assoc_relation _ | Assoc_set _ | Assoc_link_record _ ->
          invalid_arg "Mapping.extract_hier: non-hierarchical realization")
    schema.Semantic.assocs;
  !sdb
