open Ccv_common
open Ccv_model

(* Chunked parallel map: stage bulk row/link rewriting on a worker
   pool when one is supplied (replica preparation for a many-shard
   service hands the serving pool down here).  [Workpool.map_list]
   preserves input order and falls back to inline execution when the
   caller is itself a pool worker, so translation behaves identically
   with and without the pool — only the wall clock changes.  The
   working slots are capped at the hardware domain count: translation
   is pure CPU, and striding it over more slots than the host has
   cores runs slower than sequential (BENCH_PR5 measured 0.31x with 8
   pool slots on a smaller host). *)
(* Rendered-key identity for hashing: [Value.show] is how migrate and
   the loaders spell key equality, and structural Hashtbl equality on
   raw values would diverge from [Value.compare]'s numeric coercions. *)
let key_repr key = String.concat "|" (List.map Value.show key)

let pmap ?pool f xs =
  match pool with
  | Some p when Workpool.size p > 1 ->
      Workpool.map_list ~max_workers:(Domain.recommended_domain_count ()) p f
        xs
  | Some _ | None -> List.map f xs

(* Rebuild an instance under a new schema through a per-entity row
   rewriter and a per-assoc link rewriter.  Row and link computation is
   staged per entity/assoc (in parallel under [pool]); the
   constraint-checked inserts stay sequential because every insert
   threads the persistent instance.  Elements the new schema's
   declarative constraints reject are dropped with a warning — the
   paper's "conversion when not all information is preserved" caveat
   surfaces here instead of crashing the translation. *)
let rebuild ?pool ~old_db ~new_schema ~entity_rows ~assoc_links () =
  let staged_rows =
    pmap ?pool
      (fun (e : Semantic.entity) -> (e, entity_rows e))
      new_schema.Semantic.entities
  in
  let staged_links =
    pmap ?pool
      (fun (a : Semantic.assoc) -> (a, assoc_links a))
      new_schema.Semantic.assocs
  in
  let db = ref (Sdb.create new_schema) in
  let dropped = ref [] in
  List.iter
    (fun ((e : Semantic.entity), rows) ->
      let db', rejected = Sdb.insert_all !db e.ename rows in
      db := db';
      List.iter
        (fun (row, s) ->
          dropped :=
            Fmt.str "%s %a dropped: %a" e.ename Row.pp row Status.pp s
            :: !dropped)
        rejected)
    staged_rows;
  List.iter
    (fun ((a : Semantic.assoc), links) ->
      let db', rejected = Sdb.link_all !db a.aname links in
      db := db';
      List.iter
        (fun s ->
          dropped :=
            Fmt.str "%s link dropped: %a" a.aname Status.pp s :: !dropped)
        rejected)
    staged_links;
  ignore old_db;
  (!db, List.rev !dropped)

let same_links old_db (a : Semantic.assoc) =
  List.map
    (fun (l : Sdb.link) -> (l.lkey, l.rkey, l.attrs))
    (Sdb.links_silent old_db a.aname)

let translate ?pool db op =
  let old_schema = Sdb.schema db in
  match Schema_change.apply old_schema op with
  | Error msg -> Error msg
  | Ok new_schema -> (
      let keep_rows (e : Semantic.entity) = Sdb.rows_silent db e.ename in
      let keep_links (a : Semantic.assoc) = same_links db a in
      match op with
      | Schema_change.Add_constraint _ ->
          let db', dropped =
            rebuild ?pool ~old_db:db ~new_schema ~entity_rows:keep_rows
              ~assoc_links:keep_links ()
          in
          Ok (db', dropped @ Sdb.validate db')
      | Schema_change.Drop_constraint _ | Schema_change.Widen_cardinality _ ->
          Ok
            (rebuild ?pool ~old_db:db ~new_schema ~entity_rows:keep_rows
               ~assoc_links:keep_links ())
      | Schema_change.Rename_entity { from_; to_ } ->
          let entity_rows (e : Semantic.entity) =
            let source = if Field.name_equal e.ename to_ then from_ else e.ename in
            Sdb.rows_silent db source
          in
          Ok
            (rebuild ?pool ~old_db:db ~new_schema ~entity_rows
               ~assoc_links:keep_links ())
      | Schema_change.Rename_field { entity; from_; to_ } ->
          let entity_rows (e : Semantic.entity) =
            let rows = Sdb.rows_silent db e.ename in
            if Field.name_equal e.ename entity then
              List.map (fun r -> Row.rename r ~from_ ~to_) rows
            else rows
          in
          Ok
            (rebuild ?pool ~old_db:db ~new_schema ~entity_rows
               ~assoc_links:keep_links ())
      | Schema_change.Rename_assoc { from_; to_ } ->
          let assoc_links (a : Semantic.assoc) =
            let source = if Field.name_equal a.aname to_ then from_ else a.aname in
            List.map
              (fun (l : Sdb.link) -> (l.lkey, l.rkey, l.attrs))
              (Sdb.links_silent db source)
          in
          Ok
            (rebuild ?pool ~old_db:db ~new_schema ~entity_rows:keep_rows
               ~assoc_links ())
      | Schema_change.Add_field { entity; field; default } ->
          let entity_rows (e : Semantic.entity) =
            let rows = Sdb.rows_silent db e.ename in
            if Field.name_equal e.ename entity then
              List.map (fun r -> Row.set r field.Field.name default) rows
            else rows
          in
          Ok
            (rebuild ?pool ~old_db:db ~new_schema ~entity_rows
               ~assoc_links:keep_links ())
      | Schema_change.Drop_field { entity; field } ->
          let entity_rows (e : Semantic.entity) =
            let rows = Sdb.rows_silent db e.ename in
            if Field.name_equal e.ename entity then
              List.map (fun r -> Row.remove r field) rows
            else rows
          in
          let db', dropped =
            rebuild ?pool ~old_db:db ~new_schema ~entity_rows
              ~assoc_links:keep_links ()
          in
          Ok
            ( db',
              Fmt.str "values of %s.%s are not preserved" entity field
              :: dropped )
      | Schema_change.Restrict_extension { entity; qual } ->
          let removed = ref 0 in
          let entity_rows (e : Semantic.entity) =
            let rows = Sdb.rows_silent db e.ename in
            if Field.name_equal e.ename entity then
              List.filter
                (fun r ->
                  let drop = Cond.eval ~env:Cond.no_env r qual in
                  if drop then incr removed;
                  not drop)
                rows
            else rows
          in
          (* Links touching dropped instances fail the endpoint check
             in [rebuild] and are reported as dropped. *)
          let db', dropped =
            rebuild ?pool ~old_db:db ~new_schema ~entity_rows
              ~assoc_links:keep_links ()
          in
          Ok
            ( db',
              Fmt.str "%d %s instance(s) removed during conversion" !removed
                entity
              :: dropped )
      | Schema_change.Interpose
          { through; new_entity; group_by; left_assoc; right_assoc } ->
          let a = Semantic.find_assoc_exn old_schema through in
          let owner = Semantic.find_entity_exn old_schema a.left in
          let member = Semantic.find_entity_exn old_schema a.right in
          let links = Sdb.links_silent db through in
          let warnings = ref [] in
          (* Owner key + grouped values for each linked member. *)
          let n_key_of (l : Sdb.link) =
            match Sdb.find_entity db member.ename l.rkey with
            | None -> None
            | Some mrow ->
                Some
                  ( l.lkey,
                    List.map
                      (fun g ->
                        Option.value (Row.get mrow g) ~default:Value.Null)
                      group_by )
          in
          (* the per-link owner/group lookups are the bulk of the
             interposition; stage them chunked on the pool, then dedup
             sequentially in link order (hashed on the rendered key so
             the dedup is linear in the link count) *)
          let keyed_links = pmap ?pool n_key_of links in
          let n_instances =
            let seen = Hashtbl.create 64 in
            List.rev
              (List.fold_left
                 (fun acc -> function
                   | Some ((okey, gvals) as pair) ->
                       let repr = key_repr okey ^ "||" ^ key_repr gvals in
                       if Hashtbl.mem seen repr then acc
                       else begin
                         Hashtbl.replace seen repr ();
                         pair :: acc
                       end
                   | None -> acc)
                 [] keyed_links)
          in
          let nfields, _ =
            Schema_change.interpose_entity_fields old_schema ~through ~group_by
          in
          let entity_rows (e : Semantic.entity) =
            if Field.name_equal e.ename new_entity then
              List.map
                (fun (okey, gvals) ->
                  Row.of_list
                    (List.combine (Field.names nfields) (okey @ gvals)))
                n_instances
            else if Field.name_equal e.ename member.ename then
              List.map
                (fun r ->
                  List.fold_left (fun r g -> Row.remove r g) r group_by)
                (Sdb.rows_silent db member.ename)
            else Sdb.rows_silent db e.ename
          in
          let linked_rkeys = Hashtbl.create 64 in
          List.iter
            (fun (l : Sdb.link) -> Hashtbl.replace linked_rkeys (key_repr l.rkey) ())
            links;
          List.iter
            (fun mrow ->
              let rkey = Sdb.key_of member mrow in
              if not (Hashtbl.mem linked_rkeys (key_repr rkey)) then
                warnings :=
                  Fmt.str "%s %s: grouped values lost (no %s partner)"
                    member.ename
                    (String.concat "," (List.map Value.show rkey))
                    owner.ename
                  :: !warnings)
            (Sdb.rows_silent db member.ename);
          let assoc_links (a' : Semantic.assoc) =
            if Field.name_equal a'.aname left_assoc then
              List.filter_map
                (fun (okey, gvals) -> Some (okey, okey @ gvals, Row.empty))
                n_instances
            else if Field.name_equal a'.aname right_assoc then
              List.filter_map
                (fun l ->
                  match n_key_of l with
                  | Some (okey, gvals) -> Some (okey @ gvals, l.rkey, Row.empty)
                  | None -> None)
                links
            else same_links db a'
          in
          let db', dropped =
            rebuild ?pool ~old_db:db ~new_schema ~entity_rows ~assoc_links ()
          in
          Ok (db', List.rev !warnings @ dropped)
      | Schema_change.Collapse
          { left_assoc; right_assoc; removed_entity; restored_assoc } ->
          let ra = Semantic.find_assoc_exn old_schema right_assoc in
          let n = Semantic.find_entity_exn old_schema removed_entity in
          let owner = Semantic.find_entity_exn old_schema
              (Semantic.find_assoc_exn old_schema left_assoc).left
          in
          let member = Semantic.find_entity_exn old_schema ra.right in
          let own_fields =
            List.filter
              (fun (f : Field.t) ->
                not (List.exists (Field.name_equal f.name) owner.key))
              n.fields
          in
          let right_links = Sdb.links_silent db right_assoc in
          (* last matching link wins, as the original fold had it;
             hashed on the rendered member key so the per-member lookup
             is O(1) instead of a scan over every right link *)
          let n_key_by_member = Hashtbl.create 64 in
          List.iter
            (fun (l : Sdb.link) ->
              Hashtbl.replace n_key_by_member (key_repr l.rkey) l.lkey)
            right_links;
          let n_of_member rkey =
            match Hashtbl.find_opt n_key_by_member (key_repr rkey) with
            | Some lkey -> Sdb.find_entity db n.ename lkey
            | None -> None
          in
          let entity_rows (e : Semantic.entity) =
            if Field.name_equal e.ename member.ename then
              List.map
                (fun mrow ->
                  match n_of_member (Sdb.key_of member mrow) with
                  | Some nrow ->
                      List.fold_left
                        (fun mrow (f : Field.t) ->
                          Row.set mrow f.name
                            (Option.value (Row.get nrow f.name)
                               ~default:Value.Null))
                        mrow own_fields
                  | None ->
                      List.fold_left
                        (fun mrow (f : Field.t) ->
                          Row.set mrow f.name Value.Null)
                        mrow own_fields)
                (Sdb.rows_silent db member.ename)
            else Sdb.rows_silent db e.ename
          in
          let assoc_links (a' : Semantic.assoc) =
            if Field.name_equal a'.aname restored_assoc then
              (* Compose: member -> N -> owner. *)
              List.filter_map
                (fun (l : Sdb.link) ->
                  match Sdb.find_entity db n.ename l.lkey with
                  | Some nrow ->
                      let okey =
                        List.map
                          (fun k ->
                            Option.value (Row.get nrow k) ~default:Value.Null)
                          owner.key
                      in
                      Some (okey, l.rkey, Row.empty)
                  | None -> None)
                right_links
            else same_links db a'
          in
          Ok (rebuild ?pool ~old_db:db ~new_schema ~entity_rows ~assoc_links ()))

let translate_exn db op =
  match translate db op with
  | Ok (db, _) -> db
  | Error msg -> invalid_arg ("Data_translate.translate_exn: " ^ msg)

let translate_all ?pool db ops =
  List.fold_left
    (fun acc op ->
      Result.bind acc (fun (db, warnings) ->
          Result.map
            (fun (db', w) -> (db', warnings @ w))
            (translate ?pool db op)))
    (Ok (db, [])) ops

(* Record-granular translation for live migration: assemble just the
   given rows and links of [snapshot] into a sub-instance on the same
   schema and push it through the whole op pipeline.  The caller is
   responsible for closure — a row's link partners must ride in the
   same slice when an op computes across them (Interpose groupings,
   Collapse field pulls), otherwise the per-record result can differ
   from bulk translation.  Always sequential: slices are small and the
   callers are themselves pool workers. *)
let translate_slice ~snapshot ~ops ~rows ~links =
  let schema = Sdb.schema snapshot in
  let sub = ref (Sdb.create schema) in
  let insert_err = ref None in
  List.iter
    (fun (ename, rs) ->
      let db', rejected = Sdb.insert_all !sub ename rs in
      sub := db';
      match rejected with
      | (row, s) :: _ when !insert_err = None ->
          insert_err :=
            Some (Fmt.str "slice %s %a: %a" ename Row.pp row Status.pp s)
      | _ -> ())
    rows;
  List.iter
    (fun (aname, ls) ->
      let db', rejected =
        Sdb.link_all !sub aname
          (List.map (fun (l : Sdb.link) -> (l.lkey, l.rkey, l.attrs)) ls)
      in
      sub := db';
      match rejected with
      | s :: _ when !insert_err = None ->
          insert_err := Some (Fmt.str "slice link %s: %a" aname Status.pp s)
      | _ -> ())
    links;
  match !insert_err with
  | Some msg -> Error ("Data_translate.translate_slice: " ^ msg)
  | None -> translate_all !sub ops
