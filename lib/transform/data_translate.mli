(** The data translator: restructure a semantic instance to match a
    schema change (the paper's premise that "transforming the database
    to match the schema can be accomplished with a modest effort" —
    this module is that modest effort, and experiment E8 measures it).

    Translation can emit warnings (e.g. grouped fields of instances
    with no association partner are lost; a newly added constraint is
    violated by existing data).

    [pool] parallelizes the bulk row/link staging (per-entity,
    per-assoc and per-link chunks on a {!Ccv_common.Workpool}); the
    constraint-checked rebuild of the instance stays sequential, so
    the translated database and the warning list are identical with
    and without a pool. *)

open Ccv_model

val translate :
  ?pool:Ccv_common.Workpool.t ->
  Sdb.t -> Schema_change.op -> (Sdb.t * string list, string) result

val translate_exn : Sdb.t -> Schema_change.op -> Sdb.t

val translate_all :
  ?pool:Ccv_common.Workpool.t ->
  Sdb.t -> Schema_change.op list -> (Sdb.t * string list, string) result

(** [translate_slice ~snapshot ~ops ~rows ~links] — record-granular
    translation for live migration: assemble just the given rows (by
    entity) and links (by association) of [snapshot] into a
    sub-instance on the same schema and run the whole [ops] pipeline
    over it.  The caller must close the slice over link partners that
    ops compute across (Interpose groupings, Collapse field pulls);
    always sequential. *)
val translate_slice :
  snapshot:Sdb.t ->
  ops:Schema_change.op list ->
  rows:(string * Ccv_common.Row.t list) list ->
  links:(string * Sdb.link list) list ->
  (Sdb.t * string list, string) result
