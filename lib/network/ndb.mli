(** Network (CODASYL) database instances.

    Records live in an arena addressed by integer database keys;
    owner-coupled set occurrences are ordered member lists per owner.
    Instances are persistent so experiments can snapshot them freely;
    the access counter is shared (it accounts work, not state).

    Currency is deliberately {e not} stored here — it belongs to the
    run unit (see {!Interp}) — so [Ndb] operations that need "current
    of set" take an explicit resolver. *)

open Ccv_common

type t

(** Database key of the SYSTEM record, owner of singular sets. *)
val system_key : int

val create : Nschema.t -> t
val schema : t -> Nschema.t
val counters : t -> Counters.t

(** [get db key] — stored row only; charges one read. *)
val get : t -> int -> (string * Row.t) option

(** [view db key] — stored row extended with virtual fields resolved
    through set ownership (Figure 4.3's [VIRTUAL VIA ... USING ...]);
    charges one read plus one per resolved virtual. *)
val view : t -> int -> Row.t option

(** [view_costed db key] — same resolution as [view], but returns the
    access charge ([1] + one per owner fetched) instead of paying it.
    Scan loops (see {!Interp}) accumulate these and charge once per
    statement, so the totals match [view] while the hot path performs
    one atomic counter update instead of one per record. *)
val view_costed : t -> int -> (Row.t * int) option

val rtype_of : t -> int -> string option

(** Keys of all records of a type, ascending, from the per-type key
    index (no arena fold); charges one read each. *)
val all_keys : t -> string -> int list

(** Silent variants for assertions and printing. *)
val all_keys_silent : t -> string -> int list

val view_silent : t -> int -> Row.t option

(** Cursor support: keys of a type strictly greater than [key], lazily
    and ascending.  FIND NEXT repositions through this instead of
    rescanning the whole type; silent — touched records are charged by
    [view]/[get]. *)
val keys_after : t -> string -> int -> int Seq.t

(** Smallest key of a type, if any; silent. *)
val first_key : t -> string -> int option

(** {2 Equality indexes}

    Opt-in hash-style indexes over stored fields of one record type:
    [(rtype, field) -> value -> keys].  CALC-key fields are indexed
    automatically at [create]; anything else can be added on demand
    with [ensure_index].  Indexes cover stored fields only (never
    virtuals), so set membership changes cannot invalidate them; they
    are maintained through [store]/[modify]/[erase]. *)

(** [ensure_index db ~rtype ~field] builds the index if missing.
    Silently returns [db] unchanged for virtual or unknown fields, so
    callers may request indexes speculatively. *)
val ensure_index : t -> rtype:string -> field:string -> t

val has_index : t -> rtype:string -> field:string -> bool

(** Indexed stored fields of a record type. *)
val indexed_fields : t -> string -> string list

(** [lookup_eq db ~rtype ~field v] — keys whose stored [field] equals
    [v], ascending; [None] when no index exists (fall back to a scan).
    Charges one read for the probe; the records themselves are charged
    when viewed. *)
val lookup_eq : t -> rtype:string -> field:string -> Value.t -> int list option

val lookup_eq_silent :
  t -> rtype:string -> field:string -> Value.t -> int list option

(** Audit all indexes against a raw fold over the record arena;
    returns human-readable inconsistencies (empty = consistent). *)
val verify_indexes : t -> string list

(** {2 Statistics}

    Counts served from the maintained maps, access-counter-silent:
    statistics snapshots must not perturb the workload they observe. *)

(** Per-record-type counts, canonical names ascending; types with no
    stored occurrence are absent. *)
val type_counts : t -> (string * int) list

(** Equality-index bucket sizes of [(rtype, field)], value-ascending;
    [None] when no such index exists. *)
val index_bucket_counts :
  t -> rtype:string -> field:string -> (Ccv_common.Value.t * int) list option

(** [members db ~set ~owner] — ordered member keys; charges one read
    for the occurrence fetch.  Members are charged at consumption
    point (when viewed), not en bloc. *)
val members : t -> set:string -> owner:int -> int list

val members_silent : t -> set:string -> owner:int -> int list

(** [owner_of db ~set ~member] — [None] when disconnected. *)
val owner_of : t -> set:string -> member:int -> int option

(** All occurrences of a set: [(owner_key, member_keys)], including
    empty ones for every record of the owner type. *)
val occurrences : t -> string -> (int * int list) list

(** [store db rtype row] assigns a fresh key and connects the record
    into every AUTOMATIC set it is a member of, using each set's
    selection rule; [resolve_current] supplies "current of set" for
    [By_current] selection.  The input row may carry values for virtual
    fields — they are used for set selection and sort keys, then
    dropped (virtuals are derived, not stored). *)
val store :
  ?resolve_current:(string -> int option) -> t -> string -> Row.t ->
  (t * int, Status.t) result

val connect : t -> set:string -> member:int -> owner:int -> (t, Status.t) result

(** Fails on MANDATORY/FIXED membership, per DBTG. *)
val disconnect : t -> set:string -> member:int -> (t, Status.t) result

(** [modify db key assigns] updates stored fields and repositions the
    record in sorted sets. *)
val modify : t -> int -> (string * Value.t) list -> (t, Status.t) result

type erase_mode =
  | Erase  (** fails if the record owns any non-empty occurrence *)
  | Erase_all
      (** cascades: FIXED/MANDATORY members die, OPTIONAL members are
          disconnected — the §3.1 integrity hazard *)

val erase : t -> erase_mode -> int -> (t, Status.t) result

(** Canonical content dump for db-key-independent comparison:
    per record type the sorted stored rows, per set the sorted
    (owner view, member view) pairs. *)
type dump = {
  record_contents : (string * Row.t list) list;
  set_contents : (string * (Row.t option * Row.t) list) list;
}

val dump : t -> dump
val equal_contents : t -> t -> bool
val total_records : t -> int
val pp : Format.formatter -> t -> unit
