open Ccv_common
module Imap = Map.Make (Int)
module Smap = Map.Make (String)
module Iset = Set.Make (Int)
module Vmap = Map.Make (Value)

type entry = { rtype : string; row : Row.t }

type t = {
  schema : Nschema.t;
  records : entry Imap.t;
  sets : int list Imap.t Smap.t;
      (** set name -> owner key -> members.  Chains of CHRONOLOGICAL
          sets are stored newest-first so CONNECT is a prepend instead
          of an O(chain) append (bulk loads insert thousands of members
          into one hot occurrence); readers canonicalise through
          [canon_chain].  SORTED chains are stored in canonical
          order — their insertion is order-driven anyway. *)
  member_of : int Smap.t Imap.t;  (** member key -> set name -> owner key *)
  by_type : Iset.t Smap.t;  (** record type -> keys of that type *)
  eq_indexes : Iset.t Vmap.t Smap.t;
      (** "RTYPE.FIELD" -> stored value -> keys; only stored fields,
          so CONNECT/DISCONNECT cannot invalidate an entry *)
  next_key : int;
  counters : Counters.t;
}

let system_key = 0

let index_name rtype field = Field.canon rtype ^ "." ^ Field.canon field
let stored_value row f = Option.value (Row.get row f) ~default:Value.Null

let type_keys t rtype =
  Option.value (Smap.find_opt (Field.canon rtype) t.by_type) ~default:Iset.empty

(* Per-type record counts and equality-index bucket profiles, served
   from the maintained maps without touching the access counters —
   statistics snapshots must not perturb the workload they observe. *)
let type_counts t =
  List.rev
    (Smap.fold
       (fun rtype ks acc -> (rtype, Iset.cardinal ks) :: acc)
       t.by_type [])

let index_bucket_counts t ~rtype ~field =
  match Smap.find_opt (index_name rtype field) t.eq_indexes with
  | None -> None
  | Some vmap ->
      Some
        (List.rev
           (Vmap.fold (fun v ks acc -> (v, Iset.cardinal ks) :: acc) vmap []))

let create schema =
  { schema;
    records = Imap.empty;
    sets =
      List.fold_left
        (fun acc (s : Nschema.set_decl) ->
          let initial =
            match s.owner with
            | Nschema.System -> Imap.singleton system_key []
            | Nschema.Owner_record _ -> Imap.empty
          in
          Smap.add s.sname initial acc)
        Smap.empty schema.Nschema.sets;
    member_of = Imap.empty;
    by_type = Smap.empty;
    (* CALC keys behave like primary keys: index them from the start so
       duplicate checks stop scanning the extent. *)
    eq_indexes =
      List.fold_left
        (fun acc (r : Nschema.record_decl) ->
          List.fold_left
            (fun acc f -> Smap.add (index_name r.rname f) Vmap.empty acc)
            acc r.calc_key)
        Smap.empty schema.Nschema.records;
    next_key = 1;
    counters = Counters.create ();
  }

(* Indexed fields of a record type, as (field, index name) pairs. *)
let indexed_fields_of t rtype =
  let decl = Nschema.find_record_exn t.schema rtype in
  List.filter_map
    (fun (f : Field.t) ->
      let iname = index_name rtype f.name in
      if Smap.mem iname t.eq_indexes then Some (f.name, iname) else None)
    decl.fields

let eq_index_update op t rtype row key =
  List.fold_left
    (fun acc (fname, iname) ->
      let vmap = Smap.find iname acc in
      let v = stored_value row fname in
      let ks = Option.value (Vmap.find_opt v vmap) ~default:Iset.empty in
      let ks = op key ks in
      let vmap =
        if Iset.is_empty ks then Vmap.remove v vmap else Vmap.add v ks vmap
      in
      Smap.add iname vmap acc)
    t.eq_indexes
    (indexed_fields_of t rtype)

let index_add t rtype row key =
  { t with
    by_type =
      Smap.add (Field.canon rtype) (Iset.add key (type_keys t rtype)) t.by_type;
    eq_indexes = eq_index_update Iset.add t rtype row key;
  }

let index_remove t rtype row key =
  { t with
    by_type =
      Smap.add (Field.canon rtype)
        (Iset.remove key (type_keys t rtype))
        t.by_type;
    eq_indexes = eq_index_update Iset.remove t rtype row key;
  }

let schema t = t.schema
let counters t = t.counters

let get t key =
  match Imap.find_opt key t.records with
  | Some e ->
      Counters.record_read t.counters;
      Some (e.rtype, e.row)
  | None -> None

let rtype_of t key = Option.map (fun e -> e.rtype) (Imap.find_opt key t.records)

let owner_of t ~set ~member =
  match Imap.find_opt member t.member_of with
  | Some m -> Smap.find_opt (Field.canon set) m
  | None -> None

(* Resolve a record's full view (stored fields plus virtuals pulled
   from set owners) together with the access charge it represents: one
   read for the record plus one per owner actually fetched.  The
   caller decides when to pay — [view] pays immediately, the network
   interpreter accumulates a whole scan's charges and pays once per
   statement, trading per-record atomic increments for a single one. *)
let view_costed t key =
  match Imap.find_opt key t.records with
  | None -> None
  | Some e ->
      let cost = ref 1 in
      let decl = Nschema.find_record_exn t.schema e.rtype in
      let row =
        List.fold_left
          (fun row (v : Nschema.virtual_field) ->
            let value =
              match owner_of t ~set:v.via_set ~member:key with
              | None -> Value.Null
              | Some owner -> (
                  match Imap.find_opt owner t.records with
                  | None -> Value.Null
                  | Some oe ->
                      incr cost;
                      Option.value (Row.get oe.row v.source_field)
                        ~default:Value.Null)
            in
            Row.set row v.vname value)
          e.row decl.virtuals
      in
      Some (row, !cost)

let view t key =
  match view_costed t key with
  | None -> None
  | Some (row, cost) ->
      Counters.record_reads t.counters cost;
      Some row

let view_silent t key = Option.map fst (view_costed t key)

let all_keys_gen ~charge t rtype =
  let ks = Iset.elements (type_keys t rtype) in
  if charge then Counters.record_reads t.counters (List.length ks);
  ks

let all_keys t rtype = all_keys_gen ~charge:true t rtype
let all_keys_silent t rtype = all_keys_gen ~charge:false t rtype

(* Cursor support: keys of a type strictly after [key], lazily — the
   persistent FIND NEXT position is just the current database key, and
   repositioning is a log-time descent instead of a full rescan. *)
let keys_after t rtype key = Iset.to_seq_from (key + 1) (type_keys t rtype)

let first_key t rtype = Iset.min_elt_opt (type_keys t rtype)

let has_index t ~rtype ~field = Smap.mem (index_name rtype field) t.eq_indexes

let indexed_fields t rtype =
  match Nschema.find_record t.schema rtype with
  | None -> []
  | Some _ -> List.map fst (indexed_fields_of t rtype)

(* Build (or keep) an equality index over a stored field.  Virtual or
   unknown fields are refused silently so callers can request indexes
   speculatively from qualification conjuncts. *)
let ensure_index t ~rtype ~field =
  match Nschema.find_record t.schema rtype with
  | None -> t
  | Some decl ->
      if not (Field.mem decl.fields field) then t
      else
        let iname = index_name rtype field in
        if Smap.mem iname t.eq_indexes then t
        else
          let vmap =
            Iset.fold
              (fun key vmap ->
                match Imap.find_opt key t.records with
                | None -> vmap
                | Some e ->
                    let v = stored_value e.row field in
                    let ks =
                      Option.value (Vmap.find_opt v vmap) ~default:Iset.empty
                    in
                    Vmap.add v (Iset.add key ks) vmap)
              (type_keys t rtype) Vmap.empty
          in
          { t with eq_indexes = Smap.add iname vmap t.eq_indexes }

(* [lookup_eq] is the index probe: one read for the descent, the
   matching records themselves are charged by whoever views them. *)
let lookup_eq t ~rtype ~field v =
  match Smap.find_opt (index_name rtype field) t.eq_indexes with
  | None -> None
  | Some vmap ->
      Counters.record_read t.counters;
      Some
        (match Vmap.find_opt v vmap with
        | None -> []
        | Some ks -> Iset.elements ks)

let lookup_eq_silent t ~rtype ~field v =
  match Smap.find_opt (index_name rtype field) t.eq_indexes with
  | None -> None
  | Some vmap ->
      Some
        (match Vmap.find_opt v vmap with
        | None -> []
        | Some ks -> Iset.elements ks)

(* Stored chain -> canonical member order (see the [sets] doc). *)
let canon_chain (decl : Nschema.set_decl) ms =
  match decl.order with
  | Nschema.Chronological -> List.rev ms
  | Nschema.Sorted _ -> ms

let members_gen ~charge t ~set ~owner =
  let set = Field.canon set in
  match Smap.find_opt set t.sets with
  | None -> invalid_arg (Fmt.str "Ndb: unknown set %s" set)
  | Some occs ->
      let ms = Option.value (Imap.find_opt owner occs) ~default:[] in
      (* One read fetches the occurrence's member chain; the records
         themselves are charged when a consumer actually views them. *)
      if charge then Counters.record_read t.counters;
      canon_chain (Nschema.find_set_exn t.schema set) ms

let members t ~set ~owner = members_gen ~charge:true t ~set ~owner
let members_silent t ~set ~owner = members_gen ~charge:false t ~set ~owner

let occurrences t set =
  let set = Field.canon set in
  let decl = Nschema.find_set_exn t.schema set in
  let occs = Smap.find set t.sets in
  let chain okey =
    canon_chain decl (Option.value (Imap.find_opt okey occs) ~default:[])
  in
  match decl.owner with
  | Nschema.System -> [ (system_key, chain system_key) ]
  | Nschema.Owner_record orty ->
      List.map (fun okey -> (okey, chain okey)) (all_keys_silent t orty)

(* Sort-key extraction: prefer the live view, fall back to a supplied
   seed row (used at STORE time when virtuals are not yet resolvable). *)
let sort_key_of t ~seed keys member_key =
  let base =
    match view_silent t member_key with Some r -> r | None -> Row.empty
  in
  List.map
    (fun k ->
      match Row.get base k with
      | Some v when not (Value.is_null v) -> v
      | Some _ | None -> Option.value (Row.get seed k) ~default:Value.Null)
    keys

let compare_keys = List.compare Value.compare

(* Insert [member] into the occurrence list per the set's order. *)
let place t (decl : Nschema.set_decl) ~seed existing member_key =
  match decl.order with
  | Nschema.Chronological -> Ok (existing @ [ member_key ])
  | Nschema.Sorted keys ->
      let new_key = sort_key_of t ~seed keys member_key in
      let dup =
        (not decl.dups_allowed)
        && List.exists
             (fun m ->
               compare_keys (sort_key_of t ~seed:Row.empty keys m) new_key = 0)
             existing
      in
      if dup then Error (Status.Duplicate_key decl.sname)
      else
        let rec ins = function
          | [] -> [ member_key ]
          | m :: rest ->
              if compare_keys (sort_key_of t ~seed:Row.empty keys m) new_key > 0
              then member_key :: m :: rest
              else m :: ins rest
        in
        Ok (ins existing)

(* Store a chain given in canonical member order, translating to the
   internal representation (newest-first for CHRONOLOGICAL sets). *)
let set_occurrence t set owner ms =
  let ms =
    match (Nschema.find_set_exn t.schema set).order with
    | Nschema.Chronological -> List.rev ms
    | Nschema.Sorted _ -> ms
  in
  let occs = Smap.find set t.sets in
  { t with sets = Smap.add set (Imap.add owner ms occs) t.sets }

let add_membership t ~set ~member ~owner =
  let m = Option.value (Imap.find_opt member t.member_of) ~default:Smap.empty in
  { t with member_of = Imap.add member (Smap.add set owner m) t.member_of }

let remove_membership t ~set ~member =
  match Imap.find_opt member t.member_of with
  | None -> t
  | Some m -> { t with member_of = Imap.add member (Smap.remove set m) t.member_of }

let connect_internal t (decl : Nschema.set_decl) ~seed ~member ~owner =
  match decl.order with
  | Nschema.Chronological ->
      (* Prepend to the newest-first chain: O(log owners) instead of
         the O(chain) append a canonical-order store would need —
         this is the per-record cost bulk loads and the live-migration
         fault-in pay for every stored member. *)
      ignore seed;
      Counters.record_write t.counters;
      let occs = Smap.find decl.sname t.sets in
      let chain = Option.value (Imap.find_opt owner occs) ~default:[] in
      let t =
        { t with
          sets =
            Smap.add decl.sname (Imap.add owner (member :: chain) occs) t.sets;
        }
      in
      Ok (add_membership t ~set:decl.sname ~member ~owner)
  | Nschema.Sorted _ -> (
      let existing = members_gen ~charge:false t ~set:decl.sname ~owner in
      match place t decl ~seed existing member with
      | Error s -> Error s
      | Ok ms ->
          Counters.record_write t.counters;
          let t = set_occurrence t decl.sname owner ms in
          Ok (add_membership t ~set:decl.sname ~member ~owner))

(* Owner selection for AUTOMATIC insertion. *)
let select_owner t (decl : Nschema.set_decl) ~resolve_current ~seed =
  match decl.owner with
  | Nschema.System -> Ok system_key
  | Nschema.Owner_record orty -> (
      match decl.selection with
      | Nschema.By_value pairs -> (
          let wanted =
            List.map
              (fun (ofield, mfield) ->
                (ofield, Option.value (Row.get seed mfield) ~default:Value.Null))
              pairs
          in
          match List.find_opt (fun (_, v) -> Value.is_null v) wanted with
          | Some (ofield, _) ->
              Error
                (Status.Constraint_violation
                   (Fmt.str "set %s: no selection value for %s" decl.sname
                      ofield))
          | None -> (
              let matches k fields =
                match Imap.find_opt k t.records with
                | Some e ->
                    List.for_all
                      (fun (ofield, v) ->
                        match Row.get e.row ofield with
                        | Some v' -> Value.equal v' v
                        | None -> false)
                      fields
                | None -> false
              in
              (* Probe the owner type's equality indexes where they
                 cover a selection field (CALC keys always do) — a
                 By-value selection against every stored member would
                 otherwise rescan the whole owner extent, making bulk
                 loads and migration drains quadratic.  Both paths
                 visit keys in ascending order, so the chosen owner is
                 the same either way. *)
              let indexed, unindexed =
                List.partition
                  (fun (ofield, _) ->
                    Smap.mem (index_name orty ofield) t.eq_indexes)
                  wanted
              in
              let candidate =
                match indexed with
                | [] ->
                    List.find_opt
                      (fun k ->
                        Counters.record_read t.counters;
                        matches k wanted)
                      (all_keys_silent t orty)
                | probes ->
                    let hits =
                      List.map
                        (fun (ofield, v) ->
                          Counters.record_read t.counters;
                          let vmap =
                            Smap.find (index_name orty ofield) t.eq_indexes
                          in
                          Option.value (Vmap.find_opt v vmap)
                            ~default:Iset.empty)
                        probes
                    in
                    let inter =
                      match hits with
                      | [] -> Iset.empty
                      | h :: rest -> List.fold_left Iset.inter h rest
                    in
                    List.find_opt
                      (fun k ->
                        match unindexed with
                        | [] -> Imap.mem k t.records
                        | fields ->
                            Counters.record_read t.counters;
                            matches k fields)
                      (Iset.elements inter)
              in
              match candidate with
              | Some k -> Ok k
              | None ->
                  (* The §3.1 guarantee: AUTOMATIC+MANDATORY insertion
                     fails when no owner exists. *)
                  Error
                    (Status.Constraint_violation
                       (Fmt.str "set %s: no owner matching %s" decl.sname
                          (String.concat ", "
                             (List.map
                                (fun (o, v) ->
                                  o ^ "=" ^ Value.to_display v)
                                wanted))))))
      | Nschema.By_current -> (
          match resolve_current decl.sname with
          | Some k -> Ok k
          | None -> Error Status.No_currency))

(* DUPLICATES NOT ALLOWED for the CALC key: probe the per-field
   equality indexes (auto-created for CALC keys) and intersect, one
   read per probe — instead of scanning every record of the type. *)
let calc_duplicate t (decl : Nschema.record_decl) stored =
  let all_indexed =
    List.for_all
      (fun f -> Smap.mem (index_name decl.rname f) t.eq_indexes)
      decl.calc_key
  in
  if all_indexed then
    let hits =
      List.map
        (fun f ->
          Counters.record_read t.counters;
          let vmap = Smap.find (index_name decl.rname f) t.eq_indexes in
          Option.value
            (Vmap.find_opt (stored_value stored f) vmap)
            ~default:Iset.empty)
        decl.calc_key
    in
    match hits with
    | [] -> false
    | h :: rest -> not (Iset.is_empty (List.fold_left Iset.inter h rest))
  else
    List.exists
      (fun k ->
        Counters.record_read t.counters;
        match Imap.find_opt k t.records with
        | Some e ->
            List.for_all
              (fun f ->
                Value.equal (stored_value e.row f) (stored_value stored f))
              decl.calc_key
        | None -> false)
      (all_keys_gen ~charge:false t decl.rname)

let store ?(resolve_current = fun _ -> None) t rtype row =
  let rtype = Field.canon rtype in
  let decl = Nschema.find_record_exn t.schema rtype in
  let seed = row in
  let stored = Row.coerce row decl.fields in
  if not (Row.conforms stored decl.fields) then
    Error (Status.Invalid_request (Fmt.str "bad record for %s" rtype))
  else if decl.calc_key <> [] && calc_duplicate t decl stored
  then Error (Status.Duplicate_key rtype)
  else
    let key = t.next_key in
    let auto_sets =
      List.filter
        (fun (s : Nschema.set_decl) -> s.insertion = Nschema.Automatic)
        (Nschema.sets_with_member t.schema rtype)
    in
    (* Resolve every owner before mutating, so a failed selection
       leaves the database untouched (programs take the DB from one
       consistent state to another, §1.1). *)
    let owners =
      List.fold_left
        (fun acc s ->
          match acc with
          | Error _ as e -> e
          | Ok pairs -> (
              match select_owner t s ~resolve_current ~seed with
              | Ok owner -> Ok ((s, owner) :: pairs)
              | Error e -> Error e))
        (Ok []) auto_sets
    in
    match owners with
    | Error s -> Error s
    | Ok pairs ->
        Counters.record_write t.counters;
        let t =
          { t with
            records = Imap.add key { rtype; row = stored } t.records;
            next_key = key + 1;
          }
        in
        let t = index_add t rtype stored key in
        let rec connect_all t = function
          | [] -> Ok t
          | (s, owner) :: rest -> (
              match connect_internal t s ~seed ~member:key ~owner with
              | Ok t -> connect_all t rest
              | Error e -> Error e)
        in
        (match connect_all t (List.rev pairs) with
        | Ok t -> Ok (t, key)
        | Error e -> Error e)

let connect t ~set ~member ~owner =
  let set = Field.canon set in
  let decl = Nschema.find_set_exn t.schema set in
  match rtype_of t member with
  | None -> Error Status.Not_found
  | Some rty when not (Field.name_equal rty decl.member) ->
      Error (Status.Invalid_request (Fmt.str "%s is not a member of %s" rty set))
  | Some _ ->
      if owner_of t ~set ~member <> None then
        Error (Status.Invalid_request (Fmt.str "already a member of %s" set))
      else connect_internal t decl ~seed:Row.empty ~member ~owner

let remove_from_occurrence t set owner member =
  let ms = members_gen ~charge:false t ~set ~owner in
  let t = set_occurrence t set owner (List.filter (fun m -> m <> member) ms) in
  remove_membership t ~set ~member

let disconnect t ~set ~member =
  let set = Field.canon set in
  let decl = Nschema.find_set_exn t.schema set in
  match decl.retention with
  | Nschema.Mandatory | Nschema.Fixed ->
      Error
        (Status.Constraint_violation
           (Fmt.str "set %s: DISCONNECT of a %s member" set
              (match decl.retention with
              | Nschema.Mandatory -> "MANDATORY"
              | Nschema.Fixed | Nschema.Optional -> "FIXED")))
  | Nschema.Optional -> (
      match owner_of t ~set ~member with
      | None -> Error Status.Not_found
      | Some owner ->
          Counters.record_write t.counters;
          Ok (remove_from_occurrence t set owner member))

let modify t key assigns =
  match Imap.find_opt key t.records with
  | None -> Error Status.Not_found
  | Some e ->
      let decl = Nschema.find_record_exn t.schema e.rtype in
      let bad =
        List.find_opt (fun (f, _) -> not (Field.mem decl.fields f)) assigns
      in
      (match bad with
      | Some (f, _) ->
          Error (Status.Invalid_request (Fmt.str "unknown field %s of %s" f e.rtype))
      | None ->
          Counters.record_write t.counters;
          let row =
            List.fold_left (fun row (f, v) -> Row.set row f v) e.row assigns
          in
          let t = { t with records = Imap.add key { e with row } t.records } in
          (* Keep equality indexes consistent with the new field values. *)
          let t =
            { t with
              eq_indexes = eq_index_update Iset.remove t e.rtype e.row key;
            }
          in
          let t =
            { t with eq_indexes = eq_index_update Iset.add t e.rtype row key }
          in
          (* Re-place the record in sorted occurrences it belongs to. *)
          let t =
            List.fold_left
              (fun t (s : Nschema.set_decl) ->
                match s.order, owner_of t ~set:s.sname ~member:key with
                | Nschema.Sorted _, Some owner ->
                    let without =
                      List.filter (fun m -> m <> key)
                        (members_gen ~charge:false t ~set:s.sname ~owner)
                    in
                    let t = set_occurrence t s.sname owner without in
                    (match place t s ~seed:Row.empty without key with
                    | Ok ms -> set_occurrence t s.sname owner ms
                    | Error _ -> set_occurrence t s.sname owner (without @ [ key ]))
                | (Nschema.Sorted _ | Nschema.Chronological), _ -> t)
              t
              (Nschema.sets_with_member t.schema e.rtype)
          in
          Ok t)

type erase_mode = Erase | Erase_all

let rec erase t mode key =
  match Imap.find_opt key t.records with
  | None -> Error Status.Not_found
  | Some e -> (
      let owned = Nschema.sets_owned_by t.schema e.rtype in
      let non_empty =
        List.filter
          (fun (s : Nschema.set_decl) ->
            members_gen ~charge:false t ~set:s.sname ~owner:key <> [])
          owned
      in
      match mode with
      | Erase when non_empty <> [] ->
          Error
            (Status.Constraint_violation
               (Fmt.str "ERASE %s: owns members in %s" e.rtype
                  (String.concat ", "
                     (List.map (fun (s : Nschema.set_decl) -> s.sname) non_empty))))
      | Erase | Erase_all -> (
          (* Cascade / disconnect owned members first. *)
          let rec handle_owned t = function
            | [] -> Ok t
            | (s : Nschema.set_decl) :: rest -> (
                let ms = members_gen ~charge:false t ~set:s.sname ~owner:key in
                let step t m =
                  match s.retention with
                  | Nschema.Optional ->
                      Counters.record_write t.counters;
                      Ok (remove_from_occurrence t s.sname key m)
                  | Nschema.Mandatory | Nschema.Fixed -> erase t Erase_all m
                in
                let rec go t = function
                  | [] -> Ok t
                  | m :: ms -> (
                      match step t m with Ok t -> go t ms | Error e -> Error e)
                in
                match go t ms with
                | Ok t -> handle_owned t rest
                | Error e -> Error e)
          in
          match handle_owned t non_empty with
          | Error e -> Error e
          | Ok t ->
              (* Remove the record from sets it belongs to. *)
              let t =
                List.fold_left
                  (fun t (s : Nschema.set_decl) ->
                    match owner_of t ~set:s.sname ~member:key with
                    | Some owner -> remove_from_occurrence t s.sname owner key
                    | None -> t)
                  t
                  (Nschema.sets_with_member t.schema e.rtype)
              in
              Counters.record_write t.counters;
              (* Re-fetch: a cascade cycle may already have removed it. *)
              let t =
                match Imap.find_opt key t.records with
                | None -> t
                | Some e -> index_remove t e.rtype e.row key
              in
              Ok { t with records = Imap.remove key t.records }))

type dump = {
  record_contents : (string * Row.t list) list;
  set_contents : (string * (Row.t option * Row.t) list) list;
}

let dump t =
  let record_contents =
    List.map
      (fun (r : Nschema.record_decl) ->
        let rows =
          List.filter_map (fun k -> view_silent t k) (all_keys_silent t r.rname)
        in
        (r.rname, List.sort Row.compare rows))
      t.schema.Nschema.records
  in
  let set_contents =
    List.map
      (fun (s : Nschema.set_decl) ->
        let pairs =
          List.concat_map
            (fun (owner, ms) ->
              let orow =
                if owner = system_key then None else view_silent t owner
              in
              List.filter_map
                (fun m ->
                  Option.map (fun mrow -> (orow, mrow)) (view_silent t m))
                ms)
            (occurrences t s.sname)
        in
        let cmp (o1, m1) (o2, m2) =
          let c = Option.compare Row.compare o1 o2 in
          if c <> 0 then c else Row.compare m1 m2
        in
        (s.sname, List.sort cmp pairs))
      t.schema.Nschema.sets
  in
  { record_contents; set_contents }

let equal_contents a b =
  let da = dump a and db = dump b in
  let eq_rows = List.for_all2 (fun (n1, r1) (n2, r2) ->
      String.equal n1 n2 && List.length r1 = List.length r2
      && List.for_all2 Row.equal r1 r2)
  in
  let eq_pairs (n1, p1) (n2, p2) =
    String.equal n1 n2 && List.length p1 = List.length p2
    && List.for_all2
         (fun (o1, m1) (o2, m2) ->
           Option.equal Row.equal o1 o2 && Row.equal m1 m2)
         p1 p2
  in
  List.length da.record_contents = List.length db.record_contents
  && eq_rows da.record_contents db.record_contents
  && List.length da.set_contents = List.length db.set_contents
  && List.for_all2 eq_pairs da.set_contents db.set_contents

let total_records t = Imap.cardinal t.records

(* Audit every index against a raw fold over the record arena — the
   reference scan path the indexes replace.  Empty list = consistent. *)
let verify_indexes t =
  let problems = ref [] in
  let note fmt = Fmt.kstr (fun s -> problems := s :: !problems) fmt in
  (* by_type: exactly the keys of each type, no strays. *)
  let expected_by_type =
    Imap.fold
      (fun key e acc ->
        let ks = Option.value (Smap.find_opt e.rtype acc) ~default:Iset.empty in
        Smap.add e.rtype (Iset.add key ks) acc)
      t.records Smap.empty
  in
  Smap.iter
    (fun rtype ks ->
      let want =
        Option.value (Smap.find_opt rtype expected_by_type) ~default:Iset.empty
      in
      if not (Iset.equal ks want) then
        note "by_type[%s]: index {%s} vs scan {%s}" rtype
          (String.concat "," (List.map string_of_int (Iset.elements ks)))
          (String.concat "," (List.map string_of_int (Iset.elements want))))
    t.by_type;
  Smap.iter
    (fun rtype ks ->
      if not (Smap.mem rtype t.by_type) && not (Iset.is_empty ks) then
        note "by_type[%s]: %d keys missing from index" rtype (Iset.cardinal ks))
    expected_by_type;
  (* equality indexes: every entry points at a live record carrying the
     value, and every record appears under its value. *)
  Smap.iter
    (fun iname vmap ->
      match String.index_opt iname '.' with
      | None -> note "eq_index %s: malformed name" iname
      | Some i ->
          let rtype = String.sub iname 0 i in
          let field =
            String.sub iname (i + 1) (String.length iname - i - 1)
          in
          Vmap.iter
            (fun v ks ->
              Iset.iter
                (fun key ->
                  match Imap.find_opt key t.records with
                  | None -> note "eq_index %s: dangling key #%d" iname key
                  | Some e ->
                      if not (String.equal e.rtype rtype) then
                        note "eq_index %s: #%d is a %s" iname key e.rtype
                      else if not (Value.equal (stored_value e.row field) v)
                      then
                        note "eq_index %s: #%d maps %a but stores %a" iname key
                          Value.pp v Value.pp (stored_value e.row field))
                ks)
            vmap;
          Imap.iter
            (fun key e ->
              if String.equal e.rtype rtype then
                let v = stored_value e.row field in
                let present =
                  match Vmap.find_opt v vmap with
                  | Some ks -> Iset.mem key ks
                  | None -> false
                in
                if not present then
                  note "eq_index %s: #%d (%a) not indexed" iname key Value.pp v)
            t.records)
    t.eq_indexes;
  List.rev !problems

let pp ppf t =
  Imap.iter
    (fun key e -> Fmt.pf ppf "@[#%d %s %a@]@." key e.rtype Row.pp e.row)
    t.records;
  Smap.iter
    (fun sname occs ->
      let decl = Nschema.find_set_exn t.schema sname in
      Imap.iter
        (fun owner ms ->
          if ms <> [] then
            Fmt.pf ppf "@[%s: #%d -> [%a]@]@." sname owner
              Fmt.(list ~sep:(any "; ") int)
              (canon_chain decl ms))
        occs)
    t.sets
