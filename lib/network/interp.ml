open Ccv_common
module Smap = Map.Make (String)

type currency = {
  run_unit : int option;
  of_record : int Smap.t;
  of_set : int Smap.t;
}

let initial_currency =
  { run_unit = None; of_record = Smap.empty; of_set = Smap.empty }

let current_of_run_unit cur = cur.run_unit
let current_of_record cur rtype = Smap.find_opt (Field.canon rtype) cur.of_record
let current_of_set cur set = Smap.find_opt (Field.canon set) cur.of_set

let current_occurrence_owner db cur set =
  let decl = Nschema.find_set_exn (Ndb.schema db) set in
  match decl.owner with
  | Nschema.System -> Some Ndb.system_key
  | Nschema.Owner_record orty -> (
      match current_of_set cur decl.sname with
      | None -> None
      | Some key -> (
          match Ndb.rtype_of db key with
          | Some rty when Field.name_equal rty orty -> Some key
          | Some _ -> Ndb.owner_of db ~set:decl.sname ~member:key
          | None -> None))

(* A record that becomes current of run unit also becomes current of
   its record type and of every set it participates in (as owner or as
   connected member). *)
let make_current db cur key =
  match Ndb.rtype_of db key with
  | None -> cur
  | Some rtype ->
      let schema = Ndb.schema db in
      let of_set =
        List.fold_left
          (fun acc (s : Nschema.set_decl) -> Smap.add s.sname key acc)
          cur.of_set
          (Nschema.sets_owned_by schema rtype)
      in
      let of_set =
        List.fold_left
          (fun acc (s : Nschema.set_decl) ->
            match Ndb.owner_of db ~set:s.sname ~member:key with
            | Some _ -> Smap.add s.sname key acc
            | None -> acc)
          of_set
          (Nschema.sets_with_member schema rtype)
      in
      { run_unit = Some key;
        of_record = Smap.add rtype key cur.of_record;
        of_set;
      }

let establish = make_current

type outcome = {
  db : Ndb.t;
  cur : currency;
  updates : (string * Value.t) list;
  status : Status.t;
}

let ok db cur = { db; cur; updates = []; status = Status.Ok }
let fail db cur status = { db; cur; updates = []; status }

(* Qualification scans batch their access charges: every candidate's
   view cost accumulates in a plain local counter and is paid with a
   single [record_reads] when the scan finishes — the charge totals
   are identical to per-record charging, but the serving hot loop does
   one atomic update per FIND instead of one per record touched. *)
let matches_costed db ~env ~spent key cond =
  match Ndb.view_costed db key with
  | Some (row, cost) ->
      spent := !spent + cost;
      Cond.eval ~env row cond
  | None -> false

let find_in_order db ~env keys cond =
  let spent = ref 0 in
  let found =
    List.find_opt (fun k -> matches_costed db ~env ~spent k cond) keys
  in
  if !spent > 0 then Counters.record_reads (Ndb.counters db) !spent;
  found

let find_in_seq db ~env keys cond =
  let spent = ref 0 in
  let found =
    Seq.fold_left
      (fun acc k ->
        match acc with
        | Some _ -> acc
        | None -> if matches_costed db ~env ~spent k cond then Some k else None)
      None keys
  in
  if !spent > 0 then Counters.record_reads (Ndb.counters db) !spent;
  found

(* Equality routing: a [FIELD = const] conjunct (constants may arrive
   through host variables) whose field carries an equality index turns
   a scan into an index probe.  The probe yields a candidate superset
   in ascending key order, so filtering with the full qualification
   returns exactly what the scan would. *)
let const_operand ~env = function
  | Cond.Const v -> Some v
  | Cond.Var x -> env x
  | Cond.Field _ | Cond.Add _ | Cond.Sub _ | Cond.Mul _ | Cond.Concat _ -> None

let eq_conjuncts ~env cond =
  List.filter_map
    (fun c ->
      match c with
      | Cond.Cmp (Cond.Eq, Cond.Field f, e) | Cond.Cmp (Cond.Eq, e, Cond.Field f)
        ->
          Option.map (fun v -> (Field.canon f, v)) (const_operand ~env e)
      | Cond.True | Cond.Cmp _ | Cond.And _ | Cond.Or _ | Cond.Not _
      | Cond.Is_null _ | Cond.Is_not_null _ -> None)
    (Cond.split_conjuncts cond)

(* Create missing indexes on demand — the updated db travels out
   through the outcome, so the build cost is paid once per field. *)
let ensure_eq_indexes db rtype ~env cond =
  List.fold_left
    (fun db (f, _) -> Ndb.ensure_index db ~rtype ~field:f)
    db (eq_conjuncts ~env cond)

let eq_probe db rtype ~env cond =
  List.find_map
    (fun (f, v) -> Ndb.lookup_eq db ~rtype ~field:f v)
    (eq_conjuncts ~env cond)

let exec_find db cur ~env = function
  | Dml.Any (rtype, cond) -> (
      let db = ensure_eq_indexes db rtype ~env cond in
      let keys =
        match eq_probe db rtype ~env cond with
        | Some candidates -> candidates
        | None -> Ndb.all_keys_silent db rtype
      in
      match find_in_order db ~env keys cond with
      | Some key -> ok db (make_current db cur key)
      | None -> fail db cur Status.Not_found)
  | Dml.Duplicate (rtype, cond) -> (
      match current_of_record cur rtype with
      | None -> fail db cur Status.No_currency
      | Some current -> (
          let db = ensure_eq_indexes db rtype ~env cond in
          let found =
            match eq_probe db rtype ~env cond with
            | Some candidates ->
                find_in_order db ~env
                  (List.filter (fun k -> k > current) candidates)
                  cond
            | None ->
                (* Cursor over the per-type index: reposition after the
                   current of record type in log time, then walk. *)
                find_in_seq db ~env (Ndb.keys_after db rtype current) cond
          in
          match found with
          | Some key -> ok db (make_current db cur key)
          | None -> fail db cur Status.Not_found))
  | Dml.First_within (rtype, set, cond) -> (
      match current_occurrence_owner db cur set with
      | None -> fail db cur Status.No_currency
      | Some owner -> (
          let ms = Ndb.members db ~set ~owner in
          let of_type k =
            match Ndb.rtype_of db k with
            | Some rty -> Field.name_equal rty rtype
            | None -> false
          in
          match
            find_in_order db ~env (List.filter of_type ms) cond
          with
          | Some key -> ok db (make_current db cur key)
          | None -> fail db cur Status.End_of_set))
  | Dml.Next_within (rtype, set, cond) -> (
      match current_occurrence_owner db cur set with
      | None -> fail db cur Status.No_currency
      | Some owner -> (
          let ms = Ndb.members db ~set ~owner in
          (* Position: after the current of set when it is a member of
             this occurrence; from the start when it is the owner. *)
          let rest =
            match current_of_set cur set with
            | Some key when List.mem key ms ->
                let rec after = function
                  | [] -> []
                  | m :: tail -> if m = key then tail else after tail
                in
                after ms
            | Some _ | None -> ms
          in
          let of_type k =
            match Ndb.rtype_of db k with
            | Some rty -> Field.name_equal rty rtype
            | None -> false
          in
          match find_in_order db ~env (List.filter of_type rest) cond with
          | Some key -> ok db (make_current db cur key)
          | None -> fail db cur Status.End_of_set))
  | Dml.Current rtype -> (
      match current_of_record cur rtype with
      | Some key when Ndb.rtype_of db key <> None ->
          Counters.record_read (Ndb.counters db);
          ok db (make_current db cur key)
      | Some _ | None -> fail db cur Status.No_currency)
  | Dml.Owner_within set -> (
      let decl = Nschema.find_set_exn (Ndb.schema db) set in
      match decl.owner with
      | Nschema.System ->
          fail db cur (Status.Invalid_request ("FIND OWNER of SYSTEM set " ^ set))
      | Nschema.Owner_record _ -> (
          match current_occurrence_owner db cur set with
          | Some owner when owner <> Ndb.system_key ->
              Counters.record_read (Ndb.counters db);
              ok db (make_current db cur owner)
          | Some _ | None -> fail db cur Status.No_currency))

let uwa_row_of_env ~env (decl : Nschema.record_decl) =
  let fetch name = env (Dml.uwa ~rtype:decl.rname ~field:name) in
  let stored =
    List.map
      (fun (f : Field.t) ->
        (f.name, Option.value (fetch f.name) ~default:Value.Null))
      decl.fields
  in
  let virtuals =
    List.filter_map
      (fun (v : Nschema.virtual_field) ->
        Option.map (fun value -> (v.vname, value)) (fetch v.vname))
      decl.virtuals
  in
  Row.of_list (stored @ virtuals)

let exec db cur ~env stmt =
  match stmt with
  | Dml.Find f -> exec_find db cur ~env f
  | Dml.Get rtype -> (
      match cur.run_unit with
      | None -> fail db cur Status.No_currency
      | Some key -> (
          match Ndb.rtype_of db key with
          | Some rty when Field.name_equal rty rtype -> (
              match Ndb.view db key with
              | Some row ->
                  let updates =
                    List.map
                      (fun (f, v) -> (Dml.uwa ~rtype ~field:f, v))
                      (Row.to_list row)
                  in
                  { db; cur; updates; status = Status.Ok }
              | None -> fail db cur Status.Not_found)
          | Some rty ->
              fail db cur
                (Status.Invalid_request
                   (Fmt.str "GET %s: current is a %s" rtype rty))
          | None -> fail db cur Status.Not_found))
  | Dml.Store rtype -> (
      let decl = Nschema.find_record_exn (Ndb.schema db) rtype in
      let row = uwa_row_of_env ~env decl in
      let resolve_current set = current_occurrence_owner db cur set in
      match Ndb.store ~resolve_current db rtype row with
      | Ok (db, key) -> ok db (make_current db cur key)
      | Error status -> fail db cur status)
  | Dml.Modify (rtype, fields) -> (
      match cur.run_unit with
      | None -> fail db cur Status.No_currency
      | Some key -> (
          match Ndb.rtype_of db key with
          | Some rty when Field.name_equal rty rtype -> (
              let assigns =
                List.filter_map
                  (fun f ->
                    Option.map
                      (fun v -> (Field.canon f, v))
                      (env (Dml.uwa ~rtype ~field:f)))
                  fields
              in
              match Ndb.modify db key assigns with
              | Ok db -> ok db cur
              | Error status -> fail db cur status)
          | Some rty ->
              fail db cur
                (Status.Invalid_request
                   (Fmt.str "MODIFY %s: current is a %s" rtype rty))
          | None -> fail db cur Status.Not_found))
  | Dml.Erase (mode, rtype) -> (
      match cur.run_unit with
      | None -> fail db cur Status.No_currency
      | Some key -> (
          match Ndb.rtype_of db key with
          | Some rty when Field.name_equal rty rtype -> (
              let mode' =
                match mode with
                | Dml.Erase_one -> Ndb.Erase
                | Dml.Erase_all -> Ndb.Erase_all
              in
              match Ndb.erase db mode' key with
              | Ok db ->
                  (* The erased record's currencies are gone. *)
                  let cur =
                    { run_unit = None;
                      of_record =
                        Smap.filter (fun _ k -> k <> key) cur.of_record;
                      of_set = Smap.filter (fun _ k -> k <> key) cur.of_set;
                    }
                  in
                  ok db cur
              | Error status -> fail db cur status)
          | Some rty ->
              fail db cur
                (Status.Invalid_request
                   (Fmt.str "ERASE %s: current is a %s" rtype rty))
          | None -> fail db cur Status.Not_found))
  | Dml.Connect (rtype, set) -> (
      match current_of_record cur rtype with
      | None -> fail db cur Status.No_currency
      | Some member -> (
          match current_occurrence_owner db cur set with
          | None -> fail db cur Status.No_currency
          | Some owner -> (
              match Ndb.connect db ~set ~member ~owner with
              | Ok db -> ok db (make_current db cur member)
              | Error status -> fail db cur status)))
  | Dml.Disconnect (rtype, set) -> (
      match current_of_record cur rtype with
      | None -> fail db cur Status.No_currency
      | Some member -> (
          match Ndb.disconnect db ~set ~member with
          | Ok db -> ok db cur
          | Error status -> fail db cur status))
