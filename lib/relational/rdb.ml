open Ccv_common

type t = {
  schema : Rschema.t;
  tables : (string * Row.t list) list;
  counters : Counters.t;
}

let create schema =
  { schema;
    tables = List.map (fun r -> (r.Rschema.rname, [])) schema.Rschema.relations;
    counters = Counters.create ();
  }

let schema t = t.schema
let counters t = t.counters

let find_table t rel =
  match List.assoc_opt (Field.canon rel) t.tables with
  | Some rows -> rows
  | None -> invalid_arg (Fmt.str "Rdb: unknown relation %s" rel)

let rows t rel =
  let rows = find_table t rel in
  Counters.record_reads t.counters (List.length rows);
  rows

let rows_silent t rel = find_table t rel
let cardinality t rel = List.length (find_table t rel)

let cardinalities t =
  List.map (fun (n, rows) -> (n, List.length rows)) t.tables

let set_table t rel rows =
  let rel = Field.canon rel in
  { t with
    tables =
      List.map (fun (n, r) -> if String.equal n rel then (n, rows) else (n, r))
        t.tables;
  }

let key_of decl row =
  List.map (fun k -> Row.get_exn row k) decl.Rschema.key

let insert t rel row =
  let decl = Rschema.find_exn t.schema rel in
  let row = Row.coerce row decl.fields in
  if not (Row.conforms row decl.fields) then
    Error (Status.Invalid_request (Fmt.str "bad tuple for %s" decl.rname))
  else
    let existing = find_table t decl.rname in
    let dup =
      decl.key <> []
      && List.exists
           (fun r ->
             Counters.record_read t.counters;
             List.for_all2 Value.equal (key_of decl r) (key_of decl row))
           existing
    in
    if dup then Error (Status.Duplicate_key decl.rname)
    else begin
      Counters.record_write t.counters;
      Ok (set_table t decl.rname (existing @ [ row ]))
    end

let insert_exn t rel row =
  match insert t rel row with
  | Ok t -> t
  | Error s -> invalid_arg (Fmt.str "Rdb.insert_exn %s: %a" rel Status.pp s)

let load t rel rows = List.fold_left (fun t row -> insert_exn t rel row) t rows

let delete_where t rel cond ~env =
  let existing = find_table t rel in
  Counters.record_reads t.counters (List.length existing);
  let keep, gone = List.partition (fun r -> not (Cond.eval ~env r cond)) existing in
  let n = List.length gone in
  if n > 0 then Counters.record_write t.counters;
  (set_table t rel keep, n)

let update_where t rel cond ~env assigns =
  let decl = Rschema.find_exn t.schema rel in
  let existing = find_table t decl.rname in
  Counters.record_reads t.counters (List.length existing);
  let bad = ref None in
  let updated = ref 0 in
  let apply row =
    if Cond.eval ~env row cond then begin
      incr updated;
      Counters.record_write t.counters;
      List.fold_left
        (fun row (fname, e) ->
          if not (Field.mem decl.fields fname) then begin
            if !bad = None then
              bad := Some (Status.Invalid_request
                             (Fmt.str "unknown field %s in %s" fname decl.rname));
            row
          end
          else Row.set row fname (Cond.eval_expr ~env row e))
        row assigns
    end
    else row
  in
  let rows' = List.map apply existing in
  match !bad with
  | Some s -> Error s
  | None -> Ok (set_table t decl.rname rows', !updated)

let replace_rows t rel rows = set_table t rel rows

let with_schema t schema =
  { t with
    schema;
    tables =
      List.map
        (fun r ->
          let name = r.Rschema.rname in
          (name, Option.value (List.assoc_opt name t.tables) ~default:[]))
        schema.Rschema.relations;
  }

let multiset_equal a b =
  let sort = List.sort Row.compare in
  List.length a = List.length b && List.for_all2 Row.equal (sort a) (sort b)

let equal_contents a b =
  let names t = List.map fst t.tables in
  List.sort String.compare (names a) = List.sort String.compare (names b)
  && List.for_all
       (fun (n, rows) -> multiset_equal rows (rows_silent b n))
       a.tables

let total_rows t =
  List.fold_left (fun acc (_, rows) -> acc + List.length rows) 0 t.tables

let pp ppf t =
  let pp_table ppf (name, rows) =
    Fmt.pf ppf "@[<v2>%s (%d):@ %a@]" name (List.length rows)
      (Fmt.list Row.pp) rows
  in
  Fmt.pf ppf "@[<v>%a@]" (Fmt.list pp_table) t.tables
