(** Relational database instances: named relations holding rows.

    Instances are persistent (functional update) so that equivalence
    experiments can keep the source instance while running candidate
    programs; the access {!Ccv_common.Counters.t} is shared across
    versions because it accounts work, not state. *)

open Ccv_common

type t

val create : Rschema.t -> t
val schema : t -> Rschema.t
val counters : t -> Counters.t

(** [rows db rel] — the current extension, charging one read per row.
    Raises [Invalid_argument] on an unknown relation. *)
val rows : t -> string -> Row.t list

(** [rows_silent db rel] — same, without charging (for printing and
    test assertions). *)
val rows_silent : t -> string -> Row.t list

val cardinality : t -> string -> int

(** Every relation's cardinality, uncounted (statistics snapshots). *)
val cardinalities : t -> (string * int) list

(** [insert db rel row] checks arity/types and key uniqueness. *)
val insert : t -> string -> Row.t -> (t, Status.t) result

(** [insert_exn] for bulk loading; raises [Invalid_argument] on any
    rejection. *)
val insert_exn : t -> string -> Row.t -> t

val load : t -> string -> Row.t list -> t

(** [delete_where db rel cond ~env] returns the new instance and the
    number of rows deleted. *)
val delete_where : t -> string -> Cond.t -> env:Cond.env -> t * int

(** [update_where db rel cond ~env assigns] sets the given fields (from
    expressions over the old row) on every matching row. *)
val update_where :
  t -> string -> Cond.t -> env:Cond.env -> (string * Cond.expr) list ->
  (t * int, Status.t) result

(** [replace_rows db rel rows] swaps a relation's extension wholesale
    (used by the data translator); performs no checking. *)
val replace_rows : t -> string -> Row.t list -> t

(** [with_schema db schema] rebinds the schema (after a restructuring
    that only renames declarations); relations absent from the new
    schema are dropped, new ones start empty. *)
val with_schema : t -> Rschema.t -> t

(** Multiset equality of all extensions (row order ignored). *)
val equal_contents : t -> t -> bool

val total_rows : t -> int
val pp : Format.formatter -> t -> unit
