open Ccv_common

(* ------------------------------------------------------------------ *)
(* Latency histogram: fixed bucket upper bounds, in microseconds.      *)

let bounds =
  [| 50.; 100.; 200.; 500.; 1_000.; 2_000.; 5_000.; 10_000.; 20_000.;
     50_000.; 100_000.; infinity;
  |]

type hist = { counts : int array; mutable n : int }

let hist_create () = { counts = Array.make (Array.length bounds) 0; n = 0 }

let bucket_of us =
  let rec go i = if us <= bounds.(i) then i else go (i + 1) in
  go 0

let hist_add h us =
  let i = bucket_of (Float.max 0. us) in
  h.counts.(i) <- h.counts.(i) + 1;
  h.n <- h.n + 1

let hist_count h = h.n

let hist_quantile h q =
  if h.n = 0 then 0.
  else begin
    let target = Float.of_int h.n *. q in
    let acc = ref 0 and result = ref bounds.(Array.length bounds - 1) in
    (try
       Array.iteri
         (fun i c ->
           acc := !acc + c;
           if Float.of_int !acc >= target then begin
             result := bounds.(i);
             raise Exit
           end)
         h.counts
     with Exit -> ());
    !result
  end

let hist_merge ~into h =
  Array.iteri (fun i c -> into.counts.(i) <- into.counts.(i) + c) h.counts;
  into.n <- into.n + h.n

(* ------------------------------------------------------------------ *)

type cell = {
  mutable requests : int;
  mutable by_source : int;
  mutable by_target : int;
  mutable shadowed : int;
  mutable divergent : int;
  mutable refused : int;
  mutable source_accesses : int;
  mutable target_accesses : int;
  mutable trace_events : int;
  mutable epochs : int;  (* distinct logical epochs seen by this cell *)
  mutable last_epoch : int;
  cell_latency : hist;
}

let cell_create () =
  { requests = 0;
    by_source = 0;
    by_target = 0;
    shadowed = 0;
    divergent = 0;
    refused = 0;
    source_accesses = 0;
    target_accesses = 0;
    trace_events = 0;
    epochs = 0;
    last_epoch = -1;
    cell_latency = hist_create ();
  }

type t = {
  (* (phase, shard) cells and live per-phase counters, in first-seen
     order; the coordinator is the only writer of the assoc structure.
     Workers never call [live] — they charge Counters.local staging
     buffers that the pool flushes into these counters at the tick
     barrier, so no mutex guards the assoc lookup any more. *)
  mutable cells : ((string * int) * cell) list;
  mutable live_counters : (string * Counters.t) list;
}

let create () = { cells = []; live_counters = [] }

let live t ~phase =
  match List.assoc_opt phase t.live_counters with
  | Some c -> c
  | None ->
      let c = Counters.create () in
      t.live_counters <- t.live_counters @ [ (phase, c) ];
      c

let cell t ~phase ~shard =
  match List.assoc_opt (phase, shard) t.cells with
  | Some c -> c
  | None ->
      let c = cell_create () in
      t.cells <- t.cells @ [ ((phase, shard), c) ];
      c

let record t (o : Shadow.outcome) =
  let c = cell t ~phase:o.Shadow.phase ~shard:o.Shadow.shard in
  c.requests <- c.requests + 1;
  (match o.Shadow.decision with
  | Shadow.Serve_source -> c.by_source <- c.by_source + 1
  | Shadow.Serve_target -> c.by_target <- c.by_target + 1);
  if o.Shadow.shadowed then c.shadowed <- c.shadowed + 1;
  if o.Shadow.divergent then c.divergent <- c.divergent + 1;
  if o.Shadow.refused then c.refused <- c.refused + 1;
  c.source_accesses <- c.source_accesses + o.Shadow.source_accesses;
  c.target_accesses <- c.target_accesses + o.Shadow.target_accesses;
  c.trace_events <- c.trace_events + Io_trace.length o.Shadow.served_trace;
  (* outcomes reach the coordinator in canonical (epoch, shard, seq)
     order, so within one cell the epoch is non-decreasing and a
     change marks one more distinct epoch served under this phase *)
  if o.Shadow.epoch <> c.last_epoch then begin
    c.epochs <- c.epochs + 1;
    c.last_epoch <- o.Shadow.epoch
  end;
  hist_add c.cell_latency o.Shadow.latency_us

let phases t =
  List.fold_left
    (fun acc ((phase, _), _) -> if List.mem phase acc then acc else acc @ [ phase ])
    [] t.cells

type phase_totals = {
  requests : int;
  by_source : int;
  by_target : int;
  shadowed : int;
  divergent : int;
  refused : int;
  source_accesses : int;
  target_accesses : int;
  trace_events : int;
  latency : hist;
}

let phase_totals t ~phase =
  List.fold_left
    (fun acc ((p, _), c) ->
      if p <> phase then acc
      else begin
        hist_merge ~into:acc.latency c.cell_latency;
        { acc with
          requests = acc.requests + c.requests;
          by_source = acc.by_source + c.by_source;
          by_target = acc.by_target + c.by_target;
          shadowed = acc.shadowed + c.shadowed;
          divergent = acc.divergent + c.divergent;
          refused = acc.refused + c.refused;
          source_accesses = acc.source_accesses + c.source_accesses;
          target_accesses = acc.target_accesses + c.target_accesses;
          trace_events = acc.trace_events + c.trace_events;
        }
      end)
    { requests = 0;
      by_source = 0;
      by_target = 0;
      shadowed = 0;
      divergent = 0;
      refused = 0;
      source_accesses = 0;
      target_accesses = 0;
      trace_events = 0;
      latency = hist_create ();
    }
    t.cells

let sum f t = List.fold_left (fun acc (_, c) -> acc + f c) 0 t.cells
let total_requests t = sum (fun c -> c.requests) t
let total_divergent t = sum (fun c -> c.divergent) t
let total_refused t = sum (fun c -> c.refused) t

let quantile_cell h q =
  if hist_count h = 0 then "-"
  else
    let v = hist_quantile h q in
    if Float.is_integer v && not (Float.is_nan v) && v < infinity then
      Printf.sprintf "<=%.0fus" v
    else if v = infinity then ">100ms"
    else Printf.sprintf "<=%.0fus" v

let render t =
  let phase_rows =
    List.map
      (fun phase ->
        let p = phase_totals t ~phase in
        [ phase;
          string_of_int p.requests;
          string_of_int p.by_source;
          string_of_int p.by_target;
          string_of_int p.shadowed;
          string_of_int p.divergent;
          string_of_int p.refused;
          string_of_int p.source_accesses;
          string_of_int p.target_accesses;
          quantile_cell p.latency 0.5;
          quantile_cell p.latency 0.95;
        ])
      (phases t)
  in
  let shard_rows =
    List.map
      (fun ((phase, shard), (c : cell)) ->
        [ phase;
          string_of_int shard;
          string_of_int c.requests;
          string_of_int c.shadowed;
          string_of_int c.divergent;
          string_of_int (c.source_accesses + c.target_accesses);
          quantile_cell c.cell_latency 0.5;
        ])
      t.cells
  in
  Tablefmt.render ~title:"per-phase service metrics"
    ~aligns:
      [ Tablefmt.Left; Tablefmt.Right; Tablefmt.Right; Tablefmt.Right;
        Tablefmt.Right; Tablefmt.Right; Tablefmt.Right; Tablefmt.Right;
        Tablefmt.Right; Tablefmt.Right; Tablefmt.Right;
      ]
    [ "phase"; "reqs"; "src"; "tgt"; "shadowed"; "divergent"; "refused";
      "src acc"; "tgt acc"; "p50"; "p95";
    ]
    phase_rows
  ^ "\n"
  ^ Tablefmt.render ~title:"per-shard breakdown"
      ~aligns:
        [ Tablefmt.Left; Tablefmt.Right; Tablefmt.Right; Tablefmt.Right;
          Tablefmt.Right; Tablefmt.Right; Tablefmt.Right;
        ]
      [ "phase"; "shard"; "reqs"; "shadowed"; "divergent"; "accesses"; "p50" ]
      shard_rows

(* -1 marks "beyond the top bucket" so the JSON stays numeric *)
let json_us v = if v = infinity then "-1" else Printf.sprintf "%.0f" v

let json_rows t =
  let cell_rows =
    List.map
      (fun ((phase, shard), (c : cell)) ->
        [ ("kind", Printf.sprintf "%S" "serve-shard");
          ("phase", Printf.sprintf "%S" phase);
          ("shard", string_of_int shard);
          ("requests", string_of_int c.requests);
          ("shadowed", string_of_int c.shadowed);
          ("divergent", string_of_int c.divergent);
          ("refused", string_of_int c.refused);
          ("source_accesses", string_of_int c.source_accesses);
          ("target_accesses", string_of_int c.target_accesses);
          ("epochs", string_of_int c.epochs);
        ])
      t.cells
  in
  let phase_rows =
    List.map
      (fun phase ->
        let p = phase_totals t ~phase in
        [ ("kind", Printf.sprintf "%S" "serve-phase");
          ("phase", Printf.sprintf "%S" phase);
          ("requests", string_of_int p.requests);
          ("by_source", string_of_int p.by_source);
          ("by_target", string_of_int p.by_target);
          ("shadowed", string_of_int p.shadowed);
          ("divergent", string_of_int p.divergent);
          ("refused", string_of_int p.refused);
          ("source_accesses", string_of_int p.source_accesses);
          ("target_accesses", string_of_int p.target_accesses);
          ("trace_events", string_of_int p.trace_events);
          ("latency_p50_us", json_us (hist_quantile p.latency 0.5));
          ("latency_p95_us", json_us (hist_quantile p.latency 0.95));
        ])
      (phases t)
  in
  phase_rows @ cell_rows
