type config = {
  domains : int;
  shards : int;
  batch : int;
  canary_seed : int;
  tolerate_reordering : bool;
  use_plan_cache : bool;
}

let default_config =
  { domains = 1;
    shards = 4;
    batch = 16;
    canary_seed = 0xC0FFEE;
    tolerate_reordering = true;
    use_plan_cache = true;
  }

type divergence = {
  div_request : int;
  div_program : string;
  div_phase : string;
  div_shard : int;
  detail : string;
}

type report = {
  outcomes : Shadow.outcome list;
  transitions : Cutover.transition list;
  divergences : divergence list;
  final_phase : Cutover.phase;
  status : Cutover.status;
  metrics : Metrics.t;
  plan_stats : Ccv_plan.Plan_cache.stats;
  served : int;
  unserved : int;
  wall_s : float;
}

let take n l =
  let rec go acc n l =
    match n, l with
    | 0, _ | _, [] -> (List.rev acc, l)
    | n, x :: rest -> go (x :: acc) (n - 1) rest
  in
  go [] n l

let clock () = Unix.gettimeofday ()

let create_shards ~use_plan_cache req sdb nshards =
  let rec go acc i =
    if i >= nshards then Ok (List.rev acc)
    else
      match Shard.create ~id:i ~use_plan_cache req sdb with
      | Error e -> Error (Printf.sprintf "shard %d: %s" i e)
      | Ok s -> go (s :: acc) (i + 1)
  in
  Result.map Array.of_list (go [] 0)

let run ?(config = default_config) ~cutover req sdb requests =
  let nshards = max 1 config.shards in
  let ndomains = max 1 (min config.domains nshards) in
  match create_shards ~use_plan_cache:config.use_plan_cache req sdb nshards with
  | Error e -> Error e
  | Ok shards ->
      let ctl = Cutover.create cutover in
      let metrics = Metrics.create () in
      let t0 = clock () in
      let rec ticks remaining outcomes_rev div_rev =
        match remaining, Cutover.status ctl with
        | [], _ | _, Cutover.Aborted ->
            (List.rev outcomes_rev, List.rev div_rev, List.length remaining)
        | _, Cutover.Serving ->
            let batch, rest = take config.batch remaining in
            let phase = Cutover.phase ctl in
            let live = Metrics.live metrics ~phase:(Cutover.phase_name phase) in
            (* shard slices, id order within each slice *)
            let per_shard = Array.make nshards [] in
            List.iter
              (fun r ->
                let s = Request.shard_of r ~nshards in
                per_shard.(s) <- r :: per_shard.(s))
              (List.rev batch);
            let process_shard s =
              List.map
                (Shard.exec shards.(s) ~phase
                   ~tolerate_reordering:config.tolerate_reordering
                   ~canary_seed:config.canary_seed ~live ~clock)
                per_shard.(s)
            in
            let shard_ids_of worker =
              List.filter
                (fun s -> s mod ndomains = worker && per_shard.(s) <> [])
                (List.init nshards Fun.id)
            in
            let outcomes =
              if ndomains = 1 then
                List.concat_map process_shard
                  (List.filter
                     (fun s -> per_shard.(s) <> [])
                     (List.init nshards Fun.id))
              else
                List.init ndomains shard_ids_of
                |> List.filter_map (fun ids ->
                       if ids = [] then None
                       else
                         Some
                           (Domain.spawn (fun () ->
                                List.concat_map process_shard ids)))
                |> List.concat_map Domain.join
            in
            let outcomes =
              List.sort
                (fun (a : Shadow.outcome) b ->
                  Int.compare a.Shadow.request.Request.id
                    b.Shadow.request.Request.id)
                outcomes
            in
            let div_rev =
              List.fold_left
                (fun acc (o : Shadow.outcome) ->
                  Metrics.record metrics o;
                  if o.Shadow.shadowed then
                    Cutover.observe ctl
                      ~request_id:o.Shadow.request.Request.id
                      ~divergent:o.Shadow.divergent;
                  match Shadow.divergence_detail o with
                  | None -> acc
                  | Some detail ->
                      { div_request = o.Shadow.request.Request.id;
                        div_program =
                          o.Shadow.request.Request.aprog
                            .Ccv_abstract.Aprog.name;
                        div_phase = o.Shadow.phase;
                        div_shard = o.Shadow.shard;
                        detail;
                      }
                      :: acc)
                div_rev outcomes
            in
            ticks rest (List.rev_append outcomes outcomes_rev) div_rev
      in
      let outcomes, divergences, unserved = ticks requests [] [] in
      let plan_stats =
        Array.fold_left
          (fun acc s -> Ccv_plan.Plan_cache.add_stats acc (Shard.plan_stats s))
          Ccv_plan.Plan_cache.zero_stats shards
      in
      Ok
        { outcomes;
          transitions = Cutover.transitions ctl;
          divergences;
          final_phase = Cutover.phase ctl;
          status = Cutover.status ctl;
          metrics;
          plan_stats;
          served = List.length outcomes;
          unserved;
          wall_s = clock () -. t0;
        }

let render r =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "served %d request(s) in %.2fs; final phase %s (%s)\n"
       r.served r.wall_s
       (Cutover.phase_name r.final_phase)
       (match r.status with
       | Cutover.Serving -> "serving"
       | Cutover.Aborted ->
           Printf.sprintf "ABORTED, %d request(s) unserved" r.unserved));
  let ps = r.plan_stats in
  if ps.Ccv_plan.Plan_cache.hits + ps.Ccv_plan.Plan_cache.misses > 0 then
    Buffer.add_string b
      (Printf.sprintf
         "plan cache: %d hit(s), %d miss(es), %d compiled pair(s), %.1f%% hit rate\n"
         ps.Ccv_plan.Plan_cache.hits ps.Ccv_plan.Plan_cache.misses
         ps.Ccv_plan.Plan_cache.size
         (100. *. Ccv_plan.Plan_cache.hit_rate ps));
  if r.transitions <> [] then begin
    Buffer.add_string b "\nphase transitions:\n";
    List.iter
      (fun t ->
        Buffer.add_string b
          (Printf.sprintf "  %s\n" (Fmt.str "%a" Cutover.pp_transition t)))
      r.transitions
  end;
  (match r.divergences with
  | [] -> Buffer.add_string b "\nno divergences detected\n"
  | ds ->
      Buffer.add_string b
        (Printf.sprintf "\ndivergence log (%d total, first %d shown):\n"
           (List.length ds)
           (min 5 (List.length ds)));
      List.iteri
        (fun i d ->
          if i < 5 then
            Buffer.add_string b
              (Printf.sprintf "  request %d (%s, %s, shard %d): %s\n"
                 d.div_request d.div_program d.div_phase d.div_shard d.detail))
        ds);
  Buffer.add_char b '\n';
  Buffer.add_string b (Metrics.render r.metrics);
  Buffer.contents b
